(* Multi-level conceptual hierarchies (the paper's closing remark in
   Section 1): when every concept is defined only in terms of the level
   below, the object graph is bipartite by level parity, and all the
   chordality machinery applies regardless of how many levels there
   are.

   Run with: dune exec examples/concept_hierarchy.exe *)

open Datamodel

let hierarchy =
  Layered.make
    ~levels:
      [
        (* level 0: attributes *)
        [ "name"; "salary"; "budget"; "dname"; "city"; "street" ];
        (* level 1: entities *)
        [ "employee"; "department"; "address" ];
        (* level 2: relationships *)
        [ "works_in"; "located_at" ];
        (* level 3: business processes aggregate relationships *)
        [ "payroll_run" ];
      ]
    ~definitions:
      [
        ("employee", [ "name"; "salary" ]);
        ("department", [ "dname"; "budget" ]);
        ("address", [ "city"; "street" ]);
        ("works_in", [ "employee"; "department" ]);
        ("located_at", [ "department"; "address" ]);
        ("payroll_run", [ "works_in" ]);
      ]

let () =
  Format.printf "levels: %d, objects: %d@." (Layered.n_levels hierarchy)
    (List.length (Layered.objects hierarchy));
  let profile = Layered.profile hierarchy in
  Format.printf "%a@.@." Bipartite.Classify.pp_profile profile;

  let show objects =
    Format.printf "query {%s}:@." (String.concat ", " objects);
    (match Layered.minimal_connection hierarchy ~objects with
    | Ok (nodes, edges) ->
      Format.printf "  connection: {%s}@." (String.concat ", " nodes);
      List.iter (fun (a, b) -> Format.printf "    %s -- %s@." a b) edges
    | Error e ->
      Format.printf "  (not connectable: %s)@."
        (Format.asprintf "%a" Minconn.Errors.pp e));
    let alts = Layered.interpretations ~k:3 hierarchy ~objects in
    if List.length alts > 1 then begin
      Format.printf "  alternatives:@.";
      List.iteri
        (fun i names ->
          if i > 0 then
            Format.printf "    %d: {%s}@." (i + 1) (String.concat ", " names))
        alts
    end
  in
  (* Across four levels: a raw attribute to a business process. *)
  show [ "salary"; "payroll_run" ];
  (* Two attributes whose owning entities meet through a relationship. *)
  show [ "name"; "dname" ];
  (* Mixed-level query. *)
  show [ "employee"; "city" ]
