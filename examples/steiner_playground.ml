(* Compare the three Steiner solvers across chordality classes: the
   structure-aware Algorithm 2, the exact exponential DP, and the
   structure-oblivious MST 2-approximation. On (6,2)-chordal inputs
   Algorithm 2 is exact (Theorem 5); off-class the elimination loses
   its guarantee and the DP is the only exact option.

   Run with: dune exec examples/steiner_playground.exe *)

open Graphs
open Bipartite
open Steiner

let describe name g terminals =
  let u = Bigraph.ugraph g in
  let is62 = Mn_chordality.is_62_chordal g in
  let alg2 = Algorithm2.solve u ~p:terminals in
  let exact = Dreyfus_wagner.solve u ~terminals in
  let approx = Mst_approx.solve u ~terminals in
  let count = function Some t -> string_of_int (Tree.node_count t) | None -> "-" in
  Format.printf "%-26s %8s %6s %6s %6s %s@." name
    (if is62 then "(6,2)" else "not-62")
    (count alg2) (count exact) (count approx)
    (match (alg2, exact) with
    | Some a, Some e when Tree.node_count a = Tree.node_count e ->
      "elimination exact"
    | Some a, Some e ->
      Printf.sprintf "elimination +%d over optimum"
        (Tree.node_count a - Tree.node_count e)
    | _ -> "")

(* One deterministic stream per instance, through the same helper the
   bench harness uses, so each row is reproducible on its own rather
   than depending on how much randomness earlier rows consumed. *)
let trial ~section i = Workloads.Rng.for_trial ~section ~trial:i

let () =
  Format.printf "%-26s %8s %6s %6s %6s@." "instance" "class" "alg2" "exact"
    "approx";
  Format.printf "%s@." (String.make 72 '-');
  (* In-class instances: Algorithm 2 always ties the exact DP. *)
  for i = 1 to 5 do
    let rng = trial ~section:"playground-62" i in
    let g = Workloads.Gen_bipartite.chordal_62 rng ~n_right:8 ~max_size:4 in
    let p = Workloads.Gen_bipartite.random_terminals rng g ~k:4 in
    if Iset.cardinal p >= 2 then
      describe (Printf.sprintf "gamma-acyclic #%d" i) g p
  done;
  (* Off-class instances: elimination may lose. *)
  for i = 1 to 5 do
    let rng = trial ~section:"playground-gnp" i in
    let g = Workloads.Gen_bipartite.gnp rng ~nl:7 ~nr:7 ~p:0.25 in
    let p = Workloads.Gen_bipartite.random_terminals rng g ~k:4 in
    if Iset.cardinal p >= 2 then
      describe (Printf.sprintf "random bipartite #%d" i) g p
  done;
  (* The paper's own boundary case. *)
  let fig11 = Datamodel.Figures.fig11 in
  (match Datamodel.Figures.fig11_bad_terminals ~first:"A" with
  | Some p ->
    Format.printf "@.Theorem 6 boundary (Fig. 11), P = {3, C, 4, D}:@.";
    let u = Bigraph.ugraph fig11.Datamodel.Figures.graph in
    let bad_order =
      match Datamodel.Figures.index_of_name fig11 "A" with
      | Some a -> [ a ]
      | None -> []
    in
    let eliminated = Algorithm2.solve ~order:bad_order u ~p in
    let exact = Dreyfus_wagner.solve u ~terminals:p in
    let count = function Some t -> Tree.node_count t | None -> -1 in
    Format.printf
      "  eliminating A first: %d nodes; optimum: %d nodes — no ordering is \
       good on this graph@."
      (count eliminated) (count exact)
  | None -> ());
  (* X3C hardness gadget: watch the exact solver's work blow up. *)
  Format.printf "@.Theorem 2 gadgets (exact solver on 3q+1 terminals):@.";
  List.iter
    (fun q ->
      let rng = trial ~section:"playground-x3c" q in
      let inst = Workloads.Gen_x3c.planted rng ~q ~distractors:q in
      let red = Reductions.theorem2 inst in
      let t0 = Sys.time () in
      let ok = Reductions.steiner_within_budget red in
      let dt = (Sys.time () -. t0) *. 1000.0 in
      Format.printf "  q=%d: budget %d, solvable=%b, %.1f ms@." q
        red.Reductions.budget ok dt)
    [ 2; 3; 4 ]
