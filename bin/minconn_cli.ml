(* minconn: command-line interface to the library.

   classify  — chordality/acyclicity profile of a bipartite graph file
   solve     — minimal connection (Steiner) over named terminals
   relations — Algorithm 1: minimum-relation connection
   generate  — emit random instances of each chordality class
   figures   — print the paper-figure instances
   demo      — the Fig. 1 walk-through *)

open Cmdliner
open Bipartite
open Steiner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let load_bigraph path =
  match Mc_io.Parse.bigraph_of_string (read_file path) with
  | Ok nb -> Ok nb
  | Error e -> Error (Format.asprintf "%s: %a" path Mc_io.Parse.pp_error e)

(* Exit-code contract (documented in README "Budgets and graceful
   degradation"): 0 solved-exact, 2 solved-degraded, 3 no cover,
   4 input error, 5 budget exhausted under --no-degrade. *)
let exit_input_error = 4

let or_die = function
  | Ok v -> v
  | Error msg ->
    prerr_endline msg;
    exit exit_input_error

(* ---------------------------------------------------------- plan cache *)

(* Best-effort opening for `solve --plan-cache`: an unusable directory
   degrades to uncached compilation with one structured warning and
   must not change the exit code. `compile` (below) treats the same
   failure as an input error, because storing the plan is its job. *)
let open_plan_cache_opt = function
  | None -> None
  | Some dir -> (
    match Minconn.Plan_cache.create ~dir () with
    | Ok cache -> Some cache
    | Error msg ->
      Printf.eprintf
        "minconn: warn=plan-cache-unusable dir=%s msg=%s (compiling \
         uncached)\n\
         %!"
        dir msg;
      None)

let compile_cmd =
  let run path cache_dir force jobs =
    if jobs < 1 then begin
      prerr_endline "minconn: error=invalid-jobs (need --jobs >= 1)";
      exit exit_input_error
    end;
    let nb = or_die (load_bigraph path) in
    let graph = nb.Mc_io.Parse.graph in
    let hash = Minconn.Compiled.schema_hash graph in
    let compile_with_jobs () =
      if jobs > 1 then
        Minconn.Pool.with_pool ~domains:jobs (fun pool ->
            Minconn.Compiled.compile ~pool graph)
      else Minconn.Compiled.compile graph
    in
    let status =
      match cache_dir with
      | None ->
        ignore (compile_with_jobs () : Minconn.Compiled.t);
        "uncached"
      | Some dir -> (
        match Minconn.Plan_cache.create ~dir () with
        | Error msg ->
          Printf.eprintf "minconn: error=plan-cache-unusable dir=%s msg=%s\n"
            dir msg;
          exit exit_input_error
        | Ok cache -> (
          match
            if force then Error Minconn.Plan_cache.Absent
            else Minconn.Plan_cache.find cache graph
          with
          | Ok _ -> "hit"
          | Error miss -> (
            let compiled = compile_with_jobs () in
            match Minconn.Plan_cache.store cache compiled with
            | Ok () ->
              Printf.sprintf "stored reason=%s"
                (Minconn.Plan_cache.miss_name miss)
            | Error msg ->
              Printf.eprintf
                "minconn: error=plan-cache-store dir=%s msg=%s\n" dir msg;
              exit exit_input_error)))
    in
    Printf.printf "minconn: schema=%s nodes=%d edges=%d cache=%s\n" hash
      (Bigraph.n graph) (Bigraph.m graph) status
  in
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let cache_dir =
    Arg.(
      value & opt (some string) None
      & info [ "plan-cache" ] ~docv:"DIR"
          ~doc:"Store the compiled plan under $(docv) (created if \
                missing), keyed by schema content hash, so later runs \
                with --plan-cache skip classification entirely. An \
                unusable directory is an input error (exit 4) here, \
                unlike solve's best-effort degradation.")
  in
  let force =
    Arg.(
      value & flag
      & info [ "force" ]
          ~doc:"Recompile and overwrite the entry even when the cache \
                already holds a valid plan for this schema")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Compile on $(docv) domains (default 1); the stored plan \
                is identical for every $(docv)")
  in
  Cmd.v
    (Cmd.info "compile"
       ~doc:
         "Compile a schema into the persistent plan cache. Exit codes: \
          0 compiled (or already cached), 4 input error (bad file or \
          unusable --plan-cache directory).")
    Term.(const run $ path $ cache_dir $ force $ jobs)

(* ------------------------------------------------------------ classify *)

let classify_cmd =
  let run path =
    let nb = or_die (load_bigraph path) in
    print_string (Minconn.report nb.Mc_io.Parse.graph)
  in
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  Cmd.v
    (Cmd.info "classify"
       ~doc:"Report the chordality/acyclicity profile of a bipartite graph")
    Term.(const run $ path)

(* --------------------------------------------------------------- solve *)

(* The answer text is owned by Serve.Render so the network service and
   this CLI stay byte-identical by construction (the serve-smoke rule
   diffs one against the other). *)
let print_tree nb (tree : Tree.t) = print_string (Serve.Render.tree_block nb tree)

(* One structured stderr line per ladder event, greppable key=value. *)
let report_provenance prov =
  let module D = Minconn.Degrade in
  let module E = Minconn.Errors in
  List.iter
    (fun a ->
      Printf.eprintf "minconn: rung=%s status=abandoned reason=%s\n%!"
        (E.rung_name a.D.rung) (D.reason_name a.D.why))
    prov.D.attempts;
  Printf.eprintf "minconn: rung=%s status=ran guarantee=%s\n%!"
    (E.rung_name prov.D.ran)
    (D.guarantee_name prov.D.guarantee)

let method_name = Serve.Render.method_name

(* One query per non-empty, non-comment line; names separated by commas
   and/or whitespace. *)
let parse_queries_file path =
  let split line =
    String.split_on_char ' '
      (String.map (function ',' | '\t' -> ' ' | c -> c) line)
    |> List.filter (fun s -> s <> "")
  in
  read_file path |> String.split_on_char '\n'
  |> List.map String.trim
  |> List.filter (fun l -> l <> "" && l.[0] <> '#')
  |> List.map split

(* Batch mode: compile the schema once, answer every terminal set from
   the session, report one status line per query, and exit with the
   most severe per-query code (the codes are ordered 0 < 2 < 3 < 4 < 5
   by severity, so a numeric max is the contract). With --jobs N > 1 a
   domain pool fans both the compile tasks and the queries out; the
   answers (and their printed order) are identical to --jobs 1. *)
let run_batch ?compiled nb ~queries ~cache ~jobs ~timeout_ms ~fuel ~no_degrade
    ~trace ~metrics ~flush_observability =
  let solve_batch pool =
    let compiled =
      match compiled with
      | Some c -> c
      | None ->
        fst
          (Minconn.Plan_cache.find_or_compile ?pool ~trace ~metrics ?cache
             nb.Mc_io.Parse.graph)
    in
    let session =
      Minconn.Session.create ~degrade:(not no_degrade) ~trace ~metrics compiled
    in
    let resolved =
      List.map (fun names -> (names, Mc_io.Parse.name_set nb names)) queries
    in
    let ps = List.filter_map (fun (_, r) -> Result.to_option r) resolved in
    (* A fresh budget per query: one slow query degrades itself, not
       the rest of the batch (and per-query budgets keep pooled runs
       deterministic). *)
    let make_budget _ =
      match (timeout_ms, fuel) with
      | None, None -> Minconn.Budget.unlimited
      | _ -> Minconn.Budget.make ?timeout_ms ?fuel ()
    in
    (resolved, Minconn.Session.solve_many ?pool ~make_budget session ps)
  in
  let resolved, answers =
    if jobs > 1 then
      Minconn.Pool.with_pool ~domains:jobs (fun pool -> solve_batch (Some pool))
    else solve_batch None
  in
  let worst = ref 0 in
  let remaining = ref answers in
  List.iteri
    (fun i (names, r) ->
      let idx = i + 1 in
      Printf.printf "-- query %d: %s --\n" idx (String.concat ", " names);
      let code =
        match r with
        | Error n ->
          Printf.printf "error: unknown terminal %s\n" n;
          exit_input_error
        | Ok _ -> (
          let answer =
            match !remaining with
            | a :: rest ->
              remaining := rest;
              a
            | [] -> assert false (* one answer per resolved query *)
          in
          match answer with
          | Error e ->
            Printf.printf "error: %s\n" (Minconn.Errors.to_string e);
            Minconn.Errors.exit_code e
          | Ok s ->
            Printf.printf "method: %s\n" (method_name s.Minconn.method_used);
            print_tree nb s.Minconn.tree;
            if Minconn.Degrade.degraded s.Minconn.provenance then begin
              report_provenance s.Minconn.provenance;
              2
            end
            else 0)
      in
      Printf.printf "minconn: query=%d code=%d\n" idx code;
      if code > !worst then worst := code)
    resolved;
  Printf.printf "minconn: queries=%d exit=%d\n" (List.length queries) !worst;
  flush_observability ();
  exit !worst

let solve_cmd =
  let run path terminals queries_file cache_dir jobs timeout_ms fuel
      no_degrade trace_file metrics_file =
    if jobs < 1 then begin
      prerr_endline "minconn: error=invalid-jobs (need --jobs >= 1)";
      exit exit_input_error
    end;
    let trace =
      match trace_file with
      | None -> Observe.Trace.disabled
      | Some _ -> Observe.Trace.make ()
    in
    let metrics =
      match metrics_file with
      | None -> Observe.Metrics.disabled
      | Some _ -> Observe.Metrics.make ()
    in
    (* Written on every exit path, including error exits, so a budget
       abort still leaves the spans recorded up to that point. *)
    let flush_observability () =
      Option.iter
        (fun path -> Observe.Export.write_trace ~path trace)
        trace_file;
      Option.iter
        (fun path -> Observe.Export.write_metrics ~path metrics)
        metrics_file
    in
    let die code =
      flush_observability ();
      exit code
    in
    let nb = or_die (load_bigraph path) in
    let cache = open_plan_cache_opt cache_dir in
    match (terminals, queries_file) with
    | [], None ->
      prerr_endline "minconn: error=missing-terminals (use -t or --queries)";
      die exit_input_error
    | _ :: _, Some _ ->
      prerr_endline "minconn: error=conflicting-options (-t and --queries)";
      die exit_input_error
    | [], Some qpath ->
      run_batch nb
        ~queries:(parse_queries_file qpath)
        ~cache ~jobs ~timeout_ms ~fuel ~no_degrade ~trace ~metrics
        ~flush_observability
    | _ :: _, None -> (
      let p =
        match Mc_io.Parse.name_set nb terminals with
        | Ok p -> p
        | Error n ->
          Printf.eprintf "minconn: error=unknown-terminal name=%s\n" n;
          die exit_input_error
      in
      let budget =
        match (timeout_ms, fuel) with
        | None, None -> Minconn.Budget.unlimited
        | _ -> Minconn.Budget.make ?timeout_ms ?fuel ()
      in
      let answer =
        match cache with
        | None ->
          Minconn.solve ~budget ~degrade:(not no_degrade) ~trace ~metrics
            nb.Mc_io.Parse.graph ~p
        | Some _ ->
          (* Warm path: the loaded plan replaces compilation, the
             session's locate performs the same terminal validation
             Minconn.solve does and returns the same typed errors. *)
          let compiled, _ =
            Minconn.Plan_cache.find_or_compile ~trace ~metrics ?cache
              nb.Mc_io.Parse.graph
          in
          let session =
            Minconn.Session.create ~budget ~degrade:(not no_degrade) ~trace
              ~metrics compiled
          in
          Minconn.Session.query session ~p
      in
      match answer with
      | Error e ->
        Printf.eprintf "minconn: error=%s\n" (Minconn.Errors.to_string e);
        die (Minconn.Errors.exit_code e)
      | Ok s ->
        Printf.printf "method: %s\n" (method_name s.Minconn.method_used);
        print_tree nb s.Minconn.tree;
        let degraded = Minconn.Degrade.degraded s.Minconn.provenance in
        flush_observability ();
        if degraded then begin
          report_provenance s.Minconn.provenance;
          exit 2
        end)
  in
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let terminals =
    Arg.(
      value & opt (list string) []
      & info [ "t"; "terminals" ] ~docv:"NAMES"
          ~doc:"Comma-separated object names to connect (exactly one of \
                $(opt) and --queries is required)")
  in
  let queries_file =
    Arg.(
      value & opt (some file) None
      & info [ "queries" ] ~docv:"FILE"
          ~doc:"Batch mode: compile the graph once and answer one query \
                per line of $(docv) (names separated by commas or \
                spaces; blank lines and # comments skipped). Prints a \
                per-query status line and exits with the most severe \
                per-query code.")
  in
  let cache_dir =
    Arg.(
      value & opt (some string) None
      & info [ "plan-cache" ] ~docv:"DIR"
          ~doc:"Reuse compiled plans from $(docv) (see the compile \
                subcommand): a warm entry skips classification \
                entirely, a cold run compiles and stores. An unusable \
                directory degrades to uncached compilation with a \
                structured stderr warning and does not affect the exit \
                code.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Batch mode only: answer the --queries batch on $(docv) \
                domains (default 1). Results, per-query codes and the \
                exit code are identical for every $(docv); trace and \
                metrics artifacts stay valid.")
  in
  let timeout_ms =
    Arg.(
      value & opt (some int) None
      & info [ "timeout" ] ~docv:"MS"
          ~doc:"Wall-clock budget in milliseconds; on exhaustion the \
                solver degrades down the ladder (see --no-degrade)")
  in
  let fuel =
    Arg.(
      value & opt (some int) None
      & info [ "fuel" ] ~docv:"N"
          ~doc:"Fuel budget: elimination steps / DP subset expansions")
  in
  let no_degrade =
    Arg.(
      value & flag
      & info [ "no-degrade" ]
          ~doc:"Fail with exit code 5 instead of degrading to a weaker \
                rung when the budget is exhausted")
  in
  let trace_file =
    Arg.(
      value & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Write an NDJSON span stream (classify, ladder rungs, \
                verify) to $(docv)")
  in
  let metrics_file =
    Arg.(
      value & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:"Write a JSON metrics snapshot (counters, histograms) to \
                $(docv)")
  in
  Cmd.v
    (Cmd.info "solve"
       ~doc:
         "Find a minimal connection over the terminals. Exit codes: 0 \
          solved exactly, 2 solved degraded, 3 no cover, 4 input error, \
          5 budget exhausted with --no-degrade. With --queries, the \
          exit code is the most severe per-query code.")
    Term.(
      const run $ path $ terminals $ queries_file $ cache_dir $ jobs
      $ timeout_ms $ fuel $ no_degrade $ trace_file $ metrics_file)

(* -------------------------------------------------------------- evolve *)

let load_deltas nb path =
  match Mc_io.Parse.deltas_of_string nb (read_file path) with
  | Ok v -> v
  | Error e ->
    prerr_endline (Format.asprintf "%s: %a" path Mc_io.Parse.pp_error e);
    exit exit_input_error

(* Apply a delta file to a schema, component-scoped: untouched
   components keep their compiled orderings and join-tree preps.
   Status and per-delta stats go to stderr so --emit and --queries
   stdout stays clean (the evolve-smoke rule diffs it against solve
   on the pre-evolved file). *)
let evolve_cmd =
  let run path dfile emit queries_file cache_dir jobs =
    if jobs < 1 then begin
      prerr_endline "minconn: error=invalid-jobs (need --jobs >= 1)";
      exit exit_input_error
    end;
    let nb = or_die (load_bigraph path) in
    let ops, evolved = load_deltas nb dfile in
    let cache = open_plan_cache_opt cache_dir in
    let with_jobs f =
      if jobs > 1 then
        Minconn.Pool.with_pool ~domains:jobs (fun pool -> f (Some pool))
      else f None
    in
    let compiled, status =
      match cache with
      | Some _ ->
        (* The cache ladder: exact evolved entry, else patch the
           cached base plan, else cold compile — all stored for the
           next run. *)
        with_jobs (fun pool ->
            let compiled, outcome =
              Minconn.Plan_cache.find_or_compile ?pool ?cache ~deltas:ops
                nb.Mc_io.Parse.graph
            in
            ( compiled,
              match outcome with
              | `Hit -> "hit"
              | `Patched -> "patched"
              | `Miss -> "miss" ))
      | None ->
        with_jobs (fun pool ->
            let base = Minconn.Compiled.compile ?pool nb.Mc_io.Parse.graph in
            match Minconn.Compiled.apply_deltas ?pool base ops with
            | Error msg ->
              (* Unreachable: the parser already applied every op. *)
              Printf.eprintf "minconn: error=bad-delta msg=%s\n" msg;
              exit exit_input_error
            | Ok (compiled, stats) ->
              List.iter
                (fun (s : Minconn.Compiled.delta_stats) ->
                  Printf.eprintf
                    "minconn: delta='%s' noop=%b fallback=%b recompiled=%d \
                     reused=%d\n"
                    (Minconn.Delta.to_string s.Minconn.Compiled.op)
                    s.Minconn.Compiled.noop s.Minconn.Compiled.fallback
                    (List.length s.Minconn.Compiled.recompiled)
                    s.Minconn.Compiled.reused)
                stats;
              (compiled, "applied"))
    in
    Printf.eprintf "minconn: deltas=%d components=%d cache=%s\n%!"
      (List.length ops)
      (Minconn.Compiled.n_components compiled)
      status;
    match queries_file with
    | Some qpath ->
      run_batch ~compiled evolved
        ~queries:(parse_queries_file qpath)
        ~cache:None ~jobs:1 ~timeout_ms:None ~fuel:None ~no_degrade:false
        ~trace:Observe.Trace.disabled ~metrics:Observe.Metrics.disabled
        ~flush_observability:(fun () -> ())
    | None ->
      if emit then print_string (Mc_io.Parse.bigraph_to_string evolved)
      else print_string (Minconn.report evolved.Mc_io.Parse.graph)
  in
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let dfile =
    Arg.(
      required
      & opt (some file) None
      & info [ "deltas" ] ~docv:"DFILE"
          ~doc:"Delta file to apply: '+edge A r1', '-edge A r1', \
                '+relation r9 A B', '-relation r3', one per line after a \
                'deltas' header; later lines see the schema as evolved \
                by earlier ones.")
  in
  let emit =
    Arg.(
      value & flag
      & info [ "emit" ]
          ~doc:"Print the evolved schema as a bipartite graph file \
                instead of its classification report")
  in
  let queries_file =
    Arg.(
      value & opt (some file) None
      & info [ "queries" ] ~docv:"FILE"
          ~doc:"Answer one query per line of $(docv) against the \
                evolved schema (same format and output as solve \
                --queries), from the incrementally patched plan.")
  in
  let cache_dir =
    Arg.(
      value & opt (some string) None
      & info [ "plan-cache" ] ~docv:"DIR"
          ~doc:"Plan cache to consult and update: an exact evolved \
                entry is loaded outright; a cached base plan is \
                patched component-by-component; a cold run compiles. \
                The evolved plan is stored keyed by base schema hash \
                plus delta-journal hash.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Compile/patch on $(docv) domains (default 1); the plan \
                is identical for every $(docv)")
  in
  Cmd.v
    (Cmd.info "evolve"
       ~doc:
         "Apply a schema delta file and recompile only the touched \
          components. Prints the evolved schema's classification \
          (or the schema itself with --emit, or query answers with \
          --queries). Exit codes: 0 evolved, 4 input error (bad file \
          or delta), and with --queries the most severe per-query \
          code.")
    Term.(
      const run $ path $ dfile $ emit $ queries_file $ cache_dir $ jobs)

let relations_cmd =
  let run path terminals =
    let nb = or_die (load_bigraph path) in
    let p =
      match Mc_io.Parse.name_set nb terminals with
      | Ok p -> p
      | Error n ->
        prerr_endline ("unknown terminal: " ^ n);
        exit exit_input_error
    in
    (* The typed front door validates empty/out-of-range/disconnected
       terminal sets exactly like `solve` does. *)
    match Minconn.solve_min_relations nb.Mc_io.Parse.graph ~p with
    | Ok r ->
      Printf.printf "minimum relation count: %d\n" r.Algorithm1.v2_count;
      print_tree nb r.Algorithm1.tree
    | Error e ->
      Printf.eprintf "minconn: error=%s\n" (Minconn.Errors.to_string e);
      exit (Minconn.Errors.exit_code e)
  in
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let terminals =
    Arg.(
      non_empty & opt (list string) []
      & info [ "t"; "terminals" ] ~docv:"NAMES"
          ~doc:"Comma-separated object names to connect")
  in
  Cmd.v
    (Cmd.info "relations"
       ~doc:"Algorithm 1: connect the terminals with the fewest relations")
    Term.(const run $ path $ terminals)

let interpretations_cmd =
  let run path terminals k =
    let nb = or_die (load_bigraph path) in
    let p =
      match Mc_io.Parse.name_set nb terminals with
      | Ok p -> p
      | Error n ->
        prerr_endline ("unknown terminal: " ^ n);
        exit exit_input_error
    in
    let trees =
      Kbest.enumerate ~max_trees:k (Bigraph.ugraph nb.Mc_io.Parse.graph)
        ~terminals:p
    in
    if trees = [] then begin
      prerr_endline "terminals are not connected";
      exit (Minconn.Errors.exit_code Minconn.Errors.Disconnected_terminals)
    end;
    List.iteri
      (fun i tree ->
        Printf.printf "-- interpretation %d --
" (i + 1);
        print_tree nb tree)
      trees
  in
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let terminals =
    Arg.(
      non_empty & opt (list string) []
      & info [ "t"; "terminals" ] ~docv:"NAMES"
          ~doc:"Comma-separated object names to connect")
  in
  let k = Arg.(value & opt int 3 & info [ "k" ] ~docv:"K") in
  Cmd.v
    (Cmd.info "interpretations"
       ~doc:"Enumerate the k smallest alternative connections")
    Term.(const run $ path $ terminals $ k)

(* -------------------------------------------------------------- repair *)

let repair_cmd =
  let run path =
    let text = read_file path in
    match Mc_io.Parse.schema_of_string text with
    | Error e ->
      prerr_endline (Format.asprintf "%s: %a" path Mc_io.Parse.pp_error e);
      exit exit_input_error
    | Ok schema -> print_string (Datamodel.Repair.report schema)
  in
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  Cmd.v
    (Cmd.info "repair"
       ~doc:"Suggest deletions/merges that move a schema to a better              acyclicity degree")
    Term.(const run $ path)

(* ----------------------------------------------------------------- ask *)

let ask_cmd =
  let run path query_text =
    let text = read_file path in
    match Mc_io.Parse.database_of_string text with
    | Error e ->
      prerr_endline (Format.asprintf "%s: %a" path Mc_io.Parse.pp_error e);
      exit exit_input_error
    | Ok db -> (
      match Mc_io.Parse.query_of_string query_text with
      | Error e ->
        prerr_endline (Format.asprintf "query: %a" Mc_io.Parse.pp_error e);
        exit exit_input_error
      | Ok (objects, where) -> (
        match Datamodel.Interface.answer db ~where ~query:objects with
        | Ok a ->
          Printf.printf "relations used: %s
"
            (String.concat ", "
               a.Datamodel.Interface.connection.Datamodel.Query.relations_used);
          Format.printf "%a@." Relalg.Relation.pp a.Datamodel.Interface.result
        | Error (Datamodel.Query.Unknown_object o) ->
          prerr_endline ("unknown object: " ^ o);
          exit exit_input_error
        | Error Datamodel.Query.Disconnected ->
          prerr_endline "objects cannot be connected";
          exit (Minconn.Errors.exit_code Minconn.Errors.Disconnected_terminals)
        | Error (Datamodel.Query.Not_applicable m) ->
          prerr_endline m;
          exit exit_input_error))
  in
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"DBFILE") in
  let query =
    Arg.(
      required & pos 1 (some string) None
      & info [] ~docv:"QUERY"
          ~doc:"e.g. 'connect emp, manager where dept = toys'")
  in
  Cmd.v
    (Cmd.info "ask"
       ~doc:"Answer a universal-relation query against a database file")
    Term.(const run $ path $ query)

(* --------------------------------------------------------------- query *)

(* The full pipeline the paper motivates, end to end: a populated
   database gives the scheme, Algorithm 1 finds the minimal conceptual
   connection for the named objects, and the Yannakakis engine executes
   that connection over the actual tuples. *)
let query_cmd =
  let run db_file gen size rows domain dangling seed bag terminals naive
      limit timeout_ms fuel trace_file metrics_file =
    let trace =
      match trace_file with
      | None -> Observe.Trace.disabled
      | Some _ -> Observe.Trace.make ()
    in
    let metrics =
      match metrics_file with
      | None -> Observe.Metrics.disabled
      | Some _ -> Observe.Metrics.make ()
    in
    let flush_observability () =
      Option.iter
        (fun path -> Observe.Export.write_trace ~path trace)
        trace_file;
      Option.iter
        (fun path -> Observe.Export.write_metrics ~path metrics)
        metrics_file
    in
    let die code =
      flush_observability ();
      exit code
    in
    let semantics =
      if bag then Relalg.Relation.Bag else Relalg.Relation.Set
    in
    let db =
      match (db_file, gen) with
      | Some _, Some _ ->
        prerr_endline "minconn: error=conflicting-options (DBFILE and --gen)";
        die exit_input_error
      | None, None ->
        prerr_endline "minconn: error=missing-database (give DBFILE or --gen)";
        die exit_input_error
      | Some path, None -> (
        match Mc_io.Parse.database_of_string ~semantics (read_file path) with
        | Ok db -> db
        | Error e ->
          prerr_endline (Format.asprintf "%s: %a" path Mc_io.Parse.pp_error e);
          die exit_input_error)
      | None, Some family -> (
        let rng = Workloads.Rng.make ~seed in
        match family with
        | "chain" ->
          Workloads.Gen_db.chain ~semantics ~dangling rng ~length:size ~rows
            ~domain
        | "acyclic" -> Workloads.Gen_db.acyclic ~semantics rng
                         ~n_relations:size ~rows
        | f ->
          Printf.eprintf
            "minconn: error=unknown-family name=%s (chain|acyclic)\n" f;
          die exit_input_error)
    in
    if terminals = [] then begin
      prerr_endline "minconn: error=missing-terminals (use -t)";
      die exit_input_error
    end;
    let schema =
      match Datamodel.Schema.of_database db with
      | s -> s
      | exception Invalid_argument msg ->
        Printf.eprintf "minconn: error=bad-schema msg=%s\n" msg;
        die exit_input_error
    in
    let p =
      let indices =
        List.map
          (fun name ->
            match Datamodel.Schema.object_index schema name with
            | Some i -> i
            | None ->
              Printf.eprintf "minconn: error=unknown-terminal name=%s\n" name;
              die exit_input_error)
          terminals
      in
      Graphs.Iset.of_list indices
    in
    let budget =
      match (timeout_ms, fuel) with
      | None, None -> Minconn.Budget.unlimited
      | _ -> Minconn.Budget.make ?timeout_ms ?fuel ()
    in
    let session =
      Minconn.Session.create ~budget ~trace ~metrics
        (Datamodel.Schema.compiled schema)
    in
    match Minconn.Session.query_relations session ~p with
    | Error e ->
      Printf.eprintf "minconn: error=%s\n" (Minconn.Errors.to_string e);
      die (Minconn.Errors.exit_code e)
    | Ok r -> (
      let c =
        Datamodel.Query.connection_of_tree schema ~query:p
          r.Steiner.Algorithm1.tree ~optimal:true
      in
      let output =
        List.filter (Datamodel.Schema.is_attribute schema) terminals
      in
      let chosen =
        List.filter
          (fun (n, _) -> List.mem n c.Datamodel.Query.relations_used)
          (Relalg.Database.relations db)
      in
      let chosen =
        (* A single-attribute query can yield a one-node tree with no
           relation: fall back to any relation holding the attributes. *)
        if chosen <> [] then chosen
        else
          match
            List.find_opt
              (fun (_, rel) -> List.for_all (Relalg.Relation.mem_attr rel) output)
              (Relalg.Database.relations db)
          with
          | Some rel -> [ rel ]
          | None -> []
      in
      let sub = Relalg.Database.make chosen in
      Printf.printf "db: relations=%d tuples=%d semantics=%s\n"
        (Relalg.Database.n_relations db)
        (Relalg.Database.total_tuples db)
        (if bag then "bag" else "set");
      Printf.printf "connection: relations=%s auxiliary=%s\n"
        (String.concat "," c.Datamodel.Query.relations_used)
        (match c.Datamodel.Query.auxiliary with
        | [] -> "-"
        | aux -> String.concat "," aux);
      let plan_name =
        if naive then "naive-join"
        else
          match Relalg.Yannakakis.plan sub with
          | Relalg.Yannakakis.Acyclic _ -> "yannakakis"
          | Relalg.Yannakakis.Naive_fallback -> "naive-fallback"
      in
      Printf.printf "method: %s\n" plan_name;
      let ctx = Relalg.Exec.make ~budget ~trace ~metrics () in
      let t0 = Unix.gettimeofday () in
      let answer =
        if naive then Relalg.Yannakakis.evaluate_naive ~ctx sub ~output
        else Relalg.Yannakakis.evaluate ~ctx sub ~output
      in
      let ms = (Unix.gettimeofday () -. t0) *. 1000. in
      match answer with
      | Error e ->
        Printf.eprintf "minconn: error=%s\n" (Minconn.Errors.to_string e);
        die (Minconn.Errors.exit_code e)
      | Ok result ->
        let n = Relalg.Relation.cardinality result in
        let attrs = Relalg.Relation.attrs result in
        if attrs <> [] then begin
          Printf.printf "result: %s\n" (String.concat " | " attrs);
          let shown = min n limit in
          for i = 0 to shown - 1 do
            Printf.printf "  %s\n"
              (String.concat " | " (Relalg.Relation.row result i))
          done;
          if shown < n then
            Printf.printf "(%d tuples, showing %d)\n" n shown
          else Printf.printf "(%d tuples)\n" n
        end
        else
          (* Boolean query: no output attributes, only a cardinality
             (the witness count under bag semantics, 0/1 under set). *)
          Printf.printf "result: %s (%d)\n"
            (if n > 0 then "yes" else "no")
            n;
        (* Timing goes to stderr so stdout stays deterministic. *)
        Printf.eprintf "minconn: query-ms=%.1f\n" ms;
        flush_observability ())
  in
  let db_file =
    Arg.(value & pos 0 (some file) None & info [] ~docv:"DBFILE")
  in
  let gen =
    Arg.(
      value & opt (some string) None
      & info [ "gen" ] ~docv:"FAMILY"
          ~doc:"Generate the database instead of reading $(i,DBFILE): \
                $(b,chain) (path schema r_i(a_i,a_i+1)) or $(b,acyclic) \
                (random alpha-acyclic scheme).")
  in
  let size =
    Arg.(
      value & opt int 5
      & info [ "size" ] ~docv:"N"
          ~doc:"Generator: number of relations (chain length)")
  in
  let rows =
    Arg.(
      value & opt int 1000
      & info [ "rows" ] ~docv:"R"
          ~doc:"Generator: tuples per relation before dedup")
  in
  let domain =
    Arg.(
      value & opt int 1000
      & info [ "domain" ] ~docv:"D"
          ~doc:"Generator: value dictionary size (chain only)")
  in
  let dangling =
    Arg.(
      value & opt float 0.0
      & info [ "dangling" ] ~docv:"F"
          ~doc:"Generator (chain): fraction of the last relation's \
                tuples made dangling — unjoinable values a semijoin \
                reducer prunes up front")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"S" ~doc:"Generator seed")
  in
  let bag =
    Arg.(
      value & flag
      & info [ "bag" ]
          ~doc:"Bag semantics: duplicate rows keep their multiplicities \
                through joins and projections (default: set semantics, \
                duplicates collapse)")
  in
  let terminals =
    Arg.(
      value & opt (list string) []
      & info [ "t"; "terminals" ] ~docv:"NAMES"
          ~doc:"Comma-separated object names (attributes and/or \
                relations) to connect; attribute terminals become the \
                output columns, in order")
  in
  let naive =
    Arg.(
      value & flag
      & info [ "naive" ]
          ~doc:"Skip the semijoin reducer and evaluate with a plain \
                left-fold join (baseline for comparison)")
  in
  let limit =
    Arg.(
      value & opt int 10
      & info [ "limit" ] ~docv:"K"
          ~doc:"Print at most $(docv) result rows (default 10)")
  in
  let timeout_ms =
    Arg.(
      value & opt (some int) None
      & info [ "timeout" ] ~docv:"MS" ~doc:"Wall-clock budget in ms")
  in
  let fuel =
    Arg.(
      value & opt (some int) None
      & info [ "fuel" ] ~docv:"N"
          ~doc:"Fuel budget: rows scanned/emitted by the executor count \
                against it")
  in
  let trace_file =
    Arg.(
      value & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Write an NDJSON span stream (relalg.reduce, relalg.join) \
                to $(docv)")
  in
  let metrics_file =
    Arg.(
      value & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:"Write a JSON metrics snapshot (relalg.* counters) to \
                $(docv)")
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:
         "Answer a conjunctive query end to end: compile the database's \
          scheme, find the minimal conceptual connection for the \
          terminals (Algorithm 1), and execute it with the Yannakakis \
          engine. Exit codes: 0 answered, 3 disconnected, 4 input \
          error, 5 budget exhausted.")
    Term.(
      const run $ db_file $ gen $ size $ rows $ domain $ dangling $ seed
      $ bag $ terminals $ naive $ limit $ timeout_ms $ fuel $ trace_file
      $ metrics_file)

(* --------------------------------------------------------------- serve *)

let serve_cmd =
  let run path deltas_file host port max_inflight watermark shared_fuel
      pressure_fuel timeout_ms read_timeout_ms max_body no_degrade cache_dir
      metrics_file trace_file =
    if max_inflight < 1 then begin
      prerr_endline "minconn: error=invalid-max-inflight (need >= 1)";
      exit exit_input_error
    end;
    let nb = or_die (load_bigraph path) in
    let cache = open_plan_cache_opt cache_dir in
    (* --deltas: serve the evolved schema from the start. The cache's
       delta rung patches a cached base plan instead of recompiling. *)
    let nb, pre_compiled =
      match deltas_file with
      | None -> (nb, None)
      | Some dfile ->
        let ops, evolved = load_deltas nb dfile in
        let compiled, _ =
          Minconn.Plan_cache.find_or_compile ?cache ~deltas:ops
            nb.Mc_io.Parse.graph
        in
        (evolved, Some compiled)
    in
    let metrics = Observe.Metrics.make () in
    let trace =
      match trace_file with
      | None -> Observe.Trace.disabled
      | Some _ -> Observe.Trace.make ()
    in
    let config =
      {
        Serve.Server.default_config with
        host;
        port;
        max_inflight;
        degrade_watermark =
          (match watermark with
          | Some w -> w
          | None -> max 1 (3 * max_inflight / 4));
        pressure_fuel;
        shared_fuel;
        request_timeout_ms = timeout_ms;
        read_timeout_ms;
        write_timeout_ms = read_timeout_ms;
        max_body_bytes = max_body;
        degrade = not no_degrade;
      }
    in
    match
      Serve.Server.create ~config ?cache ?compiled:pre_compiled ~metrics
        ~trace nb
    with
    | Error msg ->
      Printf.eprintf "minconn: error=serve-bind msg=%s\n" msg;
      exit exit_input_error
    | Ok server ->
      let stop _ = Serve.Server.stop server in
      Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
      Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
      Printf.printf
        "minconn: serving %s port=%d max-inflight=%d watermark=%d\n%!" path
        (Serve.Server.port server) config.Serve.Server.max_inflight
        config.Serve.Server.degrade_watermark;
      Serve.Server.run server;
      Option.iter
        (fun p -> Observe.Export.write_metrics ~path:p metrics)
        metrics_file;
      Option.iter (fun p -> Observe.Export.write_trace ~path:p trace) trace_file;
      let c name =
        Option.value ~default:0 (Observe.Metrics.find_counter metrics name)
      in
      Printf.printf
        "minconn: drained requests=%d shed=%d degraded=%d errors=%d\n%!"
        (c "serve.requests") (c "serve.shed") (c "serve.degraded")
        (c "serve.errors")
  in
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let deltas_file =
    Arg.(
      value & opt (some file) None
      & info [ "deltas" ] ~docv:"DFILE"
          ~doc:"Apply this delta file to the schema before serving (see \
                the evolve subcommand); with --plan-cache, a cached \
                base plan is patched instead of recompiled. Further \
                deltas can be applied live via POST /schema/delta.")
  in
  let host =
    Arg.(
      value & opt string "127.0.0.1"
      & info [ "host" ] ~docv:"ADDR" ~doc:"Bind address")
  in
  let port =
    Arg.(
      value & opt int 0
      & info [ "port" ] ~docv:"PORT"
          ~doc:"Listen port (0 picks an ephemeral one; the bound port \
                is printed on the startup line)")
  in
  let max_inflight =
    Arg.(
      value & opt int 32
      & info [ "max-inflight" ] ~docv:"N"
          ~doc:"Admission cap: beyond $(docv) concurrent connections, \
                new ones get an immediate 503 overloaded response")
  in
  let watermark =
    Arg.(
      value & opt (some int) None
      & info [ "watermark" ] ~docv:"N"
          ~doc:"Degradation watermark (default 3/4 of --max-inflight): \
                above $(docv) in-flight connections, queries answer \
                from cheaper ladder rungs under a small fuel budget \
                and say so in X-Minconn-Pressure/-Rung headers")
  in
  let shared_fuel =
    Arg.(
      value & opt (some int) None
      & info [ "shared-fuel" ] ~docv:"N"
          ~doc:"Server-wide fuel tank all request budgets draw from; \
                exhaustion cancels in-flight siblings at their next \
                checkpoint")
  in
  let pressure_fuel =
    Arg.(
      value & opt int 64
      & info [ "pressure-fuel" ] ~docv:"N"
          ~doc:"Fuel for each query answered above the watermark")
  in
  let timeout_ms =
    Arg.(
      value & opt int 5000
      & info [ "timeout" ] ~docv:"MS" ~doc:"Per-request wall-clock budget")
  in
  let read_timeout_ms =
    Arg.(
      value & opt int 10000
      & info [ "io-timeout" ] ~docv:"MS"
          ~doc:"Socket read/write deadline; stalled clients are reaped")
  in
  let max_body =
    Arg.(
      value & opt int (64 * 1024)
      & info [ "max-body" ] ~docv:"BYTES"
          ~doc:"Request body cap (413 beyond it)")
  in
  let no_degrade =
    Arg.(
      value & flag
      & info [ "no-degrade" ]
          ~doc:"Answer 504 on budget exhaustion instead of degrading \
                down the ladder")
  in
  let cache_dir =
    Arg.(
      value & opt (some string) None
      & info [ "plan-cache" ] ~docv:"DIR"
          ~doc:"Reuse compiled plans from $(docv), exactly like solve")
  in
  let metrics_file =
    Arg.(
      value & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:"Write the final metrics snapshot to $(docv) on drain \
                (the same document GET /metrics serves live)")
  in
  let trace_file =
    Arg.(
      value & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Record per-request spans and write the NDJSON stream \
                to $(docv) on drain")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve minimal-connection queries over HTTP/1.1. POST /solve \
          with a terminal set (names separated by commas or \
          whitespace) answers the same bytes as solve --queries; POST \
          /schema/delta hot-swaps the schema by a delta file without \
          dropping inflight requests; GET /metrics, /trace and \
          /healthz expose observability. SIGTERM or SIGINT drains \
          gracefully: stop accepting, finish in-flight requests, \
          flush artifacts.")
    Term.(
      const run $ path $ deltas_file $ host $ port $ max_inflight $ watermark
      $ shared_fuel $ pressure_fuel $ timeout_ms $ read_timeout_ms $ max_body
      $ no_degrade $ cache_dir $ metrics_file $ trace_file)

(* ------------------------------------------------------------ generate *)

let generate_cmd =
  let run cls seed size =
    let rng = Workloads.Rng.make ~seed in
    let graph =
      match cls with
      | "forest" -> Workloads.Gen_bipartite.forest rng ~n:size
      | "62" -> Workloads.Gen_bipartite.chordal_62 rng ~n_right:size ~max_size:4
      | "alpha" ->
        Workloads.Gen_bipartite.alpha_bipartite rng ~n_right:size ~max_size:4
      | "61" -> Workloads.Gen_bipartite.chordal_61_flower rng ~petals:size
      | "gnp" ->
        Workloads.Gen_bipartite.gnp rng ~nl:size ~nr:size ~p:0.3
      | other ->
        (* scale-<family>: the streaming bounded-degree generators.
           [size] is the total node target, not a per-side count, and
           construction goes edge-stream -> CSR, so large instances are
           cheap to build (writing them out as text is the slow part). *)
        (match
           match String.index_opt other '-' with
           | Some 5 when String.sub other 0 5 = "scale" ->
             Workloads.Gen_scale.family_of_string
               (String.sub other 6 (String.length other - 6))
           | _ -> None
         with
        | Some fam ->
          Workloads.Gen_scale.to_bigraph
            (Workloads.Gen_scale.make fam ~target_n:size ~seed)
        | None ->
          prerr_endline
            ("unknown class '" ^ other
           ^ "' (use forest|62|61|alpha|gnp|scale-forest|scale-chordal62|scale-alpha)");
          exit exit_input_error)
    in
    let nb =
      {
        Mc_io.Parse.graph;
        left_names =
          Array.init (Bigraph.nl graph) (fun i -> Printf.sprintf "a%d" i);
        right_names =
          Array.init (Bigraph.nr graph) (fun j -> Printf.sprintf "r%d" j);
      }
    in
    print_string (Mc_io.Parse.bigraph_to_string nb)
  in
  let cls =
    Arg.(
      value & opt string "62"
      & info [ "c"; "class" ] ~docv:"CLASS"
          ~doc:
            "forest, 62, 61, alpha, gnp, or a streaming scale family \
             (scale-forest, scale-chordal62, scale-alpha; $(b,--size) is \
             then the total node target)")
  in
  let seed = Arg.(value & opt int 0 & info [ "s"; "seed" ] ~docv:"SEED") in
  let size = Arg.(value & opt int 8 & info [ "n"; "size" ] ~docv:"N") in
  Cmd.v
    (Cmd.info "generate" ~doc:"Emit a random instance of a chordality class")
    Term.(const run $ cls $ seed $ size)

(* ------------------------------------------------------------ hypergraph *)

let hypergraph_cmd =
  let run path =
    let text = read_file path in
    match Mc_io.Parse.hypergraph_of_string text with
    | Error e ->
      prerr_endline (Format.asprintf "%s: %a" path Mc_io.Parse.pp_error e);
      exit exit_input_error
    | Ok (h, _, edge_names) ->
      let module A = Hypergraphs.Acyclicity in
      Printf.printf "degree: %s\n" (A.degree_name (A.degree h));
      Printf.printf "width (min-fill of the 2-section): %d\n"
        (Hypergraphs.Decomposition.width (Hypergraphs.Decomposition.of_hypergraph h));
      List.iter
        (fun goal ->
          match A.why_not h goal with
          | Some w ->
            Format.printf "not %s: %a\n" (A.degree_name goal) A.pp_witness w
          | None -> ())
        [ A.Berge_acyclic; A.Gamma_acyclic; A.Beta_acyclic; A.Alpha_acyclic ];
      ignore edge_names
  in
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  Cmd.v
    (Cmd.info "hypergraph"
       ~doc:"Classify a hypergraph file: degree, width and cycle witnesses")
    Term.(const run $ path)

(* ----------------------------------------------------------------- dot *)

let dot_cmd =
  let run path =
    let nb = or_die (load_bigraph path) in
    print_string
      (Graphs.Dot.of_bipartite_like
         ~name:(Filename.basename path)
         ~left_labels:(fun i -> nb.Mc_io.Parse.left_names.(i))
         ~right_labels:(fun j -> nb.Mc_io.Parse.right_names.(j))
         ~nl:(Bigraph.nl nb.Mc_io.Parse.graph)
         ~nr:(Bigraph.nr nb.Mc_io.Parse.graph)
         (Bigraph.edges nb.Mc_io.Parse.graph))
  in
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  Cmd.v
    (Cmd.info "dot" ~doc:"Export a bipartite graph file to Graphviz DOT")
    Term.(const run $ path)

(* ------------------------------------------------------------- figures *)

let figures_cmd =
  let run () =
    List.iter
      (fun (id, l) ->
        let g = l.Datamodel.Figures.graph in
        Printf.printf "%-4s %-55s %d+%d nodes, %d edges\n" id
          l.Datamodel.Figures.title (Bigraph.nl g) (Bigraph.nr g)
          (Bigraph.m g);
        print_string (Minconn.report g);
        print_newline ())
      Datamodel.Figures.all_labeled
  in
  Cmd.v
    (Cmd.info "figures" ~doc:"Print and classify the paper's figure instances")
    Term.(const run $ const ())

(* ---------------------------------------------------------------- demo *)

let demo_cmd =
  let run () =
    print_endline "Fig. 1 walk-through: query {EMPLOYEE, DATE}";
    let er = Datamodel.Figures.fig1_er in
    Datamodel.Er.interpretations ~k:3 er ~objects:Datamodel.Figures.fig1_query
    |> List.iteri (fun i nodes ->
           Printf.printf "  interpretation %d: {%s}\n" (i + 1)
             (String.concat ", " nodes));
    print_endline "";
    print_endline "Universal-relation interface over a small company database:";
    let db =
      Relalg.Database.make
        [
          ( "works",
            Relalg.Relation.make ~attrs:[ "emp"; "dept" ]
              [ [ "alice"; "toys" ]; [ "bob"; "books" ] ] );
          ( "located",
            Relalg.Relation.make ~attrs:[ "dept"; "floor" ]
              [ [ "toys"; "1" ]; [ "books"; "2" ] ] );
          ( "managed",
            Relalg.Relation.make ~attrs:[ "floor"; "manager" ]
              [ [ "1"; "zoe" ]; [ "2"; "yann" ] ] );
        ]
    in
    (match Datamodel.Interface.answer db ~query:[ "emp"; "manager" ] with
    | Ok a ->
      Printf.printf "  query {emp, manager} routed through: %s\n"
        (String.concat ", "
           a.Datamodel.Interface.connection.Datamodel.Query.relations_used);
      Format.printf "  %a@." Relalg.Relation.pp a.Datamodel.Interface.result
    | Error _ -> print_endline "  (query failed)")
  in
  Cmd.v (Cmd.info "demo" ~doc:"Run the Fig. 1 walk-through") Term.(const run $ const ())

(* A reader that goes away (head, a broken pipe, a dead socket) must
   end the run with a typed input-error exit, not a SIGPIPE kill: the
   signal is ignored process-wide so write failures surface as
   EPIPE/Sys_error, and the top-level handler below maps those to exit
   code 4. *)
let broken_pipe_exn = function
  | Unix.Unix_error (Unix.EPIPE, _, _) -> true
  | Sys_error msg ->
    (* Channel writes report strerror text; match the EPIPE phrasing. *)
    let n = String.length msg and p = "Broken pipe" in
    let k = String.length p in
    let rec scan i = i + k <= n && (String.sub msg i k = p || scan (i + 1)) in
    scan 0
  | _ -> false

let () =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  (match Sys.getenv_opt "MINCONN_DEBUG" with
  | Some _ ->
    Logs.set_reporter (Logs_fmt.reporter ());
    Logs.set_level (Some Logs.Debug)
  | None -> ());
  let info =
    Cmd.info "minconn" ~version:Minconn.version
      ~doc:
        "Minimal conceptual connections on chordal bipartite graphs \
         (Ausiello-D'Atri-Moscarini, PODS 1985)"
  in
  exit
    (try
       Cmd.eval ~catch:false
         (Cmd.group info
            [
              classify_cmd;
              compile_cmd;
              solve_cmd;
              evolve_cmd;
              relations_cmd;
              repair_cmd;
              interpretations_cmd;
              ask_cmd;
              query_cmd;
              dot_cmd;
              hypergraph_cmd;
              generate_cmd;
              figures_cmd;
              serve_cmd;
              demo_cmd;
            ])
     with e when broken_pipe_exn e ->
       prerr_endline "minconn: error=broken-pipe (output closed)";
       (* stdout's channel still buffers bytes that can never be
          delivered; repoint fd 1 at /dev/null so the at_exit flush
          succeeds instead of re-raising over our exit code. *)
       (try
          let dn = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
          Unix.dup2 dn Unix.stdout;
          Unix.close dn
        with Unix.Unix_error _ -> ());
       exit_input_error)
