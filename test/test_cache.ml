(* Persistent plan cache battery. Three fronts: (a) round-trip
   fidelity — a plan stored to disk and loaded back answers every
   query (plain, fuel-metered, degrade-off, and pooled --jobs 2
   batches) exactly as the fresh compile, and re-marshals to the same
   bytes; (b) the corruption battery — every damaged or stale envelope
   (empty, truncated, bit-flipped, wrong version/commit/schema,
   garbage payload) reads as the typed cold miss that names it, never
   a panic or a wrong answer, and [find_or_compile] recovers by
   recompiling and overwriting; (c) crash atomicity — a mid-write
   crash injected via [Runtime.Fault] leaves no visible entry, only a
   temp file the next store ignores and the TTL sweep reaps. Plus the
   LRU eviction policy and a store-succeeds regression over every
   figure graph and checked-in fixture. *)

open Graphs
open Bipartite
open Steiner

let check = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let seed_gen = QCheck2.Gen.int_range 0 1_000_000

module PC = Minconn.Plan_cache

(* ------------------------------------------------- temp-dir plumbing *)

let dir_counter = ref 0

let fresh_dir () =
  incr dir_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "minconn-test-cache.%d.%d" (Unix.getpid ()) !dir_counter)

let rm_rf dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> ()
  | names ->
    Array.iter
      (fun n -> try Sys.remove (Filename.concat dir n) with Sys_error _ -> ())
      names;
    (try Unix.rmdir dir with Unix.Unix_error _ -> ())

let with_cache ?max_bytes f =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  match PC.create ?max_bytes ~dir () with
  | Ok c -> f dir c
  | Error msg -> Alcotest.failf "cannot create cache in %s: %s" dir msg

let store_ok cache compiled =
  match PC.store cache compiled with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "store failed: %s" msg

let find_ok cache g =
  match PC.find cache g with
  | Ok c -> c
  | Error miss -> Alcotest.failf "expected a hit, got %s" (PC.miss_name miss)

let find_miss cache g =
  match PC.find cache g with
  | Ok _ -> Alcotest.fail "expected a miss, got a hit"
  | Error miss -> PC.miss_name miss

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* ------------------------------------------- answer-equality helpers *)

let sol_equal (a : Minconn.solution) (b : Minconn.solution) =
  Iset.equal a.Minconn.tree.Tree.nodes b.Minconn.tree.Tree.nodes
  && a.Minconn.tree.Tree.edges = b.Minconn.tree.Tree.edges
  && a.Minconn.method_used = b.Minconn.method_used
  && a.Minconn.optimal = b.Minconn.optimal
  && a.Minconn.profile = b.Minconn.profile
  && a.Minconn.provenance = b.Minconn.provenance

let result_equal u ~p a b =
  match (a, b) with
  | Ok sa, Ok sb ->
    sol_equal sa sb && Tree.verify u ~terminals:p sa.Minconn.tree
  | Error ea, Error eb -> ea = eb
  | Ok _, Error _ | Error _, Ok _ -> false

let batches_equal u queries ra rb =
  List.length ra = List.length rb
  && List.for_all2
       (fun p (a, b) -> result_equal u ~p a b)
       queries (List.combine ra rb)

let query_batch rng g =
  List.init 6 (fun _ ->
      if Workloads.Rng.bool rng 0.1 then Iset.empty
      else
        Workloads.Gen_bipartite.random_terminals rng g
          ~k:(1 + Workloads.Rng.int rng 4))

(* ------------------------------------------------ round-trip property *)

(* The core invariant behind the warm path: a plan that went through
   envelope -> disk -> envelope answers exactly like the compile it
   replaced. Checked on plain sessions, per-query fuel budgets with
   degrade on and off, and a 2-domain pooled batch against the loaded
   plan. *)
let loaded_matches_fresh rng g =
  let u = Bigraph.ugraph g in
  let queries = query_batch rng g in
  with_cache @@ fun _dir cache ->
  let fresh = Minconn.Compiled.compile g in
  store_ok cache fresh;
  let loaded = find_ok cache g in
  let bytes_stable =
    Minconn.Compiled.to_bytes loaded = Minconn.Compiled.to_bytes fresh
  in
  let sf = Minconn.Session.create fresh in
  let sl = Minconn.Session.create loaded in
  let plain =
    batches_equal u queries
      (Minconn.Session.solve_many sf queries)
      (Minconn.Session.solve_many sl queries)
  in
  let fuel = 1 + Workloads.Rng.int rng 40 in
  let mb _ = Minconn.Budget.make ~fuel () in
  let rf_fuel = Minconn.Session.solve_many ~make_budget:mb sf queries in
  let fueled =
    batches_equal u queries rf_fuel
      (Minconn.Session.solve_many ~make_budget:mb sl queries)
  in
  let no_degrade =
    batches_equal u queries
      (Minconn.Session.solve_many ~make_budget:mb ~degrade:false sf queries)
      (Minconn.Session.solve_many ~make_budget:mb ~degrade:false sl queries)
  in
  let pooled =
    Minconn.Pool.with_pool ~domains:2 (fun pool ->
        batches_equal u queries rf_fuel
          (Minconn.Session.solve_many ~pool ~make_budget:mb sl queries))
  in
  bytes_stable && plain && fueled && no_degrade && pooled

let prop_family ~name gen =
  QCheck2.Test.make ~count:40 ~name seed_gen (fun seed ->
      let rng = Workloads.Rng.make ~seed in
      loaded_matches_fresh rng (gen rng))

let prop_roundtrip_gnp =
  prop_family ~name:"loaded plan = fresh compile (bipartite G(n,p))"
    (fun rng ->
      let nl = 2 + Workloads.Rng.int rng 9
      and nr = 2 + Workloads.Rng.int rng 9 in
      Workloads.Gen_bipartite.gnp rng ~nl ~nr ~p:0.3)

let prop_roundtrip_chordal62 =
  prop_family ~name:"loaded plan = fresh compile ((6,2)-chordal)" (fun rng ->
      let n_right = 2 + Workloads.Rng.int rng 6 in
      Workloads.Gen_bipartite.chordal_62 rng ~n_right ~max_size:4)

let prop_roundtrip_alpha =
  prop_family ~name:"loaded plan = fresh compile (alpha-acyclic)" (fun rng ->
      let n_right = 2 + Workloads.Rng.int rng 6 in
      Workloads.Gen_bipartite.alpha_bipartite rng ~n_right ~max_size:4)

let prop_roundtrip_forest =
  prop_family ~name:"loaded plan = fresh compile (forest)" (fun rng ->
      let n = 2 + Workloads.Rng.int rng 12 in
      Workloads.Gen_bipartite.forest rng ~n)

(* The schema hash keys the store: equal graphs agree on it, and any
   edge/size perturbation moves it (so a stale entry can never be
   offered to the wrong schema). *)
let prop_schema_hash_keys =
  QCheck2.Test.make ~count:100 ~name:"schema_hash separates schemas"
    seed_gen
    (fun seed ->
      let rng = Workloads.Rng.make ~seed in
      let nl = 2 + Workloads.Rng.int rng 9
      and nr = 2 + Workloads.Rng.int rng 9 in
      let g = Workloads.Gen_bipartite.gnp rng ~nl ~nr ~p:0.3 in
      let h = Minconn.Compiled.schema_hash g in
      let same = h = Minconn.Compiled.schema_hash g in
      let bigger =
        Workloads.Gen_bipartite.gnp rng ~nl:(nl + 1) ~nr ~p:0.3
      in
      same && h <> Minconn.Compiled.schema_hash bigger)

(* ---------------------------------------------- corruption battery *)

let test_graph () =
  let rng = Workloads.Rng.make ~seed:42 in
  let g = Workloads.Gen_bipartite.chordal_62 rng ~n_right:5 ~max_size:4 in
  let p = Workloads.Gen_bipartite.random_terminals rng g ~k:3 in
  (g, p)

(* Damage one stored entry, then demand the full recovery contract:
   [find] reports exactly the expected typed miss, [find_or_compile]
   still produces the fresh answer (recompile, never a panic or a
   wrong result), and its overwrite turns the next [find] into a
   hit. *)
let corruption_case ~name ~expect mutate () =
  let g, p = test_graph () in
  let u = Bigraph.ugraph g in
  with_cache @@ fun _dir cache ->
  let fresh = Minconn.Compiled.compile g in
  store_ok cache fresh;
  let entry = PC.entry_path cache g in
  mutate entry (read_file entry);
  check_string (name ^ ": miss reason") expect (find_miss cache g);
  let recovered, outcome = PC.find_or_compile ~cache g in
  check (name ^ ": recovery is a miss") true (outcome = `Miss);
  let want = Minconn.Session.query (Minconn.Session.create fresh) ~p in
  let got = Minconn.Session.query (Minconn.Session.create recovered) ~p in
  check (name ^ ": recovered answer equals fresh") true
    (result_equal u ~p want got);
  ignore (find_ok cache g : Minconn.Compiled.t);
  check_string (name ^ ": entry healed") "hit"
    (match PC.find_or_compile ~cache g with _, `Hit -> "hit" | _ -> "miss")

let flip_byte s i =
  let b = Bytes.of_string s in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
  Bytes.to_string b

(* Re-wrap an arbitrary payload in a self-consistent envelope: length
   and digest match the bytes, so only the innermost guard
   ([Compiled.of_bytes]) can reject it. *)
let reenvelope entry payload =
  let blob = read_file entry in
  let commit_line =
    match String.split_on_char '\n' blob with
    | _magic :: commit :: _ -> commit
    | _ -> Alcotest.fail "stored entry has no commit line"
  in
  let schema =
    Filename.chop_suffix (Filename.basename entry) ".plan"
  in
  Printf.sprintf
    "minconn-plan/2\n%s\nschema %s\njournal -\nlength %d\ndigest %s\n%s"
    commit_line schema (String.length payload)
    (Digest.to_hex (Digest.string payload))
    payload

let corruption_cases =
  [
    ("empty file", "truncated", fun entry _blob -> write_file entry "");
    ( "header cut mid-envelope",
      "truncated",
      fun entry blob ->
        (* Keep the magic and commit lines only. *)
        let upto =
          let first = String.index blob '\n' in
          String.index_from blob (first + 1) '\n' + 1
        in
        write_file entry (String.sub blob 0 upto) );
    ( "payload truncated",
      "truncated",
      fun entry blob ->
        write_file entry (String.sub blob 0 (String.length blob - 10)) );
    ( "trailing garbage appended",
      "truncated",
      fun entry blob -> write_file entry (blob ^ "xxxx") );
    ( "payload bit flip",
      "checksum-mismatch",
      fun entry blob ->
        write_file entry (flip_byte blob (String.length blob - 3)) );
    ( "future format version",
      "version-mismatch",
      fun entry blob ->
        let rest = String.sub blob 14 (String.length blob - 14) in
        write_file entry ("minconn-plan/9" ^ rest) );
    ( "foreign build commit",
      "commit-mismatch",
      fun entry blob ->
        let nl = String.index blob '\n' in
        let rest =
          let second = String.index_from blob (nl + 1) '\n' in
          String.sub blob second (String.length blob - second)
        in
        write_file entry
          (String.sub blob 0 (nl + 1) ^ "commit someone-elses-build" ^ rest)
    );
    ( "delta journal line truncated",
      "truncated",
      fun entry blob ->
        (* Keep magic, commit and schema lines; cut the envelope at
           the journal line. *)
        let upto =
          let rec skip i k =
            if k = 0 then i else skip (String.index_from blob i '\n' + 1) (k - 1)
          in
          skip 0 3
        in
        write_file entry (String.sub blob 0 upto) );
    ( "journal from a different delta sequence",
      "delta-mismatch",
      fun entry blob ->
        (* A fresh lookup must refuse an entry whose journal line
           records some delta lineage: same base schema, different
           schema of record. *)
        let lines = String.split_on_char '\n' blob in
        let rewritten =
          List.mapi
            (fun i l ->
              if i = 3 then "journal " ^ String.make 32 'd' else l)
            lines
        in
        write_file entry (String.concat "\n" rewritten) );
    ( "entry filed under wrong schema",
      "schema-mismatch",
      fun entry blob ->
        (* Same bytes, different key: simulate a renamed/collided
           entry by rewriting the schema header line. *)
        let hash = String.make 32 '0' in
        let lines = String.split_on_char '\n' blob in
        let rewritten =
          List.mapi
            (fun i l -> if i = 2 then "schema " ^ hash else l)
            lines
        in
        write_file entry (String.concat "\n" rewritten) );
    ( "not an envelope at all",
      "unreadable",
      fun entry _blob -> write_file entry "PK\x03\x04 random zip junk\n" );
    ( "valid envelope, garbage payload",
      "unreadable",
      fun entry _blob ->
        write_file entry (reenvelope entry "this is not a marshal blob") );
    ( "valid envelope, truncated marshal",
      "unreadable",
      fun entry blob ->
        (* A cut Marshal blob behind a recomputed digest: the envelope
           passes, [of_bytes] must still refuse. *)
        let nl4 =
          let rec skip i k =
            if k = 0 then i else skip (String.index_from blob i '\n' + 1) (k - 1)
          in
          skip 0 6
        in
        let payload = String.sub blob nl4 (String.length blob - nl4) in
        let cut = String.sub payload 0 (String.length payload / 2) in
        write_file entry (reenvelope entry cut) );
  ]

let test_miss_absent () =
  let g, _ = test_graph () in
  with_cache @@ fun _dir cache ->
  check_string "no entry yet" "absent" (find_miss cache g)

(* The publish rename survives one transient failure — injected via
   the ["cache.rename"] Fault hook — retried exactly once, counted as
   [cache.store_retry], with the entry visible afterwards. Two
   consecutive failures spend the retry and degrade to the uncached
   path: typed error, no published entry, no temp residue. *)
let test_rename_retry () =
  let g, _ = test_graph () in
  with_cache @@ fun dir cache ->
  let metrics = Observe.Metrics.make () in
  Runtime.Fault.with_op ~op:"cache.rename" ~times:1 (fun () ->
      match PC.store ~metrics cache (Minconn.Compiled.compile g) with
      | Ok () -> ()
      | Error m -> Alcotest.failf "store with one rename fault: %s" m);
  check "retry counted once" true
    (List.assoc_opt "cache.store_retry" (Observe.Metrics.counters metrics)
    = Some 1);
  ignore (find_ok cache g : Minconn.Compiled.t);
  let g2 =
    Workloads.Gen_bipartite.gnp (Workloads.Rng.make ~seed:77) ~nl:6 ~nr:6
      ~p:0.4
  in
  let metrics2 = Observe.Metrics.make () in
  Runtime.Fault.with_op ~op:"cache.rename" ~times:2 (fun () ->
      match PC.store ~metrics:metrics2 cache (Minconn.Compiled.compile g2) with
      | Error msg ->
        check_string "typed degrade" "injected fault: cache.rename" msg
      | Ok () -> Alcotest.fail "store must degrade once the retry is spent");
  check "spent retry still counted" true
    (List.assoc_opt "cache.store_retry" (Observe.Metrics.counters metrics2)
    = Some 1);
  check_string "no entry published" "absent" (find_miss cache g2);
  check "no temp residue" true
    (Array.for_all
       (fun n -> not (Filename.check_suffix n ".tmp"))
       (Sys.readdir dir))

(* ------------------------------------------------- crash atomicity *)

let test_crash_before_first_byte () =
  let g, p = test_graph () in
  let u = Bigraph.ugraph g in
  with_cache @@ fun dir cache ->
  let fresh = Minconn.Compiled.compile g in
  let entry = PC.entry_path cache g in
  (match
     Runtime.Fault.with_write_crash ~after_bytes:0 (fun () ->
         PC.store cache fresh)
   with
  | _ -> Alcotest.fail "armed store did not crash"
  | exception Runtime.Fault.Injected_crash -> ());
  check "no visible entry after crash" false (Sys.file_exists entry);
  let tmp_left =
    Array.exists
      (fun n -> Filename.check_suffix n ".tmp")
      (Sys.readdir dir)
  in
  check "partial temp left behind (real-crash state)" true tmp_left;
  check_string "reader sees a cold miss" "absent" (find_miss cache g);
  (* Recovery: the next store renames over cleanly and answers match. *)
  store_ok cache fresh;
  let loaded = find_ok cache g in
  let want = Minconn.Session.query (Minconn.Session.create fresh) ~p in
  let got = Minconn.Session.query (Minconn.Session.create loaded) ~p in
  check "post-crash store serves the right answer" true
    (result_equal u ~p want got)

(* A plan bigger than one write chunk, killed mid-file: the temp holds
   a prefix, the final path never appears. *)
let test_crash_mid_write () =
  let rng = Workloads.Rng.make ~seed:7 in
  (* Dense enough that even the compact CSR-only serialized form spans
     several 64 KiB write chunks. *)
  let g = Workloads.Gen_bipartite.gnp rng ~nl:400 ~nr:400 ~p:0.15 in
  with_cache @@ fun dir cache ->
  let fresh = Minconn.Compiled.compile g in
  let blob_len = String.length (Minconn.Compiled.to_bytes fresh) in
  check "plan spans multiple write chunks" true (blob_len > 2 * 65536);
  let entry = PC.entry_path cache g in
  (match
     Runtime.Fault.with_write_crash ~after_bytes:65536 (fun () ->
         PC.store cache fresh)
   with
  | _ -> Alcotest.fail "armed store did not crash"
  | exception Runtime.Fault.Injected_crash -> ());
  check "no visible entry after mid-write crash" false
    (Sys.file_exists entry);
  let partial =
    Array.fold_left
      (fun acc n ->
        if Filename.check_suffix n ".tmp" then
          Some (Unix.stat (Filename.concat dir n)).Unix.st_size
        else acc)
      None (Sys.readdir dir)
  in
  (match partial with
  | None -> Alcotest.fail "expected a partial temp file"
  | Some sz ->
    check "temp holds a strict prefix" true (sz >= 65536 && sz < blob_len));
  check_string "reader still sees a cold miss" "absent" (find_miss cache g);
  store_ok cache fresh;
  ignore (find_ok cache g : Minconn.Compiled.t)

let test_stale_temp_sweep () =
  let g, _ = test_graph () in
  with_cache @@ fun dir cache ->
  let stale = Filename.concat dir "deadbeef.plan.999.1.tmp" in
  write_file stale "partial";
  Unix.utimes stale 1.0 1.0;
  let fresh_tmp = Filename.concat dir "cafebabe.plan.999.2.tmp" in
  write_file fresh_tmp "partial";
  store_ok cache (Minconn.Compiled.compile g);
  check "stale temp reaped by the post-store sweep" false
    (Sys.file_exists stale);
  check "recent temp (a live writer's) kept" true (Sys.file_exists fresh_tmp)

(* ------------------------------------------------------ LRU policy *)

let test_lru_eviction () =
  let rng = Workloads.Rng.make ~seed:11 in
  let graphs =
    List.init 4 (fun _ ->
        Workloads.Gen_bipartite.gnp rng ~nl:8 ~nr:8 ~p:0.4)
  in
  match graphs with
  | [ g1; g2; g3; g4 ] ->
    let dir = fresh_dir () in
    Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
    let big =
      match PC.create ~dir () with
      | Ok c -> c
      | Error m -> Alcotest.failf "create: %s" m
    in
    List.iter (fun g -> store_ok big (Minconn.Compiled.compile g)) graphs;
    let size g =
      match List.assoc_opt (Minconn.Compiled.schema_hash g) (PC.entries big) with
      | Some s -> s
      | None -> Alcotest.failf "entry for graph missing after store"
    in
    let s2 = size g2 and s3 = size g3 and s4 = size g4 in
    (* Pin the recency order: g1 oldest ... g4 newest. *)
    List.iteri
      (fun i g ->
        Unix.utimes (PC.entry_path big g) (float_of_int (100 * (i + 1)))
          (float_of_int (100 * (i + 1))))
      graphs;
    (* A cap with room for exactly the three newest: re-storing g4
       must evict g1 (LRU), keep g2 and g3, and never evict itself. *)
    let capped =
      match PC.create ~max_bytes:(s2 + s3 + s4) ~dir () with
      | Ok c -> c
      | Error m -> Alcotest.failf "create capped: %s" m
    in
    let metrics = Observe.Metrics.make () in
    (match PC.store ~metrics capped (Minconn.Compiled.compile g4) with
    | Ok () -> ()
    | Error m -> Alcotest.failf "capped store: %s" m);
    check "oldest entry evicted" false (Sys.file_exists (PC.entry_path capped g1));
    check "second-oldest kept" true (Sys.file_exists (PC.entry_path capped g2));
    check "third kept" true (Sys.file_exists (PC.entry_path capped g3));
    check "just-written entry never evicted" true
      (Sys.file_exists (PC.entry_path capped g4));
    check "under the cap afterwards" true
      (PC.total_bytes capped <= s2 + s3 + s4);
    check "eviction counted" true
      (List.assoc_opt "cache.evict" (Observe.Metrics.counters metrics) = Some 1)
  | _ -> assert false

(* A hit refreshes recency: after touching the oldest entry via
   [find], the eviction victim is the *second*-oldest. *)
let test_lru_hit_refreshes () =
  let rng = Workloads.Rng.make ~seed:13 in
  let graphs =
    List.init 3 (fun _ ->
        Workloads.Gen_bipartite.gnp rng ~nl:8 ~nr:8 ~p:0.4)
  in
  match graphs with
  | [ g1; g2; g3 ] ->
    let dir = fresh_dir () in
    Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
    let big =
      match PC.create ~dir () with
      | Ok c -> c
      | Error m -> Alcotest.failf "create: %s" m
    in
    List.iter (fun g -> store_ok big (Minconn.Compiled.compile g)) graphs;
    let size g =
      match List.assoc_opt (Minconn.Compiled.schema_hash g) (PC.entries big) with
      | Some s -> s
      | None -> Alcotest.failf "entry missing"
    in
    let total = size g1 + size g2 + size g3 in
    List.iteri
      (fun i g ->
        Unix.utimes (PC.entry_path big g) (float_of_int (100 * (i + 1)))
          (float_of_int (100 * (i + 1))))
      [ g1; g2 ];
    ignore (find_ok big g1 : Minconn.Compiled.t);
    (* One byte short of fitting everything: exactly one entry must
       go, and recency (not insertion order) must pick it. *)
    let capped =
      match PC.create ~max_bytes:(total - 1) ~dir () with
      | Ok c -> c
      | Error m -> Alcotest.failf "create capped: %s" m
    in
    store_ok capped (Minconn.Compiled.compile g3);
    check "touched entry survives" true
      (Sys.file_exists (PC.entry_path capped g1));
    check "untouched older entry evicted" false
      (Sys.file_exists (PC.entry_path capped g2))
  | _ -> assert false

(* -------------------------------------- metrics and counters *)

let test_counters () =
  let g, _ = test_graph () in
  with_cache @@ fun _dir cache ->
  let metrics = Observe.Metrics.make () in
  let count name =
    match List.assoc_opt name (Observe.Metrics.counters metrics) with
    | Some n -> n
    | None -> 0
  in
  ignore (PC.find_or_compile ~metrics ~cache g);
  check "first lookup misses" true (count "cache.miss" = 1);
  check "miss stores" true (count "cache.store" = 1);
  ignore (PC.find_or_compile ~metrics ~cache g);
  check "second lookup hits" true (count "cache.hit" = 1);
  check "no spurious second store" true (count "cache.store" = 1)

(* --------------------------------------------- evolved-plan entries *)

(* The delta-aware lookup ladder: exact evolved entry -> patch the
   base schema's cached plan -> cold compile of the evolved schema.
   Every rung stores under the evolved key [<base>+<journal>.plan],
   and a patched plan answers exactly like a fresh compile of the
   evolved schema. Also the satellite contract for the typed miss: an
   entry whose journal hash disagrees with the lookup's reads as
   [delta-mismatch], never a hit. *)
let test_evolved_cache () =
  let rng = Workloads.Rng.make ~seed:4242 in
  let g, _ = test_graph () in
  with_cache @@ fun _dir cache ->
  let metrics = Observe.Metrics.make () in
  let count name =
    match List.assoc_opt name (Observe.Metrics.counters metrics) with
    | Some n -> n
    | None -> 0
  in
  let apply_all deltas =
    match Minconn.Delta.apply_all g deltas with
    | Ok t -> t
    | Error m -> Alcotest.failf "deltas do not apply: %s" m
  in
  let deltas = [ Minconn.Delta.Add_relation (Iset.of_list [ 0; 1 ]) ] in
  let target = apply_all deltas in
  (match PC.find_evolved cache ~base:g ~deltas with
  | Ok _ -> Alcotest.fail "evolved entry cannot exist yet"
  | Error m -> check_string "cold evolved miss" "absent" (PC.miss_name m));
  (* Rung 3 (cold): nothing cached at all -> compile the evolved
     schema, store it under the evolved key. *)
  let c1, o1 = PC.find_or_compile ~metrics ~cache ~deltas g in
  check "cold delta lookup is a miss" true (o1 = `Miss);
  check "cold delta lookup compiles the evolved schema" true
    (Minconn.Bigraph.equal (Minconn.Compiled.graph c1) target);
  (* Rung 1 (exact): the store above makes the next lookup a hit... *)
  let _c2, o2 = PC.find_or_compile ~metrics ~cache ~deltas g in
  check "evolved entry is an exact hit" true (o2 = `Hit);
  (* ...without ever creating a fresh entry for the base schema. *)
  check_string "fresh lookup unaffected by evolved entries" "absent"
    (find_miss cache g);
  (* Rung 2 (patch): with the base's fresh plan cached, a new delta
     sequence is served by patching it, not recompiling. *)
  store_ok cache (Minconn.Compiled.compile g);
  let deltas2 = [ Minconn.Delta.Add_relation (Iset.of_list [ 0 ]) ] in
  let target2 = apply_all deltas2 in
  let c3, o3 = PC.find_or_compile ~metrics ~cache ~deltas:deltas2 g in
  check "served by patching the cached base plan" true (o3 = `Patched);
  check "patch counted" true (count "cache.patched" = 1);
  let u2 = Bigraph.ugraph target2 in
  let p2 = Workloads.Gen_bipartite.random_terminals rng target2 ~k:3 in
  let fresh2 = Minconn.Compiled.compile target2 in
  let want = Minconn.Session.query (Minconn.Session.create fresh2) ~p:p2 in
  let got = Minconn.Session.query (Minconn.Session.create c3) ~p:p2 in
  check "patched plan answers like the fresh compile" true
    (result_equal u2 ~p:p2 want got);
  (* The patched plan was stored under its evolved key: exact hit. *)
  let _c4, o4 = PC.find_or_compile ~metrics ~cache ~deltas:deltas2 g in
  check "patched entry now an exact hit" true (o4 = `Hit);
  (match PC.find_evolved cache ~base:g ~deltas:deltas2 with
  | Ok c -> check "find_evolved loads the patched plan" true
      (Minconn.Bigraph.equal (Minconn.Compiled.graph c) target2)
  | Error m -> Alcotest.failf "find_evolved: %s" (PC.miss_name m));
  (* Typed miss: an evolved entry misfiled under the base's fresh
     name has a matching schema line but a foreign journal hash. *)
  let evolved_file = PC.evolved_path cache ~base:g ~deltas:deltas2 in
  write_file (PC.entry_path cache g) (read_file evolved_file);
  check_string "misfiled evolved entry is a delta-mismatch"
    "delta-mismatch" (find_miss cache g)

(* ------------------------------- marshal-safety regression (fixtures) *)

(* Every figure graph and every checked-in fixture must survive
   compile -> to_bytes -> of_bytes -> store -> find. This is the
   regression gate for the Compiled.t marshal-safety audit: a closure
   or lazy smuggled into the plan type fails here on every input, not
   just in production. *)
let test_save_every_figure () =
  with_cache @@ fun _dir cache ->
  List.iter
    (fun (name, labeled) ->
      let g = labeled.Datamodel.Figures.graph in
      let compiled = Minconn.Compiled.compile g in
      let bytes =
        match Minconn.Compiled.to_bytes compiled with
        | b -> b
        | exception Invalid_argument msg ->
          Alcotest.failf "%s: Compiled.t not marshalable: %s" name msg
      in
      (match Minconn.Compiled.of_bytes bytes with
      | Some c -> check (name ^ ": graph round-trips") true
          (Minconn.Bigraph.equal (Minconn.Compiled.graph c) g)
      | None -> Alcotest.failf "%s: of_bytes rejected own output" name);
      (match PC.store cache compiled with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s: store failed: %s" name m);
      ignore (find_ok cache g : Minconn.Compiled.t))
    Datamodel.Figures.all_labeled

let test_save_every_fixture () =
  with_cache @@ fun _dir cache ->
  (* runtest runs in the test build dir; `dune exec` from the root. *)
  let fixture_dir =
    if Sys.file_exists "fixtures" then "fixtures" else "test/fixtures"
  in
  let fixtures =
    match Sys.readdir fixture_dir with
    | exception Sys_error _ -> [||]
    | names ->
      Array.of_list
        (List.filter
           (fun n -> Filename.check_suffix n ".bigraph")
           (Array.to_list names))
  in
  check "at least one .bigraph fixture present" true
    (Array.length fixtures > 0);
  Array.iter
    (fun name ->
      let path = Filename.concat fixture_dir name in
      match Mc_io.Parse.bigraph_of_string (read_file path) with
      | Error _ -> Alcotest.failf "%s: fixture does not parse" name
      | Ok nb ->
        let g = nb.Mc_io.Parse.graph in
        let compiled = Minconn.Compiled.compile g in
        (match PC.store cache compiled with
        | Ok () -> ()
        | Error m -> Alcotest.failf "%s: store failed: %s" name m);
        ignore (find_ok cache g : Minconn.Compiled.t))
    fixtures

(* ------------------------------------------------------------ glue *)

let qcheck_cases =
  [
    prop_roundtrip_gnp;
    prop_roundtrip_chordal62;
    prop_roundtrip_alpha;
    prop_roundtrip_forest;
    prop_schema_hash_keys;
  ]

let () =
  Alcotest.run "plan_cache"
    [
      ("round-trip", List.map QCheck_alcotest.to_alcotest qcheck_cases);
      ( "corruption",
        Alcotest.test_case "absent entry" `Quick test_miss_absent
        :: List.map
             (fun (name, expect, mutate) ->
               Alcotest.test_case name `Quick
                 (corruption_case ~name ~expect mutate))
             corruption_cases );
      ( "crash",
        [
          Alcotest.test_case "crash before first byte" `Quick
            test_crash_before_first_byte;
          Alcotest.test_case "crash mid-write" `Quick test_crash_mid_write;
          Alcotest.test_case "stale temp sweep" `Quick test_stale_temp_sweep;
        ] );
      ( "eviction",
        [
          Alcotest.test_case "LRU under a byte cap" `Quick test_lru_eviction;
          Alcotest.test_case "hit refreshes recency" `Quick
            test_lru_hit_refreshes;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters" `Quick test_counters;
          Alcotest.test_case "rename retried once and counted" `Quick
            test_rename_retry;
        ] );
      ( "evolution",
        [
          Alcotest.test_case "evolved-plan lookup ladder" `Quick
            test_evolved_cache;
        ] );
      ( "marshal-safety",
        [
          Alcotest.test_case "every figure graph saves" `Quick
            test_save_every_figure;
          Alcotest.test_case "every fixture saves" `Quick
            test_save_every_fixture;
        ] );
    ]
