(* The resource-governed runtime: budgets, the degradation ladder, the
   typed error boundary, and the deterministic fault-injection harness.

   The fault matrix drives every rung of the ladder — as the rung that
   produced the answer and as an abandoned attempt — asserting the
   recorded provenance, the exit-code mapping, and validity of the
   returned tree in each cell. *)

open Graphs
open Bipartite
open Steiner

module Budget = Runtime.Budget
module Degrade = Runtime.Degrade
module Errors = Runtime.Errors
module Fault = Runtime.Fault

let check = Alcotest.(check bool)

let seed_of ~section t =
  (* Fault seeds derive from the shared trial stream so a given test
     case injects the same trace run to run. *)
  Workloads.Rng.int (Workloads.Rng.for_trial ~section ~trial:t) 1_000_000

(* A connected instance outside every structured class with more
   terminals than the exact DP accepts: all nodes are terminals. *)
let over_cap_instance () =
  let rec find seed =
    if seed > 200 then Alcotest.fail "no over-cap instance found"
    else
      let rng = Workloads.Rng.for_trial ~section:"runtime-overcap" ~trial:seed in
      let g = Workloads.Gen_bipartite.gnp rng ~nl:12 ~nr:12 ~p:0.4 in
      let u = Bigraph.ugraph g in
      let p = Ugraph.nodes u in
      let profile = Classify.profile g in
      if
        Traverse.connects u p
        && (not profile.Classify.chordal_41)
        && (not profile.Classify.chordal_62)
        && Iset.cardinal p > Dreyfus_wagner.max_terminals
      then (g, u, p)
      else find (seed + 1)
  in
  find 0

(* A connected instance outside the structured classes with few
   terminals, so the unfaulted ladder starts at the exact DP. *)
let dp_instance () =
  let g = Minconn.Figures.fig2.Minconn.Figures.graph in
  let p = Iset.of_list [ 0; 2 ] in
  (g, Bigraph.ugraph g, p)

let solution_ok u ~p (s : Minconn.solution) =
  Tree.verify u ~terminals:p s.Minconn.tree

(* ------------------------------------------------- acceptance: X3C *)

(* The Theorem-2 gadget with 3q+1 = 16 terminals sits under the DP cap
   but far over a 50 ms deadline: the solver must come back quickly
   with a valid degraded cover and honest provenance instead of
   hanging in the subset DP. *)
let test_x3c_deadline () =
  let rng = Workloads.Rng.for_trial ~section:"runtime-x3c" ~trial:0 in
  let inst = Workloads.Gen_x3c.planted rng ~q:5 ~distractors:5 in
  let red = Reductions.theorem2 inst in
  let g = red.Reductions.graph in
  let p = red.Reductions.terminals in
  check "gadget under the DP terminal cap" true
    (Iset.cardinal p <= Dreyfus_wagner.max_terminals);
  let t0 = Unix.gettimeofday () in
  let budget = Minconn.Budget.make ~timeout_ms:50 () in
  (match Minconn.solve ~budget g ~p with
  | Error e -> Alcotest.failf "expected degraded solve, got %s" (Errors.to_string e)
  | Ok s ->
    check "tree valid" true (solution_ok (Bigraph.ugraph g) ~p s);
    check "degraded" true (Minconn.Degrade.degraded s.Minconn.provenance);
    check "not reported optimal" false s.Minconn.optimal;
    (match s.Minconn.provenance.Degrade.attempts with
    | { Degrade.rung = Errors.Exact_dp; why = Degrade.Timeout } :: _ -> ()
    | _ -> Alcotest.fail "first attempt should be the timed-out exact DP"));
  let elapsed = Unix.gettimeofday () -. t0 in
  (* Generous wall-clock bound: the point is "milliseconds, not the
     minutes the 2^16-mask DP would take". *)
  check "came back promptly" true (elapsed < 5.0)

(* With degradation disabled the same instance is a typed error with
   exit code 5, and the internal signal never escapes. *)
let test_x3c_no_degrade () =
  let rng = Workloads.Rng.for_trial ~section:"runtime-x3c" ~trial:1 in
  let inst = Workloads.Gen_x3c.planted rng ~q:5 ~distractors:5 in
  let red = Reductions.theorem2 inst in
  let budget = Minconn.Budget.make ~timeout_ms:50 () in
  match
    Minconn.solve ~budget ~degrade:false red.Reductions.graph
      ~p:red.Reductions.terminals
  with
  | Error (Errors.Budget_exhausted Errors.Exact_dp as e) ->
    check "exit code 5" true (Errors.exit_code e = 5)
  | Error e -> Alcotest.failf "wrong error: %s" (Errors.to_string e)
  | Ok _ -> Alcotest.fail "50ms cannot finish the 16-terminal DP"

(* ------------------------------------------------- the fault matrix *)

(* Rung ran = Exact_structured (forest path), nothing abandoned. *)
let test_rung_exact_structured () =
  let g = Minconn.Figures.fig3a.Minconn.Figures.graph in
  let p = Iset.of_list [ 0; 3 ] in
  match Minconn.solve g ~p with
  | Ok s ->
    check "ran forest rung" true
      (s.Minconn.provenance.Degrade.ran = Errors.Exact_structured);
    check "no attempts" true (s.Minconn.provenance.Degrade.attempts = []);
    check "exact" true (s.Minconn.provenance.Degrade.guarantee = Degrade.Exact);
    check "not degraded" false (Degrade.degraded s.Minconn.provenance)
  | Error e -> Alcotest.failf "unexpected: %s" (Errors.to_string e)

(* Rung ran = Exact_dp, nothing abandoned. *)
let test_rung_exact_dp () =
  let g, u, p = dp_instance () in
  match Minconn.solve g ~p with
  | Ok s ->
    check "ran exact DP rung" true
      (s.Minconn.provenance.Degrade.ran = Errors.Exact_dp);
    check "tree valid" true (solution_ok u ~p s);
    check "exact" true s.Minconn.optimal
  | Error e -> Alcotest.failf "unexpected: %s" (Errors.to_string e)

(* Rung ran = Fixpoint after the DP was skipped over the terminal cap:
   the pre-attempt provenance says so instead of a silent
   optimal=false. *)
let test_rung_fixpoint_over_cap () =
  let g, u, p = over_cap_instance () in
  match Minconn.solve g ~p with
  | Ok s ->
    check "ran fixpoint rung" true
      (s.Minconn.provenance.Degrade.ran = Errors.Fixpoint);
    check "over-cap attempt recorded" true
      (s.Minconn.provenance.Degrade.attempts
      = [ { Degrade.rung = Errors.Exact_dp; why = Degrade.Terminals_over_cap } ]);
    check "heuristic guarantee" true
      (s.Minconn.provenance.Degrade.guarantee = Degrade.Heuristic);
    check "degraded (exit 2 condition)" true
      (Degrade.degraded s.Minconn.provenance);
    check "tree valid" true (solution_ok u ~p s)
  | Error e -> Alcotest.failf "unexpected: %s" (Errors.to_string e)

(* Rung ran = Mst after fault-injected exhaustion kills both budgeted
   rungs; the un-budgeted approximation still answers, with the whole
   descent recorded. *)
let test_rung_mst_after_faults reason () =
  let g, u, p = dp_instance () in
  let budget = Minconn.Budget.make () in
  let result =
    Fault.with_plan
      ~arm:(fun () -> Fault.arm_after ~checks:3 ~reason)
      (fun () -> Minconn.solve ~budget g ~p)
  in
  match result with
  | Ok s ->
    let why = Degrade.reason_of_stop reason in
    check "ran MST rung" true (s.Minconn.provenance.Degrade.ran = Errors.Mst);
    check "both budgeted rungs abandoned" true
      (s.Minconn.provenance.Degrade.attempts
      = [
          { Degrade.rung = Errors.Exact_dp; why };
          { Degrade.rung = Errors.Fixpoint; why };
        ]);
    check "ratio guarantee" true
      (s.Minconn.provenance.Degrade.guarantee = Degrade.Ratio 2.0);
    check "tree valid" true (solution_ok u ~p s)
  | Error e -> Alcotest.failf "unexpected: %s" (Errors.to_string e)

(* Abandoning the structured rung: fault the Algorithm-2 fixpoint on a
   (6,2)-chordal instance mid-elimination. *)
let test_rung_structured_abandoned () =
  let g = Minconn.Figures.fig3b.Minconn.Figures.graph in
  let p = Iset.of_list [ 0; 2 ] in
  let budget = Minconn.Budget.make () in
  let result =
    Fault.with_plan
      ~arm:(fun () -> Fault.arm_after ~checks:1 ~reason:Errors.Fuel)
      (fun () -> Minconn.solve ~budget g ~p)
  in
  match result with
  | Ok s ->
    check "fell to MST" true (s.Minconn.provenance.Degrade.ran = Errors.Mst);
    check "structured rung abandoned on fuel" true
      (s.Minconn.provenance.Degrade.attempts
      = [ { Degrade.rung = Errors.Exact_structured; why = Degrade.Fuel } ]);
    check "tree valid" true (solution_ok (Bigraph.ugraph g) ~p s)
  | Error e -> Alcotest.failf "unexpected: %s" (Errors.to_string e)

(* ~degrade:false surfaces the first exhausted rung as a typed error. *)
let test_no_degrade_error () =
  let g, _, p = dp_instance () in
  let budget = Minconn.Budget.make () in
  let result =
    Fault.with_plan
      ~arm:(fun () -> Fault.arm_after ~checks:0 ~reason:Errors.Timeout)
      (fun () -> Minconn.solve ~budget ~degrade:false g ~p)
  in
  match result with
  | Error (Errors.Budget_exhausted Errors.Exact_dp as e) ->
    check "exit code 5" true (Errors.exit_code e = 5)
  | Error e -> Alcotest.failf "wrong error: %s" (Errors.to_string e)
  | Ok _ -> Alcotest.fail "fault at check 0 must exhaust the DP"

(* Probabilistic injection is deterministic in the seed: identical
   plans yield identical descents. *)
let test_probabilistic_determinism () =
  let g, _, p = dp_instance () in
  let seed = seed_of ~section:"runtime-prob" 0 in
  let run () =
    let budget = Minconn.Budget.make () in
    Fault.with_plan
      ~arm:(fun () -> Fault.arm ~seed ~p:0.05 ~reason:Errors.Fuel)
      (fun () -> Minconn.solve ~budget g ~p)
  in
  match (run (), run ()) with
  | Ok a, Ok b ->
    check "same rung ran" true
      (a.Minconn.provenance.Degrade.ran = b.Minconn.provenance.Degrade.ran);
    check "same attempts" true
      (a.Minconn.provenance.Degrade.attempts
      = b.Minconn.provenance.Degrade.attempts);
    check "same tree" true
      (Iset.equal a.Minconn.tree.Tree.nodes b.Minconn.tree.Tree.nodes)
  | Error ea, Error eb ->
    check "same error" true (ea = eb)
  | _ -> Alcotest.fail "runs with the same seed diverged"

(* Fuel-only budgets exhaust deterministically too (no clock
   involved): same fuel, same descent, twice. *)
let test_fuel_determinism () =
  let g, _, p = dp_instance () in
  let run () = Minconn.solve ~budget:(Minconn.Budget.make ~fuel:3 ()) g ~p in
  match (run (), run ()) with
  | Ok a, Ok b ->
    check "fuel exhaustion recorded" true
      (List.exists
         (fun at -> at.Degrade.why = Degrade.Fuel)
         a.Minconn.provenance.Degrade.attempts);
    check "same descent" true
      (a.Minconn.provenance.Degrade.attempts
      = b.Minconn.provenance.Degrade.attempts)
  | _ -> Alcotest.fail "fuel-bounded runs must both solve via the MST rung"

(* ------------------------------------- cancellation leaves no residue *)

(* The elimination fixpoint is purely functional: killing it
   mid-elimination and re-running unfaulted must give exactly the
   fresh answer. *)
let test_cancellation_clean_rerun () =
  let g = Minconn.Figures.fig3b.Minconn.Figures.graph in
  let u = Bigraph.ugraph g in
  let p = Iset.of_list [ 0; 2 ] in
  let budget = Budget.make () in
  let interrupted =
    Fault.with_plan
      ~arm:(fun () -> Fault.arm_after ~checks:2 ~reason:Errors.Fuel)
      (fun () -> Budget.protect budget (fun () -> Algorithm2.solve ~budget u ~p))
  in
  (match interrupted with
  | Error Errors.Fuel -> ()
  | Error Errors.Timeout -> Alcotest.fail "wrong stop reason"
  | Ok _ -> Alcotest.fail "fault after 2 checks must interrupt");
  check "harness disarmed" false (Fault.armed ());
  match (Algorithm2.solve u ~p, Algorithm2.solve u ~p) with
  | Some a, Some b ->
    check "clean rerun equals fresh run" true
      (Iset.equal a.Tree.nodes b.Tree.nodes)
  | _ -> Alcotest.fail "fig3b is solvable"

(* Budgeted runs never alter results on in-class instances: a generous
   budget and no budget agree on method and tree size. *)
let test_generous_budget_same_result () =
  List.iter
    (fun (g, p) ->
      let free = Minconn.solve g ~p in
      let budgeted =
        Minconn.solve ~budget:(Minconn.Budget.make ~fuel:1_000_000_000 ()) g ~p
      in
      match (free, budgeted) with
      | Ok a, Ok b ->
        check "same method" true (a.Minconn.method_used = b.Minconn.method_used);
        check "same size" true
          (Tree.node_count a.Minconn.tree = Tree.node_count b.Minconn.tree);
        check "neither degraded" false
          (Degrade.degraded a.Minconn.provenance
          || Degrade.degraded b.Minconn.provenance)
      | _ -> Alcotest.fail "both must solve")
    [
      (Minconn.Figures.fig3a.Minconn.Figures.graph, Iset.of_list [ 0; 3 ]);
      (Minconn.Figures.fig3b.Minconn.Figures.graph, Iset.of_list [ 0; 2 ]);
      (Minconn.Figures.fig2.Minconn.Figures.graph, Iset.of_list [ 0; 2 ]);
    ]

(* --------------------------------------------- typed error boundary *)

let test_boundary_errors () =
  let g = Minconn.Figures.fig2.Minconn.Figures.graph in
  (match Minconn.solve g ~p:Iset.empty with
  | Error (Errors.Invalid_instance _ as e) ->
    check "exit code 4" true (Errors.exit_code e = 4)
  | _ -> Alcotest.fail "empty terminal set");
  (match Minconn.solve g ~p:(Iset.of_list [ 999 ]) with
  | Error (Errors.Invalid_instance _) -> ()
  | _ -> Alcotest.fail "out-of-range terminal");
  let disconnected = Bigraph.of_edges ~nl:2 ~nr:2 [ (0, 0); (1, 1) ] in
  (match Minconn.solve disconnected ~p:(Iset.of_list [ 0; 1 ]) with
  | Error (Errors.Disconnected_terminals as e) ->
    check "exit code 3" true (Errors.exit_code e = 3)
  | _ -> Alcotest.fail "disconnected terminals");
  check "parse error exit code" true
    (Errors.exit_code (Errors.Parse_error { line = 1; col = 1; msg = "x" }) = 4)

let test_budget_protect () =
  let b = Budget.make ~fuel:0 () in
  (match Budget.protect b (fun () -> Budget.check b) with
  | Error Errors.Fuel -> ()
  | _ -> Alcotest.fail "fuel 0 exhausts on the first check");
  match Budget.protect Budget.unlimited (fun () -> 42) with
  | Ok 42 -> check "unlimited passes through" true true
  | _ -> Alcotest.fail "protect must return the value"

(* The serving pattern: one server-wide fuel tank, one view per
   concurrent request. When the pool drains, every sibling — busy on
   its own thread — must stop at its next cooperative checkpoint with
   the typed [Fuel] error, the handle must record the cancellation,
   and views created after the drain must stop on their first check. *)
let test_shared_concurrent_drain () =
  let h = Budget.Shared.make ~fuel:10_000 () in
  let results = Array.make 4 (Ok ()) in
  let worker i =
    let b = Budget.Shared.view h in
    results.(i) <-
      Budget.protect b (fun () ->
          while true do
            Budget.check b
          done)
  in
  let threads = List.init 4 (fun i -> Thread.create worker i) in
  List.iter Thread.join threads;
  Array.iteri
    (fun i r ->
      match r with
      | Error Errors.Fuel -> ()
      | Error e ->
        Alcotest.failf "view %d stopped with %s, not fuel" i
          (Errors.stop_reason_name e)
      | Ok () -> Alcotest.failf "view %d never stopped" i)
    results;
  (match Budget.Shared.cancelled h with
  | Some Errors.Fuel -> ()
  | Some e ->
    Alcotest.failf "handle recorded %s, not fuel" (Errors.stop_reason_name e)
  | None -> Alcotest.fail "handle must record the cancellation");
  let late = Budget.Shared.view h in
  match Budget.protect late (fun () -> Budget.check late) with
  | Error Errors.Fuel -> ()
  | _ -> Alcotest.fail "a view created after the drain must stop immediately"

(* A per-request wall-clock cap tightens a shared view's deadline even
   when the handle itself has no deadline and plenty of fuel. *)
let test_shared_view_timeout () =
  let h = Budget.Shared.make ~fuel:max_int () in
  let b = Budget.Shared.view ~timeout_ms:10 h in
  match
    Budget.protect b (fun () ->
        while true do
          Budget.check b
        done)
  with
  | Error Errors.Timeout -> ()
  | Error e ->
    Alcotest.failf "view stopped with %s, not timeout" (Errors.stop_reason_name e)
  | Ok () -> Alcotest.fail "capped view never stopped"

let () =
  Alcotest.run "runtime"
    [
      ( "acceptance",
        [
          Alcotest.test_case "X3C gadget degrades under 50ms deadline" `Slow
            test_x3c_deadline;
          Alcotest.test_case "X3C gadget errors with --no-degrade" `Slow
            test_x3c_no_degrade;
        ] );
      ( "fault-matrix",
        [
          Alcotest.test_case "rung: exact-structured (forest)" `Quick
            test_rung_exact_structured;
          Alcotest.test_case "rung: exact-dp" `Quick test_rung_exact_dp;
          Alcotest.test_case "rung: fixpoint via terminal cap" `Quick
            test_rung_fixpoint_over_cap;
          Alcotest.test_case "rung: mst after injected fuel exhaustion" `Quick
            (test_rung_mst_after_faults Errors.Fuel);
          Alcotest.test_case "rung: mst after injected timeout" `Quick
            (test_rung_mst_after_faults Errors.Timeout);
          Alcotest.test_case "structured rung abandoned mid-fixpoint" `Quick
            test_rung_structured_abandoned;
          Alcotest.test_case "no-degrade surfaces Budget_exhausted" `Quick
            test_no_degrade_error;
          Alcotest.test_case "probabilistic injection is deterministic" `Quick
            test_probabilistic_determinism;
          Alcotest.test_case "fuel budgets are deterministic" `Quick
            test_fuel_determinism;
        ] );
      ( "cancellation",
        [
          Alcotest.test_case "mid-elimination kill leaves no residue" `Quick
            test_cancellation_clean_rerun;
          Alcotest.test_case "generous budget never alters in-class results"
            `Quick test_generous_budget_same_result;
          Alcotest.test_case "shared tank drain cancels every sibling view"
            `Quick test_shared_concurrent_drain;
          Alcotest.test_case "per-request timeout tightens a shared view"
            `Quick test_shared_view_timeout;
        ] );
      ( "errors",
        [
          Alcotest.test_case "typed boundary and exit codes" `Quick
            test_boundary_errors;
          Alcotest.test_case "Budget.protect converts the signal" `Quick
            test_budget_protect;
        ] );
    ]
