(* evolve-smoke driver: apply the checked-in delta file to the fixture
   schema and require that the incrementally patched plan answers the
   fixture queries byte-identically to `solve` on the emitted evolved
   schema — cold, patched-from-cache, and exact-evolved-hit. Usage:
     evolve_check CLI FIXTURE DELTAS QUERIES \
       EVOLVED_OUT SOLVE_OUT EVOLVE_OUT CACHED_OUT
   Exits nonzero with a diagnostic on any violation, failing the dune
   rule (and hence runtest). *)

let fail fmt =
  Printf.ksprintf (fun s -> prerr_endline ("evolve-smoke: " ^ s); exit 1) fmt

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let () =
  let cli, fixture, deltas, queries, evolved_out, solve_out, evolve_out,
      cached_out =
    match Sys.argv with
    | [| _; a; b; c; d; e; f; g; h |] -> (a, b, c, d, e, f, g, h)
    | _ ->
      fail
        "usage: evolve_check CLI FIXTURE DELTAS QUERIES EVOLVED_OUT \
         SOLVE_OUT EVOLVE_OUT CACHED_OUT"
  in
  let sh cmd =
    let code = Sys.command cmd in
    if code <> 0 then fail "command exited %d: %s" code cmd
  in
  let q = Filename.quote in
  (* The evolved schema as a plain graph file... *)
  sh
    (Printf.sprintf "%s evolve %s --deltas %s --emit > %s 2> /dev/null"
       (q cli) (q fixture) (q deltas) (q evolved_out));
  (* ...answered from scratch by the ordinary batch entry point... *)
  sh
    (Printf.sprintf "%s solve %s --queries %s > %s"
       (q cli) (q evolved_out) (q queries) (q solve_out));
  let want = read_file solve_out in
  if want = "" then fail "solve on the evolved schema produced no output";
  (* ...must match the incrementally patched plan byte for byte. *)
  sh
    (Printf.sprintf "%s evolve %s --deltas %s --queries %s > %s 2> /dev/null"
       (q cli) (q fixture) (q deltas) (q queries) (q evolve_out));
  if read_file evolve_out <> want then
    fail "evolve --queries answers differ from solve on the evolved schema";
  (* Same contract through the plan cache: seed the base entry, then
     the first evolve must patch it and the second must hit the stored
     evolved entry — both byte-identical again. *)
  let dir = "evolve_smoke_store" in
  (match Sys.readdir dir with
  | names -> Array.iter (fun n -> Sys.remove (Filename.concat dir n)) names
  | exception Sys_error _ -> ());
  sh
    (Printf.sprintf "%s compile %s --plan-cache %s > /dev/null"
       (q cli) (q fixture) (q dir));
  let cached_evolve err_to =
    sh
      (Printf.sprintf
         "%s evolve %s --deltas %s --queries %s --plan-cache %s > %s 2> %s"
         (q cli) (q fixture) (q deltas) (q queries) (q dir) (q cached_out)
         (q err_to))
  in
  cached_evolve (cached_out ^ ".err1");
  if not (contains (read_file (cached_out ^ ".err1")) "cache=patched") then
    fail "first cached evolve did not patch the base plan";
  if read_file cached_out <> want then
    fail "patched-plan answers differ from solve on the evolved schema";
  cached_evolve (cached_out ^ ".err2");
  if not (contains (read_file (cached_out ^ ".err2")) "cache=hit") then
    fail "second cached evolve did not hit the stored evolved entry";
  if read_file cached_out <> want then
    fail "evolved-entry answers differ from solve on the evolved schema"
