(* cache-smoke driver: compile a checked-in fixture twice into a
   scratch plan cache (the second run must report a hit), then run the
   batch entry point cold and warm against the same cache and require
   byte-identical answers.  Usage:
     cache_check CLI FIXTURE QUERIES C1_OUT C2_OUT COLD_OUT WARM_OUT
   Exits nonzero with a diagnostic on any violation, failing the dune
   rule (and hence runtest). *)

let fail fmt =
  Printf.ksprintf (fun s -> prerr_endline ("cache-smoke: " ^ s); exit 1) fmt

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let () =
  let cli, fixture, queries, c1_out, c2_out, cold_out, warm_out =
    match Sys.argv with
    | [| _; a; b; c; d; e; f; g |] -> (a, b, c, d, e, f, g)
    | _ ->
      fail "usage: cache_check CLI FIXTURE QUERIES C1_OUT C2_OUT COLD_OUT WARM_OUT"
  in
  let dir = "cache_smoke_store" in
  (* Start from an empty cache even on a stale build dir. *)
  (match Sys.readdir dir with
  | names ->
    Array.iter (fun n -> Sys.remove (Filename.concat dir n)) names
  | exception Sys_error _ -> ());
  let sh cmd =
    let code = Sys.command cmd in
    if code <> 0 then fail "command exited %d: %s" code cmd
  in
  let compile stdout_to =
    sh
      (Printf.sprintf "%s compile %s --plan-cache %s > %s"
         (Filename.quote cli) (Filename.quote fixture) (Filename.quote dir)
         (Filename.quote stdout_to))
  in
  compile c1_out;
  let first = read_file c1_out in
  if not (contains first "cache=stored") then
    fail "first compile did not store (got: %s)" (String.trim first);
  compile c2_out;
  let second = read_file c2_out in
  if not (contains second "cache=hit") then
    fail "second compile did not hit (got: %s)" (String.trim second);
  let solve stdout_to =
    sh
      (Printf.sprintf "%s solve %s --queries %s --plan-cache %s > %s"
         (Filename.quote cli) (Filename.quote fixture) (Filename.quote queries)
         (Filename.quote dir) (Filename.quote stdout_to))
  in
  (* Empty the cache again so the first solve is a true cold miss
     (compile + store) and the second is served from disk. *)
  Array.iter
    (fun n -> Sys.remove (Filename.concat dir n))
    (Sys.readdir dir);
  solve cold_out;
  solve warm_out;
  let cold = read_file cold_out in
  if cold = "" then fail "batch produced no output";
  if cold <> read_file warm_out then
    fail "warm-cache answers differ from cold-cache answers"
