(* serve-smoke: end-to-end check that the network service answers the
   same bytes as the batch CLI. Starts `minconn serve` on an ephemeral
   port, drives every fixture query through a socket, diffs each
   response body against the corresponding `solve --queries` block,
   validates GET /metrics, then SIGTERMs the server and requires a
   clean drain (exit 0).

   Usage: serve_check CLI FIXTURE QUERIES OUT METRICS_JSON *)

let die fmt =
  Printf.ksprintf
    (fun msg ->
      prerr_endline ("serve_check: " ^ msg);
      exit 1)
    fmt

let read_all ic =
  let b = Buffer.create 4096 in
  (try
     while true do
       Buffer.add_channel b ic 1
     done
   with End_of_file -> ());
  Buffer.contents b

let read_file path =
  let ic = open_in_bin path in
  let s = read_all ic in
  close_in ic;
  s

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* ------------------------------------------- the batch reference run *)

let solve_blocks cli fixture queries =
  let cmd = Printf.sprintf "%s solve %s --queries %s" cli fixture queries in
  let ic = Unix.open_process_in cmd in
  let out = read_all ic in
  (match Unix.close_process_in ic with
  | Unix.WEXITED 0 -> ()
  | _ -> die "reference `solve --queries` run failed");
  (* Per-query blocks sit between "-- query N: ... --" and the
     "minconn: query=N code=C" status line. *)
  let rec go acc cur = function
    | [] -> List.rev acc
    | l :: rest ->
      if starts_with "-- query" l then go acc (Some (Buffer.create 128)) rest
      else if starts_with "minconn: query=" l then (
        match cur with
        | Some b -> go (Buffer.contents b :: acc) None rest
        | None -> go acc None rest)
      else (
        match cur with
        | Some b ->
          Buffer.add_string b l;
          Buffer.add_char b '\n';
          go acc cur rest
        | None -> go acc None rest)
  in
  go [] None (String.split_on_char '\n' out)

let query_lines queries =
  read_file queries |> String.split_on_char '\n' |> List.map String.trim
  |> List.filter (fun l -> l <> "" && l.[0] <> '#')

(* --------------------------------------------------------- the server *)

let spawn_server cli fixture metrics_json =
  let out_r, out_w = Unix.pipe () in
  let pid =
    Unix.create_process cli
      [| cli; "serve"; fixture; "--port"; "0"; "--metrics"; metrics_json |]
      Unix.stdin out_w Unix.stderr
  in
  Unix.close out_w;
  let ic = Unix.in_channel_of_descr out_r in
  let banner = try input_line ic with End_of_file -> die "server died on start" in
  if not (starts_with "minconn: serving" banner) then
    die "unexpected server banner: %s" banner;
  let port =
    String.split_on_char ' ' banner
    |> List.find_map (fun tok ->
           if starts_with "port=" tok then
             int_of_string_opt (String.sub tok 5 (String.length tok - 5))
           else None)
  in
  match port with
  | Some p -> (pid, ic, p)
  | None -> die "no port in server banner: %s" banner

let connect port =
  let rec go tries =
    match
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      fd
    with
    | fd -> fd
    | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) when tries > 0 ->
      Unix.sleepf 0.05;
      go (tries - 1)
  in
  go 40

let post fd conn body =
  let req =
    Printf.sprintf "POST /solve HTTP/1.1\r\nHost: s\r\nContent-Length: %d\r\n\r\n%s"
      (String.length body) body
  in
  ignore (Unix.write_substring fd req 0 (String.length req) : int);
  match Serve.Http.read_response conn with
  | Ok r -> r
  | Error e -> die "response read failed: %s" (Serve.Http.read_error_name e)

let get fd conn path =
  let req =
    Printf.sprintf "GET %s HTTP/1.1\r\nHost: s\r\nContent-Length: 0\r\n\r\n" path
  in
  ignore (Unix.write_substring fd req 0 (String.length req) : int);
  match Serve.Http.read_response conn with
  | Ok r -> r
  | Error e -> die "response read failed: %s" (Serve.Http.read_error_name e)

(* -------------------------------------------------------------- main *)

let () =
  if Array.length Sys.argv < 6 then
    die "usage: serve_check CLI FIXTURE QUERIES OUT METRICS_JSON";
  let cli = Sys.argv.(1)
  and fixture = Sys.argv.(2)
  and queries = Sys.argv.(3)
  and out_path = Sys.argv.(4)
  and metrics_json = Sys.argv.(5) in
  let blocks = solve_blocks cli fixture queries in
  let lines = query_lines queries in
  if List.length blocks <> List.length lines then
    die "parsed %d reference blocks for %d queries" (List.length blocks)
      (List.length lines);
  let pid, _banner_ic, port = spawn_server cli fixture metrics_json in
  let fd = connect port in
  let conn = Serve.Http.conn fd in
  let transcript = Buffer.create 1024 in
  List.iteri
    (fun i (line, expected) ->
      let r = post fd conn line in
      if r.Serve.Http.code <> 200 then
        die "query %d (%s): status %d" (i + 1) line r.Serve.Http.code;
      if r.Serve.Http.resp_body <> expected then
        die
          "query %d (%s): socket answer differs from solve --queries\n\
           --- socket ---\n%s--- batch ---\n%s"
          (i + 1) line r.Serve.Http.resp_body expected;
      Printf.bprintf transcript "-- query %d: %s --\n%s" (i + 1) line
        r.Serve.Http.resp_body)
    (List.combine lines blocks);
  (* live metrics document must validate *)
  let m = get fd conn "/metrics" in
  (match Observe.Export.validate_metrics_string m.Serve.Http.resp_body with
  | Ok _ -> ()
  | Error msg -> die "live /metrics invalid: %s" msg);
  Unix.close fd;
  (* graceful drain on SIGTERM, flushing the metrics artifact *)
  Unix.kill pid Sys.sigterm;
  (match Unix.waitpid [] pid with
  | _, Unix.WEXITED 0 -> ()
  | _, Unix.WEXITED c -> die "server exited %d after SIGTERM" c
  | _, (Unix.WSIGNALED s | Unix.WSTOPPED s) -> die "server killed by signal %d" s);
  (match Observe.Export.validate_metrics_string (read_file metrics_json) with
  | Ok _ -> ()
  | Error msg -> die "drained metrics artifact invalid: %s" msg);
  let oc = open_out out_path in
  output_string oc (Buffer.contents transcript);
  close_out oc;
  Printf.printf "serve_check: %d queries byte-identical over the socket\n"
    (List.length lines)
