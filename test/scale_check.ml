(* scale-smoke: the million-node construction path at tier-1-affordable
   size — stream one n = 10^5 chordal62 instance direct to CSR, compile
   it, and answer a query burst through a session, all under a hard
   wall-clock budget. Catches accidental superlinear regressions in the
   construction or compile path (the full ladder to 10^6 lives in
   `bench scale`, which is not run on every test invocation). *)

let budget_s = 60.0

let () =
  let out = Sys.argv.(1) in
  let t0 = Unix.gettimeofday () in
  let inst =
    Workloads.Gen_scale.make Workloads.Gen_scale.Chordal62 ~target_n:100_000
      ~seed:1
  in
  let g = Workloads.Gen_scale.to_bigraph inst in
  let t_construct = Unix.gettimeofday () -. t0 in
  let plan = Minconn.Compiled.compile g in
  let t_compile = Unix.gettimeofday () -. t0 -. t_construct in
  let session = Minconn.Session.create plan in
  let blocks = Workloads.Gen_scale.n_blocks inst in
  let solved = ref 0 in
  for i = 0 to 7 do
    let p =
      Workloads.Gen_scale.block_terminals inst ~block:(i * (blocks - 1) / 7)
        ~k:3
    in
    match Minconn.Session.query session ~p with
    | Ok _ -> incr solved
    | Error e ->
      Printf.eprintf "scale_check: query %d failed: %s\n" i
        (Format.asprintf "%a" Minconn.Errors.pp e);
      exit 1
  done;
  let elapsed = Unix.gettimeofday () -. t0 in
  if elapsed > budget_s then begin
    Printf.eprintf "scale_check: %.1fs exceeds the %.0fs budget\n" elapsed
      budget_s;
    exit 1
  end;
  let oc = open_out out in
  Printf.fprintf oc
    "scale-smoke ok: n=%d m=%d components=%d construct=%.3fs compile=%.3fs \
     queries=%d/8\n"
    (Workloads.Gen_scale.n inst)
    (Workloads.Gen_scale.m inst)
    (Minconn.Compiled.n_components plan)
    t_construct t_compile !solved;
  close_out oc
