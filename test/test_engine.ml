(* Compile-once / query-many equivalence: a [Minconn.Session] over a
   compiled schema must answer every terminal-set query — success,
   typed error, budget-exhausted, or degraded — exactly as the
   one-shot [Minconn.solve] does, while reusing its scratch buffers
   across the batch. Also covers the lazily-memoized compiled handles
   on [Datamodel.Schema] / [Datamodel.Layered]. *)

open Graphs
open Bipartite
open Steiner

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let seed_gen = QCheck2.Gen.int_range 0 1_000_000

let sol_equal (a : Minconn.solution) (b : Minconn.solution) =
  Iset.equal a.Minconn.tree.Tree.nodes b.Minconn.tree.Tree.nodes
  && a.Minconn.tree.Tree.edges = b.Minconn.tree.Tree.edges
  && a.Minconn.method_used = b.Minconn.method_used
  && a.Minconn.optimal = b.Minconn.optimal
  && a.Minconn.profile = b.Minconn.profile
  && a.Minconn.provenance = b.Minconn.provenance

(* Equal results, and successful trees must actually be valid covers —
   two implementations agreeing on a broken tree should still fail. *)
let result_equal u ~p a b =
  match (a, b) with
  | Ok sa, Ok sb ->
    sol_equal sa sb && Tree.verify u ~terminals:p sa.Minconn.tree
  | Error ea, Error eb -> ea = eb
  | Ok _, Error _ | Error _, Ok _ -> false

(* A batch of terminal sets with deliberately unfiltered pathologies:
   singletons, disconnected picks, and the occasional empty set all
   must round-trip through the session identically to one-shot. *)
let query_batch rng g =
  List.init 6 (fun _ ->
      if Workloads.Rng.bool rng 0.1 then Iset.empty
      else
        Workloads.Gen_bipartite.random_terminals rng g
          ~k:(1 + Workloads.Rng.int rng 4))

let batch_matches_oneshot g queries =
  let u = Bigraph.ugraph g in
  let session = Minconn.Session.create (Minconn.Compiled.compile g) in
  let batch = Minconn.Session.solve_many session queries in
  List.for_all2
    (fun p r -> result_equal u ~p (Minconn.solve g ~p) r)
    queries batch

let prop_session_equal_gnp =
  QCheck2.Test.make ~count:150
    ~name:"Session.solve_many = per-call Minconn.solve (bipartite G(n,p))"
    seed_gen
    (fun seed ->
      let rng = Workloads.Rng.make ~seed in
      let nl = 2 + Workloads.Rng.int rng 9
      and nr = 2 + Workloads.Rng.int rng 9 in
      let g = Workloads.Gen_bipartite.gnp rng ~nl ~nr ~p:0.3 in
      batch_matches_oneshot g (query_batch rng g))

let prop_session_equal_chordal62 =
  QCheck2.Test.make ~count:150
    ~name:"Session.solve_many = per-call Minconn.solve ((6,2)-chordal)"
    seed_gen
    (fun seed ->
      let rng = Workloads.Rng.make ~seed in
      let n_right = 2 + Workloads.Rng.int rng 6 in
      let g = Workloads.Gen_bipartite.chordal_62 rng ~n_right ~max_size:4 in
      batch_matches_oneshot g (query_batch rng g))

(* Fuel-metered paths: the session must exhaust, abandon rungs, and
   degrade on exactly the same query the one-shot solver does, because
   compilation is never metered and fuel starts fresh per query. Only
   fuel budgets are used here — deadlines are wall-clock and would make
   the comparison racy. *)
let prop_session_equal_under_fuel =
  QCheck2.Test.make ~count:150
    ~name:"Session = one-shot under fuel budgets (degrade on and off)"
    seed_gen
    (fun seed ->
      let rng = Workloads.Rng.make ~seed in
      let nl = 2 + Workloads.Rng.int rng 9
      and nr = 2 + Workloads.Rng.int rng 9 in
      let g = Workloads.Gen_bipartite.gnp rng ~nl ~nr ~p:0.3 in
      let u = Bigraph.ugraph g in
      let p =
        Workloads.Gen_bipartite.random_terminals rng g
          ~k:(1 + Workloads.Rng.int rng 4)
      in
      let fuel = 1 + Workloads.Rng.int rng 40 in
      let session = Minconn.Session.create (Minconn.Compiled.compile g) in
      List.for_all
        (fun degrade ->
          let one =
            Minconn.solve ~budget:(Minconn.Budget.make ~fuel ()) ~degrade g ~p
          in
          let ses =
            Minconn.Session.query
              ~budget:(Minconn.Budget.make ~fuel ())
              ~degrade session ~p
          in
          result_equal u ~p one ses)
        [ true; false ])

let prop_relations_equal =
  QCheck2.Test.make ~count:150
    ~name:"Session.query_relations = Minconn.solve_min_relations" seed_gen
    (fun seed ->
      let rng = Workloads.Rng.make ~seed in
      let n_right = 2 + Workloads.Rng.int rng 6 in
      let g = Workloads.Gen_bipartite.chordal_62 rng ~n_right ~max_size:4 in
      let p =
        Workloads.Gen_bipartite.random_terminals rng g
          ~k:(1 + Workloads.Rng.int rng 4)
      in
      let session = Minconn.Session.create (Minconn.Compiled.compile g) in
      match
        ( Minconn.solve_min_relations g ~p,
          Minconn.Session.query_relations session ~p )
      with
      | Ok a, Ok b ->
        Iset.equal a.Algorithm1.tree.Tree.nodes b.Algorithm1.tree.Tree.nodes
        && a.Algorithm1.tree.Tree.edges = b.Algorithm1.tree.Tree.edges
        && a.Algorithm1.v2_count = b.Algorithm1.v2_count
        && a.Algorithm1.elimination_order = b.Algorithm1.elimination_order
      | Error ea, Error eb -> ea = eb
      | Ok _, Error _ | Error _, Ok _ -> false)

(* ------------------------------------------- deterministic ladder *)

(* fig2 with fuel 2 is the canonical degradation scenario: both paths
   must abandon the exact DP for the same reason and return the same
   MST-approximate answer (degrade on), or the same typed exhaustion
   (degrade off). *)
let test_degraded_equivalence () =
  let g = Minconn.Figures.fig2.Minconn.Figures.graph in
  let u = Bigraph.ugraph g in
  let p = Iset.of_list [ 0; 2 ] in
  let session = Minconn.Session.create (Minconn.Compiled.compile g) in
  let one =
    Minconn.solve ~budget:(Minconn.Budget.make ~fuel:2 ()) g ~p
  in
  let ses =
    Minconn.Session.query ~budget:(Minconn.Budget.make ~fuel:2 ()) session ~p
  in
  check "degraded answers equal" true (result_equal u ~p one ses);
  (match ses with
  | Ok s ->
    check "session answer is degraded" true
      (Minconn.Degrade.degraded s.Minconn.provenance)
  | Error _ -> Alcotest.fail "fuel 2 with degradation should still answer");
  let one_nd =
    Minconn.solve
      ~budget:(Minconn.Budget.make ~fuel:2 ())
      ~degrade:false g ~p
  in
  let ses_nd =
    Minconn.Session.query
      ~budget:(Minconn.Budget.make ~fuel:2 ())
      ~degrade:false session ~p
  in
  check "exhaustion equal under --no-degrade" true
    (result_equal u ~p one_nd ses_nd);
  check "no-degrade surfaces the exhaustion" true
    (match ses_nd with Error (Minconn.Errors.Budget_exhausted _) -> true | _ -> false)

(* Errors stay in batch position: a bad query must not derail its
   neighbours or leak scratch state into them. *)
let test_solve_many_positions () =
  let g = Minconn.Figures.fig3b.Minconn.Figures.graph in
  let ok_p = Iset.of_list [ 0; 1 ] in
  let batch =
    [ ok_p; Iset.empty; Iset.singleton 999; ok_p ]
  in
  let session = Minconn.Session.create (Minconn.Compiled.compile g) in
  match Minconn.Session.solve_many session batch with
  | [ Ok a; Error (Minconn.Errors.Invalid_instance _);
      Error (Minconn.Errors.Invalid_instance _); Ok b ] ->
    check "same query, same answer around failures" true (sol_equal a b)
  | _ -> Alcotest.fail "batch results out of position"

(* --------------------------------------------------- memoization *)

let test_schema_memoized () =
  let s =
    Datamodel.Schema.make
      [ ("R1", [ "a"; "b" ]); ("R2", [ "b"; "c" ]); ("R3", [ "c"; "d" ]) ]
  in
  check "compiled handle is cached" true
    (Datamodel.Schema.compiled s == Datamodel.Schema.compiled s);
  check "bigraph served from the handle" true
    (Datamodel.Schema.to_bigraph s == Datamodel.Schema.to_bigraph s);
  check "memoized profile = direct classification" true
    (Datamodel.Schema.profile s
    = Classify.profile (Datamodel.Schema.to_bigraph s))

let test_layered_memoized () =
  let l =
    Datamodel.Layered.make
      ~levels:[ [ "a"; "b"; "c" ]; [ "X"; "Y" ]; [ "T" ] ]
      ~definitions:
        [ ("X", [ "a"; "b" ]); ("Y", [ "b"; "c" ]); ("T", [ "X"; "Y" ]) ]
  in
  check "compiled handle is cached" true
    (Datamodel.Layered.compiled l == Datamodel.Layered.compiled l);
  check "memoized profile = direct classification" true
    (Datamodel.Layered.profile l
    = Classify.profile (Datamodel.Layered.to_bigraph l))

(* engine.compiles / engine.queries counters: one compile serves the
   whole batch. *)
let test_engine_counters () =
  let metrics = Observe.Metrics.make () in
  let g = Minconn.Figures.fig3b.Minconn.Figures.graph in
  let compiled = Minconn.Compiled.compile ~metrics g in
  let session = Minconn.Session.create ~metrics compiled in
  let p = Iset.of_list [ 0; 1 ] in
  ignore (Minconn.Session.solve_many session [ p; p; p ]);
  let count name = List.assoc name (Observe.Metrics.counters metrics) in
  check_int "one compile for the batch" 1 (count "engine.compiles");
  check_int "three queries recorded" 3 (count "engine.queries")

let qcheck_cases =
  [
    prop_session_equal_gnp;
    prop_session_equal_chordal62;
    prop_session_equal_under_fuel;
    prop_relations_equal;
  ]

let () =
  Alcotest.run "engine"
    [
      ("equivalence", List.map QCheck_alcotest.to_alcotest qcheck_cases);
      ( "ladder",
        [
          Alcotest.test_case "degraded paths equal" `Quick
            test_degraded_equivalence;
          Alcotest.test_case "batch error positions" `Quick
            test_solve_many_positions;
        ] );
      ( "memoization",
        [
          Alcotest.test_case "schema compiled once" `Quick test_schema_memoized;
          Alcotest.test_case "layered compiled once" `Quick
            test_layered_memoized;
          Alcotest.test_case "engine counters" `Quick test_engine_counters;
        ] );
    ]
