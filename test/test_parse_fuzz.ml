(* Fuzzing the Mc_io.Parse boundary: random byte mutations and
   truncations of well-formed instance files must never escape as
   exceptions — every outcome is [Ok _] or a positioned
   [Error (Parse_error _)] from the runtime taxonomy. *)

module Errors = Runtime.Errors

let seed_gen = QCheck2.Gen.int_range 0 1_000_000

(* -------------------------------------------- well-formed corpora *)

let name_of rng prefix k =
  Printf.sprintf "%s%d_%c" prefix k
    (Char.chr (Char.code 'a' + Workloads.Rng.int rng 26))

let random_bigraph_text rng =
  let nl = 1 + Workloads.Rng.int rng 5 and nr = 1 + Workloads.Rng.int rng 5 in
  let g = Workloads.Gen_bipartite.gnp rng ~nl ~nr ~p:0.5 in
  let nb =
    {
      Mc_io.Parse.graph = g;
      left_names = Array.init nl (fun i -> name_of rng "L" i);
      right_names = Array.init nr (fun j -> name_of rng "R" j);
    }
  in
  Mc_io.Parse.bigraph_to_string nb

let random_schema_text rng =
  let n = 1 + Workloads.Rng.int rng 4 in
  let b = Buffer.create 128 in
  Buffer.add_string b "schema\n";
  for i = 0 to n - 1 do
    let arity = 1 + Workloads.Rng.int rng 3 in
    Buffer.add_string b (Printf.sprintf "relation r%d" i);
    for k = 0 to arity - 1 do
      Buffer.add_string b
        (Printf.sprintf " a%d" (Workloads.Rng.int rng (arity + k + 2)))
    done;
    Buffer.add_char b '\n'
  done;
  Buffer.contents b

let random_hypergraph_text rng =
  let h =
    Workloads.Gen_hyper.random rng
      ~n_nodes:(2 + Workloads.Rng.int rng 5)
      ~n_edges:(1 + Workloads.Rng.int rng 4)
      ~max_size:3
  in
  let node_names =
    Array.init (Hypergraphs.Hypergraph.n_nodes h) (fun i ->
        Printf.sprintf "n%d" i)
  in
  let edge_names =
    Array.init (Hypergraphs.Hypergraph.n_edges h) (fun i ->
        Printf.sprintf "e%d" i)
  in
  Mc_io.Parse.hypergraph_to_string h ~node_names ~edge_names

let random_database_text rng =
  let b = Buffer.create 128 in
  Buffer.add_string b "database\n";
  let n = 1 + Workloads.Rng.int rng 3 in
  for i = 0 to n - 1 do
    Buffer.add_string b (Printf.sprintf "relation r%d x%d y%d\n" i i i)
  done;
  for _ = 1 to Workloads.Rng.int rng 5 do
    Buffer.add_string b
      (Printf.sprintf "row r%d %d %d\n" (Workloads.Rng.int rng n)
         (Workloads.Rng.int rng 9) (Workloads.Rng.int rng 9))
  done;
  Buffer.contents b

let random_query_text rng =
  let n = 1 + Workloads.Rng.int rng 3 in
  "connect "
  ^ String.concat ", " (List.init n (fun i -> Printf.sprintf "a%d" i))
  ^ if Workloads.Rng.bool rng 0.5 then " where a0 = 1 and a1 = 2" else ""

(* ------------------------------------------------------- mutations *)

(* Replacement bytes skew toward structure-relevant characters so the
   fuzz reaches tokenizer and directive edge cases, not just garbage
   names. *)
let mutation_byte rng =
  let structural = [| ' '; '\t'; '\n'; '#'; '"'; '\\'; '\r'; '\000' |] in
  if Workloads.Rng.bool rng 0.5 then
    structural.(Workloads.Rng.int rng (Array.length structural))
  else Char.chr (Workloads.Rng.int rng 256)

let mutate rng text =
  let b = Bytes.of_string text in
  let n = Bytes.length b in
  if n = 0 then text
  else begin
    (* A few point mutations... *)
    for _ = 0 to Workloads.Rng.int rng 4 do
      Bytes.set b (Workloads.Rng.int rng n) (mutation_byte rng)
    done;
    let s = Bytes.to_string b in
    (* ...then possibly truncate mid-token or mid-line. *)
    if Workloads.Rng.bool rng 0.4 then
      String.sub s 0 (Workloads.Rng.int rng (String.length s))
    else s
  end

(* ------------------------------------------------------ the oracle *)

(* A parser survives an input iff it returns [Ok] or a positioned
   parse error; any other constructor or any exception is a bug in
   the boundary. *)
let survives parse input =
  match parse input with
  | Ok _ -> true
  | Error (Errors.Parse_error { line; col; _ }) -> line >= 0 && col >= 0
  | Error _ -> false
  | exception _ -> false

let fuzz_prop ~name ~gen_text parse =
  QCheck2.Test.make ~count:400 ~name seed_gen (fun seed ->
      let rng = Workloads.Rng.make ~seed in
      let text = gen_text rng in
      (* The pristine text must parse; every mutation must fail
         gracefully if it fails at all. *)
      survives parse text
      &&
      let ok = ref true in
      for _ = 1 to 8 do
        if not (survives parse (mutate rng text)) then ok := false
      done;
      !ok)

let suite =
  [
    fuzz_prop ~name:"bigraph_of_string never throws"
      ~gen_text:random_bigraph_text Mc_io.Parse.bigraph_of_string;
    fuzz_prop ~name:"schema_of_string never throws"
      ~gen_text:random_schema_text Mc_io.Parse.schema_of_string;
    fuzz_prop ~name:"hypergraph_of_string never throws"
      ~gen_text:random_hypergraph_text Mc_io.Parse.hypergraph_of_string;
    fuzz_prop ~name:"database_of_string never throws"
      ~gen_text:random_database_text Mc_io.Parse.database_of_string;
    fuzz_prop ~name:"query_of_string never throws"
      ~gen_text:random_query_text Mc_io.Parse.query_of_string;
    (* Constructors behind the parse boundary: arbitrary (often invalid)
       descriptions must surface as [Invalid_argument], never as an
       assertion failure or a crash in the derived graph builders. *)
    QCheck2.Test.make ~count:400
      ~name:"datamodel constructors never leak assertions" seed_gen
      (fun seed ->
        let rng = Workloads.Rng.make ~seed in
        let name k = Printf.sprintf "o%d" (Workloads.Rng.int rng k) in
        let names k n = List.init n (fun _ -> name k) in
        let layered_ok =
          let levels =
            List.init
              (1 + Workloads.Rng.int rng 3)
              (fun _ -> names 8 (1 + Workloads.Rng.int rng 3))
          in
          let definitions =
            List.init (Workloads.Rng.int rng 4) (fun _ ->
                (name 8, names 10 (Workloads.Rng.int rng 3)))
          in
          match Datamodel.Layered.make ~levels ~definitions with
          | t ->
            (* A constructor that accepts must also build the graph. *)
            (try
               ignore (Datamodel.Layered.to_bigraph t);
               true
             with _ -> false)
          | exception Invalid_argument _ -> true
          | exception _ -> false
        in
        let er_ok =
          let entities =
            List.init (Workloads.Rng.int rng 3) (fun _ ->
                (name 6, names 6 (Workloads.Rng.int rng 3)))
          in
          let relationships =
            List.init (Workloads.Rng.int rng 3) (fun _ ->
                (name 6, names 6 (Workloads.Rng.int rng 2), names 6 1))
          in
          match Datamodel.Er.make ~entities ~relationships with
          | t -> (
            try
              ignore (Datamodel.Er.to_ugraph t);
              true
            with _ -> false)
          | exception Invalid_argument _ -> true
          | exception _ -> false
        in
        layered_ok && er_ok);
  ]

(* ---------------------------------------------- oversized inputs *)

(* The byte caps sit in front of every parser: a document over
   [max_input_bytes] and a line over [max_line_bytes] must both come
   back as a positioned [Parse_error] before any tokenization, never
   an allocation blow-up or an exception. *)

let expect_parse_error ~what parse text =
  match parse text with
  | Error (Errors.Parse_error _) -> ()
  | Ok _ -> Alcotest.failf "%s: oversized input accepted" what
  | Error e ->
    Alcotest.failf "%s: wrong error class: %s" what (Errors.to_string e)

let test_total_cap () =
  (* One byte over the total cap; every entry point must refuse it. *)
  let text = String.make (Mc_io.Parse.max_input_bytes + 1) 'a' in
  expect_parse_error ~what:"bigraph" Mc_io.Parse.bigraph_of_string text;
  expect_parse_error ~what:"schema" Mc_io.Parse.schema_of_string text;
  expect_parse_error ~what:"hypergraph" Mc_io.Parse.hypergraph_of_string text;
  expect_parse_error ~what:"database" Mc_io.Parse.database_of_string text;
  expect_parse_error ~what:"query" Mc_io.Parse.query_of_string text;
  (* At the cap exactly the guard stands aside (the parser then fails
     on content, but with an ordinary positioned error). *)
  match Mc_io.Parse.bigraph_of_string (String.make 64 'a') with
  | Error (Errors.Parse_error { line; _ }) ->
    Alcotest.(check bool) "in-cap error is positioned" true (line >= 1)
  | Ok _ -> Alcotest.fail "garbage accepted"
  | Error e -> Alcotest.failf "wrong error class: %s" (Errors.to_string e)

let oversized_line_case =
  QCheck2.Test.make ~count:20
    ~name:"oversized line rejected with its line number" seed_gen (fun seed ->
      let rng = Workloads.Rng.make ~seed in
      let base = random_bigraph_text rng in
      let prefix = Workloads.Rng.int rng 5 in
      let pad = String.make (Mc_io.Parse.max_line_bytes + 1) 'x' in
      let b = Buffer.create (String.length pad + String.length base + 64) in
      for i = 1 to prefix do
        Buffer.add_string b (Printf.sprintf "pad line %d\n" i)
      done;
      Buffer.add_string b pad;
      Buffer.add_char b '\n';
      Buffer.add_string b base;
      match Mc_io.Parse.bigraph_of_string (Buffer.contents b) with
      | Error (Errors.Parse_error { line; _ }) -> line = prefix + 1
      | Ok _ | Error _ -> false)

let () =
  Alcotest.run "parse_fuzz"
    [
      ("fuzz", List.map QCheck_alcotest.to_alcotest suite);
      ( "oversized",
        [
          Alcotest.test_case "total byte cap refuses every parser" `Quick
            test_total_cap;
          QCheck_alcotest.to_alcotest oversized_line_case;
        ] );
    ]
