(* Differential properties for the direct-to-CSR construction path:
   [Csr.of_edge_iter] / [Csr.Builder] must produce the exact arrays the
   set-based pipeline (Ugraph AVL sets, then [Csr.of_ugraph]) does, on
   any edge multiset — duplicated, reversed, out of order. Also pins
   the [Gen_scale] streaming families: direct ≡ sets construction,
   identical session answers over both, the advertised chordality class
   of each family, and the flat [Csr.component_ids] labelling against
   the set-based [Traverse.component_ids]. *)

open Graphs
open Bipartite

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let seed_gen = QCheck2.Gen.int_range 0 1_000_000

(* ------------------------------------------------ CSR differential *)

(* A messy edge multiset: valid endpoints, but with duplicates, swapped
   orientations and shuffled order — everything [of_edge_iter] promises
   to normalise away. *)
let gen_multiset =
  QCheck2.Gen.(
    int_range 2 40 >>= fun n ->
    list_size (int_range 0 120)
      (pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))
    >>= fun raw ->
    let edges = List.filter (fun (u, v) -> u <> v) raw in
    (* Re-append a prefix, some reversed, so duplicates in both
       orientations are guaranteed to appear. *)
    let dups =
      List.filteri (fun i _ -> i mod 3 = 0) edges
      |> List.map (fun (u, v) -> (v, u))
    in
    return (n, edges @ dups))

let csr_matches_sets n edges =
  let direct = Csr.of_edges ~n edges in
  let u = Ugraph.of_edges ~n edges in
  let via_sets = Csr.of_ugraph u in
  Csr.equal direct via_sets
  && Csr.n direct = Ugraph.n u
  && Csr.m direct = Ugraph.m u
  && List.for_all
       (fun v ->
         Csr.degree direct v = Ugraph.degree u v
         && Array.to_list (Csr.sorted_neighbors direct v)
            = Iset.elements (Ugraph.neighbors u v))
       (List.init n (fun i -> i))
  && List.for_all
       (fun (a, b) ->
         Csr.mem_edge direct a b = Ugraph.mem_edge u a b)
       (List.concat_map (fun a -> List.map (fun b -> (a, b)) [ 0; n - 1 ])
          [ 0; n / 2; n - 1 ]
        |> List.filter (fun (a, b) -> a <> b))

let prop_csr_of_edges =
  QCheck2.Test.make ~count:300
    ~name:"Csr.of_edges = Csr.of_ugraph ∘ Ugraph.of_edges (multisets)"
    gen_multiset
    (fun (n, edges) -> csr_matches_sets n edges)

let prop_csr_builder =
  QCheck2.Test.make ~count:300
    ~name:"Csr.Builder.build = Csr.of_edges" gen_multiset
    (fun (n, edges) ->
      let b = Csr.Builder.create ~hint:4 n in
      List.iter (fun (u, v) -> Csr.Builder.add_edge b u v) edges;
      Csr.Builder.length b = List.length edges
      && Csr.equal (Csr.Builder.build b) (Csr.of_edges ~n edges))

let prop_component_ids =
  QCheck2.Test.make ~count:200
    ~name:"Csr.component_ids = Traverse.component_ids" gen_multiset
    (fun (n, edges) ->
      let c = Csr.of_edges ~n edges in
      let ids, comps = Csr.component_ids c in
      let ids', comps' = Traverse.component_ids (Csr.to_ugraph c) in
      ids = ids'
      && List.length comps = List.length comps'
      && List.for_all2 Iset.equal comps comps')

(* The in-place insertion sort only covers rows up to 32 entries; a hub
   star (duplicated, reversed, shuffled) exercises the scratch-copy
   fallback for long rows. *)
let test_long_row () =
  let n = 80 in
  let spokes = List.init (n - 1) (fun i -> (0, i + 1)) in
  let edges =
    List.rev spokes
    @ List.map (fun (u, v) -> (v, u)) spokes
    @ List.filteri (fun i _ -> i mod 2 = 0) spokes
  in
  check "hub multiset matches set-based build" true (csr_matches_sets n edges);
  check_int "hub degree" (n - 1) (Csr.degree (Csr.of_edges ~n edges) 0)

(* Bigraph construction paths agree all the way to the plan identity:
   same graph, same bytes in the schema hash. *)
let prop_bigraph_of_edge_iter =
  QCheck2.Test.make ~count:200
    ~name:"Bigraph.of_edge_iter = Bigraph.of_edges (incl. schema_hash)"
    QCheck2.Gen.(
      triple (int_range 1 12) (int_range 1 12) (int_range 0 1_000_000))
    (fun (nl, nr, seed) ->
      let rng = Workloads.Rng.make ~seed in
      let edges = ref [] in
      for i = 0 to nl - 1 do
        for j = 0 to nr - 1 do
          if Workloads.Rng.bool rng 0.3 then edges := (i, j) :: !edges
        done
      done;
      let edges = !edges in
      let direct =
        Bigraph.of_edge_iter ~nl ~nr (fun f ->
            List.iter (fun (i, j) -> f i j) edges)
      in
      let via_sets = Bigraph.of_edges ~nl ~nr edges in
      Bigraph.equal direct via_sets
      && Minconn.Compiled.schema_hash direct
         = Minconn.Compiled.schema_hash via_sets)

(* ------------------------------------------------ Gen_scale families *)

let families =
  Workloads.Gen_scale.[ Forest; Chordal62; Alpha ]

let prop_gen_scale_direct_eq_sets =
  QCheck2.Test.make ~count:60
    ~name:"Gen_scale direct-CSR = set-based construction" seed_gen
    (fun seed ->
      List.for_all
        (fun fam ->
          let inst =
            Workloads.Gen_scale.make fam ~target_n:(60 + (seed mod 90)) ~seed
          in
          let direct = Workloads.Gen_scale.to_bigraph inst in
          let sets = Workloads.Gen_scale.to_bigraph_sets inst in
          Bigraph.equal direct sets
          && Csr.equal (Bigraph.csr direct) (Bigraph.csr sets)
          && Workloads.Gen_scale.m inst = Bigraph.m direct)
        families)

(* Identical solve answers whether the plan was compiled from the
   stream-built graph or the set-built one. *)
let prop_gen_scale_same_answers =
  QCheck2.Test.make ~count:30
    ~name:"Gen_scale: session answers agree across construction paths"
    seed_gen
    (fun seed ->
      List.for_all
        (fun fam ->
          let inst = Workloads.Gen_scale.make fam ~target_n:80 ~seed in
          let s_direct =
            Minconn.Session.create
              (Minconn.Compiled.compile (Workloads.Gen_scale.to_bigraph inst))
          in
          let s_sets =
            Minconn.Session.create
              (Minconn.Compiled.compile
                 (Workloads.Gen_scale.to_bigraph_sets inst))
          in
          let blocks = Workloads.Gen_scale.n_blocks inst in
          List.for_all
            (fun b ->
              let p =
                Workloads.Gen_scale.block_terminals inst
                  ~block:(b * (blocks - 1) / 3)
                  ~k:(2 + b)
              in
              match
                ( Minconn.Session.query s_direct ~p,
                  Minconn.Session.query s_sets ~p )
              with
              | Ok a, Ok b ->
                Iset.equal a.Minconn.tree.Steiner.Tree.nodes
                  b.Minconn.tree.Steiner.Tree.nodes
                && a.Minconn.tree.Steiner.Tree.edges
                   = b.Minconn.tree.Steiner.Tree.edges
                && a.Minconn.method_used = b.Minconn.method_used
              | Error ea, Error eb -> ea = eb
              | Ok _, Error _ | Error _, Ok _ -> false)
            [ 0; 1; 2; 3 ])
        families)

(* Advertised chordality class of each family (the reason the scale
   bench can claim which solver rung its instances exercise). *)
let family_profile fam ~seed =
  let inst = Workloads.Gen_scale.make fam ~target_n:150 ~seed in
  Classify.profile (Workloads.Gen_scale.to_bigraph inst)

let test_family_classes () =
  List.iter
    (fun seed ->
      let p = family_profile Workloads.Gen_scale.Forest ~seed in
      check "forest is (4,1)-chordal" true p.Classify.chordal_41;
      check "forest is (6,2)-chordal" true p.Classify.chordal_62;
      let p = family_profile Workloads.Gen_scale.Chordal62 ~seed in
      check "chordal62 is not (4,1)" false p.Classify.chordal_41;
      check "chordal62 is (6,2)-chordal" true p.Classify.chordal_62;
      let p = family_profile Workloads.Gen_scale.Alpha ~seed in
      check "alpha is not (6,2)" false p.Classify.chordal_62;
      check "alpha is α-acyclic (H¹)" true p.Classify.alpha_h1)
    [ 0; 7; 42 ]

(* Every component of every family admits Algorithm 1 preprocessing
   (α-acyclicity per component), so million-node sessions never fall
   back to the exponential rung on in-block terminal sets. *)
let test_family_alg1_prep () =
  List.iter
    (fun fam ->
      let inst = Workloads.Gen_scale.make fam ~target_n:200 ~seed:11 in
      let c = Minconn.Compiled.compile (Workloads.Gen_scale.to_bigraph inst) in
      check
        (Workloads.Gen_scale.family_name fam ^ " components admit Algorithm 1")
        true
        (Array.for_all
           (fun comp -> Result.is_ok comp.Minconn.Compiled.alg1_prep)
           c.Minconn.Compiled.components))
    families

let test_block_terminals () =
  let inst = Workloads.Gen_scale.make Workloads.Gen_scale.Chordal62
      ~target_n:100 ~seed:3 in
  let ids, _ = Csr.component_ids (Workloads.Gen_scale.to_csr inst) in
  List.iter
    (fun b ->
      let p = Workloads.Gen_scale.block_terminals inst ~block:b ~k:3 in
      let cs = List.map (fun v -> ids.(v)) (Iset.elements p) in
      check "terminals land in one component" true
        (List.for_all (fun c -> c = List.hd cs) cs))
    [ 0; 1; Workloads.Gen_scale.n_blocks inst - 1 ]

let qcheck_cases =
  [
    prop_csr_of_edges;
    prop_csr_builder;
    prop_component_ids;
    prop_bigraph_of_edge_iter;
    prop_gen_scale_direct_eq_sets;
    prop_gen_scale_same_answers;
  ]

let () =
  Alcotest.run "scale"
    [
      ( "csr",
        [ Alcotest.test_case "long-row sort fallback" `Quick test_long_row ] );
      ( "gen-scale",
        [
          Alcotest.test_case "family classes" `Quick test_family_classes;
          Alcotest.test_case "alg1 prep per component" `Quick
            test_family_alg1_prep;
          Alcotest.test_case "block terminals" `Quick test_block_terminals;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_cases);
    ]
