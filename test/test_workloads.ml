(* Tests for the workload generators: determinism and class membership
   of every constructive generator. *)

open Graphs

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_rng_determinism () =
  let a = Workloads.Rng.make ~seed:42 in
  let b = Workloads.Rng.make ~seed:42 in
  let xs = List.init 20 (fun _ -> Workloads.Rng.int a 1000) in
  let ys = List.init 20 (fun _ -> Workloads.Rng.int b 1000) in
  check "same seed, same stream" true (xs = ys);
  let c = Workloads.Rng.make ~seed:43 in
  let zs = List.init 20 (fun _ -> Workloads.Rng.int c 1000) in
  check "different seed, different stream" false (xs = zs)

let test_rng_helpers () =
  let rng = Workloads.Rng.make ~seed:1 in
  let sample = Workloads.Rng.sample rng 3 [ 1; 2; 3; 4; 5 ] in
  check_int "sample size" 3 (List.length sample);
  check "sample distinct" true
    (List.length (List.sort_uniq compare sample) = 3);
  let shuffled = Workloads.Rng.shuffle rng [ 1; 2; 3; 4; 5 ] in
  check "shuffle is a permutation" true
    (List.sort compare shuffled = [ 1; 2; 3; 4; 5 ])

let test_graph_generators () =
  let rng = Workloads.Rng.make ~seed:2 in
  let t = Workloads.Gen_graph.random_tree rng ~n:30 in
  check "tree is a tree" true (Graphs.Spanning.is_tree t);
  let g = Workloads.Gen_graph.random_connected rng ~n:25 ~extra_edges:5 in
  check "connected" true (Traverse.is_connected g);
  let c = Workloads.Gen_graph.cycle 7 in
  check_int "cycle edges" 7 (Ugraph.m c);
  check "gnp with p=1 is complete" true
    (Ugraph.m (Workloads.Gen_graph.gnp rng ~n:5 ~p:1.0) = 10);
  check "gnp with p=0 is empty" true
    (Ugraph.m (Workloads.Gen_graph.gnp rng ~n:5 ~p:0.0) = 0)

let test_bipartite_generators () =
  let rng = Workloads.Rng.make ~seed:3 in
  let f = Workloads.Gen_bipartite.forest rng ~n:15 in
  check "forest generator is (4,1)" true (Bipartite.Mn_chordality.is_41_chordal f);
  let g62 = Workloads.Gen_bipartite.chordal_62 rng ~n_right:8 ~max_size:4 in
  check "(6,2) generator lands in class" true
    (Bipartite.Mn_chordality.is_62_chordal g62);
  let ga = Workloads.Gen_bipartite.alpha_bipartite rng ~n_right:8 ~max_size:4 in
  check "alpha generator lands in class" true
    (Bipartite.Side_properties.alpha_side ga Bipartite.Bigraph.V2);
  let fl = Workloads.Gen_bipartite.chordal_61_flower rng ~petals:4 in
  check "flower is (6,1) but not (6,2)" true
    (Bipartite.Mn_chordality.is_61_chordal fl
    && not (Bipartite.Mn_chordality.is_62_chordal fl))

let test_terminals () =
  let rng = Workloads.Rng.make ~seed:4 in
  let g = Workloads.Gen_bipartite.chordal_62 rng ~n_right:8 ~max_size:3 in
  let p = Workloads.Gen_bipartite.random_terminals rng g ~k:4 in
  check_int "4 terminals" 4 (Iset.cardinal p);
  check "terminals are connected" true
    (Traverse.connects (Bipartite.Bigraph.ugraph g) p)

let test_x3c_generators () =
  let rng = Workloads.Rng.make ~seed:5 in
  let planted = Workloads.Gen_x3c.planted rng ~q:5 ~distractors:8 in
  check_int "triple count" 13 (Array.length planted.Steiner.X3c.triples);
  check "planted is solvable" true (Steiner.X3c.solve planted <> None);
  let bad = Workloads.Gen_x3c.unsolvable_pair rng ~q:3 ~distractors:5 in
  check "unsolvable really is" true (Steiner.X3c.solve bad = None)

let test_er_spec () =
  let rng = Workloads.Rng.make ~seed:6 in
  let spec = Workloads.Gen_er.er_spec rng ~n_entities:4 ~n_relationships:3 ~attrs_per:2 in
  (* Must be accepted by the datamodel layer as-is. *)
  let er =
    Datamodel.Er.make ~entities:spec.Workloads.Gen_er.entities
      ~relationships:spec.Workloads.Gen_er.relationships
  in
  check_int "entities" 4 (List.length (Datamodel.Er.entities er));
  check_int "relationships" 3 (List.length (Datamodel.Er.relationships er))

let test_layered_spec () =
  let rng = Workloads.Rng.make ~seed:7 in
  let spec = Workloads.Gen_er.layered_spec rng ~n_levels:4 ~width:3 ~fanin:2 in
  let t =
    Datamodel.Layered.make ~levels:spec.Workloads.Gen_er.levels
      ~definitions:spec.Workloads.Gen_er.definitions
  in
  check_int "levels" 4 (Datamodel.Layered.n_levels t);
  (* Layered hierarchies are bipartite by construction: profile runs. *)
  let p = Datamodel.Layered.profile t in
  check "profile consistent" true (Bipartite.Classify.theorem1_consistent p)

let test_gen_db () =
  let rng = Workloads.Rng.make ~seed:8 in
  let db = Workloads.Gen_db.acyclic rng ~n_relations:4 ~rows:10 in
  check "acyclic db plan" true
    (match Relalg.Yannakakis.plan db with
    | Relalg.Yannakakis.Acyclic _ -> true
    | Relalg.Yannakakis.Naive_fallback -> false);
  let chain = Workloads.Gen_db.chain rng ~length:3 ~rows:5 ~domain:4 in
  check_int "chain relations" 3 (List.length (Relalg.Database.names chain));
  (match Relalg.Yannakakis.evaluate chain ~output:[ "a0"; "a3" ] with
  | Ok out -> check "chain evaluates" true (Relalg.Relation.arity out = 2)
  | Error _ -> Alcotest.fail "chain query failed")

let test_beta_flower_shape () =
  let h = Workloads.Gen_hyper.beta_flower (Workloads.Rng.make ~seed:0) ~petals:5 in
  check_int "edges = petals + 1" 6 (Hypergraphs.Hypergraph.n_edges h);
  check "beta not gamma" true
    (Hypergraphs.Beta.acyclic h && not (Hypergraphs.Gamma.acyclic h))

let () =
  Alcotest.run "workloads"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "helpers" `Quick test_rng_helpers;
        ] );
      ( "generators",
        [
          Alcotest.test_case "graphs" `Quick test_graph_generators;
          Alcotest.test_case "bipartite classes" `Quick test_bipartite_generators;
          Alcotest.test_case "terminals" `Quick test_terminals;
          Alcotest.test_case "x3c" `Quick test_x3c_generators;
          Alcotest.test_case "er spec" `Quick test_er_spec;
          Alcotest.test_case "layered spec" `Quick test_layered_spec;
          Alcotest.test_case "db generators" `Quick test_gen_db;
          Alcotest.test_case "beta flower" `Quick test_beta_flower_shape;
        ] );
    ]
