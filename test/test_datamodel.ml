(* Tests for the semantic data-model layer: schemas, ER schemes, the
   query interface and the end-to-end universal-relation pipeline. *)

open Graphs
open Datamodel

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let company_schema =
  Schema.make
    [
      ("works", [ "emp"; "dept" ]);
      ("located", [ "dept"; "floor" ]);
      ("managed", [ "floor"; "manager" ]);
    ]

(* ------------------------------------------------------------ Schema *)

let test_schema_basics () =
  check_int "attributes" 4 (List.length (Schema.attributes company_schema));
  check "attr lookup" true (Schema.object_index company_schema "emp" <> None);
  check "relation lookup" true
    (Schema.object_index company_schema "works" <> None);
  check "unknown lookup" true (Schema.object_index company_schema "zzz" = None);
  check "is_attribute" true
    (Schema.is_attribute company_schema "emp"
    && not (Schema.is_attribute company_schema "works"));
  (match Schema.object_index company_schema "works" with
  | Some v -> check "name round trip" true (Schema.object_name company_schema v = "works")
  | None -> Alcotest.fail "lookup");
  check "name clash rejected" true
    (try
       ignore (Schema.make [ ("r", [ "r" ]) ]);
       false
     with Invalid_argument _ -> true)

let test_schema_classification () =
  (* Chain schema: gamma-acyclic (Berge even: separators singleton). *)
  check "chain schema acyclicity" true
    (match Schema.acyclicity company_schema with
    | Hypergraphs.Acyclicity.Berge_acyclic | Hypergraphs.Acyclicity.Gamma_acyclic -> true
    | _ -> false);
  let p = Schema.profile company_schema in
  check "chain schema is (6,2)-chordal" true p.Bipartite.Classify.chordal_62

(* ------------------------------------------------------------- Query *)

let test_minimal_connection () =
  match Query.minimal_connection company_schema ~objects:[ "emp"; "manager" ] with
  | Ok c ->
    check "optimal" true c.Query.optimal;
    check "uses all three relations" true
      (List.sort compare c.Query.relations_used
      = [ "located"; "managed"; "works" ]);
    check "auxiliary objects reported" true
      (List.mem "dept" c.Query.auxiliary && List.mem "floor" c.Query.auxiliary)
  | Error _ -> Alcotest.fail "connected query"

let test_query_errors () =
  (match Query.minimal_connection company_schema ~objects:[ "nope" ] with
  | Error (Query.Unknown_object "nope") -> check "unknown object" true true
  | _ -> Alcotest.fail "expected Unknown_object");
  let disconnected = Schema.make [ ("r1", [ "a" ]); ("r2", [ "b" ]) ] in
  match Query.minimal_connection disconnected ~objects:[ "a"; "b" ] with
  | Error Query.Disconnected -> check "disconnected" true true
  | _ -> Alcotest.fail "expected Disconnected"

let test_strategies () =
  (match
     Query.minimal_connection ~strategy:Query.Algorithm2_only company_schema
       ~objects:[ "emp"; "floor" ]
   with
  | Ok c -> check "alg2 strategy works on (6,2) schema" true c.Query.optimal
  | Error _ -> Alcotest.fail "applicable");
  let triangle =
    Schema.make [ ("r1", [ "a"; "b" ]); ("r2", [ "b"; "c" ]); ("r3", [ "a"; "c" ]) ]
  in
  match
    Query.minimal_connection ~strategy:Query.Algorithm2_only triangle
      ~objects:[ "a"; "c" ]
  with
  | Error (Query.Not_applicable _) -> check "alg2 refused off-class" true true
  | _ -> Alcotest.fail "triangle scheme is not (6,2)-chordal"

let test_min_relations () =
  match Query.min_relations company_schema ~objects:[ "emp"; "floor" ] with
  | Ok (c, count) ->
    check_int "two relations suffice" 2 count;
    check "optimal flag" true c.Query.optimal
  | Error _ -> Alcotest.fail "alpha-acyclic schema"

let test_weighted_connection () =
  (* Price the 'located' relation prohibitively: there is no other
     route, so the connection still uses it but reports the cost. *)
  let cost = function "located" -> 50 | _ -> 1 in
  match
    Query.weighted_connection company_schema ~objects:[ "emp"; "manager" ]
      ~cost
  with
  | Ok (c, total) ->
    check "still routes through located (no alternative)" true
      (List.mem "located" c.Query.relations_used);
    check_int "cost accounts for the expensive relation" (6 + 50) total
  | Error _ -> Alcotest.fail "connected"

let test_interpretations_ranked () =
  let interps =
    Query.interpretations ~k:3 company_schema ~objects:[ "emp"; "dept" ]
  in
  check "at least one" true (interps <> []);
  let sizes = List.map (fun c -> List.length c.Query.objects) interps in
  check "sorted by size" true (List.sort compare sizes = sizes)

let test_unambiguous () =
  (* Chain schema: the path between end attributes is unique. *)
  (match Query.is_unambiguous company_schema ~objects:[ "emp"; "manager" ] with
  | Ok b -> check "chain query is unambiguous" true b
  | Error _ -> Alcotest.fail "resolvable");
  (* A diamond: two same-size routes between a and c. *)
  let diamond =
    Schema.make
      [
        ("r1", [ "a"; "b" ]); ("r2", [ "b"; "c" ]);
        ("r3", [ "a"; "d" ]); ("r4", [ "d"; "c" ]);
      ]
  in
  match Query.is_unambiguous diamond ~objects:[ "a"; "c" ] with
  | Ok b -> check "diamond query is ambiguous" false b
  | Error _ -> Alcotest.fail "resolvable"

(* ---------------------------------------------------------------- ER *)

let test_er_validation () =
  check "unknown entity rejected" true
    (try
       ignore
         (Er.make ~entities:[ ("E", [ "a" ]) ]
            ~relationships:[ ("R", [ "F" ], []) ]);
       false
     with Invalid_argument _ -> true);
  check "duplicate name rejected" true
    (try
       ignore (Er.make ~entities:[ ("E", [ "E" ]) ] ~relationships:[]);
       false
     with Invalid_argument _ -> true)

let test_er_connection () =
  let er = Figures.fig1_er in
  (match Er.minimal_connection er ~objects:[ "DEPARTMENT"; "NAME" ] with
  | Ok (nodes, edges) ->
    check "route through WORKS and EMPLOYEE" true
      (List.mem "WORKS" nodes && List.mem "EMPLOYEE" nodes);
    check_int "tree edge count" (List.length nodes - 1) (List.length edges)
  | Error _ -> Alcotest.fail "connected ER scheme");
  match Er.minimal_connection er ~objects:[ "DEPARTMENT"; "nope" ] with
  | Ok _ -> Alcotest.fail "unknown object must be a typed error"
  | Error (Runtime.Errors.Invalid_instance _) -> ()
  | Error _ -> Alcotest.fail "expected Invalid_instance"

(* -------------------------------------------------------- Edge cases *)

let test_query_edge_cases () =
  (* Duplicate names in the query collapse. *)
  (match
     Query.minimal_connection company_schema ~objects:[ "emp"; "emp"; "dept" ]
   with
  | Ok c -> check "duplicates tolerated" true (List.mem "emp" c.Query.objects)
  | Error _ -> Alcotest.fail "resolvable");
  (* Query naming only a relation. *)
  (match Query.minimal_connection company_schema ~objects:[ "works" ] with
  | Ok c ->
    check "single-relation query" true (c.Query.objects = [ "works" ])
  | Error _ -> Alcotest.fail "resolvable");
  (* Empty query: trivially connected. *)
  match Query.minimal_connection company_schema ~objects:[] with
  | Ok c -> check "empty query gives empty connection" true (c.Query.objects = [])
  | Error _ -> Alcotest.fail "empty query"

let test_schema_bigraph_hypergraph_agree () =
  (* The two scheme views coincide through Definition 2. *)
  let g = Schema.to_bigraph company_schema in
  let h = Schema.to_hypergraph company_schema in
  check "h1 of the bigraph = the hypergraph" true
    (Hypergraphs.Hypergraph.equal_modulo_order (Bipartite.Correspond.h1_exn g) h)

(* ------------------------------------------------------------ Corpus *)

let test_corpus_degrees () =
  let degree name =
    Hypergraphs.Acyclicity.degree_name
      (Schema.acyclicity (List.assoc name Corpus.all))
  in
  Alcotest.(check string) "tpch is cyclic" "cyclic" (degree "tpch");
  Alcotest.(check string) "university is cyclic" "cyclic" (degree "university");
  Alcotest.(check string) "airline is Berge" "Berge-acyclic" (degree "airline");
  Alcotest.(check string) "snowflake is Berge" "Berge-acyclic"
    (degree "snowflake")

let test_corpus_queries () =
  (* Every corpus schema answers a cross-schema query; acyclic ones
     optimally. *)
  List.iter
    (fun (name, schema) ->
      let attrs = Schema.attributes schema in
      let a = List.hd attrs and z = List.hd (List.rev attrs) in
      match Query.minimal_connection schema ~objects:[ a; z ] with
      | Ok c ->
        check (name ^ " connection covers the query") true
          (List.mem a c.Query.objects && List.mem z c.Query.objects)
      | Error Query.Disconnected -> ()
      | Error _ -> Alcotest.fail (name ^ ": unexpected error"))
    Corpus.all

let test_corpus_repair () =
  (* The cyclic schemas admit small deletion repairs. *)
  match Repair.min_deletions ~max_k:3 Corpus.university Repair.To_alpha with
  | Some deleted ->
    check "university repairable within 3 deletions" true
      (List.length deleted <= 3 && deleted <> [])
  | None -> Alcotest.fail "university should be repairable"

(* ------------------------------------------------------------ Repair *)

let triangle_schema =
  Schema.make
    [ ("r1", [ "a"; "b" ]); ("r2", [ "b"; "c" ]); ("r3", [ "a"; "c" ]) ]

let test_repair_deletions () =
  (match Repair.min_deletions triangle_schema Repair.To_alpha with
  | Some deleted ->
    check_int "one deletion opens the triangle" 1 (List.length deleted)
  | None -> Alcotest.fail "triangle is repairable");
  check "already-satisfied goal needs zero deletions" true
    (Repair.min_deletions company_schema Repair.To_gamma = Some []);
  let covered =
    Schema.make
      [
        ("r1", [ "a"; "b" ]); ("r2", [ "b"; "c" ]); ("r3", [ "a"; "c" ]);
        ("all", [ "a"; "b"; "c" ]);
      ]
  in
  check "covered triangle is alpha already" true
    (Repair.satisfies covered Repair.To_alpha);
  match Repair.min_deletions covered Repair.To_gamma with
  | Some deleted ->
    check_int "two deletions reach gamma" 2 (List.length deleted)
  | None -> Alcotest.fail "repairable"

let test_repair_merges () =
  let merges = Repair.merge_suggestions triangle_schema Repair.To_alpha in
  check "merging any two triangle relations works" true
    (List.length merges = 3);
  check "report mentions the degree" true
    (String.length (Repair.report triangle_schema) > 0)

(* ----------------------------------------------------------- Layered *)

let hierarchy =
  Layered.make
    ~levels:
      [ [ "a"; "b"; "c" ]; [ "e1"; "e2" ]; [ "r1" ] ]
    ~definitions:
      [ ("e1", [ "a"; "b" ]); ("e2", [ "b"; "c" ]); ("r1", [ "e1"; "e2" ]) ]

let test_layered_validation () =
  check "skipping a level rejected" true
    (try
       ignore
         (Layered.make
            ~levels:[ [ "a" ]; [ "e" ]; [ "r" ] ]
            ~definitions:[ ("e", [ "a" ]); ("r", [ "a" ]) ]);
       false
     with Invalid_argument _ -> true);
  check "missing definition rejected" true
    (try
       ignore (Layered.make ~levels:[ [ "a" ]; [ "e" ] ] ~definitions:[]);
       false
     with Invalid_argument _ -> true);
  check "level-0 definition rejected" true
    (try
       ignore
         (Layered.make ~levels:[ [ "a" ] ] ~definitions:[ ("a", [ "a" ]) ]);
       false
     with Invalid_argument _ -> true)

let test_layered_structure () =
  check_int "levels" 3 (Layered.n_levels hierarchy);
  check "level lookup" true (Layered.level_of hierarchy "r1" = Some 2);
  let g = Layered.to_bigraph hierarchy in
  (* Even levels (a,b,c,r1) left; odd (e1,e2) right. *)
  check_int "left side" 4 (Bipartite.Bigraph.nl g);
  check_int "right side" 2 (Bipartite.Bigraph.nr g);
  check_int "edges = total definition size" 6 (Bipartite.Bigraph.m g);
  (match Layered.object_index hierarchy "e2" with
  | Some v -> check "name round trip" true (Layered.object_name hierarchy v = "e2")
  | None -> Alcotest.fail "lookup")

let test_layered_connection () =
  (match Layered.minimal_connection hierarchy ~objects:[ "a"; "c" ] with
  | Ok (nodes, _) ->
    check "route through e1 and e2" true
      (List.mem "e1" nodes && List.mem "e2" nodes)
  | Error _ -> Alcotest.fail "connected");
  (match Layered.minimal_connection hierarchy ~objects:[ "a"; "r1" ] with
  | Ok (nodes, edges) ->
    check_int "tree shape" (List.length nodes - 1) (List.length edges)
  | Error _ -> Alcotest.fail "connected");
  match Layered.minimal_connection hierarchy ~objects:[ "a"; "zzz" ] with
  | Ok _ -> Alcotest.fail "unknown object must be a typed error"
  | Error (Runtime.Errors.Invalid_instance _) -> ()
  | Error _ -> Alcotest.fail "expected Invalid_instance"

let test_layered_duplicate_definition () =
  (* A duplicate definition entry used to bypass validation (only the
     first assoc match was checked) and crash [to_bigraph]. *)
  check "duplicate definition rejected" true
    (try
       ignore
         (Layered.make
            ~levels:[ [ "a" ]; [ "b" ] ]
            ~definitions:[ ("b", [ "a" ]); ("b", [ "zzz" ]) ]);
       false
     with Invalid_argument _ -> true)

let test_er_to_schema () =
  let schema = Er.to_schema Figures.fig1_er in
  check "three relations" true
    (List.sort compare (Schema.relation_names schema)
    = [ "DEPARTMENT"; "EMPLOYEE"; "WORKS" ]);
  check "shared DATE attribute appears once" true
    (List.mem "DATE" (Schema.attributes schema));
  (* The two Fig 1 interpretations survive the relational mapping:
     DATE connects to both EMPLOYEE and WORKS. *)
  let interps = Query.interpretations ~k:3 schema ~objects:[ "EMPLOYEE"; "DATE" ] in
  check "at least two readings" true (List.length interps >= 2)

(* ---------------------------------------------------------- Dialogue *)

let test_dialogue_flow () =
  let d = Dialogue.start company_schema ~objects:[ "emp"; "manager" ] in
  (match Dialogue.current d with
  | Dialogue.Proposing c -> check "first proposal optimal" true c.Query.optimal
  | _ -> Alcotest.fail "expected a proposal");
  let d1 = Dialogue.step d Dialogue.Accept in
  (match Dialogue.current d1 with
  | Dialogue.Settled _ -> check "accepted" true true
  | _ -> Alcotest.fail "expected settled");
  check "settled is final" true (Dialogue.step d1 Dialogue.Reject == d1);
  (* Reject everything: eventually exhausted, disclosures grow. *)
  let rec drain d steps =
    match Dialogue.current d with
    | Dialogue.Proposing _ when steps < 20 ->
      drain (Dialogue.step d Dialogue.Reject) (steps + 1)
    | _ -> d
  in
  let dd = drain d 0 in
  (match Dialogue.current dd with
  | Dialogue.Exhausted -> check "exhausted after rejections" true true
  | _ -> Alcotest.fail "expected exhaustion");
  check "transcript recorded" true (List.length (Dialogue.transcript dd) >= 1)

let test_dialogue_errors () =
  let d = Dialogue.start company_schema ~objects:[ "nope" ] in
  match Dialogue.current d with
  | Dialogue.Failed (Query.Unknown_object "nope") -> check "failed" true true
  | _ -> Alcotest.fail "expected failure"

(* --------------------------------------------------------- Interface *)

let db =
  Relalg.Database.make
    [
      ( "works",
        Relalg.Relation.make ~attrs:[ "emp"; "dept" ]
          [ [ "alice"; "toys" ]; [ "bob"; "books" ] ] );
      ( "located",
        Relalg.Relation.make ~attrs:[ "dept"; "floor" ]
          [ [ "toys"; "1" ]; [ "books"; "2" ] ] );
      ( "managed",
        Relalg.Relation.make ~attrs:[ "floor"; "manager" ]
          [ [ "1"; "zoe" ]; [ "2"; "yann" ] ] );
    ]

let test_universal_relation_answer () =
  match Interface.answer db ~query:[ "emp"; "manager" ] with
  | Ok a ->
    check "all three relations chosen" true
      (List.length a.Interface.connection.Query.relations_used = 3);
    check "evaluates to employee-manager pairs" true
      (Relalg.Relation.equal a.Interface.result
         (Relalg.Relation.make ~attrs:[ "emp"; "manager" ]
            [ [ "alice"; "zoe" ]; [ "bob"; "yann" ] ]))
  | Error _ -> Alcotest.fail "answerable query"

let test_single_attribute_query () =
  match Interface.answer db ~query:[ "dept" ] with
  | Ok a ->
    check_int "two departments" 2 (Relalg.Relation.cardinality a.Interface.result)
  | Error _ -> Alcotest.fail "single attribute answerable"

let test_where_clause () =
  match
    Interface.answer db ~query:[ "emp" ] ~where:[ ("manager", "zoe") ]
  with
  | Ok a ->
    check "filter routes through the manager relation" true
      (List.mem "managed" a.Interface.connection.Query.relations_used);
    check "only zoe's employee remains" true
      (Relalg.Relation.equal a.Interface.result
         (Relalg.Relation.make ~attrs:[ "emp" ] [ [ "alice" ] ]))
  | Error _ -> Alcotest.fail "filtered query answerable"

let test_interface_interpretations () =
  let answers = Interface.interpretations ~k:2 db ~query:[ "emp"; "floor" ] in
  check "at least one interpretation" true (answers <> []);
  List.iter
    (fun a ->
      check "each result has the right columns" true
        (List.sort compare (Relalg.Relation.attrs a.Interface.result)
        = [ "emp"; "floor" ]))
    answers

(* -------------------------------------------------------- properties *)

let interface_end_to_end =
  QCheck2.Test.make ~count:60
    ~name:"interface answer = naive evaluation over the chosen relations"
    QCheck2.Gen.(int_range 0 3000)
    (fun seed ->
      let rng = Workloads.Rng.make ~seed in
      let db = Workloads.Gen_db.acyclic rng ~n_relations:4 ~rows:8 in
      let attrs = Relalg.Database.attributes db in
      let query = Workloads.Rng.sample rng 2 attrs in
      match Interface.answer db ~query with
      | Error _ -> true
      | Ok a ->
        let chosen =
          List.filter
            (fun (n, _) ->
              List.mem n a.Interface.connection.Query.relations_used)
            (Relalg.Database.relations db)
        in
        chosen = []
        ||
        match
          Relalg.Yannakakis.evaluate_naive (Relalg.Database.make chosen)
            ~output:query
        with
        | Ok naive -> Relalg.Relation.equal a.Interface.result naive
        | Error _ -> false)

let dialogue_sizes_nondecreasing =
  QCheck2.Test.make ~count:50
    ~name:"dialogue proposals come in nondecreasing size"
    QCheck2.Gen.(int_range 0 2000)
    (fun seed ->
      let rng = Workloads.Rng.make ~seed in
      let h = Workloads.Gen_hyper.gamma_acyclic rng ~n_edges:5 ~max_size:3 in
      let attr i = Printf.sprintf "a%d" i in
      let schema =
        Schema.make
          (Array.to_list (Hypergraphs.Hypergraph.edges h)
          |> List.mapi (fun j e ->
                 (Printf.sprintf "r%d" j, List.map attr (Iset.elements e))))
      in
      let attrs = Schema.attributes schema in
      let objects = Workloads.Rng.sample rng 2 attrs in
      let rec sizes d acc =
        match Dialogue.current d with
        | Dialogue.Proposing c ->
          sizes (Dialogue.step d Dialogue.Reject)
            (List.length c.Query.objects :: acc)
        | _ -> List.rev acc
      in
      let l = sizes (Dialogue.start schema ~objects) [] in
      List.sort compare l = l)

let qcheck_cases =
  let schema_gen =
    QCheck2.Gen.(
      int_range 0 5000
      |> map (fun seed ->
             let rng = Workloads.Rng.make ~seed in
             let h = Workloads.Gen_hyper.gamma_acyclic rng ~n_edges:5 ~max_size:3 in
             let attr i = Printf.sprintf "a%d" i in
             Schema.make
               (Array.to_list (Hypergraphs.Hypergraph.edges h)
               |> List.mapi (fun j e ->
                      ( Printf.sprintf "r%d" j,
                        List.map attr (Iset.elements e) )))))
  in
  [
    interface_end_to_end;
    dialogue_sizes_nondecreasing;
    QCheck2.Test.make ~count:100
      ~name:"gamma-acyclic schemas classify as (6,2) and answer optimally"
      QCheck2.Gen.(tup2 schema_gen (int_range 0 1000))
      (fun (schema, s) ->
        let attrs = Schema.attributes schema in
        let rng = Workloads.Rng.make ~seed:s in
        let objs = Workloads.Rng.sample rng 2 attrs in
        match Query.minimal_connection schema ~objects:objs with
        | Ok c -> c.Query.optimal
        | Error Query.Disconnected -> true
        | Error _ -> false);
    QCheck2.Test.make ~count:100
      ~name:"connection objects always contain the query" 
      QCheck2.Gen.(tup2 schema_gen (int_range 0 1000))
      (fun (schema, s) ->
        let attrs = Schema.attributes schema in
        let rng = Workloads.Rng.make ~seed:s in
        let objs = Workloads.Rng.sample rng 3 attrs in
        match Query.minimal_connection schema ~objects:objs with
        | Ok c -> List.for_all (fun o -> List.mem o c.Query.objects) objs
        | Error Query.Disconnected -> true
        | Error _ -> false);
    QCheck2.Test.make ~count:80
      ~name:"min_relations count <= relations used by minimal connection"
      QCheck2.Gen.(tup2 schema_gen (int_range 0 1000))
      (fun (schema, s) ->
        let attrs = Schema.attributes schema in
        let rng = Workloads.Rng.make ~seed:s in
        let objs = Workloads.Rng.sample rng 2 attrs in
        match
          (Query.min_relations schema ~objects:objs,
           Query.minimal_connection schema ~objects:objs)
        with
        | Ok (_, count), Ok c ->
          count <= List.length c.Query.relations_used
        | Error Query.Disconnected, _ | _, Error Query.Disconnected -> true
        | _ -> false);
  ]

let () =
  Alcotest.run "datamodel"
    [
      ( "schema",
        [
          Alcotest.test_case "basics" `Quick test_schema_basics;
          Alcotest.test_case "classification" `Quick test_schema_classification;
        ] );
      ( "query",
        [
          Alcotest.test_case "minimal connection" `Quick test_minimal_connection;
          Alcotest.test_case "errors" `Quick test_query_errors;
          Alcotest.test_case "strategies" `Quick test_strategies;
          Alcotest.test_case "min relations" `Quick test_min_relations;
          Alcotest.test_case "weighted connection" `Quick test_weighted_connection;
          Alcotest.test_case "ranked interpretations" `Quick
            test_interpretations_ranked;
          Alcotest.test_case "unambiguous queries" `Quick test_unambiguous;
        ] );
      ( "er",
        [
          Alcotest.test_case "validation" `Quick test_er_validation;
          Alcotest.test_case "connection" `Quick test_er_connection;
          Alcotest.test_case "to_schema" `Quick test_er_to_schema;
        ] );
      ( "dialogue",
        [
          Alcotest.test_case "flow" `Quick test_dialogue_flow;
          Alcotest.test_case "errors" `Quick test_dialogue_errors;
        ] );
      ( "edge-cases",
        [
          Alcotest.test_case "query corner cases" `Quick test_query_edge_cases;
          Alcotest.test_case "scheme views agree" `Quick
            test_schema_bigraph_hypergraph_agree;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "degrees" `Quick test_corpus_degrees;
          Alcotest.test_case "queries" `Quick test_corpus_queries;
          Alcotest.test_case "repair" `Quick test_corpus_repair;
        ] );
      ( "repair",
        [
          Alcotest.test_case "deletions" `Quick test_repair_deletions;
          Alcotest.test_case "merges" `Quick test_repair_merges;
        ] );
      ( "layered",
        [
          Alcotest.test_case "validation" `Quick test_layered_validation;
          Alcotest.test_case "structure" `Quick test_layered_structure;
          Alcotest.test_case "connection" `Quick test_layered_connection;
          Alcotest.test_case "duplicate definition" `Quick
            test_layered_duplicate_definition;
        ] );
      ( "interface",
        [
          Alcotest.test_case "universal relation answer" `Quick
            test_universal_relation_answer;
          Alcotest.test_case "single attribute" `Quick test_single_attribute_query;
          Alcotest.test_case "where clause" `Quick test_where_clause;
          Alcotest.test_case "interpretations" `Quick
            test_interface_interpretations;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_cases);
    ]
