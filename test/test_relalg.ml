(* Tests for the relational engine: columnar relations, operators,
   scheme hypergraphs, semijoin reducers, set-vs-bag semantics and
   Yannakakis vs naive evaluation. *)

open Hypergraphs
open Relalg

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let ok_rel = function
  | Ok r -> r
  | Error e -> Alcotest.fail ("unexpected error: " ^ Runtime.Errors.to_string e)

let r_emp =
  Relation.make ~attrs:[ "emp"; "dept" ]
    [
      [ "alice"; "toys" ];
      [ "bob"; "toys" ];
      [ "carol"; "books" ];
      [ "dave"; "games" ];
    ]

let r_dept =
  Relation.make ~attrs:[ "dept"; "floor" ]
    [ [ "toys"; "1" ]; [ "books"; "2" ] ]

let r_floor =
  Relation.make ~attrs:[ "floor"; "manager" ]
    [ [ "1"; "zoe" ]; [ "2"; "yann" ]; [ "3"; "xavier" ] ]

let db = Database.make [ ("emp", r_emp); ("dept", r_dept); ("floor", r_floor) ]

(* ---------------------------------------------------------- Relation *)

let test_relation_basics () =
  check_int "cardinality" 4 (Relation.cardinality r_emp);
  check_int "arity" 2 (Relation.arity r_emp);
  check "dedup" true
    (Relation.cardinality (Relation.make ~attrs:[ "a" ] [ [ "x" ]; [ "x" ] ]) = 1);
  check "value lookup" true
    (Relation.value r_dept [ "toys"; "1" ] "floor" = "1");
  check "duplicate attrs rejected" true
    (try
       ignore (Relation.make ~attrs:[ "a"; "a" ] []);
       false
     with Invalid_argument _ -> true);
  check "arity mismatch rejected" true
    (try
       ignore (Relation.make ~attrs:[ "a" ] [ [ "x"; "y" ] ]);
       false
     with Invalid_argument _ -> true);
  check "equal ignores column order" true
    (Relation.equal
       (Relation.make ~attrs:[ "a"; "b" ] [ [ "1"; "2" ] ])
       (Relation.make ~attrs:[ "b"; "a" ] [ [ "2"; "1" ] ]))

let test_columnar_access () =
  (* O(1) accessors agree with the row view. *)
  let r = r_emp in
  check "col_index" true (Relation.col_index r "dept" = Some 1);
  check "col_index missing" true (Relation.col_index r "nope" = None);
  for i = 0 to Relation.cardinality r - 1 do
    let row = Relation.row r i in
    List.iteri
      (fun j v -> check "cell = row" true (Relation.cell r ~row:i ~col:j = v))
      row
  done;
  (* Set-mode relations store rows sorted, so tuples is canonical. *)
  check "tuples sorted" true
    (let ts = Relation.tuples r in
     List.sort compare ts = ts)

(* ------------------------------------------------------ Bag semantics *)

let test_bag_multiplicities () =
  (* Regression for the silent sort_uniq: bag mode must keep every
     duplicate the generators produce. *)
  let bag = Relation.make ~semantics:Relation.Bag ~attrs:[ "a" ] [ [ "x" ]; [ "x" ] ] in
  check_int "bag keeps duplicates" 2 (Relation.cardinality bag);
  check_int "set collapses duplicates" 1
    (Relation.cardinality (Relation.make ~attrs:[ "a" ] [ [ "x" ]; [ "x" ] ]));
  check "equal sees multiplicities" false
    (Relation.equal bag (Relation.make ~semantics:Relation.Bag ~attrs:[ "a" ] [ [ "x" ] ]));
  (* Projection under bags is multiplicity-preserving. *)
  let wide =
    Relation.make ~semantics:Relation.Bag ~attrs:[ "a"; "b" ]
      [ [ "x"; "1" ]; [ "x"; "2" ]; [ "x"; "2" ] ]
  in
  check_int "bag projection keeps all rows" 3
    (Relation.cardinality (Ops.project wide [ "a" ]));
  check_int "set projection dedups" 1
    (Relation.cardinality
       (Ops.project (Relation.make ~attrs:[ "a"; "b" ]
                       [ [ "x"; "1" ]; [ "x"; "2" ] ])
          [ "a" ]));
  (* Join multiplicities multiply per matching pair. *)
  let l = Relation.make ~semantics:Relation.Bag ~attrs:[ "a" ] [ [ "x" ]; [ "x" ] ] in
  let r = Relation.make ~semantics:Relation.Bag ~attrs:[ "a"; "b" ]
      [ [ "x"; "1" ]; [ "x"; "1" ]; [ "x"; "2" ] ]
  in
  check_int "bag join multiplies" 6
    (Relation.cardinality (Ops.natural_join l r));
  (* Boolean projection: count of witnesses under bags, 0/1 under sets. *)
  check_int "bag boolean projection counts" 3
    (Relation.cardinality (Ops.project r []));
  check_int "semijoin never duplicates" 2 (Relation.cardinality (Ops.semijoin l r))

let test_bag_generator_cardinalities () =
  (* gen_db with a tiny domain: set mode loses duplicate tuples, bag
     mode pins cardinality = rows exactly. *)
  let rows = 64 in
  let bagged =
    Workloads.Gen_db.chain ~semantics:Relation.Bag
      (Workloads.Rng.make ~seed:5) ~length:3 ~rows ~domain:3
  in
  List.iter
    (fun (_, r) -> check_int "bag keeps all generated rows" rows (Relation.cardinality r))
    (Database.relations bagged);
  let set_db =
    Workloads.Gen_db.chain (Workloads.Rng.make ~seed:5) ~length:3 ~rows ~domain:3
  in
  List.iter
    (fun (_, r) ->
      check "set drops generated duplicates" true (Relation.cardinality r < rows))
    (Database.relations set_db)

let test_mixed_semantics_rejected () =
  check "mixed set/bag database rejected" true
    (try
       ignore
         (Database.make
            [
              ("s", Relation.make ~attrs:[ "a" ] [ [ "1" ] ]);
              ("b", Relation.make ~semantics:Relation.Bag ~attrs:[ "a" ] [ [ "1" ] ]);
            ]);
       false
     with Invalid_argument _ -> true)

(* --------------------------------------------------------------- Ops *)

let test_project_select () =
  let p = Ops.project r_emp [ "dept" ] in
  check_int "projection dedups" 3 (Relation.cardinality p);
  let s = Ops.select_eq r_emp ~attr:"dept" ~value:"toys" in
  check_int "selection" 2 (Relation.cardinality s);
  check "duplicate projection attrs rejected" true
    (try
       ignore (Ops.project r_emp [ "dept"; "dept" ]);
       false
     with Invalid_argument _ -> true)

let test_join () =
  let j = Ops.natural_join r_emp r_dept in
  check_int "join cardinality" 3 (Relation.cardinality j);
  check "join attrs" true
    (List.sort compare (Relation.attrs j) = [ "dept"; "emp"; "floor" ]);
  (* Cartesian product when no shared attribute. *)
  let a = Relation.make ~attrs:[ "x" ] [ [ "1" ]; [ "2" ] ] in
  let b = Relation.make ~attrs:[ "y" ] [ [ "u" ]; [ "v" ]; [ "w" ] ] in
  check_int "cartesian" 6 (Relation.cardinality (Ops.natural_join a b));
  check "join commutes (as sets)" true
    (Relation.equal (Ops.natural_join r_emp r_dept) (Ops.natural_join r_dept r_emp))

let test_semijoin () =
  let s = Ops.semijoin r_emp r_dept in
  check_int "dangling dave removed" 3 (Relation.cardinality s);
  check "attrs unchanged" true (Relation.attrs s = Relation.attrs r_emp);
  (* Semijoin with disjoint attrs keeps everything iff right nonempty. *)
  let b = Relation.make ~attrs:[ "z" ] [ [ "q" ] ] in
  check_int "disjoint semijoin keeps" 4
    (Relation.cardinality (Ops.semijoin r_emp b));
  let empty = Relation.make ~attrs:[ "z" ] [] in
  check_int "empty right empties left" 0
    (Relation.cardinality (Ops.semijoin r_emp empty))

(* ----------------------------------------------------------- Database *)

let test_scheme_hypergraph () =
  let h = Database.scheme_hypergraph db in
  check_int "nodes = attributes" 4 (Hypergraph.n_nodes h);
  check_int "edges = relations" 3 (Hypergraph.n_edges h);
  check "chain schema is acyclic" true (Gyo.alpha_acyclic h)

let test_database_indexing () =
  check_int "n_relations" 3 (Database.n_relations db);
  check "relation_at in names order" true
    (fst (Database.relation_at db 1) = "dept");
  check "relation lookup" true
    (Relation.equal (Database.relation db "floor") r_floor);
  check_int "total tuples" 9 (Database.total_tuples db)

(* --------------------------------------------------------- Yannakakis *)

let test_plan () =
  match Yannakakis.plan db with
  | Yannakakis.Acyclic jt -> check "join tree coherent" true (Join_tree.verify jt)
  | Yannakakis.Naive_fallback -> Alcotest.fail "chain schema is acyclic"

let test_full_reducer () =
  match Yannakakis.plan db with
  | Yannakakis.Naive_fallback -> Alcotest.fail "acyclic expected"
  | Yannakakis.Acyclic jt ->
    let reduced = Yannakakis.full_reducer db jt in
    (* Dangling tuples are gone: dave's dept has no floor; floor 3 has
       no dept. *)
    check_int "emp reduced" 3
      (Relation.cardinality (Database.relation reduced "emp"));
    check_int "floor reduced" 2
      (Relation.cardinality (Database.relation reduced "floor"))

let test_yannakakis_equals_naive () =
  let output = [ "emp"; "manager" ] in
  let y = ok_rel (Yannakakis.evaluate db ~output) in
  let n = ok_rel (Yannakakis.evaluate_naive db ~output) in
  check "same result" true (Relation.equal y n);
  check_int "three employees have managers" 3 (Relation.cardinality y)

let test_cyclic_fallback () =
  let ra = Relation.make ~attrs:[ "a"; "b" ] [ [ "1"; "2" ] ] in
  let rb = Relation.make ~attrs:[ "b"; "c" ] [ [ "2"; "3" ] ] in
  let rc = Relation.make ~attrs:[ "a"; "c" ] [ [ "1"; "3" ] ] in
  let cyc = Database.make [ ("ab", ra); ("bc", rb); ("ac", rc) ] in
  check "triangle scheme is cyclic" true (Yannakakis.plan cyc = Yannakakis.Naive_fallback);
  let out = ok_rel (Yannakakis.evaluate cyc ~output:[ "a"; "b"; "c" ]) in
  check_int "still evaluates" 1 (Relation.cardinality out)

let test_output_validation () =
  (* Both failure modes come back typed, from both evaluators — they
     used to escape as Invalid_argument from deep in Ops.project. *)
  let is_invalid = function
    | Error (Runtime.Errors.Invalid_instance _) -> true
    | _ -> false
  in
  check "unknown attribute typed" true
    (is_invalid (Yannakakis.evaluate db ~output:[ "nope" ]));
  check "unknown attribute typed (naive)" true
    (is_invalid (Yannakakis.evaluate_naive db ~output:[ "nope" ]));
  check "duplicate output typed" true
    (is_invalid (Yannakakis.evaluate db ~output:[ "emp"; "emp" ]));
  check "duplicate output typed (naive)" true
    (is_invalid (Yannakakis.evaluate_naive db ~output:[ "emp"; "emp" ]))

let test_budget_exhaustion () =
  let big =
    Workloads.Gen_db.chain (Workloads.Rng.make ~seed:11) ~length:4 ~rows:2000
      ~domain:500
  in
  let ctx = Exec.make ~budget:(Runtime.Budget.make ~fuel:3 ()) () in
  (match Yannakakis.evaluate ~ctx big ~output:[ "a0"; "a4" ] with
  | Error (Runtime.Errors.Budget_exhausted _) -> ()
  | Ok _ -> Alcotest.fail "3 fuel units cannot evaluate 8000 tuples"
  | Error e -> Alcotest.fail ("wrong error: " ^ Runtime.Errors.to_string e));
  (* The same query under no budget succeeds. *)
  ignore (ok_rel (Yannakakis.evaluate big ~output:[ "a0"; "a4" ]))

let test_observability () =
  let trace = Observe.Trace.make () in
  let metrics = Observe.Metrics.make () in
  let ctx = Exec.make ~trace ~metrics () in
  ignore (ok_rel (Yannakakis.evaluate ~ctx db ~output:[ "emp"; "manager" ]));
  let span_names = List.map (fun s -> s.Observe.Trace.name) (Observe.Trace.spans trace) in
  check "reduce span recorded" true (List.mem "relalg.reduce" span_names);
  check "join span recorded" true (List.mem "relalg.join" span_names);
  let count name =
    match Observe.Metrics.find_counter metrics name with
    | Some c -> c
    | None -> 0
  in
  check "semijoins counted" true (count "relalg.semijoins" >= 4);
  check "rows scanned" true (count "relalg.rows_scanned" > 0);
  check "joins counted" true (count "relalg.joins" >= 2)

(* -------------------------------------------------------- Edge cases *)

let test_relalg_edge_cases () =
  let empty_r = Relation.make ~attrs:[ "a"; "b" ] [] in
  check_int "join with empty is empty" 0
    (Relation.cardinality (Ops.natural_join r_emp empty_r));
  check_int "project to nothing" 1
    (Relation.cardinality (Ops.project r_emp []));
  check_int "project empty relation to nothing" 0
    (Relation.cardinality (Ops.project empty_r []));
  check "empty selection" true
    (Relation.cardinality (Ops.select_eq r_emp ~attr:"dept" ~value:"zzz") = 0);
  check "join_all of nothing" true (Ops.join_all [] = None)

let test_empty_relation_in_tree () =
  (* An empty relation anywhere in the join tree empties every answer,
     in both modes. *)
  List.iter
    (fun semantics ->
      let mk attrs rows = Relation.make ~semantics ~attrs rows in
      let d =
        Database.make
          [
            ("r0", mk [ "a"; "b" ] [ [ "1"; "2" ]; [ "1"; "3" ] ]);
            ("r1", mk [ "b"; "c" ] []);
            ("r2", mk [ "c"; "d" ] [ [ "5"; "6" ] ]);
          ]
      in
      let y = ok_rel (Yannakakis.evaluate d ~output:[ "a"; "d" ]) in
      check_int "empty relation empties the answer" 0 (Relation.cardinality y);
      check "matches naive" true
        (Relation.equal y (ok_rel (Yannakakis.evaluate_naive d ~output:[ "a"; "d" ]))))
    [ Relation.Set; Relation.Bag ]

let test_disconnected_scheme () =
  (* Two attribute-disjoint chains: the scheme hypergraph is a forest
     with two components and the subtree results combine by cartesian
     product. *)
  List.iter
    (fun semantics ->
      let mk attrs rows = Relation.make ~semantics ~attrs rows in
      let d =
        Database.make
          [
            ("r0", mk [ "a"; "b" ] [ [ "1"; "2" ]; [ "1"; "2" ]; [ "7"; "8" ] ]);
            ("r1", mk [ "x"; "y" ] [ [ "u"; "v" ]; [ "w"; "v" ] ]);
          ]
      in
      let y = ok_rel (Yannakakis.evaluate d ~output:[ "a"; "x" ]) in
      let n = ok_rel (Yannakakis.evaluate_naive d ~output:[ "a"; "x" ]) in
      check "disconnected scheme matches naive" true (Relation.equal y n);
      check_int "cartesian cardinality"
        (match semantics with Relation.Set -> 4 | Relation.Bag -> 6)
        (Relation.cardinality y))
    [ Relation.Set; Relation.Bag ]

let test_boolean_query () =
  (* output = []: does the full join have any witnesses? Sets answer
     0/1; bags count the witnesses. *)
  let y = ok_rel (Yannakakis.evaluate db ~output:[]) in
  check_int "boolean query (set): one empty tuple" 1 (Relation.cardinality y);
  check_int "boolean arity" 0 (Relation.arity y);
  check "boolean matches naive" true
    (Relation.equal y (ok_rel (Yannakakis.evaluate_naive db ~output:[])));
  let bag =
    Workloads.Gen_db.chain ~semantics:Relation.Bag (Workloads.Rng.make ~seed:3)
      ~length:2 ~rows:8 ~domain:2
  in
  let yb = ok_rel (Yannakakis.evaluate bag ~output:[]) in
  check "bag boolean matches naive" true
    (Relation.equal yb (ok_rel (Yannakakis.evaluate_naive bag ~output:[])))

(* -------------------------------------------------------- properties *)

let db_gen_with ~semantics =
  QCheck2.Gen.(
    int_range 0 10000
    |> map (fun seed ->
           let rng = Workloads.Rng.make ~seed in
           (* Random acyclic schema over attributes a0..a7 with random
              small data. *)
           let h = Workloads.Gen_hyper.alpha_acyclic rng ~n_edges:4 ~max_size:3 in
           let attr i = Printf.sprintf "a%d" i in
           let rels =
             Array.to_list (Hypergraph.edges h)
             |> List.mapi (fun j e ->
                    let attrs = List.map attr (Graphs.Iset.elements e) in
                    let row _ =
                      List.map (fun _ -> string_of_int (Workloads.Rng.int rng 3)) attrs
                    in
                    ( Printf.sprintf "r%d" j,
                      Relation.make ~semantics ~attrs (List.init 6 row) ))
           in
           Database.make rels))

let db_gen = db_gen_with ~semantics:Relation.Set

(* The differential property at the heart of the engine: the reduced
   tree-structured plan computes exactly the naive join-project, for
   every random database, in both semantics modes, over gen_db's
   acyclic and chain families. *)
let differential_cases =
  let eq_on db output =
    Relation.equal
      (ok_rel (Yannakakis.evaluate db ~output))
      (ok_rel (Yannakakis.evaluate_naive db ~output))
  in
  let every_other db =
    List.filteri (fun i _ -> i mod 2 = 0) (Database.attributes db)
  in
  let of_seed ~family ~semantics seed =
    let rng = Workloads.Rng.make ~seed in
    match family with
    | `Acyclic -> Workloads.Gen_db.acyclic ~semantics rng ~n_relations:4 ~rows:6
    | `Chain ->
      Workloads.Gen_db.chain ~semantics ~dangling:0.3 rng ~length:4 ~rows:8
        ~domain:3
  in
  List.concat_map
    (fun (fname, family) ->
      List.map
        (fun (sname, semantics) ->
          QCheck2.Test.make ~count:120
            ~name:
              (Printf.sprintf "Yannakakis = naive on gen_db %s (%s mode)" fname
                 sname)
            QCheck2.Gen.(int_range 0 10000)
            (fun seed ->
              let d = of_seed ~family ~semantics seed in
              eq_on d (every_other d) && eq_on d []))
        [ ("set", Relation.Set); ("bag", Relation.Bag) ])
    [ ("acyclic", `Acyclic); ("chain", `Chain) ]

let qcheck_cases =
  [
    QCheck2.Test.make ~count:150
      ~name:"Yannakakis = naive join-project on random acyclic databases"
      db_gen (fun db ->
        let attrs = Database.attributes db in
        let output = List.filteri (fun i _ -> i mod 2 = 0) attrs in
        QCheck2.assume (output <> []);
        Relation.equal
          (ok_rel (Yannakakis.evaluate db ~output))
          (ok_rel (Yannakakis.evaluate_naive db ~output)));
    QCheck2.Test.make ~count:150
      ~name:"full reducer never grows relations and preserves the join"
      db_gen (fun db ->
        match Yannakakis.plan db with
        | Yannakakis.Naive_fallback -> true
        | Yannakakis.Acyclic jt ->
          let reduced = Yannakakis.full_reducer db jt in
          List.for_all2
            (fun (_, r) (_, r') ->
              Relation.cardinality r' <= Relation.cardinality r)
            (Database.relations db)
            (Database.relations reduced)
          &&
          let output = Database.attributes db in
          Relation.equal
            (ok_rel (Yannakakis.evaluate_naive db ~output))
            (ok_rel (Yannakakis.evaluate_naive reduced ~output)));
    QCheck2.Test.make ~count:100 ~name:"natural join is commutative (as sets)"
      db_gen (fun db ->
        match Database.relations db with
        | (_, r) :: (_, s) :: _ ->
          Relation.equal (Ops.natural_join r s) (Ops.natural_join s r)
        | _ -> true);
    QCheck2.Test.make ~count:100 ~name:"natural join is associative (as sets)"
      db_gen (fun db ->
        match Database.relations db with
        | (_, r) :: (_, s) :: (_, t) :: _ ->
          Relation.equal
            (Ops.natural_join (Ops.natural_join r s) t)
            (Ops.natural_join r (Ops.natural_join s t))
        | _ -> true);
    QCheck2.Test.make ~count:100
      ~name:"semijoin = projection of the join onto the left schema" db_gen
      (fun db ->
        match Database.relations db with
        | (_, r) :: (_, s) :: _ ->
          Relation.equal (Ops.semijoin r s)
            (Ops.project (Ops.natural_join r s) (Relation.attrs r))
        | _ -> true);
    QCheck2.Test.make ~count:100 ~name:"semijoin is idempotent" db_gen
      (fun db ->
        match Database.relations db with
        | (_, r) :: (_, s) :: _ ->
          let once = Ops.semijoin r s in
          Relation.equal once (Ops.semijoin once s)
        | _ -> true);
    QCheck2.Test.make ~count:100
      ~name:"bag join multiplicities are commutative"
      (db_gen_with ~semantics:Relation.Bag) (fun db ->
        match Database.relations db with
        | (_, r) :: (_, s) :: _ ->
          Relation.equal (Ops.natural_join r s) (Ops.natural_join s r)
        | _ -> true);
    QCheck2.Test.make ~count:100
      ~name:"columnar round-trip: make (tuples r) = r"
      db_gen (fun db ->
        List.for_all
          (fun (_, r) ->
            Relation.equal r
              (Relation.make ~attrs:(Relation.attrs r) (Relation.tuples r)))
          (Database.relations db));
  ]

let () =
  Alcotest.run "relalg"
    [
      ( "relation",
        [
          Alcotest.test_case "basics" `Quick test_relation_basics;
          Alcotest.test_case "columnar access" `Quick test_columnar_access;
        ] );
      ( "bag-semantics",
        [
          Alcotest.test_case "multiplicities" `Quick test_bag_multiplicities;
          Alcotest.test_case "generator cardinalities" `Quick
            test_bag_generator_cardinalities;
          Alcotest.test_case "mixed rejected" `Quick test_mixed_semantics_rejected;
        ] );
      ( "ops",
        [
          Alcotest.test_case "project/select" `Quick test_project_select;
          Alcotest.test_case "natural join" `Quick test_join;
          Alcotest.test_case "semijoin" `Quick test_semijoin;
        ] );
      ( "database",
        [
          Alcotest.test_case "scheme hypergraph" `Quick test_scheme_hypergraph;
          Alcotest.test_case "indexing" `Quick test_database_indexing;
        ] );
      ( "yannakakis",
        [
          Alcotest.test_case "plan" `Quick test_plan;
          Alcotest.test_case "full reducer" `Quick test_full_reducer;
          Alcotest.test_case "equals naive" `Quick test_yannakakis_equals_naive;
          Alcotest.test_case "cyclic fallback" `Quick test_cyclic_fallback;
          Alcotest.test_case "output validation" `Quick test_output_validation;
          Alcotest.test_case "budget exhaustion" `Quick test_budget_exhaustion;
          Alcotest.test_case "observability" `Quick test_observability;
        ] );
      ( "edge-cases",
        [
          Alcotest.test_case "corner cases" `Quick test_relalg_edge_cases;
          Alcotest.test_case "empty relation in tree" `Quick
            test_empty_relation_in_tree;
          Alcotest.test_case "disconnected scheme" `Quick test_disconnected_scheme;
          Alcotest.test_case "boolean query" `Quick test_boolean_query;
        ] );
      ("differential", List.map QCheck_alcotest.to_alcotest differential_cases);
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_cases);
    ]
