(* Parallel determinism: the domain pool must be invisible in every
   observable result.  [Session.solve_many] over 1/2/4-domain pools —
   and the pool-free sequential path — must return byte-identical
   solutions, errors and provenance, including under injected [Fault]
   plans and per-query fuel exhaustion mid-batch; [Compiled.compile]
   must produce the same plan and even the same merged trace shape for
   any pool size.  Plus direct unit coverage of [Pool] (ordering,
   exception choice, worker ids, shutdown), [Budget.Shared]
   (cooperative batch cancellation) and [Trace] fork/merge. *)

open Graphs
module Pool = Minconn.Pool
module Fault = Runtime.Fault

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let seed_gen = QCheck2.Gen.int_range 0 1_000_000

let sol_equal (a : Minconn.solution) (b : Minconn.solution) =
  Iset.equal a.Minconn.tree.Steiner.Tree.nodes b.Minconn.tree.Steiner.Tree.nodes
  && a.Minconn.tree.Steiner.Tree.edges = b.Minconn.tree.Steiner.Tree.edges
  && a.Minconn.method_used = b.Minconn.method_used
  && a.Minconn.optimal = b.Minconn.optimal
  && a.Minconn.profile = b.Minconn.profile
  && a.Minconn.provenance = b.Minconn.provenance

let result_equal a b =
  match (a, b) with
  | Ok sa, Ok sb -> sol_equal sa sb
  | Error ea, Error eb -> ea = eb
  | Ok _, Error _ | Error _, Ok _ -> false

let results_equal = List.for_all2 result_equal

(* Batches keep their pathologies (empty sets, singletons, possibly
   disconnected picks): errors must stay in position on every path. *)
let query_batch rng g =
  List.init 8 (fun _ ->
      if Workloads.Rng.bool rng 0.1 then Iset.empty
      else
        Workloads.Gen_bipartite.random_terminals rng g
          ~k:(1 + Workloads.Rng.int rng 4))

let random_graph rng =
  if Workloads.Rng.bool rng 0.5 then
    let n_right = 2 + Workloads.Rng.int rng 6 in
    Workloads.Gen_bipartite.chordal_62 rng ~n_right ~max_size:4
  else
    let nl = 2 + Workloads.Rng.int rng 8
    and nr = 2 + Workloads.Rng.int rng 8 in
    Workloads.Gen_bipartite.gnp rng ~nl ~nr ~p:0.3

let solve_on ?pool ?make_budget g queries =
  let compiled = Minconn.Compiled.compile ?pool g in
  let session = Minconn.Session.create compiled in
  Minconn.Session.solve_many ?pool ?make_budget session queries

(* Sequential vs pooled at every size, compile and queries both under
   the pool. *)
let pool_sizes = [ 1; 2; 4 ]

let all_sizes_agree ?make_budget ~arm g queries =
  let run ?pool () =
    match arm with
    | None -> solve_on ?pool ?make_budget g queries
    | Some arm ->
      Fault.with_plan ~arm (fun () -> solve_on ?pool ?make_budget g queries)
  in
  let baseline = run () in
  List.for_all
    (fun domains ->
      Pool.with_pool ~domains (fun pool ->
          results_equal baseline (run ~pool ())))
    pool_sizes

let prop_batch_deterministic =
  QCheck2.Test.make ~count:60
    ~name:"solve_many: pool of 1/2/4 domains = sequential" seed_gen
    (fun seed ->
      let rng = Workloads.Rng.make ~seed in
      let g = random_graph rng in
      all_sizes_agree ~arm:None g (query_batch rng g))

let prop_batch_deterministic_fuel =
  QCheck2.Test.make ~count:60
    ~name:"solve_many under per-query fuel exhaustion: pools = sequential"
    seed_gen
    (fun seed ->
      let rng = Workloads.Rng.make ~seed in
      let g = random_graph rng in
      (* Small enough to exhaust mid-batch on real queries, large
         enough that some rungs complete. *)
      let fuel = 1 + Workloads.Rng.int rng 60 in
      all_sizes_agree ~arm:None
        ~make_budget:(fun _ -> Minconn.Budget.make ~fuel ())
        g (query_batch rng g))

let prop_batch_deterministic_faults =
  QCheck2.Test.make ~count:60
    ~name:"solve_many under injected faults: pools = sequential" seed_gen
    (fun seed ->
      let rng = Workloads.Rng.make ~seed in
      let g = random_graph rng in
      let arm =
        if Workloads.Rng.bool rng 0.5 then
          let checks = Workloads.Rng.int rng 40 in
          fun () -> Fault.arm_after ~checks ~reason:Minconn.Errors.Fuel
        else
          let fseed = Workloads.Rng.int rng 10_000 in
          fun () ->
            Fault.arm ~seed:fseed ~p:0.02 ~reason:Minconn.Errors.Timeout
      in
      (* A limited budget is what routes checks through the fault
         harness; fuel is high enough that only the plan fires. *)
      all_sizes_agree ~arm:(Some arm)
        ~make_budget:(fun _ -> Minconn.Budget.make ~fuel:1_000_000 ())
        g (query_batch rng g))

(* Compile under a pool: same plan, and the same trace, span for
   span — fork/merge renumbering must reproduce the sequential id
   assignment exactly. *)
let trace_shape trace =
  List.map
    (fun s ->
      (s.Observe.Trace.id, s.Observe.Trace.parent, s.Observe.Trace.name))
    (Observe.Trace.spans trace)

let prop_compile_deterministic =
  QCheck2.Test.make ~count:40
    ~name:"compile: pooled plan and trace shape = sequential" seed_gen
    (fun seed ->
      let rng = Workloads.Rng.make ~seed in
      let g = random_graph rng in
      let trace_seq = Observe.Trace.make () in
      let c_seq = Minconn.Compiled.compile ~trace:trace_seq g in
      List.for_all
        (fun domains ->
          Pool.with_pool ~domains (fun pool ->
              let trace_par = Observe.Trace.make () in
              let c_par = Minconn.Compiled.compile ~pool ~trace:trace_par g in
              c_par.Minconn.Compiled.profile = c_seq.Minconn.Compiled.profile
              && c_par.Minconn.Compiled.comp_id = c_seq.Minconn.Compiled.comp_id
              && Array.for_all2
                   (fun (a : Minconn.Compiled.component) b ->
                     Iset.equal a.Minconn.Compiled.nodes
                       b.Minconn.Compiled.nodes
                     && a.Minconn.Compiled.order = b.Minconn.Compiled.order)
                   c_par.Minconn.Compiled.components
                   c_seq.Minconn.Compiled.components
              && trace_shape trace_par = trace_shape trace_seq))
        pool_sizes)

(* ------------------------------------------------------ Pool units *)

let test_pool_ordering () =
  Pool.with_pool ~domains:4 (fun pool ->
      let out = Pool.map pool (fun x -> x * x) (Array.init 100 Fun.id) in
      check "results in submission order" true
        (out = Array.init 100 (fun i -> i * i));
      check_int "domains" 4 (Pool.domains pool);
      let lst = Pool.run_all pool [ (fun () -> 1); (fun () -> 2); (fun () -> 3) ] in
      check "run_all keeps list order" true (lst = [ 1; 2; 3 ]))

let test_pool_lowest_exception () =
  Pool.with_pool ~domains:4 (fun pool ->
      match
        Pool.map pool
          (fun i -> if i = 3 || i = 7 then failwith (string_of_int i) else i)
          (Array.init 10 Fun.id)
      with
      | _ -> Alcotest.fail "expected an exception"
      | exception Failure msg ->
        check "lowest-index failure wins" true (msg = "3"))

let test_pool_worker_ids () =
  Pool.with_pool ~domains:3 (fun pool ->
      let workers =
        Pool.mapi_worker pool
          (fun ~worker ~index:_ () -> worker)
          (Array.make 32 ())
      in
      check "worker ids within pool size" true
        (Array.for_all (fun w -> w >= 0 && w < 3) workers))

let test_pool_inline () =
  let pool = Pool.create ~domains:1 () in
  let out = Pool.map pool (fun x -> x + 1) [| 1; 2; 3 |] in
  check "inline pool maps" true (out = [| 2; 3; 4 |]);
  Pool.shutdown pool;
  Pool.shutdown pool (* idempotent *)

let test_pool_shutdown_rejects () =
  let pool = Pool.create ~domains:2 () in
  Pool.shutdown pool;
  check "submit after shutdown raises" true
    (match Pool.map pool Fun.id [| 1; 2 |] with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* --------------------------------------------------- Budget.Shared *)

let test_shared_fuel_cancels_batch () =
  let h = Minconn.Budget.Shared.make ~fuel:100 () in
  let drain view =
    match
      Minconn.Budget.protect view (fun () ->
          while true do
            Minconn.Budget.check view
          done)
    with
    | Error reason -> reason
    | Ok _ -> assert false
  in
  check "first view drains the tank to Fuel" true
    (drain (Minconn.Budget.Shared.view h) = Minconn.Errors.Fuel);
  check "exhaustion is parked for siblings" true
    (Minconn.Budget.Shared.cancelled h = Some Minconn.Errors.Fuel);
  (* A sibling mid-flight stops at its next checkpoint. *)
  check "fresh view stops immediately" true
    (drain (Minconn.Budget.Shared.view h) = Minconn.Errors.Fuel)

let test_shared_cancel () =
  let h = Minconn.Budget.Shared.make ~fuel:1_000_000 () in
  Minconn.Budget.Shared.cancel h Minconn.Errors.Timeout;
  let view = Minconn.Budget.Shared.view h in
  check "cancelled handle stops views" true
    (Minconn.Budget.protect view (fun () -> Minconn.Budget.check view)
    = Error Minconn.Errors.Timeout);
  (* First cancel wins. *)
  Minconn.Budget.Shared.cancel h Minconn.Errors.Fuel;
  check "first cancel wins" true
    (Minconn.Budget.Shared.cancelled h = Some Minconn.Errors.Timeout)

(* --------------------------------------------------- Trace / Metrics *)

let test_trace_fork_merge () =
  let now = ref 0.0 in
  let clock () =
    now := !now +. 1.0;
    !now
  in
  let t = Observe.Trace.make ~clock () in
  Observe.Trace.span t "root" (fun () ->
      let f1 = Observe.Trace.fork t in
      let f2 = Observe.Trace.fork t in
      Observe.Trace.span f1 "task0" (fun () ->
          Observe.Trace.event f1 "task0.event");
      Observe.Trace.span f2 "task1" (fun () -> ());
      Observe.Trace.merge t f1;
      Observe.Trace.merge t f2);
  check "merged shape: ids renumbered, roots re-parented" true
    (trace_shape t
    = [ (1, 0, "root"); (2, 1, "task0"); (3, 2, "task0.event"); (4, 1, "task1") ]);
  check "fork of disabled is disabled" true
    (not (Observe.Trace.active (Observe.Trace.fork Observe.Trace.disabled)))

let test_metrics_atomic () =
  let m = Observe.Metrics.make () in
  let c = Observe.Metrics.counter m "hits" in
  Pool.with_pool ~domains:4 (fun pool ->
      ignore
        (Pool.map pool
           (fun () ->
             for _ = 1 to 1000 do
               Observe.Metrics.incr c
             done)
           (Array.make 8 ())));
  check_int "no increments lost across domains" 8000
    (Observe.Metrics.count c)

let qcheck_cases =
  [
    prop_batch_deterministic;
    prop_batch_deterministic_fuel;
    prop_batch_deterministic_faults;
    prop_compile_deterministic;
  ]

let () =
  Alcotest.run "parallel"
    [
      ("determinism", List.map QCheck_alcotest.to_alcotest qcheck_cases);
      ( "pool",
        [
          Alcotest.test_case "deterministic ordering" `Quick test_pool_ordering;
          Alcotest.test_case "lowest-index exception" `Quick
            test_pool_lowest_exception;
          Alcotest.test_case "worker ids" `Quick test_pool_worker_ids;
          Alcotest.test_case "inline 1-domain pool" `Quick test_pool_inline;
          Alcotest.test_case "shutdown rejects submits" `Quick
            test_pool_shutdown_rejects;
        ] );
      ( "shared-budget",
        [
          Alcotest.test_case "fuel tank cancels batch" `Quick
            test_shared_fuel_cancels_batch;
          Alcotest.test_case "explicit cancel" `Quick test_shared_cancel;
        ] );
      ( "observe",
        [
          Alcotest.test_case "trace fork/merge" `Quick test_trace_fork_merge;
          Alcotest.test_case "atomic counters" `Quick test_metrics_atomic;
        ] );
    ]
