(* Tests for the Steiner solvers: exact DP vs the subset-enumeration
   oracle, Algorithm 1 vs the brute V2-minimum, Algorithm 2's exactness
   on (6,2)-chordal graphs (Theorem 5), the approximation baseline, and
   both NP-hardness reductions. *)

open Graphs
open Bipartite
open Steiner

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let rng_of seed = Workloads.Rng.make ~seed

(* --------------------------------------------------------------- Cover *)

let test_cover_predicates () =
  let g = Ugraph.of_edges ~n:5 [ (0, 1); (1, 2); (2, 3); (3, 4); (0, 4) ] in
  let p = Iset.of_list [ 0; 2 ] in
  check "whole cycle covers" true (Cover.is_cover g ~p (Iset.range 5));
  check "cycle is redundant" false
    (Cover.is_nonredundant_cover g ~p (Iset.range 5));
  check "one arc is nonredundant" true
    (Cover.is_nonredundant_cover g ~p (Iset.of_list [ 0; 1; 2 ]));
  check "other arc also nonredundant (longer)" true
    (Cover.is_nonredundant_cover g ~p (Iset.of_list [ 0; 4; 3; 2 ]));
  check_int "minimum cover size" 3
    (match Cover.minimum_cover_size_brute g ~within:(Iset.range 5) ~p with
    | Some k -> k
    | None -> -1)

let test_eliminate_redundant () =
  let g = Ugraph.of_edges ~n:5 [ (0, 1); (1, 2); (2, 3); (3, 4); (0, 4) ] in
  let p = Iset.of_list [ 0; 2 ] in
  let survivors = Cover.eliminate_redundant g ~within:(Iset.range 5) ~p in
  check "result is a nonredundant cover" true
    (Cover.is_nonredundant_cover g ~p survivors);
  (* Order matters on a C5: starting by deleting node 1 forces the long
     way around. *)
  let long = Cover.eliminate_redundant ~order:[ 1; 3; 4 ] g ~within:(Iset.range 5) ~p in
  check_int "bad order keeps 4 nodes" 4 (Iset.cardinal long)

let test_paths () =
  let g = Ugraph.of_edges ~n:5 [ (0, 1); (1, 2); (2, 3); (3, 4); (0, 4) ] in
  check_int "all paths 0..2 on C5" 2 (List.length (Cover.all_paths g 0 2));
  check "short path nonredundant" true
    (Cover.is_nonredundant_path g [ 0; 1; 2 ]);
  check "long path nonredundant too" true
    (Cover.is_nonredundant_path g [ 0; 4; 3; 2 ]);
  check "C5 has a nonredundant non-minimum path" true
    (Cover.nonredundant_nonminimum_pair g <> None);
  (* On a tree every nonredundant path is the unique path. *)
  let t = Ugraph.of_edges ~n:4 [ (0, 1); (1, 2); (2, 3) ] in
  check "tree has no such pair" true
    (Cover.nonredundant_nonminimum_pair t = None)

(* ------------------------------------------------------ Dreyfus-Wagner *)

let test_dw_basics () =
  let g = Ugraph.of_edges ~n:6 [ (0, 1); (1, 2); (2, 3); (1, 4); (4, 5) ] in
  (match Dreyfus_wagner.solve g ~terminals:(Iset.of_list [ 0; 3; 5 ]) with
  | Some t ->
    check "tree verifies" true
      (Tree.verify g ~terminals:(Iset.of_list [ 0; 3; 5 ]) t);
    check_int "optimum node count" 6 (Tree.node_count t)
  | None -> Alcotest.fail "connected instance");
  check "disconnected -> None" true
    (Dreyfus_wagner.solve (Ugraph.create 3) ~terminals:(Iset.of_list [ 0; 2 ])
    = None);
  (match Dreyfus_wagner.solve g ~terminals:(Iset.singleton 2) with
  | Some t -> check_int "singleton tree" 1 (Tree.node_count t)
  | None -> Alcotest.fail "singleton");
  match Dreyfus_wagner.solve g ~terminals:Iset.empty with
  | Some t -> check_int "empty tree" 0 (Tree.node_count t)
  | None -> Alcotest.fail "empty"

let test_dw_within () =
  let g = Ugraph.of_edges ~n:4 [ (0, 1); (1, 2); (0, 3); (3, 2) ] in
  let within = Iset.of_list [ 0; 2; 3 ] in
  match Dreyfus_wagner.solve ~within g ~terminals:(Iset.of_list [ 0; 2 ]) with
  | Some t ->
    check "detour through 3" true (Iset.mem 3 t.Tree.nodes);
    check_int "3 nodes" 3 (Tree.node_count t)
  | None -> Alcotest.fail "connected within"

(* ---------------------------------------------------------- Algorithm 2 *)

let test_alg2_on_62 () =
  let g = Datamodel.Figures.fig3b.Datamodel.Figures.graph in
  let u = Bigraph.ugraph g in
  let p = Iset.of_list [ 0; 2 ] in
  match (Algorithm2.solve u ~p, Dreyfus_wagner.optimum_nodes u ~terminals:p) with
  | Some t, Some opt ->
    check "tree verifies" true (Tree.verify u ~terminals:p t);
    check_int "Theorem 5: elimination is exact here" opt (Tree.node_count t)
  | _ -> Alcotest.fail "solvable instance"

let test_alg2_custom_order () =
  let u = Ugraph.of_edges ~n:5 [ (0, 1); (1, 2); (2, 3); (3, 4); (0, 4) ] in
  let p = Iset.of_list [ 0; 2 ] in
  match Algorithm2.solve ~order:[ 1; 3; 4 ] u ~p with
  | Some t ->
    check "suboptimal on C5 with adversarial order (not (6,2))" true
      (Tree.node_count t > 3)
  | None -> Alcotest.fail "connected"

(* ---------------------------------------------------------- Algorithm 1 *)

let test_alg1_fig2 () =
  let g = Datamodel.Figures.fig2.Datamodel.Figures.graph in
  (* P = {A, C} (left 0 and 2). *)
  let p = Iset.of_list [ 0; 2 ] in
  match Algorithm1.solve g ~p with
  | Ok r ->
    check "tree verifies" true
      (Tree.verify (Bigraph.ugraph g) ~terminals:p r.Algorithm1.tree);
    (match Brute.v2_minimum g ~p with
    | Some (_, best) -> check_int "V2 count minimal" best r.Algorithm1.v2_count
    | None -> Alcotest.fail "oracle failed")
  | Error _ -> Alcotest.fail "fig2 is alpha-acyclic on H1"

let test_alg1_rejects_cyclic () =
  (* C8 as bipartite: H1 is a 4-cycle, not alpha-acyclic. *)
  let g = Bigraph.of_edges ~nl:4 ~nr:4
      [ (0, 0); (1, 0); (1, 1); (2, 1); (2, 2); (3, 2); (3, 3); (0, 3) ]
  in
  match Algorithm1.solve g ~p:(Iset.of_list [ 0; 2 ]) with
  | Error Algorithm1.Not_alpha_acyclic -> check "rejected" true true
  | Ok _ | Error _ -> Alcotest.fail "C8 must be rejected"

let test_alg1_disconnected () =
  let g = Bigraph.of_edges ~nl:2 ~nr:2 [ (0, 0); (1, 1) ] in
  match Algorithm1.solve g ~p:(Iset.of_list [ 0; 1 ]) with
  | Error Algorithm1.Disconnected_terminals -> check "disconnected" true true
  | Ok _ | Error _ -> Alcotest.fail "must report disconnection"

let test_alg1_wrt_v1 () =
  let g = Datamodel.Figures.fig2.Datamodel.Figures.graph in
  let p = Iset.of_list [ 0; 2 ] in
  (* H2 of fig2 is cyclic, so the flipped run must be rejected. *)
  match Algorithm1.solve_wrt_v1 g ~p with
  | Error Algorithm1.Not_alpha_acyclic -> check "flip rejected" true true
  | Ok _ | Error _ -> Alcotest.fail "fig2 H2 is cyclic"

(* ----------------------------------------------------------- MST approx *)

let test_mst_approx () =
  let g = Ugraph.of_edges ~n:6 [ (0, 1); (1, 2); (2, 3); (1, 4); (4, 5) ] in
  let terminals = Iset.of_list [ 0; 3; 5 ] in
  match (Mst_approx.solve g ~terminals, Dreyfus_wagner.optimum_nodes g ~terminals) with
  | Some t, Some opt ->
    check "verifies" true (Tree.verify g ~terminals t);
    check "within factor 2 on edges" true
      (Tree.node_count t - 1 <= 2 * (opt - 1))
  | _ -> Alcotest.fail "solvable"

(* ------------------------------------------------------ Forest solver *)

let test_forest_solver () =
  let t = Ugraph.of_edges ~n:7 [ (0, 1); (1, 2); (1, 3); (3, 4); (3, 5); (5, 6) ] in
  (match Forest_steiner.solve t ~terminals:(Iset.of_list [ 0; 4; 6 ]) with
  | Some tree ->
    check "verifies" true (Tree.verify t ~terminals:(Iset.of_list [ 0; 4; 6 ]) tree);
    check_int "unique minimal connection" 6 (Tree.node_count tree);
    check "leaf 2 pruned" false (Iset.mem 2 tree.Tree.nodes)
  | None -> Alcotest.fail "tree instance");
  check "cyclic component rejected" true
    (Forest_steiner.solve (Workloads.Gen_graph.cycle 4)
       ~terminals:(Iset.of_list [ 0; 2 ])
    = None)

let forest_qcheck =
  QCheck2.Test.make ~count:150 ~name:"forest solver = exact DP on random trees"
    QCheck2.Gen.(tup2 (int_range 2 12) (int_range 0 5000))
    (fun (n, seed) ->
      let rng = rng_of seed in
      let t = Workloads.Gen_graph.random_tree rng ~n in
      let terminals =
        Iset.of_list (Workloads.Rng.sample rng (min 3 n) (List.init n Fun.id))
      in
      match
        (Forest_steiner.solve t ~terminals, Dreyfus_wagner.optimum_nodes t ~terminals)
      with
      | Some tree, Some opt -> Tree.node_count tree = opt
      | None, None -> true
      | _ -> false)

(* -------------------------------------------------------- Local search *)

let test_local_search () =
  let rng = rng_of 31 in
  for seed = 0 to 14 do
    let g =
      Bigraph.ugraph (Workloads.Gen_bipartite.gnp rng ~nl:6 ~nr:6 ~p:0.35)
    in
    let terminals =
      Iset.of_list (Workloads.Rng.sample rng 3 (Iset.elements (Ugraph.nodes g)))
    in
    match
      ( Local_search.solve ~seed g ~terminals,
        Mst_approx.solve g ~terminals,
        Dreyfus_wagner.optimum_nodes g ~terminals )
    with
    | Some ls, Some approx, Some opt ->
      check "valid tree" true (Tree.verify g ~terminals ls);
      check "never worse than the MST start" true
        (Tree.node_count ls <= Tree.node_count approx);
      check "never better than the optimum" true (Tree.node_count ls >= opt)
    | None, None, None -> ()
    | _ -> Alcotest.fail "solver disagreement on feasibility"
  done

(* ------------------------------------------------------------- X3C *)

let test_x3c_solver () =
  let planted = Workloads.Gen_x3c.planted (rng_of 5) ~q:4 ~distractors:6 in
  (match X3c.solve planted with
  | Some cover -> check "planted solvable, verified" true (X3c.verify planted cover)
  | None -> Alcotest.fail "planted instance must be solvable");
  let bad = Workloads.Gen_x3c.unsolvable_pair (rng_of 5) ~q:3 ~distractors:4 in
  check "unsolvable instance rejected" true (X3c.solve bad = None);
  check "verify rejects wrong covers" false (X3c.verify planted [ 0; 0; 1 ])

(* ----------------------------------------------------- Theorem 2 bridge *)

let test_theorem2_bridge () =
  (* Solvable iff Steiner fits in the 4q+1 budget, both directions. *)
  List.iter
    (fun seed ->
      let inst = Workloads.Gen_x3c.planted (rng_of seed) ~q:2 ~distractors:2 in
      let red = Reductions.theorem2 inst in
      check "gadget ok" true (Reductions.theorem2_gadget_ok red);
      check "solvable -> within budget" true
        (X3c.solve inst <> None = Reductions.steiner_within_budget red))
    [ 1; 2; 3 ];
  List.iter
    (fun seed ->
      let inst = Workloads.Gen_x3c.unsolvable_pair (rng_of seed) ~q:2 ~distractors:2 in
      let red = Reductions.theorem2 inst in
      check "unsolvable -> over budget" false
        (Reductions.steiner_within_budget red))
    [ 4; 5 ]

(* ------------------------------------------------------- Good orderings *)

let test_good_ordering_on_62 () =
  (* Corollary 5: on (6,2)-chordal graphs every ordering is good. *)
  let g = Datamodel.Figures.fig3b.Datamodel.Figures.graph in
  let u = Bigraph.ugraph g in
  let rng = rng_of 7 in
  for _ = 1 to 10 do
    let order = Workloads.Rng.shuffle rng (Iset.elements (Ugraph.nodes u)) in
    check "every ordering good (fig3b)" true
      (Good_ordering.is_good ~max_terminals:3 u ~order)
  done

let test_find_bad_set () =
  let l = Datamodel.Figures.fig11 in
  let u = Bigraph.ugraph l.Datamodel.Figures.graph in
  let idx n =
    match Datamodel.Figures.index_of_name l n with
    | Some v -> v
    | None -> assert false
  in
  (* An ordering starting with A: find_bad_set must discover a witness
     terminal set on its own. *)
  let order = [ idx "A" ] in
  match Good_ordering.find_bad_set ~max_terminals:4 u ~order with
  | Some p -> check "witness found and confirmed" false (Good_ordering.is_good_for u ~order ~p)
  | None -> Alcotest.fail "Theorem 6 guarantees a bad set"

(* ----------------------------------------------------------- Weighted *)

let test_weighted_basics () =
  (* Two routes between 0 and 1: via cheap node 2 or expensive node 3. *)
  let g = Ugraph.of_edges ~n:4 [ (0, 2); (2, 1); (0, 3); (3, 1) ] in
  let weight = function 3 -> 10 | _ -> 1 in
  match Weighted.solve g ~weight ~terminals:(Iset.of_list [ 0; 1 ]) with
  | Some (t, cost) ->
    check_int "routes through the cheap node" 3 cost;
    check "avoids node 3" false (Iset.mem 3 t.Tree.nodes);
    check "tree verifies" true
      (Tree.verify g ~terminals:(Iset.of_list [ 0; 1 ]) t)
  | None -> Alcotest.fail "connected"

let test_weighted_heavy_detour () =
  (* Heavier direct middle vs two light hops. *)
  let g = Ugraph.of_edges ~n:5 [ (0, 2); (2, 1); (0, 3); (3, 4); (4, 1) ] in
  let weight = function 2 -> 5 | _ -> 1 in
  match Weighted.solve g ~weight ~terminals:(Iset.of_list [ 0; 1 ]) with
  | Some (t, cost) ->
    check_int "takes the two light hops" 4 cost;
    check "uses 3 and 4" true (Iset.mem 3 t.Tree.nodes && Iset.mem 4 t.Tree.nodes)
  | None -> Alcotest.fail "connected"

let test_weighted_negative_rejected () =
  let g = Ugraph.of_edges ~n:2 [ (0, 1) ] in
  check "negative weight rejected" true
    (try
       ignore
         (Weighted.solve g ~weight:(fun _ -> -1) ~terminals:(Iset.singleton 0));
       false
     with Invalid_argument _ -> true)

(* -------------------------------------------------------------- Kbest *)

let test_kbest_fig1_detour () =
  (* The Fig. 1 shape in miniature: terminals adjacent directly AND via
     a middle node; k-best must surface both navigations in order. *)
  let g = Ugraph.of_edges ~n:3 [ (0, 1); (0, 2); (2, 1) ] in
  let trees = Kbest.enumerate ~max_trees:5 g ~terminals:(Iset.of_list [ 0; 1 ]) in
  check_int "two connections" 2 (List.length trees);
  (match trees with
  | [ a; b ] ->
    check_int "direct edge first" 2 (Tree.node_count a);
    check_int "detour second" 3 (Tree.node_count b);
    check "detour goes through 2" true (Iset.mem 2 (List.nth trees 1).Tree.nodes)
  | _ -> Alcotest.fail "expected exactly two");
  check "sizes nondecreasing" true
    (let sizes = List.map Tree.node_count trees in
     List.sort compare sizes = sizes)

let test_kbest_properties () =
  let rng = rng_of 77 in
  for _ = 1 to 15 do
    let g =
      Bigraph.ugraph (Workloads.Gen_bipartite.gnp rng ~nl:5 ~nr:5 ~p:0.4)
    in
    let terminals =
      Iset.of_list (Workloads.Rng.sample rng 3 (Iset.elements (Ugraph.nodes g)))
    in
    let trees = Kbest.enumerate ~max_trees:6 g ~terminals in
    (match (trees, Dreyfus_wagner.optimum_nodes g ~terminals) with
    | [], None -> ()
    | first :: _, Some opt ->
      check_int "first solution is the optimum" opt (Tree.node_count first)
    | [], Some _ -> Alcotest.fail "missed a solution"
    | _ :: _, None -> Alcotest.fail "solution on disconnected terminals");
    List.iter
      (fun t -> check "every tree verifies" true (Tree.verify g ~terminals t))
      trees;
    let keys =
      List.map (fun t -> List.sort compare t.Tree.edges) trees
    in
    check "edge sets pairwise distinct" true
      (List.length (List.sort_uniq compare keys) = List.length keys);
    let sizes = List.map Tree.node_count trees in
    check "sizes nondecreasing" true (List.sort compare sizes = sizes)
  done

let test_kbest_max_extra () =
  let g = Ugraph.of_edges ~n:4 [ (0, 1); (0, 2); (2, 1); (0, 3); (3, 1) ] in
  let trees =
    Kbest.enumerate ~max_trees:10 ~max_extra:0 g
      ~terminals:(Iset.of_list [ 0; 1 ])
  in
  check "only optimum-size trees" true
    (List.for_all (fun t -> Tree.node_count t = 2) trees)

let test_spanning_with_leaves_in () =
  let g = Ugraph.of_edges ~n:3 [ (0, 1); (0, 2); (2, 1) ] in
  (match
     Tree.spanning_with_leaves_in g ~nodes:(Iset.of_list [ 0; 1; 2 ])
       ~terminals:(Iset.of_list [ 0; 1 ])
   with
  | Some t ->
    check "2 is internal" true
      (List.length (List.filter (fun (a, b) -> a = 2 || b = 2) t.Tree.edges) = 2)
  | None -> Alcotest.fail "a through-2 tree exists");
  let path = Ugraph.of_edges ~n:3 [ (0, 2); (2, 1) ] in
  check "no tree when middle must dangle" true
    (Tree.spanning_with_leaves_in path ~nodes:(Iset.of_list [ 0; 1; 2 ])
       ~terminals:(Iset.of_list [ 0; 2 ])
    = None)

(* ---------------------------------------------------------- Edge cases *)

let test_edge_cases () =
  let g = Ugraph.of_edges ~n:4 [ (0, 1); (1, 2); (2, 3) ] in
  (* Empty terminal set: every solver returns a trivial answer. *)
  (match Dreyfus_wagner.solve g ~terminals:Iset.empty with
  | Some t -> check_int "DW empty" 0 (Tree.node_count t)
  | None -> Alcotest.fail "DW empty");
  (match Mst_approx.solve g ~terminals:Iset.empty with
  | Some t -> check_int "MST empty" 0 (Tree.node_count t)
  | None -> Alcotest.fail "MST empty");
  (* Whole graph as terminals: spanning tree. *)
  (match Dreyfus_wagner.solve g ~terminals:(Iset.range 4) with
  | Some t -> check_int "all-terminal = spanning tree" 4 (Tree.node_count t)
  | None -> Alcotest.fail "all-terminal");
  (* Kbest with max_trees 1 returns exactly the optimum. *)
  (match Kbest.enumerate ~max_trees:1 g ~terminals:(Iset.of_list [ 0; 3 ]) with
  | [ t ] -> check_int "kbest 1" 4 (Tree.node_count t)
  | _ -> Alcotest.fail "kbest 1");
  check "kbest on disconnected terminals is empty" true
    (Kbest.enumerate (Ugraph.create 2) ~terminals:(Iset.of_list [ 0; 1 ]) = []);
  (* Algorithm 2 with p = all nodes keeps everything. *)
  match Algorithm2.solve g ~p:(Iset.range 4) with
  | Some t -> check_int "alg2 all-terminals" 4 (Tree.node_count t)
  | None -> Alcotest.fail "alg2 all-terminals"

let test_weighted_zero_costs () =
  (* Zero-weight auxiliaries are free: the solver may take long detours
     without penalty, but cost must equal terminal weights only. *)
  let g = Ugraph.of_edges ~n:4 [ (0, 2); (2, 3); (3, 1) ] in
  let weight = function 0 | 1 -> 3 | _ -> 0 in
  match Weighted.solve g ~weight ~terminals:(Iset.of_list [ 0; 1 ]) with
  | Some (_, cost) -> check_int "only terminals cost" 6 cost
  | None -> Alcotest.fail "connected"

(* ------------------------------------------------------- properties *)

let qcheck_cases' = [ forest_qcheck ]

(* Regressions for the former assert-false panics: degenerate terminal
   sets must degrade to trivial trees or [None], never crash. *)
let test_degenerate_terminals () =
  let g = Ugraph.of_edges ~n:6 [ (0, 1); (1, 2); (2, 3); (1, 4) ] in
  (* Node 5 is isolated. *)
  (match Mst_approx.solve g ~terminals:Iset.empty with
  | Some t -> Alcotest.(check int) "empty set: empty tree" 0 (Tree.node_count t)
  | None -> Alcotest.fail "empty terminal set is trivially solvable");
  (match Mst_approx.solve g ~terminals:(Iset.singleton 5) with
  | Some t -> Alcotest.(check int) "single isolated terminal" 1 (Tree.node_count t)
  | None -> Alcotest.fail "single terminal is trivially solvable");
  (match Mst_approx.solve g ~terminals:(Iset.of_list [ 0; 5 ]) with
  | None -> ()
  | Some _ -> Alcotest.fail "isolated terminal is disconnected");
  (match Dreyfus_wagner.solve g ~terminals:(Iset.singleton 5) with
  | Some t -> Alcotest.(check int) "DW single terminal" 1 (Tree.node_count t)
  | None -> Alcotest.fail "single terminal is trivially solvable");
  (match Dreyfus_wagner.solve g ~terminals:(Iset.of_list [ 0; 5 ]) with
  | None -> ()
  | Some _ -> Alcotest.fail "DW isolated terminal is disconnected");
  (* Isolated terminal inside a restricted universe. *)
  match
    Dreyfus_wagner.solve ~within:(Iset.of_list [ 0; 1; 5 ]) g
      ~terminals:(Iset.of_list [ 0; 5 ])
  with
  | None -> ()
  | Some _ -> Alcotest.fail "DW within: disconnected"

let qcheck_cases =
  qcheck_cases'
  @
  let small_graph_gen =
    QCheck2.Gen.(
      tup2 (int_range 4 9) (int_range 0 100000)
      |> map (fun (n, seed) ->
             let rng = rng_of seed in
             Workloads.Gen_graph.random_connected rng ~n ~extra_edges:3))
  in
  let terminals_gen g rng_seed k =
    let rng = rng_of rng_seed in
    Iset.of_list (Workloads.Rng.sample rng k (Iset.elements (Ugraph.nodes g)))
  in
  [
    QCheck2.Test.make ~count:120
      ~name:"weighted solver with unit weights = unweighted node count"
      QCheck2.Gen.(tup2 small_graph_gen (int_range 0 1000))
      (fun (g, s) ->
        let terminals = terminals_gen g s 3 in
        let unit = Weighted.solve g ~weight:(fun _ -> 1) ~terminals in
        match (unit, Dreyfus_wagner.optimum_nodes g ~terminals) with
        | Some (_, cost), Some opt -> cost = opt
        | None, None -> true
        | _ -> false);
    QCheck2.Test.make ~count:120
      ~name:"weighted solver = weighted brute oracle"
      QCheck2.Gen.(tup3 small_graph_gen (int_range 0 1000) (int_range 1 97))
      (fun (g, s, wseed) ->
        let terminals = terminals_gen g s 3 in
        let weight v = 1 + ((v * wseed) mod 7) in
        match (Weighted.solve g ~weight ~terminals, Weighted.brute g ~weight ~terminals) with
        | Some (t, cost), Some best ->
          cost = best && Tree.verify g ~terminals t
        | None, None -> true
        | _ -> false);
    QCheck2.Test.make ~count:150 ~name:"DW optimum = brute optimum"
      QCheck2.Gen.(tup2 small_graph_gen (int_range 0 1000))
      (fun (g, s) ->
        let terminals = terminals_gen g s 3 in
        let dw = Dreyfus_wagner.optimum_nodes g ~terminals in
        let brute = Option.map Tree.node_count (Brute.steiner g ~terminals) in
        dw = brute);
    QCheck2.Test.make ~count:150 ~name:"DW tree verifies"
      QCheck2.Gen.(tup2 small_graph_gen (int_range 0 1000))
      (fun (g, s) ->
        let terminals = terminals_gen g s 4 in
        match Dreyfus_wagner.solve g ~terminals with
        | None -> true
        | Some t -> Tree.verify g ~terminals t);
    QCheck2.Test.make ~count:120
      ~name:"Theorem 5: Algorithm 2 = exact optimum on (6,2)-chordal"
      QCheck2.Gen.(tup2 (int_range 0 4000) (int_range 2 4))
      (fun (seed, k) ->
        let rng = rng_of seed in
        let g = Workloads.Gen_bipartite.chordal_62 rng ~n_right:6 ~max_size:3 in
        let u = Bigraph.ugraph g in
        let p = Workloads.Gen_bipartite.random_terminals rng g ~k in
        QCheck2.assume (Iset.cardinal p >= 2);
        match (Algorithm2.solve u ~p, Dreyfus_wagner.optimum_nodes u ~terminals:p) with
        | Some t, Some opt -> Tree.node_count t = opt
        | None, None -> true
        | _ -> false);
    QCheck2.Test.make ~count:100
      ~name:"Corollary 5: random orderings all exact on (6,2)-chordal"
      QCheck2.Gen.(tup2 (int_range 0 3000) (int_range 0 1000))
      (fun (seed, oseed) ->
        let rng = rng_of seed in
        let g = Workloads.Gen_bipartite.chordal_62 rng ~n_right:5 ~max_size:3 in
        let u = Bigraph.ugraph g in
        let p = Workloads.Gen_bipartite.random_terminals rng g ~k:3 in
        QCheck2.assume (Iset.cardinal p >= 2);
        let order =
          Workloads.Rng.shuffle (rng_of oseed) (Iset.elements (Ugraph.nodes u))
        in
        match
          (Algorithm2.solve ~order u ~p, Dreyfus_wagner.optimum_nodes u ~terminals:p)
        with
        | Some t, Some opt -> Tree.node_count t = opt
        | None, None -> true
        | _ -> false);
    QCheck2.Test.make ~count:120
      ~name:"Theorem 4: Algorithm 1 V2-count = brute V2 minimum"
      QCheck2.Gen.(tup2 (int_range 0 4000) (int_range 2 4))
      (fun (seed, k) ->
        let rng = rng_of seed in
        let g = Workloads.Gen_bipartite.alpha_bipartite rng ~n_right:5 ~max_size:3 in
        let p = Workloads.Gen_bipartite.random_terminals rng g ~k in
        QCheck2.assume (Iset.cardinal p >= 2);
        match (Algorithm1.solve g ~p, Brute.v2_minimum g ~p) with
        | Ok r, Some (_, best) ->
          r.Algorithm1.v2_count = best
          && Tree.verify (Bigraph.ugraph g) ~terminals:p r.Algorithm1.tree
        | Error Algorithm1.Disconnected_terminals, _ -> true
        | _ -> false);
    QCheck2.Test.make ~count:120
      ~name:"Lemma 4/5: on (6,2)-chordal, nonredundant covers are minimum"
      QCheck2.Gen.(int_range 0 3000)
      (fun seed ->
        let rng = rng_of seed in
        let g = Workloads.Gen_bipartite.chordal_62 rng ~n_right:4 ~max_size:3 in
        let u = Bigraph.ugraph g in
        QCheck2.assume (Ugraph.n u <= 11);
        let p = Workloads.Gen_bipartite.random_terminals rng g ~k:2 in
        QCheck2.assume (Iset.cardinal p = 2);
        match Graphs.Traverse.component_containing u p with
        | None -> true
        | Some comp ->
          let covers = Cover.nonredundant_covers_brute u ~within:comp ~p in
          let sizes = List.map Iset.cardinal covers in
          (match sizes with
          | [] -> true
          | s :: rest -> List.for_all (fun x -> x = s) rest));
    QCheck2.Test.make ~count:100
      ~name:"MST approximation within factor 2 and valid"
      QCheck2.Gen.(tup2 small_graph_gen (int_range 0 1000))
      (fun (g, s) ->
        let terminals = terminals_gen g s 3 in
        match
          (Mst_approx.solve g ~terminals, Dreyfus_wagner.optimum_nodes g ~terminals)
        with
        | Some t, Some opt ->
          Tree.verify g ~terminals t
          && Tree.node_count t - 1 <= max 1 (2 * (opt - 1))
        | None, None -> true
        | _ -> false);
    QCheck2.Test.make ~count:40
      ~name:"Fig 9 reduction: CSPC = pseudo-Steiner V2 on random chordal"
      QCheck2.Gen.(int_range 0 2000)
      (fun seed ->
        let rng = rng_of seed in
        let g = Workloads.Gen_graph.random_chordal rng ~n:6 ~max_clique:3 in
        let terminals =
          Iset.of_list (Workloads.Rng.sample rng 2 (Iset.elements (Ugraph.nodes g)))
        in
        QCheck2.assume (Graphs.Traverse.connects g terminals);
        Reductions.fig9_equivalence_holds g ~terminals);
    QCheck2.Test.make ~count:60
      ~name:"Theorem 2 both directions on random q=2 instances"
      QCheck2.Gen.(int_range 0 500)
      (fun seed ->
        let rng = rng_of seed in
        let solvable = Workloads.Rng.bool rng 0.5 in
        let inst =
          if solvable then Workloads.Gen_x3c.planted rng ~q:2 ~distractors:2
          else Workloads.Gen_x3c.unsolvable_pair rng ~q:2 ~distractors:3
        in
        let red = Reductions.theorem2 inst in
        X3c.solve inst <> None = Reductions.steiner_within_budget red);
    QCheck2.Test.make ~count:300
      ~name:"solvers never raise on arbitrary terminal sets"
      QCheck2.Gen.(tup3 (int_range 2 10) (int_range 0 100000) (int_range 0 4))
      (fun (n, seed, k) ->
        (* Possibly-disconnected graph with isolated nodes: drop a
           random prefix of edges from a random connected graph. *)
        let rng = rng_of seed in
        let full = Workloads.Gen_graph.random_connected rng ~n ~extra_edges:1 in
        let keep = Workloads.Rng.int rng (List.length (Ugraph.edges full) + 1) in
        let g =
          Ugraph.of_edges ~n (List.filteri (fun i _ -> i < keep) (Ugraph.edges full))
        in
        let terminals =
          Iset.of_list (Workloads.Rng.sample rng k (Iset.elements (Ugraph.nodes g)))
        in
        let no_raise f =
          match f () with _ -> true | exception _ -> false
        in
        no_raise (fun () -> Mst_approx.solve g ~terminals)
        && no_raise (fun () -> Dreyfus_wagner.solve g ~terminals)
        && no_raise (fun () -> Algorithm2.solve g ~p:terminals));
  ]

let () =
  Alcotest.run "steiner"
    [
      ( "cover",
        [
          Alcotest.test_case "predicates" `Quick test_cover_predicates;
          Alcotest.test_case "eliminate redundant" `Quick test_eliminate_redundant;
          Alcotest.test_case "paths" `Quick test_paths;
        ] );
      ( "dreyfus-wagner",
        [
          Alcotest.test_case "basics" `Quick test_dw_basics;
          Alcotest.test_case "within" `Quick test_dw_within;
        ] );
      ( "algorithm2",
        [
          Alcotest.test_case "exact on (6,2)" `Quick test_alg2_on_62;
          Alcotest.test_case "custom order" `Quick test_alg2_custom_order;
        ] );
      ( "algorithm1",
        [
          Alcotest.test_case "fig2" `Quick test_alg1_fig2;
          Alcotest.test_case "rejects cyclic" `Quick test_alg1_rejects_cyclic;
          Alcotest.test_case "disconnected" `Quick test_alg1_disconnected;
          Alcotest.test_case "wrt V1" `Quick test_alg1_wrt_v1;
        ] );
      ( "mst-approx",
        [
          Alcotest.test_case "bounds" `Quick test_mst_approx;
          Alcotest.test_case "degenerate terminals" `Quick
            test_degenerate_terminals;
        ] );
      ("x3c", [ Alcotest.test_case "solver" `Quick test_x3c_solver ]);
      ( "forest",
        [ Alcotest.test_case "unique connection" `Quick test_forest_solver ] );
      ( "edge-cases",
        [
          Alcotest.test_case "solvers" `Quick test_edge_cases;
          Alcotest.test_case "weighted zero costs" `Quick
            test_weighted_zero_costs;
        ] );
      ( "local-search",
        [ Alcotest.test_case "bounds and validity" `Quick test_local_search ] );
      ( "reductions",
        [ Alcotest.test_case "theorem 2 bridge" `Quick test_theorem2_bridge ] );
      ( "weighted",
        [
          Alcotest.test_case "basics" `Quick test_weighted_basics;
          Alcotest.test_case "heavy detour" `Quick test_weighted_heavy_detour;
          Alcotest.test_case "negative rejected" `Quick
            test_weighted_negative_rejected;
        ] );
      ( "kbest",
        [
          Alcotest.test_case "fig1 detour" `Quick test_kbest_fig1_detour;
          Alcotest.test_case "properties" `Quick test_kbest_properties;
          Alcotest.test_case "max_extra" `Quick test_kbest_max_extra;
          Alcotest.test_case "spanning with terminal leaves" `Quick
            test_spanning_with_leaves_in;
        ] );
      ( "good-orderings",
        [
          Alcotest.test_case "corollary 5 on fig3b" `Quick test_good_ordering_on_62;
          Alcotest.test_case "find bad set on fig11" `Quick test_find_bad_set;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_cases);
    ]
