(* trace-smoke driver: run the CLI with --trace/--metrics on a fixture
   instance and validate the shape of the emitted event stream.  Usage:
     trace_check CLI FIXTURE TRACE_OUT METRICS_OUT
   Exits nonzero with a diagnostic on any violation, failing the dune
   rule (and hence runtest). *)

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("trace-smoke: " ^ s); exit 1) fmt

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let () =
  let cli, fixture, trace_out, metrics_out =
    match Sys.argv with
    | [| _; a; b; c; d |] -> (a, b, c, d)
    | _ -> fail "usage: trace_check CLI FIXTURE TRACE_OUT METRICS_OUT"
  in
  let cmd =
    Printf.sprintf "%s solve %s -t A,C --trace %s --metrics %s > /dev/null"
      (Filename.quote cli) (Filename.quote fixture) (Filename.quote trace_out)
      (Filename.quote metrics_out)
  in
  let code = Sys.command cmd in
  if code <> 0 then fail "CLI exited %d on the fixture" code;
  let trace = read_file trace_out in
  (match Observe.Export.validate_ndjson_string trace with
  | Error e -> fail "invalid trace stream: %s" e
  | Ok 0 -> fail "trace stream is empty"
  | Ok _ -> ());
  (* Shape: a root solve span, a classification span, at least one
     ladder rung, and a ladder outcome event. *)
  List.iter
    (fun needle ->
      if not (contains trace needle) then
        fail "trace stream lacks %s" needle)
    [
      "\"name\":\"solve\"";
      "\"name\":\"classify\"";
      "\"name\":\"rung:";
      "\"name\":\"ladder.";
    ];
  match Observe.Export.validate_metrics_string (read_file metrics_out) with
  | Error e -> fail "invalid metrics snapshot: %s" e
  | Ok _ -> ()
