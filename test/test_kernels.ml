(* Differential coverage for the flat CSR/bitset kernel layer: every
   port must agree exactly with the original set-based implementation
   it replaced, on random workload instances. Bitset itself is tested
   against Iset as the model. *)

open Graphs
open Steiner

let seed_gen = QCheck2.Gen.int_range 0 1_000_000

let graph_of_seed ?(max_n = 12) seed =
  let rng = Workloads.Rng.make ~seed in
  let n = 1 + Workloads.Rng.int rng max_n in
  Workloads.Gen_graph.gnp rng ~n ~p:0.35

(* ------------------------------------------------------------ Bitset *)

(* Random add/remove trajectory, replayed against Iset: after every
   operation the two must describe the same set. *)
let prop_bitset_model =
  QCheck2.Test.make ~count:500 ~name:"Bitset add/remove mirrors Iset"
    seed_gen
    (fun seed ->
      let rng = Workloads.Rng.make ~seed in
      let len = 1 + Workloads.Rng.int rng 200 in
      let bs = Bitset.create len in
      let model = ref Iset.empty in
      let steps = Workloads.Rng.int rng 60 in
      let ok = ref true in
      for _ = 1 to steps do
        let i = Workloads.Rng.int rng len in
        if Workloads.Rng.bool rng 0.6 then begin
          Bitset.add bs i;
          model := Iset.add i !model
        end
        else begin
          Bitset.remove bs i;
          model := Iset.remove i !model
        end;
        ok :=
          !ok
          && Bitset.card bs = Iset.cardinal !model
          && Bitset.mem bs i = Iset.mem i !model
      done;
      !ok
      && Iset.equal (Bitset.to_iset bs) !model
      && Bitset.elements bs = Iset.elements !model
      && Bitset.fold (fun i acc -> acc + i) bs 0
         = Iset.fold (fun i acc -> acc + i) !model 0
      && Bitset.min_elt_opt bs = Iset.min_elt_opt !model
      && Bitset.is_empty bs = Iset.is_empty !model)

let random_subset rng len =
  let s = ref Iset.empty in
  for i = 0 to len - 1 do
    if Workloads.Rng.bool rng 0.4 then s := Iset.add i !s
  done;
  !s

let prop_bitset_binops =
  QCheck2.Test.make ~count:500
    ~name:"Bitset inter/union/diff/inter_card/subset mirror Iset" seed_gen
    (fun seed ->
      let rng = Workloads.Rng.make ~seed in
      let len = 1 + Workloads.Rng.int rng 150 in
      let a = random_subset rng len and b = random_subset rng len in
      let ba = Bitset.of_iset ~len a and bb = Bitset.of_iset ~len b in
      let agree op bop =
        Iset.equal (op a b) (Bitset.to_iset (bop ba bb))
      in
      let into_agree op bop_into =
        let scratch = Bitset.copy ba in
        bop_into scratch bb;
        Iset.equal (op a b) (Bitset.to_iset scratch)
      in
      agree Iset.inter Bitset.inter
      && agree Iset.union Bitset.union
      && agree Iset.diff Bitset.diff
      && into_agree Iset.inter Bitset.inter_into
      && into_agree Iset.union Bitset.union_into
      && into_agree Iset.diff Bitset.diff_into
      && Bitset.inter_card ba bb = Iset.cardinal (Iset.inter a b)
      && Bitset.subset ba bb = Iset.subset a b
      && Bitset.disjoint ba bb = Iset.is_empty (Iset.inter a b)
      && Bitset.equal ba bb = Iset.equal a b)

(* --------------------------------------------------------------- Csr *)

let prop_csr_construction =
  QCheck2.Test.make ~count:500
    ~name:"Csr: rows sorted, degree sum = 2m, mem_edge symmetric" seed_gen
    (fun seed ->
      let g = graph_of_seed ~max_n:20 seed in
      let csr = Csr.of_ugraph g in
      let n = Ugraph.n g in
      let sorted_rows = ref true and degree_sum = ref 0 in
      for u = 0 to n - 1 do
        let row = Csr.sorted_neighbors csr u in
        degree_sum := !degree_sum + Array.length row;
        for k = 1 to Array.length row - 1 do
          if row.(k - 1) >= row.(k) then sorted_rows := false
        done;
        if Array.length row <> Csr.degree csr u then sorted_rows := false
      done;
      let mem_agrees = ref true in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          if
            Csr.mem_edge csr u v <> Csr.mem_edge csr v u
            || (u <> v && Csr.mem_edge csr u v <> Ugraph.mem_edge g u v)
          then mem_agrees := false
        done
      done;
      !sorted_rows
      && !degree_sum = 2 * Ugraph.m g
      && Csr.n csr = n
      && Csr.m csr = Ugraph.m g
      && !mem_agrees
      && Ugraph.equal (Csr.to_ugraph csr) g)

(* ---------------------------------------------------- LexBFS and MCS *)

(* The kernels use the same greedy rule and tie-breaking as the
   set-based originals, so the orders must be identical — also under a
   [within] restriction and an explicit start node. *)
let restriction_of_seed g seed =
  let rng = Workloads.Rng.make ~seed:(seed + 7) in
  let within =
    if Workloads.Rng.bool rng 0.5 then None
    else Some (random_subset rng (Ugraph.n g))
  in
  let start =
    if Workloads.Rng.bool rng 0.5 then None
    else Some (Workloads.Rng.int rng (Ugraph.n g))
  in
  (within, start)

let prop_lexbfs_equal =
  QCheck2.Test.make ~count:500 ~name:"CSR LexBFS = set-based LexBFS"
    seed_gen
    (fun seed ->
      let g = graph_of_seed ~max_n:20 seed in
      let within, start = restriction_of_seed g seed in
      Lexbfs.lexbfs_order ?within ?start g
      = Lexbfs.lexbfs_order_sets ?within ?start g)

let prop_mcs_equal =
  QCheck2.Test.make ~count:500 ~name:"CSR MCS = set-based MCS" seed_gen
    (fun seed ->
      let g = graph_of_seed ~max_n:20 seed in
      let within, start = restriction_of_seed g seed in
      Lexbfs.mcs_order ?within ?start g
      = Lexbfs.mcs_order_sets ?within ?start g)

(* --------------------------------------------------------- Chordality *)

let prop_chordal_equal =
  QCheck2.Test.make ~count:500
    ~name:"kernel is_chordal = set-based = brute force" seed_gen
    (fun seed ->
      let g = graph_of_seed ~max_n:10 seed in
      let kernel = Chordal.is_chordal g in
      kernel = Chordal.is_chordal_sets g
      && kernel = Chordal.is_chordal_brute g)

let prop_peo_check_equal =
  QCheck2.Test.make ~count:500
    ~name:"kernel PEO check = set-based on arbitrary orders" seed_gen
    (fun seed ->
      let g = graph_of_seed ~max_n:12 seed in
      let rng = Workloads.Rng.make ~seed:(seed + 13) in
      (* Random permutations are usually not PEOs, so this exercises
         both the accepting and the rejecting paths of the checker. *)
      let order =
        Workloads.Rng.shuffle rng (Iset.elements (Ugraph.nodes g))
      in
      Chordal.is_perfect_elimination_order g order
      = Chordal.is_perfect_elimination_order_sets g order)

(* ------------------------------------------------- Cycle/chord scan *)

let prop_chord_scan_equal =
  QCheck2.Test.make ~count:500
    ~name:"kernel chord-bounded cycle scan = set-based" seed_gen
    (fun seed ->
      let g = graph_of_seed ~max_n:9 seed in
      let rng = Workloads.Rng.make ~seed:(seed + 29) in
      let min_len = 4 + (2 * Workloads.Rng.int rng 2) in
      let max_chords = Workloads.Rng.int rng 3 in
      Cycles.exists_cycle_with_few_chords g ~min_len ~max_chords
      = Cycles.exists_cycle_with_few_chords_sets g ~min_len ~max_chords)

(* --------------------------------------------------- Hyperedge MCS *)

let prop_edge_mcs_equal =
  QCheck2.Test.make ~count:500
    ~name:"bitset hyperedge MCS = set-based (order and RIP verdict)"
    seed_gen
    (fun seed ->
      let rng = Workloads.Rng.make ~seed in
      let h =
        Workloads.Gen_hyper.random rng
          ~n_nodes:(2 + Workloads.Rng.int rng 8)
          ~n_edges:(1 + Workloads.Rng.int rng 8)
          ~max_size:5
      in
      let start =
        if Workloads.Rng.bool rng 0.5 then None
        else Some (Workloads.Rng.int rng (Hypergraphs.Hypergraph.n_edges h))
      in
      Hypergraphs.Mcs.edge_order ?start h
      = Hypergraphs.Mcs.edge_order_sets ?start h)

(* --------------------------------------------------------- Algorithm 1 *)

let prop_algorithm1_equal =
  QCheck2.Test.make ~count:500
    ~name:"Algorithm 1 kernel elimination = set-based (full result)"
    seed_gen
    (fun seed ->
      let rng = Workloads.Rng.make ~seed in
      (* Alternate between in-class instances (success path) and
         arbitrary bipartite graphs (error paths). *)
      let g =
        if seed mod 2 = 0 then
          Workloads.Gen_bipartite.alpha_bipartite rng
            ~n_right:(2 + Workloads.Rng.int rng 5)
            ~max_size:4
        else
          Workloads.Gen_bipartite.gnp rng
            ~nl:(2 + Workloads.Rng.int rng 5)
            ~nr:(1 + Workloads.Rng.int rng 5)
            ~p:0.4
      in
      let p =
        Workloads.Gen_bipartite.random_terminals rng g
          ~k:(2 + Workloads.Rng.int rng 3)
      in
      match (Algorithm1.solve g ~p, Algorithm1.solve_sets g ~p) with
      | Error e, Error e' -> e = e'
      | Ok r, Ok r' ->
        Iset.equal r.Algorithm1.tree.Tree.nodes r'.Algorithm1.tree.Tree.nodes
        && r.Algorithm1.tree.Tree.edges = r'.Algorithm1.tree.Tree.edges
        && r.Algorithm1.v2_count = r'.Algorithm1.v2_count
        && r.Algorithm1.elimination_order = r'.Algorithm1.elimination_order
      | Ok _, Error _ | Error _, Ok _ -> false)

let qcheck_cases =
  [
    prop_bitset_model;
    prop_bitset_binops;
    prop_csr_construction;
    prop_lexbfs_equal;
    prop_mcs_equal;
    prop_chordal_equal;
    prop_peo_check_equal;
    prop_chord_scan_equal;
    prop_edge_mcs_equal;
    prop_algorithm1_equal;
  ]

let () =
  Alcotest.run "kernels"
    [ ("differential", List.map QCheck_alcotest.to_alcotest qcheck_cases) ]
