(* Incremental schema evolution: [Compiled.apply_delta] must be
   indistinguishable — profile, component structure, orderings,
   join-tree preps, and query answers — from throwing the plan away
   and recompiling the mutated schema from scratch. Comparisons are
   canonical (Iset.equal, order lists, rendered values), never Marshal
   bytes: equal sets built by different operation orders need not
   share AVL shape. *)

open Graphs
open Bipartite
open Steiner

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let seed_gen = QCheck2.Gen.int_range 0 1_000_000

module Compiled = Minconn.Compiled
module Session = Minconn.Session

(* ------------------------------------------------ canonical equality *)

let prep_equal a b =
  match (a, b) with
  | Ok pa, Ok pb -> Algorithm1.prep_order pa = Algorithm1.prep_order pb
  | Error ea, Error eb -> ea = eb
  | Ok _, Error _ | Error _, Ok _ -> false

let component_equal (a : Compiled.component) (b : Compiled.component) =
  Iset.equal a.Compiled.nodes b.Compiled.nodes
  && a.Compiled.order = b.Compiled.order
  && a.Compiled.cprofile = b.Compiled.cprofile
  && prep_equal a.Compiled.alg1_prep b.Compiled.alg1_prep

let plan_equal (a : Compiled.t) (b : Compiled.t) =
  Bigraph.equal (Compiled.graph a) (Compiled.graph b)
  && Compiled.profile a = Compiled.profile b
  && a.Compiled.comp_id = b.Compiled.comp_id
  && Array.length a.Compiled.components = Array.length b.Compiled.components
  && Array.for_all2 component_equal a.Compiled.components
       b.Compiled.components

let sol_equal (a : Minconn.solution) (b : Minconn.solution) =
  Iset.equal a.Minconn.tree.Tree.nodes b.Minconn.tree.Tree.nodes
  && a.Minconn.tree.Tree.edges = b.Minconn.tree.Tree.edges
  && a.Minconn.method_used = b.Minconn.method_used
  && a.Minconn.optimal = b.Minconn.optimal
  && a.Minconn.profile = b.Minconn.profile
  && a.Minconn.provenance = b.Minconn.provenance

let result_equal a b =
  match (a, b) with
  | Ok sa, Ok sb -> sol_equal sa sb
  | Error ea, Error eb -> ea = eb
  | Ok _, Error _ | Error _, Ok _ -> false

(* Answers on both plans for a handful of random terminal sets,
   including the occasional pathological empty set. *)
let answers_agree rng patched fresh =
  let g = Compiled.graph fresh in
  let sp = Session.create patched and sf = Session.create fresh in
  List.for_all
    (fun p ->
      result_equal (Session.query sp ~p) (Session.query sf ~p)
      &&
      match (Session.query_relations sp ~p, Session.query_relations sf ~p) with
      | Ok a, Ok b ->
        Iset.equal a.Algorithm1.tree.Tree.nodes b.Algorithm1.tree.Tree.nodes
        && a.Algorithm1.v2_count = b.Algorithm1.v2_count
        && a.Algorithm1.elimination_order = b.Algorithm1.elimination_order
      | Error ea, Error eb -> ea = eb
      | Ok _, Error _ | Error _, Ok _ -> false)
    (List.init 4 (fun _ ->
         if Workloads.Rng.bool rng 0.1 then Iset.empty
         else
           Workloads.Gen_bipartite.random_terminals rng g
             ~k:(1 + Workloads.Rng.int rng 3)))

(* --------------------------------------------------- delta generator *)

(* A random, mostly-valid delta against the current graph shape:
   insertions and deletions of edges (sometimes no-ops), appended
   relations, and removals of both the last relation (incremental
   path) and interior relations (full-recompile fallback). *)
let random_op rng g =
  let nl = Bigraph.nl g and nr = Bigraph.nr g in
  let pick_left () = Workloads.Rng.int rng (max 1 nl) in
  let pick_right () = Workloads.Rng.int rng (max 1 nr) in
  if nl = 0 || nr = 0 then
    Minconn.Delta.Add_relation
      (Iset.of_list (List.init (min 2 nl) (fun _ -> pick_left ())))
  else
    match Workloads.Rng.int rng 6 with
    | 0 | 1 -> Minconn.Delta.Add_edge (pick_left (), pick_right ())
    | 2 -> (
      (* bias towards removing a real edge so splits actually happen *)
      match Bigraph.edges g with
      | [] -> Minconn.Delta.Remove_edge (pick_left (), pick_right ())
      | edges ->
        let i, j = List.nth edges (Workloads.Rng.int rng (List.length edges)) in
        Minconn.Delta.Remove_edge (i, j))
    | 3 ->
      Minconn.Delta.Add_relation
        (Iset.of_list
           (List.init (Workloads.Rng.int rng 4) (fun _ -> pick_left ())))
    | 4 -> Minconn.Delta.Remove_relation (nr - 1)
    | _ -> Minconn.Delta.Remove_relation (pick_right ())

let random_ops rng g n =
  let rec go g acc n =
    if n = 0 then List.rev acc
    else
      let op = random_op rng g in
      match Minconn.Delta.apply g op with
      | Ok g' -> go g' (op :: acc) (n - 1)
      | Error _ -> go g acc n
  in
  go g [] n

(* ------------------------------------------------------- properties *)

(* The keystone the whole delta engine rests on: the classification
   profile decomposes exactly over connected components. *)
let prop_combine_is_whole =
  QCheck2.Test.make ~count:150
    ~name:"Classify.combine over components = whole-graph profile" seed_gen
    (fun seed ->
      let rng = Workloads.Rng.make ~seed in
      let nl = 1 + Workloads.Rng.int rng 8
      and nr = 1 + Workloads.Rng.int rng 8 in
      let g = Workloads.Gen_bipartite.gnp rng ~nl ~nr ~p:0.2 in
      let comps = Traverse.components (Bigraph.ugraph g) in
      let profiles =
        Array.of_list
          (List.map
             (fun c -> Classify.profile (fst (Bigraph.induced g c)))
             comps)
      in
      Classify.combine profiles = Classify.profile g)

let differential seed =
  let rng = Workloads.Rng.make ~seed in
  let nl = 2 + Workloads.Rng.int rng 7
  and nr = 2 + Workloads.Rng.int rng 7 in
  let g0 = Workloads.Gen_bipartite.gnp rng ~nl ~nr ~p:0.25 in
  let ops = random_ops rng g0 (1 + Workloads.Rng.int rng 6) in
  let base = Compiled.compile g0 in
  match Compiled.apply_deltas base ops with
  | Error msg -> QCheck2.Test.fail_reportf "apply_deltas failed: %s" msg
  | Ok (patched, stats) -> (
    match Minconn.Delta.apply_all g0 ops with
    | Error msg -> QCheck2.Test.fail_reportf "apply_all failed: %s" msg
    | Ok g' ->
      let fresh = Compiled.compile g' in
      let stats_ok =
        List.for_all
          (fun (s : Compiled.delta_stats) ->
            if s.Compiled.noop then
              s.Compiled.recompiled = [] && not s.Compiled.fallback
            else true)
          stats
      in
      (* every step accounts for all components of its output plan *)
      let accounting_ok =
        match List.rev stats with
        | [] -> true
        | last :: _ ->
          last.Compiled.noop
          || List.length last.Compiled.recompiled + last.Compiled.reused
             = Array.length patched.Compiled.components
      in
      if not (plan_equal patched fresh) then
        QCheck2.Test.fail_reportf "patched plan differs from fresh compile"
      else if not stats_ok then
        QCheck2.Test.fail_reportf "no-op delta reported recompilation"
      else if not accounting_ok then
        QCheck2.Test.fail_reportf "delta stats do not cover the plan"
      else answers_agree rng patched fresh)

let prop_differential_gnp =
  QCheck2.Test.make ~count:250
    ~name:"apply_delta* = recompile-from-scratch (random delta sequences)"
    seed_gen differential

let prop_differential_structured =
  QCheck2.Test.make ~count:150
    ~name:"apply_delta* = recompile-from-scratch ((6,2)-chordal base)"
    seed_gen
    (fun seed ->
      let rng = Workloads.Rng.make ~seed in
      let n_right = 2 + Workloads.Rng.int rng 5 in
      let g0 = Workloads.Gen_bipartite.chordal_62 rng ~n_right ~max_size:4 in
      let ops = random_ops rng g0 (1 + Workloads.Rng.int rng 4) in
      let base = Compiled.compile g0 in
      match (Compiled.apply_deltas base ops, Minconn.Delta.apply_all g0 ops) with
      | Ok (patched, _), Ok g' ->
        let fresh = Compiled.compile g' in
        plan_equal patched fresh && answers_agree rng patched fresh
      | Error msg, _ | _, Error msg ->
        QCheck2.Test.fail_reportf "delta application failed: %s" msg)

(* ------------------------------------------- deterministic edge cases *)

(* fig3b-style path:  A–r0, B–r0, B–r1  (one component).  A–r0 is a
   cut edge: deleting it must split the component in two, and the
   patched plan must match the fresh compile of the smaller schema. *)
let test_cut_edge_split () =
  let g = Bigraph.of_edges ~nl:2 ~nr:2 [ (0, 0); (1, 0); (1, 1) ] in
  let base = Compiled.compile g in
  check_int "one component before the cut" 1 (Compiled.n_components base);
  match Compiled.apply_delta base (Minconn.Delta.Remove_edge (0, 0)) with
  | Error msg -> Alcotest.fail msg
  | Ok (patched, stats) ->
    check_int "cut splits into two components" 2
      (Compiled.n_components patched);
    check "split recompiled both pieces" true
      (List.length stats.Compiled.recompiled = 2);
    check "nothing reused across the split" true (stats.Compiled.reused = 0);
    check "not a fallback" true (not stats.Compiled.fallback);
    let fresh =
      Compiled.compile (Bigraph.of_edges ~nl:2 ~nr:2 [ (1, 0); (1, 1) ])
    in
    check "patched = fresh compile" true (plan_equal patched fresh)

(* Merge in the presence of a bystander component: the bystander's
   slice must be reused, the merged component rebuilt, and the global
   profile re-derived — all identical to a fresh compile. *)
let test_merge_reuses_bystander () =
  (* components: {A,r0}, {B,r1}, {C,r2}; merge the first two *)
  let g = Bigraph.of_edges ~nl:3 ~nr:3 [ (0, 0); (1, 1); (2, 2) ] in
  let base = Compiled.compile g in
  check_int "three components" 3 (Compiled.n_components base);
  match Compiled.apply_delta base (Minconn.Delta.Add_edge (0, 1)) with
  | Error msg -> Alcotest.fail msg
  | Ok (patched, stats) ->
    check_int "merge leaves two components" 2 (Compiled.n_components patched);
    check "exactly one component rebuilt" true
      (List.length stats.Compiled.recompiled = 1);
    check_int "bystander reused" 1 stats.Compiled.reused;
    let fresh =
      Compiled.compile
        (Bigraph.of_edges ~nl:3 ~nr:3 [ (0, 0); (0, 1); (1, 1); (2, 2) ])
    in
    check "patched = fresh compile" true (plan_equal patched fresh)

(* Two acyclic components merged and then driven cyclic. A single
   cross-component insertion alone can never break an acyclicity
   degree — the new edge is a bridge of the incidence graph, and every
   degree is characterised by closed cycle structures that cannot
   cross a bridge (exhaustively confirmed over all ≤4×4 schemas). So
   the scenario takes two deltas: the first merges two acyclic
   components (class preserved, and asserted so), the second closes
   the 6-cycle inside the merged component and must downgrade the
   whole profile exactly as a fresh classification would. *)
let test_acyclic_merge_goes_cyclic () =
  (* path a–r0–b–r1–c (H¹ = {ab, bc}, γ-acyclic) plus isolated r2 *)
  let g =
    Bigraph.of_edges ~nl:3 ~nr:3 [ (0, 0); (1, 0); (1, 1); (2, 1) ]
  in
  let base = Compiled.compile g in
  check_int "two components before the merge" 2 (Compiled.n_components base);
  check "both components are (6,2)-chordal" true
    (Array.for_all
       (fun c -> c.Compiled.cprofile.Classify.chordal_62)
       base.Compiled.components);
  match Compiled.apply_delta base (Minconn.Delta.Add_edge (2, 2)) with
  | Error msg -> Alcotest.fail msg
  | Ok (merged, s1) ->
    check_int "merged into one component" 1 (Compiled.n_components merged);
    check "merge was incremental" true (not s1.Compiled.fallback);
    check "a bridge merge preserves the class" true
      (Compiled.profile merged).Classify.chordal_62;
    (match Compiled.apply_delta merged (Minconn.Delta.Add_edge (0, 2)) with
    | Error msg -> Alcotest.fail msg
    | Ok (cyclic, s2) ->
      check "closing the 6-cycle stays incremental" true
        (not s2.Compiled.fallback);
      check "merged component went cyclic" true
        (not (Compiled.profile cyclic).Classify.chordal_62);
      check "H1 is now alpha-cyclic (triangle)" true
        (not (Compiled.profile cyclic).Classify.alpha_h1);
      let fresh =
        Compiled.compile
          (Bigraph.of_edges ~nl:3 ~nr:3
             [ (0, 0); (1, 0); (1, 1); (2, 1); (2, 2); (0, 2) ])
      in
      check "patched = fresh compile" true (plan_equal cyclic fresh))

(* Re-adding a present edge and removing an absent one are no-ops:
   the plan must be returned physically unchanged. *)
let test_noop_deltas () =
  let g = Bigraph.of_edges ~nl:2 ~nr:2 [ (0, 0); (1, 0); (1, 1) ] in
  let base = Compiled.compile g in
  List.iter
    (fun op ->
      match Compiled.apply_delta base op with
      | Error msg -> Alcotest.fail msg
      | Ok (t', stats) ->
        check "no-op returns the plan physically unchanged" true (t' == base);
        check "no-op reported" true stats.Compiled.noop;
        check "no component dirtied" true (stats.Compiled.recompiled = []))
    [ Minconn.Delta.Add_edge (0, 0); Minconn.Delta.Remove_edge (0, 1) ]

(* Interior relation removal shifts indices: conservative fallback. *)
let test_interior_removal_falls_back () =
  let g = Bigraph.of_edges ~nl:3 ~nr:3 [ (0, 0); (1, 1); (2, 2) ] in
  let base = Compiled.compile g in
  match Compiled.apply_delta base (Minconn.Delta.Remove_relation 0) with
  | Error msg -> Alcotest.fail msg
  | Ok (patched, stats) ->
    check "interior removal is a fallback" true stats.Compiled.fallback;
    check_int "nothing reused" 0 stats.Compiled.reused;
    let fresh =
      Compiled.compile (Bigraph.of_edges ~nl:3 ~nr:2 [ (1, 0); (2, 1) ])
    in
    check "fallback = fresh compile" true (plan_equal patched fresh);
    (* last-index removal, by contrast, stays incremental *)
    (match Compiled.apply_delta base (Minconn.Delta.Remove_relation 2) with
    | Error msg -> Alcotest.fail msg
    | Ok (p2, s2) ->
      check "last-index removal is incremental" true (not s2.Compiled.fallback);
      check_int "two components reused" 2 s2.Compiled.reused;
      let fresh2 =
        Compiled.compile (Bigraph.of_edges ~nl:3 ~nr:2 [ (0, 0); (1, 1) ])
      in
      check "patched = fresh compile" true (plan_equal p2 fresh2))

(* Appending a relation never shifts an index and merges the attribute
   components; with no attributes it is a fresh isolated component. *)
let test_add_relation () =
  let g = Bigraph.of_edges ~nl:3 ~nr:2 [ (0, 0); (1, 1) ] in
  let base = Compiled.compile g in
  match
    Compiled.apply_delta base (Minconn.Delta.Add_relation (Iset.of_list [ 0; 1 ]))
  with
  | Error msg -> Alcotest.fail msg
  | Ok (patched, stats) ->
    let fresh =
      Compiled.compile
        (Bigraph.of_edges ~nl:3 ~nr:3 [ (0, 0); (0, 2); (1, 1); (1, 2) ])
    in
    check "patched = fresh compile" true (plan_equal patched fresh);
    check "bystander {C} reused" true (stats.Compiled.reused = 1);
    (match
       Compiled.apply_delta base (Minconn.Delta.Add_relation Iset.empty)
     with
    | Error msg -> Alcotest.fail msg
    | Ok (p2, s2) ->
      check "attribute-free relation reuses every component" true
        (s2.Compiled.reused = Array.length base.Compiled.components);
      let fresh2 =
        Compiled.compile (Bigraph.of_edges ~nl:3 ~nr:3 [ (0, 0); (1, 1) ])
      in
      check "patched = fresh compile" true (plan_equal p2 fresh2))

(* Out-of-range deltas are typed errors and leave the plan usable. *)
let test_invalid_deltas () =
  let g = Bigraph.of_edges ~nl:2 ~nr:2 [ (0, 0) ] in
  let base = Compiled.compile g in
  List.iter
    (fun op ->
      match Compiled.apply_delta base op with
      | Ok _ -> Alcotest.fail "out-of-range delta accepted"
      | Error _ -> ())
    [
      Minconn.Delta.Add_edge (2, 0);
      Minconn.Delta.Add_edge (0, 5);
      Minconn.Delta.Remove_edge (-1, 0);
      Minconn.Delta.Remove_relation 2;
      Minconn.Delta.Add_relation (Iset.singleton 9);
    ];
  (* journal hashing: order-sensitive, canonical, "-" for empty *)
  check "empty journal is the fresh sentinel" true
    (Minconn.Delta.journal_hash [] = Minconn.Delta.fresh_journal);
  let a = Minconn.Delta.Add_edge (0, 1) and b = Minconn.Delta.Remove_edge (0, 1) in
  check "journal hash is order-sensitive" true
    (Minconn.Delta.journal_hash [ a; b ] <> Minconn.Delta.journal_hash [ b; a ]);
  check "journal hash is deterministic" true
    (Minconn.Delta.journal_hash [ a; b ] = Minconn.Delta.journal_hash [ a; b ])

(* Session.with_plan: physical no-op on the same plan, fresh scratch
   (and correct answers) on a swapped plan. *)
let test_session_with_plan () =
  let g = Bigraph.of_edges ~nl:2 ~nr:2 [ (0, 0); (1, 0); (1, 1) ] in
  let base = Compiled.compile g in
  let s = Session.create base in
  check "same plan: same session" true (Session.with_plan s base == s);
  match Compiled.apply_delta base (Minconn.Delta.Add_relation (Iset.of_list [ 0 ]))
  with
  | Error msg -> Alcotest.fail msg
  | Ok (patched, _) ->
    let s' = Session.with_plan s patched in
    check "swapped session reads the new plan" true
      (Session.compiled s' == patched);
    let fresh_sess = Session.create patched in
    let p = Iset.of_list [ 0; 1 ] in
    check "swapped session answers like a fresh one" true
      (result_equal (Session.query s' ~p) (Session.query fresh_sess ~p))

let qcheck_cases =
  [
    prop_combine_is_whole;
    prop_differential_gnp;
    prop_differential_structured;
  ]

let () =
  Alcotest.run "evolve"
    [
      ("differential", List.map QCheck_alcotest.to_alcotest qcheck_cases);
      ( "edge-cases",
        [
          Alcotest.test_case "cut edge splits" `Quick test_cut_edge_split;
          Alcotest.test_case "merge reuses bystander" `Quick
            test_merge_reuses_bystander;
          Alcotest.test_case "acyclic merge goes cyclic" `Quick
            test_acyclic_merge_goes_cyclic;
          Alcotest.test_case "no-op deltas" `Quick test_noop_deltas;
          Alcotest.test_case "interior removal fallback" `Quick
            test_interior_removal_falls_back;
          Alcotest.test_case "add relation" `Quick test_add_relation;
          Alcotest.test_case "invalid deltas" `Quick test_invalid_deltas;
          Alcotest.test_case "session plan swap" `Quick test_session_with_plan;
        ] );
    ]
