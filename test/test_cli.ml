(* End-to-end contract of bin/minconn_cli.exe: the documented exit
   codes (0 solved exact, 2 solved degraded, 3 no cover, 4 input
   error, 5 budget exhausted under --no-degrade) and the validity of
   the --trace / --metrics artifacts on every ladder rung. *)

let cli = Filename.concat ".." "bin/minconn_cli.exe"
let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let write_file path s =
  let oc = open_out path in
  output_string oc s;
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let fixture name labeled =
  let path = Printf.sprintf "cli_%s.bigraph" name in
  write_file path
    (Mc_io.Parse.bigraph_to_string
       {
         Mc_io.Parse.graph = labeled.Datamodel.Figures.graph;
         left_names = labeled.Datamodel.Figures.left_names;
         right_names = labeled.Datamodel.Figures.right_names;
       });
  path

let run args =
  let code = Sys.command (cli ^ " " ^ args ^ " > /dev/null 2> /dev/null") in
  if code = 127 then Alcotest.fail ("CLI not found at " ^ cli);
  code

(* ------------------------------------------------------ exit codes *)

let test_exit_exact () =
  let f = fixture "fig3a" Datamodel.Figures.fig3a in
  check_int "forest instance solves exactly" 0 (run ("solve " ^ f ^ " -t A,C"))

let test_exit_degraded () =
  let f = fixture "fig2" Datamodel.Figures.fig2 in
  check_int "fuel 2 degrades but still answers" 2
    (run ("solve " ^ f ^ " -t A,C --fuel 2"))

let test_exit_no_cover () =
  write_file "cli_disconnected.bigraph"
    "bipartite\nleft A B\nright 1 2\nedge A 1\nedge B 2\n";
  check_int "disconnected terminals" 3
    (run "solve cli_disconnected.bigraph -t A,B")

let test_exit_input_error () =
  let f = fixture "fig3a_unknown" Datamodel.Figures.fig3a in
  check_int "unknown terminal name" 4 (run ("solve " ^ f ^ " -t A,ZZZ"));
  write_file "cli_garbage.bigraph" "bipartite\nleft A\nedge A mystery\n";
  check_int "malformed instance" 4 (run "solve cli_garbage.bigraph -t A")

let test_exit_budget_exhausted () =
  let f = fixture "fig2_nd" Datamodel.Figures.fig2 in
  check_int "--no-degrade surfaces exhaustion" 5
    (run ("solve " ^ f ^ " -t A,C --fuel 2 --no-degrade"))

(* ------------------------------------------------ batch --queries *)

(* The batch exit code is the most severe per-query code; option
   misuse (-t with --queries, or neither) is an input error. *)

let test_batch_all_exact () =
  let f = fixture "batch_ok" Datamodel.Figures.fig3b in
  write_file "cli_batch_ok.queries" "# comment\nA,B\n\nA C\nA B C\n";
  check_int "all queries exact" 0
    (run ("solve " ^ f ^ " --queries cli_batch_ok.queries"))

let test_batch_worst_code () =
  let f = fixture "batch_bad" Datamodel.Figures.fig3b in
  (* One good query, one unknown terminal: 4 beats 0. *)
  write_file "cli_batch_bad.queries" "A,B\nA,ZZZ\nA C\n";
  check_int "unknown terminal dominates" 4
    (run ("solve " ^ f ^ " --queries cli_batch_bad.queries"));
  (* Per-query fuel drives every query to the degraded rung: 2. *)
  let f2 = fixture "batch_deg" Datamodel.Figures.fig2 in
  write_file "cli_batch_deg.queries" "A,C\nA,C\n";
  check_int "degraded batch exits 2" 2
    (run ("solve " ^ f2 ^ " --queries cli_batch_deg.queries --fuel 2"))

let test_batch_option_misuse () =
  let f = fixture "batch_opts" Datamodel.Figures.fig3b in
  write_file "cli_batch_opts.queries" "A,B\n";
  check_int "-t and --queries conflict" 4
    (run ("solve " ^ f ^ " -t A,B --queries cli_batch_opts.queries"));
  check_int "neither -t nor --queries" 4 (run ("solve " ^ f))

(* --------------------------------------- trace/metrics per rung *)

(* Each scenario drives the ladder to a different rung; the artifacts
   written by --trace/--metrics must validate and must contain a span
   for the rung that actually ran. *)
let rung_scenarios =
  [
    ("forest", Datamodel.Figures.fig3a, "A,C", "", "rung:exact-structured", 0);
    ("alg2", Datamodel.Figures.fig3b, "A,C", "", "rung:exact-structured", 0);
    ("dp", Datamodel.Figures.fig2, "A,C", "", "rung:exact-dp", 0);
    ( "degraded",
      Datamodel.Figures.fig2,
      "A,C",
      "--fuel 2",
      "rung:mst-approx",
      2 );
  ]

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_trace_artifacts () =
  List.iter
    (fun (tag, labeled, terminals, extra, want_span, want_code) ->
      let f = fixture ("tr_" ^ tag) labeled in
      let trace_f = Printf.sprintf "cli_%s.trace.ndjson" tag in
      let metrics_f = Printf.sprintf "cli_%s.metrics.json" tag in
      let code =
        run
          (Printf.sprintf "solve %s -t %s %s --trace %s --metrics %s" f
             terminals extra trace_f metrics_f)
      in
      check_int (tag ^ ": exit code") want_code code;
      let trace = read_file trace_f in
      (match Observe.Export.validate_ndjson_string trace with
      | Ok n -> check (tag ^ ": trace has spans") true (n > 0)
      | Error e -> Alcotest.fail (tag ^ ": invalid trace: " ^ e));
      check (tag ^ ": root solve span present") true (contains trace "\"solve\"");
      check
        (tag ^ ": expected rung span " ^ want_span)
        true
        (contains trace want_span);
      match Observe.Export.validate_metrics_string (read_file metrics_f) with
      | Ok n -> check (tag ^ ": metrics instruments") true (n > 0)
      | Error e -> Alcotest.fail (tag ^ ": invalid metrics: " ^ e))
    rung_scenarios

(* The artifacts must be written even when the solve fails, so a
   budget post-mortem has the spans leading up to the abort. *)
let test_trace_on_failure () =
  let f = fixture "tr_fail" Datamodel.Figures.fig2 in
  let code =
    run
      ("solve " ^ f
     ^ " -t A,C --fuel 2 --no-degrade --trace cli_fail.trace.ndjson \
        --metrics cli_fail.metrics.json")
  in
  check_int "still exits 5" 5 code;
  (match Observe.Export.validate_ndjson_string (read_file "cli_fail.trace.ndjson") with
  | Ok n -> check "failure trace non-empty" true (n > 0)
  | Error e -> Alcotest.fail ("invalid failure trace: " ^ e));
  check "abandoned rung recorded" true
    (contains (read_file "cli_fail.trace.ndjson") "rung:exact-dp")

(* ---------------------------------------------------- plan cache *)

(* The compile subcommand owns the cache, so an unusable directory is
   its input error (4); solve --plan-cache merely accelerates, so the
   same directory degrades to an uncached compile with a structured
   warning and the exit code of the answers. Unusable-dir probing uses
   a path under a regular file (ENOTDIR) because permission bits do
   not stop root. *)

let test_compile_exit_codes () =
  let f = fixture "pc_ok" Datamodel.Figures.fig3b in
  let dir = "cli_pc_cache" in
  check_int "cold compile stores, exit 0" 0
    (run ("compile " ^ f ^ " --plan-cache " ^ dir));
  check_int "warm compile hits, exit 0" 0
    (run ("compile " ^ f ^ " --plan-cache " ^ dir));
  check_int "--force recompiles, exit 0" 0
    (run ("compile " ^ f ^ " --plan-cache " ^ dir ^ " --force"));
  check_int "compile without a cache dir" 0 (run ("compile " ^ f));
  check_int "pooled compile" 0 (run ("compile " ^ f ^ " --jobs 2"));
  write_file "cli_pc_garbage.bigraph" "bipartite\nleft A\nedge A mystery\n";
  check_int "malformed instance" 4
    (run ("compile cli_pc_garbage.bigraph --plan-cache " ^ dir));
  (* A missing FILE is rejected by cmdliner's own argument check
     (124), exactly as it is for solve. *)
  check_int "nonexistent file" 124 (run "compile cli_pc_missing.bigraph");
  check_int "invalid --jobs" 4 (run ("compile " ^ f ^ " --jobs 0"));
  write_file "cli_pc_blocker" "";
  check_int "unusable cache dir is compile's input error" 4
    (run ("compile " ^ f ^ " --plan-cache cli_pc_blocker/sub"))

let test_solve_plan_cache_degrades () =
  let f = fixture "pc_deg" Datamodel.Figures.fig3b in
  write_file "cli_pc_deg.queries" "A,B\nA C\n";
  write_file "cli_pc_blocker2" "";
  let code =
    Sys.command
      (cli ^ " solve " ^ f
     ^ " --queries cli_pc_deg.queries --plan-cache cli_pc_blocker2/sub \
        > cli_pc_deg.out 2> cli_pc_deg.stderr")
  in
  check_int "unusable cache degrades to uncached, exit 0" 0 code;
  check "structured warning on stderr" true
    (contains (read_file "cli_pc_deg.stderr") "warn=plan-cache-unusable");
  let code2 =
    Sys.command
      (cli ^ " solve " ^ f
     ^ " --queries cli_pc_deg.queries > cli_pc_plain.out 2> /dev/null")
  in
  check_int "uncached baseline" 0 code2;
  check "answers identical to the uncached run" true
    (read_file "cli_pc_deg.out" = read_file "cli_pc_plain.out");
  (* Same degradation on the single-terminal path. *)
  check_int "-t path degrades too" 0
    (run ("solve " ^ f ^ " -t A,B --plan-cache cli_pc_blocker2/sub"))

let test_solve_plan_cache_warm () =
  let f = fixture "pc_warm" Datamodel.Figures.fig3b in
  write_file "cli_pc_warm.queries" "A,B\nA B C\n";
  let dir = "cli_pc_warm_cache" in
  let solve_to out =
    Sys.command
      (Printf.sprintf
         "%s solve %s --queries cli_pc_warm.queries --plan-cache %s > %s 2> /dev/null"
         cli f dir out)
  in
  check_int "cold run" 0 (solve_to "cli_pc_cold.out");
  check_int "warm run" 0 (solve_to "cli_pc_warm.out");
  check "warm answers byte-identical to cold" true
    (read_file "cli_pc_cold.out" = read_file "cli_pc_warm.out");
  check_int "-t path served from the same cache" 0
    (run ("solve " ^ f ^ " -t A,B --plan-cache " ^ dir));
  (* The exit-code contract is unchanged by a cache: degraded answers
     still exit 2 whether the plan was loaded or compiled. *)
  let f2 = fixture "pc_warm_deg" Datamodel.Figures.fig2 in
  let dir2 = "cli_pc_warm_cache2" in
  check_int "cold degraded run exits 2" 2
    (run ("solve " ^ f2 ^ " -t A,C --fuel 2 --plan-cache " ^ dir2));
  check_int "warm degraded run exits 2" 2
    (run ("solve " ^ f2 ^ " -t A,C --fuel 2 --plan-cache " ^ dir2))

(* ---------------------------------------------------------- query *)

(* The query subcommand runs the whole pipeline: scheme compilation,
   Algorithm 1, Yannakakis execution. Exit codes follow the same
   contract (0 answered, 3 disconnected, 4 input error, 5 budget
   exhausted). *)

let gen_args = "--gen chain --size 4 --rows 200 --domain 200 --seed 3"

let test_query_answers () =
  check_int "generated chain answers" 0 (run ("query " ^ gen_args ^ " -t a0,a4"));
  check_int "bag semantics answers" 0
    (run ("query " ^ gen_args ^ " --bag -t a0,a4"));
  check_int "naive baseline answers" 0
    (run ("query " ^ gen_args ^ " --naive -t a0,a4"));
  check_int "boolean query (relation terminals)" 0
    (run ("query " ^ gen_args ^ " -t r0,r3"));
  write_file "cli_query.db"
    "database\n\
     relation works emp dept\n\
     relation located dept floor\n\
     row works alice toys\n\
     row located toys 1\n";
  check_int "file-backed database answers" 0
    (run "query cli_query.db -t emp,floor")

let test_query_input_errors () =
  check_int "unknown terminal" 4 (run ("query " ^ gen_args ^ " -t a0,zz"));
  check_int "duplicate attribute terminals" 4
    (run ("query " ^ gen_args ^ " -t a0,a0,a4"));
  check_int "missing terminals" 4 (run ("query " ^ gen_args));
  check_int "neither DBFILE nor --gen" 4 (run "query -t a0");
  check_int "unknown generator family" 4
    (run "query --gen ring --size 4 -t a0");
  write_file "cli_query_bad.db" "database\nrelation r a b\nrow r x\n";
  check_int "malformed database file" 4 (run "query cli_query_bad.db -t a")

let test_query_disconnected () =
  write_file "cli_query_disc.db"
    "database\n\
     relation r1 a b\n\
     relation r2 c d\n\
     row r1 x y\n\
     row r2 u v\n";
  check_int "disconnected scheme" 3 (run "query cli_query_disc.db -t a,c")

let test_query_budget () =
  check_int "tiny fuel exhausts the executor" 5
    (run ("query " ^ gen_args ^ " --fuel 10 -t a0,a4"))

let test_query_artifacts () =
  let code =
    run
      ("query " ^ gen_args
     ^ " -t a0,a4 --trace cli_query.trace.ndjson --metrics \
        cli_query.metrics.json")
  in
  check_int "exit 0 with artifacts" 0 code;
  let trace = read_file "cli_query.trace.ndjson" in
  (match Observe.Export.validate_ndjson_string trace with
  | Ok n -> check "query trace has spans" true (n > 0)
  | Error e -> Alcotest.fail ("invalid query trace: " ^ e));
  check "reducer span present" true (contains trace "relalg.reduce");
  check "join span present" true (contains trace "relalg.join");
  match Observe.Export.validate_metrics_string (read_file "cli_query.metrics.json") with
  | Ok n -> check "query metrics instruments" true (n > 0)
  | Error e -> Alcotest.fail ("invalid query metrics: " ^ e)

let () =
  Alcotest.run "cli"
    [
      ( "exit-codes",
        [
          Alcotest.test_case "0 exact" `Quick test_exit_exact;
          Alcotest.test_case "2 degraded" `Quick test_exit_degraded;
          Alcotest.test_case "3 no cover" `Quick test_exit_no_cover;
          Alcotest.test_case "4 input error" `Quick test_exit_input_error;
          Alcotest.test_case "5 exhausted" `Quick test_exit_budget_exhausted;
        ] );
      ( "batch",
        [
          Alcotest.test_case "0 all exact" `Quick test_batch_all_exact;
          Alcotest.test_case "worst code wins" `Quick test_batch_worst_code;
          Alcotest.test_case "option misuse" `Quick test_batch_option_misuse;
        ] );
      ( "observability",
        [
          Alcotest.test_case "per-rung artifacts" `Quick test_trace_artifacts;
          Alcotest.test_case "artifacts on failure" `Quick
            test_trace_on_failure;
        ] );
      ( "query",
        [
          Alcotest.test_case "0 answered" `Quick test_query_answers;
          Alcotest.test_case "4 input errors" `Quick test_query_input_errors;
          Alcotest.test_case "3 disconnected" `Quick test_query_disconnected;
          Alcotest.test_case "5 exhausted" `Quick test_query_budget;
          Alcotest.test_case "observability artifacts" `Quick
            test_query_artifacts;
        ] );
      ( "plan-cache",
        [
          Alcotest.test_case "compile exit codes" `Quick
            test_compile_exit_codes;
          Alcotest.test_case "unusable dir degrades" `Quick
            test_solve_plan_cache_degrades;
          Alcotest.test_case "warm solve identical" `Quick
            test_solve_plan_cache_warm;
        ] );
    ]
