(* The observability layer: span mechanics under a fake clock, the
   disabled fast path, metric instruments, export validators, and the
   spans the solver ladder actually emits. *)

module Trace = Observe.Trace
module Metrics = Observe.Metrics
module Export = Observe.Export
module Json = Observe.Json

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --------------------------------------------------------- tracing *)

let fake_clock () =
  let t = ref 0.0 in
  let clock () = !t in
  let advance d = t := !t +. d in
  (clock, advance)

let test_span_tree () =
  let clock, advance = fake_clock () in
  let tr = Trace.make ~clock () in
  check "recording trace is active" true (Trace.active tr);
  let result =
    Trace.span tr "outer" ~attrs:[ ("k", Trace.Int 7) ] (fun () ->
        advance 1.0;
        Trace.span tr "inner" (fun () ->
            advance 0.5;
            Trace.add_attr tr "leaf" (Trace.Bool true));
        advance 0.25;
        42)
  in
  check_int "span body's value is returned" 42 result;
  check_int "two spans recorded" 2 (Trace.span_count tr);
  match Trace.spans tr with
  | [ outer; inner ] ->
    check "outer is a root span" true (outer.Trace.parent = 0);
    check_int "inner nests under outer" outer.Trace.id inner.Trace.parent;
    check "outer starts at the epoch" true (outer.Trace.start_s = 0.0);
    check "inner starts after the first advance" true
      (inner.Trace.start_s = 1.0);
    check "inner lasted 0.5s" true (inner.Trace.dur_s = 0.5);
    check "outer lasted 1.75s" true (outer.Trace.dur_s = 1.75);
    check "declared attr preserved" true
      (Trace.find_attr outer "k" = Some (Trace.Int 7));
    check "add_attr reached the innermost open span" true
      (Trace.find_attr inner "leaf" = Some (Trace.Bool true))
  | _ -> Alcotest.fail "expected exactly two spans"

let test_event () =
  let clock, advance = fake_clock () in
  let tr = Trace.make ~clock () in
  Trace.span tr "parent" (fun () ->
      advance 2.0;
      Trace.event tr "decision" ~attrs:[ ("why", Trace.Str "because") ]);
  match Trace.spans tr with
  | [ parent; ev ] ->
    check "event is parented" true (ev.Trace.parent = parent.Trace.id);
    check "event has zero duration" true (ev.Trace.dur_s = 0.0);
    check "event keeps its attrs" true
      (Trace.find_attr ev "why" = Some (Trace.Str "because"))
  | _ -> Alcotest.fail "expected parent + event"

let test_disabled_trace () =
  let tr = Trace.disabled in
  check "disabled trace is inactive" false (Trace.active tr);
  let r = Trace.span tr "ghost" (fun () -> 9) in
  check_int "body still runs under the disabled trace" 9 r;
  Trace.add_attr tr "x" (Trace.Int 1);
  Trace.event tr "nothing";
  check_int "nothing was recorded" 0 (Trace.span_count tr)

let test_span_exception () =
  let tr = Trace.make ~clock:(fun () -> 0.0) () in
  (try Trace.span tr "boom" (fun () -> failwith "kaput")
   with Failure _ -> ());
  match Trace.spans tr with
  | [ s ] ->
    check "span closed despite the raise" true (s.Trace.dur_s >= 0.0);
    check "exception recorded as an attribute" true
      (match Trace.find_attr s "raised" with
      | Some (Trace.Str _) -> true
      | _ -> false)
  | _ -> Alcotest.fail "expected the raising span to be recorded"

(* --------------------------------------------------------- metrics *)

let test_counters () =
  let m = Metrics.make () in
  let c = Metrics.counter m "steps" in
  Metrics.incr c;
  Metrics.incr ~by:4 c;
  check_int "counter accumulates" 5 (Metrics.count c);
  let again = Metrics.counter m "steps" in
  Metrics.incr again;
  check_int "find-or-create shares the instrument" 6 (Metrics.count c);
  check "registry snapshot in creation order" true
    (Metrics.counters m = [ ("steps", 6) ])

let test_histograms () =
  let m = Metrics.make () in
  let h = Metrics.histogram m ~bounds:[| 1.0; 10.0; 100.0 |] "sizes" in
  List.iter (Metrics.observe h) [ 0.5; 5.0; 50.0; 5000.0 ];
  check "bucket placement" true
    (Metrics.hist_buckets h = [| 1; 1; 1; 1 |]);
  check "sum tracks observations" true (Metrics.hist_sum h = 5055.5);
  check_int "event count" 4 (Metrics.hist_events h);
  check "overflow bucket appended" true
    (Array.length (Metrics.hist_buckets h)
    = Array.length (Metrics.hist_bounds h) + 1)

let test_disabled_metrics () =
  let m = Metrics.disabled in
  check "disabled registry inactive" false (Metrics.active m);
  let c = Metrics.counter m "anything" in
  Metrics.incr ~by:100 c;
  check_int "inert counter never moves" 0 (Metrics.count c);
  check "inert counter is the shared instance" true (c == Metrics.inert);
  let h = Metrics.histogram m "anything" in
  Metrics.observe h 3.0;
  check_int "inert histogram records nothing" 0 (Metrics.hist_events h);
  check "disabled registry stays empty" true (Metrics.counters m = [])

(* ---------------------------------------------------------- export *)

let test_export_roundtrip () =
  let clock, advance = fake_clock () in
  let tr = Trace.make ~clock () in
  Trace.span tr "a" ~attrs:[ ("s", Trace.Str "q\"uote") ] (fun () ->
      advance 0.001;
      Trace.event tr "b");
  let ndjson = Export.trace_ndjson tr in
  (match Export.validate_ndjson_string ndjson with
  | Ok n -> check_int "every span line validates" 2 n
  | Error e -> Alcotest.fail ("trace validation: " ^ e));
  let m = Metrics.make () in
  Metrics.incr (Metrics.counter m "c1");
  Metrics.observe (Metrics.histogram m "h1") 3.0;
  (match Export.validate_metrics_string (Export.metrics_json m) with
  | Ok n -> check_int "counter + histogram counted" 2 n
  | Error e -> Alcotest.fail ("metrics validation: " ^ e));
  check "empty trace is rejected" true
    (match Export.validate_ndjson_string "" with Error _ -> true | Ok _ -> false);
  check "garbage line is rejected" true
    (match Export.validate_ndjson_string "{\"type\":\"nope\"}" with
    | Error _ -> true
    | Ok _ -> false);
  check "malformed metrics are rejected" true
    (match Export.validate_metrics_string "{\"schema\":\"other\"}" with
    | Error _ -> true
    | Ok _ -> false)

let test_json_parse () =
  let j = Json.parse_exn {| {"a": [1, true, null, "x\n"], "b": -2.5e1} |} in
  check "member lookup" true
    (match Json.member "b" j with Some (Json.Jnum f) -> f = -25.0 | _ -> false);
  check "array and escapes survive" true
    (match Json.member "a" j with
    | Some (Json.Jarr [ Json.Jnum 1.0; Json.Jbool true; Json.Jnull; Json.Jstr "x\n" ])
      ->
      true
    | _ -> false);
  check "unterminated input is an error" true
    (match Json.parse "{\"a\": [1," with Error _ -> true | Ok _ -> false)

(* ------------------------------------------- solver instrumentation *)

let span_names tr = List.map (fun s -> s.Trace.name) (Trace.spans tr)

let test_solver_spans () =
  let g = Minconn.Figures.fig2.Minconn.Figures.graph in
  let p = Minconn.Iset.of_list [ 0; 2 ] in
  let tr = Trace.make () in
  let m = Metrics.make () in
  (match Minconn.solve ~trace:tr ~metrics:m g ~p with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "fig2 is solvable");
  let names = span_names tr in
  let has n = List.mem n names in
  check "root solve span" true (has "solve");
  check "classification span" true (has "classify");
  check "exact DP rung span" true (has "rung:exact-dp");
  check "ladder outcome event" true (has "ladder.ran");
  check "verify span present when tracing" true (has "verify");
  (match
     List.find_opt (fun s -> s.Trace.name = "verify") (Trace.spans tr)
   with
  | Some s ->
    check "verify confirms terminal coverage" true
      (Trace.find_attr s "covers_terminals" = Some (Trace.Bool true))
  | None -> Alcotest.fail "verify span missing");
  check "all spans closed with a timing" true
    (List.for_all (fun s -> s.Trace.dur_s >= 0.0) (Trace.spans tr))

(* Every abandoned rung must leave a span with an outcome and an
   abandonment reason, plus a ladder.abandon event — this is the
   acceptance bar for the degradation ladder's observability. *)
let test_ladder_abandon_spans () =
  let g = Minconn.Figures.fig2.Minconn.Figures.graph in
  let p = Minconn.Iset.of_list [ 0; 2 ] in
  let tr = Trace.make () in
  let m = Metrics.make () in
  let budget = Minconn.Budget.make ~fuel:2 () in
  (match Minconn.solve ~budget ~trace:tr ~metrics:m g ~p with
  | Ok s ->
    check "fuel 2 forces degradation" true
      (Minconn.Degrade.degraded s.Minconn.provenance)
  | Error e -> Alcotest.fail (Minconn.Errors.to_string e));
  let spans = Trace.spans tr in
  let rungs =
    List.filter
      (fun s ->
        String.length s.Trace.name > 5
        && String.sub s.Trace.name 0 5 = "rung:")
      spans
  in
  check "several rungs attempted" true (List.length rungs >= 2);
  List.iter
    (fun s ->
      check ("rung span timed: " ^ s.Trace.name) true (s.Trace.dur_s >= 0.0);
      match Trace.find_attr s "outcome" with
      | Some (Trace.Str "ran") -> ()
      | Some (Trace.Str _) ->
        check ("abandoned rung has a reason: " ^ s.Trace.name) true
          (match Trace.find_attr s "reason" with
          | Some (Trace.Str _) -> true
          | _ -> false)
      | _ -> Alcotest.fail ("rung span without outcome: " ^ s.Trace.name))
    rungs;
  let abandons =
    List.filter (fun s -> s.Trace.name = "ladder.abandon") spans
  in
  check "structured abandon events emitted" true (List.length abandons >= 1);
  List.iter
    (fun s ->
      check "abandon event names its rung" true
        (match Trace.find_attr s "rung" with
        | Some (Trace.Str _) -> true
        | _ -> false))
    abandons;
  check "budget checks were counted" true
    (List.assoc "budget.checks" (Metrics.counters m) > 0);
  check "abandonments were counted" true
    (List.assoc "rung.abandonments" (Metrics.counters m) > 0)

let test_solver_disabled_records_nothing () =
  let g = Minconn.Figures.fig2.Minconn.Figures.graph in
  let p = Minconn.Iset.of_list [ 0; 2 ] in
  (* The default-arg path: no trace, no metrics, same answer. *)
  match
    ( Minconn.solve g ~p,
      Minconn.solve ~trace:Trace.disabled ~metrics:Metrics.disabled g ~p )
  with
  | Ok a, Ok b ->
    check "instrumented-off solve agrees" true
      (a.Minconn.method_used = b.Minconn.method_used);
    check_int "disabled trace stayed empty" 0
      (Trace.span_count Trace.disabled)
  | _ -> Alcotest.fail "fig2 is solvable"

let () =
  Alcotest.run "observe"
    [
      ( "trace",
        [
          Alcotest.test_case "span tree" `Quick test_span_tree;
          Alcotest.test_case "event" `Quick test_event;
          Alcotest.test_case "disabled" `Quick test_disabled_trace;
          Alcotest.test_case "exception" `Quick test_span_exception;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters" `Quick test_counters;
          Alcotest.test_case "histograms" `Quick test_histograms;
          Alcotest.test_case "disabled" `Quick test_disabled_metrics;
        ] );
      ( "export",
        [
          Alcotest.test_case "roundtrip" `Quick test_export_roundtrip;
          Alcotest.test_case "json parser" `Quick test_json_parse;
        ] );
      ( "solver",
        [
          Alcotest.test_case "rung spans" `Quick test_solver_spans;
          Alcotest.test_case "ladder abandon" `Quick test_ladder_abandon_spans;
          Alcotest.test_case "disabled path" `Quick
            test_solver_disabled_records_nothing;
        ] );
    ]
