(* The serving layer's robustness contract, exercised against a live
   in-process server on an ephemeral loopback port:

   - answers are byte-identical to the CLI batch blocks (the
     serve-smoke rule additionally diffs them against a real
     `solve --queries` run over a socket);
   - at max-inflight + k load, excess connections get an immediate
     typed 503 (the <10ms admission bound);
   - above the watermark, answers degrade down the ladder and carry
     provenance headers;
   - an injected handler crash or a torn client read poisons one
     connection only — the listener keeps serving;
   - oversized bodies are rejected typed (413), stalled clients are
     reaped (408), dead peers surface as EPIPE counts, and graceful
     drain force-closes stragglers past its deadline.

   Plus the CLI half of the SIGPIPE satellite: a reader that goes away
   exits the process with the typed input-error code, not a signal
   death. *)

module Server = Serve.Server
module Http = Serve.Http
module Fault = Runtime.Fault
module Metrics = Observe.Metrics

let cli = Filename.concat ".." "bin/minconn_cli.exe"
let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let fig3b () =
  match Mc_io.Parse.bigraph_of_string (read_file "fixtures/fig3b.bigraph") with
  | Ok nb -> nb
  | Error _ -> Alcotest.fail "fixture fig3b.bigraph does not parse"

(* ------------------------------------------------------------ client *)

let connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
  fd

let send fd s =
  let n = Unix.write_substring fd s 0 (String.length s) in
  if n <> String.length s then Alcotest.fail "short client write"

let request ?(meth = "POST") ?(path = "/solve") ?(close = false) body =
  Printf.sprintf "%s %s HTTP/1.1\r\nHost: t\r\n%sContent-Length: %d\r\n\r\n%s"
    meth path
    (if close then "Connection: close\r\n" else "")
    (String.length body) body

let recv conn =
  match Http.read_response conn with
  | Ok r -> r
  | Error e -> Alcotest.fail ("client read: " ^ Http.read_error_name e)

let post fd conn body =
  send fd (request body);
  recv conn

let hdr r name = Http.resp_header r name

(* -------------------------------------------------------- harness *)

let with_server ?(config = Server.default_config) f =
  let nb = fig3b () in
  let metrics = Metrics.make () in
  match Server.create ~config ~metrics nb with
  | Error msg -> Alcotest.fail ("server create: " ^ msg)
  | Ok srv ->
    let th = Server.start srv in
    Fun.protect
      ~finally:(fun () ->
        Server.stop srv;
        Thread.join th)
      (fun () -> f nb srv metrics)

let counter metrics name =
  Option.value ~default:0 (Metrics.find_counter metrics name)

let await ?(ms = 2000) what pred =
  let deadline = Unix.gettimeofday () +. (float_of_int ms /. 1000.) in
  let rec go () =
    if pred () then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.fail ("timed out waiting for " ^ what)
    else begin
      Thread.delay 0.002;
      go ()
    end
  in
  go ()

(* ------------------------------------------------------ round trip *)

let test_round_trip () =
  with_server @@ fun nb srv metrics ->
  let port = Server.port srv in
  let fd = connect port in
  let conn = Http.conn fd in
  let r = post fd conn "A,B" in
  check_int "status" 200 r.Http.code;
  (* Byte-identity with the canonical rendering of the same query. *)
  let expected =
    let compiled = Minconn.Compiled.compile nb.Mc_io.Parse.graph in
    let session = Minconn.Session.create compiled in
    let p =
      match Mc_io.Parse.name_set nb [ "A"; "B" ] with
      | Ok p -> p
      | Error _ -> Alcotest.fail "name_set"
    in
    match Minconn.Session.query session ~p with
    | Ok s -> Serve.Render.solution_block nb s
    | Error _ -> Alcotest.fail "direct query failed"
  in
  check_str "body matches canonical rendering" expected r.Http.resp_body;
  check_str "code header" "0"
    (Option.value ~default:"?" (hdr r "x-minconn-code"));
  check "rung header present" true (hdr r "x-minconn-rung" <> None);
  (* keep-alive: same connection answers again *)
  let r2 = post fd conn "A C" in
  check_int "second request on one connection" 200 r2.Http.code;
  (* input errors stay typed *)
  let r3 = post fd conn "ZZZ" in
  check_int "unknown terminal is 400" 400 r3.Http.code;
  check_str "unknown terminal body" "error: unknown terminal ZZZ\n"
    r3.Http.resp_body;
  let r4 = post fd conn "" in
  check_int "empty terminal set is 400" 400 r4.Http.code;
  Unix.close fd;
  check "requests counted" true (counter metrics "serve.requests" >= 4)

let test_endpoints () =
  with_server @@ fun _nb srv _metrics ->
  let port = Server.port srv in
  let get path =
    let fd = connect port in
    let conn = Http.conn fd in
    send fd (request ~meth:"GET" ~path "");
    let r = recv conn in
    Unix.close fd;
    r
  in
  let m = get "/metrics" in
  check_int "metrics endpoint" 200 m.Http.code;
  (match Observe.Export.validate_metrics_string m.Http.resp_body with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail ("metrics body invalid: " ^ msg));
  let h = get "/healthz" in
  check_int "healthz" 200 h.Http.code;
  check "healthz says ok" true
    (String.length h.Http.resp_body >= 2
    && String.sub h.Http.resp_body 0 2 = "ok");
  let t = get "/trace" in
  check_int "trace endpoint" 200 t.Http.code;
  check_int "unknown path is 404" 404 (get "/nope").Http.code;
  check_int "GET /solve is 405" 405 (get "/solve").Http.code

(* ---------------------------------------------------- schema delta *)

let test_schema_delta () =
  with_server @@ fun nb srv metrics ->
  let port = Server.port srv in
  let fd = connect port in
  let conn = Http.conn fd in
  let delta_text = "deltas\n+relation 4 A C\n+edge B 4\n" in
  (* A malformed delta file must bounce typed and leave the schema
     of record untouched. *)
  send fd (request ~path:"/schema/delta" "deltas\n+edge A nosuch\n");
  let bad = recv conn in
  check_int "bad delta is 400" 400 bad.Http.code;
  check_str "bad delta is typed" "bad-delta"
    (Option.value ~default:"?" (hdr bad "x-minconn-error"));
  let before = post fd conn "A,C" in
  check_int "schema still serves after rejected delta" 200 before.Http.code;
  (* Now the real evolution: grow relation 4 over {A, C} and wire B
     onto it. *)
  send fd (request ~path:"/schema/delta" delta_text);
  let r = recv conn in
  check_int "delta applied" 200 r.Http.code;
  check_str "delta count header" "2"
    (Option.value ~default:"?" (hdr r "x-minconn-deltas"));
  check "recompiled-components header present" true
    (hdr r "x-minconn-recompiled-components" <> None);
  (* Answers after the swap are byte-identical to a fresh compile of
     the evolved schema — same discipline as the round-trip test. *)
  let evolved =
    match Mc_io.Parse.deltas_of_string nb delta_text with
    | Ok (_, nb') -> nb'
    | Error e ->
      Alcotest.fail
        ("delta text does not parse: " ^ Runtime.Errors.to_string e)
  in
  let expected =
    let compiled = Minconn.Compiled.compile evolved.Mc_io.Parse.graph in
    let session = Minconn.Session.create compiled in
    let p =
      match Mc_io.Parse.name_set evolved [ "A"; "C" ] with
      | Ok p -> p
      | Error _ -> Alcotest.fail "name_set"
    in
    match Minconn.Session.query session ~p with
    | Ok s -> Serve.Render.solution_block evolved s
    | Error _ -> Alcotest.fail "direct query on evolved schema failed"
  in
  let after = post fd conn "A,C" in
  check_int "post-swap solve" 200 after.Http.code;
  check_str "post-swap answer matches evolved compile" expected
    after.Http.resp_body;
  (* The keep-alive connection above already resynced; a fresh
     connection must see the evolved schema too. *)
  let fd2 = connect port in
  let conn2 = Http.conn fd2 in
  let fresh = post fd2 conn2 "A,C" in
  check_str "fresh connection sees evolved schema" expected
    fresh.Http.resp_body;
  Unix.close fd2;
  Unix.close fd;
  check_int "deltas counted" 1 (counter metrics "serve.deltas")

(* -------------------------------------------------------- overload *)

let test_overload_sheds_fast () =
  let config =
    {
      Server.default_config with
      Server.max_inflight = 2;
      degrade_watermark = 100;
      read_timeout_ms = 5_000;
    }
  in
  with_server ~config @@ fun _nb srv metrics ->
  let port = Server.port srv in
  (* Two idle keep-alive connections pin the inflight count at the
     admission cap. *)
  let a = connect port and b = connect port in
  await "inflight to reach the cap" (fun () -> Server.inflight srv >= 2);
  let best = ref infinity in
  for _ = 1 to 5 do
    let t0 = Unix.gettimeofday () in
    let fd = connect port in
    let conn = Http.conn fd in
    let r = recv conn in
    let dt_ms = (Unix.gettimeofday () -. t0) *. 1000. in
    if dt_ms < !best then best := dt_ms;
    check_int "excess connection is shed with 503" 503 r.Http.code;
    check_str "typed overloaded header" "overloaded"
      (Option.value ~default:"?" (hdr r "x-minconn-error"));
    Unix.close fd
  done;
  if not (!best < 10.0) then
    Alcotest.failf "shed latency %.2fms, admission bound is 10ms" !best;
  check "shed counted" true (counter metrics "serve.shed" >= 5);
  Unix.close a;
  Unix.close b

(* ------------------------------------------- watermark degradation *)

let test_degrade_under_pressure () =
  (* watermark 0: every request runs in pressure mode; fuel 1 forces
     the ladder down to the MST rung. *)
  let config =
    {
      Server.default_config with
      Server.degrade_watermark = 0;
      pressure_fuel = 1;
    }
  in
  with_server ~config @@ fun _nb srv metrics ->
  let fd = connect (Server.port srv) in
  let conn = Http.conn fd in
  let r = post fd conn "A B C" in
  check_int "pressured query still answers" 200 r.Http.code;
  check_str "degraded provenance" "true"
    (Option.value ~default:"?" (hdr r "x-minconn-degraded"));
  check_str "ladder rung named" "mst-approx"
    (Option.value ~default:"?" (hdr r "x-minconn-rung"));
  check_str "pressure mode named" "high"
    (Option.value ~default:"?" (hdr r "x-minconn-pressure"));
  check_str "degraded exit code" "2"
    (Option.value ~default:"?" (hdr r "x-minconn-code"));
  Unix.close fd;
  check "degraded counted" true (counter metrics "serve.degraded" >= 1)

let test_normal_not_degraded () =
  with_server @@ fun _nb srv _metrics ->
  let fd = connect (Server.port srv) in
  let conn = Http.conn fd in
  let r = post fd conn "A B C" in
  check_int "status" 200 r.Http.code;
  check_str "exact under no pressure" "false"
    (Option.value ~default:"?" (hdr r "x-minconn-degraded"));
  check "no pressure header" true (hdr r "x-minconn-pressure" = None);
  Unix.close fd

(* ------------------------------------------------- fault injection *)

let test_handler_crash_survives () =
  with_server @@ fun _nb srv metrics ->
  let port = Server.port srv in
  Fault.arm_op ~op:"serve.handler" ~times:1 ();
  Fun.protect ~finally:(fun () -> Fault.disarm_op ~op:"serve.handler")
  @@ fun () ->
  let fd = connect port in
  let conn = Http.conn fd in
  let r = post fd conn "A B" in
  check_int "poisoned handler answers 500" 500 r.Http.code;
  check_str "typed internal error" "internal"
    (Option.value ~default:"?" (hdr r "x-minconn-error"));
  Unix.close fd;
  (* the listener survives: a fresh connection gets a real answer *)
  let fd2 = connect port in
  let conn2 = Http.conn fd2 in
  let r2 = post fd2 conn2 "A B" in
  check_int "listener still serving after crash" 200 r2.Http.code;
  Unix.close fd2;
  check "error counted" true (counter metrics "serve.errors" >= 1)

let test_torn_client_survives () =
  with_server @@ fun _nb srv metrics ->
  let port = Server.port srv in
  (* promise a 10-byte body, send 3, hang up *)
  let fd = connect port in
  send fd "POST /solve HTTP/1.1\r\nHost: t\r\nContent-Length: 10\r\n\r\nA B";
  Unix.close fd;
  await "torn read to be counted" (fun () -> counter metrics "serve.errors" >= 1);
  let fd2 = connect port in
  let conn2 = Http.conn fd2 in
  let r = post fd2 conn2 "A B" in
  check_int "listener still serving after torn client" 200 r.Http.code;
  Unix.close fd2

(* --------------------------------------- size caps and reaping *)

let test_body_too_large () =
  let config = { Server.default_config with Server.max_body_bytes = 128 } in
  with_server ~config @@ fun _nb srv _metrics ->
  let fd = connect (Server.port srv) in
  let conn = Http.conn fd in
  send fd (request (String.make 300 'A'));
  let r = recv conn in
  check_int "oversized body is 413" 413 r.Http.code;
  check_str "typed too-large header" "too-large"
    (Option.value ~default:"?" (hdr r "x-minconn-error"));
  Unix.close fd

let test_stalled_client_reaped () =
  let config = { Server.default_config with Server.read_timeout_ms = 80 } in
  with_server ~config @@ fun _nb srv metrics ->
  let fd = connect (Server.port srv) in
  let conn = Http.conn fd in
  (* send nothing: the read deadline must fire and answer 408 *)
  let r = recv conn in
  check_int "stalled client reaped with 408" 408 r.Http.code;
  Unix.close fd;
  check "reap counted" true (counter metrics "serve.reaped" >= 1)

let test_epipe_counted () =
  with_server @@ fun _nb srv metrics ->
  let port = Server.port srv in
  (* RST-close right after sending the request so the server's
     response write hits a dead peer. The race against a fast solver
     is real, hence the retry loop; one hit is enough. *)
  let rec attempt n =
    if n = 0 then Alcotest.fail "no EPIPE recorded in 50 attempts"
    else begin
      let fd = connect port in
      send fd (request "A B C");
      Unix.setsockopt_optint fd Unix.SO_LINGER (Some 0);
      Unix.close fd;
      Thread.delay 0.005;
      if counter metrics "serve.epipe" = 0 then attempt (n - 1)
    end
  in
  attempt 50

(* ----------------------------------------------------------- drain *)

let test_graceful_drain_forces_stragglers () =
  let config =
    {
      Server.default_config with
      Server.drain_timeout_ms = 100;
      read_timeout_ms = 5_000;
    }
  in
  let nb = fig3b () in
  let metrics = Metrics.make () in
  match Server.create ~config ~metrics nb with
  | Error msg -> Alcotest.fail msg
  | Ok srv ->
    let th = Server.start srv in
    let fd = connect (Server.port srv) in
    await "connection to be admitted" (fun () -> Server.inflight srv >= 1);
    Server.stop srv;
    Thread.join th;
    check_int "all connections released after drain" 0 (Server.inflight srv);
    check "straggler force-closed and counted" true
      (counter metrics "serve.drain_forced" >= 1);
    Unix.close fd

(* -------------------------------------------- CLI SIGPIPE satellite *)

let test_cli_broken_pipe_is_typed_exit () =
  if not (Sys.file_exists cli) then Alcotest.fail ("CLI not found at " ^ cli);
  (* stdout is a pipe whose read end is already closed: the first
     flush past the channel buffer hits EPIPE. The process must exit
     with the typed input-error code, not die on SIGPIPE. *)
  let r, w = Unix.pipe () in
  Unix.close r;
  let dev_null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let pid =
    Unix.create_process cli
      [| cli; "generate"; "-c"; "gnp"; "-n"; "300" |]
      Unix.stdin w dev_null
  in
  Unix.close w;
  Unix.close dev_null;
  let _, status = Unix.waitpid [] pid in
  match status with
  | Unix.WEXITED 4 -> ()
  | Unix.WEXITED c -> Alcotest.failf "expected exit 4, got exit %d" c
  | Unix.WSIGNALED s -> Alcotest.failf "killed by signal %d (SIGPIPE leak?)" s
  | Unix.WSTOPPED s -> Alcotest.failf "stopped by signal %d" s

let () =
  Alcotest.run "serve"
    [
      ( "round-trip",
        [
          Alcotest.test_case "solve round trip" `Quick test_round_trip;
          Alcotest.test_case "observability endpoints" `Quick test_endpoints;
          Alcotest.test_case "schema delta hot-swap" `Quick test_schema_delta;
        ] );
      ( "overload",
        [
          Alcotest.test_case "excess load shed under 10ms" `Quick
            test_overload_sheds_fast;
          Alcotest.test_case "watermark degrades with provenance" `Quick
            test_degrade_under_pressure;
          Alcotest.test_case "no pressure, no degradation" `Quick
            test_normal_not_degraded;
        ] );
      ( "faults",
        [
          Alcotest.test_case "handler crash poisons one connection" `Quick
            test_handler_crash_survives;
          Alcotest.test_case "torn client read survives" `Quick
            test_torn_client_survives;
          Alcotest.test_case "oversized body is typed 413" `Quick
            test_body_too_large;
          Alcotest.test_case "stalled client reaped" `Quick
            test_stalled_client_reaped;
          Alcotest.test_case "dead peer counted as epipe" `Quick
            test_epipe_counted;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "graceful drain forces stragglers" `Quick
            test_graceful_drain_forces_stragglers;
          Alcotest.test_case "broken pipe exits typed, not signaled" `Quick
            test_cli_broken_pipe_is_typed_exit;
        ] );
    ]
