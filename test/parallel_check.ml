(* parallel-smoke driver: run the CLI batch entry point over a domain
   pool (--jobs 2) on a checked-in query file, assert the answers are
   byte-identical to the sequential run (--jobs 1), and validate the
   merged trace stream and metrics snapshot.  Usage:
     parallel_check CLI FIXTURE QUERIES TRACE_OUT METRICS_OUT OUT SEQ_OUT
   Exits nonzero with a diagnostic on any violation, failing the dune
   rule (and hence runtest). *)

let fail fmt =
  Printf.ksprintf (fun s -> prerr_endline ("parallel-smoke: " ^ s); exit 1) fmt

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let () =
  let cli, fixture, queries, trace_out, metrics_out, out, seq_out =
    match Sys.argv with
    | [| _; a; b; c; d; e; f; g |] -> (a, b, c, d, e, f, g)
    | _ ->
      fail "usage: parallel_check CLI FIXTURE QUERIES TRACE_OUT METRICS_OUT OUT SEQ_OUT"
  in
  let solve ~jobs ~observe stdout_to =
    let cmd =
      Printf.sprintf "%s solve %s --queries %s --jobs %d%s > %s"
        (Filename.quote cli) (Filename.quote fixture) (Filename.quote queries)
        jobs
        (if observe then
           Printf.sprintf " --trace %s --metrics %s" (Filename.quote trace_out)
             (Filename.quote metrics_out)
         else "")
        (Filename.quote stdout_to)
    in
    let code = Sys.command cmd in
    if code <> 0 then fail "CLI (--jobs %d) exited %d on the fixture" jobs code
  in
  solve ~jobs:2 ~observe:true out;
  solve ~jobs:1 ~observe:false seq_out;
  let answers = read_file out in
  if answers = "" then fail "batch produced no output";
  if answers <> read_file seq_out then
    fail "--jobs 2 answers differ from --jobs 1";
  let trace = read_file trace_out in
  (match Observe.Export.validate_ndjson_string trace with
  | Error e -> fail "invalid merged trace stream: %s" e
  | Ok 0 -> fail "merged trace stream is empty"
  | Ok _ -> ());
  (* Shape: the compile span with the classifier under it, plus the
     per-query spans and their ladder rungs, all merged from the
     worker forks into one valid stream. *)
  List.iter
    (fun needle ->
      if not (contains trace needle) then
        fail "merged trace stream lacks %s" needle)
    [
      "\"name\":\"compile\"";
      "\"name\":\"classify\"";
      "\"name\":\"query\"";
      "\"name\":\"rung:";
    ];
  match Observe.Export.validate_metrics_string (read_file metrics_out) with
  | Error e -> fail "invalid metrics snapshot: %s" e
  | Ok _ -> ()
