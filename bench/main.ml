(* Benchmark and reproduction harness.

   The paper is a theory paper: its "evaluation" artifacts are Figures
   1-11 and the complexity theorems. This executable regenerates all of
   them:

     figures  — re-validate every figure instance against the claims
                the text makes about it (PASS/FAIL table);
     tables   — statistical tables: Theorem 1 agreement rates, duality
                (Corollary 1), class containments (Corollary 2/H1),
                solution-quality comparison (Q2), Yannakakis payoff (Y1);
     scaling  — timing series: Algorithm 1/2 polynomial growth (T4/T5),
                exact-DP exponential growth in the terminal count (T2,
                Q1 crossover);
     micro    — Bechamel micro-benchmarks, one Test.make per
                experiment id.

   Run everything:      dune exec bench/main.exe
   Run one section:     dune exec bench/main.exe -- figures
   See EXPERIMENTS.md for the experiment index and expected shapes. *)

open Graphs
open Bipartite
open Steiner

(* Every section derives its randomness through this one helper (shared
   with examples/steiner_playground.ml via Workloads.Rng.for_trial), so
   a given trial of a given experiment is reproducible run to run and
   independent of what other sections consumed before it. *)
let trial ~section t = Workloads.Rng.for_trial ~section ~trial:t

let header title = Printf.printf "\n==== %s ====\n%!" title

(* ------------------------------------------------------------------ *)
(* Section: figures                                                    *)
(* ------------------------------------------------------------------ *)

let check_row exp claim ok =
  Printf.printf "%-6s %-66s %s\n" exp claim (if ok then "PASS" else "FAIL");
  ok

let figures_section () =
  header "figure reproduction (paper claim -> measured)";
  let all_ok = ref true in
  let row e c ok = all_ok := check_row e c ok && !all_ok in
  let module F = Datamodel.Figures in
  (* F1 *)
  let interps =
    Datamodel.Er.interpretations ~k:3 F.fig1_er ~objects:F.fig1_query
  in
  row "F1" "query {EMPLOYEE, DATE} has >= 2 interpretations"
    (List.length interps >= 2);
  row "F1" "minimal interpretation discloses no auxiliary object"
    (match interps with
    | first :: _ -> List.sort compare first = [ "DATE"; "EMPLOYEE" ]
    | [] -> false);
  row "F1" "second interpretation routes through WORKS"
    (match interps with _ :: s :: _ -> List.mem "WORKS" s | _ -> false);
  (* F2 *)
  let g2 = F.fig2.F.graph in
  row "F2" "H1 alpha-acyclic but dual H2 alpha-cyclic (Corollary 1 boundary)"
    (Hypergraphs.Gyo.alpha_acyclic (Correspond.h1_exn g2)
    && not (Hypergraphs.Gyo.alpha_acyclic (Correspond.h2_exn g2)));
  (* F3/F4 *)
  let deg g = Hypergraphs.Acyclicity.degree (Correspond.h1_exn g) in
  row "F3a" "forest, Berge-acyclic H1 (Fig 4a)"
    (Mn_chordality.is_41_chordal F.fig3a.F.graph
    && deg F.fig3a.F.graph = Hypergraphs.Acyclicity.Berge_acyclic);
  row "F3b" "(6,2)-chordal, gamma-acyclic H1 (Fig 4b)"
    (Mn_chordality.is_62_chordal F.fig3b.F.graph
    && deg F.fig3b.F.graph = Hypergraphs.Acyclicity.Gamma_acyclic);
  row "F3c" "(6,1)- not (6,2)-chordal, beta-acyclic H1 (Fig 4c)"
    (Mn_chordality.is_61_chordal F.fig3c.F.graph
    && (not (Mn_chordality.is_62_chordal F.fig3c.F.graph))
    && deg F.fig3c.F.graph = Hypergraphs.Acyclicity.Beta_acyclic);
  let u3c = Bigraph.ugraph F.fig3c.F.graph in
  row "F3c" "pseudo-Steiner (min V2) tree over {A,B,E} that is not Steiner"
    (Cover.is_cover u3c ~p:F.fig3c_p F.fig3c_pseudo_nodes
    &&
    match Dreyfus_wagner.optimum_nodes u3c ~terminals:F.fig3c_p with
    | Some opt -> Iset.cardinal F.fig3c_pseudo_nodes > opt
    | None -> false);
  (* F5 *)
  let g5 = F.fig5.F.graph in
  row "F5" "chordal+conformal on both sides yet not (6,1)-chordal"
    (Side_properties.alpha_side g5 Bigraph.V1
    && Side_properties.alpha_side g5 Bigraph.V2
    && not (Mn_chordality.is_61_chordal g5));
  (* F6 *)
  let red6 = Reductions.theorem2 F.fig6_x3c in
  row "F6" "X3C instance solvable and Steiner fits the 4q+1 budget"
    (X3c.solve F.fig6_x3c <> None && Reductions.steiner_within_budget red6);
  row "F6" "reduction gadget is V2-chordal V2-conformal"
    (Reductions.theorem2_gadget_ok red6);
  (* F8 *)
  let u8 = Bigraph.ugraph F.fig8.F.graph in
  row "F8" "nonredundant cover of {A,C,D} that is not minimum"
    (Cover.is_nonredundant_cover u8 ~p:F.fig8_p F.fig8_nonredundant
    &&
    match
      Cover.minimum_cover_size_brute u8 ~within:(Ugraph.nodes u8) ~p:F.fig8_p
    with
    | Some m -> Iset.cardinal F.fig8_nonredundant > m
    | None -> false);
  (* F9 *)
  row "F9" "CSPC on chordal input = pseudo-Steiner V2 on reduction"
    (Reductions.fig9_equivalence_holds F.fig9_chordal_input
       ~terminals:(Iset.of_list [ 0; 4 ]));
  (* F10 *)
  row "F10" "(6,1)-chordal graph with a nonredundant non-minimum path"
    (Mn_chordality.is_61_chordal F.fig10.F.graph
    && Cover.nonredundant_nonminimum_pair (Bigraph.ugraph F.fig10.F.graph)
       <> None);
  (* F11 *)
  let u11 = Bigraph.ugraph F.fig11.F.graph in
  let case_fails first =
    match (F.fig11_bad_terminals ~first, F.index_of_name F.fig11 first) with
    | Some p, Some v -> not (Good_ordering.is_good_for u11 ~order:[ v ] ~p)
    | _ -> false
  in
  row "F11" "Theorem 6: all four ordering case classes fail"
    (List.for_all case_fails [ "A"; "B"; "1"; "2" ]);
  row "F11" "Fig 11 graph is (6,1)- but not (6,2)-chordal"
    (Mn_chordality.is_61_chordal F.fig11.F.graph
    && not (Mn_chordality.is_62_chordal F.fig11.F.graph));
  Printf.printf "-- figures: %s\n"
    (if !all_ok then "ALL CLAIMS REPRODUCED" else "SOME CLAIMS FAILED");
  (* Emit DOT renderings of every figure instance as artifacts. *)
  let dir = "_artifacts" in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  List.iter
    (fun (id, l) ->
      let g = l.F.graph in
      let dot =
        Graphs.Dot.of_bipartite_like ~name:l.F.title
          ~left_labels:(fun i -> l.F.left_names.(i))
          ~right_labels:(fun j -> l.F.right_names.(j))
          ~nl:(Bigraph.nl g) ~nr:(Bigraph.nr g) (Bigraph.edges g)
      in
      let oc = open_out (Filename.concat dir (id ^ ".dot")) in
      output_string oc dot;
      close_out oc)
    F.all_labeled;
  Printf.printf "   (DOT renderings written to %s/)\n" dir

(* ------------------------------------------------------------------ *)
(* Section: tables                                                     *)
(* ------------------------------------------------------------------ *)

(* T1: Theorem 1 equivalence agreement rates on random bipartite
   graphs (fast hypergraph recognisers vs brute-force definitions). *)
let table_t1 () =
  header "T1: Theorem 1 equivalences on random bipartite graphs";
  let trials = 400 in
  let agree_i = ref 0 and agree_ii = ref 0 and agree_iii = ref 0 in
  let agree_v = ref 0 and total = ref 0 in
  for seed = 0 to trials - 1 do
    let rng = trial ~section:"t1" seed in
    let nl = 2 + Workloads.Rng.int rng 4 and nr = 1 + Workloads.Rng.int rng 4 in
    let g = Workloads.Gen_bipartite.gnp rng ~nl ~nr ~p:0.5 in
    let isolated =
      List.exists
        (fun j -> Iset.is_empty (Bigraph.left_neighbors g j))
        (List.init (Bigraph.nr g) (fun j -> j))
    in
    if not isolated then begin
      incr total;
      let h1 = Correspond.h1_exn g in
      if
        Mn_chordality.is_mn_chordal_brute g ~m:4 ~n:1
        = Hypergraphs.Berge.acyclic h1
      then incr agree_i;
      if
        Mn_chordality.is_mn_chordal_brute g ~m:6 ~n:2
        = Hypergraphs.Gamma.acyclic h1
      then incr agree_ii;
      if
        Mn_chordality.is_mn_chordal_brute g ~m:6 ~n:1
        = Hypergraphs.Beta.acyclic h1
      then incr agree_iii;
      if
        (Side_properties.chordal_brute g Bigraph.V2
        && Side_properties.conformal_brute g Bigraph.V2)
        = Hypergraphs.Gyo.alpha_acyclic h1
      then incr agree_v
    end
  done;
  Printf.printf "statement                          agreement (paper: 100%%)\n";
  Printf.printf "(i)   (4,1) <-> Berge(H1)          %d/%d\n" !agree_i !total;
  Printf.printf "(ii)  (6,2) <-> gamma(H1)          %d/%d\n" !agree_ii !total;
  Printf.printf "(iii) (6,1) <-> beta(H1)           %d/%d\n" !agree_iii !total;
  Printf.printf "(v)   V2-ch+conf <-> alpha(H1)     %d/%d\n" !agree_v !total

(* C1: self-duality of Berge/gamma/beta; alpha's failure rate. *)
let table_c1 () =
  header "C1: Corollary 1 duality on random hypergraphs";
  let trials = 500 in
  let ok_b = ref 0 and ok_g = ref 0 and ok_be = ref 0 in
  let alpha_breaks = ref 0 and alpha_cases = ref 0 in
  for seed = 0 to trials - 1 do
    let rng = trial ~section:"c1" seed in
    let h =
      Workloads.Gen_hyper.random rng
        ~n_nodes:(2 + Workloads.Rng.int rng 5)
        ~n_edges:(1 + Workloads.Rng.int rng 5)
        ~max_size:4
    in
    let d = Hypergraphs.Hypergraph.dual h in
    if Hypergraphs.Berge.acyclic h = Hypergraphs.Berge.acyclic d then incr ok_b;
    if Hypergraphs.Gamma.acyclic h = Hypergraphs.Gamma.acyclic d then incr ok_g;
    if Hypergraphs.Beta.acyclic h = Hypergraphs.Beta.acyclic d then incr ok_be;
    if Hypergraphs.Gyo.alpha_acyclic h then begin
      incr alpha_cases;
      if not (Hypergraphs.Gyo.alpha_acyclic d) then incr alpha_breaks
    end
  done;
  Printf.printf "Berge self-dual: %d/%d   gamma: %d/%d   beta: %d/%d\n" !ok_b
    trials !ok_g trials !ok_be trials;
  Printf.printf
    "alpha NOT self-dual: dual cyclic for %d of %d alpha-acyclic inputs\n"
    !alpha_breaks !alpha_cases

(* H1: empirical census across the hierarchy. *)
let table_h1 () =
  header "H1: acyclicity hierarchy census on random hypergraphs";
  let trials = 1500 in
  let counts = Hashtbl.create 8 in
  let bump k =
    Hashtbl.replace counts k
      (1 + try Hashtbl.find counts k with Not_found -> 0)
  in
  let violations = ref 0 in
  for seed = 0 to trials - 1 do
    let rng = trial ~section:"h1" seed in
    let h =
      Workloads.Gen_hyper.random rng
        ~n_nodes:(2 + Workloads.Rng.int rng 5)
        ~n_edges:(1 + Workloads.Rng.int rng 5)
        ~max_size:4
    in
    let r = Hypergraphs.Acyclicity.report h in
    if not (Hypergraphs.Acyclicity.hierarchy_consistent r) then incr violations;
    bump (Hypergraphs.Acyclicity.degree_name (Hypergraphs.Acyclicity.degree h))
  done;
  List.iter
    (fun k ->
      Printf.printf "%-15s %d\n" k
        (try Hashtbl.find counts k with Not_found -> 0))
    [
      "Berge-acyclic"; "gamma-acyclic"; "beta-acyclic"; "alpha-acyclic";
      "cyclic";
    ];
  Printf.printf "hierarchy violations: %d (paper: 0)\n" !violations

(* Q2: solution quality across classes. *)
let table_q2 () =
  header "Q2: solution quality (node counts; ratio vs exact optimum)";
  let run name gen_graph trials =
    let alg2_total = ref 0 and approx_total = ref 0 and opt_total = ref 0 in
    let ls_total = ref 0 in
    let alg2_exact = ref 0 and cases = ref 0 in
    let attempt = ref 0 in
    while !cases < trials && !attempt < trials * 20 do
      let rng = trial ~section:("q2-" ^ name) !attempt in
      incr attempt;
      let g = gen_graph rng in
      let u = Bigraph.ugraph g in
      let p = Workloads.Gen_bipartite.random_terminals rng g ~k:4 in
      if Iset.cardinal p >= 2 then
        match
          ( Algorithm2.solve u ~p,
            Dreyfus_wagner.optimum_nodes u ~terminals:p,
            Mst_approx.solve u ~terminals:p,
            Local_search.solve ~iterations:60 ~seed:!attempt u ~terminals:p )
        with
        | Some a, Some opt, Some ap, Some ls ->
          incr cases;
          alg2_total := !alg2_total + Tree.node_count a;
          approx_total := !approx_total + Tree.node_count ap;
          ls_total := !ls_total + Tree.node_count ls;
          opt_total := !opt_total + opt;
          if Tree.node_count a = opt then incr alg2_exact
        | _ -> ()
    done;
    Printf.printf
      "%-22s cases=%-4d alg2/opt=%.4f  approx/opt=%.4f  local/opt=%.4f  alg2 exact on %d/%d\n"
      name !cases
      (float_of_int !alg2_total /. float_of_int !opt_total)
      (float_of_int !approx_total /. float_of_int !opt_total)
      (float_of_int !ls_total /. float_of_int !opt_total)
      !alg2_exact !cases
  in
  run "(6,2)-chordal"
    (fun rng -> Workloads.Gen_bipartite.chordal_62 rng ~n_right:7 ~max_size:4)
    120;
  run "alpha-acyclic"
    (fun rng ->
      Workloads.Gen_bipartite.alpha_bipartite rng ~n_right:6 ~max_size:3)
    120;
  run "random bipartite"
    (fun rng -> Workloads.Gen_bipartite.gnp rng ~nl:7 ~nr:7 ~p:0.3)
    120;
  Printf.printf
    "(expected shape: ratio 1.0000 and all-exact on (6,2); >= 1 elsewhere)\n"

(* C0: classify the realistic-schema corpus. *)
let table_c0 () =
  header "C0: realistic schema corpus census";
  Printf.printf "%-12s %-15s %s\n" "schema" "degree" "recommendation";
  List.iter
    (fun (name, schema) ->
      let profile = Datamodel.Schema.profile schema in
      Printf.printf "%-12s %-15s %s\n" name
        (Hypergraphs.Acyclicity.degree_name (Datamodel.Schema.acyclicity schema))
        (Classify.recommendation_name (Classify.recommend profile)))
    Datamodel.Corpus.all

(* P1: where do schemas sit? Probability of each chordality class as
   edge density grows (random bipartite graphs, 6+5 nodes). *)
let table_p1 () =
  header "P1: chordality-class phase profile vs edge density";
  Printf.printf "%8s %10s %10s %10s %14s %10s\n" "p" "(4,1)" "(6,2)" "(6,1)"
    "alpha(H1)" "cyclic";
  List.iter
    (fun p10 ->
      let p = float_of_int p10 /. 10.0 in
      let trials = 300 in
      let c41 = ref 0 and c62 = ref 0 and c61 = ref 0 in
      let calpha = ref 0 and ccyc = ref 0 in
      for seed = 0 to trials - 1 do
        let rng = trial ~section:(Printf.sprintf "p1-%d" p10) seed in
        let g = Workloads.Gen_bipartite.gnp rng ~nl:6 ~nr:5 ~p in
        let profile = Classify.profile g in
        if profile.Classify.chordal_41 then incr c41;
        if profile.Classify.chordal_62 then incr c62;
        if profile.Classify.chordal_61 then incr c61;
        if profile.Classify.alpha_h1 then incr calpha;
        if not profile.Classify.alpha_h1 then incr ccyc
      done;
      Printf.printf "%8.1f %10d %10d %10d %14d %10d\n" p !c41 !c62 !c61
        !calpha !ccyc)
    [ 1; 2; 3; 4; 5; 7 ];
  Printf.printf
    "(shape: the classes collapse quickly with density - the guarantees of\n\
    \ Section 3 are a sparse-schema phenomenon, which real schemas are)\n"

(* W1: random attribute-pair query workloads over the realistic
   corpus: mean connection size and ambiguity rate. *)
let table_w1 () =
  header "W1: query workloads over the corpus (100 random 2-attribute queries)";
  Printf.printf "%-12s %14s %14s %12s\n" "schema" "answerable" "mean size"
    "unambiguous";
  List.iter
    (fun (name, schema) ->
      let attrs = Datamodel.Schema.attributes schema in
      let rng = trial ~section:("w1-" ^ name) 0 in
      let answerable = ref 0 and size_total = ref 0 and unamb = ref 0 in
      for _ = 1 to 100 do
        let objects = Workloads.Rng.sample rng 2 attrs in
        match Datamodel.Query.minimal_connection schema ~objects with
        | Ok c ->
          incr answerable;
          size_total := !size_total + List.length c.Datamodel.Query.objects;
          (match Datamodel.Query.is_unambiguous schema ~objects with
          | Ok true -> incr unamb
          | Ok false | Error _ -> ())
        | Error _ -> ()
      done;
      Printf.printf "%-12s %11d/100 %14.2f %9d/%d\n" name !answerable
        (if !answerable = 0 then 0.0
         else float_of_int !size_total /. float_of_int !answerable)
        !unamb !answerable)
    Datamodel.Corpus.all
  [@@warning "-26"]

(* Y1: acyclicity payoff for query evaluation. *)
let table_y1 () =
  header "Y1: Yannakakis vs naive join on a chain schema";
  let make_db rng n_rows =
    let rels =
      List.init 4 (fun j ->
          let a = Printf.sprintf "a%d" j
          and b = Printf.sprintf "a%d" (j + 1) in
          let rows =
            List.init n_rows (fun _ ->
                [
                  string_of_int (Workloads.Rng.int rng 8);
                  string_of_int (Workloads.Rng.int rng 8);
                ])
          in
          (Printf.sprintf "r%d" j, Relalg.Relation.make ~attrs:[ a; b ] rows))
    in
    Relalg.Database.make rels
  in
  List.iter
    (fun n_rows ->
      let rng = trial ~section:"y1" n_rows in
      let db = make_db rng n_rows in
      let output = [ "a0"; "a4" ] in
      let time f =
        let t0 = Sys.time () in
        let r = f () in
        (r, (Sys.time () -. t0) *. 1000.0)
      in
      let ok_rel = function
        | Ok r -> r
        | Error e -> failwith (Runtime.Errors.to_string e)
      in
      let ry, ty =
        time (fun () -> ok_rel (Relalg.Yannakakis.evaluate db ~output))
      in
      let rn, tn =
        time (fun () -> ok_rel (Relalg.Yannakakis.evaluate_naive db ~output))
      in
      Printf.printf
        "rows/rel=%-5d yannakakis %8.2f ms   naive %8.2f ms   agree=%b\n"
        n_rows ty tn
        (Relalg.Relation.equal ry rn))
    [ 50; 150; 400 ]

(* ------------------------------------------------------------------ *)
(* Section: scaling                                                    *)
(* ------------------------------------------------------------------ *)

let time_ms f =
  let t0 = Sys.time () in
  let reps = ref 0 in
  while Sys.time () -. t0 < 0.04 do
    ignore (Sys.opaque_identity (f ()));
    incr reps
  done;
  (Sys.time () -. t0) *. 1000.0 /. float_of_int !reps

(* T4: Algorithm 1 runtime vs instance size (paper: O(|V| * |A|)). *)
let scaling_t4 () =
  header "T4: Algorithm 1 scaling on alpha-acyclic instances";
  Printf.printf "%8s %8s %8s %12s %16s\n" "n_right" "|V|" "|A|" "ms/query"
    "ms/(V*A) * 1e3";
  List.iter
    (fun n_right ->
      let rng = trial ~section:"t4" n_right in
      let g =
        Workloads.Gen_bipartite.alpha_bipartite rng ~n_right ~max_size:5
      in
      let p = Workloads.Gen_bipartite.random_terminals rng g ~k:5 in
      let v = Bigraph.n g and a = Bigraph.m g in
      let ms = time_ms (fun () -> Algorithm1.solve g ~p) in
      Printf.printf "%8d %8d %8d %12.3f %16.4f\n" n_right v a ms
        (ms *. 1e3 /. float_of_int (v * a)))
    [ 10; 20; 40; 80; 160 ]

(* T5: Algorithm 2 scaling on (6,2)-chordal instances. *)
let scaling_t5 () =
  header "T5: Algorithm 2 scaling on (6,2)-chordal instances";
  Printf.printf "%8s %8s %8s %12s %16s\n" "n_right" "|V|" "|A|" "ms/query"
    "ms/(V*A) * 1e3";
  List.iter
    (fun n_right ->
      let rng = trial ~section:"t5" n_right in
      let g = Workloads.Gen_bipartite.chordal_62 rng ~n_right ~max_size:5 in
      let u = Bigraph.ugraph g in
      let p = Workloads.Gen_bipartite.random_terminals rng g ~k:5 in
      let v = Bigraph.n g and a = Bigraph.m g in
      let ms = time_ms (fun () -> Algorithm2.solve u ~p) in
      Printf.printf "%8d %8d %8d %12.3f %16.4f\n" n_right v a ms
        (ms *. 1e3 /. float_of_int (v * a)))
    [ 10; 20; 40; 80; 160 ]

(* Q1: the polynomial/exponential crossover. *)
let scaling_q1 () =
  header "Q1: exact DP vs Algorithm 2 as terminals grow ((6,2)-chordal)";
  let rng = trial ~section:"q1" 0 in
  let g = Workloads.Gen_bipartite.chordal_62 rng ~n_right:30 ~max_size:4 in
  let u = Bigraph.ugraph g in
  Printf.printf "%10s %14s %14s %8s\n" "terminals" "alg2 ms" "exact ms" "same?";
  List.iter
    (fun k ->
      let p = Workloads.Gen_bipartite.random_terminals (trial ~section:"q1-terminals" k) g ~k in
      if Iset.cardinal p >= 2 then begin
        let t_alg2 = time_ms (fun () -> Algorithm2.solve u ~p) in
        let t_dw = time_ms (fun () -> Dreyfus_wagner.solve u ~terminals:p) in
        let same =
          match
            ( Algorithm2.solve u ~p,
              Dreyfus_wagner.optimum_nodes u ~terminals:p )
          with
          | Some t, Some opt -> Tree.node_count t = opt
          | _ -> false
        in
        Printf.printf "%10d %14.3f %14.3f %8b\n" k t_alg2 t_dw same
      end)
    [ 2; 4; 6; 8; 10; 12 ];
  Printf.printf
    "(expected shape: alg2 flat; exact grows exponentially in terminals)\n"

(* T2: exact Steiner on Theorem 2 gadgets as q grows. *)
let scaling_t2 () =
  header "T2: exact Steiner on Theorem 2 gadgets (3q+1 terminals)";
  Printf.printf "%4s %10s %10s %12s\n" "q" "terminals" "budget" "ms";
  List.iter
    (fun q ->
      let rng = trial ~section:"t2" q in
      let inst = Workloads.Gen_x3c.planted rng ~q ~distractors:q in
      let red = Reductions.theorem2 inst in
      let t0 = Sys.time () in
      let ok = Reductions.steiner_within_budget red in
      let ms = (Sys.time () -. t0) *. 1000.0 in
      Printf.printf "%4d %10d %10d %12.1f  (solvable=%b)\n" q
        (Iset.cardinal red.Reductions.terminals)
        red.Reductions.budget ms ok)
    [ 2; 3; 4; 5 ]

(* ------------------------------------------------------------------ *)
(* Section: ablations                                                  *)
(* ------------------------------------------------------------------ *)

(* A1: the single-pass elimination exactly as printed in the paper vs
   the fixpoint re-scan this implementation uses (DESIGN.md section 7):
   how often does one pass strand a redundant node, and what does it
   cost in solution size? *)
let ablation_a1 () =
  header "A1: single-pass vs fixpoint elimination ((6,2)-chordal inputs)";
  let trials = 400 in
  let nonoptimal_once = ref 0 and redundant_once = ref 0 in
  let nonoptimal_fix = ref 0 and cases = ref 0 in
  let extra_nodes = ref 0 in
  let attempt = ref 0 in
  while !cases < trials && !attempt < trials * 10 do
    let rng = trial ~section:"a1" !attempt in
    incr attempt;
    let g = Workloads.Gen_bipartite.chordal_62 rng ~n_right:6 ~max_size:3 in
    let u = Bigraph.ugraph g in
    let p = Workloads.Gen_bipartite.random_terminals rng g ~k:3 in
    let order =
      Workloads.Rng.shuffle rng (Iset.elements (Ugraph.nodes u))
    in
    if Iset.cardinal p >= 2 then
      match
        (Graphs.Traverse.component_containing u p,
         Dreyfus_wagner.optimum_nodes u ~terminals:p)
      with
      | Some comp, Some opt ->
        incr cases;
        let once = Cover.eliminate_redundant_once ~order u ~within:comp ~p in
        let fixp = Cover.eliminate_redundant ~order u ~within:comp ~p in
        if not (Cover.is_nonredundant_cover u ~p once) then incr redundant_once;
        if Iset.cardinal once <> opt then begin
          incr nonoptimal_once;
          extra_nodes := !extra_nodes + Iset.cardinal once - opt
        end;
        if Iset.cardinal fixp <> opt then incr nonoptimal_fix
      | _ -> ()
  done;
  Printf.printf
    "single pass (paper text): redundant result on %d/%d, non-optimal on %d/%d (+%d nodes total)
"
    !redundant_once !cases !nonoptimal_once !cases !extra_nodes;
  Printf.printf "fixpoint (this impl):     non-optimal on %d/%d (Theorem 5: 0 expected)
"
    !nonoptimal_fix !cases

(* A2: four independent (6,1) recognisers, timed on growing chordal-
   bipartite instances built from gamma-acyclic hypergraphs. *)
let ablation_a2 () =
  header "A2: (6,1) recognisers (beta(H1) vs bisimplicial vs doubly-lex)";
  Printf.printf "%8s %8s %14s %18s %16s\n" "|V|" "|A|" "beta(H1) ms"
    "bisimplicial ms" "doubly-lex ms";
  List.iter
    (fun n_right ->
      let rng = trial ~section:"a2" n_right in
      let g = Workloads.Gen_bipartite.chordal_62 rng ~n_right ~max_size:4 in
      let t_beta = time_ms (fun () -> Mn_chordality.is_61_chordal g) in
      let t_bis =
        time_ms (fun () -> Mn_chordality.is_61_chordal_bisimplicial g)
      in
      let t_dlex = time_ms (fun () -> Doubly_lex.is_61_chordal_doubly_lex g) in
      Printf.printf "%8d %8d %14.3f %18.3f %16.3f\n" (Bigraph.n g)
        (Bigraph.m g) t_beta t_bis t_dlex)
    [ 8; 16; 32; 64 ]

(* A3: GYO vs MCS alpha-acyclicity tests. *)
let ablation_a3 () =
  header "A3: alpha-acyclicity recognisers (GYO vs MCS)";
  Printf.printf "%8s %8s %12s %12s %8s
" "edges" "nodes" "GYO ms" "MCS ms" "agree";
  List.iter
    (fun n_edges ->
      let rng = trial ~section:"a3" n_edges in
      let h = Workloads.Gen_hyper.alpha_acyclic rng ~n_edges ~max_size:5 in
      let t_gyo = time_ms (fun () -> Hypergraphs.Gyo.alpha_acyclic h) in
      let t_mcs = time_ms (fun () -> Hypergraphs.Mcs.alpha_acyclic h) in
      Printf.printf "%8d %8d %12.3f %12.3f %8b
" n_edges
        (Hypergraphs.Hypergraph.n_nodes h) t_gyo t_mcs
        (Hypergraphs.Gyo.alpha_acyclic h = Hypergraphs.Mcs.alpha_acyclic h))
    [ 10; 20; 40; 80 ]

(* D1: the dialogue's point — proposing interpretations smallest-first
   minimises expected concept disclosure under an "immediate reading"
   intent prior (geometric over the ranked list), versus proposing the
   same candidate set in random order. *)
let ablation_d1 () =
  header "D1: ranked vs random proposal order (expected disclosures)";
  let trials = 150 in
  let ranked_total = ref 0 and random_total = ref 0 and cases = ref 0 in
  for seed = 0 to trials - 1 do
    let rng = trial ~section:"d1" seed in
    let h = Workloads.Gen_hyper.gamma_acyclic rng ~n_edges:5 ~max_size:3 in
    let attr i = Printf.sprintf "a%d" i in
    let schema =
      Datamodel.Schema.make
        (Array.to_list (Hypergraphs.Hypergraph.edges h)
        |> List.mapi (fun j e ->
               (Printf.sprintf "r%d" j, List.map attr (Iset.elements e))))
    in
    let attrs = Datamodel.Schema.attributes schema in
    let objects = Workloads.Rng.sample rng 2 attrs in
    let candidates =
      Datamodel.Query.interpretations ~k:6 schema ~objects
    in
    if List.length candidates >= 2 then begin
      incr cases;
      (* Geometric intent prior over the ranked candidates. *)
      let rec pick i = function
        | [ last ] -> (i, last)
        | c :: rest ->
          if Workloads.Rng.bool rng 0.6 then (i, c) else pick (i + 1) rest
        | [] -> assert false
      in
      let _, target = pick 0 candidates in
      let disclosures order =
        let rec go acc = function
          | [] -> acc
          | c :: rest ->
            let acc =
              acc + List.length c.Datamodel.Query.auxiliary
            in
            if c == target then acc else go acc rest
        in
        go 0 order
      in
      ranked_total := !ranked_total + disclosures candidates;
      random_total :=
        !random_total + disclosures (Workloads.Rng.shuffle rng candidates)
    end
  done;
  Printf.printf
    "cases=%d  ranked (paper's procedure): %.2f concepts  random order: %.2f concepts\n"
    !cases
    (float_of_int !ranked_total /. float_of_int !cases)
    (float_of_int !random_total /. float_of_int !cases)

(* A4: cost of ranked interpretation enumeration as k grows. *)
let ablation_a4 () =
  header "A4: k-best connection enumeration cost";
  let rng = trial ~section:"a4" 0 in
  let g = Workloads.Gen_bipartite.gnp rng ~nl:9 ~nr:9 ~p:0.3 in
  let u = Bigraph.ugraph g in
  let p = Workloads.Gen_bipartite.random_terminals rng g ~k:3 in
  Printf.printf "%6s %10s %12s
" "k" "found" "ms";
  List.iter
    (fun k ->
      let found = ref 0 in
      let ms =
        time_ms (fun () ->
            let trees = Kbest.enumerate ~max_trees:k u ~terminals:p in
            found := List.length trees;
            trees)
      in
      Printf.printf "%6d %10d %12.3f
" k !found ms)
    [ 1; 2; 4; 8; 16 ]

(* ------------------------------------------------------------------ *)
(* Section: micro (Bechamel)                                           *)
(* ------------------------------------------------------------------ *)

let micro_tests () =
  let open Bechamel in
  let rng = trial ~section:"micro" 0 in
  let g62 = Workloads.Gen_bipartite.chordal_62 rng ~n_right:40 ~max_size:4 in
  let u62 = Bigraph.ugraph g62 in
  let p62 = Workloads.Gen_bipartite.random_terminals (trial ~section:"micro-terminals" 1) g62 ~k:5 in
  let galpha =
    Workloads.Gen_bipartite.alpha_bipartite rng ~n_right:40 ~max_size:4
  in
  let palpha =
    Workloads.Gen_bipartite.random_terminals (trial ~section:"micro-terminals" 2) galpha ~k:5
  in
  let gnp = Workloads.Gen_bipartite.gnp rng ~nl:12 ~nr:12 ~p:0.3 in
  let pnp = Workloads.Gen_bipartite.random_terminals (trial ~section:"micro-terminals" 3) gnp ~k:5 in
  let unp = Bigraph.ugraph gnp in
  let h_rand =
    Workloads.Gen_hyper.random rng ~n_nodes:20 ~n_edges:12 ~max_size:5
  in
  let chordal_g = Workloads.Gen_graph.random_chordal rng ~n:60 ~max_clique:5 in
  let x3c = Workloads.Gen_x3c.planted rng ~q:3 ~distractors:3 in
  let red = Reductions.theorem2 x3c in
  let db_rng = trial ~section:"micro-db" 0 in
  let db =
    Relalg.Database.make
      (List.init 4 (fun j ->
           let a = Printf.sprintf "a%d" j
           and b = Printf.sprintf "a%d" (j + 1) in
           ( Printf.sprintf "r%d" j,
             Relalg.Relation.make ~attrs:[ a; b ]
               (List.init 120 (fun _ ->
                    [
                      string_of_int (Workloads.Rng.int db_rng 10);
                      string_of_int (Workloads.Rng.int db_rng 10);
                    ])) )))
  in
  [
    Test.make ~name:"T1/classify-profile"
      (Staged.stage (fun () -> Classify.profile gnp));
    Test.make ~name:"T4/algorithm1"
      (Staged.stage (fun () -> Algorithm1.solve galpha ~p:palpha));
    Test.make ~name:"T5/algorithm2"
      (Staged.stage (fun () -> Algorithm2.solve u62 ~p:p62));
    Test.make ~name:"T2/exact-x3c-gadget-q3"
      (Staged.stage (fun () -> Reductions.steiner_within_budget red));
    Test.make ~name:"Q1/exact-dp-5-terminals"
      (Staged.stage (fun () -> Dreyfus_wagner.solve unp ~terminals:pnp));
    Test.make ~name:"Q2/mst-approx"
      (Staged.stage (fun () -> Mst_approx.solve u62 ~terminals:p62));
    Test.make ~name:"H1/acyclicity-report"
      (Staged.stage (fun () -> Hypergraphs.Acyclicity.report h_rand));
    Test.make ~name:"S1/lexbfs-chordality"
      (Staged.stage (fun () -> Chordal.is_chordal chordal_g));
    Test.make ~name:"S2/gyo-join-tree"
      (Staged.stage (fun () ->
           Hypergraphs.Gyo.join_tree (Correspond.h1_exn g62)));
    Test.make ~name:"Y1/yannakakis"
      (Staged.stage (fun () ->
           Relalg.Yannakakis.evaluate db ~output:[ "a0"; "a4" ]));
    Test.make ~name:"Y1/naive-join"
      (Staged.stage (fun () ->
           Relalg.Yannakakis.evaluate_naive db ~output:[ "a0"; "a4" ]));
    Test.make ~name:"X1/strongly-chordal-60"
      (Staged.stage (fun () ->
           Strongly_chordal.is_strongly_chordal chordal_g));
    Test.make ~name:"X2/weighted-steiner-5t"
      (Staged.stage (fun () ->
           Weighted.solve unp ~weight:(fun v -> 1 + (v mod 3)) ~terminals:pnp));
    Test.make ~name:"X3/kbest-4"
      (Staged.stage (fun () ->
           Kbest.enumerate ~max_trees:4 unp ~terminals:pnp));
    Test.make ~name:"X4/min-fill-decomposition"
      (Staged.stage (fun () ->
           Hypergraphs.Decomposition.of_hypergraph h_rand));
  ]

let micro_section () =
  header "micro-benchmarks (Bechamel, one per experiment id)";
  let open Bechamel in
  let open Toolkit in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.3) ~kde:None () in
  Printf.printf "%-28s %14s\n" "experiment" "ns/run";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analyzed = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> Printf.printf "%-28s %14.0f\n" name est
          | Some _ | None -> Printf.printf "%-28s %14s\n" name "n/a")
        analyzed)
    (micro_tests ());
  Printf.printf "%!"

(* ------------------------------------------------------------------ *)
(* Section: kernels                                                    *)
(* ------------------------------------------------------------------ *)

(* Old-vs-new timing for the flat CSR/bitset kernel layer: every ported
   algorithm is timed against the set-based original it replaced, on a
   small size ladder per section, and the whole trajectory is written
   as machine-readable JSON (BENCH_kernels.json by default) so runs can
   be compared across commits. [--trials k] controls repetitions per
   measurement, [--max-n k] caps the generator size parameter (the
   bench-smoke alias uses --trials 1 --max-n 64), [--json path] sets
   the output file. *)

let time_mean ~trials f =
  ignore (Sys.opaque_identity (f ()));
  let total = ref 0.0 in
  for _ = 1 to trials do
    let t0 = Sys.time () in
    let reps = ref 0 in
    let continue = ref true in
    (* With several trials, repeat until the window is long enough to
       time reliably; with --trials 1 (smoke), a single call is enough. *)
    while !continue do
      ignore (Sys.opaque_identity (f ()));
      incr reps;
      continue := trials > 1 && Sys.time () -. t0 < 0.02
    done;
    total := !total +. ((Sys.time () -. t0) *. 1000.0 /. float_of_int !reps)
  done;
  !total /. float_of_int trials

(* Shared bench envelope (schema minconn-bench/2): every BENCH_*.json
   written by this harness is
     {schema, section, commit, trials, max_n,
      entries: [{name, ns_per_op, ...extras}]}
   so one validator covers all trajectory files and downstream tooling
   parses them uniformly.  The commit id is the actual checkout at
   generation time (git rev-parse); MINCONN_COMMIT overrides it for
   drivers that bench an uncommitted tree, and "unknown" is the last
   resort outside any repository.  [domains] records how many domains
   the section used (1 for the serial sections). *)

let bench_schema = "minconn-bench/2"

let git_commit () =
  match Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" with
  | exception _ -> None
  | ic ->
    let line = try Some (input_line ic) with End_of_file -> None in
    let status = Unix.close_process_in ic in
    (match (status, line) with
    | Unix.WEXITED 0, Some c when String.trim c <> "" -> Some (String.trim c)
    | _ -> None)

let commit_id () =
  match Sys.getenv_opt "MINCONN_COMMIT" with
  | Some c when c <> "" -> c
  | _ -> ( match git_commit () with Some c -> c | None -> "unknown")

(* Entries carry scalar extras only; nested values have no place in a
   flat trajectory row. *)
let render_scalar = function
  | Observe.Json.Jnum f ->
    if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
    else Printf.sprintf "%.6f" f
  | Observe.Json.Jstr s -> Printf.sprintf "\"%s\"" (Observe.Json.escape s)
  | Observe.Json.Jbool b -> string_of_bool b
  | _ -> invalid_arg "render_scalar: scalar extras only"

let bench_json ?(domains = 1) ~section ~trials ~max_n entries =
  let b = Buffer.create 1024 in
  Printf.bprintf b "{\n  \"schema\": \"%s\",\n" bench_schema;
  Printf.bprintf b "  \"section\": \"%s\",\n" (Observe.Json.escape section);
  Printf.bprintf b "  \"commit\": \"%s\",\n"
    (Observe.Json.escape (commit_id ()));
  Printf.bprintf b "  \"domains\": %d,\n" domains;
  Printf.bprintf b "  \"trials\": %d,\n  \"max_n\": %d,\n  \"entries\": [\n"
    trials max_n;
  let last = List.length entries - 1 in
  List.iteri
    (fun i (name, ns, extras) ->
      Printf.bprintf b "    { \"name\": \"%s\", \"ns_per_op\": %.3f"
        (Observe.Json.escape name) ns;
      List.iter
        (fun (k, v) ->
          Printf.bprintf b ", \"%s\": %s" (Observe.Json.escape k)
            (render_scalar v))
        extras;
      Printf.bprintf b " }%s\n" (if i = last then "" else ","))
    entries;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

(* Envelope validator shared by every section that writes a trajectory
   file; callers exit nonzero on [Error], so bench-smoke fails loudly
   on malformed JSON. *)
let validate_bench_json path =
  let module J = Observe.Json in
  match J.parse (J.read_file path) with
  | Error msg -> Error msg
  | Ok j -> (
    let str k = match J.member k j with Some (J.Jstr s) -> Some s | _ -> None in
    match (str "schema", str "section", str "commit", J.member "entries" j) with
    | Some s, _, _, _ when s <> bench_schema -> Error ("unexpected schema: " ^ s)
    | _, _, Some "", _ -> Error "empty commit id"
    | Some _, Some sec, Some _, Some (J.Jarr entries) when entries <> [] -> (
      match J.member "domains" j with
      | Some (J.Jnum d) when d >= 1.0 && Float.is_integer d ->
        let num_ok fields k =
          match List.assoc_opt k fields with
          | Some (J.Jnum v) -> v >= 0.0
          | _ -> false
        in
        let entry_ok = function
          | J.Jobj fields -> (
            match
              (List.assoc_opt "name" fields, List.assoc_opt "ns_per_op" fields)
            with
            | Some (J.Jstr _), Some (J.Jnum ns) -> ns >= 0.0
            | _ -> false)
          | _ -> false
        in
        (* The scale section carries mandatory memory/throughput extras:
           every entry reports its peak heap, and construction entries
           additionally report edge throughput. *)
        let has_sub ~sub s =
          let n = String.length s and k = String.length sub in
          let rec go i = i + k <= n && (String.sub s i k = sub || go (i + 1)) in
          go 0
        in
        let scale_ok = function
          | J.Jobj fields ->
            num_ok fields "peak_heap_words"
            && (match List.assoc_opt "name" fields with
               | Some (J.Jstr name) ->
                 (not (has_sub ~sub:"construct" name))
                 || num_ok fields "edges_per_sec"
               | _ -> false)
          | _ -> false
        in
        if
          List.for_all entry_ok entries
          && (sec <> "scale" || List.for_all scale_ok entries)
        then Ok (List.length entries)
        else Error "malformed entry"
      | _ -> Error "missing or invalid domains field")
    | _ -> Error "missing schema/section/commit or nonempty entries")

let write_bench_json ?domains ~section ~trials ~max_n ~path entries =
  let oc = open_out path in
  output_string oc (bench_json ?domains ~section ~trials ~max_n entries);
  close_out oc;
  match validate_bench_json path with
  | Ok k ->
    Printf.printf "wrote %s (%d entries, schema %s validated)\n" path k
      bench_schema
  | Error msg ->
    Printf.eprintf "invalid JSON written to %s: %s\n" path msg;
    exit 1

(* A timed row in the shared envelope: mean_ms is kept as an extra for
   human diffing, ns_per_op is the canonical value. *)
let timed_entry ~section ~impl ~n ~m ~ms =
  ( Printf.sprintf "%s/%s/n%d" section impl n,
    ms *. 1e6,
    [
      ("impl", Observe.Json.Jstr impl);
      ("n", Observe.Json.Jnum (float_of_int n));
      ("m", Observe.Json.Jnum (float_of_int m));
      ("mean_ms", Observe.Json.Jnum ms);
    ] )


let kernels_section ~trials ~max_n ~json_path () =
  header "kernels: set-based originals vs flat CSR/bitset ports";
  Printf.printf "%-10s %-5s %6s %8s %12s\n" "section" "impl" "|V|" "|E|"
    "mean ms";
  let rows = ref [] in
  let pair ~section ~n ~m sets csr =
    let run impl f =
      let ms = time_mean ~trials f in
      Printf.printf "%-10s %-5s %6d %8d %12.4f\n%!" section impl n m ms;
      rows := !rows @ [ timed_entry ~section ~impl ~n ~m ~ms ];
      ms
    in
    let t_sets = run "sets" sets in
    let t_csr = run "csr" csr in
    (t_sets, t_csr)
  in
  let sizes l = List.filter (fun x -> x <= max_n) l in
  let largest = ref [] in
  let note section p =
    largest := (section, p) :: List.remove_assoc section !largest
  in
  List.iter
    (fun nsz ->
      let rng = trial ~section:"kernels-lexbfs" nsz in
      let g = Workloads.Gen_graph.gnp rng ~n:nsz ~p:(8.0 /. float_of_int nsz) in
      note "lexbfs"
        (pair ~section:"lexbfs" ~n:(Ugraph.n g) ~m:(Ugraph.m g)
           (fun () -> Lexbfs.lexbfs_order_sets g)
           (fun () -> Lexbfs.lexbfs_order g)))
    (sizes [ 48; 96; 192; 384 ]);
  List.iter
    (fun n_edges ->
      let rng = trial ~section:"kernels-mcs" n_edges in
      let h = Workloads.Gen_hyper.alpha_acyclic rng ~n_edges ~max_size:6 in
      note "mcs"
        (pair ~section:"mcs"
           ~n:(Hypergraphs.Hypergraph.n_nodes h)
           ~m:(Hypergraphs.Hypergraph.n_edges h)
           (fun () -> Hypergraphs.Mcs.edge_order_sets h)
           (fun () -> Hypergraphs.Mcs.edge_order h)))
    (sizes [ 16; 32; 64; 128 ]);
  List.iter
    (fun nsz ->
      let rng = trial ~section:"kernels-chordal" nsz in
      let g = Workloads.Gen_graph.random_chordal rng ~n:nsz ~max_clique:6 in
      note "chordal"
        (pair ~section:"chordal" ~n:(Ugraph.n g) ~m:(Ugraph.m g)
           (fun () -> Chordal.is_chordal_sets g)
           (fun () -> Chordal.is_chordal g)))
    (sizes [ 48; 96; 192; 384 ]);
  List.iter
    (fun n_right ->
      let rng = trial ~section:"kernels-algorithm1" n_right in
      let g = Workloads.Gen_bipartite.alpha_bipartite rng ~n_right ~max_size:5 in
      let p = Workloads.Gen_bipartite.random_terminals rng g ~k:5 in
      let u = Bigraph.ugraph g in
      note "algorithm1"
        (pair ~section:"algorithm1" ~n:(Ugraph.n u) ~m:(Ugraph.m u)
           (fun () -> Algorithm1.solve_sets g ~p)
           (fun () -> Algorithm1.solve g ~p)))
    (sizes [ 12; 24; 48; 96 ]);
  List.iter
    (fun section ->
      match List.assoc_opt section !largest with
      | None -> ()
      | Some (t_sets, t_csr) ->
        Printf.printf
          "-- %-10s largest instance: csr %s sets (%.4f vs %.4f ms)\n" section
          (if t_csr <= t_sets then "<=" else "SLOWER THAN")
          t_csr t_sets)
    [ "lexbfs"; "mcs"; "chordal"; "algorithm1" ];
  write_bench_json ~section:"kernels" ~trials ~max_n ~path:json_path !rows

(* ------------------------------------------------------------------ *)
(* Section: runtime                                                    *)
(* ------------------------------------------------------------------ *)

(* Budget-check overhead: the same solver call with the default
   unlimited budget (fast path: one load + branch per checkpoint)
   versus an armed but effectively inexhaustible budget (full slow
   path: fuel decrement plus a wall-clock poll every stride). The
   delta bounds what cooperative cancellation costs in the hot loops;
   the target is <= 3% on the instances that matter (the largest per
   section). Rows share the kernels JSON shape so the same validator
   covers BENCH_runtime.json. *)
let runtime_section ~trials ~max_n ~json_path () =
  header "runtime: budget-check overhead (unlimited vs armed budget)";
  Printf.printf "%-12s %-10s %6s %8s %12s\n" "section" "impl" "|V|" "|E|"
    "mean ms";
  let rows = ref [] in
  (* Inexhaustible but still [limited]: fuel <> max_int forces the
     decrement, no deadline avoids gettimeofday in Budget.make. *)
  let generous () = Minconn.Budget.make ~fuel:1_000_000_000 () in
  let largest = ref [] in
  let pair ~section ~n ~m base budgeted =
    let run impl f =
      let ms = time_mean ~trials f in
      Printf.printf "%-12s %-10s %6d %8d %12.4f\n%!" section impl n m ms;
      rows := !rows @ [ timed_entry ~section ~impl ~n ~m ~ms ];
      ms
    in
    let t_base = run "unlimited" base in
    let t_budget = run "budgeted" budgeted in
    largest :=
      (section, (t_base, t_budget)) :: List.remove_assoc section !largest
  in
  let sizes l = List.filter (fun x -> x <= max_n) l in
  List.iter
    (fun n_right ->
      let rng = trial ~section:"runtime-alg2" n_right in
      let g = Workloads.Gen_bipartite.chordal_62 rng ~n_right ~max_size:5 in
      let u = Bigraph.ugraph g in
      let p = Workloads.Gen_bipartite.random_terminals rng g ~k:5 in
      pair ~section:"algorithm2" ~n:(Bigraph.n g) ~m:(Bigraph.m g)
        (fun () -> Algorithm2.solve u ~p)
        (fun () -> Algorithm2.solve ~budget:(generous ()) u ~p))
    (sizes [ 20; 40; 80; 160 ]);
  List.iter
    (fun nsz ->
      let rng = trial ~section:"runtime-dw" nsz in
      let g = Workloads.Gen_bipartite.gnp rng ~nl:nsz ~nr:nsz ~p:0.3 in
      let u = Bigraph.ugraph g in
      let p = Workloads.Gen_bipartite.random_terminals rng g ~k:8 in
      if Iset.cardinal p >= 2 then
        pair ~section:"dreyfus" ~n:(Bigraph.n g) ~m:(Bigraph.m g)
          (fun () -> Dreyfus_wagner.solve u ~terminals:p)
          (fun () ->
            Dreyfus_wagner.solve ~budget:(generous ()) u ~terminals:p))
    (sizes [ 10; 12; 14 ]);
  List.iter
    (fun (section, (t_base, t_budget)) ->
      let ratio = if t_base > 0.0 then t_budget /. t_base else 1.0 in
      Printf.printf
        "-- %-12s largest instance: budgeted/unlimited = %.4f (target <= 1.03)%s\n"
        section ratio
        (if ratio <= 1.03 then "" else "  OVER TARGET"))
    (List.rev !largest);
  write_bench_json ~section:"runtime" ~trials ~max_n ~path:json_path !rows

(* ------------------------------------------------------------------ *)
(* Section: observe                                                    *)
(* ------------------------------------------------------------------ *)

(* Instrumentation overhead: the same solver call with observability
   off (the default disabled trace/metrics: one load + branch per
   checkpoint) versus a recording trace plus a live metrics registry,
   and the microcost of one disabled checkpoint.  The per-checkpoint
   cost times the checkpoint count bounds the disabled-instrumentation
   overhead of a solve; the bound is recorded in the JSON (target
   <= 2%% of the solve).  Writes BENCH_observe.json in the shared
   envelope. *)
let observe_section ~trials ~max_n ~json_path () =
  header "observe: instrumentation overhead (disabled vs recording)";
  Printf.printf "%-12s %-10s %6s %8s %12s\n" "section" "impl" "|V|" "|E|"
    "mean ms";
  let rows = ref [] in
  let largest = ref [] in
  let alg2_largest = ref None in
  let pair ~section ~n ~m off on =
    let run impl f =
      let ms = time_mean ~trials f in
      Printf.printf "%-12s %-10s %6d %8d %12.4f\n%!" section impl n m ms;
      rows := !rows @ [ timed_entry ~section ~impl ~n ~m ~ms ];
      ms
    in
    let t_off = run "disabled" off in
    let t_on = run "recording" on in
    largest :=
      (section, (t_off, t_on)) :: List.remove_assoc section !largest
  in
  let sizes l = List.filter (fun x -> x <= max_n) l in
  List.iter
    (fun n_right ->
      let rng = trial ~section:"observe-alg2" n_right in
      let g = Workloads.Gen_bipartite.chordal_62 rng ~n_right ~max_size:5 in
      let u = Bigraph.ugraph g in
      let p = Workloads.Gen_bipartite.random_terminals rng g ~k:5 in
      alg2_largest := Some (u, p);
      pair ~section:"algorithm2" ~n:(Bigraph.n g) ~m:(Bigraph.m g)
        (fun () -> Algorithm2.solve u ~p)
        (fun () ->
          Algorithm2.solve
            ~trace:(Observe.Trace.make ())
            ~metrics:(Observe.Metrics.make ())
            u ~p))
    (sizes [ 20; 40; 80; 160 ]);
  List.iter
    (fun n_right ->
      let rng = trial ~section:"observe-solve" n_right in
      let g = Workloads.Gen_bipartite.chordal_62 rng ~n_right ~max_size:5 in
      let p = Workloads.Gen_bipartite.random_terminals rng g ~k:4 in
      pair ~section:"solve" ~n:(Bigraph.n g) ~m:(Bigraph.m g)
        (fun () -> Minconn.solve g ~p)
        (fun () ->
          Minconn.solve
            ~trace:(Observe.Trace.make ())
            ~metrics:(Observe.Metrics.make ())
            g ~p))
    (sizes [ 20; 40; 80 ]);
  (* Microcost of one checkpoint, disabled vs live, net of loop cost. *)
  let reps = 1_000_000 in
  let loop f () =
    for _ = 1 to reps do
      f ()
    done
  in
  let t_empty = time_mean ~trials (loop (fun () -> ())) in
  let t_off =
    time_mean ~trials
      (loop (fun () ->
           Observe.Metrics.incr Observe.Metrics.inert;
           ignore
             (Sys.opaque_identity
                (Observe.Trace.active Observe.Trace.disabled))))
  in
  let live = Observe.Metrics.make () in
  let live_c = Observe.Metrics.counter live "bench.checkpoint" in
  let t_live = time_mean ~trials (loop (fun () -> Observe.Metrics.incr live_c)) in
  let per_ns t = Float.max 0.0 ((t -. t_empty) *. 1e6 /. float_of_int reps) in
  let off_ns = per_ns t_off and live_ns = per_ns t_live in
  Printf.printf "-- checkpoint: disabled %.2f ns/op, live %.2f ns/op\n" off_ns
    live_ns;
  rows :=
    !rows
    @ [
        ( "checkpoint/disabled",
          off_ns,
          [ ("impl", Observe.Json.Jstr "disabled") ] );
        ("checkpoint/live", live_ns, [ ("impl", Observe.Json.Jstr "live") ]);
      ];
  List.iter
    (fun (section, (t_off, t_on)) ->
      let ratio = if t_off > 0.0 then t_on /. t_off else 1.0 in
      Printf.printf "-- %-12s largest instance: recording/disabled = %.4f\n"
        section ratio)
    (List.rev !largest);
  (* Bound the disabled-instrumentation overhead of the largest
     algorithm2 solve: checkpoints (elimination steps) times the
     per-checkpoint disabled cost, as a fraction of the solve. *)
  (match (!alg2_largest, List.assoc_opt "algorithm2" !largest) with
  | Some (u, p), Some (t_off_ms, _) when t_off_ms > 0.0 ->
    let m = Observe.Metrics.make () in
    ignore (Algorithm2.solve ~metrics:m u ~p);
    let steps =
      match List.assoc_opt "elimination.steps" (Observe.Metrics.counters m) with
      | Some k -> k
      | None -> 0
    in
    let bound_pct =
      float_of_int steps *. off_ns /. (t_off_ms *. 1e6) *. 100.0
    in
    Printf.printf
      "-- disabled-instrumentation bound: %d checkpoints x %.2f ns = %.4f%% \
       of the solve (target <= 2%%)\n"
      steps off_ns bound_pct;
    rows :=
      !rows
      @ [
          ( "overhead/disabled_bound",
            off_ns,
            [
              ("checkpoints", Observe.Json.Jnum (float_of_int steps));
              ("pct_of_solve", Observe.Json.Jnum bound_pct);
              ("target_pct", Observe.Json.Jnum 2.0);
            ] );
        ]
  | _ -> ());
  write_bench_json ~section:"observe" ~trials ~max_n ~path:json_path !rows

(* ------------------------------------------------------------------ *)
(* Section: engine                                                     *)
(* ------------------------------------------------------------------ *)

(* Compile-once amortization: a batch of terminal-set queries over one
   schema, answered (a) by the one-shot [Minconn.solve] (which repays
   classification and ordering construction on every call), (b) by an
   [Engine.Session] over a schema compiled before the timed region.
   Compile cost is its own row, so BENCH_engine.json separates the
   price paid once from the per-query cost it buys down. The headline
   check: session ns/query strictly below one-shot ns/query on every
   workload. *)
let engine_section ~trials ~max_n ~json_path () =
  header "engine: one-shot solve vs compile-once session (ms per query)";
  Printf.printf "%-12s %-10s %6s %8s %8s %12s\n" "section" "impl" "|V|" "|E|"
    "queries" "mean ms";
  let rows = ref [] in
  let ratios = ref [] in
  let batch ~section g =
    let u = Bigraph.ugraph g in
    let queries =
      List.init 16 (fun k ->
          Workloads.Gen_bipartite.random_terminals
            (trial ~section:(section ^ "-terminals") k)
            g ~k:4)
      |> List.filter (fun p ->
             Iset.cardinal p >= 2 && Traverse.connects u p)
    in
    let nq = List.length queries in
    if nq = 0 then ()
    else begin
      let n = Bigraph.n g and m = Bigraph.m g in
      let row impl ~per_query ms =
        let per = if per_query then ms /. float_of_int nq else ms in
        Printf.printf "%-12s %-10s %6d %8d %8d %12.4f\n%!" section impl n m nq
          per;
        let name, ns, extras = timed_entry ~section ~impl ~n ~m ~ms:per in
        rows :=
          !rows
          @ [ (name, ns, extras @ [ ("queries", Observe.Json.Jnum (float_of_int nq)) ]) ];
        per
      in
      let t_compile =
        time_mean ~trials (fun () -> Minconn.Compiled.compile g)
      in
      ignore (row "compile" ~per_query:false t_compile);
      let compiled = Minconn.Compiled.compile g in
      let session = Minconn.Session.create compiled in
      let t_session =
        row "session" ~per_query:true
          (time_mean ~trials (fun () ->
               List.iter
                 (fun p -> ignore (Minconn.Session.query session ~p))
                 queries))
      in
      let t_oneshot =
        row "oneshot" ~per_query:true
          (time_mean ~trials (fun () ->
               List.iter (fun p -> ignore (Minconn.solve g ~p)) queries))
      in
      ratios :=
        (Printf.sprintf "%s n=%d" section n, t_session, t_oneshot) :: !ratios
    end
  in
  let sizes l = List.filter (fun x -> x <= max_n) l in
  (* n_right 80 is the ceiling: the one-shot comparator re-runs the
     full classification per query (~2.5 s at n=293), so larger tiers
     would dominate the whole bench run for no extra signal. *)
  List.iter
    (fun n_right ->
      let rng = trial ~section:"engine-62" n_right in
      batch ~section:"chordal62"
        (Workloads.Gen_bipartite.chordal_62 rng ~n_right ~max_size:5))
    (sizes [ 20; 40; 80 ]);
  List.iter
    (fun nsz ->
      let rng = trial ~section:"engine-gnp" nsz in
      batch ~section:"gnp"
        (Workloads.Gen_bipartite.gnp rng ~nl:nsz ~nr:nsz ~p:0.3))
    (sizes [ 16; 32; 64 ]);
  List.iter
    (fun (what, t_session, t_oneshot) ->
      Printf.printf
        "-- %-16s session/oneshot per query = %.4f (must be < 1)%s\n" what
        (if t_oneshot > 0.0 then t_session /. t_oneshot else 1.0)
        (if t_session < t_oneshot then "" else "  NOT AMORTIZED"))
    (List.rev !ratios);
  write_bench_json ~section:"engine" ~trials ~max_n ~path:json_path !rows

(* ------------------------------------------------------------------ *)
(* Section: parallel                                                   *)
(* ------------------------------------------------------------------ *)

(* Domain-pool speedup curves: schema compilation and 16-query batches
   timed sequentially (the no-pool baseline) and on 1/2/4-domain
   pools, on the same workloads as the engine section.  The d1 rows
   double as the pool-overhead check (inline execution: must sit
   within a few percent of seq), the d2/d4 rows are the scaling
   signal.  Speedups are relative to the 1-domain pool and are only
   expected to exceed 1 when the host actually has spare cores —
   [recommended_domain_count] is printed so a single-core container's
   flat curve reads as what it is. *)
let parallel_section ~trials ~max_n ~json_path () =
  header "parallel: domain-pool scaling (compile and 16-query batches)";
  let host_domains = Domain.recommended_domain_count () in
  Printf.printf "host: recommended_domain_count = %d\n" host_domains;
  Printf.printf "%-22s %-6s %6s %8s %12s %9s\n" "workload" "impl" "|V|" "|E|"
    "mean ms" "speedup";
  let domain_counts = [ 1; 2; 4 ] in
  let rows = ref [] in
  let curves = ref [] in
  let record ~section ~impl ~n ~m ~ms ~domains ~base_ms =
    let speedup = if ms > 0.0 then base_ms /. ms else 1.0 in
    Printf.printf "%-22s %-6s %6d %8d %12.4f %9s\n%!" section impl n m ms
      (if impl = "seq" then "-" else Printf.sprintf "%.2fx" speedup);
    let name, ns, extras = timed_entry ~section ~impl ~n ~m ~ms in
    rows :=
      !rows
      @ [
          ( name,
            ns,
            extras
            @ [
                ("domains", Observe.Json.Jnum (float_of_int domains));
                ("speedup_vs_d1", Observe.Json.Jnum speedup);
              ] );
        ]
  in
  let bench_workload ~section g =
    let u = Bigraph.ugraph g in
    let n = Bigraph.n g and m = Bigraph.m g in
    let queries =
      List.init 16 (fun k ->
          Workloads.Gen_bipartite.random_terminals
            (trial ~section:(section ^ "-terminals") k)
            g ~k:4)
      |> List.filter (fun p -> Iset.cardinal p >= 2 && Traverse.connects u p)
    in
    let compile_with pool =
      time_mean ~trials (fun () -> Minconn.Compiled.compile ?pool g)
    in
    let compiled = Minconn.Compiled.compile g in
    let batch_with pool =
      let session = Minconn.Session.create compiled in
      time_mean ~trials (fun () ->
          ignore (Minconn.Session.solve_many ?pool session queries))
    in
    let run_curve ~kind ~time_with =
      let section = Printf.sprintf "%s.%s" section kind in
      let seq_ms = time_with None in
      record ~section ~impl:"seq" ~n ~m ~ms:seq_ms ~domains:1 ~base_ms:seq_ms;
      let d1_ms = ref seq_ms in
      List.iter
        (fun d ->
          Minconn.Pool.with_pool ~domains:d (fun pool ->
              let ms = time_with (Some pool) in
              if d = 1 then d1_ms := ms;
              record ~section ~impl:(Printf.sprintf "d%d" d) ~n ~m ~ms
                ~domains:d ~base_ms:!d1_ms))
        domain_counts;
      curves := (section, n, seq_ms, !d1_ms) :: !curves
    in
    run_curve ~kind:"compile" ~time_with:compile_with;
    if queries <> [] then run_curve ~kind:"batch16" ~time_with:batch_with
  in
  let sizes l = List.filter (fun x -> x <= max_n) l in
  List.iter
    (fun n_right ->
      let rng = trial ~section:"parallel-62" n_right in
      bench_workload ~section:"chordal62"
        (Workloads.Gen_bipartite.chordal_62 rng ~n_right ~max_size:5))
    (sizes [ 20; 40; 80 ]);
  List.iter
    (fun nsz ->
      let rng = trial ~section:"parallel-gnp" nsz in
      bench_workload ~section:"gnp"
        (Workloads.Gen_bipartite.gnp rng ~nl:nsz ~nr:nsz ~p:0.3))
    (sizes [ 16; 32; 64 ]);
  List.iter
    (fun (what, n, seq_ms, d1_ms) ->
      Printf.printf "-- %-22s n=%-4d d1/seq overhead = %.4f (1-domain pool %s)\n"
        what n
        (if seq_ms > 0.0 then d1_ms /. seq_ms else 1.0)
        (if d1_ms <= seq_ms *. 1.05 then "within 5% of sequential"
         else "SLOWER THAN SEQUENTIAL")
    )
    (List.rev !curves);
  write_bench_json ~domains:(List.fold_left max 1 domain_counts)
    ~section:"parallel" ~trials ~max_n ~path:json_path !rows

(* ------------------------------------------------------------------ *)
(* Section: plancache                                                  *)
(* ------------------------------------------------------------------ *)

(* Cold-vs-warm compile curve for the persistent plan cache: per
   workload/size, the cold compile (classification + orderings), the
   envelope store, and the warm [Plan_cache.find] that replaces the
   compile on the next process. The headline check backs the cache's
   reason to exist: warm load must cost at most 0.2x the cold compile
   once the graph is big enough (n >= 100) for classification to
   dominate. Below that the cache is still correct, just not yet
   profitable — the ratio line says which regime each size is in. *)
let plancache_section ~trials ~max_n ~json_path () =
  header "plancache: cold compile vs envelope store vs warm load (ms)";
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "minconn-bench-plancache.%d" (Unix.getpid ()))
  in
  let cache =
    match Minconn.Plan_cache.create ~dir () with
    | Ok c -> c
    | Error msg ->
      Printf.eprintf "plancache: cannot create %s: %s\n" dir msg;
      exit 1
  in
  Printf.printf "%-12s %-8s %6s %8s %12s\n" "section" "impl" "|V|" "|E|"
    "mean ms";
  let rows = ref [] in
  let ratios = ref [] in
  let bench_workload ~section g =
    let n = Bigraph.n g and m = Bigraph.m g in
    let row impl ms =
      Printf.printf "%-12s %-8s %6d %8d %12.4f\n%!" section impl n m ms;
      rows := !rows @ [ timed_entry ~section ~impl ~n ~m ~ms ];
      ms
    in
    let t_cold = row "cold" (time_mean ~trials (fun () -> Minconn.Compiled.compile g)) in
    let compiled = Minconn.Compiled.compile g in
    let t_store =
      row "store"
        (time_mean ~trials (fun () ->
             match Minconn.Plan_cache.store cache compiled with
             | Ok () -> ()
             | Error msg -> failwith ("plancache store: " ^ msg)))
    in
    ignore t_store;
    let t_warm =
      row "warm"
        (time_mean ~trials (fun () ->
             match Minconn.Plan_cache.find cache g with
             | Ok c -> ignore (Sys.opaque_identity c)
             | Error miss ->
               failwith
                 ("plancache warm find missed: "
                 ^ Minconn.Plan_cache.miss_name miss)))
    in
    ratios := (section, n, t_cold, t_warm) :: !ratios
  in
  let sizes l = List.filter (fun x -> x <= max_n) l in
  List.iter
    (fun n_right ->
      let rng = trial ~section:"plancache-62" n_right in
      bench_workload ~section:"chordal62"
        (Workloads.Gen_bipartite.chordal_62 rng ~n_right ~max_size:5))
    (sizes [ 20; 40; 80 ]);
  List.iter
    (fun n_right ->
      let rng = trial ~section:"plancache-alpha" n_right in
      bench_workload ~section:"alpha"
        (Workloads.Gen_bipartite.alpha_bipartite rng ~n_right ~max_size:5))
    (sizes [ 20; 40; 80 ]);
  List.iter
    (fun nsz ->
      let rng = trial ~section:"plancache-gnp" nsz in
      bench_workload ~section:"gnp"
        (Workloads.Gen_bipartite.gnp rng ~nl:nsz ~nr:nsz ~p:0.3))
    (sizes [ 16; 32; 64 ]);
  List.iter
    (fun (section, n, t_cold, t_warm) ->
      let ratio = if t_cold > 0.0 then t_warm /. t_cold else 1.0 in
      if n >= 100 then
        Printf.printf "-- %-10s n=%-4d warm/cold = %.4f (must be <= 0.2)%s\n"
          section n ratio
          (if ratio <= 0.2 then "" else "  NOT PROFITABLE")
      else
        Printf.printf "-- %-10s n=%-4d warm/cold = %.4f (below threshold size)\n"
          section n ratio)
    (List.rev !ratios);
  (* Leave no droppings: the bench cache is process-private. *)
  (match Sys.readdir dir with
  | exception Sys_error _ -> ()
  | names ->
    Array.iter
      (fun name -> try Sys.remove (Filename.concat dir name) with Sys_error _ -> ())
      names;
    (try Unix.rmdir dir with Unix.Unix_error _ -> ()));
  write_bench_json ~section:"plancache" ~trials ~max_n ~path:json_path !rows

(* ------------------------------------------------------------------ *)
(* Section: relalg                                                     *)
(* ------------------------------------------------------------------ *)

(* Throughput of the columnar Yannakakis engine against the naive
   left-fold join, on chain databases whose last relation is 95%
   dangling tuples — the workload where a semijoin reducer pays: the
   reducer prunes the doomed mass up front, while the naive fold
   grows its intermediates by the full rows/domain factor before the
   final join discards them. Both set and bag semantics run the same
   ladder; extras record total input tuples and tuples/sec so the
   trajectory file doubles as a throughput record. At the largest size
   Yannakakis must be strictly faster than naive per semantics
   ("NOT FASTER" otherwise). *)

let relalg_section ~trials ~max_n ~json_path () =
  header "relalg: Yannakakis vs naive join on dangling chains";
  Printf.printf "%-10s %-12s %6s %9s %11s %14s\n" "semantics" "impl" "n"
    "tuples" "mean ms" "tuples/sec";
  let rows = ref [] in
  let outcomes = ref [] in
  let length = 5 in
  let ok_rel = function
    | Ok r -> r
    | Error e -> failwith (Runtime.Errors.to_string e)
  in
  let bench ~sem_name ~semantics n =
    let rows_per_rel = n * 128 in
    (* rows/domain = 4 gives every naive intermediate a 4x growth
       factor; dangling 0.95 means the reducer kills most of that mass
       before any join runs. *)
    let domain = max 2 (rows_per_rel / 4) in
    let rng = trial ~section:("relalg-" ^ sem_name) n in
    let db =
      Workloads.Gen_db.chain ~semantics ~dangling:0.95 rng ~length
        ~rows:rows_per_rel ~domain
    in
    let tuples = Relalg.Database.total_tuples db in
    let output = [ "a0"; Printf.sprintf "a%d" length ] in
    let section = "relalg-" ^ sem_name in
    let run impl eval =
      let ms =
        time_mean ~trials (fun () ->
            ignore (Sys.opaque_identity (ok_rel (eval db ~output))))
      in
      let tps =
        if ms > 0.0 then float_of_int tuples /. (ms /. 1000.0) else 0.0
      in
      Printf.printf "%-10s %-12s %6d %9d %11.3f %14.0f\n%!" sem_name impl n
        tuples ms tps;
      let name, ns, extras = timed_entry ~section ~impl ~n ~m:tuples ~ms in
      rows :=
        !rows @ [ (name, ns, extras @ [ ("tuples_per_sec", Observe.Json.Jnum tps) ]) ];
      ms
    in
    let ry = ok_rel (Relalg.Yannakakis.evaluate db ~output) in
    let rn = ok_rel (Relalg.Yannakakis.evaluate_naive db ~output) in
    if not (Relalg.Relation.equal ry rn) then begin
      Printf.eprintf "relalg: yannakakis/naive DISAGREE at %s n=%d\n" sem_name
        n;
      exit 1
    end;
    let t_y = run "yannakakis" (fun db ~output ->
        Relalg.Yannakakis.evaluate db ~output)
    in
    let t_n = run "naive" (fun db ~output ->
        Relalg.Yannakakis.evaluate_naive db ~output)
    in
    outcomes := (sem_name, n, t_y, t_n) :: !outcomes
  in
  let sizes = List.filter (fun x -> x <= max_n) [ 64; 128; 256 ] in
  List.iter (fun n -> bench ~sem_name:"set" ~semantics:Relalg.Relation.Set n)
    sizes;
  List.iter (fun n -> bench ~sem_name:"bag" ~semantics:Relalg.Relation.Bag n)
    sizes;
  let top = List.fold_left max 0 sizes in
  List.iter
    (fun (sem_name, n, t_y, t_n) ->
      if n = top then
        let ratio = if t_n > 0.0 then t_y /. t_n else 1.0 in
        Printf.printf
          "-- %-4s n=%-4d yannakakis/naive = %.4f (must be < 1)%s\n" sem_name
          n ratio
          (if t_y < t_n then "" else "  NOT FASTER"))
    (List.rev !outcomes);
  write_bench_json ~section:"relalg" ~trials ~max_n ~path:json_path !rows

(* ------------------------------------------------------------------ *)
(* Section: serve                                                      *)
(* ------------------------------------------------------------------ *)

(* Closed-loop load generator against an in-process server: K
   keep-alive client threads each fire a fixed request budget at
   [POST /solve] over a pool of pre-checked solvable terminal sets and
   record per-request wall latency. Two profiles: [nominal] sits under
   the admission cap (every connection admitted, unpressured answers),
   and [overload] runs more clients than [max_inflight] with the
   watermark at the floor — excess connects are shed with an immediate
   503 (clients reconnect-loop, counting sheds) while admitted work
   answers from cheaper rungs under pressure fuel. Entry rows carry
   mean admitted latency as ns_per_op plus p50/p95/p99 and the
   shed/degraded/error counters from the server's metrics. *)

let serve_percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let rank = int_of_float (Float.ceil (p /. 100.0 *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) rank))

(* Terminal-set pool, drawn from the workload generator: terminals come
   from the largest connected component ([random_terminals]), so every
   request is answerable — the MST rung is total on connected terminal
   sets — without the old draw-and-pre-solve rejection loop. Rendered
   through the same name table the server resolves against, so every
   benched request is a real answer, never a 4xx. *)
let serve_query_pool nb =
  let g = nb.Mc_io.Parse.graph in
  let rng = trial ~section:"serve-queries" 1 in
  let pool = ref [] in
  for _ = 1 to 8 do
    let k = 2 + Workloads.Rng.int rng 3 in
    let p = Workloads.Gen_bipartite.random_terminals rng g ~k in
    if Iset.cardinal p >= 2 then
      pool :=
        String.concat " "
          (List.map (Serve.Render.name_of nb) (Iset.elements p))
        :: !pool
  done;
  if !pool = [] then (
    Printf.eprintf "serve bench: no solvable terminal sets found\n";
    exit 1);
  Array.of_list !pool

(* One client thread: keep-alive loop with reconnect-on-shed. Returns
   (admitted latencies in ms, sheds, errors). *)
let serve_client ~port ~reqs ~queries idx =
  let lats = Array.make reqs 0.0 in
  let n_ok = ref 0 and n_shed = ref 0 and n_err = ref 0 in
  let conn = ref None in
  let drop () =
    (match !conn with
    | Some (fd, _) -> ( try Unix.close fd with Unix.Unix_error _ -> ())
    | None -> ());
    conn := None
  in
  let get_conn () =
    match !conn with
    | Some c -> c
    | None ->
      let rec go tries =
        match
          let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
          (try Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port))
           with e -> Unix.close fd; raise e);
          fd
        with
        | fd -> fd
        | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ECONNRESET), _, _)
          when tries > 0 ->
          Unix.sleepf 0.002;
          go (tries - 1)
      in
      let fd = go 200 in
      Unix.setsockopt fd Unix.TCP_NODELAY true;
      let c = (fd, Serve.Http.conn fd) in
      conn := Some c;
      c
  in
  for r = 0 to reqs - 1 do
    let fd, c = get_conn () in
    let body = queries.((idx + r) mod Array.length queries) in
    let req =
      Printf.sprintf
        "POST /solve HTTP/1.1\r\nHost: bench\r\nContent-Length: %d\r\n\r\n%s"
        (String.length body) body
    in
    let t0 = Unix.gettimeofday () in
    match
      ignore (Unix.write_substring fd req 0 (String.length req) : int);
      Serve.Http.read_response c
    with
    | Ok resp when resp.Serve.Http.code = 503 ->
      incr n_shed;
      drop ()
    | Ok resp when resp.Serve.Http.code = 200 ->
      lats.(!n_ok) <- (Unix.gettimeofday () -. t0) *. 1000.0;
      incr n_ok
    | Ok _ ->
      incr n_err;
      drop ()
    | Error _ ->
      incr n_err;
      drop ()
    | exception Unix.Unix_error _ ->
      incr n_err;
      drop ()
  done;
  drop ();
  (Array.sub lats 0 !n_ok, !n_shed, !n_err)

let serve_profile ~name ~clients ~reqs ~config nb rows =
  let metrics = Observe.Metrics.make () in
  let srv =
    match Serve.Server.create ~config ~metrics nb with
    | Ok s -> s
    | Error msg ->
      Printf.eprintf "serve bench: %s\n" msg;
      exit 1
  in
  let th = Serve.Server.start srv in
  let port = Serve.Server.port srv in
  let queries = serve_query_pool nb in
  let out = Array.make clients ([||], 0, 0) in
  let t0 = Unix.gettimeofday () in
  let threads =
    List.init clients (fun i ->
        Thread.create (fun () -> out.(i) <- serve_client ~port ~reqs ~queries i) ())
  in
  List.iter Thread.join threads;
  let wall_s = Unix.gettimeofday () -. t0 in
  Serve.Server.stop srv;
  Thread.join th;
  let lats =
    Array.concat (Array.to_list (Array.map (fun (l, _, _) -> l) out))
  in
  Array.sort compare lats;
  let sheds = Array.fold_left (fun a (_, s, _) -> a + s) 0 out in
  let errs = Array.fold_left (fun a (_, _, e) -> a + e) 0 out in
  let mean_ms =
    if Array.length lats = 0 then 0.0
    else Array.fold_left ( +. ) 0.0 lats /. float_of_int (Array.length lats)
  in
  let counter n =
    Option.value ~default:0
      (List.assoc_opt n (Observe.Metrics.counters metrics))
  in
  let g = nb.Mc_io.Parse.graph in
  Printf.printf
    "%-10s clients=%d reqs=%d ok=%d mean=%.3fms p95=%.3fms shed=%d \
     degraded=%d errors=%d\n\
     %!"
    name clients (clients * reqs) (Array.length lats) mean_ms
    (serve_percentile lats 95.0) sheds
    (counter "serve.degraded") errs;
  rows :=
    !rows
    @ [
        ( Printf.sprintf "serve/%s/c%d" name clients,
          mean_ms *. 1e6,
          [
            ("impl", Observe.Json.Jstr name);
            ("n", Observe.Json.Jnum (float_of_int (Bigraph.n g)));
            ("m", Observe.Json.Jnum (float_of_int (Bigraph.m g)));
            ("mean_ms", Observe.Json.Jnum mean_ms);
            ("p50_ms", Observe.Json.Jnum (serve_percentile lats 50.0));
            ("p95_ms", Observe.Json.Jnum (serve_percentile lats 95.0));
            ("p99_ms", Observe.Json.Jnum (serve_percentile lats 99.0));
            ("clients", Observe.Json.Jnum (float_of_int clients));
            ("admitted", Observe.Json.Jnum (float_of_int (Array.length lats)));
            ("shed", Observe.Json.Jnum (float_of_int sheds));
            ( "degraded",
              Observe.Json.Jnum (float_of_int (counter "serve.degraded")) );
            ("errors", Observe.Json.Jnum (float_of_int errs));
            ( "throughput_rps",
              Observe.Json.Jnum
                (if wall_s > 0.0 then float_of_int (Array.length lats) /. wall_s
                 else 0.0) );
          ] );
      ]

let serve_section ~trials ~max_n ~json_path () =
  header "serve: closed-loop load over the network service (ms/request)";
  (* A G(n,p) instance outside the structured classes, so pressure-mode
     fuel actually forces the ladder down to cheaper rungs and the
     overload profile's degraded count is non-trivial. *)
  let n_right = min 24 (max 8 (max_n / 8)) in
  let rng = trial ~section:"serve-graph" n_right in
  let g = Workloads.Gen_bipartite.gnp rng ~nl:n_right ~nr:n_right ~p:0.3 in
  let nb =
    {
      Mc_io.Parse.graph = g;
      left_names = Array.init (Bigraph.nl g) (Printf.sprintf "L%d");
      right_names = Array.init (Bigraph.nr g) (Printf.sprintf "R%d");
    }
  in
  let reqs = 25 * trials in
  let rows = ref [] in
  serve_profile ~name:"nominal" ~clients:4 ~reqs
    ~config:
      {
        Serve.Server.default_config with
        Serve.Server.port = 0;
        max_inflight = 16;
        degrade_watermark = 16;
      }
    nb rows;
  serve_profile ~name:"overload" ~clients:8 ~reqs
    ~config:
      {
        Serve.Server.default_config with
        Serve.Server.port = 0;
        max_inflight = 2;
        degrade_watermark = 1;
        pressure_fuel = 16;
      }
    nb rows;
  write_bench_json ~section:"serve" ~trials ~max_n ~path:json_path !rows

(* ------------------------------------------------------------------ *)
(* Section: evolve                                                     *)
(* ------------------------------------------------------------------ *)

(* Incremental schema evolution vs recompile-from-scratch. The schema
   is a disjoint union of B structured blocks — the live-schema shape
   component-scoped recompilation is built for — and a batch of k
   single-edge deltas dirties k distinct blocks, so apply_deltas
   recompiles k components and reuses the other B-k verbatim. The
   headline check backs the tentpole: one single-edge delta must cost
   at most 0.2x the full recompile once the schema is big enough
   (n >= 100). The batch axis then sweeps k up to B to locate the
   crossover where patching stops paying and recompiling from scratch
   wins; each row records its batch size and measured recompiled
   count so the trajectory file carries the whole curve. *)

let evolve_union gen ~blocks =
  let edges = ref [] and picks = ref [] in
  let nl = ref 0 and nr = ref 0 in
  for b = 0 to blocks - 1 do
    let g = gen b in
    let lo = !nl and ro = !nr in
    let es = Bigraph.edges g in
    (match es with
    | (i, j) :: _ -> picks := (i + lo, j + ro) :: !picks
    | [] -> ());
    List.iter (fun (i, j) -> edges := (i + lo, j + ro) :: !edges) es;
    nl := !nl + Bigraph.nl g;
    nr := !nr + Bigraph.nr g
  done;
  (Bigraph.of_edges ~nl:!nl ~nr:!nr (List.rev !edges), List.rev !picks)

let evolve_section ~trials ~max_n ~json_path () =
  header "evolve: delta patch vs recompile-from-scratch (ms)";
  Printf.printf "%-12s %-10s %6s %8s %6s %12s\n" "section" "impl" "|V|" "|E|"
    "batch" "mean ms";
  let rows = ref [] in
  let singles = ref [] in
  let ok_apply compiled ops =
    match Minconn.Compiled.apply_deltas compiled ops with
    | Ok (c, stats) -> (c, stats)
    | Error msg -> failwith ("evolve apply_deltas: " ^ msg)
  in
  let bench_workload ~section g picks =
    let blocks = List.length picks in
    let n = Bigraph.n g and m = Bigraph.m g in
    let compiled = Minconn.Compiled.compile g in
    let row ~impl ~batch ~recompiled ms =
      Printf.printf "%-12s %-10s %6d %8d %6d %12.4f\n%!" section impl n m
        batch ms;
      let name, ns, extras = timed_entry ~section ~impl ~n ~m ~ms in
      rows :=
        !rows
        @ [
            ( name,
              ns,
              extras
              @ [
                  ("batch", Observe.Json.Jnum (float_of_int batch));
                  ( "recompiled_components",
                    Observe.Json.Jnum (float_of_int recompiled) );
                ] );
          ]
    in
    (* Recompile baseline: the evolved schema built from scratch, the
       cost every delta batch is competing against. *)
    let target =
      match
        Minconn.Delta.apply_all g
          (List.map (fun (i, j) -> Minconn.Delta.Remove_edge (i, j)) picks)
      with
      | Ok g' -> g'
      | Error msg -> failwith ("evolve apply_all: " ^ msg)
    in
    let t_full =
      time_mean ~trials (fun () ->
          ignore (Sys.opaque_identity (Minconn.Compiled.compile target)))
    in
    row ~impl:"recompile" ~batch:blocks ~recompiled:blocks t_full;
    let crossover = ref None in
    let rec batches k = if k >= blocks then [ blocks ] else k :: batches (2 * k) in
    List.iter
      (fun k ->
        let ops =
          List.filteri (fun i _ -> i < k) picks
          |> List.map (fun (i, j) -> Minconn.Delta.Remove_edge (i, j))
        in
        let _, stats = ok_apply compiled ops in
        let recompiled =
          List.length
            (List.sort_uniq compare
               (List.concat_map
                  (fun (s : Minconn.Compiled.delta_stats) -> s.recompiled)
                  stats))
        in
        let ms =
          time_mean ~trials (fun () ->
              ignore (Sys.opaque_identity (ok_apply compiled ops)))
        in
        row ~impl:(Printf.sprintf "patch-k%d" k) ~batch:k ~recompiled ms;
        if k = 1 then singles := (section, n, ms, t_full) :: !singles;
        if !crossover = None && ms >= t_full then crossover := Some k)
      (batches 1);
    Printf.printf "-- %-10s n=%-4d crossover batch: %s (of %d blocks)\n"
      section n
      (match !crossover with
      | Some k -> string_of_int k
      | None -> Printf.sprintf "> %d" blocks)
      blocks
  in
  (* At least 8 blocks: one block must be a small enough fraction of
     the schema for the 0.2x single-delta headline to have headroom. *)
  let block_sizes = List.filter (fun b -> b * 12 <= max_n) [ 8; 16; 32 ] in
  List.iter
    (fun blocks ->
      let g, picks =
        evolve_union ~blocks (fun b ->
            Workloads.Gen_bipartite.chordal_62
              (trial ~section:"evolve-62" ((blocks * 100) + b))
              ~n_right:12 ~max_size:5)
      in
      bench_workload ~section:"chordal62" g picks)
    block_sizes;
  List.iter
    (fun blocks ->
      let g, picks =
        evolve_union ~blocks (fun b ->
            Workloads.Gen_bipartite.alpha_bipartite
              (trial ~section:"evolve-alpha" ((blocks * 100) + b))
              ~n_right:12 ~max_size:5)
      in
      bench_workload ~section:"alpha" g picks)
    block_sizes;
  List.iter
    (fun (section, n, t1, t_full) ->
      let ratio = if t_full > 0.0 then t1 /. t_full else 1.0 in
      if n >= 100 then
        Printf.printf
          "-- %-10s n=%-4d patch/recompile = %.4f (must be <= 0.2)%s\n"
          section n ratio
          (if ratio <= 0.2 then "" else "  NOT PROFITABLE")
      else
        Printf.printf
          "-- %-10s n=%-4d patch/recompile = %.4f (below threshold size)\n"
          section n ratio)
    (List.rev !singles);
  write_bench_json ~section:"evolve" ~trials ~max_n ~path:json_path !rows

(* ------------------------------------------------------------------ *)
(* Section: scale                                                      *)
(* ------------------------------------------------------------------ *)

(* Million-node construction / compile / query pass over the streaming
   Gen_scale families. Each (family, n) point times:

     construct-direct — edge stream -> CSR ([Bigraph.of_edge_iter]),
       the direct path, with edges/sec throughput;
     construct-sets   — the pre-CSR baseline (materialise the edge
       list, one AVL insertion per directed edge, then
       [Csr.of_ugraph]), run on every rung up to 10^6; the sets/direct
       ns_per_op ratio is the headline number;
     compile          — [Compiled.compile] off the cached CSR;
     query-first      — [Session.create] plus a query burst against a
       plan whose set-view cache is cold ([Bigraph.compact] resets the
       cache without copying the CSR arrays), i.e. the one-off lazy
       AVL-derivation cost the stream path defers to first use;
     query-warm       — the same burst on a warm session.

   Every row carries a [peak_heap_words] extra from [Gc.quick_stat] —
   the process heap high-water mark, monotone across rows, so within
   one run each row bounds the memory its stage needed (methodology in
   EXPERIMENTS.md). The ladder has its own cap ([--scale-max-n],
   default 10^6) independent of the global [--max-n], which other
   sections keep in the hundreds. *)

let scale_families =
  [
    Workloads.Gen_scale.Forest;
    Workloads.Gen_scale.Chordal62;
    Workloads.Gen_scale.Alpha;
  ]

let scale_section ~trials ~scale_max_n ~json_path () =
  header "scale: stream-to-CSR construction vs the set-based path";
  let ladder =
    match List.filter (fun x -> x <= scale_max_n) [ 100_000; 1_000_000 ] with
    | [] -> [ max 1_000 scale_max_n ]
    | l -> l
  in
  let rows = ref [] in
  let peak () = float_of_int (Gc.quick_stat ()).Gc.top_heap_words in
  let entry ~family ~kind ~n ~m ~ms extras =
    let name, ns, base =
      timed_entry ~section:"scale" ~impl:(family ^ "/" ^ kind) ~n ~m ~ms
    in
    rows :=
      !rows
      @ [
          ( name,
            ns,
            base
            @ ("peak_heap_words", Observe.Json.Jnum (peak ())) :: extras );
        ]
  in
  List.iter
    (fun fam ->
      let fname = Workloads.Gen_scale.family_name fam in
      List.iter
        (fun target ->
          let inst = Workloads.Gen_scale.make fam ~target_n:target ~seed:2026 in
          let n = Workloads.Gen_scale.n inst in
          let m = Workloads.Gen_scale.m inst in
          let eps ms =
            ( "edges_per_sec",
              Observe.Json.Jnum
                (if ms > 0.0 then float_of_int m /. (ms /. 1000.0) else 0.0) )
          in
          (* Construction is orders of magnitude cheaper to time than
             compile, and on this 1-core host a major collection of the
             *previous* rung's plan garbage landing inside the timed
             region skews the headline ratio by an order of magnitude —
             so each construct row starts from a compacted heap and
             gets at least 5 trials of its own. *)
          let ctrials = max trials 5 in
          Gc.compact ();
          let ms_direct =
            time_mean ~trials:ctrials (fun () ->
                Workloads.Gen_scale.to_bigraph inst)
          in
          entry ~family:fname ~kind:"construct-direct" ~n ~m ~ms:ms_direct
            [ eps ms_direct ];
          (* [make] overshoots the target by up to one block, so the cap
             sits just above the 10^6 rung. *)
          if n <= 1_001_000 then begin
            Gc.compact ();
            let ms_sets =
              time_mean ~trials:ctrials (fun () ->
                  Bigraph.csr (Workloads.Gen_scale.to_bigraph_sets inst))
            in
            entry ~family:fname ~kind:"construct-sets" ~n ~m ~ms:ms_sets
              [ eps ms_sets ];
            Printf.printf "-- %-9s n=%-8d construct sets/direct = %.1fx\n%!"
              fname n (ms_sets /. ms_direct)
          end;
          let g = Workloads.Gen_scale.to_bigraph inst in
          let ms_compile =
            time_mean ~trials (fun () -> Minconn.Compiled.compile g)
          in
          let plan = Minconn.Compiled.compile g in
          entry ~family:fname ~kind:"compile" ~n ~m ~ms:ms_compile
            [
              ( "components",
                Observe.Json.Jnum
                  (float_of_int (Minconn.Compiled.n_components plan)) );
            ];
          let blocks = Workloads.Gen_scale.n_blocks inst in
          let queries =
            List.init 8 (fun i ->
                Workloads.Gen_scale.block_terminals inst
                  ~block:(i * blocks / 8) ~k:3)
          in
          let run_queries s =
            List.iter
              (fun p ->
                match Minconn.Session.query s ~p with
                | Ok _ -> ()
                | Error _ -> failwith "scale bench: query failed")
              queries
          in
          let ms_first =
            time_mean ~trials (fun () ->
                let plan' =
                  {
                    plan with
                    Minconn.Compiled.graph =
                      Bigraph.compact plan.Minconn.Compiled.graph;
                  }
                in
                run_queries (Minconn.Session.create plan'))
          in
          entry ~family:fname ~kind:"query-first" ~n ~m ~ms:ms_first [];
          let s = Minconn.Session.create plan in
          let ms_warm = time_mean ~trials (fun () -> run_queries s) in
          entry ~family:fname ~kind:"query-warm" ~n ~m ~ms:ms_warm [];
          Printf.printf
            "%-9s n=%-8d m=%-8d direct=%.1fms compile=%.1fms first=%.1fms \
             warm=%.3fms\n\
             %!"
            fname n m ms_direct ms_compile ms_first ms_warm)
        ladder)
    scale_families;
  write_bench_json ~section:"scale" ~trials ~max_n:scale_max_n ~path:json_path
    !rows

(* ------------------------------------------------------------------ *)

let () =
  let trials = ref 5 and max_n = ref 384 in
  let json_path = ref "BENCH_kernels.json" in
  let runtime_json_path = ref "BENCH_runtime.json" in
  let observe_json_path = ref "BENCH_observe.json" in
  let engine_json_path = ref "BENCH_engine.json" in
  let parallel_json_path = ref "BENCH_parallel.json" in
  let plancache_json_path = ref "BENCH_plancache.json" in
  let relalg_json_path = ref "BENCH_relalg.json" in
  let serve_json_path = ref "BENCH_serve.json" in
  let evolve_json_path = ref "BENCH_evolve.json" in
  let scale_json_path = ref "BENCH_scale.json" in
  let scale_max_n = ref 1_000_000 in
  let rec parse_args acc = function
    | [] -> List.rev acc
    | "--trials" :: v :: rest ->
      trials := int_of_string v;
      parse_args acc rest
    | "--max-n" :: v :: rest ->
      max_n := int_of_string v;
      parse_args acc rest
    | "--json" :: v :: rest ->
      json_path := v;
      parse_args acc rest
    | "--runtime-json" :: v :: rest ->
      runtime_json_path := v;
      parse_args acc rest
    | "--observe-json" :: v :: rest ->
      observe_json_path := v;
      parse_args acc rest
    | "--engine-json" :: v :: rest ->
      engine_json_path := v;
      parse_args acc rest
    | "--parallel-json" :: v :: rest ->
      parallel_json_path := v;
      parse_args acc rest
    | "--plancache-json" :: v :: rest ->
      plancache_json_path := v;
      parse_args acc rest
    | "--relalg-json" :: v :: rest ->
      relalg_json_path := v;
      parse_args acc rest
    | "--serve-json" :: v :: rest ->
      serve_json_path := v;
      parse_args acc rest
    | "--evolve-json" :: v :: rest ->
      evolve_json_path := v;
      parse_args acc rest
    | "--scale-json" :: v :: rest ->
      scale_json_path := v;
      parse_args acc rest
    | "--scale-max-n" :: v :: rest ->
      scale_max_n := int_of_string v;
      parse_args acc rest
    | a :: rest -> parse_args (a :: acc) rest
  in
  let sections =
    [
      ("figures", figures_section);
      ( "tables",
        fun () ->
          table_t1 ();
          table_c1 ();
          table_h1 ();
          table_q2 ();
          table_c0 ();
          table_p1 ();
          table_w1 ();
          table_y1 () );
      ( "scaling",
        fun () ->
          scaling_t4 ();
          scaling_t5 ();
          scaling_q1 ();
          scaling_t2 () );
      ( "ablations",
        fun () ->
          ablation_a1 ();
          ablation_a2 ();
          ablation_a3 ();
          ablation_a4 ();
          ablation_d1 () );
      ("micro", micro_section);
      ( "kernels",
        fun () ->
          kernels_section ~trials:!trials ~max_n:!max_n ~json_path:!json_path
            () );
      ( "runtime",
        fun () ->
          runtime_section ~trials:!trials ~max_n:!max_n
            ~json_path:!runtime_json_path () );
      ( "observe",
        fun () ->
          observe_section ~trials:!trials ~max_n:!max_n
            ~json_path:!observe_json_path () );
      ( "engine",
        fun () ->
          engine_section ~trials:!trials ~max_n:!max_n
            ~json_path:!engine_json_path () );
      ( "parallel",
        fun () ->
          parallel_section ~trials:!trials ~max_n:!max_n
            ~json_path:!parallel_json_path () );
      ( "plancache",
        fun () ->
          plancache_section ~trials:!trials ~max_n:!max_n
            ~json_path:!plancache_json_path () );
      ( "relalg",
        fun () ->
          relalg_section ~trials:!trials ~max_n:!max_n
            ~json_path:!relalg_json_path () );
      ( "serve",
        fun () ->
          serve_section ~trials:!trials ~max_n:!max_n
            ~json_path:!serve_json_path () );
      ( "evolve",
        fun () ->
          evolve_section ~trials:!trials ~max_n:!max_n
            ~json_path:!evolve_json_path () );
      ( "scale",
        fun () ->
          scale_section ~trials:!trials ~scale_max_n:!scale_max_n
            ~json_path:!scale_json_path () );
    ]
  in
  let wanted = parse_args [] (List.tl (Array.to_list Sys.argv)) in
  let run (name, f) = if wanted = [] || List.mem name wanted then f () in
  List.iter run sections;
  Printf.printf "\nDone.\n"
