(* Fixed-size domain pool. See pool.mli for the contract.

   Design notes:

   - The queue holds closures of type [unit -> unit]; each fan-out
     entry point pre-allocates result/error slot arrays and wraps
     every item in a closure that writes its own slot, so results come
     back in item order regardless of completion order.

   - Batch completion is tracked by an [Atomic.t] countdown plus a
     dedicated mutex/condvar pair per batch. A worker finishing the
     last task decrements the counter to zero, then takes the batch
     mutex and signals; the submitter waits under the same mutex in a
     [while remaining > 0] loop, so there is no lost-wakeup window.

   - Workers never raise out of their loop: task exceptions are caught
     by the wrapper closure and parked in the batch's error slots. The
     submitter re-raises the lowest-indexed one (with its original
     backtrace) after the whole batch has drained, which keeps
     exception propagation deterministic and never strands a worker
     holding a task from an abandoned batch. *)

type job = unit -> unit

type t = {
  size : int;                        (* requested pool size, >= 1 *)
  queue : job Queue.t;               (* guarded by [lock] *)
  lock : Mutex.t;
  nonempty : Condition.t;            (* signalled on push / shutdown *)
  mutable stopped : bool;            (* guarded by [lock] *)
  mutable workers : unit Domain.t list;
}

let max_domains = 64

let worker_loop pool () =
  let rec next () =
    Mutex.lock pool.lock;
    let rec wait () =
      if not (Queue.is_empty pool.queue) then Some (Queue.pop pool.queue)
      else if pool.stopped then None
      else (Condition.wait pool.nonempty pool.lock; wait ())
    in
    let job = wait () in
    Mutex.unlock pool.lock;
    match job with
    | None -> ()
    | Some job -> job (); next ()
  in
  next ()

let create ?domains () =
  let size =
    match domains with
    | None -> max 1 (Domain.recommended_domain_count ())
    | Some d ->
      if d < 1 then invalid_arg "Pool.create: domains must be >= 1"
      else min d max_domains
  in
  let pool =
    { size; queue = Queue.create (); lock = Mutex.create ();
      nonempty = Condition.create (); stopped = false; workers = [] }
  in
  if size >= 2 then
    pool.workers <-
      List.init size (fun _ -> Domain.spawn (worker_loop pool));
  pool

let domains t = t.size

let shutdown t =
  Mutex.lock t.lock;
  let already = t.stopped in
  t.stopped <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.lock;
  if not already then begin
    List.iter Domain.join t.workers;
    t.workers <- []
  end

let with_pool ?domains f =
  let pool = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

(* A task failure, parked until the batch drains. *)
type failure = { exn : exn; bt : Printexc.raw_backtrace }

let reraise { exn; bt } = Printexc.raise_with_backtrace exn bt

(* Worker identity within a batch: workers pull tasks concurrently, so
   a stable per-domain index is handed out once per domain per batch
   via a small DLS-cached (batch id, index) pair. Simpler and cheaper:
   hand indices out from an atomic ticket counter the first time a
   domain touches the batch, remembered in DLS keyed by batch id. *)
type worker_ids = { mutable batch : int; mutable id : int }

let worker_ids_key =
  Domain.DLS.new_key (fun () -> { batch = -1; id = 0 })

let batch_counter = Atomic.make 0

let mapi_worker t f items =
  let n = Array.length items in
  if n = 0 then [||]
  else if t.size <= 1 || n = 1 then
    Array.mapi (fun i x -> f ~worker:0 ~index:i x) items
  else begin
    let batch_id = Atomic.fetch_and_add batch_counter 1 in
    let tickets = Atomic.make 0 in
    let results = Array.make n None in
    let errors = Array.make n None in
    let remaining = Atomic.make n in
    let done_m = Mutex.create () in
    let done_c = Condition.create () in
    let task i () =
      let ids = Domain.DLS.get worker_ids_key in
      if ids.batch <> batch_id then begin
        ids.batch <- batch_id;
        ids.id <- Atomic.fetch_and_add tickets 1 mod t.size
      end;
      (match f ~worker:ids.id ~index:i items.(i) with
       | r -> results.(i) <- Some r
       | exception exn ->
         let bt = Printexc.get_raw_backtrace () in
         errors.(i) <- Some { exn; bt });
      if Atomic.fetch_and_add remaining (-1) = 1 then begin
        Mutex.lock done_m;
        Condition.signal done_c;
        Mutex.unlock done_m
      end
    in
    Mutex.lock t.lock;
    if t.stopped then begin
      Mutex.unlock t.lock;
      invalid_arg "Pool: submit on a shut-down pool"
    end;
    for i = 0 to n - 1 do Queue.push (task i) t.queue done;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.lock;
    Mutex.lock done_m;
    while Atomic.get remaining > 0 do Condition.wait done_c done_m done;
    Mutex.unlock done_m;
    (match Array.find_map Fun.id errors with
     | Some failure -> reraise failure
     | None -> ());
    Array.map
      (function Some r -> r | None -> assert false (* all slots filled *))
      results
  end

let map t f items = mapi_worker t (fun ~worker:_ ~index:_ x -> f x) items

let run_all t thunks =
  let arr = Array.of_list thunks in
  mapi_worker t (fun ~worker:_ ~index:_ th -> th ()) arr |> Array.to_list
