(** A fixed-size pool of worker domains with deterministic result
    ordering.

    The pool owns [domains] worker domains (spawned once, at
    {!create}) and a shared FIFO of tasks. Every fan-out entry point —
    {!map}, {!mapi_worker}, {!run_all} — submits one task per item,
    blocks until the whole batch has completed, and returns results in
    the submission order of the items, never in completion order. A
    task that raises is recorded and the exception of the {e
    lowest-indexed} failing item is re-raised in the caller once the
    batch has drained, so exception propagation is deterministic too.

    A pool created with [~domains:1] spawns no domains at all: every
    batch runs inline in the caller, making the 1-domain path
    behaviourally and performance-wise identical to plain sequential
    code. This is the contract the engine's determinism tests pin
    down: for deterministic task bodies, the observable results of a
    batch are a pure function of the items, independent of [domains].

    Tasks must not submit to the pool they run on (the caller is not a
    worker, so a nested submission would deadlock a worker waiting on
    its own queue); the engine layers keep all nesting in the caller.

    Worker domains share the OCaml heap: task bodies may freely read
    immutable structures (graphs, hypergraphs, compiled plans) but
    must confine mutation to per-task or per-worker state — the
    [worker] index passed by {!mapi_worker} indexes scratch arenas for
    exactly this purpose. *)

type t

val create : ?domains:int -> unit -> t
(** [create ~domains ()] builds a pool of size [domains]: for
    [domains >= 2] that many worker domains are spawned; for
    [domains = 1] none are and batches run inline. [domains] defaults
    to [Domain.recommended_domain_count ()] and must be >= 1 (values
    above 64 are clamped). *)

val domains : t -> int
(** The pool size requested at {!create} (1 for the inline pool). *)

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map pool f items]: [f] on every item, results in item order. *)

val mapi_worker : t -> (worker:int -> index:int -> 'a -> 'b) -> 'a array -> 'b array
(** Like {!map} but the task also learns which worker domain runs it
    ([worker] in [0 .. domains - 1]; always 0 on the inline pool) and
    its own item index. Use [worker] to index per-domain scratch. *)

val run_all : t -> (unit -> 'a) list -> 'a list
(** Heterogeneous batch of thunks, results in list order. *)

val shutdown : t -> unit
(** Stop the workers and join them. Idempotent. Submitting to a
    shut-down pool raises [Invalid_argument]. *)

val with_pool : ?domains:int -> (t -> 'a) -> 'a
(** [with_pool f] = create, run [f], always {!shutdown}. *)
