let default_within g = function
  | Some w -> w
  | None -> Ugraph.nodes g

let bfs ?within g s =
  let w = default_within g within in
  let dist = Array.make (Ugraph.n g) (-1) in
  if Iset.mem s w then begin
    dist.(s) <- 0;
    let q = Queue.create () in
    Queue.add s q;
    while not (Queue.is_empty q) do
      let u = Queue.pop q in
      Iset.iter
        (fun v ->
          if dist.(v) < 0 then begin
            dist.(v) <- dist.(u) + 1;
            Queue.add v q
          end)
        (Ugraph.adj_within g ~within:w u)
    done
  end;
  dist

let component ?within g s =
  let dist = bfs ?within g s in
  let acc = ref Iset.empty in
  Array.iteri (fun v d -> if d >= 0 then acc := Iset.add v !acc) dist;
  !acc

let components ?within g =
  let w = default_within g within in
  let rec go remaining acc =
    match Iset.min_elt_opt remaining with
    | None -> List.rev acc
    | Some s ->
      let c = component ~within:remaining g s in
      go (Iset.diff remaining c) (c :: acc)
  in
  go w []

let component_ids ?within g =
  let comps = components ?within g in
  let id = Array.make (Ugraph.n g) (-1) in
  List.iteri (fun k c -> Iset.iter (fun v -> id.(v) <- k) c) comps;
  (id, comps)

let is_connected ?within g =
  let w = default_within g within in
  match Iset.min_elt_opt w with
  | None -> true
  | Some s -> Iset.equal (component ~within:w g s) w

let connects ?within g p =
  let w = default_within g within in
  Iset.subset p w
  &&
  match Iset.min_elt_opt p with
  | None -> true
  | Some s -> Iset.subset p (component ~within:w g s)

let component_containing ?within g p =
  let w = default_within g within in
  if not (Iset.subset p w) then None
  else
    match Iset.min_elt_opt p with
    | None -> (
      match Iset.min_elt_opt w with
      | None -> Some Iset.empty
      | Some s -> Some (component ~within:w g s))
    | Some s ->
      let c = component ~within:w g s in
      if Iset.subset p c then Some c else None

let shortest_path ?within g s t =
  let w = default_within g within in
  if not (Iset.mem s w && Iset.mem t w) then None
  else begin
    let parent = Array.make (Ugraph.n g) (-1) in
    let seen = Array.make (Ugraph.n g) false in
    seen.(s) <- true;
    let q = Queue.create () in
    Queue.add s q;
    let found = ref (s = t) in
    while (not !found) && not (Queue.is_empty q) do
      let u = Queue.pop q in
      Iset.iter
        (fun v ->
          if not seen.(v) then begin
            seen.(v) <- true;
            parent.(v) <- u;
            if v = t then found := true else Queue.add v q
          end)
        (Ugraph.adj_within g ~within:w u)
    done;
    if not !found then None
    else begin
      let rec build v acc =
        if v = s then s :: acc else build parent.(v) (v :: acc)
      in
      Some (build t [])
    end
  end

let distance ?within g s t =
  let w = default_within g within in
  if not (Iset.mem s w) then None
  else
    let d = (bfs ~within:w g s).(t) in
    if d < 0 then None else Some d

let all_pairs_distances g =
  Array.init (Ugraph.n g) (fun s -> bfs g s)
