(** Simple undirected graphs over the node universe [{0, ..., n-1}].

    The structure is immutable once built; use {!Builder} for efficient
    incremental construction. Self-loops are rejected and parallel edges
    collapse (the adjacency is a set). Several algorithms in this
    repository work on an {e induced subgraph}: rather than materialise
    the subgraph, they take an optional [within] node set and simply
    ignore nodes outside it — see {!Traverse}. *)

type t

val create : int -> t
(** [create n] is the edgeless graph on [n] nodes. Raises
    [Invalid_argument] if [n < 0]. *)

val of_edges : n:int -> (int * int) list -> t
(** [of_edges ~n edges] builds a graph on [n] nodes with the given
    undirected edges. Raises [Invalid_argument] on out-of-range
    endpoints or self-loops. *)

val of_adjacency : Iset.t array -> m:int -> t
(** Trusted O(1) constructor over a prebuilt adjacency: the caller
    guarantees the array is symmetric ([v ∈ adj.(u)] iff [u ∈ adj.(v)]),
    self-loop-free, in range, and that [m] is the undirected edge
    count. Used by [Csr.to_ugraph] to convert a million-node CSR back
    to sets without per-edge AVL inserts; not for general use. *)

val add_edge : t -> int -> int -> t
(** Functional edge insertion (O(n) copy; prefer {!Builder} in loops). *)

val remove_edge : t -> int -> int -> t

val n : t -> int
(** Number of nodes. *)

val m : t -> int
(** Number of (undirected) edges. *)

val mem_edge : t -> int -> int -> bool

val neighbors : t -> int -> Iset.t

val degree : t -> int -> int

val nodes : t -> Iset.t

val edges : t -> (int * int) list
(** Each undirected edge reported once, as [(u, v)] with [u < v]. *)

val fold_edges : (int -> int -> 'a -> 'a) -> t -> 'a -> 'a

val adj_within : t -> within:Iset.t -> int -> Iset.t
(** Neighbors intersected with [within]. *)

val neighborhood : t -> Iset.t -> Iset.t
(** [neighborhood g w] is the set of nodes adjacent to at least one node
    of [w] — the paper's [Adj(W)]; it may intersect [w]. *)

val private_neighbors : t -> within:Iset.t -> int -> Iset.t
(** [private_neighbors g ~within v] is the paper's [Adj*(v)] relative to
    the induced subgraph on [within]: nodes of [within] adjacent to [v]
    and to no other node of [within]. *)

val induced : t -> Iset.t -> t * int array
(** [induced g w] materialises the induced subgraph, renumbering nodes
    to [0..card w - 1]; the returned array maps new indices back to the
    original node ids. *)

val is_clique : t -> Iset.t -> bool

val complement : t -> t

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

module Builder : sig
  type graph := t
  type t

  val create : int -> t
  val add_edge : t -> int -> int -> unit
  val build : t -> graph
end
