(** Chordal (triangulated) graph recognition.

    A graph is chordal when every cycle of length at least 4 has a
    chord, equivalently when it admits a perfect elimination ordering.
    The recogniser is the classical Rose–Tarjan–Lueker scheme: take a
    LexBFS ordering, reverse it, and verify that the reversal is a
    perfect elimination ordering. The verification runs on a flat
    {!Csr} adjacency; the original set-based checker is kept under a
    [_sets] suffix as a differential-testing reference. A brute-force
    chordless-cycle search is provided as an independent oracle for the
    test suite. *)

val is_perfect_elimination_order : ?within:Iset.t -> Ugraph.t -> int list -> bool
(** [is_perfect_elimination_order g order] checks that for each node,
    its neighbors occurring later in [order] form a clique. [order] must
    enumerate exactly the nodes of the induced subgraph. *)

val is_perfect_elimination_order_sets :
  ?within:Iset.t -> Ugraph.t -> int list -> bool
(** Set-based reference implementation of
    {!is_perfect_elimination_order}. *)

val perfect_elimination_order : ?within:Iset.t -> Ugraph.t -> int list option
(** A perfect elimination ordering if the (induced) graph is chordal,
    [None] otherwise. *)

val is_chordal : ?within:Iset.t -> Ugraph.t -> bool

val is_chordal_sets : ?within:Iset.t -> Ugraph.t -> bool
(** Set-based reference pipeline (LexBFS + elimination-order check both
    on the original representation); agrees with {!is_chordal}. *)

val is_chordal_brute : ?within:Iset.t -> Ugraph.t -> bool
(** Exhaustive search for a chordless cycle of length >= 4.
    Exponential; test oracle only. *)

val simplicial_nodes : ?within:Iset.t -> Ugraph.t -> Iset.t
(** Nodes whose neighborhood (within the subgraph) is a clique. *)
