(** Dense mutable bitsets over [{0, ..., len - 1}].

    The flat kernel counterpart of {!Iset}: membership, intersection
    cardinality and set combination run over packed machine words, so
    the hot algorithm ports ({!Lexbfs}, {!Chordal}, [Hypergraphs.Mcs],
    [Steiner.Algorithm1]) pay O(len / word_size) per set operation and
    allocate nothing on their inner loops. All binary operations
    require both operands to have the same [length] and raise
    [Invalid_argument] otherwise, as do out-of-range indices. *)

type t

val create : int -> t
(** [create len] is the empty set over [{0, ..., len - 1}]. *)

val length : t -> int
(** The universe size the set was created with (not its cardinality). *)

val copy : t -> t

val clear : t -> unit
(** Empty the set in place. *)

val assign : dst:t -> src:t -> unit
(** Overwrite [dst] with the contents of [src] (same length). *)

val mem : t -> int -> bool

val add : t -> int -> unit
(** In place. *)

val remove : t -> int -> unit
(** In place. *)

val card : t -> int
(** Population count. *)

val is_empty : t -> bool

val equal : t -> t -> bool

val subset : t -> t -> bool

val inter_card : t -> t -> int
(** [inter_card a b] is [card (inter a b)] without allocating. *)

val disjoint : t -> t -> bool

val union : t -> t -> t

val inter : t -> t -> t

val diff : t -> t -> t

val union_into : t -> t -> unit
(** [union_into a b] sets [a <- a ∪ b] in place; similarly below. *)

val inter_into : t -> t -> unit

val diff_into : t -> t -> unit

val iter : (int -> unit) -> t -> unit
(** Ascending order. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
(** Ascending order, like [Iset.fold]. *)

val min_elt_opt : t -> int option

val of_iset : len:int -> Iset.t -> t
(** Raises [Invalid_argument] if the set contains an element outside
    [{0, ..., len - 1}]. *)

val to_iset : t -> Iset.t

val elements : t -> int list
(** Ascending order. *)

val pp : Format.formatter -> t -> unit
