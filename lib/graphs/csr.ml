(* Compressed sparse row adjacency: one flat [col] array holding every
   neighbor list back to back, delimited by [row]. Built once from a
   {!Ugraph} and then read-only, so traversals are cache-friendly and
   membership is a binary search instead of a balanced-tree descent. *)

type t = { n : int; m : int; row : int array; col : int array }

let of_ugraph g =
  let n = Ugraph.n g in
  let row = Array.make (n + 1) 0 in
  for u = 0 to n - 1 do
    row.(u + 1) <- row.(u) + Ugraph.degree g u
  done;
  let col = Array.make row.(n) 0 in
  let cursor = Array.copy row in
  for u = 0 to n - 1 do
    (* Iset.iter is ascending, so each row comes out sorted. *)
    Iset.iter
      (fun v ->
        col.(cursor.(u)) <- v;
        cursor.(u) <- cursor.(u) + 1)
      (Ugraph.neighbors g u)
  done;
  { n; m = Ugraph.m g; row; col }

let n t = t.n
let m t = t.m

let check t u =
  if u < 0 || u >= t.n then invalid_arg "Csr: node out of range"

let degree t u =
  check t u;
  t.row.(u + 1) - t.row.(u)

let sorted_neighbors t u =
  check t u;
  Array.sub t.col t.row.(u) (t.row.(u + 1) - t.row.(u))

let iter_neighbors t u f =
  check t u;
  for k = t.row.(u) to t.row.(u + 1) - 1 do
    f t.col.(k)
  done

let fold_neighbors t u f acc =
  check t u;
  let acc = ref acc in
  for k = t.row.(u) to t.row.(u + 1) - 1 do
    acc := f !acc t.col.(k)
  done;
  !acc

let mem_edge t u v =
  check t u;
  check t v;
  let lo = ref t.row.(u) and hi = ref (t.row.(u + 1) - 1) in
  let found = ref false in
  while (not !found) && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let w = t.col.(mid) in
    if w = v then found := true
    else if w < v then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let adj_within t within u =
  check t u;
  if Bitset.length within <> t.n then invalid_arg "Csr.adj_within: length";
  let out = Bitset.create t.n in
  for k = t.row.(u) to t.row.(u + 1) - 1 do
    let v = t.col.(k) in
    if Bitset.mem within v then Bitset.add out v
  done;
  out

let degree_within t within u =
  check t u;
  let acc = ref 0 in
  for k = t.row.(u) to t.row.(u + 1) - 1 do
    if Bitset.mem within t.col.(k) then incr acc
  done;
  !acc

let to_ugraph t =
  let b = Ugraph.Builder.create t.n in
  for u = 0 to t.n - 1 do
    for k = t.row.(u) to t.row.(u + 1) - 1 do
      if u < t.col.(k) then Ugraph.Builder.add_edge b u t.col.(k)
    done
  done;
  Ugraph.Builder.build b
