(* Compressed sparse row adjacency: one flat [col] array holding every
   neighbor list back to back, delimited by [row]. Built once — from a
   {!Ugraph} or directly from an edge stream — and then read-only, so
   traversals are cache-friendly and membership is a binary search
   instead of a balanced-tree descent. *)

type t = { n : int; m : int; row : int array; col : int array }

let cmp_int (a : int) (b : int) = compare a b

let check_edge n u v =
  if u < 0 || u >= n || v < 0 || v >= n then
    invalid_arg "Csr: node out of range";
  if u = v then invalid_arg "Csr: self-loop"

(* Direct two-pass construction over a replayable edge stream: pass 1
   counts degrees, pass 2 fills the rows, then each row is sorted and
   deduplicated in place. No per-node set is ever materialised — the
   working state is three int arrays — which is what makes million-node
   construction cheap. The stream must replay identically (the builder
   below and the workload generators both guarantee this). *)
let of_edge_iter ~n iter =
  if n < 0 then invalid_arg "Csr.of_edge_iter: negative size";
  let row = Array.make (n + 1) 0 in
  iter (fun u v ->
      check_edge n u v;
      row.(u + 1) <- row.(u + 1) + 1;
      row.(v + 1) <- row.(v + 1) + 1);
  for u = 1 to n do
    row.(u) <- row.(u) + row.(u - 1)
  done;
  let total = row.(n) in
  let col = Array.make total 0 in
  let cursor = Array.sub row 0 (max n 1) in
  iter (fun u v ->
      col.(cursor.(u)) <- v;
      cursor.(u) <- cursor.(u) + 1;
      col.(cursor.(v)) <- u;
      cursor.(v) <- cursor.(v) + 1);
  for u = 0 to n - 1 do
    if cursor.(u) <> row.(u + 1) then
      invalid_arg "Csr.of_edge_iter: stream changed between passes"
  done;
  (* Sort each row, then compact duplicates in place: the write cursor
     never overtakes the read position, so one [col] array suffices.
     Short rows — the common case in the bounded-degree scale
     workloads — are insertion-sorted directly inside [col], so the
     whole sorting pass allocates nothing; only genuinely long rows pay
     for a scratch copy and the general-purpose sort. *)
  for u = 0 to n - 1 do
    let s = row.(u) and e = row.(u + 1) in
    if e - s > 1 then
      if e - s <= 32 then
        for k = s + 1 to e - 1 do
          let v = col.(k) in
          let j = ref (k - 1) in
          while !j >= s && col.(!j) > v do
            col.(!j + 1) <- col.(!j);
            decr j
          done;
          col.(!j + 1) <- v
        done
      else begin
        let tmp = Array.sub col s (e - s) in
        Array.sort cmp_int tmp;
        Array.blit tmp 0 col s (e - s)
      end
  done;
  let out_row = Array.make (n + 1) 0 in
  let w = ref 0 in
  for u = 0 to n - 1 do
    out_row.(u) <- !w;
    let prev = ref min_int in
    for k = row.(u) to row.(u + 1) - 1 do
      let v = col.(k) in
      if v <> !prev then begin
        col.(!w) <- v;
        incr w;
        prev := v
      end
    done
  done;
  out_row.(n) <- !w;
  let col = if !w = total then col else Array.sub col 0 !w in
  { n; m = !w / 2; row = out_row; col }

let of_edges ~n edges =
  of_edge_iter ~n (fun f -> List.iter (fun (u, v) -> f u v) edges)

(* Growable flat edge buffer feeding the two-pass build: the only
   allocation per edge is the occasional doubling, so streaming a
   million edges through it stays a few flat arrays end to end. *)
module Builder = struct
  type t = {
    bn : int;
    mutable len : int;
    mutable src : int array;
    mutable dst : int array;
  }

  let create ?(hint = 16) bn =
    if bn < 0 then invalid_arg "Csr.Builder.create: negative size";
    let cap = max hint 1 in
    { bn; len = 0; src = Array.make cap 0; dst = Array.make cap 0 }

  let add_edge b u v =
    check_edge b.bn u v;
    if b.len = Array.length b.src then begin
      let cap = 2 * b.len in
      let src = Array.make cap 0 and dst = Array.make cap 0 in
      Array.blit b.src 0 src 0 b.len;
      Array.blit b.dst 0 dst 0 b.len;
      b.src <- src;
      b.dst <- dst
    end;
    b.src.(b.len) <- u;
    b.dst.(b.len) <- v;
    b.len <- b.len + 1

  let length b = b.len

  let build b =
    of_edge_iter ~n:b.bn (fun f ->
        for k = 0 to b.len - 1 do
          f b.src.(k) b.dst.(k)
        done)
end

let of_ugraph g =
  let n = Ugraph.n g in
  let row = Array.make (n + 1) 0 in
  for u = 0 to n - 1 do
    row.(u + 1) <- row.(u) + Ugraph.degree g u
  done;
  let col = Array.make row.(n) 0 in
  let cursor = Array.copy row in
  for u = 0 to n - 1 do
    (* Iset.iter is ascending, so each row comes out sorted. *)
    Iset.iter
      (fun v ->
        col.(cursor.(u)) <- v;
        cursor.(u) <- cursor.(u) + 1)
      (Ugraph.neighbors g u)
  done;
  { n; m = Ugraph.m g; row; col }

let n t = t.n
let m t = t.m

let check t u =
  if u < 0 || u >= t.n then invalid_arg "Csr: node out of range"

let degree t u =
  check t u;
  t.row.(u + 1) - t.row.(u)

let sorted_neighbors t u =
  check t u;
  Array.sub t.col t.row.(u) (t.row.(u + 1) - t.row.(u))

let iter_neighbors t u f =
  check t u;
  for k = t.row.(u) to t.row.(u + 1) - 1 do
    f t.col.(k)
  done

let fold_neighbors t u f acc =
  check t u;
  let acc = ref acc in
  for k = t.row.(u) to t.row.(u + 1) - 1 do
    acc := f !acc t.col.(k)
  done;
  !acc

let mem_edge t u v =
  check t u;
  check t v;
  let lo = ref t.row.(u) and hi = ref (t.row.(u + 1) - 1) in
  let found = ref false in
  while (not !found) && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let w = t.col.(mid) in
    if w = v then found := true
    else if w < v then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let adj_within t within u =
  check t u;
  if Bitset.length within <> t.n then invalid_arg "Csr.adj_within: length";
  let out = Bitset.create t.n in
  for k = t.row.(u) to t.row.(u + 1) - 1 do
    let v = t.col.(k) in
    if Bitset.mem within v then Bitset.add out v
  done;
  out

let degree_within t within u =
  check t u;
  let acc = ref 0 in
  for k = t.row.(u) to t.row.(u + 1) - 1 do
    if Bitset.mem within t.col.(k) then incr acc
  done;
  !acc

(* Rows are sorted and duplicate-free, so each adjacency set can be
   assembled by [Iset.of_list] on an already-sorted list and handed to
   the trusted [Ugraph.of_adjacency] constructor: linear in n + m
   instead of an AVL insertion per directed edge. *)
let to_ugraph t =
  let adj =
    Array.init t.n (fun u ->
        Iset.of_list
          (Array.to_list (Array.sub t.col t.row.(u) (t.row.(u + 1) - t.row.(u)))))
  in
  Ugraph.of_adjacency adj ~m:t.m

let equal a b = a.n = b.n && a.m = b.m && a.row = b.row && a.col = b.col

(* Flat component labelling: one array-based BFS sweep over the rows,
   no per-component distance arrays or set differences, so a graph made
   of many small components is labelled in O(n + m) total. Components
   are numbered by ascending minimum element — the same order
   [Traverse.component_ids] produces. *)
let component_ids t =
  let id = Array.make t.n (-1) in
  let queue = Array.make (max t.n 1) 0 in
  let k = ref 0 in
  for s = 0 to t.n - 1 do
    if id.(s) < 0 then begin
      let cid = !k in
      incr k;
      id.(s) <- cid;
      queue.(0) <- s;
      let head = ref 0 and tail = ref 1 in
      while !head < !tail do
        let u = queue.(!head) in
        incr head;
        for p = t.row.(u) to t.row.(u + 1) - 1 do
          let v = t.col.(p) in
          if id.(v) < 0 then begin
            id.(v) <- cid;
            queue.(!tail) <- v;
            incr tail
          end
        done
      done
    end
  done;
  let acc = Array.make (max !k 1) [] in
  for v = t.n - 1 downto 0 do
    acc.(id.(v)) <- v :: acc.(id.(v))
  done;
  (id, List.init !k (fun c -> Iset.of_list acc.(c)))
