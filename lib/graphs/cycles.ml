let default_within g = function
  | Some w -> w
  | None -> Ugraph.nodes g

let is_acyclic ?within g =
  let w = default_within g within in
  let edge_count =
    Iset.fold
      (fun u acc -> acc + Iset.cardinal (Ugraph.adj_within g ~within:w u))
      w 0
    / 2
  in
  let ncomp = List.length (Traverse.components ~within:w g) in
  edge_count = Iset.cardinal w - ncomp

let find_cycle ?within g =
  let w = default_within g within in
  let color = Array.make (Ugraph.n g) 0 in
  let parent = Array.make (Ugraph.n g) (-1) in
  let result = ref None in
  let rec dfs u =
    color.(u) <- 1;
    Iset.iter
      (fun v ->
        if !result = None && v <> parent.(u) then
          if color.(v) = 1 then begin
            (* Back edge: walk parents from u back to v. *)
            let rec collect x acc =
              if x = v then v :: acc else collect parent.(x) (x :: acc)
            in
            result := Some (collect u [])
          end
          else if color.(v) = 0 then begin
            parent.(v) <- u;
            dfs v
          end)
      (Ugraph.adj_within g ~within:w u);
    color.(u) <- 2
  in
  Iset.iter (fun s -> if color.(s) = 0 && !result = None then dfs s) w;
  !result

let iter_simple_cycles ?within ?(min_len = 3) ?max_len g f =
  let w = default_within g within in
  let bound = match max_len with Some b -> b | None -> Iset.cardinal w in
  let on_path = Array.make (Ugraph.n g) false in
  (* Paths start at the cycle's smallest node [s] and may only use nodes
     greater than [s]; a cycle is reported when the path closes back on
     [s]. To report each cycle once (not once per direction), we require
     the second node of the path to be smaller than the node preceding
     the closing edge. *)
  let rec extend s path len last =
    Iset.iter
      (fun v ->
        if v = s && len >= max 3 min_len then begin
          match List.rev path with
          | _ :: second :: _ when second < last -> f (List.rev path)
          | _ -> ()
        end
        else if v > s && (not on_path.(v)) && len < bound then begin
          on_path.(v) <- true;
          extend s (v :: path) (len + 1) v;
          on_path.(v) <- false
        end)
      (Ugraph.adj_within g ~within:w last)
  in
  Iset.iter
    (fun s ->
      on_path.(s) <- true;
      extend s [ s ] 1 s;
      on_path.(s) <- false)
    w

let simple_cycles ?within ?min_len ?max_len g =
  let acc = ref [] in
  iter_simple_cycles ?within ?min_len ?max_len g (fun c -> acc := c :: !acc);
  List.rev !acc

let chords g cycle =
  let arr = Array.of_list cycle in
  let k = Array.length arr in
  let acc = ref [] in
  for i = 0 to k - 1 do
    for j = i + 1 to k - 1 do
      let consecutive = j = i + 1 || (i = 0 && j = k - 1) in
      if (not consecutive) && Ugraph.mem_edge g arr.(i) arr.(j) then
        acc := (arr.(i), arr.(j)) :: !acc
    done
  done;
  List.rev !acc

let exists_cycle_with_few_chords_sets g ~min_len ~max_chords =
  let exception Found in
  try
    iter_simple_cycles ~min_len g (fun c ->
        if List.length (chords g c) <= max_chords then raise Found);
    false
  with Found -> true

(* CSR kernel for the same witness search. Paths start at the cycle's
   smallest node [s] and only use nodes greater than [s]; the chord
   count is maintained incrementally so branches that already exceed
   [max_chords] are pruned: an edge from the new path node to any
   earlier path node other than its predecessor or [s] stays
   non-consecutive in every cycle completing the path, hence is a chord
   of all of them. Chords incident to [s] are charged when the cycle
   closes ([s]'s cycle neighbors are the second and the last node). *)
let exists_cycle_with_few_chords g ~min_len ~max_chords =
  let csr = Csr.of_ugraph g in
  let n = Ugraph.n g in
  let min_len = max 3 min_len in
  let on_path = Array.make n false in
  let posn = Array.make n (-1) in
  let exception Found in
  let rec extend s depth last nchords =
    Csr.iter_neighbors csr last (fun v ->
        if v = s && depth >= min_len then begin
          let s_chords = ref 0 in
          Csr.iter_neighbors csr s (fun u ->
              if on_path.(u) && posn.(u) >= 2 && posn.(u) <= depth - 2 then
                incr s_chords);
          if nchords + !s_chords <= max_chords then raise Found
        end
        else if v > s && not on_path.(v) then begin
          let extra = ref 0 in
          Csr.iter_neighbors csr v (fun u ->
              if on_path.(u) && u <> last && u <> s then incr extra);
          let nchords = nchords + !extra in
          if nchords <= max_chords then begin
            on_path.(v) <- true;
            posn.(v) <- depth;
            extend s (depth + 1) v nchords;
            on_path.(v) <- false;
            posn.(v) <- -1
          end
        end)
  in
  try
    for s = 0 to n - 1 do
      on_path.(s) <- true;
      posn.(s) <- 0;
      extend s 1 s 0;
      on_path.(s) <- false;
      posn.(s) <- -1
    done;
    false
  with Found -> true

let girth ?within g =
  let w = default_within g within in
  (* For each edge (u, v): shortest cycle through that edge is
     1 + distance from u to v in the graph without that edge. *)
  let best = ref max_int in
  Iset.iter
    (fun u ->
      Iset.iter
        (fun v ->
          if u < v then begin
            let g' = Ugraph.remove_edge g u v in
            match Traverse.distance ~within:w g' u v with
            | Some d when d + 1 < !best -> best := d + 1
            | Some _ | None -> ()
          end)
        (Ugraph.adj_within g ~within:w u))
    w;
  if !best = max_int then None else Some !best
