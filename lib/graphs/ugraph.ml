type t = { size : int; adj : Iset.t array; nedges : int }

let create size =
  if size < 0 then invalid_arg "Ugraph.create: negative size";
  { size; adj = Array.make size Iset.empty; nedges = 0 }

let check_endpoint g u =
  if u < 0 || u >= g.size then invalid_arg "Ugraph: node out of range"

let mem_edge g u v =
  check_endpoint g u;
  check_endpoint g v;
  Iset.mem v g.adj.(u)

let add_edge g u v =
  check_endpoint g u;
  check_endpoint g v;
  if u = v then invalid_arg "Ugraph.add_edge: self-loop";
  if Iset.mem v g.adj.(u) then g
  else begin
    let adj = Array.copy g.adj in
    adj.(u) <- Iset.add v adj.(u);
    adj.(v) <- Iset.add u adj.(v);
    { g with adj; nedges = g.nedges + 1 }
  end

let remove_edge g u v =
  check_endpoint g u;
  check_endpoint g v;
  if not (Iset.mem v g.adj.(u)) then g
  else begin
    let adj = Array.copy g.adj in
    adj.(u) <- Iset.remove v adj.(u);
    adj.(v) <- Iset.remove u adj.(v);
    { g with adj; nedges = g.nedges - 1 }
  end

let n g = g.size
let m g = g.nedges

let neighbors g u =
  check_endpoint g u;
  g.adj.(u)

let degree g u = Iset.cardinal (neighbors g u)
let nodes g = Iset.range g.size

let fold_edges f g acc =
  let acc = ref acc in
  for u = 0 to g.size - 1 do
    Iset.iter (fun v -> if u < v then acc := f u v !acc) g.adj.(u)
  done;
  !acc

let edges g = List.rev (fold_edges (fun u v l -> (u, v) :: l) g [])

let adj_within g ~within u = Iset.inter (neighbors g u) within

let neighborhood g w =
  Iset.fold (fun u acc -> Iset.union g.adj.(u) acc) w Iset.empty

let private_neighbors g ~within v =
  let candidates = Iset.inter g.adj.(v) within in
  let only_v u =
    Iset.for_all (fun w -> w = v || not (Iset.mem w within)) g.adj.(u)
  in
  Iset.filter only_v candidates

module Builder = struct
  type t = { bsize : int; badj : Iset.t array; mutable bm : int }

  let create bsize =
    if bsize < 0 then invalid_arg "Ugraph.Builder.create: negative size";
    { bsize; badj = Array.make bsize Iset.empty; bm = 0 }

  let add_edge b u v =
    if u < 0 || u >= b.bsize || v < 0 || v >= b.bsize then
      invalid_arg "Ugraph.Builder.add_edge: node out of range";
    if u = v then invalid_arg "Ugraph.Builder.add_edge: self-loop";
    if not (Iset.mem v b.badj.(u)) then begin
      b.badj.(u) <- Iset.add v b.badj.(u);
      b.badj.(v) <- Iset.add u b.badj.(v);
      b.bm <- b.bm + 1
    end

  let build b = { size = b.bsize; adj = Array.copy b.badj; nedges = b.bm }
end

let of_edges ~n edges =
  let b = Builder.create n in
  List.iter (fun (u, v) -> Builder.add_edge b u v) edges;
  Builder.build b

(* Trusted O(1) constructor for callers that already hold a coherent
   adjacency (Csr.to_ugraph): the array is adopted, not copied. *)
let of_adjacency adj ~m = { size = Array.length adj; adj; nedges = m }

let induced g w =
  let ids = Array.of_list (Iset.elements w) in
  let back = Hashtbl.create (Array.length ids) in
  Array.iteri (fun i v -> Hashtbl.replace back v i) ids;
  let b = Builder.create (Array.length ids) in
  Array.iteri
    (fun i v ->
      Iset.iter
        (fun u ->
          match Hashtbl.find_opt back u with
          | Some j when i < j -> Builder.add_edge b i j
          | Some _ | None -> ())
        g.adj.(v))
    ids;
  (Builder.build b, ids)

let is_clique g w =
  Iset.for_all
    (fun u -> Iset.for_all (fun v -> u = v || Iset.mem v g.adj.(u)) w)
    w

let complement g =
  let b = Builder.create g.size in
  for u = 0 to g.size - 1 do
    for v = u + 1 to g.size - 1 do
      if not (Iset.mem v g.adj.(u)) then Builder.add_edge b u v
    done
  done;
  Builder.build b

let equal g h =
  g.size = h.size && g.nedges = h.nedges
  && Array.for_all2 Iset.equal g.adj h.adj

let pp ppf g =
  Format.fprintf ppf "@[<v>graph on %d nodes, %d edges" g.size g.nedges;
  List.iter (fun (u, v) -> Format.fprintf ppf "@,  %d -- %d" u v) (edges g);
  Format.fprintf ppf "@]"
