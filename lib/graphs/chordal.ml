let default_within g = function
  | Some w -> w
  | None -> Ugraph.nodes g

(* Set-based reference implementation, kept for differential testing
   and benchmarking; the public [is_perfect_elimination_order] below is
   the CSR port and decides exactly the same predicate. *)
let is_perfect_elimination_order_sets ?within g order =
  let w = default_within g within in
  let pos = Hashtbl.create 16 in
  List.iteri (fun i v -> Hashtbl.replace pos v i) order;
  Iset.equal w (Iset.of_list order)
  && List.length order = Iset.cardinal w
  && List.for_all
       (fun v ->
         let i = Hashtbl.find pos v in
         let later =
           Iset.filter
             (fun u -> Hashtbl.find pos u > i)
             (Ugraph.adj_within g ~within:w v)
         in
         match Iset.min_elt_opt later with
         | None -> true
         | Some _ ->
           (* The earliest later neighbor must see all the others; this
              suffices by induction (Rose–Tarjan–Lueker). *)
           let parent =
             Iset.fold
               (fun u best ->
                 if Hashtbl.find pos u < Hashtbl.find pos best then u
                 else best)
               later (Iset.max_elt later)
           in
           Iset.subset
             (Iset.remove parent later)
             (Ugraph.adj_within g ~within:w parent))
       order

let is_perfect_elimination_order ?within g order =
  let w = default_within g within in
  if
    (not (Iset.equal w (Iset.of_list order)))
    || List.length order <> Iset.cardinal w
  then false
  else begin
    let csr = Csr.of_ugraph g in
    (* [order] enumerates exactly the nodes of [w], so [pos.(u) >= 0]
       doubles as the membership test for [w]. *)
    let pos = Array.make (Ugraph.n g) (-1) in
    List.iteri (fun i v -> pos.(v) <- i) order;
    let ok = ref true in
    List.iter
      (fun v ->
        if !ok then begin
          let i = pos.(v) in
          let parent = ref (-1) in
          Csr.iter_neighbors csr v (fun u ->
              if pos.(u) > i && (!parent < 0 || pos.(u) < pos.(!parent)) then
                parent := u);
          if !parent >= 0 then
            Csr.iter_neighbors csr v (fun u ->
                if
                  pos.(u) > i && u <> !parent
                  && not (Csr.mem_edge csr !parent u)
                then ok := false)
        end)
      order;
    !ok
  end

let perfect_elimination_order ?within g =
  let w = default_within g within in
  let candidate = List.rev (Lexbfs.lexbfs_order ~within:w g) in
  if is_perfect_elimination_order ~within:w g candidate then Some candidate
  else None

let is_chordal ?within g = perfect_elimination_order ?within g <> None

let is_chordal_sets ?within g =
  let w = default_within g within in
  let candidate = List.rev (Lexbfs.lexbfs_order_sets ~within:w g) in
  is_perfect_elimination_order_sets ~within:w g candidate

let is_chordal_brute ?within g =
  let w = default_within g within in
  let sub, _ = Ugraph.induced g w in
  not (Cycles.exists_cycle_with_few_chords sub ~min_len:4 ~max_chords:0)

let simplicial_nodes ?within g =
  let w = default_within g within in
  Iset.filter (fun v -> Ugraph.is_clique g (Ugraph.adj_within g ~within:w v)) w
