(* Dense bitsets over [{0, ..., len - 1}], packed into OCaml's native
   63-bit integers. The structure is mutable: the [_into] operations
   update their first argument in place so hot loops allocate nothing;
   the binary operations allocate a fresh result. *)

let bpw = Sys.int_size (* bits per word: 63 on 64-bit platforms *)

type t = { len : int; words : int array }

let nwords len = (len + bpw - 1) / bpw

let create len =
  if len < 0 then invalid_arg "Bitset.create: negative length";
  { len; words = Array.make (nwords len) 0 }

let length t = t.len

let copy t = { t with words = Array.copy t.words }

let clear t = Array.fill t.words 0 (Array.length t.words) 0

let assign ~dst ~src =
  if dst.len <> src.len then invalid_arg "Bitset.assign: length mismatch";
  Array.blit src.words 0 dst.words 0 (Array.length src.words)

let check t i =
  if i < 0 || i >= t.len then invalid_arg "Bitset: index out of range"

let mem t i =
  check t i;
  t.words.(i / bpw) land (1 lsl (i mod bpw)) <> 0

let add t i =
  check t i;
  t.words.(i / bpw) <- t.words.(i / bpw) lor (1 lsl (i mod bpw))

let remove t i =
  check t i;
  t.words.(i / bpw) <- t.words.(i / bpw) land lnot (1 lsl (i mod bpw))

(* SWAR popcount, written for 63-bit words: the usual byte-wise masks
   are built by shifting so no literal exceeds [max_int]. *)
let m1 = 0x55555555 lor (0x55555555 lsl 32)
let m2 = 0x33333333 lor (0x33333333 lsl 32)
let m4 = 0x0F0F0F0F lor (0x0F0F0F0F lsl 32)

let popcount x =
  let x = x - ((x lsr 1) land m1) in
  let x = (x land m2) + ((x lsr 2) land m2) in
  let x = (x + (x lsr 4)) land m4 in
  let x = x + (x lsr 8) in
  let x = x + (x lsr 16) in
  let x = x + (x lsr 32) in
  x land 0x7F

let card t =
  let acc = ref 0 in
  for k = 0 to Array.length t.words - 1 do
    acc := !acc + popcount t.words.(k)
  done;
  !acc

let is_empty t = Array.for_all (fun w -> w = 0) t.words

let equal a b =
  a.len = b.len && Array.for_all2 (fun x y -> x = y) a.words b.words

let check_pair a b =
  if a.len <> b.len then invalid_arg "Bitset: length mismatch"

let subset a b =
  check_pair a b;
  let ok = ref true in
  for k = 0 to Array.length a.words - 1 do
    if a.words.(k) land lnot b.words.(k) <> 0 then ok := false
  done;
  !ok

let inter_card a b =
  check_pair a b;
  let acc = ref 0 in
  for k = 0 to Array.length a.words - 1 do
    acc := !acc + popcount (a.words.(k) land b.words.(k))
  done;
  !acc

let disjoint a b = inter_card a b = 0

let map2_into f a b =
  check_pair a b;
  for k = 0 to Array.length a.words - 1 do
    a.words.(k) <- f a.words.(k) b.words.(k)
  done

let union_into a b = map2_into ( lor ) a b
let inter_into a b = map2_into ( land ) a b
let diff_into a b = map2_into (fun x y -> x land lnot y) a b

let map2 f a b =
  let r = copy a in
  map2_into f r b;
  r

let union a b = map2 ( lor ) a b
let inter a b = map2 ( land ) a b
let diff a b = map2 (fun x y -> x land lnot y) a b

(* Number of trailing zeros of a one-bit word [b]: popcount (b - 1). *)
let iter f t =
  for k = 0 to Array.length t.words - 1 do
    let w = ref t.words.(k) in
    while !w <> 0 do
      let b = !w land (- !w) in
      f ((k * bpw) + popcount (b - 1));
      w := !w land lnot b
    done
  done

let fold f t acc =
  let acc = ref acc in
  iter (fun i -> acc := f i !acc) t;
  !acc

let min_elt_opt t =
  let result = ref None in
  (try
     for k = 0 to Array.length t.words - 1 do
       let w = t.words.(k) in
       if w <> 0 then begin
         result := Some ((k * bpw) + popcount ((w land (-w)) - 1));
         raise Exit
       end
     done
   with Exit -> ());
  !result

let of_iset ~len s =
  let t = create len in
  Iset.iter (fun i -> add t i) s;
  t

let to_iset t = fold Iset.add t Iset.empty
let elements t = List.rev (fold (fun i acc -> i :: acc) t [])

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       Format.pp_print_int)
    (elements t)
