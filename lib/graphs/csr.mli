(** Compressed sparse row adjacency.

    Built once — from a {!Ugraph} ([of_ugraph], O(n + m)) or directly
    from an edge stream ([of_edge_iter] / [of_edges] / {!Builder},
    which never materialise per-node sets) — and then read-only:
    neighbor lists live back to back in one flat array, sorted
    ascending, so traversal is sequential memory access and edge
    membership is a binary search. Pairs with {!Bitset} for the
    [within]-restricted traversals the paper's algorithms use. *)

type t

val of_ugraph : Ugraph.t -> t

val of_edge_iter : n:int -> ((int -> int -> unit) -> unit) -> t
(** [of_edge_iter ~n iter] builds the adjacency directly from an edge
    stream in two passes (degree count, then fill) followed by an
    in-place sort-unique per row — no intermediate sets, no edge list.
    [iter f] must call [f u v] once per undirected edge occurrence and
    must replay the {e same} stream on both invocations (checked:
    a stream that changes length between passes raises). Duplicate and
    out-of-order edges are fine (collapsed by the per-row dedup);
    self-loops and out-of-range endpoints raise [Invalid_argument]. *)

val of_edges : n:int -> (int * int) list -> t
(** [of_edge_iter] over a concrete list. Same tolerance for duplicates
    and ordering as {!of_edge_iter}. *)

val equal : t -> t -> bool
(** Structural equality — and canonical: any two constructions of the
    same graph (whatever edge order or duplication built them) yield
    identical arrays. *)

val component_ids : t -> int array * Iset.t list
(** Flat O(n + m) connected-component labelling: [ids.(v)] indexes
    [v]'s component in the returned list. Components are numbered by
    ascending minimum element, matching [Traverse.component_ids]. *)

val n : t -> int
val m : t -> int

val degree : t -> int -> int

val sorted_neighbors : t -> int -> int array
(** Fresh copy of the neighbor row, ascending. Prefer
    {!iter_neighbors} / {!fold_neighbors} in hot loops. *)

val iter_neighbors : t -> int -> (int -> unit) -> unit
(** Ascending order, no allocation. *)

val fold_neighbors : t -> int -> ('a -> int -> 'a) -> 'a -> 'a

val mem_edge : t -> int -> int -> bool
(** Binary search in the neighbor row: O(log degree). *)

val adj_within : t -> Bitset.t -> int -> Bitset.t
(** [adj_within t within u]: neighbors of [u] restricted to [within]
    (which must have length [n t]), as a fresh bitset. *)

val degree_within : t -> Bitset.t -> int -> int
(** [card (adj_within t within u)] without allocating. *)

val to_ugraph : t -> Ugraph.t
(** Round-trip back to the set-based representation. Linear: each
    sorted row becomes an adjacency set without per-edge AVL inserts,
    so lazily deriving the set view of a million-node CSR is cheap
    enough for the few remaining set-based consumers. *)

module Builder : sig
  type csr := t
  type t

  val create : ?hint:int -> int -> t
  (** [create ?hint n]: an empty edge buffer over nodes [0..n-1];
      [hint] pre-sizes the buffer (edge count, not bytes). *)

  val add_edge : t -> int -> int -> unit
  (** Append one undirected edge. Duplicates are fine (collapsed at
      {!build}); self-loops and out-of-range endpoints raise. *)

  val length : t -> int
  (** Edges appended so far (before dedup). *)

  val build : t -> csr
  (** Two-pass count/fill over the buffered edges plus per-row
      sort-unique — the buffer is the only intermediate state. *)
end
