(** Compressed sparse row view of a {!Ugraph}.

    Built once at a kernel's entry point ([of_ugraph] is O(n + m)) and
    then read-only: neighbor lists live back to back in one flat array,
    sorted ascending, so traversal is sequential memory access and edge
    membership is a binary search. Pairs with {!Bitset} for the
    [within]-restricted traversals the paper's algorithms use. *)

type t

val of_ugraph : Ugraph.t -> t

val n : t -> int
val m : t -> int

val degree : t -> int -> int

val sorted_neighbors : t -> int -> int array
(** Fresh copy of the neighbor row, ascending. Prefer
    {!iter_neighbors} / {!fold_neighbors} in hot loops. *)

val iter_neighbors : t -> int -> (int -> unit) -> unit
(** Ascending order, no allocation. *)

val fold_neighbors : t -> int -> ('a -> int -> 'a) -> 'a -> 'a

val mem_edge : t -> int -> int -> bool
(** Binary search in the neighbor row: O(log degree). *)

val adj_within : t -> Bitset.t -> int -> Bitset.t
(** [adj_within t within u]: neighbors of [u] restricted to [within]
    (which must have length [n t]), as a fresh bitset. *)

val degree_within : t -> Bitset.t -> int -> int
(** [card (adj_within t within u)] without allocating. *)

val to_ugraph : t -> Ugraph.t
(** Round-trip back to the set-based representation (test support). *)
