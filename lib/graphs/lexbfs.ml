let default_within g = function
  | Some w -> w
  | None -> Ugraph.nodes g

(* Generic greedy search: repeatedly pick an unvisited node with the
   best label (ties broken by smallest id), then let each unvisited
   neighbor absorb the visit timestamp into its label. LexBFS compares
   timestamp lists lexicographically; MCS compares their lengths.

   This set-based version is kept as the differential-testing and
   benchmarking reference; the public [lexbfs_order] / [mcs_order]
   below are the flat CSR ports and produce identical orders. *)
let greedy_order ~better ?within ?start g =
  let w = default_within g within in
  let labels = Hashtbl.create 16 in
  let label v =
    match Hashtbl.find_opt labels v with Some l -> l | None -> []
  in
  let visited = Array.make (Ugraph.n g) false in
  let order = ref [] in
  let pick () =
    Iset.fold
      (fun v acc ->
        if visited.(v) then acc
        else
          match acc with
          | None -> Some v
          | Some u -> if better (label v) (label u) then Some v else Some u)
      w None
  in
  let visit time v =
    visited.(v) <- true;
    order := v :: !order;
    Iset.iter
      (fun u ->
        if not visited.(u) then Hashtbl.replace labels u (label u @ [ time ]))
      (Ugraph.adj_within g ~within:w v)
  in
  (match start with
  | Some s when Iset.mem s w -> visit 0 s
  | Some _ | None -> ());
  let time = ref (List.length !order) in
  let rec loop () =
    match pick () with
    | None -> ()
    | Some v ->
      visit !time v;
      incr time;
      loop ()
  in
  loop ();
  List.rev !order

(* Labels are increasing timestamp lists (earliest visited neighbor
   first). The LexBFS rule treats earlier timestamps as lexicographically
   greater symbols, and a proper extension of a label beats the label. *)
let rec lex_gt a b =
  match (a, b) with
  | [], _ -> false
  | _ :: _, [] -> true
  | x :: a', y :: b' -> x < y || (x = y && lex_gt a' b')

let lexbfs_order_sets ?within ?start g =
  greedy_order ~better:lex_gt ?within ?start g

let mcs_order_sets ?within ?start g =
  let better a b = List.length a > List.length b in
  greedy_order ~better ?within ?start g

(* ------------------------------------------------------------------ *)
(* CSR kernels. Same greedy rule and tie-breaking as the reference
   above (ascending scan, strictly-better replaces, so the smallest id
   wins ties), but adjacency comes from a flat CSR row, visited/within
   are plain arrays, and labels live in per-node int buffers instead of
   a hashtable of lists.                                               *)

let members_array g within =
  let inw = Array.make (Ugraph.n g) (within = None) in
  (match within with
  | Some w -> Iset.iter (fun v -> inw.(v) <- true) w
  | None -> ());
  inw

let greedy_order_kernel ~better ~absorb csr inw start =
  let n = Csr.n csr in
  let visited = Array.make n false in
  let order = ref [] in
  let count = ref 0 in
  let visit time v =
    visited.(v) <- true;
    order := v :: !order;
    incr count;
    Csr.iter_neighbors csr v (fun u ->
        if inw.(u) && not visited.(u) then absorb u time)
  in
  (match start with
  | Some s when s >= 0 && s < n && inw.(s) -> visit 0 s
  | Some _ | None -> ());
  let time = ref !count in
  let running = ref true in
  while !running do
    let best = ref (-1) in
    for v = 0 to n - 1 do
      if inw.(v) && not visited.(v) && (!best < 0 || better v !best) then
        best := v
    done;
    match !best with
    | -1 -> running := false
    | v ->
      visit !time v;
      incr time
  done;
  List.rev !order

let lexbfs_order ?within ?start g =
  let n = Ugraph.n g in
  let csr = Csr.of_ugraph g in
  let inw = members_array g within in
  let lab = Array.make n [||] in
  let len = Array.make n 0 in
  let absorb v time =
    if len.(v) = Array.length lab.(v) then begin
      let a = Array.make (max 4 (2 * Array.length lab.(v))) 0 in
      Array.blit lab.(v) 0 a 0 len.(v);
      lab.(v) <- a
    end;
    lab.(v).(len.(v)) <- time;
    len.(v) <- len.(v) + 1
  in
  let better u v =
    let la = lab.(u) and lb = lab.(v) in
    let na = len.(u) and nb = len.(v) in
    let rec go i =
      if i >= na then false
      else if i >= nb then true
      else if la.(i) <> lb.(i) then la.(i) < lb.(i)
      else go (i + 1)
    in
    go 0
  in
  greedy_order_kernel ~better ~absorb csr inw start

let mcs_order ?within ?start g =
  let csr = Csr.of_ugraph g in
  let inw = members_array g within in
  let count = Array.make (Ugraph.n g) 0 in
  let absorb v _time = count.(v) <- count.(v) + 1 in
  let better u v = count.(u) > count.(v) in
  greedy_order_kernel ~better ~absorb csr inw start

let lexbfs_partition_order ?within ?start g =
  let w = match within with Some w -> w | None -> Ugraph.nodes g in
  let initial =
    match start with
    | Some s when Iset.mem s w ->
      [ [ s ]; Iset.elements (Iset.remove s w) ]
    | Some _ | None -> [ Iset.elements w ]
  in
  let rec go classes order =
    match classes with
    | [] -> List.rev order
    | [] :: rest -> go rest order
    | (v :: vs) :: rest ->
      let remaining = if vs = [] then rest else vs :: rest in
      let nb = Ugraph.adj_within g ~within:w v in
      let refined =
        List.concat_map
          (fun cls ->
            let inside, outside =
              List.partition (fun u -> Iset.mem u nb) cls
            in
            List.filter (fun l -> l <> []) [ inside; outside ])
          remaining
      in
      go refined (v :: order)
  in
  go initial []
