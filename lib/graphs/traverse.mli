(** Traversals, connectivity and unweighted shortest paths.

    Every function takes an optional [within] set; nodes outside it are
    treated as deleted, so connectivity of induced subgraphs — the basic
    test in the paper's Algorithms 1 and 2 — never requires
    materialising the subgraph. When omitted, [within] defaults to all
    nodes of the graph. *)

val bfs : ?within:Iset.t -> Ugraph.t -> int -> int array
(** [bfs g s] returns the array of BFS distances from [s]; unreachable
    nodes (including nodes outside [within]) get [-1]. *)

val component : ?within:Iset.t -> Ugraph.t -> int -> Iset.t
(** Connected component of [s] in the induced subgraph. *)

val components : ?within:Iset.t -> Ugraph.t -> Iset.t list
(** All connected components of the induced subgraph. *)

val component_ids : ?within:Iset.t -> Ugraph.t -> int array * Iset.t list
(** One BFS sweep shared by many later membership queries: [ids.(v)] is
    the index of [v]'s component in the returned list ([-1] for nodes
    outside [within]). Whether a node set lies in one component is then
    O(|set|) instead of a fresh traversal. *)

val is_connected : ?within:Iset.t -> Ugraph.t -> bool
(** The induced subgraph is connected. Vacuously true when [within] is
    empty. *)

val connects : ?within:Iset.t -> Ugraph.t -> Iset.t -> bool
(** [connects g p] holds when all nodes of [p] lie in one connected
    component of the induced subgraph; requires [p] to be a subset of
    [within]. *)

val component_containing : ?within:Iset.t -> Ugraph.t -> Iset.t -> Iset.t option
(** The component containing all of [p], if [p] is indeed contained in a
    single component ([None] otherwise, or if some node of [p] is not in
    [within]). [Some] of the whole induced node set when [p] is empty and
    the subgraph is connected; for empty [p] on a disconnected subgraph,
    the first component is returned. *)

val shortest_path : ?within:Iset.t -> Ugraph.t -> int -> int -> int list option
(** A shortest path from [s] to [t] as a node list [s; ...; t]. *)

val distance : ?within:Iset.t -> Ugraph.t -> int -> int -> int option

val all_pairs_distances : Ugraph.t -> int array array
(** BFS from every node; [-1] marks unreachable pairs. *)
