(** Cycle detection, enumeration and chord counting.

    Enumeration of all simple cycles is exponential in general; it is
    used only as a brute-force oracle on small instances to validate the
    polynomial recognisers, and by the figure reconstructions. *)

val is_acyclic : ?within:Iset.t -> Ugraph.t -> bool
(** No cycle in the induced subgraph (i.e. it is a forest). *)

val find_cycle : ?within:Iset.t -> Ugraph.t -> int list option
(** Some simple cycle as a node list [v1; ...; vk] (with [vk] adjacent
    to [v1]), or [None] for forests. *)

val iter_simple_cycles :
  ?within:Iset.t -> ?min_len:int -> ?max_len:int -> Ugraph.t ->
  (int list -> unit) -> unit
(** Calls the function once per simple cycle (each cycle reported
    exactly once, starting at its smallest node, in the orientation
    whose second node is smaller than its last). [min_len] defaults to
    3, [max_len] to no bound. *)

val simple_cycles :
  ?within:Iset.t -> ?min_len:int -> ?max_len:int -> Ugraph.t -> int list list

val chords : Ugraph.t -> int list -> (int * int) list
(** [chords g cycle] lists the edges of [g] joining two non-consecutive
    nodes of the cycle. *)

val exists_cycle_with_few_chords : Ugraph.t -> min_len:int -> max_chords:int -> bool
(** Brute-force witness search for the failure of [(m, n)]-chordality:
    a cycle of length at least [min_len] with at most [max_chords]
    chords. Exponential in the worst case; runs on a flat {!Csr}
    adjacency with incremental chord counting, which prunes every
    branch whose partial path already carries too many chords. *)

val exists_cycle_with_few_chords_sets :
  Ugraph.t -> min_len:int -> max_chords:int -> bool
(** Set-based reference implementation (full cycle enumeration, chords
    counted per cycle); agrees with {!exists_cycle_with_few_chords}.
    Differential-testing and benchmarking only. *)

val girth : ?within:Iset.t -> Ugraph.t -> int option
(** Length of a shortest cycle, [None] for forests. Polynomial (BFS from
    every node). *)
