(** Lexicographic breadth-first search and maximum cardinality search.

    These are the two classical linear-time vertex orderings whose
    reversal is a perfect elimination ordering exactly on chordal
    graphs (Rose–Tarjan–Lueker; Tarjan–Yannakakis). The public
    functions are O(n^2) label kernels over a flat {!Csr} adjacency;
    the original [Set]-based versions are kept under a [_sets] suffix
    as references for differential testing and benchmarking — both
    implementations use the same greedy rule and tie-breaking (smallest
    node id), so they return {e identical} orders. *)

val lexbfs_order : ?within:Iset.t -> ?start:int -> Ugraph.t -> int list
(** Visit order (first visited first). Components are exhausted one at a
    time; [start] selects the first node. *)

val lexbfs_order_sets : ?within:Iset.t -> ?start:int -> Ugraph.t -> int list
(** Set-based reference implementation of {!lexbfs_order}. *)

val lexbfs_partition_order : ?within:Iset.t -> ?start:int -> Ugraph.t -> int list
(** Independent second implementation by partition refinement (the
    linear-time scheme): maintain an ordered partition of the unvisited
    nodes; visit the head of the first class and split every class into
    neighbors-then-others. Tie-breaking differs from {!lexbfs_order},
    so the orders need not coincide, but both are valid LexBFS orders —
    the chordality test accepts either (property-tested). *)

val mcs_order : ?within:Iset.t -> ?start:int -> Ugraph.t -> int list
(** Maximum cardinality search visit order. *)

val mcs_order_sets : ?within:Iset.t -> ?start:int -> Ugraph.t -> int list
(** Set-based reference implementation of {!mcs_order}. *)
