open Graphs

(* Set-based reference implementation, kept for differential testing
   and benchmarking; [edge_order] below is the bitset port and returns
   the identical ordering (same greedy rule, smallest index wins
   ties). *)
let edge_order_sets ?start h =
  let q = Hypergraph.n_edges h in
  let selected = Array.make q false in
  let marked = ref Iset.empty in
  let order = ref [] in
  let score i = Iset.cardinal (Iset.inter (Hypergraph.edge h i) !marked) in
  let select i =
    selected.(i) <- true;
    marked := Iset.union !marked (Hypergraph.edge h i);
    order := i :: !order
  in
  (match start with
  | Some i when i >= 0 && i < q -> select i
  | Some _ -> invalid_arg "Mcs.edge_order: start out of range"
  | None -> ());
  let rec loop () =
    let best = ref (-1) and best_score = ref (-1) in
    for i = 0 to q - 1 do
      if not selected.(i) then begin
        let s = score i in
        if s > !best_score then begin
          best := i;
          best_score := s
        end
      end
    done;
    if !best >= 0 then begin
      select !best;
      loop ()
    end
  in
  loop ();
  List.rev !order

(* Bitset kernel: every hyperedge becomes a dense bitset once, the
   marked-node set is a single mutable bitset, and each score is one
   allocation-free [inter_card] sweep. *)
let edge_order ?start h =
  let q = Hypergraph.n_edges h in
  let nn = Hypergraph.n_nodes h in
  let edge_bits =
    Array.init q (fun i -> Bitset.of_iset ~len:nn (Hypergraph.edge h i))
  in
  let marked = Bitset.create nn in
  let selected = Array.make q false in
  let order = ref [] in
  let select i =
    selected.(i) <- true;
    Bitset.union_into marked edge_bits.(i);
    order := i :: !order
  in
  (match start with
  | Some i when i >= 0 && i < q -> select i
  | Some _ -> invalid_arg "Mcs.edge_order: start out of range"
  | None -> ());
  let rec loop () =
    let best = ref (-1) and best_score = ref (-1) in
    for i = 0 to q - 1 do
      if not selected.(i) then begin
        let s = Bitset.inter_card edge_bits.(i) marked in
        if s > !best_score then begin
          best := i;
          best_score := s
        end
      end
    done;
    if !best >= 0 then begin
      select !best;
      loop ()
    end
  in
  loop ();
  List.rev !order

let alpha_acyclic ?start h =
  Join_tree.rip_holds h (edge_order ?start h)

let rip_ordering h =
  let order = edge_order h in
  if Join_tree.rip_holds h order then Some order else None
