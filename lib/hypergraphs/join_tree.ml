open Graphs

type t = { hypergraph : Hypergraph.t; parent : int array }

let make hypergraph ~parent =
  if Array.length parent <> Hypergraph.n_edges hypergraph then
    invalid_arg "Join_tree.make: parent array length mismatch";
  (* Reject cycles by walking each chain; a chain longer than the number
     of edges must loop. *)
  let q = Array.length parent in
  Array.iteri
    (fun i _ ->
      let rec walk j steps =
        if steps > q then invalid_arg "Join_tree.make: parent cycle"
        else if parent.(j) >= 0 then walk parent.(j) (steps + 1)
      in
      walk i 0)
    parent;
  { hypergraph; parent }

let children t i =
  let acc = ref [] in
  Array.iteri (fun j p -> if p = i then acc := j :: !acc) t.parent;
  List.rev !acc

let roots t =
  let acc = ref [] in
  Array.iteri (fun j p -> if p = -1 then acc := j :: !acc) t.parent;
  List.rev !acc

let separator t i =
  if t.parent.(i) < 0 then Iset.empty
  else
    Iset.inter
      (Hypergraph.edge t.hypergraph i)
      (Hypergraph.edge t.hypergraph t.parent.(i))

let verify t =
  let h = t.hypergraph in
  let q = Hypergraph.n_edges h in
  (* Build the undirected forest on edge indices. *)
  let forest = Ugraph.Builder.create q in
  Array.iteri
    (fun i p -> if p >= 0 then Ugraph.Builder.add_edge forest i p)
    t.parent;
  let forest = Ugraph.Builder.build forest in
  Iset.for_all
    (fun v ->
      let occ = Hypergraph.incident h v in
      Traverse.connects ~within:(Iset.range q) forest occ)
    (Hypergraph.covered_nodes h)

let children_arrays t =
  (* One counting pass instead of a parent-array scan per node. *)
  let q = Array.length t.parent in
  let counts = Array.make q 0 in
  Array.iter (fun p -> if p >= 0 then counts.(p) <- counts.(p) + 1) t.parent;
  let out = Array.map (fun c -> Array.make c 0) counts in
  let fill = Array.make q 0 in
  Array.iteri
    (fun j p ->
      if p >= 0 then begin
        out.(p).(fill.(p)) <- j;
        fill.(p) <- fill.(p) + 1
      end)
    t.parent;
  out

let preorder t =
  let acc = ref [] in
  let kids = children_arrays t in
  let rec visit i =
    acc := i :: !acc;
    Array.iter visit kids.(i)
  in
  List.iter visit (roots t);
  List.rev !acc

let order t = Array.of_list (preorder t)

let rip_holds h order =
  let rec go seen prefix_union = function
    | [] -> true
    | i :: rest ->
      let e = Hypergraph.edge h i in
      let inter = Iset.inter e prefix_union in
      let witnessed =
        Iset.is_empty inter
        || List.exists (fun j -> Iset.subset inter (Hypergraph.edge h j)) seen
      in
      witnessed && go (i :: seen) (Iset.union prefix_union e) rest
  in
  match order with
  | [] -> true
  | first :: rest -> go [ first ] (Hypergraph.edge h first) rest
