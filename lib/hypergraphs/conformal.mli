(** Conformality: every clique of the 2-section is contained in some
    hyperedge (Definition 7).

    The polynomial test is Gilmore's criterion — it is enough to check,
    for every triple of edges, that the union of their pairwise
    intersections lies inside a single edge — plus coverage of isolated
    nodes. The exponential oracle enumerates maximal cliques. *)

val gilmore_violation : Hypergraph.t -> (int * int * int) option
(** The lexicographically first triple of edge indices violating
    Gilmore's criterion, if any. Runs on dense bitsets: hyperedges are
    packed once, the triple loop then costs O(n / word_size) words per
    set operation and allocates nothing. *)

val gilmore_violation_sets : Hypergraph.t -> (int * int * int) option
(** Reference implementation on {!Graphs.Iset}; returns the same
    witness as {!gilmore_violation} on every input (pinned by the
    differential suite). *)

val is_conformal : Hypergraph.t -> bool
(** Gilmore criterion, restricted to nodes covered by some edge
    (a node in no edge forms a singleton clique contained in no edge,
    which we deliberately do not count as a violation: the paper's
    hypergraphs cover all their nodes). *)

val is_conformal_brute : Hypergraph.t -> bool
(** Via maximal-clique enumeration of the 2-section; exponential. *)
