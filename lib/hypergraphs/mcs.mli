(** Maximum cardinality search on hyperedges (Tarjan–Yannakakis).

    Greedily orders the edges, always picking next an edge containing
    the most already-marked nodes. For a connected α-acyclic hypergraph
    the resulting ordering satisfies the running intersection property
    (Tarjan & Yannakakis 1984, Theorem 5) — this is the ordering that
    powers the paper's Algorithm 1 — and conversely any ordering with
    the running intersection property witnesses α-acyclicity, so
    {!alpha_acyclic} is a complete test, independent of {!Gyo}. *)

val edge_order : ?start:int -> Hypergraph.t -> int list
(** Edge indices in selection order. Each connected component is
    exhausted before the next begins. Runs on dense
    [Graphs.Bitset] node sets ([inter_card] per candidate edge). *)

val edge_order_sets : ?start:int -> Hypergraph.t -> int list
(** Set-based reference implementation of {!edge_order}; returns the
    identical ordering. Differential-testing and benchmarking only. *)

val alpha_acyclic : ?start:int -> Hypergraph.t -> bool
(** [Join_tree.rip_holds h (edge_order h)]. *)

val rip_ordering : Hypergraph.t -> int list option
(** A running-intersection ordering of all edge indices, when one
    exists. *)
