open Graphs

(* Reference implementation on Iset, kept for the differential suite
   (test_hypergraphs pins the flat kernel below against it). *)
let gilmore_violation_sets h =
  let q = Hypergraph.n_edges h in
  let e = Hypergraph.edge h in
  let contained_in_some s =
    let rec go i = i < q && (Iset.subset s (e i) || go (i + 1)) in
    go 0
  in
  let result = ref None in
  for i = 0 to q - 1 do
    for j = i + 1 to q - 1 do
      for k = j + 1 to q - 1 do
        if !result = None then begin
          let s =
            Iset.union
              (Iset.inter (e i) (e j))
              (Iset.union (Iset.inter (e j) (e k)) (Iset.inter (e i) (e k)))
          in
          if not (contained_in_some s) then result := Some (i, j, k)
        end
      done
    done
  done;
  !result

exception Found of int * int * int

(* Gilmore's criterion over packed machine words: the hyperedges are
   materialised as dense bitsets once, then the O(q^3) triple loop pays
   O(n / word_size) per set operation and allocates nothing — the same
   CSR/bitset treatment the chordality kernels got in PR 1. The
   lexicographically first violating triple is returned, matching the
   reference scan above witness for witness. *)
let gilmore_violation h =
  let q = Hypergraph.n_edges h in
  if q < 3 then None
  else begin
    let n = Hypergraph.n_nodes h in
    let eb = Array.init q (fun i -> Bitset.of_iset ~len:n (Hypergraph.edge h i)) in
    let s = Bitset.create n in
    let tmp = Bitset.create n in
    let ij = Bitset.create n in
    let contained_in_some s =
      let rec go i = i < q && (Bitset.subset s eb.(i) || go (i + 1)) in
      go 0
    in
    try
      for i = 0 to q - 1 do
        for j = i + 1 to q - 1 do
          (* e_i ∩ e_j is loop-invariant in k: hoist it. *)
          Bitset.assign ~dst:ij ~src:eb.(i);
          Bitset.inter_into ij eb.(j);
          for k = j + 1 to q - 1 do
            Bitset.assign ~dst:s ~src:eb.(j);
            Bitset.inter_into s eb.(k);
            Bitset.assign ~dst:tmp ~src:eb.(i);
            Bitset.inter_into tmp eb.(k);
            Bitset.union_into s tmp;
            Bitset.union_into s ij;
            if not (contained_in_some s) then raise (Found (i, j, k))
          done
        done
      done;
      None
    with Found (i, j, k) -> Some (i, j, k)
  end

let is_conformal h = gilmore_violation h = None

let is_conformal_brute h =
  let g = Hypergraph.two_section h in
  let covered = Hypergraph.covered_nodes h in
  let q = Hypergraph.n_edges h in
  let e = Hypergraph.edge h in
  let contained_in_some s =
    let rec go i = i < q && (Iset.subset s (e i) || go (i + 1)) in
    go 0
  in
  List.for_all contained_in_some (Cliques.maximal_cliques ~within:covered g)
