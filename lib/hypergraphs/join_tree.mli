(** Join trees (a.k.a. junction trees) over a hypergraph's edges.

    A join tree is a forest on the hyperedge indices such that for every
    node [v], the edges containing [v] induce a connected subtree — the
    "running intersection" shape that makes α-acyclic database schemas
    pleasant (Beeri–Fagin–Maier–Yannakakis). *)

open Graphs

type t = {
  hypergraph : Hypergraph.t;
  parent : int array;  (** [parent.(i) = -1] for roots *)
}

val make : Hypergraph.t -> parent:int array -> t
(** Raises [Invalid_argument] if [parent] has the wrong length or
    contains a cycle. Does {e not} check coherence; see {!verify}. *)

val verify : t -> bool
(** The defining property: for every node, the set of edges containing
    it is connected in the forest. *)

val children : t -> int -> int list

val children_arrays : t -> int array array
(** [children_arrays t].(i) lists [i]'s children in increasing index
    order; the whole structure is built in one O(q) pass, where a
    {!children} call per node would be quadratic. *)

val roots : t -> int list

val separator : t -> int -> Iset.t
(** [separator t i] is [edge i ∩ edge (parent i)]; empty for roots. *)

val preorder : t -> int list
(** Roots first, then children, depth-first. On a coherent join tree of
    a connected hypergraph this is a running-intersection ordering. *)

val order : t -> int array
(** {!preorder} as a flat array, for index-driven passes: iterating it
    backwards visits every node before its parent. *)

val rip_holds : Hypergraph.t -> int list -> bool
(** [rip_holds h order] checks the running intersection property of an
    edge ordering [e1; ...; eq]: for each [i >= 2],
    [edge ei ∩ (edge e1 ∪ ... ∪ edge e(i-1))] is contained in some
    single earlier edge. ([order] may cover a sub-family.) *)
