(** Text formats for the CLI and the examples.

    Bipartite graph files:
    {v
    # comment
    bipartite
    left  A B C
    right r1 r2
    edge  A r1
    edge  B r1
    v}

    Schema files:
    {v
    schema
    relation works    emp dept
    relation located  dept floor
    v}

    Hypergraph files:
    {v
    hypergraph
    nodes a b c d
    edge  e1  a b
    edge  e2  b c d
    v}

    Delta files (applied against a bipartite graph file's schema):
    {v
    deltas
    +edge A r1
    -edge B r1
    +relation r9 A C
    -relation r2
    v}

    Node/relation names may be any whitespace-free strings; [left] and
    [right] lines may repeat and accumulate. *)

open Graphs
open Hypergraphs

type named_bigraph = {
  graph : Bipartite.Bigraph.t;
  left_names : string array;
  right_names : string array;
}

type error = Runtime.Errors.t
(** Parse failures are always [Runtime.Errors.Parse_error {line; col; msg}]
    with 1-based line and column; [col = 0] (or [line = 0]) means the
    position is unknown (e.g. a whole-file property like a duplicate
    name). Sharing the runtime taxonomy lets callers thread parse
    errors straight to the CLI error boundary. *)

val max_input_bytes : int
(** Hard cap on total input size for every [*_of_string] parser
    (8 MiB). Larger inputs are rejected up front with a typed
    [Parse_error] instead of being tokenized into memory — these
    parsers sit on attacker-reachable boundaries (CLI files, server
    request bodies). *)

val max_line_bytes : int
(** Hard cap on a single line (64 KiB); the typed rejection names the
    offending line. *)

val bigraph_of_string : string -> (named_bigraph, error) result

val schema_of_string : string -> (Datamodel.Schema.t, error) result

val hypergraph_of_string :
  string -> (Hypergraph.t * string array * string array, error) result
(** Returns the hypergraph plus node names and edge names. *)

val database_of_string :
  ?semantics:Relalg.Relation.semantics ->
  string ->
  (Relalg.Database.t, error) result
(** Populated database files:
    {v
    database
    relation works  emp dept
    row works  alice toys
    row works  bob   books
    v}
    Under the default [Set] semantics duplicate [row] lines collapse;
    pass [~semantics:Bag] to preserve multiplicities. *)

val deltas_of_string :
  named_bigraph ->
  string ->
  (Bipartite.Delta.op list * named_bigraph, error) result
(** Parse a delta file against the given schema, resolving each line's
    names in the schema {e as evolved by the preceding lines} — a
    [+relation] three lines up is a legal [+edge] endpoint here. The
    returned index ops are exactly what [Delta.apply_all] (and the
    engine's [Compiled.apply_deltas]) expect, and the returned
    [named_bigraph] is the fully evolved schema with its name tables
    ([+relation] appends a right name, [-relation] removes one;
    duplicate names are rejected). Typed [Parse_error] with line/col
    on unknown directives, unknown names, or an op the engine would
    reject (out-of-range index). *)

val query_of_string :
  string -> (string list * (string * string) list, error) result
(** The interface's tiny query language:
    [connect emp, manager where dept = toys and floor = 1] returns the
    object names and the equality selections. *)

val name_set : named_bigraph -> string list -> (Iset.t, string) result
(** Resolve a list of names to underlying indices; [Error name] on the
    first unknown one. *)

val bigraph_to_string : named_bigraph -> string

val schema_to_string : Datamodel.Schema.t -> string

val hypergraph_to_string :
  Hypergraph.t -> node_names:string array -> edge_names:string array -> string

val database_to_string : Relalg.Database.t -> string

val pp_error : Format.formatter -> error -> unit
