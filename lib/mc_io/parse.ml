open Graphs
open Hypergraphs

type named_bigraph = {
  graph : Bipartite.Bigraph.t;
  left_names : string array;
  right_names : string array;
}

type error = Runtime.Errors.t

let pp_error = Runtime.Errors.pp

(* Hard input caps, checked before tokenization: parsers sit on
   attacker-reachable boundaries (CLI files, server request bodies),
   so unbounded input must become a typed error before it becomes a
   resident list of tokens. The limits are far above any legitimate
   instance file while keeping the worst-case allocation proportional
   to a small constant times the cap. *)
let max_input_bytes = 8 * 1024 * 1024
let max_line_bytes = 64 * 1024

let oversized text =
  let n = String.length text in
  if n > max_input_bytes then
    Some
      (Runtime.Errors.Parse_error
         {
           line = 0;
           col = 0;
           msg =
             Printf.sprintf "input exceeds %d bytes (%d)" max_input_bytes n;
         })
  else begin
    (* One pass for the longest line; no splitting before the check. *)
    let bad = ref None in
    let line = ref 1 and start = ref 0 and i = ref 0 in
    while !bad = None && !i <= n do
      if !i = n || text.[!i] = '\n' then begin
        if !i - !start > max_line_bytes then
          bad :=
            Some
              (Runtime.Errors.Parse_error
                 {
                   line = !line;
                   col = 0;
                   msg =
                     Printf.sprintf "line exceeds %d bytes (%d)"
                       max_line_bytes (!i - !start);
                 });
        incr line;
        start := !i + 1
      end;
      incr i
    done;
    !bad
  end

let guarded parse text =
  match oversized text with Some e -> Error e | None -> parse text

(* Every token carries its 1-based starting column so parse errors can
   point at the offending token, not just its line. A line is
   [(lineno, cols, tokens)] with [cols] parallel to [tokens]. *)
let tokenize text =
  String.split_on_char '\n' text
  |> List.mapi (fun i line -> (i + 1, line))
  |> List.filter_map (fun (i, line) ->
         let line =
           match String.index_opt line '#' with
           | Some k -> String.sub line 0 k
           | None -> line
         in
         let n = String.length line in
         let rec scan j acc =
           if j >= n then List.rev acc
           else if line.[j] = ' ' || line.[j] = '\t' then scan (j + 1) acc
           else begin
             let k = ref j in
             while !k < n && line.[!k] <> ' ' && line.[!k] <> '\t' do
               incr k
             done;
             scan !k ((j + 1, String.sub line j (!k - j)) :: acc)
           end
         in
         match scan 0 [] with
         | [] -> None
         | toks -> Some (i, List.map fst toks, List.map snd toks))

(* Column of the [k]-th token on a line; 0 (column unknown) past the end. *)
let col_at cols k =
  match List.nth_opt cols k with Some c -> c | None -> 0

let rec drop n l =
  if n <= 0 then l else match l with [] -> [] | _ :: tl -> drop (n - 1) tl

let err line col fmt =
  Printf.ksprintf
    (fun msg -> Error (Runtime.Errors.Parse_error { line; col; msg }))
    fmt

let expect_header want = function
  | (_, _, [ h ]) :: rest when h = want -> Ok rest
  | (i, cs, _) :: _ ->
    err i (col_at cs 0) "expected a single '%s' header line" want
  | [] -> err 0 0 "empty input (expected '%s' header)" want

let index_of arr name =
  let rec go i =
    if i >= Array.length arr then None
    else if arr.(i) = name then Some i
    else go (i + 1)
  in
  go 0

let bigraph_of_string_unguarded text =
  match expect_header "bipartite" (tokenize text) with
  | Error e -> Error e
  | Ok lines ->
    let left = ref [] and right = ref [] and edges = ref [] in
    let rec consume = function
      | [] -> Ok ()
      | (i, cs, "left" :: names) :: rest ->
        left := !left @ names;
        if names = [] then err i (col_at cs 0) "'left' line with no names"
        else consume rest
      | (i, cs, "right" :: names) :: rest ->
        right := !right @ names;
        if names = [] then err i (col_at cs 0) "'right' line with no names"
        else consume rest
      | (i, cs, [ "edge"; a; b ]) :: rest ->
        edges := (i, cs, a, b) :: !edges;
        consume rest
      | (i, cs, t :: _) :: _ ->
        err i (col_at cs 0) "unknown directive '%s'" t
      | (i, _, []) :: _ -> err i 0 "empty line slipped through"
    in
    (match consume lines with
    | Error e -> Error e
    | Ok () ->
      let dup l = List.length (List.sort_uniq compare l) <> List.length l in
      if dup !left || dup !right || dup (!left @ !right) then
        err 0 0 "duplicate node name"
      else begin
        let left_names = Array.of_list !left in
        let right_names = Array.of_list !right in
        let rec build g = function
          | [] -> Ok g
          | (i, cs, a, b) :: rest -> (
            match (index_of left_names a, index_of right_names b) with
            | Some la, Some rb ->
              build (Bipartite.Bigraph.add_edge g la rb) rest
            | None, _ -> err i (col_at cs 1) "unknown left node '%s'" a
            | _, None -> err i (col_at cs 2) "unknown right node '%s'" b)
        in
        match
          build
            (Bipartite.Bigraph.create
               ~nl:(Array.length left_names)
               ~nr:(Array.length right_names))
            (List.rev !edges)
        with
        | Error e -> Error e
        | Ok graph -> Ok { graph; left_names; right_names }
      end)

let schema_of_string_unguarded text =
  match expect_header "schema" (tokenize text) with
  | Error e -> Error e
  | Ok lines ->
    let rec consume acc = function
      | [] -> Ok (List.rev acc)
      | (i, cs, "relation" :: name :: attrs) :: rest ->
        if attrs = [] then
          err i (col_at cs 1) "relation '%s' has no attributes" name
        else consume ((name, attrs) :: acc) rest
      | (i, cs, t :: _) :: _ ->
        err i (col_at cs 0) "unknown directive '%s'" t
      | (i, _, []) :: _ -> err i 0 "empty line slipped through"
    in
    (match consume [] lines with
    | Error e -> Error e
    | Ok rels -> (
      try Ok (Datamodel.Schema.make rels)
      with Invalid_argument m -> err 0 0 "%s" m))

let hypergraph_of_string_unguarded text =
  match expect_header "hypergraph" (tokenize text) with
  | Error e -> Error e
  | Ok lines ->
    let nodes = ref [] and edges = ref [] in
    let rec consume = function
      | [] -> Ok ()
      | (i, cs, "nodes" :: names) :: rest ->
        nodes := !nodes @ names;
        if names = [] then err i (col_at cs 0) "'nodes' line with no names"
        else consume rest
      | (i, cs, "edge" :: name :: members) :: rest ->
        if members = [] then err i (col_at cs 1) "edge '%s' is empty" name
        else begin
          (* members start at token index 2; keep their columns paired *)
          edges := (i, name, List.combine (drop 2 cs) members) :: !edges;
          consume rest
        end
      | (i, cs, t :: _) :: _ ->
        err i (col_at cs 0) "unknown directive '%s'" t
      | (i, _, []) :: _ -> err i 0 "empty line slipped through"
    in
    (match consume lines with
    | Error e -> Error e
    | Ok () ->
      let node_names = Array.of_list !nodes in
      let rec build acc = function
        | [] -> Ok (List.rev acc)
        | (i, _, members) :: rest ->
          let rec resolve set = function
            | [] -> Ok set
            | (c, m) :: ms -> (
              match index_of node_names m with
              | Some v -> resolve (Iset.add v set) ms
              | None -> err i c "unknown node '%s'" m)
          in
          (match resolve Iset.empty members with
          | Error e -> Error e
          | Ok set -> build (set :: acc) rest)
      in
      match build [] (List.rev !edges) with
      | Error e -> Error e
      | Ok family ->
        let edge_names =
          Array.of_list (List.rev_map (fun (_, n, _) -> n) !edges)
        in
        (try
           Ok
             ( Hypergraph.create ~n_nodes:(Array.length node_names) family,
               node_names,
               edge_names )
         with Invalid_argument m -> err 0 0 "%s" m))

let database_of_string_unguarded ?semantics text =
  match expect_header "database" (tokenize text) with
  | Error e -> Error e
  | Ok lines ->
    let schemas = ref [] and rows = ref [] in
    let rec consume = function
      | [] -> Ok ()
      | (i, cs, "relation" :: name :: attrs) :: rest ->
        if attrs = [] then
          err i (col_at cs 1) "relation '%s' has no attributes" name
        else begin
          schemas := (name, attrs) :: !schemas;
          consume rest
        end
      | (i, cs, "row" :: name :: values) :: rest ->
        rows := (i, col_at cs 1, name, values) :: !rows;
        consume rest
      | (i, cs, t :: _) :: _ ->
        err i (col_at cs 0) "unknown directive '%s'" t
      | (i, _, []) :: _ -> err i 0 "empty line slipped through"
    in
    (match consume lines with
    | Error e -> Error e
    | Ok () ->
      let schemas = List.rev !schemas in
      let rec check_rows = function
        | [] -> Ok ()
        | (i, c, name, values) :: rest -> (
          match List.assoc_opt name schemas with
          | None -> err i c "row for unknown relation '%s'" name
          | Some attrs when List.length attrs <> List.length values ->
            err i c "row arity mismatch for '%s'" name
          | Some _ -> check_rows rest)
      in
      (match check_rows (List.rev !rows) with
      | Error e -> Error e
      | Ok () -> (
        (* Relation.make can also reject (duplicate attributes), so the
           whole construction sits inside the boundary. *)
        try
          let rels =
            List.map
              (fun (name, attrs) ->
                let data =
                  List.rev !rows
                  |> List.filter_map (fun (_, _, n, values) ->
                         if n = name then Some values else None)
                in
                (name, Relalg.Relation.make ?semantics ~attrs data))
              schemas
          in
          Ok (Relalg.Database.make rels)
        with Invalid_argument m -> err 0 0 "%s" m)))

(* Delta files speak names, the engine speaks indices; each line is
   resolved against the schema *as evolved so far*, so a relation
   added three lines up is a legal edge endpoint here and the
   recorded index ops line up exactly with [Delta.apply_all]'s
   sequential semantics. *)
let deltas_of_string_unguarded nb text =
  let module D = Bipartite.Delta in
  match expect_header "deltas" (tokenize text) with
  | Error e -> Error e
  | Ok lines ->
    let remove_at j arr =
      Array.of_list (List.filteri (fun k _ -> k <> j) (Array.to_list arr))
    in
    let rec consume nb ops = function
      | [] -> Ok (List.rev ops, nb)
      | (i, cs, toks) :: rest ->
        let left c a =
          match index_of nb.left_names a with
          | Some la -> Ok la
          | None -> err i c "unknown left node '%s'" a
        in
        let right c r =
          match index_of nb.right_names r with
          | Some j -> Ok j
          | None -> err i c "unknown relation '%s'" r
        in
        (* Apply as we go: later lines must validate against the
           evolved schema, and an op the engine would reject must die
           here with a line number, not downstream without one. *)
        let step op rename =
          match D.apply nb.graph op with
          | Error msg -> err i (col_at cs 0) "%s" msg
          | Ok graph -> consume (rename { nb with graph }) (op :: ops) rest
        in
        (match toks with
        | [ "+edge"; a; b ] -> (
          match (left (col_at cs 1) a, right (col_at cs 2) b) with
          | Ok la, Ok rb -> step (D.Add_edge (la, rb)) Fun.id
          | (Error _ as e), _ | _, (Error _ as e) -> e)
        | [ "-edge"; a; b ] -> (
          match (left (col_at cs 1) a, right (col_at cs 2) b) with
          | Ok la, Ok rb -> step (D.Remove_edge (la, rb)) Fun.id
          | (Error _ as e), _ | _, (Error _ as e) -> e)
        | "+relation" :: name :: attrs ->
          if
            index_of nb.left_names name <> None
            || index_of nb.right_names name <> None
          then err i (col_at cs 1) "duplicate node name '%s'" name
          else
            let rec resolve set k = function
              | [] -> Ok set
              | a :: more -> (
                match left (col_at cs k) a with
                | Ok la -> resolve (Iset.add la set) (k + 1) more
                | Error e -> Error e)
            in
            (match resolve Iset.empty 2 attrs with
            | Error e -> Error e
            | Ok set ->
              step (D.Add_relation set) (fun nb ->
                  {
                    nb with
                    right_names = Array.append nb.right_names [| name |];
                  }))
        | [ "-relation"; name ] -> (
          match right (col_at cs 1) name with
          | Error e -> Error e
          | Ok j ->
            step (D.Remove_relation j) (fun nb ->
                { nb with right_names = remove_at j nb.right_names }))
        | t :: _ -> err i (col_at cs 0) "unknown delta directive '%s'" t
        | [] -> err i 0 "empty line slipped through")
    in
    consume nb [] lines

let query_of_string_unguarded text =
  let words =
    String.split_on_char ' ' text
    |> List.concat_map (String.split_on_char ',')
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun t -> t <> "")
  in
  match words with
  | "connect" :: rest ->
    let rec split_objects acc = function
      | [] -> (List.rev acc, [])
      | "where" :: conds -> (List.rev acc, conds)
      | w :: rest -> split_objects (w :: acc) rest
    in
    let objects, conds = split_objects [] rest in
    if objects = [] then err 1 0 "no objects to connect"
    else
      let rec parse_conds acc = function
        | [] -> Ok (List.rev acc)
        | attr :: "=" :: value :: rest -> (
          match rest with
          | "and" :: more -> parse_conds ((attr, value) :: acc) more
          | [] -> Ok (List.rev ((attr, value) :: acc))
          | w :: _ -> err 1 0 "expected 'and', found '%s'" w)
        | w :: _ -> err 1 0 "malformed condition near '%s'" w
      in
      (match parse_conds [] conds with
      | Error e -> Error e
      | Ok where -> Ok (objects, where))
  | _ -> err 1 0 "queries start with 'connect'"

let bigraph_of_string = guarded bigraph_of_string_unguarded
let schema_of_string = guarded schema_of_string_unguarded
let hypergraph_of_string = guarded hypergraph_of_string_unguarded
let database_of_string ?semantics text =
  guarded (database_of_string_unguarded ?semantics) text
let query_of_string = guarded query_of_string_unguarded
let deltas_of_string nb text = guarded (deltas_of_string_unguarded nb) text

let name_set nb names =
  let module B = Bipartite.Bigraph in
  let rec go acc = function
    | [] -> Ok acc
    | n :: rest -> (
      match index_of nb.left_names n with
      | Some i -> go (Iset.add (B.index nb.graph (B.L i)) acc) rest
      | None -> (
        match index_of nb.right_names n with
        | Some j -> go (Iset.add (B.index nb.graph (B.R j)) acc) rest
        | None -> Error n))
  in
  go Iset.empty names

let bigraph_to_string nb =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "bipartite\n";
  Buffer.add_string buf
    ("left " ^ String.concat " " (Array.to_list nb.left_names) ^ "\n");
  Buffer.add_string buf
    ("right " ^ String.concat " " (Array.to_list nb.right_names) ^ "\n");
  List.iter
    (fun (i, j) ->
      Buffer.add_string buf
        (Printf.sprintf "edge %s %s\n" nb.left_names.(i) nb.right_names.(j)))
    (Bipartite.Bigraph.edges nb.graph);
  Buffer.contents buf

let schema_to_string schema =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "schema\n";
  List.iter
    (fun name ->
      Buffer.add_string buf
        (Printf.sprintf "relation %s %s\n" name
           (String.concat " " (Datamodel.Schema.relation_attrs schema name))))
    (Datamodel.Schema.relation_names schema);
  Buffer.contents buf

let hypergraph_to_string h ~node_names ~edge_names =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "hypergraph\n";
  Buffer.add_string buf
    ("nodes " ^ String.concat " " (Array.to_list node_names) ^ "\n");
  Array.iteri
    (fun i e ->
      Buffer.add_string buf
        (Printf.sprintf "edge %s %s\n" edge_names.(i)
           (String.concat " "
              (List.map (fun v -> node_names.(v)) (Iset.elements e)))))
    (Hypergraph.edges h);
  Buffer.contents buf

let database_to_string db =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "database\n";
  List.iter
    (fun (name, r) ->
      Buffer.add_string buf
        (Printf.sprintf "relation %s %s\n" name
           (String.concat " " (Relalg.Relation.attrs r))))
    (Relalg.Database.relations db);
  List.iter
    (fun (name, r) ->
      List.iter
        (fun row ->
          Buffer.add_string buf
            (Printf.sprintf "row %s %s\n" name (String.concat " " row)))
        (Relalg.Relation.tuples r))
    (Relalg.Database.relations db);
  Buffer.contents buf
