(** Persistent on-disk store for compiled plans.

    A production fleet compiles each schema once, not once per
    process: the cache persists {!Engine.Compiled.t} across processes
    so a warm start skips [Classify.profile] and the per-component
    join-tree prep entirely — the next amortization rung after the
    in-process session engine.

    {2 Entry format (minconn-plan/2)}

    One file per plan. A fresh compile of schema [S] is named
    [<schema_hash S>.plan]; a plan evolved from base schema [S] by a
    delta sequence [ds] is named
    [<schema_hash S>+<Delta.journal_hash ds>.plan], so one base can
    carry any number of cached lineages side by side. Each file is a
    six-line textual integrity envelope followed by the raw [Marshal]
    payload:

    {v
    minconn-plan/<format_version>
    commit <library build id>
    schema <Compiled.schema_hash of the base graph>
    journal <Delta.journal_hash of the delta sequence; "-" when fresh>
    length <payload byte count>
    digest <hex digest of the payload bytes>
    <payload>
    v}

    A load validates the envelope outermost-first (magic/version,
    commit, schema hash, delta journal, length, checksum) and only
    then unmarshals,
    so bytes written by a different build — or damaged in any way —
    are rejected before [Marshal.from_string] ever sees them. Every
    rejection is a typed {!miss}: the caller recompiles and
    overwrites, it never panics and never serves a wrong plan.

    {2 Crash atomicity}

    Writes go to a unique [.tmp] sibling and are renamed into place,
    so concurrent readers (and readers after a mid-write crash) see
    either the old entry, the new entry, or no entry — never a torn
    one. The writer checks {!Runtime.Fault.check_write} between
    chunks; the corruption battery arms it to prove the property.

    {2 Eviction}

    Entries are LRU by file mtime ([find] touches its hit); after each
    [store], oldest entries are removed until the directory's [*.plan]
    total fits [max_bytes] again (the entry just written is never
    evicted). Orphaned temp files older than ten minutes are swept on
    the same pass. *)

val format_version : int

val default_commit : string
(** Build identity stamped into (and demanded from) envelopes:
    [MINCONN_COMMIT] when set — recommended for fleets, mirroring the
    bench harness — otherwise a library-version/compiler constant.
    Caution: the fallback cannot see source edits that rebuild the
    same version string; set [MINCONN_COMMIT] wherever plans may cross
    builds. *)

type t
(** A handle on one cache directory. Cheap; holds no open files. *)

val create :
  ?max_bytes:int -> ?commit:string -> dir:string -> unit -> (t, string) result
(** Make [dir] (and parents) and probe that it is a writable
    directory. [Error msg] when it cannot be created or written —
    callers degrade to uncached compilation. [max_bytes] (default
    256 MiB) caps the [*.plan] bytes kept after a store; [commit]
    (default {!default_commit}) is stamped into and required of every
    envelope. *)

val dir : t -> string
val max_bytes : t -> int

(** Why a lookup did not produce a plan. Every constructor is a cold
    miss: recompile, then [store] to overwrite the bad entry. *)
type miss =
  | Absent  (** no entry for this schema *)
  | Version_mismatch  (** magic line from another format version *)
  | Commit_mismatch  (** entry written by a different library build *)
  | Schema_mismatch
      (** envelope or payload belongs to a different schema (renamed
          file, hash collision) *)
  | Delta_mismatch
      (** the entry's delta-journal hash disagrees with the lookup's:
          a fresh lookup found an evolved plan (or vice versa), or the
          entry was patched along a different delta sequence *)
  | Truncated  (** header or payload cut short, including empty files *)
  | Checksum_mismatch  (** payload bytes damaged (bit flips) *)
  | Unreadable of string
      (** unreadable file, malformed header, or a checksummed payload
          the current build cannot unmarshal *)

val miss_name : miss -> string
(** Stable lower-kebab name for logs and metrics. *)

val entry_path : t -> Bipartite.Bigraph.t -> string
(** Where this schema's fresh entry lives (whether or not it
    exists). *)

val evolved_path :
  t -> base:Bipartite.Bigraph.t -> deltas:Bipartite.Delta.op list -> string
(** Where the plan evolved from [base] by [deltas] lives (whether or
    not it exists). *)

val find :
  ?trace:Observe.Trace.t ->
  ?metrics:Observe.Metrics.t ->
  t ->
  Bipartite.Bigraph.t ->
  (Engine.Compiled.t, miss) result
(** Validate and load the fresh entry for this schema (an evolved
    entry at the same base reads as {!Delta_mismatch}). On a hit the
    loaded plan's graph is checked equal to the requested graph (belt
    and braces over the hash) and the entry's mtime is touched for
    LRU. Records a ["plan_cache"] span (op/outcome/reason attrs) and
    bumps [cache.hit] or [cache.miss]. Never raises on bad entries. *)

val find_evolved :
  ?trace:Observe.Trace.t ->
  ?metrics:Observe.Metrics.t ->
  t ->
  base:Bipartite.Bigraph.t ->
  deltas:Bipartite.Delta.op list ->
  (Engine.Compiled.t, miss) result
(** Validate and load the plan evolved from [base] by [deltas]. The
    loaded plan's graph is checked equal to [Delta.apply_all base
    deltas] — an entry whose journal line matches but whose payload
    answers for a different target reads as a miss.
    [Invalid_argument] when the deltas do not apply to [base]. *)

val store :
  ?trace:Observe.Trace.t ->
  ?metrics:Observe.Metrics.t ->
  ?lineage:string * string ->
  t ->
  Engine.Compiled.t ->
  (unit, string) result
(** Write the plan atomically (temp + rename), then evict LRU entries
    over [max_bytes]. [lineage] is [(base_schema_hash,
    journal_hash)] for an evolved plan — it selects the entry's name
    and [schema]/[journal] header lines; default: the plan's own
    schema hash with the fresh journal. [Error msg] on I/O failure —
    callers treat the cache as best-effort. Bumps [cache.store] and
    [cache.evict] (per evicted entry); records a ["plan_cache"] span.
    Re-raises {!Runtime.Fault.Injected_crash} without cleaning its
    temp file, by design (see {!Runtime.Fault.check_write}). *)

val find_or_compile :
  ?pool:Parallel.Pool.t ->
  ?trace:Observe.Trace.t ->
  ?metrics:Observe.Metrics.t ->
  ?cache:t ->
  ?deltas:Bipartite.Delta.op list ->
  Bipartite.Bigraph.t ->
  Engine.Compiled.t * [ `Hit | `Miss | `Patched ]
(** The serving entry point. Without [deltas] (default [[]]): warm
    cache → the stored plan ([`Hit], classification skipped
    entirely); cold, damaged or no cache → [Compiled.compile ?pool]
    and, when a cache is present, a best-effort [store] ([`Miss]).

    With [deltas], the schema of record is [g] evolved by the
    sequence, and the lookup prefers cheaper plans first: an exact
    evolved entry ([`Hit]) → the base schema's fresh entry patched
    through [Compiled.apply_deltas], stored under the evolved key and
    counted in [cache.patched] ([`Patched]) → a cold compile of the
    evolved schema, stored under the evolved key ([`Miss]).
    [Invalid_argument] when the deltas do not apply to [g] — validate
    with [Delta.apply_all] first when the sequence is untrusted. *)

val entries : t -> (string * int) list
(** [(entry_key, bytes)] of current entries, least recently used
    first — the key is the schema hash, with a [+<journal_hash>]
    suffix for evolved plans. Test and tooling support. *)

val total_bytes : t -> int
(** Sum of [*.plan] sizes currently in the directory. *)
