module Compiled = Engine.Compiled
module Bigraph = Bipartite.Bigraph
module Delta = Bipartite.Delta
module Fault = Runtime.Fault

(* Format 2 adds the [journal] header line: the delta-journal digest
   distinguishing an evolved plan (patched from a base schema by a
   recorded delta sequence) from the fresh compile of that base. *)
let format_version = 2
let magic = Printf.sprintf "minconn-plan/%d" format_version

let default_commit =
  match Sys.getenv_opt "MINCONN_COMMIT" with
  | Some c when c <> "" -> c
  | _ -> "minconn-1.0.0+ocaml-" ^ Sys.ocaml_version

type t = { dir : string; max_bytes : int; commit : string }

let dir t = t.dir
let max_bytes t = t.max_bytes

let rec mkdir_p path =
  if path = "" || path = "." || path = "/" || Sys.file_exists path then ()
  else begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create ?(max_bytes = 256 * 1024 * 1024) ?(commit = default_commit) ~dir ()
    =
  if max_bytes < 0 then invalid_arg "Plan_cache.create: negative max_bytes";
  match
    (* The probe settles writability even where permission bits lie
       (running as root, read-only mounts): creating a file is the
       operation [store] actually needs. *)
    mkdir_p dir;
    if not (Sys.is_directory dir) then failwith "not a directory";
    let probe = Filename.concat dir ".probe" in
    let oc = open_out_bin probe in
    close_out oc;
    Sys.remove probe
  with
  | () -> Ok { dir; max_bytes; commit }
  | exception Sys_error msg -> Error msg
  | exception Failure msg -> Error (dir ^ ": " ^ msg)
  | exception Unix.Unix_error (e, _, _) ->
    Error (dir ^ ": " ^ Unix.error_message e)

type miss =
  | Absent
  | Version_mismatch
  | Commit_mismatch
  | Schema_mismatch
  | Delta_mismatch
  | Truncated
  | Checksum_mismatch
  | Unreadable of string

let miss_name = function
  | Absent -> "absent"
  | Version_mismatch -> "version-mismatch"
  | Commit_mismatch -> "commit-mismatch"
  | Schema_mismatch -> "schema-mismatch"
  | Delta_mismatch -> "delta-mismatch"
  | Truncated -> "truncated"
  | Checksum_mismatch -> "checksum-mismatch"
  | Unreadable _ -> "unreadable"

(* Fresh plans live at [<schema_hash>.plan]; evolved plans at
   [<base_hash>+<journal_hash>.plan] so one base schema can carry any
   number of cached delta lineages side by side. *)
let key_of ~hash ~journal =
  if journal = Delta.fresh_journal then hash else hash ^ "+" ^ journal

let path_of_key t key = Filename.concat t.dir (key ^ ".plan")
let entry_path t g = path_of_key t (Compiled.schema_hash g)

let evolved_path t ~base ~deltas =
  path_of_key t
    (key_of
       ~hash:(Compiled.schema_hash base)
       ~journal:(Delta.journal_hash deltas))

(* ------------------------------------------------------------ load *)

let header_field expect line =
  let pre = expect ^ " " in
  let n = String.length pre in
  if String.length line > n && String.sub line 0 n = pre then
    Some (String.sub line n (String.length line - n))
  else None

(* Envelope checks outermost-first, so every stale or damaged layer
   maps to the one miss that names it and Marshal only ever sees
   checksummed same-build bytes. *)
let read_entry t ~hash ~journal path =
  match open_in_bin path with
  | exception Sys_error _ ->
    if Sys.file_exists path then Error (Unreadable "cannot open") else Error Absent
  | ic ->
    Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
    let line () = try Some (input_line ic) with End_of_file -> None in
    (match line () with
    | None -> Error Truncated (* empty file *)
    | Some m when m <> magic ->
      if String.length m >= 13 && String.sub m 0 13 = "minconn-plan/" then
        Error Version_mismatch
      else Error (Unreadable "bad magic")
    | Some _ -> (
      match (line (), line (), line (), line (), line ()) with
      | Some c, Some s, Some j, Some l, Some d -> (
        match
          ( header_field "commit" c,
            header_field "schema" s,
            header_field "journal" j,
            header_field "length" l,
            header_field "digest" d )
        with
        | Some commit, Some schema, Some jrnl, Some length, Some digest -> (
          match int_of_string_opt length with
          | None -> Error (Unreadable "bad length field")
          | Some len when len < 0 -> Error (Unreadable "bad length field")
          | Some len ->
            if commit <> t.commit then Error Commit_mismatch
            else if schema <> hash then Error Schema_mismatch
            else if jrnl <> journal then Error Delta_mismatch
            else if in_channel_length ic - pos_in ic <> len then
              Error Truncated
            else (
              match really_input_string ic len with
              | exception End_of_file -> Error Truncated
              | payload ->
                if Digest.to_hex (Digest.string payload) <> digest then
                  Error Checksum_mismatch
                else Ok payload))
        | _ -> Error (Unreadable "malformed header"))
      | _ -> Error Truncated))

let touch path = try Unix.utimes path 0.0 0.0 with Unix.Unix_error _ -> ()

(* Shared lookup core: validate the envelope against the expected
   (hash, journal) pair, unmarshal, and check the recovered plan's
   graph equals [expect] — a colliding or mislabeled entry must read
   as a miss, never answer for the wrong graph. *)
let lookup ~trace ~metrics ~op t ~hash ~journal ~expect =
  Observe.Trace.span trace "plan_cache"
    ~attrs:[ ("op", Observe.Trace.Str op) ]
  @@ fun () ->
  let path = path_of_key t (key_of ~hash ~journal) in
  let result =
    match read_entry t ~hash ~journal path with
    | Error _ as e -> e
    | Ok payload -> (
      match Compiled.of_bytes payload with
      | None -> Error (Unreadable "unmarshal failed")
      | Some compiled ->
        if Bigraph.equal (Compiled.graph compiled) expect then Ok compiled
        else Error Schema_mismatch)
  in
  (match result with
  | Ok _ ->
    touch path;
    Observe.Metrics.incr (Observe.Metrics.counter metrics "cache.hit");
    Observe.Trace.add_attr trace "outcome" (Observe.Trace.Str "hit")
  | Error miss ->
    Observe.Metrics.incr (Observe.Metrics.counter metrics "cache.miss");
    Observe.Trace.add_attr trace "outcome" (Observe.Trace.Str "miss");
    Observe.Trace.add_attr trace "reason"
      (Observe.Trace.Str (miss_name miss)));
  result

let find ?(trace = Observe.Trace.disabled)
    ?(metrics = Observe.Metrics.disabled) t g =
  lookup ~trace ~metrics ~op:"find" t ~hash:(Compiled.schema_hash g)
    ~journal:Delta.fresh_journal ~expect:g

let find_evolved ?(trace = Observe.Trace.disabled)
    ?(metrics = Observe.Metrics.disabled) t ~base ~deltas =
  match Delta.apply_all base deltas with
  | Error msg -> invalid_arg ("Plan_cache.find_evolved: " ^ msg)
  | Ok target ->
    lookup ~trace ~metrics ~op:"find_evolved" t
      ~hash:(Compiled.schema_hash base)
      ~journal:(Delta.journal_hash deltas)
      ~expect:target

(* ----------------------------------------------------------- store *)

let plan_files t =
  match Sys.readdir t.dir with
  | exception Sys_error _ -> []
  | names ->
    Array.to_list names
    |> List.filter_map (fun name ->
           if Filename.check_suffix name ".plan" then
             match Unix.stat (Filename.concat t.dir name) with
             | exception Unix.Unix_error _ -> None
             | st when st.Unix.st_kind = Unix.S_REG ->
               Some (name, st.Unix.st_size, st.Unix.st_mtime)
             | _ -> None
           else None)
    |> List.sort (fun (_, _, a) (_, _, b) -> compare a b)

let entries t =
  List.map
    (fun (name, size, _) -> (Filename.chop_suffix name ".plan", size))
    (plan_files t)

let total_bytes t =
  List.fold_left (fun acc (_, size, _) -> acc + size) 0 (plan_files t)

let temp_ttl_s = 600.0

(* LRU sweep after a store: drop oldest entries until the cap fits
   (never the entry just written), and reap orphaned temp files old
   enough that no live writer can still own them. *)
let evict ?(metrics = Observe.Metrics.disabled) t ~keep =
  let now = Unix.gettimeofday () in
  (match Sys.readdir t.dir with
  | exception Sys_error _ -> ()
  | names ->
    Array.iter
      (fun name ->
        if Filename.check_suffix name ".tmp" then
          let path = Filename.concat t.dir name in
          match Unix.stat path with
          | st when now -. st.Unix.st_mtime > temp_ttl_s ->
            (try Sys.remove path with Sys_error _ -> ())
          | _ | (exception Unix.Unix_error _) -> ())
      names);
  let files = plan_files t in
  let total = List.fold_left (fun acc (_, s, _) -> acc + s) 0 files in
  let excess = ref (total - t.max_bytes) in
  List.iter
    (fun (name, size, _) ->
      if !excess > 0 && name <> keep then (
        match Sys.remove (Filename.concat t.dir name) with
        | () ->
          excess := !excess - size;
          Observe.Metrics.incr (Observe.Metrics.counter metrics "cache.evict")
        | exception Sys_error _ -> ()))
    files

let envelope ~commit ~hash ~journal payload =
  Printf.sprintf "%s\ncommit %s\nschema %s\njournal %s\nlength %d\ndigest %s\n"
    magic commit hash journal (String.length payload)
    (Digest.to_hex (Digest.string payload))

let write_chunk_bytes = 65536

(* The rename that publishes an entry can fail transiently (EINTR from
   a signal, EACCES/EBUSY-class races with scanners on some
   filesystems) without the store being doomed: retry exactly once,
   counted, before degrading to the uncached path. The
   ["cache.rename"] Fault hook stands in for those failures in
   tests. *)
let transient_rename_failure = function
  | Unix.Unix_error
      ((Unix.EINTR | Unix.EACCES | Unix.EAGAIN | Unix.EBUSY | Unix.EPERM), _, _)
    ->
    true
  | Fault.Injected_fault "cache.rename" -> true
  | _ -> false

let rename_entry ~metrics tmp final =
  let attempt () =
    Fault.check_op "cache.rename";
    Unix.rename tmp final
  in
  try attempt ()
  with e when transient_rename_failure e ->
    Observe.Metrics.incr (Observe.Metrics.counter metrics "cache.store_retry");
    attempt ()

let store ?(trace = Observe.Trace.disabled)
    ?(metrics = Observe.Metrics.disabled) ?lineage t compiled =
  Observe.Trace.span trace "plan_cache"
    ~attrs:[ ("op", Observe.Trace.Str "store") ]
  @@ fun () ->
  let hash, journal =
    match lineage with
    | Some (base_hash, journal) -> (base_hash, journal)
    | None ->
      (Compiled.schema_hash (Compiled.graph compiled), Delta.fresh_journal)
  in
  let key = key_of ~hash ~journal in
  let final = path_of_key t key in
  let payload = Compiled.to_bytes compiled in
  let blob = envelope ~commit:t.commit ~hash ~journal payload ^ payload in
  let tmp =
    Printf.sprintf "%s.%d.%d.tmp" final (Unix.getpid ())
      (Hashtbl.hash (Unix.gettimeofday ()))
  in
  let result =
    match open_out_bin tmp with
    | exception Sys_error msg -> Error msg
    | oc -> (
      (* Chunked so the crash hook can kill the writer mid-file; an
         injected crash leaves the partial temp behind on purpose —
         that is the state a real crash leaves, and what the rename
         protocol must shrug off. *)
      match
        let len = String.length blob in
        let off = ref 0 in
        while !off < len do
          Fault.check_write ~written:!off;
          let k = min write_chunk_bytes (len - !off) in
          output_substring oc blob !off k;
          off := !off + k
        done;
        close_out oc;
        rename_entry ~metrics tmp final
      with
      | () -> Ok ()
      | exception Fault.Injected_crash ->
        close_out_noerr oc;
        raise Fault.Injected_crash
      | exception Sys_error msg ->
        close_out_noerr oc;
        (try Sys.remove tmp with Sys_error _ -> ());
        Error msg
      | exception Unix.Unix_error (e, _, _) ->
        close_out_noerr oc;
        (try Sys.remove tmp with Sys_error _ -> ());
        Error (Unix.error_message e)
      | exception Fault.Injected_fault op ->
        (* Second injected rename failure: the retry is spent, degrade
           to uncached exactly like a real persistent failure. *)
        close_out_noerr oc;
        (try Sys.remove tmp with Sys_error _ -> ());
        Error ("injected fault: " ^ op))
  in
  (match result with
  | Ok () ->
    Observe.Metrics.incr (Observe.Metrics.counter metrics "cache.store");
    Observe.Trace.add_attr trace "bytes"
      (Observe.Trace.Int (String.length blob));
    evict ~metrics t ~keep:(key ^ ".plan")
  | Error msg ->
    Observe.Trace.add_attr trace "error" (Observe.Trace.Str msg));
  result

let find_or_compile ?pool ?(trace = Observe.Trace.disabled)
    ?(metrics = Observe.Metrics.disabled) ?cache ?(deltas = []) g =
  match (cache, deltas) with
  | None, [] -> (Compiled.compile ?pool ~trace ~metrics g, `Miss)
  | None, _ -> (
    match Delta.apply_all g deltas with
    | Error msg -> invalid_arg ("Plan_cache.find_or_compile: " ^ msg)
    | Ok target -> (Compiled.compile ?pool ~trace ~metrics target, `Miss))
  | Some t, [] -> (
    match find ~trace ~metrics t g with
    | Ok compiled -> (compiled, `Hit)
    | Error _ ->
      let compiled = Compiled.compile ?pool ~trace ~metrics g in
      (* Best-effort: a full disk or lost race must not fail the
         query path. *)
      ignore (store ~trace ~metrics t compiled : (unit, string) result);
      (compiled, `Miss))
  | Some t, _ -> (
    match Delta.apply_all g deltas with
    | Error msg -> invalid_arg ("Plan_cache.find_or_compile: " ^ msg)
    | Ok target -> (
      let lineage =
        (Compiled.schema_hash g, Delta.journal_hash deltas)
      in
      match find_evolved ~trace ~metrics t ~base:g ~deltas with
      | Ok compiled -> (compiled, `Hit)
      | Error _ -> (
        (* No exact evolved entry. Prefer patching the base schema's
           cached plan over a cold compile of the target: the patch
           reuses every untouched component's orderings and join-tree
           prep, which is the whole point of the delta path. *)
        let patched =
          match find ~trace ~metrics t g with
          | Error _ -> None
          | Ok base_compiled -> (
            match
              Compiled.apply_deltas ?pool ~trace ~metrics base_compiled
                deltas
            with
            | Ok (compiled, _) -> Some compiled
            | Error _ -> None)
        in
        match patched with
        | Some compiled ->
          Observe.Metrics.incr
            (Observe.Metrics.counter metrics "cache.patched");
          ignore
            (store ~trace ~metrics ~lineage t compiled
              : (unit, string) result);
          (compiled, `Patched)
        | None ->
          let compiled = Compiled.compile ?pool ~trace ~metrics target in
          ignore
            (store ~trace ~metrics ~lineage t compiled
              : (unit, string) result);
          (compiled, `Miss))))
