(** One typed error taxonomy for every boundary of the solving stack:
    [Minconn], [Mc_io.Parse] and the CLI all return these as [result]
    values instead of raising. Internal signals ([Budget.Exhausted])
    are translated into {!t} at the runtime boundary and never leak. *)

type stop_reason = Timeout | Fuel
(** Why a budget ran out: the wall-clock deadline passed, or the fuel
    counter (elimination steps / DP subset expansions) hit zero. *)

(** The rungs of the graceful-degradation ladder, ordered from best
    guarantee to last resort (see {!Degrade}). *)
type rung =
  | Exact_structured
      (** the paper's polynomial exact solvers: forest paths on
          (4,1)-chordal inputs, Algorithm 2 on (6,2)-chordal inputs *)
  | Exact_dp  (** Dreyfus–Wagner exact dynamic programming *)
  | Fixpoint  (** Algorithm 2 fixpoint elimination run as a heuristic *)
  | Mst  (** metric-closure MST 2-approximation *)

type t =
  | Parse_error of { line : int; col : int; msg : string }
      (** positioned syntax/semantic error in a text-format input;
          [col] is 1-based, 0 when no column applies *)
  | Disconnected_terminals  (** no cover exists *)
  | Budget_exhausted of rung
      (** the budget ran out in [rung] and degradation was disabled *)
  | Invalid_instance of string  (** malformed instance at the API level *)

val stop_reason_name : stop_reason -> string

val rung_name : rung -> string

val pp : Format.formatter -> t -> unit

val to_string : t -> string

val exit_code : t -> int
(** The CLI exit code this error maps to: 3 no-cover, 4 input error,
    5 budget exhausted. (0 solved-exact and 2 solved-degraded are not
    errors.) *)
