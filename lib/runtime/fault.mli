(** Deterministic fault injection for the budget checkpoints.

    When a plan is armed, every {!Budget.check} on a limited budget
    consults it and raises the internal exhaustion signal when the plan
    says so — forcing budget exhaustion at a precise checkpoint (or at
    a configurable probability per checkpoint) so tests can exercise
    every rung of the degradation ladder, including cancellation in the
    middle of an elimination fixpoint.

    The probabilistic mode steps a private splitmix64 stream, so a
    given seed yields the same injection trace run to run; tests derive
    seeds from [Workloads.Rng.for_trial] to stay per-trial
    deterministic. The harness is global, single-domain, test-only
    state: production paths never arm it, and {!Budget.check} only
    consults it on budgeted (limited) paths. *)

val arm_after : checks:int -> reason:Errors.stop_reason -> unit
(** Let the next [checks] checkpoints pass, then fail every subsequent
    one with [reason] until {!disarm}. *)

val arm : seed:int -> p:float -> reason:Errors.stop_reason -> unit
(** Fail each checkpoint independently with probability [p],
    deterministically in [seed]. *)

val disarm : unit -> unit

val armed : unit -> bool

val should_fail : unit -> Errors.stop_reason option
(** Consulted by {!Budget.check}; advances the armed plan. *)

val with_plan : arm:(unit -> unit) -> (unit -> 'a) -> 'a
(** [with_plan ~arm f] arms, runs [f], and always disarms (even on
    exceptions). *)
