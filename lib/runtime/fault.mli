(** Deterministic fault injection for the budget checkpoints.

    When a plan is armed, every {!Budget.check} on a limited budget
    consults it and raises the internal exhaustion signal when the plan
    says so — forcing budget exhaustion at a precise checkpoint (or at
    a configurable probability per checkpoint) so tests can exercise
    every rung of the degradation ladder, including cancellation in the
    middle of an elimination fixpoint.

    The probabilistic mode steps a private splitmix64 stream, so a
    given seed yields the same injection trace run to run; tests derive
    seeds from [Workloads.Rng.for_trial] to stay per-trial
    deterministic. The harness is domain-local, test-only state:
    production paths never arm it, {!Budget.check} only consults it on
    budgeted (limited) paths, and worker domains see no plan unless one
    is handed to them explicitly through {!capture}/{!with_derived} —
    which is how batch execution keeps injection traces identical
    across any domain count. *)

val arm_after : checks:int -> reason:Errors.stop_reason -> unit
(** Let the next [checks] checkpoints pass, then fail every subsequent
    one with [reason] until {!disarm}. Arms the calling domain. *)

val arm : seed:int -> p:float -> reason:Errors.stop_reason -> unit
(** Fail each checkpoint independently with probability [p],
    deterministically in [seed]. Arms the calling domain. *)

val disarm : unit -> unit

val armed : unit -> bool

val should_fail : unit -> Errors.stop_reason option
(** Consulted by {!Budget.check}; advances the calling domain's armed
    plan. *)

val with_plan : arm:(unit -> unit) -> (unit -> 'a) -> 'a
(** [with_plan ~arm f] arms, runs [f], and always disarms (even on
    exceptions). *)

type captured
(** Immutable snapshot of the calling domain's armed plan, used to
    hand deterministic per-query plans to batch tasks. *)

val capture : unit -> captured
(** Snapshot the current domain's plan (possibly "none"). *)

val with_derived : captured -> index:int -> (unit -> 'a) -> 'a
(** [with_derived c ~index f] runs [f] with the calling domain's plan
    replaced by one derived from the snapshot [c] and the query
    [index], restoring the previous plan afterwards.  A countdown plan
    restarts its countdown for every query; a probabilistic plan draws
    from a stream mixed with [index].  Both are pure functions of
    [(c, index)], so a batch's injection behaviour is identical no
    matter how queries are spread over domains. *)

(** {2 Mid-write crash injection}

    For writers that claim crash atomicity by writing a temp file and
    renaming it into place (the plan cache): the writer calls
    {!check_write} between chunks, and an armed plan raises
    {!Injected_crash} once the cumulative byte count crosses the
    threshold — standing in for a process crash in the middle of the
    write, strictly before the rename. Tests then assert that the
    visible entry is absent or intact, never torn. Domain-local, like
    the budget plans. *)

exception Injected_crash
(** The simulated crash. Writers must NOT clean up their temp file on
    this exception — a real crash would not — so tests observe exactly
    the on-disk state a kill at that byte offset would leave. *)

val arm_write_crash : after_bytes:int -> unit
(** Crash the next write that reaches [after_bytes] cumulative bytes
    (0 crashes before the first chunk). Stays armed until
    {!disarm_write_crash}. *)

val disarm_write_crash : unit -> unit

val write_crash_armed : unit -> bool

val check_write : written:int -> unit
(** Consulted by chunked writers with the running byte count; raises
    {!Injected_crash} when an armed threshold is crossed. *)

val with_write_crash : after_bytes:int -> (unit -> 'a) -> 'a
(** Arm, run, always disarm (even on {!Injected_crash}). *)
