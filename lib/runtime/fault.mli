(** Deterministic fault injection for the budget checkpoints.

    When a plan is armed, every {!Budget.check} on a limited budget
    consults it and raises the internal exhaustion signal when the plan
    says so — forcing budget exhaustion at a precise checkpoint (or at
    a configurable probability per checkpoint) so tests can exercise
    every rung of the degradation ladder, including cancellation in the
    middle of an elimination fixpoint.

    The probabilistic mode steps a private splitmix64 stream, so a
    given seed yields the same injection trace run to run; tests derive
    seeds from [Workloads.Rng.for_trial] to stay per-trial
    deterministic. The harness is domain-local, test-only state:
    production paths never arm it, {!Budget.check} only consults it on
    budgeted (limited) paths, and worker domains see no plan unless one
    is handed to them explicitly through {!capture}/{!with_derived} —
    which is how batch execution keeps injection traces identical
    across any domain count. *)

val arm_after : checks:int -> reason:Errors.stop_reason -> unit
(** Let the next [checks] checkpoints pass, then fail every subsequent
    one with [reason] until {!disarm}. Arms the calling domain. *)

val arm : seed:int -> p:float -> reason:Errors.stop_reason -> unit
(** Fail each checkpoint independently with probability [p],
    deterministically in [seed]. Arms the calling domain. *)

val disarm : unit -> unit

val armed : unit -> bool

val should_fail : unit -> Errors.stop_reason option
(** Consulted by {!Budget.check}; advances the calling domain's armed
    plan. *)

val with_plan : arm:(unit -> unit) -> (unit -> 'a) -> 'a
(** [with_plan ~arm f] arms, runs [f], and always disarms (even on
    exceptions). *)

type captured
(** Immutable snapshot of the calling domain's armed plan, used to
    hand deterministic per-query plans to batch tasks. *)

val capture : unit -> captured
(** Snapshot the current domain's plan (possibly "none"). *)

val with_derived : captured -> index:int -> (unit -> 'a) -> 'a
(** [with_derived c ~index f] runs [f] with the calling domain's plan
    replaced by one derived from the snapshot [c] and the query
    [index], restoring the previous plan afterwards.  A countdown plan
    restarts its countdown for every query; a probabilistic plan draws
    from a stream mixed with [index].  Both are pure functions of
    [(c, index)], so a batch's injection behaviour is identical no
    matter how queries are spread over domains. *)

(** {2 Named operation hooks}

    Deterministic fault injection for lifecycle boundaries that are not
    budget checkpoints: the serving layer consults
    [check_op "serve.accept" / "serve.read" / "serve.write" /
    "serve.handler"] around each connection operation, and the plan
    cache consults [check_op "cache.rename"] before its atomic rename —
    so tests can poison exactly one boundary (a torn read, a crashing
    handler, a transient rename failure) and assert the survival
    invariant of everything around it. Plans live in the arming
    domain's table, which that domain's threads share: a server running
    handler threads sees the plan the test armed. *)

exception Injected_fault of string
(** Raised by {!check_op} for an armed operation; carries the
    operation name. *)

val arm_op : op:string -> ?after:int -> ?times:int -> unit -> unit
(** Let the next [after] (default 0) checks of [op] pass, then fail
    the following [times] checks (default: every one until
    {!disarm_op}) with [Injected_fault op]. A plan whose failure
    count runs out disarms itself. *)

val disarm_op : op:string -> unit

val disarm_ops : unit -> unit
(** Drop every armed operation plan in the calling domain. *)

val op_armed : op:string -> bool

val check_op : string -> unit
(** Consulted by the instrumented boundary; raises {!Injected_fault}
    when that operation's armed plan says so, advancing the plan. *)

val with_op : op:string -> ?after:int -> ?times:int -> (unit -> 'a) -> 'a
(** Arm [op], run, always disarm (even on exceptions). *)

(** {2 Mid-write crash injection}

    For writers that claim crash atomicity by writing a temp file and
    renaming it into place (the plan cache): the writer calls
    {!check_write} between chunks, and an armed plan raises
    {!Injected_crash} once the cumulative byte count crosses the
    threshold — standing in for a process crash in the middle of the
    write, strictly before the rename. Tests then assert that the
    visible entry is absent or intact, never torn. Domain-local, like
    the budget plans. *)

exception Injected_crash
(** The simulated crash. Writers must NOT clean up their temp file on
    this exception — a real crash would not — so tests observe exactly
    the on-disk state a kill at that byte offset would leave. *)

val arm_write_crash : after_bytes:int -> unit
(** Crash the next write that reaches [after_bytes] cumulative bytes
    (0 crashes before the first chunk). Stays armed until
    {!disarm_write_crash}. *)

val disarm_write_crash : unit -> unit

val write_crash_armed : unit -> bool

val check_write : written:int -> unit
(** Consulted by chunked writers with the running byte count; raises
    {!Injected_crash} when an armed threshold is crossed. *)

val with_write_crash : after_bytes:int -> (unit -> 'a) -> 'a
(** Arm, run, always disarm (even on {!Injected_crash}). *)
