(** Cooperative resource budgets for the solving stack.

    A budget carries a wall-clock deadline and a fuel counter whose
    unit is one solver step — an elimination-pass candidate in
    [Cover], a DP subset expansion in [Dreyfus_wagner], a candidate
    subset in [Brute], a frontier expansion in [Kbest]. Solvers call
    {!check} at those points; exhaustion raises the internal
    {!Exhausted} signal, which the runtime boundary ([Minconn.solve],
    {!protect}) catches and converts into typed errors or a
    degradation step. The signal is an implementation detail: no
    public API ever lets it escape to callers.

    The un-budgeted fast path is a single branch on an immutable flag
    ({!unlimited} is never mutated), so threading checks through hot
    loops costs <3% when no budget is armed (measured by the bench
    [runtime] section). *)

exception Exhausted of Errors.stop_reason
(** Internal signal. Catch only at the runtime boundary, via
    {!protect} or the [Minconn] ladder — never let it reach library
    users. *)

type t

val unlimited : t
(** No deadline, no fuel cap; {!check} is a single load+branch. The
    default everywhere a [?budget] argument is omitted. *)

val make : ?timeout_ms:int -> ?fuel:int -> unit -> t
(** A budget whose deadline is [timeout_ms] from now and/or whose fuel
    is [fuel] solver steps. Omitted components are unbounded (but the
    result is still a limited budget that consults the {!Fault}
    harness, which is what tests want). *)

val is_unlimited : t -> bool

val check : t -> unit
(** One cooperative checkpoint: spends one fuel unit, polls the wall
    clock every few dozen checks, consults the armed {!Fault} plan.
    Raises {!Exhausted} when the budget is gone. No-op on
    {!unlimited}. *)

val spent : t -> int
(** Checkpoints passed so far (diagnostics). *)

val protect : t -> (unit -> 'a) -> ('a, Errors.stop_reason) result
(** Run a thunk at the runtime boundary, converting {!Exhausted} into
    [Error reason]. *)

(** Batch-level budgets shared across domains.

    A {!Shared.handle} pools a deadline and a fuel tank; each parallel
    task checks against its own {!Shared.view} (an ordinary {!t}, so
    solvers are oblivious), but fuel is drawn from the shared atomic
    tank and a batch-wide cancel flag is consulted on every check.
    When any task exhausts the pool (or someone calls
    {!Shared.cancel}), every in-flight sibling stops at its next
    cooperative checkpoint — cancellation stays cooperative, nothing
    is interrupted asynchronously.

    Because domains interleave nondeterministically, *which* task
    first drains a shared tank is not reproducible run to run; use
    per-query [make] budgets when determinism matters and a shared
    handle when the contract is "this whole batch gets at most X". *)
module Shared : sig
  type handle

  val make : ?timeout_ms:int -> ?fuel:int -> unit -> handle
  (** Like {!val:make}, but the fuel is a pooled tank for the whole
      batch and the deadline is shared by every view. *)

  val view : ?timeout_ms:int -> handle -> t
  (** A fresh per-task budget drawing on the handle. Create one view
      per task (views carry task-local stride/diagnostic state).
      [timeout_ms] tightens this view's deadline to the earlier of the
      handle's shared deadline and [now + timeout_ms] — the serving
      pattern, where every request draws fuel from the server-wide
      tank but also carries its own wall-clock cap. *)

  val cancel : handle -> Errors.stop_reason -> unit
  (** Stop the batch: every view raises the internal exhaustion signal
      with [reason] at its next check. First cancel wins. *)

  val cancelled : handle -> Errors.stop_reason option
end
