(** Provenance for the graceful-degradation ladder.

    The paper's taxonomy licenses a natural fallback order when an
    instance lands on the wrong side of the complexity frontier or a
    budget runs out mid-solve:

    {v exact DP  ->  Algorithm 2 fixpoint  ->  MST 2-approximation v}

    The ladder itself is executed by [Minconn.solve]; this module owns
    the record of what happened — which rung produced the answer, why
    each earlier rung was abandoned, and the optimality guarantee the
    caller is left with — so "optimal = false" is never a silent
    lie. *)

(** Why a rung was abandoned before the one that ran. *)
type reason =
  | Timeout  (** the budget's wall-clock deadline passed *)
  | Fuel  (** the budget's fuel counter ran out *)
  | Out_of_class
      (** the instance lacks the structure the rung requires *)
  | Terminals_over_cap
      (** terminal count exceeds [Dreyfus_wagner.max_terminals], so the
          exact DP was never attempted *)

type guarantee =
  | Exact
  | Ratio of float  (** approximation factor, e.g. 2.0 for the MST rung *)
  | Heuristic  (** nonredundant but no size guarantee *)

type attempt = { rung : Errors.rung; why : reason }

type provenance = {
  ran : Errors.rung;  (** the rung that produced the returned tree *)
  attempts : attempt list;
      (** rungs abandoned before [ran], in ladder order *)
  guarantee : guarantee;
}

val reason_of_stop : Errors.stop_reason -> reason

val exact : Errors.rung -> provenance
(** No abandoned rungs, [Exact] guarantee. *)

val degraded : provenance -> bool
(** Some rung was abandoned, or the guarantee is weaker than exact —
    the CLI's exit-code-2 condition. *)

val reason_name : reason -> string

val guarantee_name : guarantee -> string

val pp_reason : Format.formatter -> reason -> unit

val pp_guarantee : Format.formatter -> guarantee -> unit

val pp_attempt : Format.formatter -> attempt -> unit

val pp : Format.formatter -> provenance -> unit

val trace_abandon : Observe.Trace.t -> attempt -> unit
(** Emit a ["ladder.abandon"] trace event (rung + reason attributes);
    free on a disabled trace. *)

val trace_ran : Observe.Trace.t -> provenance -> unit
(** Emit a ["ladder.ran"] trace event (rung, guarantee, degraded). *)
