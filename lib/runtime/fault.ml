type plan =
  | After of { mutable remaining : int; reason : Errors.stop_reason }
  | Probability of {
      p : float;
      mutable state : int64;
      reason : Errors.stop_reason;
    }

(* The armed plan is domain-local: worker domains start with no plan
   and receive a derived one per task via [with_derived], so a plan
   armed in the test runner never leaks into concurrent tasks except
   through the deterministic capture/derive path. *)
let armed_key : plan option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let get_plan () = Domain.DLS.get armed_key
let set_plan p = Domain.DLS.set armed_key p

(* splitmix64: one multiply-xor-shift step per consultation, so the
   injection trace is a pure function of the seed and the check
   sequence — independent of the global Random state. *)
let splitmix64 s =
  let s = Int64.add s 0x9E3779B97F4A7C15L in
  let z = s in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  (s, Int64.logxor z (Int64.shift_right_logical z 31))

let unit_float bits =
  let mantissa = Int64.to_int (Int64.shift_right_logical bits 11) in
  float_of_int mantissa /. 9007199254740992.0 (* 2^53 *)

let arm_after ~checks ~reason =
  if checks < 0 then invalid_arg "Fault.arm_after: negative check count";
  set_plan (Some (After { remaining = checks; reason }))

let arm ~seed ~p ~reason =
  if not (p >= 0.0 && p <= 1.0) then invalid_arg "Fault.arm: p outside [0,1]";
  set_plan (Some (Probability { p; state = Int64.of_int seed; reason }))

let disarm () = set_plan None

let armed () = get_plan () <> None

let should_fail () =
  match get_plan () with
  | None -> None
  | Some (After a) ->
    if a.remaining <= 0 then Some a.reason
    else begin
      a.remaining <- a.remaining - 1;
      None
    end
  | Some (Probability pr) ->
    let state, bits = splitmix64 pr.state in
    pr.state <- state;
    if unit_float bits < pr.p then Some pr.reason else None

let with_plan ~arm:do_arm f =
  do_arm ();
  Fun.protect ~finally:disarm f

(* Per-query derivation: the batch path snapshots the submitting
   domain's plan once ([capture]), then rebuilds an equivalent but
   independent plan for each query from the snapshot and the query's
   index ([with_derived]).  Every query therefore sees the same
   injection trace whether the batch runs sequentially or on any
   number of domains — the property the parallel determinism tests
   pin. *)
type captured =
  | No_plan
  | Countdown of { checks : int; reason : Errors.stop_reason }
  | Coin of { p : float; state : int64; reason : Errors.stop_reason }

let capture () =
  match get_plan () with
  | None -> No_plan
  | Some (After a) -> Countdown { checks = a.remaining; reason = a.reason }
  | Some (Probability pr) ->
    Coin { p = pr.p; state = pr.state; reason = pr.reason }

let derive c ~index =
  match c with
  | No_plan -> None
  | Countdown { checks; reason } ->
    (* Same countdown for every query: "fail after N checks" becomes a
       per-query property, not a position in some global sequence. *)
    Some (After { remaining = checks; reason })
  | Coin { p; state; reason } ->
    (* Mix the query index into the stream so queries draw independent
       but reproducible coins. *)
    let _, mixed = splitmix64 (Int64.add state (Int64.of_int (index + 1))) in
    Some (Probability { p; state = mixed; reason })

let with_derived c ~index f =
  let saved = get_plan () in
  set_plan (derive c ~index);
  Fun.protect ~finally:(fun () -> set_plan saved) f

(* -------------------------------------------------------- op hooks *)

(* Named lifecycle hooks for the serving and storage layers: a
   component calls [check_op "serve.read"] (etc.) at each boundary it
   promises to survive, and an armed hook raises [Injected_fault] for
   that operation — standing in for a torn read, a failed rename, a
   handler bug. Unlike the budget plans these are keyed by operation
   name, so a test can poison exactly one boundary while the rest of
   the process runs clean. The table is shared by every thread of the
   arming domain on purpose: the server's handler threads must see the
   plan the test armed. *)

exception Injected_fault of string

type op_plan = { mutable passes : int; mutable failures : int }

let ops_key : (string, op_plan) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 7)

let ops () = Domain.DLS.get ops_key

let arm_op ~op ?(after = 0) ?(times = max_int) () =
  if after < 0 then invalid_arg "Fault.arm_op: negative after";
  if times < 0 then invalid_arg "Fault.arm_op: negative times";
  Hashtbl.replace (ops ()) op { passes = after; failures = times }

let disarm_op ~op = Hashtbl.remove (ops ()) op

let disarm_ops () = Hashtbl.reset (ops ())

let op_armed ~op = Hashtbl.mem (ops ()) op

let check_op op =
  match Hashtbl.find_opt (ops ()) op with
  | None -> ()
  | Some plan ->
    if plan.passes > 0 then plan.passes <- plan.passes - 1
    else if plan.failures > 0 then begin
      plan.failures <- plan.failures - 1;
      if plan.failures = 0 then Hashtbl.remove (ops ()) op;
      raise (Injected_fault op)
    end

let with_op ~op ?after ?times f =
  arm_op ~op ?after ?times ();
  Fun.protect ~finally:(fun () -> disarm_op ~op) f

(* --------------------------------------------------- write crashes *)

(* Mid-write crash injection for writers that promise atomicity via
   write-then-rename: the writer calls [check_write ~written] between
   chunks, and an armed plan kills it (by exception, standing in for a
   process crash) once the byte threshold is crossed — before the
   rename, so the visible entry must be untouched. Domain-local for
   the same reason as the budget plans. *)

exception Injected_crash

let write_crash_key : int option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let arm_write_crash ~after_bytes =
  if after_bytes < 0 then invalid_arg "Fault.arm_write_crash: negative bytes";
  Domain.DLS.set write_crash_key (Some after_bytes)

let disarm_write_crash () = Domain.DLS.set write_crash_key None

let write_crash_armed () = Domain.DLS.get write_crash_key <> None

let check_write ~written =
  match Domain.DLS.get write_crash_key with
  | Some threshold when written >= threshold -> raise Injected_crash
  | Some _ | None -> ()

let with_write_crash ~after_bytes f =
  arm_write_crash ~after_bytes;
  Fun.protect ~finally:disarm_write_crash f
