type plan =
  | After of { mutable remaining : int; reason : Errors.stop_reason }
  | Probability of {
      p : float;
      mutable state : int64;
      reason : Errors.stop_reason;
    }

let armed_plan : plan option ref = ref None

(* splitmix64: one multiply-xor-shift step per consultation, so the
   injection trace is a pure function of the seed and the check
   sequence — independent of the global Random state. *)
let splitmix64 s =
  let s = Int64.add s 0x9E3779B97F4A7C15L in
  let z = s in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  (s, Int64.logxor z (Int64.shift_right_logical z 31))

let unit_float bits =
  let mantissa = Int64.to_int (Int64.shift_right_logical bits 11) in
  float_of_int mantissa /. 9007199254740992.0 (* 2^53 *)

let arm_after ~checks ~reason =
  if checks < 0 then invalid_arg "Fault.arm_after: negative check count";
  armed_plan := Some (After { remaining = checks; reason })

let arm ~seed ~p ~reason =
  if not (p >= 0.0 && p <= 1.0) then invalid_arg "Fault.arm: p outside [0,1]";
  armed_plan :=
    Some (Probability { p; state = Int64.of_int seed; reason })

let disarm () = armed_plan := None

let armed () = !armed_plan <> None

let should_fail () =
  match !armed_plan with
  | None -> None
  | Some (After a) ->
    if a.remaining <= 0 then Some a.reason
    else begin
      a.remaining <- a.remaining - 1;
      None
    end
  | Some (Probability pr) ->
    let state, bits = splitmix64 pr.state in
    pr.state <- state;
    if unit_float bits < pr.p then Some pr.reason else None

let with_plan ~arm:do_arm f =
  do_arm ();
  Fun.protect ~finally:disarm f
