type stop_reason = Timeout | Fuel

type rung = Exact_structured | Exact_dp | Fixpoint | Mst

type t =
  | Parse_error of { line : int; col : int; msg : string }
  | Disconnected_terminals
  | Budget_exhausted of rung
  | Invalid_instance of string

let stop_reason_name = function Timeout -> "timeout" | Fuel -> "fuel"

let rung_name = function
  | Exact_structured -> "exact-structured"
  | Exact_dp -> "exact-dp"
  | Fixpoint -> "fixpoint"
  | Mst -> "mst-approx"

let pp ppf = function
  | Parse_error { line; col; msg } ->
    if col > 0 then Format.fprintf ppf "line %d, col %d: %s" line col msg
    else Format.fprintf ppf "line %d: %s" line msg
  | Disconnected_terminals ->
    Format.pp_print_string ppf "terminals are not connected"
  | Budget_exhausted rung ->
    Format.fprintf ppf "budget exhausted in the %s rung" (rung_name rung)
  | Invalid_instance msg -> Format.fprintf ppf "invalid instance: %s" msg

let to_string e = Format.asprintf "%a" pp e

(* CLI contract: 0 solved-exact, 2 solved-degraded, 3 no cover,
   4 input error, 5 budget exhausted under --no-degrade. *)
let exit_code = function
  | Disconnected_terminals -> 3
  | Parse_error _ | Invalid_instance _ -> 4
  | Budget_exhausted _ -> 5
