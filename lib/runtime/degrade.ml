type reason = Timeout | Fuel | Out_of_class | Terminals_over_cap

type guarantee = Exact | Ratio of float | Heuristic

type attempt = { rung : Errors.rung; why : reason }

type provenance = {
  ran : Errors.rung;
  attempts : attempt list;
  guarantee : guarantee;
}

let reason_of_stop = function
  | Errors.Timeout -> Timeout
  | Errors.Fuel -> Fuel

let reason_name = function
  | Timeout -> "timeout"
  | Fuel -> "fuel"
  | Out_of_class -> "out-of-class"
  | Terminals_over_cap -> "terminals-over-cap"

let guarantee_name = function
  | Exact -> "exact"
  | Ratio r -> Printf.sprintf "ratio<=%g" r
  | Heuristic -> "heuristic"

let exact ran = { ran; attempts = []; guarantee = Exact }

let degraded p = p.attempts <> [] || p.guarantee <> Exact

let pp_reason ppf r = Format.pp_print_string ppf (reason_name r)

let pp_guarantee ppf g = Format.pp_print_string ppf (guarantee_name g)

let pp_attempt ppf a =
  Format.fprintf ppf "%s abandoned (%s)" (Errors.rung_name a.rung)
    (reason_name a.why)

let pp ppf p =
  List.iter (fun a -> Format.fprintf ppf "%a; " pp_attempt a) p.attempts;
  Format.fprintf ppf "ran %s (%s)" (Errors.rung_name p.ran)
    (guarantee_name p.guarantee)

(* Ladder decisions as structured trace events, so a trace stream alone
   reconstructs the provenance without parsing stderr. *)
let trace_abandon trace a =
  Observe.Trace.event trace "ladder.abandon"
    ~attrs:
      [
        ("rung", Observe.Trace.Str (Errors.rung_name a.rung));
        ("reason", Observe.Trace.Str (reason_name a.why));
      ]

let trace_ran trace p =
  Observe.Trace.event trace "ladder.ran"
    ~attrs:
      [
        ("rung", Observe.Trace.Str (Errors.rung_name p.ran));
        ("guarantee", Observe.Trace.Str (guarantee_name p.guarantee));
        ("degraded", Observe.Trace.Bool (degraded p));
      ]
