exception Exhausted of Errors.stop_reason

(* Batch-wide state shared by every per-task view; all cross-domain
   traffic goes through the two atomics. *)
type shared_state = {
  has_fuel : bool;  (* whether [sfuel] is a real cap *)
  sfuel : int Atomic.t;  (* pooled steps, drawn by every view *)
  sdeadline : float;  (* absolute, like [deadline] below *)
  scancel : Errors.stop_reason option Atomic.t;
}

type t = {
  limited : bool;
  deadline : float;  (* absolute Unix.gettimeofday; infinity = none *)
  mutable fuel : int;  (* remaining steps; max_int = none *)
  mutable tick : int;  (* checks until the next wall-clock poll *)
  mutable spent : int;
  shared : shared_state option;  (* batch pool this view draws from *)
}

(* Polling the wall clock every check would dominate the hot loops;
   one gettimeofday per stride keeps the cooperative overhead within
   the <3% target while bounding deadline overshoot to a stride of
   cheap steps. *)
let clock_stride = 64

(* Never mutated: the fast path bails on [limited] first. *)
let unlimited =
  {
    limited = false;
    deadline = infinity;
    fuel = max_int;
    tick = 0;
    spent = 0;
    shared = None;
  }

let make ?timeout_ms ?fuel () =
  let deadline =
    match timeout_ms with
    | None -> infinity
    | Some ms ->
      if ms < 0 then invalid_arg "Budget.make: negative timeout";
      Unix.gettimeofday () +. (float_of_int ms /. 1000.0)
  in
  let fuel =
    match fuel with
    | None -> max_int
    | Some f ->
      if f < 0 then invalid_arg "Budget.make: negative fuel";
      f
  in
  { limited = true; deadline; fuel; tick = clock_stride; spent = 0;
    shared = None }

let is_unlimited b = not b.limited

let spent b = b.spent

let slow_check b =
  b.spent <- b.spent + 1;
  (match Fault.should_fail () with
  | Some reason -> raise (Exhausted reason)
  | None -> ());
  (match b.shared with
  | None -> ()
  | Some s ->
    (match Atomic.get s.scancel with
    | Some reason -> raise (Exhausted reason)
    | None -> ());
    if s.has_fuel && Atomic.fetch_and_add s.sfuel (-1) <= 0 then begin
      (* Park the reason so sibling tasks stop at their next check
         instead of each draining the (empty) pool to discover it. *)
      ignore
        (Atomic.compare_and_set s.scancel None (Some Errors.Fuel));
      raise (Exhausted Errors.Fuel)
    end);
  if b.fuel <> max_int then begin
    b.fuel <- b.fuel - 1;
    if b.fuel < 0 then raise (Exhausted Errors.Fuel)
  end;
  b.tick <- b.tick - 1;
  if b.tick <= 0 then begin
    b.tick <- clock_stride;
    if b.deadline < infinity && Unix.gettimeofday () > b.deadline then begin
      (match b.shared with
      | Some s ->
        ignore
          (Atomic.compare_and_set s.scancel None (Some Errors.Timeout))
      | None -> ());
      raise (Exhausted Errors.Timeout)
    end
  end

let check b = if b.limited then slow_check b

let protect b f =
  match f () with
  | v -> Ok v
  | exception Exhausted reason ->
    ignore b;
    Error reason

module Shared = struct
  type handle = shared_state

  let make ?timeout_ms ?fuel () =
    let sdeadline =
      match timeout_ms with
      | None -> infinity
      | Some ms ->
        if ms < 0 then invalid_arg "Budget.Shared.make: negative timeout";
        Unix.gettimeofday () +. (float_of_int ms /. 1000.0)
    in
    let has_fuel, sfuel =
      match fuel with
      | None -> (false, max_int)
      | Some f ->
        if f < 0 then invalid_arg "Budget.Shared.make: negative fuel";
        (true, f)
    in
    { has_fuel; sfuel = Atomic.make sfuel; sdeadline;
      scancel = Atomic.make None }

  let view ?timeout_ms s =
    let deadline =
      match timeout_ms with
      | None -> s.sdeadline
      | Some ms ->
        if ms < 0 then invalid_arg "Budget.Shared.view: negative timeout";
        Float.min s.sdeadline
          (Unix.gettimeofday () +. (float_of_int ms /. 1000.0))
    in
    { limited = true; deadline; fuel = max_int;
      tick = clock_stride; spent = 0; shared = Some s }

  let cancel s reason =
    ignore (Atomic.compare_and_set s.scancel None (Some reason))

  let cancelled s = Atomic.get s.scancel
end
