exception Exhausted of Errors.stop_reason

type t = {
  limited : bool;
  deadline : float;  (* absolute Unix.gettimeofday; infinity = none *)
  mutable fuel : int;  (* remaining steps; max_int = none *)
  mutable tick : int;  (* checks until the next wall-clock poll *)
  mutable spent : int;
}

(* Polling the wall clock every check would dominate the hot loops;
   one gettimeofday per stride keeps the cooperative overhead within
   the <3% target while bounding deadline overshoot to a stride of
   cheap steps. *)
let clock_stride = 64

(* Never mutated: the fast path bails on [limited] first. *)
let unlimited =
  { limited = false; deadline = infinity; fuel = max_int; tick = 0; spent = 0 }

let make ?timeout_ms ?fuel () =
  let deadline =
    match timeout_ms with
    | None -> infinity
    | Some ms ->
      if ms < 0 then invalid_arg "Budget.make: negative timeout";
      Unix.gettimeofday () +. (float_of_int ms /. 1000.0)
  in
  let fuel =
    match fuel with
    | None -> max_int
    | Some f ->
      if f < 0 then invalid_arg "Budget.make: negative fuel";
      f
  in
  { limited = true; deadline; fuel; tick = clock_stride; spent = 0 }

let is_unlimited b = not b.limited

let spent b = b.spent

let slow_check b =
  b.spent <- b.spent + 1;
  (match Fault.should_fail () with
  | Some reason -> raise (Exhausted reason)
  | None -> ());
  if b.fuel <> max_int then begin
    b.fuel <- b.fuel - 1;
    if b.fuel < 0 then raise (Exhausted Errors.Fuel)
  end;
  b.tick <- b.tick - 1;
  if b.tick <= 0 then begin
    b.tick <- clock_stride;
    if b.deadline < infinity && Unix.gettimeofday () > b.deadline then
      raise (Exhausted Errors.Timeout)
  end

let check b = if b.limited then slow_check b

let protect b f =
  match f () with
  | v -> Ok v
  | exception Exhausted reason ->
    ignore b;
    Error reason
