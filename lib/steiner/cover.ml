open Graphs

let is_cover g ~p nodes =
  Iset.subset p nodes && Traverse.is_connected ~within:nodes g

let is_nonredundant_cover g ~p nodes =
  is_cover g ~p nodes
  && Iset.for_all (fun v -> not (is_cover g ~p (Iset.remove v nodes))) nodes

let is_side_nonredundant_cover g ~p ~side nodes =
  is_cover g ~p nodes
  && Iset.for_all
       (fun v -> not (is_cover g ~p (Iset.remove v nodes)))
       (Iset.inter nodes side)

let subsets_of ?(ascending = false) set =
  let elements = Array.of_list (Iset.elements set) in
  let k = Array.length elements in
  if k > 22 then invalid_arg "Cover: brute-force subset enumeration too large";
  let all = ref [] in
  for mask = 0 to (1 lsl k) - 1 do
    let s = ref Iset.empty in
    for b = 0 to k - 1 do
      if mask land (1 lsl b) <> 0 then s := Iset.add elements.(b) !s
    done;
    all := !s :: !all
  done;
  let l = List.rev !all in
  if ascending then
    List.sort (fun a b -> compare (Iset.cardinal a) (Iset.cardinal b)) l
  else l

let nonredundant_covers_brute g ~within ~p =
  let optional = Iset.diff within p in
  subsets_of optional
  |> List.filter_map (fun extra ->
         let nodes = Iset.union p extra in
         if is_nonredundant_cover g ~p nodes then Some nodes else None)

let minimum_cover_size_brute g ~within ~p =
  let optional = Iset.diff within p in
  let rec first = function
    | [] -> None
    | extra :: rest ->
      let nodes = Iset.union p extra in
      if is_cover g ~p nodes then Some (Iset.cardinal nodes)
      else first rest
  in
  first (subsets_of ~ascending:true optional)

let side_minimum_brute g ~within ~p ~side =
  let all_covers =
    subsets_of (Iset.diff within p)
    |> List.filter_map (fun extra ->
           let nodes = Iset.union p extra in
           if is_cover g ~p nodes then
             Some (Iset.cardinal (Iset.inter nodes side))
           else None)
  in
  match all_covers with
  | [] -> None
  | l -> Some (List.fold_left min max_int l)

let elimination_pass ?order ?(budget = Runtime.Budget.unlimited)
    ?(steps = Observe.Metrics.inert) g ~p current =
  let order =
    match order with Some o -> o | None -> Iset.elements current
  in
  List.fold_left
    (fun current v ->
      if Iset.mem v p || not (Iset.mem v current) then current
      else begin
        Runtime.Budget.check budget;
        Observe.Metrics.incr steps;
        let candidate = Iset.remove v current in
        if is_cover g ~p candidate then candidate else current
      end)
    current order

let eliminate_redundant_once ?order ?budget ?steps g ~within ~p =
  elimination_pass ?order ?budget ?steps g ~p within

(* One pass in the given order is not enough for nonredundancy: a node
   may be kept only because it connects a non-terminal that is itself
   deleted later in the pass (covers must be connected as a whole,
   Definition 10). Re-scan until a fixpoint, as Theorem 5's claim that
   Step 1 yields a nonredundant cover requires. *)
let eliminate_redundant ?order ?budget ?steps g ~within ~p =
  let rec fixpoint current =
    let next = elimination_pass ?order ?budget ?steps g ~p current in
    if Iset.equal next current then current else fixpoint next
  in
  fixpoint within

let is_nonredundant_path g path =
  match path with
  | [] -> false
  | [ _ ] -> true
  | first :: _ ->
    let last = List.nth path (List.length path - 1) in
    let p = Iset.add first (Iset.singleton last) in
    is_nonredundant_cover g ~p (Iset.of_list path)

let all_paths ?max_len g s t =
  let bound = match max_len with Some b -> b | None -> Ugraph.n g in
  let acc = ref [] in
  let on_path = Array.make (Ugraph.n g) false in
  let rec extend path len last =
    if last = t then acc := List.rev path :: !acc
    else if len < bound then
      Iset.iter
        (fun v ->
          if not on_path.(v) then begin
            on_path.(v) <- true;
            extend (v :: path) (len + 1) v;
            on_path.(v) <- false
          end)
        (Ugraph.neighbors g last)
  in
  on_path.(s) <- true;
  extend [ s ] 1 s;
  on_path.(s) <- false;
  !acc

let nonredundant_nonminimum_pair g =
  let n = Ugraph.n g in
  let result = ref None in
  for s = 0 to n - 1 do
    for t = s + 1 to n - 1 do
      if !result = None then
        match Traverse.distance g s t with
        | None -> ()
        | Some d ->
          let witness =
            List.find_opt
              (fun path ->
                List.length path - 1 > d && is_nonredundant_path g path)
              (all_paths g s t)
          in
          (match witness with
          | Some path -> result := Some (s, t, path)
          | None -> ())
    done
  done;
  !result
