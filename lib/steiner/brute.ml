open Graphs
open Bipartite

let subsets_ascending set =
  let elements = Array.of_list (Iset.elements set) in
  let k = Array.length elements in
  if k > 22 then invalid_arg "Brute: subset enumeration too large";
  let all = ref [] in
  for mask = 0 to (1 lsl k) - 1 do
    let s = ref Iset.empty in
    for b = 0 to k - 1 do
      if mask land (1 lsl b) <> 0 then s := Iset.add elements.(b) !s
    done;
    all := !s :: !all
  done;
  List.sort
    (fun a b -> compare (Iset.cardinal a) (Iset.cardinal b))
    (List.rev !all)

let steiner ?(budget = Runtime.Budget.unlimited) g ~terminals =
  let optional = Iset.diff (Ugraph.nodes g) terminals in
  let rec first = function
    | [] -> None
    | extra :: rest ->
      Runtime.Budget.check budget;
      let nodes = Iset.union terminals extra in
      if Traverse.is_connected ~within:nodes g then Tree.of_node_set g nodes
      else first rest
  in
  first (subsets_ascending optional)

(* Minimise right-side usage: for a candidate right subset S, the best
   left completion is "p plus every left node adjacent to S" — adding
   left nodes can only help connectivity. The induced subgraph may stay
   disconnected through useless left components, so after the
   feasibility check we shrink to the p-component and prune leaves. *)
let v2_minimum ?(budget = Runtime.Budget.unlimited) g ~p =
  let u = Bigraph.ugraph g in
  let right = Bigraph.right_nodes g in
  let p_right = Iset.inter p right in
  let p_left = Iset.diff p p_right in
  let optional_right = Iset.diff right p_right in
  let feasible s =
    let kept_right = Iset.union p_right s in
    let adjacent_left =
      Iset.filter
        (fun x ->
          not (Iset.is_empty (Iset.inter (Ugraph.neighbors u x) kept_right)))
        (Bigraph.left_nodes g)
    in
    let nodes = Iset.union kept_right (Iset.union p_left adjacent_left) in
    if not (Traverse.connects ~within:nodes u p) then None
    else
      let comp =
        match Traverse.component_containing ~within:nodes u p with
        | Some c -> c
        | None -> nodes
      in
      match Tree.of_node_set u comp with
      | None -> None
      | Some t ->
        let pruned = Tree.prune_leaves u ~keep:p t in
        Tree.of_node_set u pruned.Tree.nodes
  in
  let rec first = function
    | [] -> None
    | s :: rest -> (
      Runtime.Budget.check budget;
      match feasible s with
      | Some t -> Some (t, Tree.count_in t right)
      | None -> first rest)
  in
  first (subsets_ascending optional_right)

let v1_minimum ?budget g ~p =
  let flipped = Bigraph.flip g in
  let to_flipped v =
    match Bigraph.node_of_index g v with
    | Bigraph.L i -> Bigraph.index flipped (Bigraph.R i)
    | Bigraph.R j -> Bigraph.index flipped (Bigraph.L j)
  in
  let to_original v =
    match Bigraph.node_of_index flipped v with
    | Bigraph.L j -> Bigraph.index g (Bigraph.R j)
    | Bigraph.R i -> Bigraph.index g (Bigraph.L i)
  in
  match v2_minimum ?budget flipped ~p:(Iset.map to_flipped p) with
  | None -> None
  | Some (t, count) ->
    let nodes = Iset.map to_original t.Tree.nodes in
    let edges =
      List.map
        (fun (a, b) ->
          let a = to_original a and b = to_original b in
          (min a b, max a b))
        t.Tree.edges
    in
    Some ({ Tree.nodes; edges }, count)
