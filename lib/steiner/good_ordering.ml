open Graphs

let eliminate ?budget g ~order ~p =
  match Traverse.component_containing g p with
  | None -> None
  | Some comp ->
    let order = order @ Iset.elements (Iset.diff comp (Iset.of_list order)) in
    Some (Cover.eliminate_redundant ~order ?budget g ~within:comp ~p)

let is_good_for ?budget g ~order ~p =
  match eliminate ?budget g ~order ~p with
  | None -> true
  | Some survivors -> (
    match Dreyfus_wagner.optimum_nodes ?budget g ~terminals:p with
    | None -> true
    | Some opt -> Iset.cardinal survivors = opt)

let find_bad_set ?(max_terminals = 4) ?(budget = Runtime.Budget.unlimited) g
    ~order =
  let n = Ugraph.n g in
  let result = ref None in
  let rec search chosen smallest size =
    if !result <> None then ()
    else begin
      if size >= 2 then begin
        Runtime.Budget.check budget;
        if not (is_good_for ~budget g ~order ~p:chosen) then
          result := Some chosen
      end;
      if !result = None && size < max_terminals then
        for v = smallest + 1 to n - 1 do
          if !result = None then search (Iset.add v chosen) v (size + 1)
        done
    end
  in
  search Iset.empty (-1) 0;
  !result

let is_good ?max_terminals ?budget g ~order =
  find_bad_set ?max_terminals ?budget g ~order = None
