open Graphs

let max_terminals = 17

let inf = max_int / 4

(* Reconstruction tags for dp.(mask).(v). *)
type choice =
  | Leaf  (** base case: path from the mask's single terminal *)
  | Merge of int  (** split into submask / complement at [v] *)
  | Via of int  (** tree at [u] extended by a shortest u–v path *)

(* Raised (and caught below) when tree reconstruction hits a state the
   DP invariants say is impossible; degrading to [None] lets the
   runtime ladder fall through instead of crashing the process. *)
exception Reconstruction_failed

let solve ?within ?(budget = Runtime.Budget.unlimited)
    ?(trace = Observe.Trace.disabled) ?(metrics = Observe.Metrics.disabled) g
    ~terminals =
  let w = match within with Some w -> w | None -> Ugraph.nodes g in
  if not (Iset.subset terminals w) then None
  else if Iset.cardinal terminals <= 1 then
    Some { Tree.nodes = terminals; edges = [] }
  else if not (Traverse.connects ~within:w g terminals) then None
  else begin
    let terms = Array.of_list (Iset.elements terminals) in
    let t = Array.length terms in
    if t > max_terminals then
      invalid_arg "Dreyfus_wagner.solve: too many terminals";
    let n = Ugraph.n g in
    let full = (1 lsl t) - 1 in
    Observe.Trace.span trace "dreyfus_wagner"
      ~attrs:
        [
          ("terminals", Observe.Trace.Int t);
          ("masks", Observe.Trace.Int (full + 1));
          ("table_cells", Observe.Trace.Int ((full + 1) * n));
        ]
    @@ fun () ->
    Observe.Metrics.observe
      (Observe.Metrics.histogram metrics "dp.table_size"
         ~bounds:[| 1e2; 1e3; 1e4; 1e5; 1e6; 1e7 |])
      (float_of_int ((full + 1) * n));
    (* Distances restricted to [w], from every node (sparse: only nodes
       in w are sources we need, but indexing by node id is simplest). *)
    let dist = Array.init n (fun s -> if Iset.mem s w then Traverse.bfs ~within:w g s else Array.make n (-1)) in
    let d u v = if dist.(u).(v) < 0 then inf else dist.(u).(v) in
    let dp = Array.make_matrix (full + 1) n inf in
    let how = Array.make_matrix (full + 1) n Leaf in
    for i = 0 to t - 1 do
      let mask = 1 lsl i in
      Iset.iter (fun v -> dp.(mask).(v) <- d terms.(i) v) w
    done;
    (* Bucket-queue Dijkstra pass: propagate dp.(mask) along edges of
       unit weight so that dp.(mask).(v) accounts for "grow by a path"
       transitions. *)
    let relax mask =
      let maxd = n + 1 in
      let buckets = Array.make (maxd + 1) [] in
      Iset.iter
        (fun v ->
          let dv = dp.(mask).(v) in
          if dv <= maxd then buckets.(dv) <- v :: buckets.(dv))
        w;
      let settled = Array.make n false in
      for dist_now = 0 to maxd do
        let rec drain () =
          match buckets.(dist_now) with
          | [] -> ()
          | v :: rest ->
            buckets.(dist_now) <- rest;
            if (not settled.(v)) && dp.(mask).(v) = dist_now then begin
              Runtime.Budget.check budget;
              settled.(v) <- true;
              Iset.iter
                (fun u ->
                  if dist_now + 1 < dp.(mask).(u) then begin
                    dp.(mask).(u) <- dist_now + 1;
                    how.(mask).(u) <- Via v;
                    if dist_now + 1 <= maxd then
                      buckets.(dist_now + 1) <- u :: buckets.(dist_now + 1)
                  end)
                (Ugraph.adj_within g ~within:w v)
            end;
            drain ()
        in
        drain ()
      done
    in
    for i = 0 to t - 1 do
      relax (1 lsl i)
    done;
    let rec submasks m sub acc =
      if sub = 0 then acc else submasks m ((sub - 1) land m) (sub :: acc)
    in
    for mask = 1 to full do
      if mask land (mask - 1) <> 0 then begin
        (* Merge transitions: to avoid double work, force the submask to
           contain the mask's lowest terminal. *)
        let low = mask land -mask in
        let subs =
          submasks mask mask []
          |> List.filter (fun sub ->
                 sub <> mask && sub land low <> 0)
        in
        Iset.iter
          (fun v ->
            Runtime.Budget.check budget;
            List.iter
              (fun sub ->
                let cost = dp.(sub).(v) + dp.(mask lxor sub).(v) in
                if cost < dp.(mask).(v) then begin
                  dp.(mask).(v) <- cost;
                  how.(mask).(v) <- Merge sub
                end)
              subs)
          w;
        relax mask
      end
    done;
    (* Best root. *)
    let root = ref (-1) and best = ref inf in
    Iset.iter
      (fun v ->
        if dp.(full).(v) < !best then begin
          best := dp.(full).(v);
          root := v
        end)
      w;
    if !best >= inf then None
    else begin
      let nodes = ref Iset.empty in
      let add_path u v =
        (* Walk from v back toward u along decreasing distance. *)
        let rec go x =
          nodes := Iset.add x !nodes;
          if x <> u then begin
            let pred =
              Iset.fold
                (fun y acc ->
                  match acc with
                  | Some _ -> acc
                  | None -> if d u y = d u x - 1 then Some y else None)
                (Ugraph.adj_within g ~within:w x)
                None
            in
            match pred with
            | Some y -> go y
            | None -> raise Reconstruction_failed
          end
        in
        go v
      in
      let rec rebuild mask v =
        match how.(mask).(v) with
        | Leaf ->
          let i =
            let rec find i = if mask = 1 lsl i then i else find (i + 1) in
            find 0
          in
          add_path terms.(i) v
        | Via u ->
          nodes := Iset.add v !nodes;
          rebuild mask u
        | Merge sub ->
          rebuild sub v;
          rebuild (mask lxor sub) v
      in
      match rebuild full !root with
      | exception Reconstruction_failed -> None
      | () -> (
        (* The collected node set is connected and has exactly opt + 1
           nodes (the reconstruction walks at most opt distinct edges and
           any connected cover needs at least that many), so a spanning
           tree of it is an optimal Steiner tree. *)
        match Spanning.spanning_tree ~within:!nodes g with
        | Some tree_edges -> Some { Tree.nodes = !nodes; edges = tree_edges }
        | None -> None)
    end
  end

let optimum_nodes ?within ?budget g ~terminals =
  Option.map Tree.node_count (solve ?within ?budget g ~terminals)
