open Graphs
open Bipartite
open Hypergraphs

let log_src =
  Logs.Src.create "minconn.algorithm1" ~doc:"Algorithm 1 (Theorem 3/4)"

module Log = (val Logs.src_log log_src : Logs.LOG)

type error = Disconnected_terminals | Not_alpha_acyclic

type result = {
  tree : Tree.t;
  v2_count : int;
  elimination_order : int list;
}

(* Step 2 of the algorithm, set-based reference: scan the Lemma 1
   ordering and delete each right node together with its private left
   neighbors whenever the remainder still covers the terminals. A
   single pass can leave a right node that was only blocked by
   structure deleted later in the same pass (covers must be connected
   as a whole); re-scan in the same W order until a fixpoint so the
   result is V2-nonredundant as Theorem 3's proof requires. *)
let eliminate_sets u ~comp ~p w_order =
  let step current v =
    if not (Iset.mem v current) then current
    else begin
      let doomed =
        Iset.add v (Ugraph.private_neighbors u ~within:current v)
      in
      if not (Iset.is_empty (Iset.inter doomed p)) then current
      else
        let candidate = Iset.diff current doomed in
        if Cover.is_cover u ~p candidate then begin
          Log.debug (fun m ->
              m "eliminating right node %d with Adj* %a" v Iset.pp
                (Iset.remove v doomed));
          candidate
        end
        else current
    end
  in
  let rec fixpoint current =
    let next = List.fold_left step current w_order in
    if Iset.equal next current then current else fixpoint next
  in
  fixpoint comp

(* The flat-kernel elimination keeps all its working state in a scratch
   record so a session serving many queries over the same graph builds
   the CSR adjacency and the bitset/array buffers exactly once. *)
type scratch = {
  csr : Csr.t;
  current : Bitset.t;
  pb : Bitset.t;
  doomed : Bitset.t;
  candidate : Bitset.t;
  queue : int array;
  seen : int array;
  mutable generation : int;
}

let make_scratch_csr csr =
  let n = Csr.n csr in
  {
    csr;
    current = Bitset.create n;
    pb = Bitset.create n;
    doomed = Bitset.create n;
    candidate = Bitset.create n;
    queue = Array.make n 0;
    seen = Array.make n 0;
    generation = 0;
  }

let make_scratch ?csr u =
  make_scratch_csr (match csr with Some c -> c | None -> Csr.of_ugraph u)

(* The same elimination as [eliminate_sets] on the flat kernels:
   adjacency from a CSR row, node sets as dense bitsets, connectivity
   by an array-based BFS. The decisions taken are exactly those of
   [eliminate_sets]; only the scratch buffers differ. *)
let eliminate_kernel_with s ~comp ~p w_order =
  let { csr; current; pb; doomed; candidate; queue; seen; _ } = s in
  Bitset.clear current;
  Iset.iter (Bitset.add current) comp;
  Bitset.clear pb;
  Iset.iter (Bitset.add pb) p;
  let connected within =
    match Bitset.min_elt_opt within with
    | None -> true
    | Some start ->
      s.generation <- s.generation + 1;
      let gen = s.generation in
      seen.(start) <- gen;
      queue.(0) <- start;
      let head = ref 0 and tail = ref 1 in
      while !head < !tail do
        let x = queue.(!head) in
        incr head;
        Csr.iter_neighbors csr x (fun y ->
            if seen.(y) <> gen && Bitset.mem within y then begin
              seen.(y) <- gen;
              queue.(!tail) <- y;
              incr tail
            end)
      done;
      !tail = Bitset.card within
  in
  let step v =
    if Bitset.mem current v then begin
      Bitset.clear doomed;
      Bitset.add doomed v;
      Csr.iter_neighbors csr v (fun u ->
          if Bitset.mem current u then begin
            let private_to_v = ref true in
            Csr.iter_neighbors csr u (fun w ->
                if w <> v && Bitset.mem current w then private_to_v := false);
            if !private_to_v then Bitset.add doomed u
          end);
      if Bitset.disjoint doomed pb then begin
        Bitset.assign ~dst:candidate ~src:current;
        Bitset.diff_into candidate doomed;
        if Bitset.subset pb candidate && connected candidate then begin
          Log.debug (fun m ->
              m "eliminating right node %d with Adj* %a" v Bitset.pp
                (let adj = Bitset.copy doomed in
                 Bitset.remove adj v;
                 adj));
          Bitset.assign ~dst:current ~src:candidate;
          true
        end
        else false
      end
      else false
    end
    else false
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter (fun v -> if step v then changed := true) w_order
  done;
  Bitset.to_iset current

let eliminate_kernel u ~comp ~p w_order =
  eliminate_kernel_with (make_scratch u) ~comp ~p w_order

(* ------------------------------------------------------------------ *)
(* Compile-once preprocessing: the Lemma 1 ordering depends only on
   the component, not on the terminal set, so a session answering many
   queries computes the join tree and W once per component.           *)
(* ------------------------------------------------------------------ *)

type prep = {
  comp : Iset.t;
  w_order : int list;  (* [] for trivial (<= 1 node) components *)
}

let prep_order p = p.w_order

let prepare ?(trace = Observe.Trace.disabled) g ~comp =
  if Iset.cardinal comp <= 1 then Ok { comp; w_order = [] }
  else begin
    let c = Bigraph.csr g in
    let nl = Bigraph.nl g in
    let right_in_comp =
      List.filter (fun v -> v >= nl) (Iset.elements comp)
    in
    (* H¹ of the component: one hyperedge per right node, over the left
       universe. Right nodes in the component always have at least one
       neighbor (they would otherwise be isolated and the component
       would be a singleton). Adjacency comes straight from the sorted
       CSR rows — preparing every component of a stream-built schema
       never forces the set view or an O(nr) right-node set. *)
    let family =
      List.map
        (fun v -> Iset.of_list (Array.to_list (Csr.sorted_neighbors c v)))
        right_in_comp
    in
    let h = Hypergraph.create ~n_nodes:(Bigraph.nl g) family in
    match
      Observe.Trace.span trace "algorithm1.join_tree" (fun () ->
          Gyo.join_tree h)
    with
    | None -> Error Not_alpha_acyclic
    | Some jt ->
      let rip = Join_tree.preorder jt in
      let right_arr = Array.of_list right_in_comp in
      (* Lemma 1's W is the reverse of the running-intersection
         ordering. *)
      let w_order = List.rev_map (fun i -> right_arr.(i)) rip in
      Log.debug (fun m ->
          m "Lemma 1 ordering W = [%s]"
            (String.concat "; " (List.map string_of_int w_order)));
      Ok { comp; w_order }
  end

(* Step 2 + Step 3 on an already-prepared component. [p] must lie
   inside [prep.comp] (the caller established connectivity). *)
let solve_prepared_with ~eliminate ?(trace = Observe.Trace.disabled) g prep ~p
    =
  let nl = Bigraph.nl g in
  let comp = prep.comp in
  if Iset.cardinal comp <= 1 then
    Ok
      {
        tree = { Tree.nodes = comp; edges = [] };
        v2_count = Iset.cardinal (Iset.filter (fun v -> v >= nl) comp);
        elimination_order = [];
      }
  else begin
    Observe.Trace.span trace "algorithm1"
      ~attrs:[ ("component", Observe.Trace.Int (Iset.cardinal comp)) ]
    @@ fun () ->
    let survivors =
      Observe.Trace.span trace "algorithm1.eliminate" (fun () ->
          eliminate ~comp ~p prep.w_order)
    in
    (* The set view is only needed here, for tree extraction over the
       (small) survivor set; count V2 nodes by index instead of an
       O(nr) right-node set. *)
    match Tree.of_node_set (Bigraph.ugraph g) survivors with
    | Some tree ->
      Ok
        {
          tree;
          v2_count =
            Iset.cardinal (Iset.filter (fun v -> v >= nl) tree.Tree.nodes);
          elimination_order = prep.w_order;
        }
    | None when Iset.is_empty survivors ->
      (* Empty terminal set: everything was eliminated; the empty
         tree connects nothing vacuously. *)
      Ok
        {
          tree = { Tree.nodes = Iset.empty; edges = [] };
          v2_count = 0;
          elimination_order = prep.w_order;
        }
    | None ->
      (* Defensive: every accepted elimination candidate is a
         connected cover, so a spanning tree must exist; degrade
         instead of crashing if that invariant is ever broken. *)
      Error Disconnected_terminals
  end

let solve_prepared ?trace ?scratch g prep ~p =
  let eliminate =
    match scratch with
    | Some s -> eliminate_kernel_with s
    | None -> eliminate_kernel_with (make_scratch_csr (Bigraph.csr g))
  in
  solve_prepared_with ~eliminate ?trace g prep ~p

let solve_with ~eliminate ?trace g ~p =
  let u = Bigraph.ugraph g in
  match Traverse.component_containing u p with
  | None -> Error Disconnected_terminals
  | Some comp -> (
    match prepare ?trace g ~comp with
    | Error e -> Error e
    | Ok prep -> solve_prepared_with ~eliminate:(eliminate u) ?trace g prep ~p
    )

let solve ?trace g ~p =
  solve_with ~eliminate:(fun u -> eliminate_kernel u) ?trace g ~p

let solve_sets ?trace g ~p =
  solve_with ~eliminate:(fun u -> eliminate_sets u) ?trace g ~p

let solve_wrt_v1 g ~p =
  let flipped = Bigraph.flip g in
  let to_flipped v =
    match Bigraph.node_of_index g v with
    | Bigraph.L i -> Bigraph.index flipped (Bigraph.R i)
    | Bigraph.R j -> Bigraph.index flipped (Bigraph.L j)
  in
  let to_original v =
    match Bigraph.node_of_index flipped v with
    | Bigraph.L j -> Bigraph.index g (Bigraph.R j)
    | Bigraph.R i -> Bigraph.index g (Bigraph.L i)
  in
  match solve flipped ~p:(Iset.map to_flipped p) with
  | Error e -> Error e
  | Ok r ->
    let nodes = Iset.map to_original r.tree.Tree.nodes in
    let edges =
      List.map
        (fun (a, b) ->
          let a = to_original a and b = to_original b in
          (min a b, max a b))
        r.tree.Tree.edges
    in
    Ok
      {
        tree = { Tree.nodes; edges };
        v2_count = r.v2_count;
        elimination_order = List.map to_original r.elimination_order;
      }
