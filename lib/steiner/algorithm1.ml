open Graphs
open Bipartite
open Hypergraphs

let log_src =
  Logs.Src.create "minconn.algorithm1" ~doc:"Algorithm 1 (Theorem 3/4)"

module Log = (val Logs.src_log log_src : Logs.LOG)

type error = Disconnected_terminals | Not_alpha_acyclic

type result = {
  tree : Tree.t;
  v2_count : int;
  elimination_order : int list;
}

(* Step 2 of the algorithm, set-based reference: scan the Lemma 1
   ordering and delete each right node together with its private left
   neighbors whenever the remainder still covers the terminals. A
   single pass can leave a right node that was only blocked by
   structure deleted later in the same pass (covers must be connected
   as a whole); re-scan in the same W order until a fixpoint so the
   result is V2-nonredundant as Theorem 3's proof requires. *)
let eliminate_sets u ~comp ~p w_order =
  let step current v =
    if not (Iset.mem v current) then current
    else begin
      let doomed =
        Iset.add v (Ugraph.private_neighbors u ~within:current v)
      in
      if not (Iset.is_empty (Iset.inter doomed p)) then current
      else
        let candidate = Iset.diff current doomed in
        if Cover.is_cover u ~p candidate then begin
          Log.debug (fun m ->
              m "eliminating right node %d with Adj* %a" v Iset.pp
                (Iset.remove v doomed));
          candidate
        end
        else current
    end
  in
  let rec fixpoint current =
    let next = List.fold_left step current w_order in
    if Iset.equal next current then current else fixpoint next
  in
  fixpoint comp

(* The same elimination on the flat kernels: adjacency from a CSR row,
   node sets as dense bitsets, connectivity by an array-based BFS. All
   scratch structures are allocated once; the decisions taken are
   exactly those of [eliminate_sets]. *)
let eliminate_kernel u ~comp ~p w_order =
  let n = Ugraph.n u in
  let csr = Csr.of_ugraph u in
  let current = Bitset.of_iset ~len:n comp in
  let pb = Bitset.of_iset ~len:n p in
  let doomed = Bitset.create n in
  let candidate = Bitset.create n in
  let queue = Array.make n 0 in
  let seen = Array.make n 0 in
  let generation = ref 0 in
  let connected within =
    match Bitset.min_elt_opt within with
    | None -> true
    | Some s ->
      incr generation;
      let gen = !generation in
      seen.(s) <- gen;
      queue.(0) <- s;
      let head = ref 0 and tail = ref 1 in
      while !head < !tail do
        let x = queue.(!head) in
        incr head;
        Csr.iter_neighbors csr x (fun y ->
            if seen.(y) <> gen && Bitset.mem within y then begin
              seen.(y) <- gen;
              queue.(!tail) <- y;
              incr tail
            end)
      done;
      !tail = Bitset.card within
  in
  let step v =
    if Bitset.mem current v then begin
      Bitset.clear doomed;
      Bitset.add doomed v;
      Csr.iter_neighbors csr v (fun u ->
          if Bitset.mem current u then begin
            let private_to_v = ref true in
            Csr.iter_neighbors csr u (fun w ->
                if w <> v && Bitset.mem current w then private_to_v := false);
            if !private_to_v then Bitset.add doomed u
          end);
      if Bitset.disjoint doomed pb then begin
        Bitset.assign ~dst:candidate ~src:current;
        Bitset.diff_into candidate doomed;
        if Bitset.subset pb candidate && connected candidate then begin
          Log.debug (fun m ->
              m "eliminating right node %d with Adj* %a" v Bitset.pp
                (let adj = Bitset.copy doomed in
                 Bitset.remove adj v;
                 adj));
          Bitset.assign ~dst:current ~src:candidate;
          true
        end
        else false
      end
      else false
    end
    else false
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter (fun v -> if step v then changed := true) w_order
  done;
  Bitset.to_iset current

let solve_with ~eliminate ?(trace = Observe.Trace.disabled) g ~p =
  let u = Bigraph.ugraph g in
  match Traverse.component_containing u p with
  | None -> Error Disconnected_terminals
  | Some comp ->
    let right_in_comp =
      Iset.elements (Iset.inter comp (Bigraph.right_nodes g))
    in
    (* H¹ of the component: one hyperedge per right node, over the left
       universe. Right nodes in the component always have at least one
       neighbor (they would otherwise be isolated and the component
       would be a singleton); a singleton component is the trivial
       case below. *)
    if Iset.cardinal comp <= 1 then
      Ok
        {
          tree = { Tree.nodes = comp; edges = [] };
          v2_count = Iset.cardinal (Iset.inter comp (Bigraph.right_nodes g));
          elimination_order = [];
        }
    else begin
      Observe.Trace.span trace "algorithm1"
        ~attrs:[ ("component", Observe.Trace.Int (Iset.cardinal comp)) ]
      @@ fun () ->
      let family =
        List.map (fun v -> Ugraph.neighbors u v) right_in_comp
      in
      let h = Hypergraph.create ~n_nodes:(Bigraph.nl g) family in
      match
        Observe.Trace.span trace "algorithm1.join_tree" (fun () ->
            Gyo.join_tree h)
      with
      | None -> Error Not_alpha_acyclic
      | Some jt ->
        let rip = Join_tree.preorder jt in
        let right_arr = Array.of_list right_in_comp in
        (* Lemma 1's W is the reverse of the running-intersection
           ordering. *)
        let w_order = List.rev_map (fun i -> right_arr.(i)) rip in
        Log.debug (fun m ->
            m "Lemma 1 ordering W = [%s]"
              (String.concat "; " (List.map string_of_int w_order)));
        let survivors =
          Observe.Trace.span trace "algorithm1.eliminate" (fun () ->
              eliminate u ~comp ~p w_order)
        in
        (match Tree.of_node_set u survivors with
        | Some tree ->
          Ok
            {
              tree;
              v2_count = Tree.count_in tree (Bigraph.right_nodes g);
              elimination_order = w_order;
            }
        | None when Iset.is_empty survivors ->
          (* Empty terminal set: everything was eliminated; the empty
             tree connects nothing vacuously. *)
          Ok
            {
              tree = { Tree.nodes = Iset.empty; edges = [] };
              v2_count = 0;
              elimination_order = w_order;
            }
        | None ->
          (* Defensive: every accepted elimination candidate is a
             connected cover, so a spanning tree must exist; degrade
             instead of crashing if that invariant is ever broken. *)
          Error Disconnected_terminals)
    end

let solve ?trace g ~p = solve_with ~eliminate:eliminate_kernel ?trace g ~p

let solve_sets ?trace g ~p = solve_with ~eliminate:eliminate_sets ?trace g ~p

let solve_wrt_v1 g ~p =
  let flipped = Bigraph.flip g in
  let to_flipped v =
    match Bigraph.node_of_index g v with
    | Bigraph.L i -> Bigraph.index flipped (Bigraph.R i)
    | Bigraph.R j -> Bigraph.index flipped (Bigraph.L j)
  in
  let to_original v =
    match Bigraph.node_of_index flipped v with
    | Bigraph.L j -> Bigraph.index g (Bigraph.R j)
    | Bigraph.R i -> Bigraph.index g (Bigraph.L i)
  in
  match solve flipped ~p:(Iset.map to_flipped p) with
  | Error e -> Error e
  | Ok r ->
    let nodes = Iset.map to_original r.tree.Tree.nodes in
    let edges =
      List.map
        (fun (a, b) ->
          let a = to_original a and b = to_original b in
          (min a b, max a b))
        r.tree.Tree.edges
    in
    Ok
      {
        tree = { Tree.nodes; edges };
        v2_count = r.v2_count;
        elimination_order = List.map to_original r.elimination_order;
      }
