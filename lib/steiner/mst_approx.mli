(** The classical 2-approximation for unweighted Steiner trees
    (Kou–Markowsky–Berman style): build the metric closure of the
    terminals, take its minimum spanning tree, expand each MST edge
    into a shortest path, and prune.

    This is the structure-oblivious baseline: on (6,2)-chordal inputs
    it can return strictly more nodes than Algorithm 2, which is one of
    the benchmark harness's headline comparisons. *)

open Graphs

val solve :
  ?trace:Observe.Trace.t -> Ugraph.t -> terminals:Iset.t -> Tree.t option
(** [None] when the terminals do not share a component. [trace] records
    an ["mst_approx"] span with terminal and result-tree node counts.
    Degenerate inputs (empty or singleton terminal sets, isolated
    terminal nodes) return the trivial tree or [None]; they never
    crash. *)

type scratch
(** CSR adjacency + BFS queue for one graph, reusable across queries.
    Not safe for concurrent use. *)

val make_scratch : ?csr:Csr.t -> Ugraph.t -> scratch
(** [csr], when given, must be [Csr.of_ugraph] of the same graph; it
    lets a session share one adjacency arena across solver scratches. *)

val make_scratch_csr : Csr.t -> scratch
(** Same, directly from the flat adjacency — the stream-built session
    path, which never touches the set view. *)

val solve_connected :
  ?trace:Observe.Trace.t ->
  ?scratch:scratch ->
  Ugraph.t ->
  terminals:Iset.t ->
  Tree.t option
(** Same approximation when the caller has already established that the
    (two or more) terminals share a component — sessions use their
    cached component ids instead of {!solve}'s per-call BFS. When
    [scratch] is omitted a fresh one is allocated. *)
