(** Covers of a node set (Definition 10) and (non)redundant paths.

    All node sets are expressed as underlying-graph indices. The
    "minimum" predicates are brute force and exist as oracles for
    Lemmas 4/5 and the test suite. *)

open Graphs

val is_cover : Ugraph.t -> p:Iset.t -> Iset.t -> bool
(** The induced subgraph is connected and contains [p]. *)

val is_nonredundant_cover : Ugraph.t -> p:Iset.t -> Iset.t -> bool
(** A cover from which no single node can be dropped. *)

val is_side_nonredundant_cover :
  Ugraph.t -> p:Iset.t -> side:Iset.t -> Iset.t -> bool
(** No node {e of the given side} can be dropped (the paper's
    V₁-/V₂-nonredundant covers). *)

val nonredundant_covers_brute :
  Ugraph.t -> within:Iset.t -> p:Iset.t -> Iset.t list
(** All nonredundant covers inside [within]; exponential. *)

val minimum_cover_size_brute : Ugraph.t -> within:Iset.t -> p:Iset.t -> int option
(** Size of a minimum cover; [None] when [p] is not connected within. *)

val side_minimum_brute :
  Ugraph.t -> within:Iset.t -> p:Iset.t -> side:Iset.t -> int option
(** Minimum number of side-nodes over all covers. *)

val eliminate_redundant_once :
  ?order:int list ->
  ?budget:Runtime.Budget.t ->
  ?steps:Observe.Metrics.counter ->
  Ugraph.t ->
  within:Iset.t ->
  p:Iset.t ->
  Iset.t
(** A single scan, exactly as Algorithms 1–2 are printed in the paper.
    Kept for the ablation benchmark: it can leave a redundant node
    behind (see DESIGN.md §7) and is {e not} used by the solvers. *)

val eliminate_redundant :
  ?order:int list ->
  ?budget:Runtime.Budget.t ->
  ?steps:Observe.Metrics.counter ->
  Ugraph.t ->
  within:Iset.t ->
  p:Iset.t ->
  Iset.t
(** Scan the nodes (in [order], default increasing; terminals are
    skipped) and drop each whose removal leaves a cover of [p] — the
    core move of Algorithm 2 and of Definition 11's "good orderings".
    Requires [p] connected within; returns a nonredundant cover. One
    fuel unit is spent per elimination candidate; exhaustion raises
    the internal [Runtime.Budget.Exhausted] signal (callers at the
    runtime boundary catch it; the fixpoint leaves no partial
    state behind — inputs are immutable). [steps] (default inert) is
    bumped once per considered elimination candidate. *)

val is_nonredundant_path : Ugraph.t -> int list -> bool
(** The path's node set induces a nonredundant cover of its two
    endpoints. *)

val all_paths : ?max_len:int -> Ugraph.t -> int -> int -> int list list
(** All simple paths between two nodes; exponential. *)

val nonredundant_nonminimum_pair :
  Ugraph.t -> (int * int * int list) option
(** A witness for Lemma 4's criterion failing: endpoints plus a
    nonredundant path strictly longer than their distance. *)
