(** Pure subset-enumeration Steiner solvers: the ground-truth oracles
    the test suite compares everything against. Exponential in the
    number of optional nodes; instances must stay tiny. *)

open Graphs
open Bipartite

val steiner :
  ?budget:Runtime.Budget.t -> Ugraph.t -> terminals:Iset.t -> Tree.t option
(** Minimum-node tree over the terminals by enumerating optional node
    subsets in ascending cardinality. One fuel unit of [budget] per
    candidate subset; exhaustion raises the internal
    [Runtime.Budget.Exhausted] signal. *)

val v2_minimum :
  ?budget:Runtime.Budget.t -> Bigraph.t -> p:Iset.t -> (Tree.t * int) option
(** Pseudo-Steiner w.r.t. V₂ (Definition 9): a tree over [p] whose
    number of right nodes is minimum, with that count. Enumerates right
    node subsets only — left nodes are free, so for a fixed right subset
    it suffices to throw in every adjacent left node and check
    coverage. *)

val v1_minimum :
  ?budget:Runtime.Budget.t -> Bigraph.t -> p:Iset.t -> (Tree.t * int) option
