open Graphs

let remove_edges g banned =
  List.fold_left (fun g (u, v) -> Ugraph.remove_edge g u v) g banned

let canonical_edges tree =
  List.sort_uniq compare
    (List.map (fun (u, v) -> (min u v, max u v)) tree.Tree.edges)

let enumerate ?(max_trees = 10) ?max_extra ?(budget = Runtime.Budget.unlimited)
    g ~terminals =
  match Dreyfus_wagner.solve ~budget g ~terminals with
  | None -> []
  | Some first ->
    let optimum = Tree.node_count first in
    let cutoff =
      match max_extra with Some e -> optimum + e | None -> max_int
    in
    (* Frontier of (cost, tree, banned edges), kept sorted by cost;
       interactive instance sizes keep a plain sorted list ample. *)
    let push frontier ((cost, _, _) as entry) =
      let rec insert = function
        | [] -> [ entry ]
        | ((c, _, _) as x) :: rest when c <= cost -> x :: insert rest
        | rest -> entry :: rest
      in
      insert frontier
    in
    let rec loop frontier emitted =
      if List.length emitted >= max_trees then List.rev emitted
      else
        match frontier with
        | [] -> List.rev emitted
        | (cost, tree, banned) :: rest ->
          if cost > cutoff then List.rev emitted
          else begin
            Runtime.Budget.check budget;
            let key = canonical_edges tree in
            let seen =
              List.exists (fun t -> canonical_edges t = key) emitted
            in
            let frontier =
              (* Branch even on duplicates: the same tree reached under
                 different ban sets guards different parts of the
                 solution space. *)
              List.fold_left
                  (fun acc e ->
                    let banned' = e :: banned in
                    match
                      Dreyfus_wagner.solve ~budget (remove_edges g banned')
                        ~terminals
                    with
                    | Some t -> push acc (Tree.node_count t, t, banned')
                    | None -> acc)
                  rest key
            in
            loop frontier (if seen then emitted else tree :: emitted)
          end
    in
    loop [ (optimum, first, []) ] []
