(** Ranked enumeration of minimal connections — the engine behind the
    paper's interactive disambiguation loop ("a good starting point of
    an interactive procedure aimed at disambiguating the query by
    progressively disclosing as few concepts as possible").

    Solutions are {e trees} over the terminals, produced in
    nondecreasing node count: when a tree is emitted, one subproblem
    per tree edge is queued with that edge banned (and the parent's
    bans kept), and each subproblem is solved exactly with
    {!Dreyfus_wagner} on the edge-deleted graph. Every other tree lacks
    at least one edge of an emitted tree, so the scheme is complete;
    duplicates arising from overlapping subproblems are filtered by
    edge set. Because each subproblem is solved optimally, emitted
    trees never carry a dangling non-terminal leaf — each one is a
    genuine alternative navigation. *)

open Graphs

val enumerate :
  ?max_trees:int ->
  ?max_extra:int ->
  ?budget:Runtime.Budget.t ->
  Ugraph.t ->
  terminals:Iset.t ->
  Tree.t list
(** At most [max_trees] (default 10) distinct trees, smallest first;
    stops early once a candidate exceeds the optimum by more than
    [max_extra] nodes (default: no bound). Empty when the terminals are
    disconnected. [budget] is spent on each frontier expansion and
    inside every inner Dreyfus–Wagner solve; exhaustion raises the
    internal [Runtime.Budget.Exhausted] signal. *)
