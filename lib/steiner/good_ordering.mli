(** Good orderings (Definition 11) and Theorem 6.

    An ordering of a bipartite graph's nodes is {e good} when, for
    every terminal set P, scanning it and deleting redundant nodes
    yields a {e minimum} cover of P. Corollary 5: on (6,2)-chordal
    graphs every ordering is good. Theorem 6: the (6,1)-chordal graph
    of Fig. 11 has no good ordering at all. *)

open Graphs

val eliminate :
  ?budget:Runtime.Budget.t ->
  Ugraph.t ->
  order:int list ->
  p:Iset.t ->
  Iset.t option
(** Definition 11's process on the component of [p]: [None] when [p] is
    not connected. *)

val is_good_for :
  ?budget:Runtime.Budget.t -> Ugraph.t -> order:int list -> p:Iset.t -> bool
(** The elimination result is a minimum cover of [p] (checked against
    the exact optimum; exponential in graph size via Dreyfus–Wagner on
    the terminals). Vacuously true for disconnected [p]. *)

val find_bad_set :
  ?max_terminals:int ->
  ?budget:Runtime.Budget.t ->
  Ugraph.t ->
  order:int list ->
  Iset.t option
(** Search every terminal set up to the given size (default 4) for one
    on which the ordering is not good. One fuel unit of [budget] per
    candidate terminal set, plus whatever the inner elimination and
    Dreyfus–Wagner runs spend; exhaustion raises the internal
    [Runtime.Budget.Exhausted] signal. *)

val is_good :
  ?max_terminals:int -> ?budget:Runtime.Budget.t -> Ugraph.t -> order:int list -> bool
(** No bad set up to the bound. (Definition 11 quantifies over all
    terminal sets; for the graphs this repository feeds it, the small
    witnesses are the ones the paper's proofs rely on.) *)
