(** Algorithm 2 (Theorem 5): Steiner trees on (6,2)-chordal bipartite
    graphs in O(|V|·|A|).

    For every node outside the terminal set, in any order, drop it if
    the remainder still covers the terminals; finish with a spanning
    tree. Lemma 5 shows that on (6,2)-chordal graphs {e every}
    nonredundant cover is minimum, so this one-pass elimination is
    exact there (Corollary 5: all orderings are good). On arbitrary
    graphs the function still returns a tree over the terminals — just
    without the optimality guarantee — which is exactly how the paper's
    Theorem 6 discussion exercises it. *)

open Graphs
open Bipartite

val solve :
  ?order:int list ->
  ?budget:Runtime.Budget.t ->
  ?trace:Observe.Trace.t ->
  ?metrics:Observe.Metrics.t ->
  Ugraph.t ->
  p:Iset.t ->
  Tree.t option
(** [None] when the terminals do not share a component. The elimination
    is restricted to the component containing [p]; [order] defaults to
    increasing node ids and may mention any subset of nodes (missing
    nodes are appended in increasing order, terminals are skipped).
    [budget] is spent by the underlying {!Cover.eliminate_redundant}
    fixpoint, one fuel unit per elimination candidate. [trace] records
    an ["algorithm2"] span (component size, survivor count); [metrics]
    counts elimination steps ([elimination.steps] counter and
    [elimination.steps_per_solve] histogram). *)

val solve_bigraph :
  ?order:int list ->
  ?budget:Runtime.Budget.t ->
  ?trace:Observe.Trace.t ->
  ?metrics:Observe.Metrics.t ->
  Bigraph.t ->
  p:Iset.t ->
  Tree.t option

val solve_in :
  ?budget:Runtime.Budget.t ->
  ?trace:Observe.Trace.t ->
  ?metrics:Observe.Metrics.t ->
  Ugraph.t ->
  comp:Iset.t ->
  order:int list ->
  p:Iset.t ->
  Tree.t option
(** The elimination on an already-located component: [comp] must be the
    connected component containing [p] and [order] a complete
    elimination order over it. Sessions answering many queries compute
    both once per component ({!complete_order} builds the default
    order) and skip {!solve}'s per-call component search. *)

val complete_order : comp:Iset.t -> int list option -> int list
(** [complete_order ~comp order] appends the nodes of [comp] missing
    from [order] in increasing id order — the completion {!solve}
    applies to its [?order] argument. *)
