open Graphs

let inf = max_int / 4

(* Node-weighted Dijkstra relaxation for one mask: entering node v
   costs weight v. *)
let relax g ~within ~weight dp how =
  let n = Ugraph.n g in
  let settled = Array.make n false in
  let rec loop () =
    (* Extract-min over unsettled nodes (O(n^2) total: ample here). *)
    let best = ref (-1) in
    Iset.iter
      (fun v ->
        if (not settled.(v)) && dp.(v) < inf
           && (!best < 0 || dp.(v) < dp.(!best))
        then best := v)
      within;
    if !best >= 0 then begin
      let u = !best in
      settled.(u) <- true;
      Iset.iter
        (fun v ->
          let cost = dp.(u) + weight v in
          if cost < dp.(v) then begin
            dp.(v) <- cost;
            how.(v) <- Some u
          end)
        (Ugraph.adj_within g ~within u);
      loop ()
    end
  in
  loop ()

type choice = Leaf of int | Merge of int | Via of int

let solve ?within g ~weight ~terminals =
  let w = match within with Some w -> w | None -> Ugraph.nodes g in
  Iset.iter
    (fun v ->
      if weight v < 0 then invalid_arg "Weighted.solve: negative weight")
    w;
  if not (Iset.subset terminals w) then None
  else if Iset.is_empty terminals then Some (Tree.empty, 0)
  else if Iset.cardinal terminals = 1 then
    Some
      ( { Tree.nodes = terminals; edges = [] },
        weight (Iset.min_elt terminals) )
  else if not (Traverse.connects ~within:w g terminals) then None
  else begin
    let terms = Array.of_list (Iset.elements terminals) in
    let t = Array.length terms in
    if t > Dreyfus_wagner.max_terminals then
      invalid_arg "Weighted.solve: too many terminals";
    let n = Ugraph.n g in
    let full = (1 lsl t) - 1 in
    let dp = Array.make_matrix (full + 1) n inf in
    let how = Array.make_matrix (full + 1) n (Leaf (-1)) in
    for i = 0 to t - 1 do
      let mask = 1 lsl i in
      dp.(mask).(terms.(i)) <- weight terms.(i);
      how.(mask).(terms.(i)) <- Leaf i;
      let pred = Array.make n None in
      relax g ~within:w ~weight dp.(mask) pred;
      Array.iteri
        (fun v p ->
          match p with Some u -> how.(mask).(v) <- Via u | None -> ())
        pred
    done;
    let rec submasks m sub acc =
      if sub = 0 then acc else submasks m ((sub - 1) land m) (sub :: acc)
    in
    for mask = 1 to full do
      if mask land (mask - 1) <> 0 then begin
        let low = mask land -mask in
        let subs =
          submasks mask mask []
          |> List.filter (fun sub -> sub <> mask && sub land low <> 0)
        in
        Iset.iter
          (fun v ->
            List.iter
              (fun sub ->
                let a = dp.(sub).(v) and b = dp.(mask lxor sub).(v) in
                if a < inf && b < inf then begin
                  let cost = a + b - weight v in
                  if cost < dp.(mask).(v) then begin
                    dp.(mask).(v) <- cost;
                    how.(mask).(v) <- Merge sub
                  end
                end)
              subs)
          w;
        let pred = Array.make n None in
        relax g ~within:w ~weight dp.(mask) pred;
        Array.iteri
          (fun v p ->
            match p with Some u -> how.(mask).(v) <- Via u | None -> ())
          pred
      end
    done;
    let root = ref (-1) and best = ref inf in
    Iset.iter
      (fun v ->
        if dp.(full).(v) < !best then begin
          best := dp.(full).(v);
          root := v
        end)
      w;
    if !best >= inf then None
    else begin
      let nodes = ref Iset.empty in
      let rec rebuild mask v =
        nodes := Iset.add v !nodes;
        match how.(mask).(v) with
        | Leaf _ -> ()
        | Via u -> rebuild mask u
        | Merge sub ->
          rebuild sub v;
          rebuild (mask lxor sub) v
      in
      rebuild full !root;
      (* The collected nodes form a connected cover of the terminals
         whose total weight is at most the DP optimum; its spanning
         tree realises the weighted optimum. *)
      match Spanning.spanning_tree ~within:!nodes g with
      | Some edges -> Some ({ Tree.nodes = !nodes; edges }, !best)
      | None ->
        (* Defensive: the reconstruction yields a connected set, so a
           spanning tree must exist; degrade instead of crashing. *)
        None
    end
  end

let brute g ~weight ~terminals =
  let optional = Iset.diff (Ugraph.nodes g) terminals in
  if Iset.cardinal optional > 18 then invalid_arg "Weighted.brute: too large";
  let elements = Array.of_list (Iset.elements optional) in
  let k = Array.length elements in
  let best = ref None in
  for mask = 0 to (1 lsl k) - 1 do
    let nodes = ref terminals in
    for b = 0 to k - 1 do
      if mask land (1 lsl b) <> 0 then nodes := Iset.add elements.(b) !nodes
    done;
    if Traverse.is_connected ~within:!nodes g && Iset.subset terminals !nodes
    then begin
      let cost = Iset.fold (fun v acc -> acc + weight v) !nodes 0 in
      match !best with
      | Some b when b <= cost -> ()
      | _ -> best := Some cost
    end
  done;
  if Iset.is_empty terminals then Some 0 else !best
