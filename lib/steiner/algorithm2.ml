open Graphs
open Bipartite

let log_src =
  Logs.Src.create "minconn.algorithm2" ~doc:"Algorithm 2 (Theorem 5)"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* [comp] is the component containing [p] and [order] a complete
   elimination order over it; a session computes both once per
   component and calls this directly for every query. *)
let solve_in ?budget ?(trace = Observe.Trace.disabled)
    ?(metrics = Observe.Metrics.disabled) g ~comp ~order ~p =
  Observe.Trace.span trace "algorithm2"
    ~attrs:[ ("component", Observe.Trace.Int (Iset.cardinal comp)) ]
    (fun () ->
      let steps = Observe.Metrics.counter metrics "elimination.steps" in
        let before = Observe.Metrics.count steps in
      let survivors =
        Cover.eliminate_redundant ~order ?budget ~steps g ~within:comp ~p
      in
      Observe.Metrics.observe
        (Observe.Metrics.histogram metrics "elimination.steps_per_solve")
        (float_of_int (Observe.Metrics.count steps - before));
      Observe.Trace.add_attr trace "survivors"
        (Observe.Trace.Int (Iset.cardinal survivors));
      Log.debug (fun m ->
          m "eliminated %d of %d component nodes; survivors %a"
            (Iset.cardinal comp - Iset.cardinal survivors)
            (Iset.cardinal comp) Iset.pp survivors);
      Tree.of_node_set g survivors)

let complete_order ~comp order =
  let listed = match order with Some o -> o | None -> [] in
  let missing = Iset.elements (Iset.diff comp (Iset.of_list listed)) in
  listed @ missing

let solve ?order ?budget ?trace ?metrics g ~p =
  match Traverse.component_containing g p with
  | None -> None
  | Some comp ->
    solve_in ?budget ?trace ?metrics g ~comp
      ~order:(complete_order ~comp order)
      ~p

let solve_bigraph ?order ?budget ?trace ?metrics g ~p =
  solve ?order ?budget ?trace ?metrics (Bigraph.ugraph g) ~p
