open Graphs
open Bipartite

let log_src =
  Logs.Src.create "minconn.algorithm2" ~doc:"Algorithm 2 (Theorem 5)"

module Log = (val Logs.src_log log_src : Logs.LOG)

let solve ?order ?budget g ~p =
  match Traverse.component_containing g p with
  | None -> None
  | Some comp ->
    let order =
      let listed = match order with Some o -> o | None -> [] in
      let missing =
        Iset.elements (Iset.diff comp (Iset.of_list listed))
      in
      listed @ missing
    in
    let survivors = Cover.eliminate_redundant ~order ?budget g ~within:comp ~p in
    Log.debug (fun m ->
        m "eliminated %d of %d component nodes; survivors %a"
          (Iset.cardinal comp - Iset.cardinal survivors)
          (Iset.cardinal comp) Iset.pp survivors);
    Tree.of_node_set g survivors

let solve_bigraph ?order ?budget g ~p = solve ?order ?budget (Bigraph.ugraph g) ~p
