(** Exact unweighted Steiner trees via the Dreyfus–Wagner dynamic
    program (1971), minimising the number of edges — equivalently, for a
    tree, the number of nodes.

    Complexity O(3^t · n + 2^t · n · m) for [t] terminals: exponential
    in the terminal count only, which is exactly the baseline shape the
    paper's NP-hardness results predict (Theorem 2) and against which
    the polynomial Algorithms 1 and 2 are benchmarked. *)

open Graphs

val max_terminals : int
(** Guard on [2^t] table size (17). *)

val solve :
  ?within:Iset.t ->
  ?budget:Runtime.Budget.t ->
  ?trace:Observe.Trace.t ->
  ?metrics:Observe.Metrics.t ->
  Ugraph.t ->
  terminals:Iset.t ->
  Tree.t option
(** A minimum-node tree of the induced subgraph spanning the terminals;
    [None] when the terminals are not connected. Raises
    [Invalid_argument] beyond {!max_terminals}. Zero or one terminal
    yield the trivial tree. One fuel unit of [budget] is spent per DP
    subset expansion (a settled node in a relax pass or a merge cell);
    exhaustion raises the internal [Runtime.Budget.Exhausted] signal
    for the runtime boundary to catch. [trace] records a
    ["dreyfus_wagner"] span (terminal count, mask count, table cells);
    [metrics] fills the [dp.table_size] histogram. A reconstruction
    inconsistency degrades to [None] rather than crashing. *)

val optimum_nodes :
  ?within:Iset.t ->
  ?budget:Runtime.Budget.t ->
  Ugraph.t ->
  terminals:Iset.t ->
  int option
(** Just the optimal node count. *)
