open Graphs

(* Per-session buffers: the CSR adjacency and the BFS queue depend only
   on the graph, so a session reuses one scratch across queries. The
   per-terminal dist/parent rows still depend on |terminals| and are
   allocated per call. *)
type scratch = { csr : Csr.t; n : int; queue : int array }

let make_scratch_csr csr =
  let n = Csr.n csr in
  { csr; n; queue = Array.make n 0 }

let make_scratch ?csr g =
  make_scratch_csr (match csr with Some c -> c | None -> Csr.of_ugraph g)

(* BFS over the CSR rows, recording distances and parent pointers in
   one pass. Neighbor iteration is ascending, like [Traverse.bfs], so
   the distances — and the parent-pointer paths — match the
   [Traverse.shortest_path] expansion this replaces. *)
let bfs_into s ~dist ~parent start =
  Array.fill dist 0 s.n (-1);
  dist.(start) <- 0;
  parent.(start) <- -1;
  s.queue.(0) <- start;
  let head = ref 0 and tail = ref 1 in
  while !head < !tail do
    let u = s.queue.(!head) in
    incr head;
    Csr.iter_neighbors s.csr u (fun v ->
        if dist.(v) < 0 then begin
          dist.(v) <- dist.(u) + 1;
          parent.(v) <- u;
          s.queue.(!tail) <- v;
          incr tail
        end)
  done

(* The caller has already established that the terminals share a
   component (|terminals| >= 2). *)
let solve_connected ?(trace = Observe.Trace.disabled) ?scratch g ~terminals =
  if Iset.cardinal terminals <= 1 then
    Some { Tree.nodes = terminals; edges = [] }
  else
  let s = match scratch with Some s -> s | None -> make_scratch g in
  Observe.Trace.span trace "mst_approx"
    ~attrs:[ ("terminals", Observe.Trace.Int (Iset.cardinal terminals)) ]
  @@ fun () ->
  let terms = Array.of_list (Iset.elements terminals) in
  let t = Array.length terms in
  let dists = Array.init t (fun _ -> Array.make s.n 0) in
  let parents = Array.init t (fun _ -> Array.make s.n (-1)) in
  for j = 0 to t - 1 do
    bfs_into s ~dist:dists.(j) ~parent:parents.(j) terms.(j)
  done;
  (* Prim's algorithm on the terminal metric closure. *)
  let in_tree = Array.make t false in
  let best_dist = Array.make t max_int in
  let best_from = Array.make t 0 in
  in_tree.(0) <- true;
  for j = 1 to t - 1 do
    best_dist.(j) <- dists.(0).(terms.(j));
    best_from.(j) <- 0
  done;
  let mst_edges = ref [] in
  for _round = 1 to t - 1 do
    let pick = ref (-1) in
    for j = 0 to t - 1 do
      if (not in_tree.(j)) && (!pick < 0 || best_dist.(j) < best_dist.(!pick))
      then pick := j
    done;
    let j = !pick in
    in_tree.(j) <- true;
    mst_edges := (best_from.(j), j) :: !mst_edges;
    for k = 0 to t - 1 do
      if (not in_tree.(k)) && dists.(j).(terms.(k)) < best_dist.(k) then begin
        best_dist.(k) <- dists.(j).(terms.(k));
        best_from.(k) <- j
      end
    done
  done;
  (* Expand MST edges into shortest paths by walking the parent
     pointers of the source terminal's BFS. The terminals share a
     component, so every expansion terminates at the source; an
     unreachable endpoint would mean the graph changed under us, and
     skipping it degrades to a disconnected node set that the final
     [of_node_set] rejects with [None] instead of crashing. *)
  let nodes = ref terminals in
  List.iter
    (fun (a, b) ->
      if dists.(a).(terms.(b)) >= 0 then begin
        let v = ref terms.(b) in
        while !v >= 0 do
          nodes := Iset.add !v !nodes;
          v := parents.(a).(!v)
        done
      end)
    !mst_edges;
  match Tree.of_node_set g !nodes with
  | None -> None
  | Some tree -> (
    let pruned = Tree.prune_leaves g ~keep:terminals tree in
    match Tree.of_node_set g pruned.Tree.nodes with
    | Some t ->
      Observe.Trace.add_attr trace "tree_nodes"
        (Observe.Trace.Int (Tree.node_count t));
      Some t
    | None -> None)

let solve ?trace g ~terminals =
  if Iset.cardinal terminals <= 1 then
    Some { Tree.nodes = terminals; edges = [] }
  else if not (Traverse.connects g terminals) then None
  else solve_connected ?trace g ~terminals
