open Graphs

let solve ?(trace = Observe.Trace.disabled) g ~terminals =
  if Iset.cardinal terminals <= 1 then
    Some { Tree.nodes = terminals; edges = [] }
  else if not (Traverse.connects g terminals) then None
  else
    Observe.Trace.span trace "mst_approx"
      ~attrs:[ ("terminals", Observe.Trace.Int (Iset.cardinal terminals)) ]
    @@ fun () ->
    let terms = Array.of_list (Iset.elements terminals) in
    let t = Array.length terms in
    let dists = Array.map (fun s -> Traverse.bfs g s) terms in
    (* Prim's algorithm on the terminal metric closure. *)
    let in_tree = Array.make t false in
    let best_dist = Array.make t max_int in
    let best_from = Array.make t 0 in
    in_tree.(0) <- true;
    for j = 1 to t - 1 do
      best_dist.(j) <- dists.(0).(terms.(j));
      best_from.(j) <- 0
    done;
    let mst_edges = ref [] in
    for _round = 1 to t - 1 do
      let pick = ref (-1) in
      for j = 0 to t - 1 do
        if (not in_tree.(j))
           && (!pick < 0 || best_dist.(j) < best_dist.(!pick))
        then pick := j
      done;
      let j = !pick in
      in_tree.(j) <- true;
      mst_edges := (best_from.(j), j) :: !mst_edges;
      for k = 0 to t - 1 do
        if (not in_tree.(k)) && dists.(j).(terms.(k)) < best_dist.(k) then begin
          best_dist.(k) <- dists.(j).(terms.(k));
          best_from.(k) <- j
        end
      done
    done;
    (* Expand MST edges into shortest paths and collect the nodes. The
       terminals share a component (checked above), so every expansion
       finds a path; a missing one would mean the graph changed under
       us, and skipping it degrades to a disconnected node set that the
       final [of_node_set] rejects with [None] instead of crashing. *)
    let nodes = ref terminals in
    List.iter
      (fun (a, b) ->
        match Traverse.shortest_path g terms.(a) terms.(b) with
        | Some path -> List.iter (fun v -> nodes := Iset.add v !nodes) path
        | None -> ())
      !mst_edges;
    match Tree.of_node_set g !nodes with
    | None -> None
    | Some tree -> (
      let pruned = Tree.prune_leaves g ~keep:terminals tree in
      match Tree.of_node_set g pruned.Tree.nodes with
      | Some t ->
        Observe.Trace.add_attr trace "tree_nodes"
          (Observe.Trace.Int (Tree.node_count t));
        Some t
      | None -> None)
