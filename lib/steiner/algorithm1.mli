(** Algorithm 1 (Theorem 3/4): pseudo-Steiner trees w.r.t. V₂ on
    V₂-chordal, V₂-conformal (= α-acyclic H¹) bipartite graphs in
    O(|V|·|A|) — in database terms, answer a query over an α-acyclic
    schema touching the minimum number of relations.

    Step 1 computes the Lemma 1 elimination ordering of the right
    nodes: the reverse of a running-intersection ordering of H¹'s
    hyperedges, obtained here as a join-tree preorder. Step 2 scans the
    ordering and deletes each right node [v] together with [Adj*(v)]
    (its private left neighbors) whenever the remainder still covers
    the terminals. Step 3 returns a spanning tree. *)

open Graphs
open Bipartite

type error =
  | Disconnected_terminals
      (** the terminals do not lie in one component *)
  | Not_alpha_acyclic
      (** the terminal component is not V₂-chordal V₂-conformal, so the
          Lemma 1 ordering does not exist and the guarantee is void *)

type result = {
  tree : Tree.t;
  v2_count : int;  (** number of right nodes in the tree — the paper's
                       minimised objective *)
  elimination_order : int list;
      (** the Lemma 1 ordering W actually used (underlying indices of
          right nodes) *)
}

val solve :
  ?trace:Observe.Trace.t -> Bigraph.t -> p:Iset.t -> (result, error) Stdlib.result
(** [p] contains underlying indices (left or right nodes). The
    elimination loop (Step 2) runs on flat [Graphs.Csr] adjacency and
    [Graphs.Bitset] node sets. [trace] records an ["algorithm1"] span
    with ["algorithm1.join_tree"] and ["algorithm1.eliminate"] child
    spans. *)

(** {2 Compile-once / query-many}

    Step 1 (the join tree and the Lemma 1 ordering) depends only on the
    component, not on the terminal set, and the elimination loop's
    working buffers depend only on the graph size. A session answering
    many terminal-set queries over one schema computes the [prep] and a
    [scratch] once and reuses them for every query. *)

type prep
(** A component together with its Lemma 1 ordering W. *)

val prepare :
  ?trace:Observe.Trace.t ->
  Bigraph.t ->
  comp:Iset.t ->
  (prep, error) Stdlib.result
(** Step 1 for the component [comp] (as returned by
    {!Graphs.Traverse.component_containing} or
    {!Graphs.Traverse.component_ids}): build H¹ restricted to the
    component, run GYO, and derive W as the reversed join-tree preorder.
    [Error Not_alpha_acyclic] when the component has no join tree.
    Records an ["algorithm1.join_tree"] span. *)

val prep_order : prep -> int list
(** The Lemma 1 ordering W held by the prep (empty for trivial
    components). *)

type scratch
(** Reusable elimination buffers (CSR adjacency, bitsets, BFS queue)
    sized for one graph. Not safe for concurrent use. *)

val make_scratch : ?csr:Csr.t -> Ugraph.t -> scratch
(** [csr], when given, must be [Csr.of_ugraph] of the same graph; it
    lets a session share one adjacency arena across solver scratches. *)

val make_scratch_csr : Csr.t -> scratch
(** Same, directly from the flat adjacency — the stream-built session
    path, which never touches the set view. *)

val solve_prepared :
  ?trace:Observe.Trace.t ->
  ?scratch:scratch ->
  Bigraph.t ->
  prep ->
  p:Iset.t ->
  (result, error) Stdlib.result
(** Steps 2–3 on an already-prepared component. [p] must lie inside the
    prep's component (the caller has established connectivity). When
    [scratch] is omitted a fresh one is allocated, making this
    equivalent to the elimination phase of {!solve}. *)

val solve_sets :
  ?trace:Observe.Trace.t -> Bigraph.t -> p:Iset.t -> (result, error) Stdlib.result
(** Set-based reference for the elimination loop; takes exactly the
    same elimination decisions as {!solve} and returns the same result.
    Differential-testing and benchmarking only. *)

val solve_wrt_v1 : Bigraph.t -> p:Iset.t -> (result, error) Stdlib.result
(** Same algorithm on the flipped graph: minimises left nodes, licensed
    when H² is α-acyclic. [v2_count] then counts V₁ nodes and all
    indices refer to the original graph. *)
