
module Iset = Graphs.Iset
module Ugraph = Graphs.Ugraph
module Traverse = Graphs.Traverse
module Chordal = Graphs.Chordal
module Strongly_chordal = Graphs.Strongly_chordal
module Hypergraph = Hypergraphs.Hypergraph
module Acyclicity = Hypergraphs.Acyclicity
module Gyo = Hypergraphs.Gyo
module Join_tree = Hypergraphs.Join_tree
module Decomposition = Hypergraphs.Decomposition
module Bigraph = Bipartite.Bigraph
module Correspond = Bipartite.Correspond
module Classify = Bipartite.Classify
module Mn_chordality = Bipartite.Mn_chordality
module Side_properties = Bipartite.Side_properties
module Tree = Steiner.Tree
module Kbest = Steiner.Kbest
module Weighted = Steiner.Weighted
module Local_search = Steiner.Local_search
module Algorithm1 = Steiner.Algorithm1
module Algorithm2 = Steiner.Algorithm2
module Dreyfus_wagner = Steiner.Dreyfus_wagner
module Mst_approx = Steiner.Mst_approx
module Schema = Datamodel.Schema
module Er = Datamodel.Er
module Query = Datamodel.Query
module Interface = Datamodel.Interface
module Dialogue = Datamodel.Dialogue
module Layered = Datamodel.Layered
module Repair = Datamodel.Repair
module Figures = Datamodel.Figures

module Budget = Runtime.Budget
module Degrade = Runtime.Degrade
module Errors = Runtime.Errors

type method_used =
  | Used_forest
  | Used_algorithm2
  | Used_exact_dp
  | Used_elimination
  | Used_mst_approx

type solution = {
  tree : Tree.t;
  method_used : method_used;
  optimal : bool;
  profile : Classify.profile;
  provenance : Degrade.provenance;
}

(* One rung of the degradation ladder: identity for provenance, the
   method tag and guarantee reported on success, and the solver thunk
   (the only place the internal Budget.Exhausted signal can arise). *)
type rung_spec = {
  rung : Errors.rung;
  meth : method_used;
  guarantee : Degrade.guarantee;
  run : unit -> Tree.t option;
}

(* The cheap connectivity rejection runs before the classifier, and the
   profile is computed exactly once and reused by every rung. *)
let solve ?(budget = Budget.unlimited) ?(degrade = true)
    ?(trace = Observe.Trace.disabled) ?(metrics = Observe.Metrics.disabled) g
    ~p =
  let u = Bigraph.ugraph g in
  if Iset.is_empty p then Error (Errors.Invalid_instance "empty terminal set")
  else if not (Iset.subset p (Ugraph.nodes u)) then
    Error (Errors.Invalid_instance "terminal index out of range")
  else if not (Traverse.connects u p) then Error Errors.Disconnected_terminals
  else begin
    Observe.Trace.span trace "solve"
      ~attrs:
        [
          ("terminals", Observe.Trace.Int (Iset.cardinal p));
          ("nodes", Observe.Trace.Int (Ugraph.n u));
        ]
    @@ fun () ->
    let profile = Classify.profile ~trace g in
    let mst_rung =
      {
        rung = Errors.Mst;
        meth = Used_mst_approx;
        guarantee = Degrade.Ratio 2.0;
        run = (fun () -> Mst_approx.solve ~trace u ~terminals:p);
      }
    in
    let fixpoint_rung =
      {
        rung = Errors.Fixpoint;
        meth = Used_elimination;
        guarantee = Degrade.Heuristic;
        run = (fun () -> Algorithm2.solve ~budget ~trace ~metrics u ~p);
      }
    in
    let pre_attempts, ladder =
      if profile.Classify.chordal_41 then
        ( [],
          [
            {
              rung = Errors.Exact_structured;
              meth = Used_forest;
              guarantee = Degrade.Exact;
              run = (fun () -> Steiner.Forest_steiner.solve u ~terminals:p);
            };
            mst_rung;
          ] )
      else if profile.Classify.chordal_62 then
        (* Algorithm 2 is exact here (Theorem 5); its elimination
           fixpoint is what the budget meters, and on exhaustion the
           only rung left is the approximation. *)
        ( [],
          [
            {
              rung = Errors.Exact_structured;
              meth = Used_algorithm2;
              guarantee = Degrade.Exact;
              run = (fun () -> Algorithm2.solve ~budget ~trace ~metrics u ~p);
            };
            mst_rung;
          ] )
      else if Iset.cardinal p <= Dreyfus_wagner.max_terminals then
        ( [],
          [
            {
              rung = Errors.Exact_dp;
              meth = Used_exact_dp;
              guarantee = Degrade.Exact;
              run =
                (fun () ->
                  Dreyfus_wagner.solve ~budget ~trace ~metrics u ~terminals:p);
            };
            fixpoint_rung;
            mst_rung;
          ] )
      else
        (* The exact DP was never attempted: say so in the provenance
           instead of silently reporting [optimal = false]. *)
        ( [
            {
              Degrade.rung = Errors.Exact_dp;
              why = Degrade.Terminals_over_cap;
            };
          ],
          [ fixpoint_rung; mst_rung ] )
    in
    let abandonments = Observe.Metrics.counter metrics "rung.abandonments" in
    let budget_checks = Observe.Metrics.counter metrics "budget.checks" in
    (* One span per attempted rung: outcome, abandonment reason, and the
       number of cooperative budget checks the rung consumed (a delta of
       [Budget.spent], so the hot path gains no new counter). *)
    let run_rung spec =
      Observe.Trace.span trace ("rung:" ^ Errors.rung_name spec.rung)
      @@ fun () ->
      let checks0 = Budget.spent budget in
      let outcome =
        match spec.run () with
        | Some tree -> `Ran tree
        | None -> `Abandoned Degrade.Out_of_class
        | exception Budget.Exhausted stop ->
          `Exhausted (stop, Degrade.reason_of_stop stop)
      in
      Observe.Metrics.incr ~by:(Budget.spent budget - checks0) budget_checks;
      Observe.Trace.add_attr trace "budget_checks"
        (Observe.Trace.Int (Budget.spent budget - checks0));
      (match outcome with
      | `Ran tree ->
        Observe.Trace.add_attr trace "outcome" (Observe.Trace.Str "ran");
        Observe.Trace.add_attr trace "tree_nodes"
          (Observe.Trace.Int (Tree.node_count tree))
      | `Abandoned why | `Exhausted (_, why) ->
        Observe.Metrics.incr abandonments;
        Observe.Trace.add_attr trace "outcome" (Observe.Trace.Str "abandoned");
        Observe.Trace.add_attr trace "reason"
          (Observe.Trace.Str (Degrade.reason_name why)));
      outcome
    in
    let rec descend attempts = function
      | [] ->
        (* Unreachable with a connected [p]: the MST rung is
           un-budgeted and total. Report the last abandoned rung. *)
        Error
          (Errors.Budget_exhausted
             (match attempts with
             | { Degrade.rung; _ } :: _ -> rung
             | [] -> Errors.Mst))
      | spec :: rest -> (
        match run_rung spec with
        | `Ran tree ->
          let provenance =
            {
              Degrade.ran = spec.rung;
              attempts = List.rev attempts;
              guarantee = spec.guarantee;
            }
          in
          Degrade.trace_ran trace provenance;
          if Observe.Trace.active trace then
            Observe.Trace.span trace "verify" (fun () ->
                Observe.Trace.add_attr trace "covers_terminals"
                  (Observe.Trace.Bool (Tree.verify u ~terminals:p tree)));
          Ok
            {
              tree;
              method_used = spec.meth;
              optimal = spec.guarantee = Degrade.Exact;
              profile;
              provenance;
            }
        | `Abandoned why ->
          let attempt = { Degrade.rung = spec.rung; why } in
          Degrade.trace_abandon trace attempt;
          descend (attempt :: attempts) rest
        | `Exhausted (_, why) ->
          let attempt = { Degrade.rung = spec.rung; why } in
          Degrade.trace_abandon trace attempt;
          if degrade then descend (attempt :: attempts) rest
          else Error (Errors.Budget_exhausted spec.rung))
    in
    List.iter (Degrade.trace_abandon trace) pre_attempts;
    descend (List.rev pre_attempts) ladder
  end

let solve_steiner ?budget g ~p =
  match solve ?budget g ~p with Ok s -> Some s | Error _ -> None

let solve_min_relations g ~p = Algorithm1.solve g ~p

let report g =
  let profile = Classify.profile g in
  Format.asprintf "%a@.recommendation: %s@." Classify.pp_profile profile
    (Classify.recommendation_name (Classify.recommend profile))

let version = "1.0.0"
