
module Iset = Graphs.Iset
module Ugraph = Graphs.Ugraph
module Traverse = Graphs.Traverse
module Chordal = Graphs.Chordal
module Strongly_chordal = Graphs.Strongly_chordal
module Hypergraph = Hypergraphs.Hypergraph
module Acyclicity = Hypergraphs.Acyclicity
module Gyo = Hypergraphs.Gyo
module Join_tree = Hypergraphs.Join_tree
module Decomposition = Hypergraphs.Decomposition
module Bigraph = Bipartite.Bigraph
module Correspond = Bipartite.Correspond
module Classify = Bipartite.Classify
module Delta = Bipartite.Delta
module Mn_chordality = Bipartite.Mn_chordality
module Side_properties = Bipartite.Side_properties
module Tree = Steiner.Tree
module Kbest = Steiner.Kbest
module Weighted = Steiner.Weighted
module Local_search = Steiner.Local_search
module Algorithm1 = Steiner.Algorithm1
module Algorithm2 = Steiner.Algorithm2
module Dreyfus_wagner = Steiner.Dreyfus_wagner
module Mst_approx = Steiner.Mst_approx
module Schema = Datamodel.Schema
module Er = Datamodel.Er
module Query = Datamodel.Query
module Interface = Datamodel.Interface
module Dialogue = Datamodel.Dialogue
module Layered = Datamodel.Layered
module Repair = Datamodel.Repair
module Figures = Datamodel.Figures

module Budget = Runtime.Budget
module Degrade = Runtime.Degrade
module Errors = Runtime.Errors
module Pool = Parallel.Pool
module Compiled = Engine.Compiled
module Session = Engine.Session
module Plan_cache = Cache.Plan_cache

type method_used = Engine.Session.method_used =
  | Used_forest
  | Used_algorithm2
  | Used_exact_dp
  | Used_elimination
  | Used_mst_approx

type solution = Engine.Session.solution = {
  tree : Tree.t;
  method_used : method_used;
  optimal : bool;
  profile : Classify.profile;
  provenance : Degrade.provenance;
}

(* The cheap validation runs before the classifier; the compile+query
   split is Engine's, this is the one-shot convenience wrapper. *)
let solve ?(budget = Budget.unlimited) ?(degrade = true)
    ?(trace = Observe.Trace.disabled) ?(metrics = Observe.Metrics.disabled) g
    ~p =
  let u = Bigraph.ugraph g in
  if Iset.is_empty p then Error (Errors.Invalid_instance "empty terminal set")
  else if not (Iset.subset p (Ugraph.nodes u)) then
    Error (Errors.Invalid_instance "terminal index out of range")
  else if not (Traverse.connects u p) then Error Errors.Disconnected_terminals
  else begin
    Observe.Trace.span trace "solve"
      ~attrs:
        [
          ("terminals", Observe.Trace.Int (Iset.cardinal p));
          ("nodes", Observe.Trace.Int (Ugraph.n u));
        ]
    @@ fun () ->
    let compiled = Compiled.compile ~trace ~metrics g in
    let session = Session.create ~budget ~degrade ~trace ~metrics compiled in
    Session.query session ~p
  end

let solve_steiner ?budget g ~p =
  match solve ?budget g ~p with Ok s -> Some s | Error _ -> None

(* Same typed front door as [solve]: reject empty / out-of-range /
   disconnected terminal sets before Algorithm 1 runs, and surface its
   structural rejection as a typed error instead of a private variant. *)
let solve_min_relations g ~p =
  let u = Bigraph.ugraph g in
  if Iset.is_empty p then Error (Errors.Invalid_instance "empty terminal set")
  else if not (Iset.subset p (Ugraph.nodes u)) then
    Error (Errors.Invalid_instance "terminal index out of range")
  else if not (Traverse.connects u p) then Error Errors.Disconnected_terminals
  else
    match Algorithm1.solve g ~p with
    | Ok r -> Ok r
    | Error Algorithm1.Disconnected_terminals ->
      Error Errors.Disconnected_terminals
    | Error Algorithm1.Not_alpha_acyclic ->
      Error
        (Errors.Invalid_instance
           "scheme is not alpha-acyclic (V2-chordal V2-conformal)")

let report g =
  let profile = Classify.profile g in
  Format.asprintf "%a@.recommendation: %s@." Classify.pp_profile profile
    (Classify.recommendation_name (Classify.recommend profile))

let version = "1.0.0"
