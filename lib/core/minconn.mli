(** Facade of the library: classify a conceptual scheme, pick the right
    solver per the paper's complexity map, and solve minimal-connection
    queries. The submodule aliases re-export the full API so that
    [Minconn] is the single entry point a downstream user needs.

    Paper: Ausiello, D'Atri, Moscarini — "Chordality properties on
    graphs and minimal conceptual connections in semantic data models"
    (PODS 1985 / JCSS 1986). *)


(** {1 Re-exports} *)

module Iset = Graphs.Iset
module Ugraph = Graphs.Ugraph
module Traverse = Graphs.Traverse
module Chordal = Graphs.Chordal
module Strongly_chordal = Graphs.Strongly_chordal
module Hypergraph = Hypergraphs.Hypergraph
module Acyclicity = Hypergraphs.Acyclicity
module Gyo = Hypergraphs.Gyo
module Join_tree = Hypergraphs.Join_tree
module Decomposition = Hypergraphs.Decomposition
module Bigraph = Bipartite.Bigraph
module Correspond = Bipartite.Correspond
module Classify = Bipartite.Classify
module Delta = Bipartite.Delta
module Mn_chordality = Bipartite.Mn_chordality
module Side_properties = Bipartite.Side_properties
module Tree = Steiner.Tree
module Kbest = Steiner.Kbest
module Weighted = Steiner.Weighted
module Local_search = Steiner.Local_search
module Algorithm1 = Steiner.Algorithm1
module Algorithm2 = Steiner.Algorithm2
module Dreyfus_wagner = Steiner.Dreyfus_wagner
module Mst_approx = Steiner.Mst_approx
module Schema = Datamodel.Schema
module Er = Datamodel.Er
module Query = Datamodel.Query
module Interface = Datamodel.Interface
module Dialogue = Datamodel.Dialogue
module Layered = Datamodel.Layered
module Repair = Datamodel.Repair
module Figures = Datamodel.Figures
module Budget = Runtime.Budget
module Degrade = Runtime.Degrade
module Errors = Runtime.Errors

module Pool = Parallel.Pool
(** Fixed-size domain pool with deterministic result ordering; pass it
    to {!Compiled.compile} and {!Session.solve_many} to spread compile
    tasks and batch queries across cores without changing any
    answer. *)

module Compiled = Engine.Compiled
(** One-time schema compilation: CSR arena, classification profile,
    components and elimination orderings, computed once and shared by
    any number of queries. *)

module Session = Engine.Session
(** Compile-once / query-many serving: [Session.query] and
    [Session.solve_many] answer terminal-set queries against a
    {!Compiled.t}, reusing per-session scratch buffers. {!solve} below
    is the one-shot compile-then-query wrapper. *)

module Plan_cache = Cache.Plan_cache
(** Persistent on-disk store for compiled plans: integrity-enveloped
    [Marshal] entries keyed by schema hash, atomic write-then-rename,
    LRU eviction. [Plan_cache.find_or_compile] is the warm-start entry
    point (CLI: [minconn compile], [solve --plan-cache DIR]). *)

(** {1 One-call solving} *)

(** Which solver produced a result and with what guarantee. *)
type method_used = Engine.Session.method_used =
  | Used_forest  (** exact and unique: graph is (4,1)-chordal *)
  | Used_algorithm2  (** exact: graph is (6,2)-chordal (Theorem 5) *)
  | Used_exact_dp  (** exact: Dreyfus–Wagner *)
  | Used_elimination  (** heuristic nonredundant cover (no guarantee) *)
  | Used_mst_approx  (** metric-closure MST 2-approximation *)

type solution = Engine.Session.solution = {
  tree : Tree.t;
  method_used : method_used;
  optimal : bool;  (** [provenance.guarantee = Exact] *)
  profile : Classify.profile;
  provenance : Degrade.provenance;
      (** which ladder rung ran, why earlier rungs were abandoned
          (timeout, fuel, out-of-class, terminals-over-cap), and the
          resulting guarantee *)
}

val solve :
  ?budget:Budget.t ->
  ?degrade:bool ->
  ?trace:Observe.Trace.t ->
  ?metrics:Observe.Metrics.t ->
  Bigraph.t ->
  p:Iset.t ->
  (solution, Errors.t) result
(** The resource-governed runtime boundary: one-shot
    compile-then-query. Classifies once, picks the best rung the
    classification licenses, and — when [budget] runs out mid-solve —
    descends the degradation ladder

    {v exact (structured or DP)  ->  fixpoint elimination  ->  MST 2-approx v}

    recording every abandoned rung in the returned provenance. The
    cheap connectivity rejection runs {e before} the classifier, and
    the profile is computed exactly once. With [~degrade:false] the
    first exhausted rung is reported as [Error (Budget_exhausted _)]
    instead of falling through. The internal [Budget.Exhausted] signal
    never escapes this function. Answering many terminal sets over one
    scheme? {!Compiled.compile} once and use {!Session.query} /
    {!Session.solve_many} — this wrapper repays the compilation on
    every call.

    [trace] (default disabled) records a ["solve"] root span containing
    a ["compile"] span (classifier child spans, component/ordering
    construction) and a ["query"] span with one ["rung:<name>"] span
    per attempted rung (outcome, abandonment reason, budget-check
    delta), structured ["ladder.abandon"]/["ladder.ran"] events
    mirroring the returned provenance, and — only when tracing is on —
    a ["verify"] span that re-checks the returned tree against the
    terminals. [metrics] (default disabled) accumulates
    [budget.checks], [rung.abandonments], [engine.compiles] and
    [engine.queries] counters plus the solver histograms
    ([elimination.steps_per_solve], [dp.table_size]). Both default to
    shared inert instances whose cost at every instrumentation site is
    one load and one branch. *)

val solve_steiner :
  ?budget:Budget.t -> Bigraph.t -> p:Iset.t -> solution option
(** [solve] with errors collapsed to [None]: Algorithm 2 when the
    classification licenses it, Dreyfus–Wagner when the terminal count
    allows, elimination otherwise, degrading down the ladder when the
    budget runs out. [None] if [p] is disconnected. *)

val solve_min_relations :
  Bigraph.t -> p:Iset.t -> (Algorithm1.result, Errors.t) result
(** Algorithm 1 (pseudo-Steiner w.r.t. V₂) behind the same typed
    validation as {!solve}: empty or out-of-range terminal sets are
    [Invalid_instance], disconnected ones [Disconnected_terminals], and
    a non-α-acyclic terminal component is reported as
    [Invalid_instance] rather than a solver-private variant. Sessions
    expose the amortized equivalent as {!Session.query_relations}. *)

val report : Bigraph.t -> string
(** Human-readable classification + recommendation, used by the CLI. *)

val version : string
