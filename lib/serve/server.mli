(** Overload-hardened network service over the session engine.

    One listener thread accepts connections; each admitted connection
    gets its own handler thread and its own {!Engine.Session} over the
    shared compiled plan, so concurrent requests never share solver
    scratch. The robustness contract:

    - {b Admission control}: the kernel accept queue is bounded by
      [backlog]; beyond [max_inflight] concurrent connections the
      listener answers [503] with [X-Minconn-Error: overloaded]
      immediately — the request is never read, so shedding stays fast
      under any load.
    - {b Deadlines}: every admitted socket carries receive/send
      deadlines ([read_timeout_ms]/[write_timeout_ms]); a stalled
      client is reaped with [408] (counted as [serve.reaped]). Every
      query runs under a budget capped at [request_timeout_ms], drawn
      as a view of the server-wide {!Runtime.Budget.Shared} tank when
      [shared_fuel] is set.
    - {b Graceful degradation}: above [degrade_watermark] in-flight
      connections, queries run on a small fuel budget
      ([pressure_fuel]) so the ladder answers from cheaper rungs;
      responses carry the provenance ([X-Minconn-Rung],
      [X-Minconn-Guarantee], [X-Minconn-Degraded], and
      [X-Minconn-Pressure: high] when shed to that mode).
    - {b Fault-injectable lifecycle}: accept, read, write and handler
      boundaries consult the {!Runtime.Fault} op hooks
      (["serve.accept"], ["serve.read"], ["serve.write"],
      ["serve.handler"]); any injected or real failure is absorbed by
      that connection alone — the listener keeps serving.
    - {b Graceful drain}: {!stop} (wired to SIGTERM/SIGINT by the CLI)
      stops accepting, lets in-flight requests finish until
      [drain_timeout_ms], then force-shuts stragglers (counted as
      [serve.drain_forced]); {!run} then returns so the caller can
      flush metrics and traces.

    Endpoints: [POST /solve] (body = one terminal set, names separated
    by commas/whitespace; answer is byte-identical to the CLI batch
    block for the same query), [POST /schema/delta] (body = a delta
    file — see {!Mc_io.Parse.deltas_of_string}; patches the compiled
    plan component-by-component and hot-swaps the schema of record
    without dropping inflight requests, answering with
    [X-Minconn-Recompiled-Components] and a per-delta summary; [400]
    with [X-Minconn-Error: bad-delta] leaves the schema untouched),
    [GET /metrics] (minconn-metrics/1 JSON), [GET /trace] (NDJSON
    span stream), [GET /healthz]. *)

type config = {
  host : string;  (** bind address, default ["127.0.0.1"] *)
  port : int;  (** 0 picks an ephemeral port; see {!port} *)
  backlog : int;  (** kernel accept-queue bound *)
  max_inflight : int;  (** admission cap on concurrent connections *)
  degrade_watermark : int;
      (** in-flight count above which queries run in pressure mode *)
  pressure_fuel : int;  (** fuel for pressure-mode query budgets *)
  request_timeout_ms : int;  (** per-query wall-clock budget *)
  read_timeout_ms : int;  (** socket receive deadline *)
  write_timeout_ms : int;  (** socket send deadline *)
  max_body_bytes : int;  (** request body cap (413 beyond it) *)
  shared_fuel : int option;
      (** when set, a server-wide fuel tank all request budgets draw
          from (see {!Runtime.Budget.Shared}) *)
  degrade : bool;
      (** ladder fall-through on exhaustion (default); [false] turns
          budget exhaustion into [504] *)
  drain_timeout_ms : int;  (** grace period for in-flight work on stop *)
}

val default_config : config

type t

val create :
  ?config:config ->
  ?cache:Cache.Plan_cache.t ->
  ?compiled:Engine.Compiled.t ->
  ?metrics:Observe.Metrics.t ->
  ?trace:Observe.Trace.t ->
  Mc_io.Parse.named_bigraph ->
  (t, string) result
(** Compile (or load from [cache]) the schema once, bind and listen.
    [compiled] supplies a pre-built plan for [nb] instead — the CLI's
    [serve --deltas] path hands over the evolved plan it obtained via
    the cache's patch rung. [Error msg] on bind/listen failure. Also
    ignores SIGPIPE process-wide: a dead peer must surface as a typed
    write error, never a fatal signal. *)

val port : t -> int
(** The bound port (useful with [config.port = 0]). *)

val inflight : t -> int
val metrics : t -> Observe.Metrics.t

val run : t -> unit
(** Serve until {!stop}, then drain and release the sockets. Runs the
    accept loop in the calling thread. *)

val start : t -> Thread.t
(** [run] on a background thread (tests and the bench harness). *)

val stop : t -> unit
(** Begin graceful drain; idempotent, safe from a signal handler. *)
