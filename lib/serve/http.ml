module Fault = Runtime.Fault

type request = {
  meth : string;
  path : string;
  headers : (string * string) list;
  body : string;
  keep_alive : bool;
}

let header req name = List.assoc_opt (String.lowercase_ascii name) req.headers

type read_error =
  | Closed
  | Read_timeout
  | Torn of string
  | Too_large of string
  | Malformed of string

type write_error = Peer_closed | Write_timeout | Write_failed of string

let read_error_name = function
  | Closed -> "closed"
  | Read_timeout -> "read-timeout"
  | Torn _ -> "torn"
  | Too_large _ -> "too-large"
  | Malformed _ -> "malformed"

let write_error_name = function
  | Peer_closed -> "peer-closed"
  | Write_timeout -> "write-timeout"
  | Write_failed _ -> "write-failed"

type conn = {
  fd : Unix.file_descr;
  chunk : Bytes.t;
  mutable pending : string;  (* read but not yet consumed *)
}

let conn fd = { fd; chunk = Bytes.create 8192; pending = "" }

exception Fail of read_error

(* One read(2) appended to [pending]; [false] on EOF. Timeouts surface
   as EAGAIN/EWOULDBLOCK because the server arms SO_RCVTIMEO instead of
   juggling select sets per connection. *)
let refill c =
  match
    Fault.check_op "serve.read";
    Unix.read c.fd c.chunk 0 (Bytes.length c.chunk)
  with
  | 0 -> false
  | n ->
    c.pending <- c.pending ^ Bytes.sub_string c.chunk 0 n;
    true
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
    raise (Fail Read_timeout)
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> true
  | exception Unix.Unix_error (e, _, _) ->
    raise (Fail (Torn (Unix.error_message e)))
  | exception Fault.Injected_fault op ->
    raise (Fail (Torn ("injected fault: " ^ op)))

(* Position of the blank line ending the head: [Some (head_end,
   body_start)] accepting both CRLF and bare-LF line endings. *)
let rec find_head s i =
  let n = String.length s in
  if i >= n then None
  else if s.[i] <> '\n' then find_head s (i + 1)
  else if i + 1 < n && s.[i + 1] = '\n' then Some (i, i + 2)
  else if i + 2 < n && s.[i + 1] = '\r' && s.[i + 2] = '\n' then Some (i, i + 3)
  else find_head s (i + 1)

let strip_cr l =
  let n = String.length l in
  if n > 0 && l.[n - 1] = '\r' then String.sub l 0 (n - 1) else l

(* One framed message off the connection: first line, lowercased
   headers, Content-Length body. Shared by the server's request reader
   and the client-side response reader the tests and bench use. *)
let read_message ~max_head_bytes ~max_body_bytes c =
  let rec head_loop () =
    match find_head c.pending 0 with
    | Some hb -> hb
    | None ->
      if String.length c.pending > max_head_bytes then
        raise
          (Fail
             (Too_large
                (Printf.sprintf "request head exceeds %d bytes" max_head_bytes)));
      if refill c then head_loop ()
      else if c.pending = "" then raise (Fail Closed)
      else raise (Fail (Torn "eof mid-request"))
  in
  let head_end, body_start = head_loop () in
  let lines =
    String.sub c.pending 0 head_end
    |> String.split_on_char '\n'
    |> List.map strip_cr
  in
  let first_line, header_lines =
    match lines with
    | [] -> raise (Fail (Malformed "empty message"))
    | r :: hs -> (r, hs)
  in
  let headers =
    List.filter_map
      (fun l ->
        if l = "" then None
        else
          match String.index_opt l ':' with
          | None -> raise (Fail (Malformed ("bad header: " ^ l)))
          | Some i ->
            Some
              ( String.lowercase_ascii (String.sub l 0 i),
                String.trim (String.sub l (i + 1) (String.length l - i - 1)) ))
      header_lines
  in
  let content_length =
    match List.assoc_opt "content-length" headers with
    | None -> 0
    | Some v -> (
      match int_of_string_opt v with
      | Some n when n >= 0 -> n
      | _ -> raise (Fail (Malformed ("bad content-length: " ^ v))))
  in
  (* Reject on the declaration, before reading a single body byte: a
     hostile client never makes the server buffer the oversize. *)
  if content_length > max_body_bytes then
    raise
      (Fail
         (Too_large
            (Printf.sprintf "body of %d bytes exceeds cap %d" content_length
               max_body_bytes)));
  let rec body_loop () =
    if String.length c.pending - body_start < content_length then
      if refill c then body_loop () else raise (Fail (Torn "eof mid-body"))
  in
  body_loop ();
  let body = String.sub c.pending body_start content_length in
  let consumed = body_start + content_length in
  c.pending <-
    String.sub c.pending consumed (String.length c.pending - consumed);
  (first_line, headers, body)

let read_request ?(max_head_bytes = 16 * 1024) ?(max_body_bytes = 64 * 1024) c
    =
  try
    let reqline, headers, body =
      read_message ~max_head_bytes ~max_body_bytes c
    in
    let meth, path, version =
      match
        String.split_on_char ' ' reqline |> List.filter (fun s -> s <> "")
      with
      | [ m; p; v ] -> (m, p, v)
      | _ -> raise (Fail (Malformed ("bad request line: " ^ reqline)))
    in
    if version <> "HTTP/1.1" && version <> "HTTP/1.0" then
      raise (Fail (Malformed ("unsupported version: " ^ version)));
    let keep_alive =
      match
        ( version,
          Option.map String.lowercase_ascii
            (List.assoc_opt "connection" headers) )
      with
      | "HTTP/1.1", Some "close" -> false
      | "HTTP/1.1", _ -> true
      | _, Some "keep-alive" -> true
      | _, _ -> false
    in
    Ok { meth; path; headers; body; keep_alive }
  with Fail e -> Error e

type client_response = {
  code : int;
  resp_headers : (string * string) list;
  resp_body : string;
}

let resp_header r name = List.assoc_opt (String.lowercase_ascii name) r.resp_headers

let read_response c =
  try
    let status_line, resp_headers, resp_body =
      read_message ~max_head_bytes:(64 * 1024) ~max_body_bytes:(16 * 1024 * 1024)
        c
    in
    let code =
      match String.split_on_char ' ' status_line with
      | version :: code :: _
        when String.length version >= 5 && String.sub version 0 5 = "HTTP/" -> (
        match int_of_string_opt code with
        | Some n -> n
        | None -> raise (Fail (Malformed ("bad status line: " ^ status_line))))
      | _ -> raise (Fail (Malformed ("bad status line: " ^ status_line)))
    in
    Ok { code; resp_headers; resp_body }
  with Fail e -> Error e

type response = {
  status : int;
  headers : (string * string) list;
  body : string;
}

let reason = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 408 -> "Request Timeout"
  | 413 -> "Content Too Large"
  | 422 -> "Unprocessable Content"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | 504 -> "Gateway Timeout"
  | _ -> "Status"

exception Wfail of write_error

let write_all c s =
  let len = String.length s in
  let off = ref 0 in
  while !off < len do
    match
      Fault.check_op "serve.write";
      Unix.write_substring c.fd s !off (len - !off)
    with
    | n -> off := !off + n
    | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
      raise (Wfail Peer_closed)
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      raise (Wfail Write_timeout)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (e, _, _) ->
      raise (Wfail (Write_failed (Unix.error_message e)))
    | exception Fault.Injected_fault op ->
      raise (Wfail (Write_failed ("injected fault: " ^ op)))
  done

let write_response c ~keep_alive (r : response) =
  let b = Buffer.create (256 + String.length r.body) in
  Printf.bprintf b "HTTP/1.1 %d %s\r\n" r.status (reason r.status);
  List.iter (fun (k, v) -> Printf.bprintf b "%s: %s\r\n" k v) r.headers;
  Printf.bprintf b "Content-Length: %d\r\n" (String.length r.body);
  Printf.bprintf b "Connection: %s\r\n"
    (if keep_alive then "keep-alive" else "close");
  Buffer.add_string b "\r\n";
  Buffer.add_string b r.body;
  try
    write_all c (Buffer.contents b);
    Ok ()
  with Wfail e -> Error e
