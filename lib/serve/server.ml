module Session = Engine.Session
module Compiled = Engine.Compiled
module Budget = Runtime.Budget
module Errors = Runtime.Errors
module Degrade = Runtime.Degrade
module Fault = Runtime.Fault
module Parse = Mc_io.Parse
module Metrics = Observe.Metrics
module Trace = Observe.Trace
module Export = Observe.Export

type config = {
  host : string;
  port : int;
  backlog : int;
  max_inflight : int;
  degrade_watermark : int;
  pressure_fuel : int;
  request_timeout_ms : int;
  read_timeout_ms : int;
  write_timeout_ms : int;
  max_body_bytes : int;
  shared_fuel : int option;
  degrade : bool;
  drain_timeout_ms : int;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 0;
    backlog = 64;
    max_inflight = 32;
    degrade_watermark = 24;
    pressure_fuel = 64;
    request_timeout_ms = 5_000;
    read_timeout_ms = 10_000;
    write_timeout_ms = 10_000;
    max_body_bytes = 64 * 1024;
    shared_fuel = None;
    degrade = true;
    drain_timeout_ms = 2_000;
  }

(* The schema of record. Immutable as a value — a delta builds a new
   state and swaps the cell, so an inflight request keeps answering
   against the plan it started with while new requests pick up the
   evolved one at their next dispatch. *)
type plan_state = { nb : Parse.named_bigraph; compiled : Compiled.t }

type t = {
  cfg : config;
  state : plan_state Atomic.t;
  delta_lock : Mutex.t;  (* serializes /schema/delta writers *)
  metrics : Metrics.t;
  trace : Trace.t;
  trace_lock : Mutex.t;
  lfd : Unix.file_descr;
  bound_port : int;
  inflight : int Atomic.t;
  conn_seq : int Atomic.t;
  stopping : bool Atomic.t;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  conns : (int, Unix.file_descr) Hashtbl.t;  (* live handler fds *)
  conns_lock : Mutex.t;
  shared : Budget.Shared.handle option;
  c_accepted : Metrics.counter;
  c_shed : Metrics.counter;
  c_reaped : Metrics.counter;
  c_requests : Metrics.counter;
  c_degraded : Metrics.counter;
  c_errors : Metrics.counter;
  c_epipe : Metrics.counter;
  c_drain_forced : Metrics.counter;
  c_deltas : Metrics.counter;
  h_latency : Metrics.histogram;
}

let port t = t.bound_port
let inflight t = Atomic.get t.inflight
let metrics t = t.metrics

let latency_bounds_us =
  [| 50.; 100.; 250.; 500.; 1000.; 2500.; 5000.; 25000.; 100000.; 1000000. |]

let create ?(config = default_config) ?cache ?compiled
    ?(metrics = Metrics.disabled) ?(trace = Trace.disabled) nb =
  (* A peer that hangs up mid-response must surface as EPIPE on the
     write, not as a fatal signal. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let compiled =
    match compiled with
    | Some c -> c
    | None ->
      fst
        (Cache.Plan_cache.find_or_compile ~trace ~metrics ?cache
           nb.Parse.graph)
  in
  match Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | lfd -> (
    match
      Unix.setsockopt lfd Unix.SO_REUSEADDR true;
      Unix.bind lfd
        (Unix.ADDR_INET (Unix.inet_addr_of_string config.host, config.port));
      Unix.listen lfd config.backlog;
      match Unix.getsockname lfd with
      | Unix.ADDR_INET (_, p) -> p
      | _ -> config.port
    with
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close lfd with Unix.Unix_error _ -> ());
      Error (config.host ^ ": " ^ Unix.error_message e)
    | exception Failure msg ->
      (try Unix.close lfd with Unix.Unix_error _ -> ());
      Error (config.host ^ ": " ^ msg)
    | bound_port ->
      let wake_r, wake_w = Unix.pipe () in
      let shared =
        Option.map
          (fun fuel -> Budget.Shared.make ~fuel ())
          config.shared_fuel
      in
      Ok
        {
          cfg = config;
          state = Atomic.make { nb; compiled };
          delta_lock = Mutex.create ();
          metrics;
          trace;
          trace_lock = Mutex.create ();
          lfd;
          bound_port;
          inflight = Atomic.make 0;
          conn_seq = Atomic.make 0;
          stopping = Atomic.make false;
          wake_r;
          wake_w;
          conns = Hashtbl.create 64;
          conns_lock = Mutex.create ();
          shared;
          c_accepted = Metrics.counter metrics "serve.accepted";
          c_shed = Metrics.counter metrics "serve.shed";
          c_reaped = Metrics.counter metrics "serve.reaped";
          c_requests = Metrics.counter metrics "serve.requests";
          c_degraded = Metrics.counter metrics "serve.degraded";
          c_errors = Metrics.counter metrics "serve.errors";
          c_epipe = Metrics.counter metrics "serve.epipe";
          c_drain_forced = Metrics.counter metrics "serve.drain_forced";
          c_deltas = Metrics.counter metrics "serve.deltas";
          h_latency =
            Metrics.histogram metrics ~bounds:latency_bounds_us
              "serve.request_us";
        })

(* ------------------------------------------------------- responses *)

let std_headers =
  [ ("Content-Type", "text/plain; charset=utf-8"); ("Server", "minconn") ]

let text status ?(headers = []) body =
  { Http.status; headers = std_headers @ headers; body }

let overloaded_response ~inflight ~max_inflight =
  text 503
    ~headers:[ ("X-Minconn-Error", "overloaded"); ("Retry-After", "1") ]
    (Printf.sprintf "error: overloaded (inflight=%d max=%d)\n" inflight
       max_inflight)

let split_terminals body =
  String.map (function ',' | '\t' | '\r' | '\n' -> ' ' | c -> c) body
  |> String.split_on_char ' '
  |> List.filter (fun s -> s <> "")

let solve_response t st session body =
  (* Pressure mode: above the watermark, answer from cheaper ladder
     rungs instead of queueing up full-price work. The tiny fuel
     budget makes the ladder itself do the degrading, and the response
     says so in its provenance headers. *)
  let pressured = Atomic.get t.inflight > t.cfg.degrade_watermark in
  let budget =
    if pressured then
      Budget.make ~timeout_ms:t.cfg.request_timeout_ms
        ~fuel:t.cfg.pressure_fuel ()
    else
      match t.shared with
      | Some h -> Budget.Shared.view ~timeout_ms:t.cfg.request_timeout_ms h
      | None -> Budget.make ~timeout_ms:t.cfg.request_timeout_ms ()
  in
  let pressure_headers =
    if pressured then [ ("X-Minconn-Pressure", "high") ] else []
  in
  match split_terminals body with
  | [] ->
    text 400
      ~headers:(("X-Minconn-Code", "4") :: pressure_headers)
      "error: empty terminal set\n"
  | names -> (
    match Parse.name_set st.nb names with
    | Error n ->
      text 400
        ~headers:(("X-Minconn-Code", "4") :: pressure_headers)
        (Render.unknown_terminal_line n)
    | Ok p -> (
      match Session.query ~budget ~degrade:t.cfg.degrade session ~p with
      | Error e ->
        let status =
          match e with
          | Errors.Disconnected_terminals -> 422
          | Errors.Budget_exhausted _ -> 504
          | Errors.Parse_error _ | Errors.Invalid_instance _ -> 400
        in
        text status
          ~headers:
            (("X-Minconn-Code", string_of_int (Errors.exit_code e))
            :: pressure_headers)
          (Render.error_line e)
      | Ok s ->
        let prov = s.Session.provenance in
        let degraded = Degrade.degraded prov in
        if degraded then Metrics.incr t.c_degraded;
        text 200
          ~headers:
            ([
               ("X-Minconn-Code", if degraded then "2" else "0");
               ("X-Minconn-Rung", Errors.rung_name prov.Degrade.ran);
               ( "X-Minconn-Guarantee",
                 Degrade.guarantee_name prov.Degrade.guarantee );
               ("X-Minconn-Degraded", string_of_bool degraded);
             ]
            @ pressure_headers)
          (Render.solution_block st.nb s)))

(* POST /schema/delta: parse the delta file against the current
   schema of record, patch the compiled plan component-by-component,
   and publish the evolved state. Writers serialize on [delta_lock];
   readers are lock-free — an inflight request finishes on the plan
   it started with, the next request on its connection picks up the
   swap. *)
let delta_response t body =
  Mutex.lock t.delta_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.delta_lock) @@ fun () ->
  let st = Atomic.get t.state in
  match Parse.deltas_of_string st.nb body with
  | Error e ->
    text 400
      ~headers:
        [
          ("X-Minconn-Error", "bad-delta");
          ("X-Minconn-Code", string_of_int (Errors.exit_code e));
        ]
      (Render.error_line e)
  | Ok (ops, nb) -> (
    match Compiled.apply_deltas ~metrics:t.metrics st.compiled ops with
    | Error msg ->
      text 400
        ~headers:[ ("X-Minconn-Error", "bad-delta"); ("X-Minconn-Code", "4") ]
        ("error: " ^ msg ^ "\n")
    | Ok (compiled, stats) ->
      Atomic.set t.state { nb; compiled };
      Metrics.incr t.c_deltas;
      let fallback = List.exists (fun s -> s.Compiled.fallback) stats in
      let recompiled =
        List.concat_map (fun s -> s.Compiled.recompiled) stats
        |> List.sort_uniq compare
      in
      let buf = Buffer.create 256 in
      List.iter
        (fun (s : Compiled.delta_stats) ->
          Buffer.add_string buf
            (Printf.sprintf "delta %s: %s\n"
               (Bipartite.Delta.to_string s.Compiled.op)
               (if s.Compiled.noop then "noop"
                else if s.Compiled.fallback then "recompiled all components"
                else
                  Printf.sprintf "recompiled %d component%s, reused %d"
                    (List.length s.Compiled.recompiled)
                    (if List.length s.Compiled.recompiled = 1 then "" else "s")
                    s.Compiled.reused)))
        stats;
      Buffer.add_string buf
        (Printf.sprintf "schema evolved: %d deltas, %d components\n"
           (List.length ops)
           (Compiled.n_components compiled));
      text 200
        ~headers:
          [
            ( "X-Minconn-Recompiled-Components",
              if fallback then "all"
              else String.concat "," (List.map string_of_int recompiled) );
            ("X-Minconn-Deltas", string_of_int (List.length ops));
          ]
        (Buffer.contents buf))

let dispatch t st session (req : Http.request) =
  match (req.Http.meth, req.Http.path) with
  | "POST", "/solve" -> solve_response t st session req.Http.body
  | "POST", "/schema/delta" -> delta_response t req.Http.body
  | "GET", "/metrics" -> text 200 (Export.metrics_json t.metrics)
  | "GET", "/trace" ->
    Mutex.lock t.trace_lock;
    let body = Export.trace_ndjson t.trace in
    Mutex.unlock t.trace_lock;
    text 200 body
  | "GET", "/healthz" ->
    text 200
      (Printf.sprintf "%s inflight=%d\n"
         (if Atomic.get t.stopping then "draining" else "ok")
         (Atomic.get t.inflight))
  | _, "/solve" | _, "/schema/delta" ->
    text 405 ~headers:[ ("Allow", "POST") ] "error: use POST\n"
  | _, _ -> text 404 "error: not found\n"

(* The poisoned-handler boundary: whatever a handler raises — injected
   fault or real bug — becomes a 500 on this connection and nothing
   more. The listener and every other connection keep serving. *)
let handle_request t st session req =
  match
    Fault.check_op "serve.handler";
    dispatch t st session req
  with
  | resp -> resp
  | exception e ->
    Metrics.incr t.c_errors;
    let msg =
      match e with
      | Fault.Injected_fault op -> "injected fault: " ^ op
      | e -> Printexc.to_string e
    in
    text 500
      ~headers:[ ("X-Minconn-Error", "internal") ]
      ("error: internal (" ^ msg ^ ")\n")

(* ------------------------------------------------------ connections *)

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

let handle_conn t id fd =
  let conn = Http.conn fd in
  let tfork = Trace.fork t.trace in
  let session =
    ref
      (Session.create ~trace:tfork ~metrics:t.metrics
         (Atomic.get t.state).compiled)
  in
  let finally () =
    close_quiet fd;
    Mutex.lock t.conns_lock;
    Hashtbl.remove t.conns id;
    Mutex.unlock t.conns_lock;
    if Trace.active t.trace then begin
      Mutex.lock t.trace_lock;
      Trace.merge t.trace tfork;
      Mutex.unlock t.trace_lock
    end;
    Atomic.decr t.inflight
  in
  Fun.protect ~finally @@ fun () ->
  let respond_close status headers body =
    ignore
      (Http.write_response conn ~keep_alive:false
         (text status ~headers body)
        : (unit, Http.write_error) result)
  in
  let rec loop () =
    if not (Atomic.get t.stopping) then
      match Http.read_request ~max_body_bytes:t.cfg.max_body_bytes conn with
      | Error Http.Closed -> ()
      | Error Http.Read_timeout ->
        (* Stalled or idle past the deadline: reap it. *)
        Metrics.incr t.c_reaped;
        respond_close 408
          [ ("X-Minconn-Error", "read-timeout") ]
          "error: request read timed out\n"
      | Error (Http.Torn _) ->
        (* Client died mid-request; nobody is left to answer. *)
        Metrics.incr t.c_errors
      | Error (Http.Too_large msg) ->
        respond_close 413
          [ ("X-Minconn-Error", "too-large") ]
          ("error: " ^ msg ^ "\n")
      | Error (Http.Malformed msg) ->
        respond_close 400
          [ ("X-Minconn-Error", "malformed"); ("X-Minconn-Code", "4") ]
          ("error: " ^ msg ^ "\n")
      | Ok req -> (
        Metrics.incr t.c_requests;
        let t0 = Unix.gettimeofday () in
        (* Resync to the published plan: a physical no-op between
           deltas, a scratch rebuild right after one. The snapshot
           [st] pins one coherent (names, plan) pair for this
           request. *)
        let st = Atomic.get t.state in
        session := Session.with_plan !session st.compiled;
        let resp = handle_request t st !session req in
        Metrics.observe t.h_latency ((Unix.gettimeofday () -. t0) *. 1e6);
        let keep =
          req.Http.keep_alive && resp.Http.status < 500
          && not (Atomic.get t.stopping)
        in
        match Http.write_response conn ~keep_alive:keep resp with
        | Ok () -> if keep then loop ()
        | Error Http.Peer_closed -> Metrics.incr t.c_epipe
        | Error Http.Write_timeout -> Metrics.incr t.c_reaped
        | Error (Http.Write_failed _) -> Metrics.incr t.c_errors)
  in
  loop ()

(* ------------------------------------------------------ accept loop *)

(* Shedding never reads the request: the 503 goes out the moment the
   connection is admitted past the kernel queue, so the latency of
   "sorry, overloaded" stays flat no matter how slow the solver is. *)
let shed t fd =
  Metrics.incr t.c_shed;
  (try Unix.setsockopt_float fd Unix.SO_SNDTIMEO 0.1
   with Unix.Unix_error _ -> ());
  ignore
    (Http.write_response (Http.conn fd) ~keep_alive:false
       (overloaded_response ~inflight:(Atomic.get t.inflight)
          ~max_inflight:t.cfg.max_inflight)
      : (unit, Http.write_error) result);
  close_quiet fd

let accept_one t =
  match
    Fault.check_op "serve.accept";
    Unix.accept t.lfd
  with
  | exception Fault.Injected_fault _ ->
    (* A poisoned accept costs one loop turn, never the listener; the
       pending connection stays queued for the next turn. *)
    Metrics.incr t.c_errors
  | exception
      Unix.Unix_error
        ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR | Unix.ECONNABORTED), _, _)
    -> ()
  | exception Unix.Unix_error (_, _, _) ->
    (* EMFILE and friends: count it and back off instead of spinning. *)
    Metrics.incr t.c_errors;
    Thread.delay 0.01
  | fd, _addr ->
    Metrics.incr t.c_accepted;
    (try Unix.setsockopt fd Unix.TCP_NODELAY true
     with Unix.Unix_error _ -> ());
    if Atomic.get t.stopping then close_quiet fd
    else if Atomic.get t.inflight >= t.cfg.max_inflight then shed t fd
    else begin
      (try
         Unix.setsockopt_float fd Unix.SO_RCVTIMEO
           (float_of_int t.cfg.read_timeout_ms /. 1000.);
         Unix.setsockopt_float fd Unix.SO_SNDTIMEO
           (float_of_int t.cfg.write_timeout_ms /. 1000.)
       with Unix.Unix_error _ -> ());
      Atomic.incr t.inflight;
      let id = Atomic.fetch_and_add t.conn_seq 1 in
      Mutex.lock t.conns_lock;
      Hashtbl.replace t.conns id fd;
      Mutex.unlock t.conns_lock;
      ignore (Thread.create (fun () -> handle_conn t id fd) () : Thread.t)
    end

let drain t =
  close_quiet t.lfd;
  let deadline =
    Unix.gettimeofday () +. (float_of_int t.cfg.drain_timeout_ms /. 1000.)
  in
  while Atomic.get t.inflight > 0 && Unix.gettimeofday () < deadline do
    Thread.delay 0.005
  done;
  if Atomic.get t.inflight > 0 then begin
    (* Stragglers past the grace period: shut their sockets so blocked
       reads and writes fail typed and the handlers unwind through
       their normal cleanup. *)
    Mutex.lock t.conns_lock;
    Hashtbl.iter
      (fun _ fd ->
        Metrics.incr t.c_drain_forced;
        try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      t.conns;
    Mutex.unlock t.conns_lock;
    let hard = Unix.gettimeofday () +. 1.0 in
    while Atomic.get t.inflight > 0 && Unix.gettimeofday () < hard do
      Thread.delay 0.005
    done
  end

let run t =
  let rec loop () =
    if not (Atomic.get t.stopping) then begin
      (match Unix.select [ t.lfd; t.wake_r ] [] [] 0.5 with
      | ready, _, _ ->
        if List.mem t.wake_r ready then begin
          let b = Bytes.create 16 in
          try ignore (Unix.read t.wake_r b 0 16 : int)
          with Unix.Unix_error _ -> ()
        end
        else if List.mem t.lfd ready then accept_one t
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      loop ()
    end
  in
  loop ();
  drain t;
  close_quiet t.wake_r;
  close_quiet t.wake_w

let start t = Thread.create run t

let stop t =
  if not (Atomic.exchange t.stopping true) then
    try ignore (Unix.write_substring t.wake_w "x" 0 1 : int)
    with Unix.Unix_error _ -> ()
