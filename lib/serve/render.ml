module Bigraph = Bipartite.Bigraph
module Tree = Steiner.Tree
module Iset = Graphs.Iset

let name_of (nb : Mc_io.Parse.named_bigraph) v =
  match Bigraph.node_of_index nb.Mc_io.Parse.graph v with
  | Bigraph.L i -> nb.Mc_io.Parse.left_names.(i)
  | Bigraph.R j -> nb.Mc_io.Parse.right_names.(j)

let method_name = function
  | Engine.Session.Used_forest -> "forest paths (exact and unique)"
  | Engine.Session.Used_algorithm2 -> "Algorithm 2 (exact, Theorem 5)"
  | Engine.Session.Used_exact_dp -> "Dreyfus-Wagner (exact)"
  | Engine.Session.Used_elimination -> "nonredundant elimination (heuristic)"
  | Engine.Session.Used_mst_approx -> "MST approximation (ratio <= 2)"

let tree_block nb (tree : Tree.t) =
  let b = Buffer.create 128 in
  Printf.bprintf b "tree nodes (%d): %s\n" (Tree.node_count tree)
    (String.concat ", " (List.map (name_of nb) (Iset.elements tree.Tree.nodes)));
  List.iter
    (fun (x, y) -> Printf.bprintf b "  %s -- %s\n" (name_of nb x) (name_of nb y))
    tree.Tree.edges;
  Buffer.contents b

let solution_block nb (s : Engine.Session.solution) =
  Printf.sprintf "method: %s\n%s"
    (method_name s.Engine.Session.method_used)
    (tree_block nb s.Engine.Session.tree)

let error_line e = "error: " ^ Runtime.Errors.to_string e ^ "\n"

let unknown_terminal_line n = Printf.sprintf "error: unknown terminal %s\n" n
