(** The wire layer of the serving front-end: a minimal, dependency-free
    HTTP/1.1 subset — request-line + headers + Content-Length bodies,
    keep-alive, no chunked encoding, no TLS.

    Every way a socket can misbehave maps to a typed error rather than
    an exception: the handler loop in {!Server} branches on
    {!read_error}/{!write_error} to decide which counter to bump and
    whether the connection survives. Reads and writes pass through the
    ["serve.read"] / ["serve.write"] {!Runtime.Fault} hooks, so tests
    can make any I/O boundary fail on demand. *)

type request = {
  meth : string;  (** verb as sent, e.g. ["POST"] *)
  path : string;  (** request target, e.g. ["/solve"] *)
  headers : (string * string) list;  (** names lowercased, values trimmed *)
  body : string;
  keep_alive : bool;
      (** what the client asked for (HTTP/1.1 default on); the server
          may still answer [Connection: close] *)
}

val header : request -> string -> string option
(** Case-insensitive header lookup. *)

(** Why reading the next request off a connection failed. *)
type read_error =
  | Closed  (** clean EOF between requests — the client is done *)
  | Read_timeout  (** the socket's receive deadline expired mid-request *)
  | Torn of string
      (** connection error, or EOF in the middle of a request — the
          torn-client case *)
  | Too_large of string  (** head or body over the configured cap *)
  | Malformed of string  (** not HTTP we understand *)

type write_error =
  | Peer_closed  (** EPIPE/ECONNRESET: the client hung up on us *)
  | Write_timeout  (** the socket's send deadline expired *)
  | Write_failed of string  (** anything else, including injected faults *)

val read_error_name : read_error -> string
val write_error_name : write_error -> string

type conn
(** One client connection: the fd plus the buffer of bytes read but not
    yet consumed (pipelined requests stay queued across calls). *)

val conn : Unix.file_descr -> conn

val read_request :
  ?max_head_bytes:int ->
  ?max_body_bytes:int ->
  conn ->
  (request, read_error) result
(** Block (subject to the fd's [SO_RCVTIMEO]) until one full request is
    buffered, or fail typed. [max_head_bytes] (default 16 KiB) caps the
    request line + headers; [max_body_bytes] (default 64 KiB) caps the
    declared [Content-Length] — an oversized declaration is rejected
    before a single body byte is read. *)

type client_response = {
  code : int;
  resp_headers : (string * string) list;  (** names lowercased *)
  resp_body : string;
}

val resp_header : client_response -> string -> string option

val read_response : conn -> (client_response, read_error) result
(** Client side of the same framing — what the tests, the serve-smoke
    check and the bench load generator use to talk to the server. *)

type response = {
  status : int;
  headers : (string * string) list;
  body : string;
}

val reason : int -> string
(** Reason phrase for the status codes the server emits. *)

val write_response :
  conn -> keep_alive:bool -> response -> (unit, write_error) result
(** Serialize with [Content-Length] and [Connection: keep-alive|close]
    appended, and write it out whole (subject to [SO_SNDTIMEO]). *)
