(** Canonical text rendering of solver answers.

    The serving layer and the CLI batch mode answer the same queries;
    their outputs must be byte-identical so `serve` responses can be
    diffed against `solve --queries` blocks (the serve-smoke rule does
    exactly that). This module is the single owner of that format —
    the CLI delegates to it rather than keeping a private copy. *)

val name_of : Mc_io.Parse.named_bigraph -> int -> string
(** The display name of a bigraph node by underlying index. *)

val method_name : Engine.Session.method_used -> string
(** Human description of the solver that produced an answer, e.g.
    ["Dreyfus-Wagner (exact)"]. *)

val tree_block : Mc_io.Parse.named_bigraph -> Steiner.Tree.t -> string
(** The [tree nodes (k): a, b, c] header plus one indented
    [  a -- b] line per edge, each line newline-terminated. *)

val solution_block :
  Mc_io.Parse.named_bigraph -> Engine.Session.solution -> string
(** [method: ...] line followed by {!tree_block} — the exact per-query
    success block the CLI batch mode prints. *)

val error_line : Runtime.Errors.t -> string
(** [error: ...] line matching the CLI batch failure block. *)

val unknown_terminal_line : string -> string
(** [error: unknown terminal NAME] line. *)
