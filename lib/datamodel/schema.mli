(** Relational database schemes as named objects over a bipartite graph:
    left nodes are attributes, right nodes are relation schemes — the
    representation Section 3 uses for logical-independence queries. *)

open Hypergraphs
open Bipartite

type t

val make : (string * string list) list -> t
(** [(relation name, attributes)] pairs. Raises [Invalid_argument] on
    duplicate relation names, empty relations, or a name collision
    between a relation and an attribute. *)

val of_database : Relalg.Database.t -> t

val relation_names : t -> string list

val attributes : t -> string list
(** Sorted. *)

val relation_attrs : t -> string -> string list
(** Raises [Not_found]. *)

val to_bigraph : t -> Bigraph.t
(** Left node [i] = i-th attribute of {!attributes}; right node [j] =
    j-th relation of {!relation_names}. Served from the lazily-built
    {!compiled} handle, so repeated calls return the same graph without
    re-materialising it. *)

val compiled : t -> Engine.Compiled.t
(** The schema compiled for serving (bigraph, CSR arena, classification
    profile, component orderings), built on first use and cached in the
    schema record; feed it to [Engine.Session.create] to answer query
    batches. *)

val to_hypergraph : t -> Hypergraph.t

val object_index : t -> string -> int option
(** Underlying graph index of an attribute or relation name. *)

val object_name : t -> int -> string
(** Inverse of {!object_index}; raises [Invalid_argument] when out of
    range. *)

val is_attribute : t -> string -> bool

val profile : t -> Classify.profile
(** Memoized via {!compiled}: classification runs at most once per
    schema value. *)

val acyclicity : t -> Acyclicity.degree
(** Degree of the scheme hypergraph. *)

val pp : Format.formatter -> t -> unit
