open Graphs
open Bipartite
open Steiner

type t = {
  level_names : string list list;  (* level 0 first *)
  defs : (string * string list) list;
  left : string array;  (* even levels, in level order *)
  right : string array;  (* odd levels *)
  compiled : Engine.Compiled.t Lazy.t;
      (* bigraph + classification, built at most once per hierarchy *)
}

let position arr name =
  let rec go i =
    if i >= Array.length arr then None
    else if arr.(i) = name then Some i
    else go (i + 1)
  in
  go 0

let build_bigraph ~left ~right defs =
  let edges =
    List.concat_map
      (fun (n, parts) ->
        List.map
          (fun p ->
            (* One endpoint is on an even level, the other on the
               adjacent odd level. *)
            (* Unreachable through [make], which validates every
               definition entry (including duplicates) against the
               level structure. *)
            let bad who =
              invalid_arg ("Layered.to_bigraph: unknown object: " ^ who)
            in
            match (position left n, position right n) with
            | Some i, _ -> (
              match position right p with
              | Some j -> (i, j)
              | None -> bad p)
            | None, Some j -> (
              match position left p with
              | Some i -> (i, j)
              | None -> bad p)
            | None, None -> bad n)
          parts)
      defs
  in
  Bigraph.of_edges ~nl:(Array.length left) ~nr:(Array.length right) edges

let make ~levels ~definitions =
  let all = List.concat levels in
  if List.length (List.sort_uniq compare all) <> List.length all then
    invalid_arg "Layered.make: duplicate object name";
  let def_names = List.map fst definitions in
  (* [to_bigraph] walks every definition entry, so a duplicate whose
     second occurrence was never validated used to reach the graph
     construction unchecked — reject duplicates outright. *)
  if List.length (List.sort_uniq compare def_names) <> List.length def_names
  then invalid_arg "Layered.make: duplicate definition";
  let level_of_name = Hashtbl.create 16 in
  List.iteri
    (fun l names -> List.iter (fun n -> Hashtbl.replace level_of_name n l) names)
    levels;
  (* Every object above level 0 needs a definition in terms of the
     level immediately below. *)
  List.iteri
    (fun l names ->
      if l > 0 then
        List.iter
          (fun n ->
            match List.assoc_opt n definitions with
            | None | Some [] ->
              invalid_arg ("Layered.make: object without definition: " ^ n)
            | Some _ -> ())
          names)
    levels;
  List.iter
    (fun (n, parts) ->
      match Hashtbl.find_opt level_of_name n with
      | Some l when l > 0 ->
        List.iter
          (fun p ->
            match Hashtbl.find_opt level_of_name p with
            | Some lp when lp = l - 1 -> ()
            | Some _ ->
              invalid_arg
                (Printf.sprintf
                   "Layered.make: %s (level %d) references %s outside level %d"
                   n l p (l - 1))
            | None -> invalid_arg ("Layered.make: unknown object " ^ p))
          parts
      | Some _ -> invalid_arg ("Layered.make: level-0 object has a definition: " ^ n)
      | None -> invalid_arg ("Layered.make: definition for unknown object " ^ n))
    definitions;
  let left =
    Array.of_list
      (List.concat (List.filteri (fun l _ -> l mod 2 = 0) levels))
  in
  let right =
    Array.of_list
      (List.concat (List.filteri (fun l _ -> l mod 2 = 1) levels))
  in
  {
    level_names = levels;
    defs = definitions;
    left;
    right;
    compiled =
      lazy (Engine.Compiled.compile (build_bigraph ~left ~right definitions));
  }

let n_levels t = List.length t.level_names
let objects t = List.concat t.level_names

let level_of t name =
  let rec go l = function
    | [] -> None
    | names :: rest -> if List.mem name names then Some l else go (l + 1) rest
  in
  go 0 t.level_names

let compiled t = Lazy.force t.compiled
let to_bigraph t = Engine.Compiled.graph (compiled t)

let object_index t name =
  match position t.left name with
  | Some i -> Some i
  | None -> (
    match position t.right name with
    | Some j -> Some (Array.length t.left + j)
    | None -> None)

let object_name t v =
  let nl = Array.length t.left in
  if v >= 0 && v < nl then t.left.(v)
  else if v >= nl && v < nl + Array.length t.right then t.right.(v - nl)
  else invalid_arg "Layered.object_name: out of range"

let profile t = Engine.Compiled.profile (compiled t)

(* Distinguish an unknown name (a typed instance error) from a
   disconnected query: the two used to collapse into [None]. *)
let resolve t names =
  let rec go acc = function
    | [] -> Ok acc
    | n :: rest -> (
      match object_index t n with
      | Some v -> go (Iset.add v acc) rest
      | None -> Error n)
  in
  go Iset.empty names

let minimal_connection t ~objects =
  match resolve t objects with
  | Error n -> Error (Runtime.Errors.Invalid_instance ("unknown object: " ^ n))
  | Ok p ->
    if Iset.cardinal p > Dreyfus_wagner.max_terminals then
      Error
        (Runtime.Errors.Invalid_instance
           (Printf.sprintf "more than %d distinct objects"
              Dreyfus_wagner.max_terminals))
    else
      let g = Engine.Compiled.ugraph (compiled t) in
      (match Dreyfus_wagner.solve g ~terminals:p with
      | None -> Error Runtime.Errors.Disconnected_terminals
      | Some tree ->
        Ok
          ( List.map (object_name t) (Iset.elements tree.Tree.nodes),
            List.map
              (fun (u, v) -> (object_name t u, object_name t v))
              tree.Tree.edges ))

let interpretations ?(k = 3) t ~objects =
  match resolve t objects with
  | Error _ -> []
  | Ok p ->
    let g = Engine.Compiled.ugraph (compiled t) in
    Kbest.enumerate ~max_trees:k g ~terminals:p
    |> List.map (fun tree ->
           List.map (object_name t) (Iset.elements tree.Tree.nodes))
