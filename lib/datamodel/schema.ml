open Graphs
open Hypergraphs
open Bipartite

type t = {
  relations : (string * string list) list;
  attr_list : string list;  (* sorted *)
  compiled : Engine.Compiled.t Lazy.t;
      (* bigraph + classification, built at most once per schema *)
}

let attr_index_in attr_list a =
  let rec go i = function
    | [] -> None
    | x :: _ when x = a -> Some i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 attr_list

let build_bigraph relations attr_list =
  let nl = List.length attr_list in
  let nr = List.length relations in
  let edges =
    List.concat
      (List.mapi
         (fun j (_, attrs) ->
           List.map
             (fun a ->
               match attr_index_in attr_list a with
               | Some i -> (i, j)
               | None ->
                 (* Unreachable through [make], which derives the
                    attribute universe from the relations themselves. *)
                 invalid_arg ("Schema.to_bigraph: unknown attribute: " ^ a))
             attrs)
         relations)
  in
  Bigraph.of_edges ~nl ~nr edges

let make relations =
  let names = List.map fst relations in
  if List.length (List.sort_uniq compare names) <> List.length names then
    invalid_arg "Schema.make: duplicate relation name";
  List.iter
    (fun (n, attrs) ->
      if attrs = [] then invalid_arg ("Schema.make: empty relation " ^ n))
    relations;
  let attr_list =
    List.sort_uniq compare (List.concat_map snd relations)
  in
  List.iter
    (fun n ->
      if List.mem n attr_list then
        invalid_arg ("Schema.make: name used as both relation and attribute: " ^ n))
    names;
  {
    relations;
    attr_list;
    compiled = lazy (Engine.Compiled.compile (build_bigraph relations attr_list));
  }

let of_database db =
  make
    (List.map
       (fun (n, r) -> (n, Relalg.Relation.attrs r))
       (Relalg.Database.relations db))

let relation_names t = List.map fst t.relations
let attributes t = t.attr_list
let relation_attrs t name = List.assoc name t.relations

let attr_index t a = attr_index_in t.attr_list a

let relation_index t n =
  let rec go i = function
    | [] -> None
    | (x, _) :: _ when x = n -> Some i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 t.relations

let compiled t = Lazy.force t.compiled
let to_bigraph t = Engine.Compiled.graph (compiled t)

let to_hypergraph t =
  let index a =
    match attr_index t a with
    | Some i -> i
    | None -> invalid_arg ("Schema.to_hypergraph: unknown attribute: " ^ a)
  in
  Hypergraph.create
    ~n_nodes:(List.length t.attr_list)
    (List.map
       (fun (_, attrs) -> Iset.of_list (List.map index attrs))
       t.relations)

let object_index t name =
  match attr_index t name with
  | Some i -> Some i
  | None -> (
    match relation_index t name with
    | Some j -> Some (List.length t.attr_list + j)
    | None -> None)

let object_name t v =
  let nl = List.length t.attr_list in
  if v >= 0 && v < nl then List.nth t.attr_list v
  else if v >= nl && v < nl + List.length t.relations then
    fst (List.nth t.relations (v - nl))
  else invalid_arg "Schema.object_name: out of range"

let is_attribute t name = attr_index t name <> None

let profile t = Engine.Compiled.profile (compiled t)

let acyclicity t = Acyclicity.degree (to_hypergraph t)

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (n, attrs) ->
      Format.fprintf ppf "%s(%s)@," n (String.concat ", " attrs))
    t.relations;
  Format.fprintf ppf "@]"
