open Graphs
open Steiner

type t = {
  ents : (string * string list) list;
  rels : (string * string list * string list) list;
  names : string array;  (* attribute names, then entities, then relationships *)
}

let make ~entities ~relationships =
  let attr_names =
    List.sort_uniq compare
      (List.concat_map snd entities
      @ List.concat_map (fun (_, _, attrs) -> attrs) relationships)
  in
  let entity_names = List.map fst entities in
  let rel_names = List.map (fun (n, _, _) -> n) relationships in
  let all = attr_names @ entity_names @ rel_names in
  if List.length (List.sort_uniq compare all) <> List.length all then
    invalid_arg "Er.make: duplicate object name";
  List.iter
    (fun (n, ents, _) ->
      List.iter
        (fun e ->
          if not (List.mem e entity_names) then
            invalid_arg
              (Printf.sprintf "Er.make: relationship %s references unknown entity %s" n e))
        ents)
    relationships;
  { ents = entities; rels = relationships; names = Array.of_list all }

let objects t = Array.to_list t.names
let entities t = List.map fst t.ents
let relationships t = List.map (fun (n, _, _) -> n) t.rels

let attributes t =
  List.sort_uniq compare
    (List.concat_map snd t.ents
    @ List.concat_map (fun (_, _, attrs) -> attrs) t.rels)

let object_index t name =
  let rec go i =
    if i >= Array.length t.names then None
    else if t.names.(i) = name then Some i
    else go (i + 1)
  in
  go 0

let object_name t i =
  if i < 0 || i >= Array.length t.names then
    invalid_arg "Er.object_name: out of range";
  t.names.(i)

let to_ugraph t =
  let idx name =
    match object_index t name with
    | Some i -> i
    | None ->
      (* Unreachable through [make], which validates every reference. *)
      invalid_arg ("Er.to_ugraph: unknown object: " ^ name)
  in
  let b = Ugraph.Builder.create (Array.length t.names) in
  List.iter
    (fun (e, attrs) ->
      List.iter (fun a -> Ugraph.Builder.add_edge b (idx e) (idx a)) attrs)
    t.ents;
  List.iter
    (fun (r, ents, attrs) ->
      List.iter (fun e -> Ugraph.Builder.add_edge b (idx r) (idx e)) ents;
      List.iter (fun a -> Ugraph.Builder.add_edge b (idx r) (idx a)) attrs)
    t.rels;
  Ugraph.Builder.build b

let is_bipartite t =
  match Bipartite.Bigraph.of_ugraph (to_ugraph t) with
  | Some _ -> true
  | None -> false

(* Distinguish an unknown name (a typed instance error) from a
   disconnected query: the two used to collapse into [None]. *)
let resolve t names =
  let rec go acc = function
    | [] -> Ok acc
    | n :: rest -> (
      match object_index t n with
      | Some i -> go (Iset.add i acc) rest
      | None -> Error n)
  in
  go Iset.empty names

let minimal_connection t ~objects =
  match resolve t objects with
  | Error n -> Error (Runtime.Errors.Invalid_instance ("unknown object: " ^ n))
  | Ok p -> (
    let g = to_ugraph t in
    if Iset.cardinal p > Dreyfus_wagner.max_terminals then
      Error
        (Runtime.Errors.Invalid_instance
           (Printf.sprintf "more than %d distinct objects"
              Dreyfus_wagner.max_terminals))
    else
      match Dreyfus_wagner.solve g ~terminals:p with
      | None -> Error Runtime.Errors.Disconnected_terminals
      | Some tree ->
        let name = object_name t in
        Ok
          ( List.map name (Iset.elements tree.Tree.nodes),
            List.map (fun (u, v) -> (name u, name v)) tree.Tree.edges ))

(* Alternative interpretations: force one extra object into the
   connection and re-solve exactly; keep only trees whose every leaf is
   a query object (a forced object left dangling as a leaf is not a
   different navigation, just a decorated copy of another answer). *)
let interpretations ?(k = 3) t ~objects =
  match resolve t objects with
  | Error _ -> []
  | Ok p ->
    if Iset.cardinal p + 1 > Dreyfus_wagner.max_terminals then []
    else begin
      let g = to_ugraph t in
      let dedupe_by_nodes trees =
        List.fold_left
          (fun acc tr ->
            if List.exists (fun t' -> Iset.equal t'.Tree.nodes tr.Tree.nodes) acc
            then acc
            else tr :: acc)
          [] trees
        |> List.rev
      in
      let candidates =
        Kbest.enumerate ~max_trees:(4 * k) g ~terminals:p |> dedupe_by_nodes
      in
      let to_names tree =
        List.map (object_name t) (Iset.elements tree.Tree.nodes)
      in
      List.filteri (fun i _ -> i < k) (List.map to_names candidates)
    end

let to_schema t =
  let key e = e ^ "_key" in
  let entity_rels =
    List.map (fun (e, attrs) -> (e, key e :: attrs)) t.ents
  in
  let rel_rels =
    List.map
      (fun (r, ents, attrs) -> (r, List.map key ents @ attrs))
      t.rels
  in
  Schema.make (entity_rels @ rel_rels)
