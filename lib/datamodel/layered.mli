(** Multi-level conceptual hierarchies.

    The paper closes its introduction observing that the bipartite
    results apply to any conceptual model in which "concepts belonging
    to each level of the conceptual hierarchy are defined only in terms
    of objects of the underlying level": stacking the levels and
    2-colouring them by parity makes the object graph bipartite, with
    even levels on one side and odd levels on the other.

    This module models such hierarchies — level 0 objects are primitive
    (attributes); every higher object is defined by aggregating objects
    exactly one level below — and maps them onto {!Bipartite.Bigraph}
    so the whole chordality/Steiner machinery applies unchanged. *)

open Bipartite

type t

val make : levels:string list list -> definitions:(string * string list) list -> t
(** [levels] lists the object names per level, level 0 first.
    [definitions] gives, for every object above level 0, the objects of
    the level immediately below that define it. Raises
    [Invalid_argument] on duplicate names, duplicate definition entries,
    missing definitions, references that skip levels, or empty
    definitions. *)

val n_levels : t -> int

val objects : t -> string list

val level_of : t -> string -> int option

val to_bigraph : t -> Bigraph.t
(** Even-parity levels are V₁ (left), odd-parity levels V₂ (right);
    edges connect each object to its defining objects. Served from the
    lazily-built {!compiled} handle, so repeated calls return the same
    graph without re-materialising it. *)

val compiled : t -> Engine.Compiled.t
(** The hierarchy compiled for serving (bigraph, CSR arena,
    classification profile, component orderings), built on first use
    and cached in the record. *)

val object_index : t -> string -> int option
(** Underlying index in {!to_bigraph}'s graph. *)

val object_name : t -> int -> string

val profile : t -> Classify.profile
(** Memoized via {!compiled}: classification runs at most once per
    hierarchy value. *)

val minimal_connection :
  t ->
  objects:string list ->
  (string list * (string * string) list, Runtime.Errors.t) result
(** Exact minimal connection over the named objects (the conceptual
    navigation). Unknown names and over-cap queries are
    [Error (Invalid_instance _)]; objects in different components are
    [Error Disconnected_terminals]. *)

val interpretations : ?k:int -> t -> objects:string list -> string list list
