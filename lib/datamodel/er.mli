(** Entity–relationship schemes (the paper's Fig. 1 setting): entities
    aggregate attributes; relationships aggregate entities and
    attributes. The associated object graph is 3-partite and in general
    {e not} bipartite (an attribute shared by an entity and a
    relationship closes an odd cycle), so minimal connections here use
    the exact solver; when the graph happens to be bipartite the
    bipartite machinery applies (the paper's closing remark in
    Section 1). *)

open Graphs

type t

val make :
  entities:(string * string list) list ->
  relationships:(string * string list * string list) list ->
  t
(** [entities]: name and attribute names. [relationships]: name,
    participating entity names, attribute names. Raises
    [Invalid_argument] on duplicate object names or references to
    unknown entities. *)

val objects : t -> string list
(** All object names: attributes, entities, relationships. *)

val entities : t -> string list

val relationships : t -> string list

val attributes : t -> string list

val to_ugraph : t -> Ugraph.t
(** Object graph; index [i] is [List.nth (objects t) i]. *)

val object_index : t -> string -> int option

val object_name : t -> int -> string

val is_bipartite : t -> bool

val minimal_connection :
  t ->
  objects:string list ->
  (string list * (string * string) list, Runtime.Errors.t) result
(** Exact Steiner over the named objects: [(tree node names, tree
    edges)]. Unknown names and over-cap queries are
    [Error (Invalid_instance _)]; objects in different components are
    [Error Disconnected_terminals]. *)

val interpretations : ?k:int -> t -> objects:string list -> string list list
(** Ranked alternative connections (node-name sets), smallest first —
    the disambiguation dialogue of the paper's introduction. *)

val to_schema : t -> Schema.t
(** Standard ER-to-relational mapping: one relation per entity over a
    surrogate key ["<entity>_key"] plus its attributes; one relation
    per relationship over its participants' keys plus its own
    attributes. Shared attribute names stay shared, so minimal
    connections on the resulting scheme mirror the ER navigation. *)
