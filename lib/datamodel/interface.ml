type answer = { connection : Query.connection; result : Relalg.Relation.t }

let evaluate_connection ?(where = []) db (c : Query.connection) ~output =
  let chosen =
    List.filter
      (fun (n, _) -> List.mem n c.Query.relations_used)
      (Relalg.Database.relations db)
  in
  let chosen =
    (* Push equality selections down into every chosen relation that
       carries the attribute. *)
    List.map
      (fun (n, r) ->
        ( n,
          List.fold_left
            (fun r (attr, value) ->
              if Relalg.Relation.mem_attr r attr then
                Relalg.Ops.select_eq r ~attr ~value
              else r)
            r where ))
      chosen
  in
  let chosen =
    (* A single-attribute query can yield a one-node tree with no
       relation: fall back to any relation holding the attributes. *)
    if chosen <> [] then chosen
    else
      match
        List.find_opt
          (fun (_, r) -> List.for_all (Relalg.Relation.mem_attr r) output)
          (Relalg.Database.relations db)
      with
      | Some r -> [ r ]
      | None -> []
  in
  let sub = Relalg.Database.make chosen in
  (* Only output attributes actually present in the chosen relations
     can be projected; the connection guarantees they all are. *)
  Relalg.Yannakakis.evaluate sub ~output

(* First occurrence wins: a query naming an attribute twice is one
   output column, not a typed-error round trip. *)
let dedup_output output =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun a ->
      if Hashtbl.mem seen a then false
      else begin
        Hashtbl.add seen a ();
        true
      end)
    output

let answer ?strategy ?(where = []) db ~query =
  let schema = Schema.of_database db in
  let objects =
    List.sort_uniq compare (query @ List.map fst where)
  in
  match Query.minimal_connection ?strategy schema ~objects with
  | Error e -> Error e
  | Ok c -> (
    let output = dedup_output (List.filter (Schema.is_attribute schema) query) in
    match evaluate_connection ~where db c ~output with
    | Ok result -> Ok { connection = c; result }
    | Error e -> Error (Query.Not_applicable (Runtime.Errors.to_string e)))

let interpretations ?k db ~query =
  let schema = Schema.of_database db in
  let output = dedup_output (List.filter (Schema.is_attribute schema) query) in
  Query.interpretations ?k schema ~objects:query
  |> List.filter_map (fun c ->
         match evaluate_connection db c ~output with
         | Ok result -> Some { connection = c; result }
         | Error _ -> None)
