open Graphs

(* Dual representation: the graph lives in whichever adjacency form it
   was built from — the set-based [Ugraph.t] or the flat [Csr.t] — and
   the other form is derived lazily on first use and cached. The
   mutable fields are caches only: both always describe the same
   graph, so a racy double-derivation writes equal values (benign under
   the runtime's atomic pointer writes) and every observable function
   is pure. At least one of the two is always [Some].

   This is what lets [Compiled.compile] take an edge stream to a CSR
   plan at n = 10^6 without ever materialising a million AVL sets,
   while the handful of set-based consumers (the solvers' tree
   extraction, the classifier on small per-component slices) force the
   set view only if and when they run. *)
type t = {
  nl : int;
  nr : int;
  mutable gset : Ugraph.t option;
  mutable gcsr : Csr.t option;
}

type side = V1 | V2
type node = L of int | R of int

let ugraph g =
  match g.gset with
  | Some u -> u
  | None -> (
    match g.gcsr with
    | Some c ->
      let u = Csr.to_ugraph c in
      g.gset <- Some u;
      u
    | None -> assert false)

let csr g =
  match g.gcsr with
  | Some c -> c
  | None -> (
    match g.gset with
    | Some u ->
      let c = Csr.of_ugraph u in
      g.gcsr <- Some c;
      c
    | None -> assert false)

let of_set ~nl ~nr u = { nl; nr; gset = Some u; gcsr = None }

let create ~nl ~nr =
  if nl < 0 || nr < 0 then invalid_arg "Bigraph.create";
  of_set ~nl ~nr (Ugraph.create (nl + nr))

let check_left g i =
  if i < 0 || i >= g.nl then invalid_arg "Bigraph: left index out of range"

let check_right g j =
  if j < 0 || j >= g.nr then invalid_arg "Bigraph: right index out of range"

let add_edge g i j =
  check_left g i;
  check_right g j;
  of_set ~nl:g.nl ~nr:g.nr (Ugraph.add_edge (ugraph g) i (g.nl + j))

let of_edges ~nl ~nr edges =
  if nl < 0 || nr < 0 then invalid_arg "Bigraph.of_edges";
  let b = Ugraph.Builder.create (nl + nr) in
  List.iter
    (fun (i, j) ->
      if i < 0 || i >= nl then invalid_arg "Bigraph: left index out of range";
      if j < 0 || j >= nr then invalid_arg "Bigraph: right index out of range";
      Ugraph.Builder.add_edge b i (nl + j))
    edges;
  of_set ~nl ~nr (Ugraph.Builder.build b)

let of_edge_iter ~nl ~nr iter =
  if nl < 0 || nr < 0 then invalid_arg "Bigraph.of_edge_iter";
  let c =
    Csr.of_edge_iter ~n:(nl + nr) (fun f ->
        iter (fun i j ->
            if i < 0 || i >= nl then
              invalid_arg "Bigraph: left index out of range";
            if j < 0 || j >= nr then
              invalid_arg "Bigraph: right index out of range";
            f i (nl + j)))
  in
  { nl; nr; gset = None; gcsr = Some c }

let of_csr ~nl ~nr c =
  if nl < 0 || nr < 0 then invalid_arg "Bigraph.of_csr";
  if Csr.n c <> nl + nr then invalid_arg "Bigraph.of_csr: size mismatch";
  for u = 0 to nl - 1 do
    Csr.iter_neighbors c u (fun v ->
        if v < nl then invalid_arg "Bigraph.of_csr: left-left edge")
  done;
  for v = nl to nl + nr - 1 do
    Csr.iter_neighbors c v (fun w ->
        if w >= nl then invalid_arg "Bigraph.of_csr: right-right edge")
  done;
  { nl; nr; gset = None; gcsr = Some c }

let of_bipartite_ugraph ~nl u =
  let n = Ugraph.n u in
  if nl < 0 || nl > n then invalid_arg "Bigraph.of_bipartite_ugraph";
  Ugraph.fold_edges
    (fun x y () ->
      if (x < nl) = (y < nl) then
        invalid_arg "Bigraph.of_bipartite_ugraph: edge within one side")
    u ();
  of_set ~nl ~nr:(n - nl) u

let remove_edge g i j =
  check_left g i;
  check_right g j;
  of_set ~nl:g.nl ~nr:g.nr (Ugraph.remove_edge (ugraph g) i (g.nl + j))

let nl g = g.nl
let nr g = g.nr
let n g = g.nl + g.nr

let m g =
  match g.gcsr with Some c -> Csr.m c | None -> Ugraph.m (ugraph g)

(* Canonical marshal form: keep only the CSR (its arrays are identical
   for any construction of the same graph, unlike AVL shapes), so
   serialized plans are byte-reproducible whatever mix of caches the
   live value accumulated. *)
let compact g = { nl = g.nl; nr = g.nr; gset = None; gcsr = Some (csr g) }

let index g = function
  | L i ->
    check_left g i;
    i
  | R j ->
    check_right g j;
    g.nl + j

let node_of_index g v =
  if v < 0 || v >= g.nl + g.nr then invalid_arg "Bigraph.node_of_index";
  if v < g.nl then L v else R (v - g.nl)

let side_of_index g v =
  match node_of_index g v with L _ -> V1 | R _ -> V2

let left_nodes g = Iset.range g.nl

let right_nodes g =
  Iset.of_list (List.init g.nr (fun j -> g.nl + j))

let nodes_of_side g = function V1 -> left_nodes g | V2 -> right_nodes g

let mem_edge g i j =
  check_left g i;
  check_right g j;
  match g.gcsr with
  | Some c -> Csr.mem_edge c i (g.nl + j)
  | None -> Ugraph.mem_edge (ugraph g) i (g.nl + j)

(* Per-node set access goes to whichever view is already cached: when
   only the CSR exists, one sorted row becomes one small set instead of
   forcing the whole set view. *)
let neighbors_underlying g v =
  match g.gset with
  | Some u -> Ugraph.neighbors u v
  | None -> Iset.of_list (Array.to_list (Csr.sorted_neighbors (csr g) v))

let right_neighbors g i =
  check_left g i;
  Iset.map (fun v -> v - g.nl) (neighbors_underlying g i)

let left_neighbors g j =
  check_right g j;
  neighbors_underlying g (g.nl + j)

let iter_edges g f =
  match g.gcsr with
  | Some c ->
    for i = 0 to g.nl - 1 do
      Csr.iter_neighbors c i (fun v -> f i (v - g.nl))
    done
  | None ->
    let u = ugraph g in
    for i = 0 to g.nl - 1 do
      Iset.iter (fun v -> f i (v - g.nl)) (Ugraph.neighbors u i)
    done

let edges g =
  let acc = ref [] in
  iter_edges g (fun i j -> acc := (i, j) :: !acc);
  List.rev !acc

let rebuild ~nl ~nr ~old_edges ~extra =
  (* Builder pass over the remapped edge list: O(n + m), the price of
     keeping the graph value immutable.  [old_edges] yields surviving
     edges of the old graph already remapped to the new index space,
     as underlying-index pairs. *)
  let b = Ugraph.Builder.create (nl + nr) in
  List.iter (fun (x, y) -> Ugraph.Builder.add_edge b x y) old_edges;
  List.iter (fun (x, y) -> Ugraph.Builder.add_edge b x y) extra;
  of_set ~nl ~nr (Ugraph.Builder.build b)

let add_relation g attrs =
  Iset.iter (fun i -> check_left g i) attrs;
  (* Rights live at the top of the index space, so a fresh relation
     appends at underlying index [nl + nr]: no existing index moves. *)
  let v = g.nl + g.nr in
  rebuild ~nl:g.nl ~nr:(g.nr + 1)
    ~old_edges:(Ugraph.edges (ugraph g))
    ~extra:(List.map (fun i -> (i, v)) (Iset.elements attrs))

let remove_relation g j =
  check_right g j;
  let v = g.nl + j in
  (* Underlying indices above [v] shift down by one; for the last
     relation ([j = nr - 1]) the remap is the identity. *)
  let remap x = if x > v then x - 1 else x in
  let old_edges =
    List.filter_map
      (fun (x, y) ->
        if x = v || y = v then None else Some (remap x, remap y))
      (Ugraph.edges (ugraph g))
  in
  rebuild ~nl:g.nl ~nr:(g.nr - 1) ~old_edges ~extra:[]

let induced g w =
  (* Renumbering is ascending, exactly as [Ugraph.induced]: every left
     index precedes every right index, so the result is again in
     bipartite layout with members below [nl] as the new lefts. The
     extraction runs over the CSR rows, so slicing one component out of
     a million-node schema costs the component, not the graph. *)
  let c = csr g in
  let ids = Array.of_list (Iset.elements w) in
  let k = Array.length ids in
  let back = Hashtbl.create (max k 1) in
  Array.iteri (fun i v -> Hashtbl.replace back v i) ids;
  let nl' =
    let acc = ref 0 in
    Array.iter (fun v -> if v < g.nl then incr acc) ids;
    !acc
  in
  let sub =
    Csr.of_edge_iter ~n:k (fun f ->
        Array.iteri
          (fun i v ->
            Csr.iter_neighbors c v (fun u ->
                match Hashtbl.find_opt back u with
                | Some j when i < j -> f i j
                | Some _ | None -> ()))
          ids)
  in
  ({ nl = nl'; nr = k - nl'; gset = None; gcsr = Some sub }, ids)

let flip g =
  let b = Ugraph.Builder.create (g.nl + g.nr) in
  iter_edges g (fun i j -> Ugraph.Builder.add_edge b (g.nr + i) j);
  of_set ~nl:g.nr ~nr:g.nl (Ugraph.Builder.build b)

let of_ugraph u =
  let n = Ugraph.n u in
  let color = Array.make n (-1) in
  let ok = ref true in
  let bfs s =
    color.(s) <- 0;
    let q = Queue.create () in
    Queue.add s q;
    while not (Queue.is_empty q) do
      let x = Queue.pop q in
      Iset.iter
        (fun y ->
          if color.(y) = -1 then begin
            color.(y) <- 1 - color.(x);
            Queue.add y q
          end
          else if color.(y) = color.(x) then ok := false)
        (Ugraph.neighbors u x)
    done
  in
  for s = 0 to n - 1 do
    if color.(s) = -1 then
      if Iset.is_empty (Ugraph.neighbors u s) then color.(s) <- 0 else bfs s
  done;
  if not !ok then None
  else begin
    let mapping = Array.make n (L 0) in
    let next_l = ref 0 and next_r = ref 0 in
    for v = 0 to n - 1 do
      if color.(v) = 0 then begin
        mapping.(v) <- L !next_l;
        incr next_l
      end
      else begin
        mapping.(v) <- R !next_r;
        incr next_r
      end
    done;
    let b = Ugraph.Builder.create (!next_l + !next_r) in
    List.iter
      (fun (x, y) ->
        match (mapping.(x), mapping.(y)) with
        | L i, R j | R j, L i -> Ugraph.Builder.add_edge b i (!next_l + j)
        | L _, L _ | R _, R _ -> assert false)
      (Ugraph.edges u);
    Some (of_set ~nl:!next_l ~nr:!next_r (Ugraph.Builder.build b), mapping)
  end

let is_connected g = Traverse.is_connected (ugraph g)

(* CSR arrays are canonical per graph, so comparing them is structural
   graph equality regardless of which representation either side was
   built from or what shape its AVL cache has. *)
let equal a b = a.nl = b.nl && a.nr = b.nr && Csr.equal (csr a) (csr b)

let pp_node ppf = function
  | L i -> Format.fprintf ppf "L%d" i
  | R j -> Format.fprintf ppf "R%d" j

let pp ppf g =
  Format.fprintf ppf "@[<v>bipartite %d+%d nodes, %d edges" g.nl g.nr (m g);
  List.iter (fun (i, j) -> Format.fprintf ppf "@,  L%d -- R%d" i j) (edges g);
  Format.fprintf ppf "@]"
