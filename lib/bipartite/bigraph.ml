open Graphs

type t = { nl : int; nr : int; g : Ugraph.t }
type side = V1 | V2
type node = L of int | R of int

let create ~nl ~nr =
  if nl < 0 || nr < 0 then invalid_arg "Bigraph.create";
  { nl; nr; g = Ugraph.create (nl + nr) }

let check_left g i =
  if i < 0 || i >= g.nl then invalid_arg "Bigraph: left index out of range"

let check_right g j =
  if j < 0 || j >= g.nr then invalid_arg "Bigraph: right index out of range"

let add_edge g i j =
  check_left g i;
  check_right g j;
  { g with g = Ugraph.add_edge g.g i (g.nl + j) }

let of_edges ~nl ~nr edges =
  List.fold_left (fun g (i, j) -> add_edge g i j) (create ~nl ~nr) edges

let remove_edge g i j =
  check_left g i;
  check_right g j;
  { g with g = Ugraph.remove_edge g.g i (g.nl + j) }

let nl g = g.nl
let nr g = g.nr
let n g = g.nl + g.nr
let m g = Ugraph.m g.g
let ugraph g = g.g

let index g = function
  | L i ->
    check_left g i;
    i
  | R j ->
    check_right g j;
    g.nl + j

let node_of_index g v =
  if v < 0 || v >= g.nl + g.nr then invalid_arg "Bigraph.node_of_index";
  if v < g.nl then L v else R (v - g.nl)

let side_of_index g v =
  match node_of_index g v with L _ -> V1 | R _ -> V2

let left_nodes g = Iset.range g.nl

let right_nodes g =
  Iset.of_list (List.init g.nr (fun j -> g.nl + j))

let nodes_of_side g = function V1 -> left_nodes g | V2 -> right_nodes g

let mem_edge g i j =
  check_left g i;
  check_right g j;
  Ugraph.mem_edge g.g i (g.nl + j)

let right_neighbors g i =
  check_left g i;
  Iset.map (fun v -> v - g.nl) (Ugraph.neighbors g.g i)

let left_neighbors g j =
  check_right g j;
  Ugraph.neighbors g.g (g.nl + j)

let edges g =
  List.filter_map
    (fun (u, v) -> if u < g.nl then Some (u, v - g.nl) else None)
    (Ugraph.edges g.g)

let rebuild ~nl ~nr ~old_edges ~extra =
  (* Builder pass over the remapped edge list: O(n + m), the price of
     keeping Ugraph immutable.  [old_edges] yields surviving edges of
     the old graph already remapped to the new index space. *)
  let b = Ugraph.Builder.create (nl + nr) in
  List.iter (fun (x, y) -> Ugraph.Builder.add_edge b x y) old_edges;
  List.iter (fun (x, y) -> Ugraph.Builder.add_edge b x y) extra;
  { nl; nr; g = Ugraph.Builder.build b }

let add_relation g attrs =
  Iset.iter (fun i -> check_left g i) attrs;
  (* Rights live at the top of the index space, so a fresh relation
     appends at underlying index [nl + nr]: no existing index moves. *)
  let v = g.nl + g.nr in
  rebuild ~nl:g.nl ~nr:(g.nr + 1)
    ~old_edges:(Ugraph.edges g.g)
    ~extra:(List.map (fun i -> (i, v)) (Iset.elements attrs))

let remove_relation g j =
  check_right g j;
  let v = g.nl + j in
  (* Underlying indices above [v] shift down by one; for the last
     relation ([j = nr - 1]) the remap is the identity. *)
  let remap x = if x > v then x - 1 else x in
  let old_edges =
    List.filter_map
      (fun (x, y) ->
        if x = v || y = v then None else Some (remap x, remap y))
      (Ugraph.edges g.g)
  in
  rebuild ~nl:g.nl ~nr:(g.nr - 1) ~old_edges ~extra:[]

let induced g w =
  (* Ugraph.induced renumbers in ascending order, and every left index
     precedes every right index, so the result is again in bipartite
     layout: members below [nl] become the new lefts. *)
  let sub, ids = Ugraph.induced g.g w in
  let nl' = Iset.cardinal (Iset.filter (fun v -> v < g.nl) w) in
  ({ nl = nl'; nr = Iset.cardinal w - nl'; g = sub }, ids)

let flip g =
  let b = Ugraph.Builder.create (g.nl + g.nr) in
  List.iter
    (fun (i, j) -> Ugraph.Builder.add_edge b (g.nr + i) j)
    (edges g);
  { nl = g.nr; nr = g.nl; g = Ugraph.Builder.build b }

let of_ugraph u =
  let n = Ugraph.n u in
  let color = Array.make n (-1) in
  let ok = ref true in
  let bfs s =
    color.(s) <- 0;
    let q = Queue.create () in
    Queue.add s q;
    while not (Queue.is_empty q) do
      let x = Queue.pop q in
      Iset.iter
        (fun y ->
          if color.(y) = -1 then begin
            color.(y) <- 1 - color.(x);
            Queue.add y q
          end
          else if color.(y) = color.(x) then ok := false)
        (Ugraph.neighbors u x)
    done
  in
  for s = 0 to n - 1 do
    if color.(s) = -1 then
      if Iset.is_empty (Ugraph.neighbors u s) then color.(s) <- 0 else bfs s
  done;
  if not !ok then None
  else begin
    let mapping = Array.make n (L 0) in
    let next_l = ref 0 and next_r = ref 0 in
    for v = 0 to n - 1 do
      if color.(v) = 0 then begin
        mapping.(v) <- L !next_l;
        incr next_l
      end
      else begin
        mapping.(v) <- R !next_r;
        incr next_r
      end
    done;
    let g = ref (create ~nl:!next_l ~nr:!next_r) in
    List.iter
      (fun (x, y) ->
        match (mapping.(x), mapping.(y)) with
        | L i, R j | R j, L i -> g := add_edge !g i j
        | L _, L _ | R _, R _ -> assert false)
      (Ugraph.edges u);
    Some (!g, mapping)
  end

let is_connected g = Traverse.is_connected g.g

let equal a b = a.nl = b.nl && a.nr = b.nr && Ugraph.equal a.g b.g

let pp_node ppf = function
  | L i -> Format.fprintf ppf "L%d" i
  | R j -> Format.fprintf ppf "R%d" j

let pp ppf g =
  Format.fprintf ppf "@[<v>bipartite %d+%d nodes, %d edges" g.nl g.nr (m g);
  List.iter (fun (i, j) -> Format.fprintf ppf "@,  L%d -- R%d" i j) (edges g);
  Format.fprintf ppf "@]"
