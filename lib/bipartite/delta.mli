(** Typed schema deltas — the mutation API of the bipartite scheme.

    Live conceptual schemas evolve: attributes gain and lose
    memberships, relations appear and disappear. A delta is one such
    edit, expressed against the current index space of the graph it is
    applied to:

    - [Add_edge (i, j)] / [Remove_edge (i, j)]: connect or disconnect
      left (attribute) index [i] and right (relation) index [j].
    - [Add_relation attrs]: append a fresh relation over the given left
      indices; it receives right index [nr g] — no existing index
      moves.
    - [Remove_relation j]: delete relation [j] and its edges; right
      indices above [j] shift down by one.

    Applying a delta is index-validated and total otherwise; re-adding
    a present edge or removing an absent one is a {e no-op} that
    returns the input graph physically unchanged, which is what lets
    {!Engine.Compiled.apply_delta} prove that no component was dirtied.

    A delta {e journal} (the ordered list of ops applied since some
    base schema) has a canonical digest, {!journal_hash}, which the
    plan cache stamps into evolved entries so a patched plan can never
    be mistaken for the fresh compile of its base schema. *)

open Graphs

type op =
  | Add_edge of int * int
  | Remove_edge of int * int
  | Add_relation of Iset.t
  | Remove_relation of int

val apply : Bigraph.t -> op -> (Bigraph.t, string) result
(** Validate indices and apply. No-ops return the graph physically
    unchanged ([==]); [Error] messages name the op and the offending
    index. *)

val apply_all : Bigraph.t -> op list -> (Bigraph.t, string) result
(** Left fold of {!apply}; the error message is prefixed with the
    1-based position of the failing delta. *)

val to_string : op -> string
(** Canonical rendering ([+edge 0 2], [-relation 1], ...); the journal
    digest is computed over these lines. *)

val fresh_journal : string
(** The distinguished journal hash (["-"]) of the empty delta list —
    what fresh (non-evolved) plan-cache entries carry. *)

val journal_hash : op list -> string
(** Hex digest of the canonical renderings, one per line;
    {!fresh_journal} for the empty list. Two delta sequences hash
    equally iff they are the same ops in the same order. *)

val pp : Format.formatter -> op -> unit
