open Graphs

type op =
  | Add_edge of int * int
  | Remove_edge of int * int
  | Add_relation of Iset.t
  | Remove_relation of int

let to_string = function
  | Add_edge (i, j) -> Printf.sprintf "+edge %d %d" i j
  | Remove_edge (i, j) -> Printf.sprintf "-edge %d %d" i j
  | Add_relation attrs ->
    let b = Buffer.create 32 in
    Buffer.add_string b "+relation";
    Iset.iter (fun i -> Printf.bprintf b " %d" i) attrs;
    Buffer.contents b
  | Remove_relation j -> Printf.sprintf "-relation %d" j

let pp ppf op = Format.pp_print_string ppf (to_string op)

let check_left g i what =
  if i < 0 || i >= Bigraph.nl g then
    Error (Printf.sprintf "%s: left index %d out of range [0, %d)" what i
             (Bigraph.nl g))
  else Ok ()

let check_right g j what =
  if j < 0 || j >= Bigraph.nr g then
    Error (Printf.sprintf "%s: right index %d out of range [0, %d)" what j
             (Bigraph.nr g))
  else Ok ()

let ( let* ) = Result.bind

(* The no-op cases (re-adding a present edge, removing an absent one)
   return [g] itself — physical equality is the signal [apply_delta]
   uses to skip recompilation entirely, so it must never be diluted by
   an equal-but-fresh record. *)
let apply g op =
  match op with
  | Add_edge (i, j) ->
    let* () = check_left g i "+edge" in
    let* () = check_right g j "+edge" in
    if Bigraph.mem_edge g i j then Ok g else Ok (Bigraph.add_edge g i j)
  | Remove_edge (i, j) ->
    let* () = check_left g i "-edge" in
    let* () = check_right g j "-edge" in
    if Bigraph.mem_edge g i j then Ok (Bigraph.remove_edge g i j) else Ok g
  | Add_relation attrs ->
    let* () =
      Iset.fold
        (fun i acc ->
          let* () = acc in
          check_left g i "+relation")
        attrs (Ok ())
    in
    Ok (Bigraph.add_relation g attrs)
  | Remove_relation j ->
    let* () = check_right g j "-relation" in
    Ok (Bigraph.remove_relation g j)

let apply_all g ops =
  let rec go g k = function
    | [] -> Ok g
    | op :: rest -> (
      match apply g op with
      | Ok g' -> go g' (k + 1) rest
      | Error msg -> Error (Printf.sprintf "delta %d (%s): %s" k (to_string op) msg))
  in
  go g 1 ops

let fresh_journal = "-"

let journal_hash = function
  | [] -> fresh_journal
  | ops ->
    let b = Buffer.create 256 in
    List.iter
      (fun op ->
        Buffer.add_string b (to_string op);
        Buffer.add_char b '\n')
      ops;
    Digest.to_hex (Digest.string (Buffer.contents b))
