(** One-stop classification of a bipartite graph against every class the
    paper studies, plus the solver recommendation that Section 3
    justifies. *)

open Hypergraphs

type profile = {
  chordal_41 : bool;  (** (4,1)-chordal, i.e. a forest *)
  chordal_62 : bool;  (** (6,2)-chordal, i.e. H¹ γ-acyclic *)
  chordal_61 : bool;  (** (6,1)-chordal, i.e. H¹ β-acyclic *)
  v2_chordal : bool;
  v2_conformal : bool;
  v1_chordal : bool;
  v1_conformal : bool;
  alpha_h1 : bool;  (** = v2_chordal && v2_conformal (Theorem 1 (v)) *)
  alpha_h2 : bool;
  degree_h1 : Acyclicity.degree;
  degree_h2 : Acyclicity.degree;
}

(** What Section 3 licenses on this graph. *)
type recommendation =
  | Steiner_polynomial
      (** (6,2)-chordal: Algorithm 2 solves full Steiner exactly
          (Theorem 5). *)
  | Pseudo_steiner_v2
      (** α-acyclic H¹ only: Algorithm 1 minimises V₂ nodes (Theorem 4);
          full Steiner is NP-hard here (Theorem 2). *)
  | Pseudo_steiner_v1
      (** α-acyclic H² only: Algorithm 1 on the flipped graph. *)
  | Pseudo_steiner_both
      (** both sides α-acyclic but not (6,2)-chordal. *)
  | Exact_search_only
      (** no structure: fall back to exponential exact search or the
          MST approximation. *)

val profile :
  ?pool:Parallel.Pool.t -> ?trace:Observe.Trace.t -> Bigraph.t -> profile
(** The witness hypergraphs H¹/H² and their two-sections are built
    once and shared by every recognizer. [pool] (default: run inline)
    fans the independent per-side checks out as parallel tasks; the
    resulting profile is identical for any pool size. [trace] (default
    disabled) records a ["classify"] span with one child span per
    recognizer and the headline chordality verdicts as attributes;
    under a pool the child spans are recorded in per-task forks and
    merged back in task order, so the trace shape is deterministic
    too. *)

val neutral : profile
(** The profile of the empty graph — identity of {!combine}: every
    check true, both degrees Berge-acyclic. *)

val combine : profile array -> profile
(** Conjunction of per-component profiles: booleans combine by [&&],
    degrees by worst level. Because every recognizer the profile runs
    is component-local, [combine] over the profiles of the induced
    connected components equals the whole-graph profile — the
    decomposition {!Engine.Compiled.apply_delta} exploits to re-profile
    only the components a schema delta touches (pinned by the
    differential suite in test/test_evolve.ml). *)

val recommend : profile -> recommendation

val recommendation_name : recommendation -> string

val theorem1_consistent : profile -> bool
(** Internal consistency demanded by Theorem 1 and Corollary 2:
    [chordal_61 = beta(H¹)] implies both-side chordality+conformity,
    [alpha_h1 = v2_chordal && v2_conformal], etc. The test suite and the
    benchmark harness evaluate this on every generated graph. *)

val pp_profile : Format.formatter -> profile -> unit
