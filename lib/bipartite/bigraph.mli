(** Bipartite graphs [G = (V1, V2, A)] (Definition 1).

    Left nodes ([V1], indices [0 .. nl-1]) model the paper's attribute /
    lower conceptual level; right nodes ([V2], indices [0 .. nr-1])
    model relations / higher level. Internally the graph is a plain
    {!Graphs.Ugraph.t} on [nl + nr] nodes with right node [j] stored at
    index [nl + j], so every generic graph algorithm applies directly;
    this module maintains the bipartition invariant and provides typed
    access. *)

open Graphs

type t

type side = V1 | V2

(** A typed node: [L i] is the [i]-th left node, [R j] the [j]-th right
    node. *)
type node = L of int | R of int

val create : nl:int -> nr:int -> t

val of_edges : nl:int -> nr:int -> (int * int) list -> t
(** Edges as (left index, right index) pairs. *)

val add_edge : t -> int -> int -> t
(** [add_edge g i j] connects left [i] and right [j]. *)

val remove_edge : t -> int -> int -> t
(** [remove_edge g i j] disconnects left [i] and right [j]; a no-op
    when the edge is absent. *)

val add_relation : t -> Iset.t -> t
(** [add_relation g attrs] appends a fresh right node connected to the
    given left indices. The new relation gets right index [nr g]
    (underlying index [n g]); no existing index moves. O(n + m). *)

val remove_relation : t -> int -> t
(** [remove_relation g j] deletes right node [j] and its incident
    edges. Right indices above [j] (and their underlying indices)
    shift down by one; removing the last relation ([j = nr - 1])
    leaves every surviving index unchanged. O(n + m). *)

val induced : t -> Iset.t -> t * int array
(** [induced g w] materialises the sub-bigraph induced by a set of
    underlying indices, renumbering ascending as {!Graphs.Ugraph.induced}
    does — members below [nl g] become the new lefts, the rest the new
    rights. Returns the mapping from new underlying indices back to the
    originals. *)

val nl : t -> int
val nr : t -> int
val n : t -> int
val m : t -> int

val ugraph : t -> Ugraph.t
(** The underlying graph; left node [i] is index [i], right node [j] is
    index [nl + j]. *)

val index : t -> node -> int
val node_of_index : t -> int -> node
val side_of_index : t -> int -> side

val left_nodes : t -> Iset.t
(** As underlying indices. *)

val right_nodes : t -> Iset.t
(** As underlying indices ([nl .. nl+nr-1]). *)

val nodes_of_side : t -> side -> Iset.t

val mem_edge : t -> int -> int -> bool
(** [mem_edge g i j]: left [i] adjacent to right [j]? *)

val right_neighbors : t -> int -> Iset.t
(** [right_neighbors g i]: right {e indices} (not underlying indices)
    adjacent to left node [i]. *)

val left_neighbors : t -> int -> Iset.t
(** [left_neighbors g j]: left indices adjacent to right node [j]. *)

val edges : t -> (int * int) list
(** As (left index, right index) pairs. *)

val flip : t -> t
(** Swap the two sides. *)

val of_ugraph : Ugraph.t -> (t * node array) option
(** 2-colour a graph: [Some (bg, mapping)] when bipartite, where
    [mapping.(v)] tells where underlying node [v] of the input went.
    Isolated nodes are placed on the left. *)

val is_connected : t -> bool

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

val pp_node : Format.formatter -> node -> unit
