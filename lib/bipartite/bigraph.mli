(** Bipartite graphs [G = (V1, V2, A)] (Definition 1).

    Left nodes ([V1], indices [0 .. nl-1]) model the paper's attribute /
    lower conceptual level; right nodes ([V2], indices [0 .. nr-1])
    model relations / higher level. Internally the graph lives on
    [nl + nr] underlying nodes with right node [j] stored at index
    [nl + j], in {e either} adjacency form: the set-based
    {!Graphs.Ugraph.t} or the flat {!Graphs.Csr.t}. Whichever form a
    constructor produced is kept; the other is derived lazily on first
    use and cached (the caches are invisible: every function is pure on
    the graph value). Stream construction ([of_edge_iter], [of_csr])
    therefore never materialises per-node sets — the million-node fast
    path — while set-based consumers still get [ugraph] on demand.
    This module maintains the bipartition invariant and provides typed
    access. *)

open Graphs

type t

type side = V1 | V2

(** A typed node: [L i] is the [i]-th left node, [R j] the [j]-th right
    node. *)
type node = L of int | R of int

val create : nl:int -> nr:int -> t

val of_edges : nl:int -> nr:int -> (int * int) list -> t
(** Edges as (left index, right index) pairs. Builder-based (linear in
    n + m); kept as the convenient API for small callers. *)

val of_edge_iter : nl:int -> nr:int -> ((int -> int -> unit) -> unit) -> t
(** Direct-to-CSR stream construction: [iter f] calls [f i j] once per
    (left, right) edge occurrence and must replay identically when
    invoked twice (see [Csr.of_edge_iter]). Duplicates and arbitrary
    order are fine; no set-based adjacency is ever built. *)

val of_csr : nl:int -> nr:int -> Csr.t -> t
(** Adopt a prebuilt CSR on [nl + nr] underlying nodes. Validates the
    bipartition in O(m): every edge must cross the [nl] boundary. *)

val of_bipartite_ugraph : nl:int -> Ugraph.t -> t
(** Adopt a set-based graph already in bipartite layout (lefts below
    [nl], rights above). Validates that every edge crosses the
    boundary; [nr] is [Ugraph.n u - nl]. *)

val compact : t -> t
(** A canonical CSR-only copy: the set-based cache (whose AVL shape
    depends on construction history) is dropped, so marshaling the
    result is byte-reproducible for equal graphs. Used by the plan
    serializer. *)

val add_edge : t -> int -> int -> t
(** [add_edge g i j] connects left [i] and right [j]. *)

val remove_edge : t -> int -> int -> t
(** [remove_edge g i j] disconnects left [i] and right [j]; a no-op
    when the edge is absent. *)

val add_relation : t -> Iset.t -> t
(** [add_relation g attrs] appends a fresh right node connected to the
    given left indices. The new relation gets right index [nr g]
    (underlying index [n g]); no existing index moves. O(n + m). *)

val remove_relation : t -> int -> t
(** [remove_relation g j] deletes right node [j] and its incident
    edges. Right indices above [j] (and their underlying indices)
    shift down by one; removing the last relation ([j = nr - 1])
    leaves every surviving index unchanged. O(n + m). *)

val induced : t -> Iset.t -> t * int array
(** [induced g w] materialises the sub-bigraph induced by a set of
    underlying indices, renumbering ascending as {!Graphs.Ugraph.induced}
    does — members below [nl g] become the new lefts, the rest the new
    rights. Returns the mapping from new underlying indices back to the
    originals. *)

val nl : t -> int
val nr : t -> int
val n : t -> int
val m : t -> int

val ugraph : t -> Ugraph.t
(** The underlying set-based graph; left node [i] is index [i], right
    node [j] is index [nl + j]. Derived from the CSR (linearly) and
    cached on first call when the graph was stream-built. *)

val csr : t -> Csr.t
(** The underlying flat adjacency, same index layout. Derived and
    cached on first call when the graph was set-built. *)

val index : t -> node -> int
val node_of_index : t -> int -> node
val side_of_index : t -> int -> side

val left_nodes : t -> Iset.t
(** As underlying indices. *)

val right_nodes : t -> Iset.t
(** As underlying indices ([nl .. nl+nr-1]). *)

val nodes_of_side : t -> side -> Iset.t

val mem_edge : t -> int -> int -> bool
(** [mem_edge g i j]: left [i] adjacent to right [j]? *)

val right_neighbors : t -> int -> Iset.t
(** [right_neighbors g i]: right {e indices} (not underlying indices)
    adjacent to left node [i]. *)

val left_neighbors : t -> int -> Iset.t
(** [left_neighbors g j]: left indices adjacent to right node [j]. *)

val edges : t -> (int * int) list
(** As (left index, right index) pairs, ascending by left then right. *)

val iter_edges : t -> (int -> int -> unit) -> unit
(** Same edges and order as {!edges} without building the list —
    the million-edge-friendly form (schema hashing, streaming). *)

val flip : t -> t
(** Swap the two sides. *)

val of_ugraph : Ugraph.t -> (t * node array) option
(** 2-colour a graph: [Some (bg, mapping)] when bipartite, where
    [mapping.(v)] tells where underlying node [v] of the input went.
    Isolated nodes are placed on the left. *)

val is_connected : t -> bool

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

val pp_node : Format.formatter -> node -> unit
