open Hypergraphs

type profile = {
  chordal_41 : bool;
  chordal_62 : bool;
  chordal_61 : bool;
  v2_chordal : bool;
  v2_conformal : bool;
  v1_chordal : bool;
  v1_conformal : bool;
  alpha_h1 : bool;
  alpha_h2 : bool;
  degree_h1 : Acyclicity.degree;
  degree_h2 : Acyclicity.degree;
}

type recommendation =
  | Steiner_polynomial
  | Pseudo_steiner_v2
  | Pseudo_steiner_v1
  | Pseudo_steiner_both
  | Exact_search_only

let profile ?(trace = Observe.Trace.disabled) g =
  let sp name f = Observe.Trace.span trace name f in
  Observe.Trace.span trace "classify"
    ~attrs:
      [
        ("nl", Observe.Trace.Int (Bigraph.nl g));
        ("nr", Observe.Trace.Int (Bigraph.nr g));
      ]
    (fun () ->
      let h1 = Side_properties.hypergraph_of_witness_side g Bigraph.V2 in
      let h2 = Side_properties.hypergraph_of_witness_side g Bigraph.V1 in
      let chordal_41 = sp "classify.chordal_41" (fun () -> Mn_chordality.is_41_chordal g) in
      let chordal_62 = sp "classify.chordal_62" (fun () -> Mn_chordality.is_62_chordal g) in
      let chordal_61 = sp "classify.chordal_61" (fun () -> Mn_chordality.is_61_chordal g) in
      let side =
        sp "classify.sides" (fun () ->
            ( Side_properties.chordal g Bigraph.V2,
              Side_properties.conformal g Bigraph.V2,
              Side_properties.chordal g Bigraph.V1,
              Side_properties.conformal g Bigraph.V1 ))
      in
      let v2_chordal, v2_conformal, v1_chordal, v1_conformal = side in
      let alpha_h1, alpha_h2 =
        sp "classify.alpha" (fun () ->
            (Gyo.alpha_acyclic h1, Gyo.alpha_acyclic h2))
      in
      let degree_h1, degree_h2 =
        sp "classify.degree" (fun () ->
            (Acyclicity.degree h1, Acyclicity.degree h2))
      in
      Observe.Trace.add_attr trace "chordal_41" (Observe.Trace.Bool chordal_41);
      Observe.Trace.add_attr trace "chordal_62" (Observe.Trace.Bool chordal_62);
      Observe.Trace.add_attr trace "chordal_61" (Observe.Trace.Bool chordal_61);
      {
        chordal_41;
        chordal_62;
        chordal_61;
        v2_chordal;
        v2_conformal;
        v1_chordal;
        v1_conformal;
        alpha_h1;
        alpha_h2;
        degree_h1;
        degree_h2;
      })

let recommend p =
  if p.chordal_62 then Steiner_polynomial
  else
    match (p.alpha_h1, p.alpha_h2) with
    | true, true -> Pseudo_steiner_both
    | true, false -> Pseudo_steiner_v2
    | false, true -> Pseudo_steiner_v1
    | false, false -> Exact_search_only

let recommendation_name = function
  | Steiner_polynomial -> "Steiner solvable in P (Algorithm 2, Theorem 5)"
  | Pseudo_steiner_v2 -> "pseudo-Steiner w.r.t. V2 in P (Algorithm 1, Theorem 4)"
  | Pseudo_steiner_v1 -> "pseudo-Steiner w.r.t. V1 in P (Algorithm 1, flipped)"
  | Pseudo_steiner_both -> "pseudo-Steiner w.r.t. either side in P (Algorithm 1)"
  | Exact_search_only -> "no chordality structure: exact search / approximation"

let theorem1_consistent p =
  (* Theorem 1 (v)/(vi). *)
  p.alpha_h1 = (p.v2_chordal && p.v2_conformal)
  && p.alpha_h2 = (p.v1_chordal && p.v1_conformal)
  (* Hierarchy along (4,1) ⊆ (6,2) ⊆ (6,1). *)
  && ((not p.chordal_41) || p.chordal_62)
  && ((not p.chordal_62) || p.chordal_61)
  (* Corollary 2: (6,1)-chordal implies chordal+conformal on both sides. *)
  && ((not p.chordal_61) || (p.alpha_h1 && p.alpha_h2))

let pp_profile ppf p =
  let b = function true -> "yes" | false -> "no" in
  Format.fprintf ppf
    "@[<v>(4,1)-chordal (forest):      %s@,\
     (6,2)-chordal (gamma):       %s@,\
     (6,1)-chordal (beta):        %s@,\
     V2-chordal / V2-conformal:   %s / %s@,\
     V1-chordal / V1-conformal:   %s / %s@,\
     H1 degree: %s@,\
     H2 degree: %s@]"
    (b p.chordal_41) (b p.chordal_62) (b p.chordal_61) (b p.v2_chordal)
    (b p.v2_conformal) (b p.v1_chordal) (b p.v1_conformal)
    (Acyclicity.degree_name p.degree_h1)
    (Acyclicity.degree_name p.degree_h2)
