open Hypergraphs

type profile = {
  chordal_41 : bool;
  chordal_62 : bool;
  chordal_61 : bool;
  v2_chordal : bool;
  v2_conformal : bool;
  v1_chordal : bool;
  v1_conformal : bool;
  alpha_h1 : bool;
  alpha_h2 : bool;
  degree_h1 : Acyclicity.degree;
  degree_h2 : Acyclicity.degree;
}

type recommendation =
  | Steiner_polynomial
  | Pseudo_steiner_v2
  | Pseudo_steiner_v1
  | Pseudo_steiner_both
  | Exact_search_only

(* The recognizer families all consume the witness hypergraphs H¹/H²
   (or their two-sections), so those are materialised exactly once and
   shared by every check; the old path rebuilt H¹ five times per
   profile and re-ran the γ/β recognizers inside [Acyclicity.degree].
   The checks themselves are independent boolean facts over immutable
   structures, which is what lets a pool fan them out; the degrees are
   then derived from the per-level verdicts by the same first-match
   rule as [Acyclicity.degree]. *)
let derive_degree ~berge ~gamma ~beta ~alpha =
  if berge then Acyclicity.Berge_acyclic
  else if gamma then Acyclicity.Gamma_acyclic
  else if beta then Acyclicity.Beta_acyclic
  else if alpha then Acyclicity.Alpha_acyclic
  else Acyclicity.Cyclic

let profile ?pool ?(trace = Observe.Trace.disabled) g =
  Observe.Trace.span trace "classify"
    ~attrs:
      [
        ("nl", Observe.Trace.Int (Bigraph.nl g));
        ("nr", Observe.Trace.Int (Bigraph.nr g));
      ]
    (fun () ->
      let h1 = Side_properties.hypergraph_of_witness_side g Bigraph.V2 in
      let h2 = Side_properties.hypergraph_of_witness_side g Bigraph.V1 in
      let ts1 = Hypergraph.two_section h1 in
      let ts2 = Hypergraph.two_section h2 in
      let tasks =
        [|
          ("classify.chordal_41", fun () -> Mn_chordality.is_41_chordal g);
          ("classify.chordal_62", fun () -> Gamma.acyclic h1);
          ("classify.chordal_61", fun () -> Beta.acyclic h1);
          ("classify.h1.chordal", fun () -> Graphs.Chordal.is_chordal ts1);
          ("classify.h1.conformal", fun () -> Conformal.is_conformal h1);
          ("classify.h1.alpha", fun () -> Gyo.alpha_acyclic h1);
          ("classify.h1.berge", fun () -> Berge.acyclic h1);
          ("classify.h2.chordal", fun () -> Graphs.Chordal.is_chordal ts2);
          ("classify.h2.conformal", fun () -> Conformal.is_conformal h2);
          ("classify.h2.alpha", fun () -> Gyo.alpha_acyclic h2);
          ("classify.h2.berge", fun () -> Berge.acyclic h2);
          ("classify.h2.gamma", fun () -> Gamma.acyclic h2);
          ("classify.h2.beta", fun () -> Beta.acyclic h2);
        |]
      in
      let verdicts =
        match pool with
        | Some p when Parallel.Pool.domains p > 1 ->
          let forks = Array.map (fun _ -> Observe.Trace.fork trace) tasks in
          let out =
            Parallel.Pool.mapi_worker p
              (fun ~worker:_ ~index (name, f) ->
                Observe.Trace.span forks.(index) name f)
              tasks
          in
          Array.iter (Observe.Trace.merge trace) forks;
          out
        | _ ->
          Array.map (fun (name, f) -> Observe.Trace.span trace name f) tasks
      in
      let chordal_41 = verdicts.(0) in
      let chordal_62 = verdicts.(1) in
      let chordal_61 = verdicts.(2) in
      let v2_chordal = verdicts.(3) in
      let v2_conformal = verdicts.(4) in
      let alpha_h1 = verdicts.(5) in
      let v1_chordal = verdicts.(7) in
      let v1_conformal = verdicts.(8) in
      let alpha_h2 = verdicts.(9) in
      let degree_h1 =
        derive_degree ~berge:verdicts.(6) ~gamma:chordal_62 ~beta:chordal_61
          ~alpha:alpha_h1
      in
      let degree_h2 =
        derive_degree ~berge:verdicts.(10) ~gamma:verdicts.(11)
          ~beta:verdicts.(12) ~alpha:alpha_h2
      in
      Observe.Trace.add_attr trace "chordal_41" (Observe.Trace.Bool chordal_41);
      Observe.Trace.add_attr trace "chordal_62" (Observe.Trace.Bool chordal_62);
      Observe.Trace.add_attr trace "chordal_61" (Observe.Trace.Bool chordal_61);
      {
        chordal_41;
        chordal_62;
        chordal_61;
        v2_chordal;
        v2_conformal;
        v1_chordal;
        v1_conformal;
        alpha_h1;
        alpha_h2;
        degree_h1;
        degree_h2;
      })

(* Every recognizer in the profile is component-local: cycles, cliques,
   hyperedges and GYO reductions never cross a connected component, and
   the witness hypergraphs drop the empty hyperedges an isolated
   relation would contribute on either side of the decomposition. So
   the whole-graph profile is the conjunction of the per-component
   profiles, with acyclicity degrees combining by worst level. The
   delta engine leans on this: after an edit only the touched
   components are re-profiled and the global verdict is re-derived
   here. test/test_evolve.ml pins [combine] against the whole-graph
   classifier on random schemas. *)
let severity = function
  | Acyclicity.Berge_acyclic -> 0
  | Acyclicity.Gamma_acyclic -> 1
  | Acyclicity.Beta_acyclic -> 2
  | Acyclicity.Alpha_acyclic -> 3
  | Acyclicity.Cyclic -> 4

let worst_degree a b = if severity a >= severity b then a else b

let neutral =
  {
    chordal_41 = true;
    chordal_62 = true;
    chordal_61 = true;
    v2_chordal = true;
    v2_conformal = true;
    v1_chordal = true;
    v1_conformal = true;
    alpha_h1 = true;
    alpha_h2 = true;
    degree_h1 = Acyclicity.Berge_acyclic;
    degree_h2 = Acyclicity.Berge_acyclic;
  }

let combine profiles =
  Array.fold_left
    (fun acc p ->
      {
        chordal_41 = acc.chordal_41 && p.chordal_41;
        chordal_62 = acc.chordal_62 && p.chordal_62;
        chordal_61 = acc.chordal_61 && p.chordal_61;
        v2_chordal = acc.v2_chordal && p.v2_chordal;
        v2_conformal = acc.v2_conformal && p.v2_conformal;
        v1_chordal = acc.v1_chordal && p.v1_chordal;
        v1_conformal = acc.v1_conformal && p.v1_conformal;
        alpha_h1 = acc.alpha_h1 && p.alpha_h1;
        alpha_h2 = acc.alpha_h2 && p.alpha_h2;
        degree_h1 = worst_degree acc.degree_h1 p.degree_h1;
        degree_h2 = worst_degree acc.degree_h2 p.degree_h2;
      })
    neutral profiles

let recommend p =
  if p.chordal_62 then Steiner_polynomial
  else
    match (p.alpha_h1, p.alpha_h2) with
    | true, true -> Pseudo_steiner_both
    | true, false -> Pseudo_steiner_v2
    | false, true -> Pseudo_steiner_v1
    | false, false -> Exact_search_only

let recommendation_name = function
  | Steiner_polynomial -> "Steiner solvable in P (Algorithm 2, Theorem 5)"
  | Pseudo_steiner_v2 -> "pseudo-Steiner w.r.t. V2 in P (Algorithm 1, Theorem 4)"
  | Pseudo_steiner_v1 -> "pseudo-Steiner w.r.t. V1 in P (Algorithm 1, flipped)"
  | Pseudo_steiner_both -> "pseudo-Steiner w.r.t. either side in P (Algorithm 1)"
  | Exact_search_only -> "no chordality structure: exact search / approximation"

let theorem1_consistent p =
  (* Theorem 1 (v)/(vi). *)
  p.alpha_h1 = (p.v2_chordal && p.v2_conformal)
  && p.alpha_h2 = (p.v1_chordal && p.v1_conformal)
  (* Hierarchy along (4,1) ⊆ (6,2) ⊆ (6,1). *)
  && ((not p.chordal_41) || p.chordal_62)
  && ((not p.chordal_62) || p.chordal_61)
  (* Corollary 2: (6,1)-chordal implies chordal+conformal on both sides. *)
  && ((not p.chordal_61) || (p.alpha_h1 && p.alpha_h2))

let pp_profile ppf p =
  let b = function true -> "yes" | false -> "no" in
  Format.fprintf ppf
    "@[<v>(4,1)-chordal (forest):      %s@,\
     (6,2)-chordal (gamma):       %s@,\
     (6,1)-chordal (beta):        %s@,\
     V2-chordal / V2-conformal:   %s / %s@,\
     V1-chordal / V1-conformal:   %s / %s@,\
     H1 degree: %s@,\
     H2 degree: %s@]"
    (b p.chordal_41) (b p.chordal_62) (b p.chordal_61) (b p.v2_chordal)
    (b p.v2_conformal) (b p.v1_chordal) (b p.v1_conformal)
    (Acyclicity.degree_name p.degree_h1)
    (Acyclicity.degree_name p.degree_h2)
