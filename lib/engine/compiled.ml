open Graphs
open Bipartite

type component = {
  nodes : Iset.t;
  order : int list;
  alg1_prep : (Steiner.Algorithm1.prep, Steiner.Algorithm1.error) result;
}

type t = {
  graph : Bigraph.t;
  u : Ugraph.t;
  csr : Csr.t;
  profile : Classify.profile;
  comp_id : int array;
  components : component array;
}

let graph t = t.graph
let ugraph t = t.u
let csr t = t.csr
let profile t = t.profile
let n_components t = Array.length t.components

(* ------------------------------------------------- serialization *)

(* Canonical schema rendering: sizes plus the ascending edge list.
   Bigraph.edges iterates left nodes in order and Iset ascending, so
   two structurally equal graphs render identically whatever insertion
   order built them. *)
let schema_hash g =
  let b = Buffer.create 256 in
  Printf.bprintf b "bipartite %d %d" (Bigraph.nl g) (Bigraph.nr g);
  List.iter (fun (i, j) -> Printf.bprintf b " %d-%d" i j) (Bigraph.edges g);
  Digest.to_hex (Digest.string (Buffer.contents b))

(* Marshal-safety audit (pinned by test/test_cache.ml): every field of
   [t] is first-order data — Bigraph/Ugraph are records over
   [Iset.t array] (Set.Make(Int): plain AVL blocks), Csr is int
   arrays, Classify.profile is bools plus Acyclicity.degree variants,
   and each component holds an Iset, an int list and an
   [(Algorithm1.prep, error) result] whose prep is {comp; w_order} —
   no closures, lazies or custom blocks anywhere. The lazy compiled
   handles live in Datamodel.Schema/Layered (outside [t]) and the
   mutable solver scratch lives in Session, rebuilt by
   [Session.create]; neither is ever marshaled. *)
let to_bytes t = Marshal.to_string t [ Marshal.No_sharing ]

(* Structural sanity net under the payload checksum: catches an
   envelope that validated but framed bytes marshaled by an
   incompatible build into a plausible-looking block. *)
let coherent t =
  let n = Ugraph.n t.u in
  Bigraph.n t.graph = n && Csr.n t.csr = n
  && Array.length t.comp_id = n
  && (let k = Array.length t.components in
      Array.for_all (fun c -> c >= 0 && c < k) t.comp_id)
  && Array.for_all
       (fun comp ->
         Iset.for_all (fun v -> v >= 0 && v < n) comp.nodes
         && List.for_all (fun v -> v >= 0 && v < n) comp.order)
       t.components

let of_bytes s =
  match (Marshal.from_string s 0 : t) with
  | exception _ -> None
  | t -> if coherent t then Some t else None

let compile ?pool ?(trace = Observe.Trace.disabled)
    ?(metrics = Observe.Metrics.disabled) graph =
  let u = Bigraph.ugraph graph in
  Observe.Trace.span trace "compile"
    ~attrs:
      [
        ("nodes", Observe.Trace.Int (Ugraph.n u));
        ("edges", Observe.Trace.Int (Ugraph.m u));
      ]
  @@ fun () ->
  let csr = Csr.of_ugraph u in
  let profile = Classify.profile ?pool ~trace graph in
  let comp_id, comps =
    Observe.Trace.span trace "compile.components" (fun () ->
        Traverse.component_ids u)
  in
  let prep_component tr nodes =
    {
      nodes;
      (* Increasing node ids: the completion Algorithm 2 applies
         when no order is supplied, so session answers match the
         one-shot path node for node. *)
      order = Iset.elements nodes;
      alg1_prep = Steiner.Algorithm1.prepare ~trace:tr graph ~comp:nodes;
    }
  in
  let components =
    Observe.Trace.span trace "compile.orderings" @@ fun () ->
    let comps = Array.of_list comps in
    match pool with
    | Some p when Parallel.Pool.domains p > 1 && Array.length comps > 1 ->
      (* One task per connected component: prep only reads the shared
         immutable graph, so tasks are independent; per-task trace
         forks are merged in component order to keep ids stable. *)
      let forks = Array.map (fun _ -> Observe.Trace.fork trace) comps in
      let out =
        Parallel.Pool.mapi_worker p
          (fun ~worker:_ ~index nodes -> prep_component forks.(index) nodes)
          comps
      in
      Array.iter (Observe.Trace.merge trace) forks;
      out
    | _ -> Array.map (prep_component trace) comps
  in
  Observe.Trace.add_attr trace "components"
    (Observe.Trace.Int (Array.length components));
  Observe.Metrics.incr (Observe.Metrics.counter metrics "engine.compiles");
  { graph; u; csr; profile; comp_id; components }
