open Graphs
open Bipartite

type component = {
  nodes : Iset.t;
  order : int list;
  alg1_prep : (Steiner.Algorithm1.prep, Steiner.Algorithm1.error) result;
}

type t = {
  graph : Bigraph.t;
  u : Ugraph.t;
  csr : Csr.t;
  profile : Classify.profile;
  comp_id : int array;
  components : component array;
}

let graph t = t.graph
let ugraph t = t.u
let csr t = t.csr
let profile t = t.profile
let n_components t = Array.length t.components

let compile ?pool ?(trace = Observe.Trace.disabled)
    ?(metrics = Observe.Metrics.disabled) graph =
  let u = Bigraph.ugraph graph in
  Observe.Trace.span trace "compile"
    ~attrs:
      [
        ("nodes", Observe.Trace.Int (Ugraph.n u));
        ("edges", Observe.Trace.Int (Ugraph.m u));
      ]
  @@ fun () ->
  let csr = Csr.of_ugraph u in
  let profile = Classify.profile ?pool ~trace graph in
  let comp_id, comps =
    Observe.Trace.span trace "compile.components" (fun () ->
        Traverse.component_ids u)
  in
  let prep_component tr nodes =
    {
      nodes;
      (* Increasing node ids: the completion Algorithm 2 applies
         when no order is supplied, so session answers match the
         one-shot path node for node. *)
      order = Iset.elements nodes;
      alg1_prep = Steiner.Algorithm1.prepare ~trace:tr graph ~comp:nodes;
    }
  in
  let components =
    Observe.Trace.span trace "compile.orderings" @@ fun () ->
    let comps = Array.of_list comps in
    match pool with
    | Some p when Parallel.Pool.domains p > 1 && Array.length comps > 1 ->
      (* One task per connected component: prep only reads the shared
         immutable graph, so tasks are independent; per-task trace
         forks are merged in component order to keep ids stable. *)
      let forks = Array.map (fun _ -> Observe.Trace.fork trace) comps in
      let out =
        Parallel.Pool.mapi_worker p
          (fun ~worker:_ ~index nodes -> prep_component forks.(index) nodes)
          comps
      in
      Array.iter (Observe.Trace.merge trace) forks;
      out
    | _ -> Array.map (prep_component trace) comps
  in
  Observe.Trace.add_attr trace "components"
    (Observe.Trace.Int (Array.length components));
  Observe.Metrics.incr (Observe.Metrics.counter metrics "engine.compiles");
  { graph; u; csr; profile; comp_id; components }
