open Graphs
open Bipartite

type component = {
  nodes : Iset.t;
  order : int list;
  cprofile : Classify.profile;
  alg1_prep : (Steiner.Algorithm1.prep, Steiner.Algorithm1.error) result;
}

type t = {
  graph : Bigraph.t;
  profile : Classify.profile;
  comp_id : int array;
  components : component array;
}

type delta_stats = {
  op : Delta.op;
  noop : bool;
  fallback : bool;
  recompiled : int list;
  reused : int;
}

let graph t = t.graph
let ugraph t = Bigraph.ugraph t.graph
let csr t = Bigraph.csr t.graph
let profile t = t.profile
let n_components t = Array.length t.components

(* ------------------------------------------------- serialization *)

(* Canonical schema rendering: sizes plus the ascending edge list.
   Bigraph.iter_edges visits left nodes in order and neighbors
   ascending, so two structurally equal graphs render identically
   whatever insertion order built them — without materialising a
   million-pair list. *)
let schema_hash g =
  let b = Buffer.create 256 in
  Printf.bprintf b "bipartite %d %d" (Bigraph.nl g) (Bigraph.nr g);
  Bigraph.iter_edges g (fun i j -> Printf.bprintf b " %d-%d" i j);
  Digest.to_hex (Digest.string (Buffer.contents b))

(* Marshal-safety audit (pinned by test/test_cache.ml): every field of
   [t] is first-order data — Bigraph is a record of ints and optional
   Ugraph ([Iset.t array]; Set.Make(Int): plain AVL blocks) / Csr (int
   arrays) views, Classify.profile is bools plus Acyclicity.degree
   variants, and each component holds an Iset, an int list, a profile
   and an [(Algorithm1.prep, error) result] whose prep is
   {comp; w_order} — no closures, lazies or custom blocks anywhere.
   The lazy compiled handles live in Datamodel.Schema/Layered (outside
   [t]) and the mutable solver scratch lives in Session, rebuilt by
   [Session.create]; neither is ever marshaled.

   The graph is compacted to its canonical CSR-only form first: the
   set-based cache's AVL shape depends on construction history, and
   dropping it keeps to_bytes byte-reproducible across equal plans
   (pinned by test_cache's save/load round-trip). *)
let to_bytes t =
  Marshal.to_string
    { t with graph = Bigraph.compact t.graph }
    [ Marshal.No_sharing ]

(* Structural sanity net under the payload checksum: catches an
   envelope that validated but framed bytes marshaled by an
   incompatible build into a plausible-looking block. *)
let coherent t =
  let n = Bigraph.n t.graph in
  Csr.n (Bigraph.csr t.graph) = n
  && Array.length t.comp_id = n
  && (let k = Array.length t.components in
      Array.for_all (fun c -> c >= 0 && c < k) t.comp_id)
  && Array.for_all
       (fun comp ->
         Iset.for_all (fun v -> v >= 0 && v < n) comp.nodes
         && List.for_all (fun v -> v >= 0 && v < n) comp.order)
       t.components

let of_bytes s =
  match (Marshal.from_string s 0 : t) with
  | exception _ -> None
  | t -> if coherent t then Some t else None

(* --------------------------------------------------- compilation *)

(* Everything a single connected component contributes to the plan:
   the Algorithm 2 elimination order, the Algorithm 1 join-tree prep,
   and — new with delta support — its own classification profile, so a
   schema edit can replace one component's slice and re-derive the
   global profile by [Classify.combine] instead of reclassifying the
   whole graph. The component profile is computed on the materialised
   induced sub-bigraph (identical to the graph itself when the graph
   is connected, so the single-component fast path pays no copy). *)
let prep_component ?pool tr graph nodes =
  let sub =
    if Iset.cardinal nodes = Bigraph.n graph then graph
    else fst (Bigraph.induced graph nodes)
  in
  {
    nodes;
    (* Increasing node ids: the completion Algorithm 2 applies
       when no order is supplied, so session answers match the
       one-shot path node for node. *)
    order = Iset.elements nodes;
    cprofile = Classify.profile ?pool ~trace:tr sub;
    alg1_prep = Steiner.Algorithm1.prepare ~trace:tr graph ~comp:nodes;
  }

(* Per-component prep with the same fan-out contract as before: one
   task per component when there are several, otherwise the pool goes
   to the classifier's independent checks. Per-task trace forks are
   merged in component order to keep ids stable. *)
let build_components ?pool ~trace graph comps =
  match pool with
  | Some p when Parallel.Pool.domains p > 1 && Array.length comps > 1 ->
    let forks = Array.map (fun _ -> Observe.Trace.fork trace) comps in
    let out =
      Parallel.Pool.mapi_worker p
        (fun ~worker:_ ~index nodes -> prep_component forks.(index) graph nodes)
        comps
    in
    Array.iter (Observe.Trace.merge trace) forks;
    out
  | _ -> Array.map (prep_component ?pool trace graph) comps

let compile ?pool ?(trace = Observe.Trace.disabled)
    ?(metrics = Observe.Metrics.disabled) graph =
  (* Force the flat adjacency before any domain fan-out: a stream-built
     graph compiles straight off its CSR (the set view is never
     touched), and the cache is filled before worker domains start
     reading it. *)
  let c = Bigraph.csr graph in
  Observe.Trace.span trace "compile"
    ~attrs:
      [
        ("nodes", Observe.Trace.Int (Csr.n c));
        ("edges", Observe.Trace.Int (Csr.m c));
      ]
  @@ fun () ->
  let comp_id, comps =
    Observe.Trace.span trace "compile.components" (fun () ->
        Csr.component_ids c)
  in
  let components =
    Observe.Trace.span trace "compile.orderings" @@ fun () ->
    build_components ?pool ~trace graph (Array.of_list comps)
  in
  let profile =
    Classify.combine (Array.map (fun c -> c.cprofile) components)
  in
  Observe.Trace.add_attr trace "components"
    (Observe.Trace.Int (Array.length components));
  Observe.Metrics.incr (Observe.Metrics.counter metrics "engine.compiles");
  { graph; profile; comp_id; components }

(* ------------------------------------------------ delta application *)

(* Rebuild the plan around a mix of reused and freshly prepped
   components. The array is renormalised to the order a fresh compile
   would produce — [Traverse.component_ids] lists components by
   ascending minimum element — so a patched plan and a from-scratch
   plan agree component index for component index. *)
let replan ?pool ~trace ~metrics graph ~kept ~rebuilt_sets =
  let rebuilt = build_components ?pool ~trace graph rebuilt_sets in
  let components =
    Array.append (Array.of_list kept) rebuilt
  in
  Array.sort
    (fun a b -> compare (Iset.min_elt a.nodes) (Iset.min_elt b.nodes))
    components;
  let n = Bigraph.n graph in
  let comp_id = Array.make n (-1) in
  Array.iteri
    (fun k c -> Iset.iter (fun v -> comp_id.(v) <- k) c.nodes)
    components;
  let profile =
    Classify.combine (Array.map (fun c -> c.cprofile) components)
  in
  let recompiled = ref [] in
  Array.iteri
    (fun k c ->
      if Array.exists (fun r -> r == c) rebuilt then
        recompiled := k :: !recompiled)
    components;
  Observe.Metrics.incr
    ~by:(Array.length rebuilt)
    (Observe.Metrics.counter metrics "engine.delta.recompiled_components");
  ({ graph; profile; comp_id; components }, List.rev !recompiled)

let apply_delta ?pool ?(trace = Observe.Trace.disabled)
    ?(metrics = Observe.Metrics.disabled) t op =
  match Delta.apply t.graph op with
  | Error msg -> Error msg
  | Ok g' when g' == t.graph ->
    (* Physically unchanged graph: the delta was a no-op (re-adding a
       present edge, removing an absent one) and must not dirty any
       component — the plan itself is returned untouched. *)
    Observe.Metrics.incr (Observe.Metrics.counter metrics "engine.delta.noops");
    Ok
      ( t,
        {
          op;
          noop = true;
          fallback = false;
          recompiled = [];
          reused = Array.length t.components;
        } )
  | Ok g' ->
    Observe.Trace.span trace "apply_delta"
      ~attrs:[ ("op", Observe.Trace.Str (Delta.to_string op)) ]
    @@ fun () ->
    Observe.Metrics.incr (Observe.Metrics.counter metrics "engine.delta.applied");
    let nl = Bigraph.nl t.graph in
    let total = Array.length t.components in
    let u' = Bigraph.ugraph g' in
    (* Removing an interior relation shifts every higher underlying
       index, invalidating the node sets, orderings and join-tree preps
       of untouched components wholesale — the conservative fallback
       the delta contract reserves for edits that break cached
       invariants. Only last-index removal is incremental. *)
    let interior_removal =
      match op with
      | Delta.Remove_relation j -> j < Bigraph.nr t.graph - 1
      | _ -> false
    in
    if interior_removal then begin
      Observe.Metrics.incr
        (Observe.Metrics.counter metrics "engine.delta.fallbacks");
      Observe.Trace.add_attr trace "fallback" (Observe.Trace.Bool true);
      let c = compile ?pool ~trace ~metrics g' in
      Ok
        ( c,
          {
            op;
            noop = false;
            fallback = true;
            recompiled = List.init (Array.length c.components) Fun.id;
            reused = 0;
          } )
    end
    else begin
      (* Which old components does the edit touch, and what node sets
         replace them?  Insertion merges the endpoints' components;
         deletion may split one component into several (recomputed by a
         traversal restricted to the old component's nodes). *)
      let dirty, rebuilt_sets =
        match op with
        | Delta.Add_edge (i, j) ->
          let a = t.comp_id.(i) and b = t.comp_id.(nl + j) in
          if a = b then ([ a ], [ t.components.(a).nodes ])
          else
            ( [ a; b ],
              [ Iset.union t.components.(a).nodes t.components.(b).nodes ] )
        | Delta.Remove_edge (i, _) ->
          let a = t.comp_id.(i) in
          ([ a ], Traverse.components ~within:t.components.(a).nodes u')
        | Delta.Add_relation attrs ->
          let v = Bigraph.n t.graph in
          let cids =
            Iset.fold
              (fun i acc ->
                if List.mem t.comp_id.(i) acc then acc else t.comp_id.(i) :: acc)
              attrs []
          in
          let nodes =
            List.fold_left
              (fun acc c -> Iset.union acc t.components.(c).nodes)
              (Iset.singleton v) cids
          in
          (cids, [ nodes ])
        | Delta.Remove_relation j ->
          let v = nl + j in
          let a = t.comp_id.(v) in
          let rest = Iset.remove v t.components.(a).nodes in
          ([ a ], Traverse.components ~within:rest u')
      in
      let kept = ref [] in
      Array.iteri
        (fun k c -> if not (List.mem k dirty) then kept := c :: !kept)
        t.components;
      let t', recompiled =
        replan ?pool ~trace ~metrics g' ~kept:!kept
          ~rebuilt_sets:(Array.of_list rebuilt_sets)
      in
      Observe.Trace.add_attr trace "recompiled"
        (Observe.Trace.Int (List.length recompiled));
      Observe.Trace.add_attr trace "reused"
        (Observe.Trace.Int (total - List.length dirty));
      Ok
        ( t',
          {
            op;
            noop = false;
            fallback = false;
            recompiled;
            reused = total - List.length dirty;
          } )
    end

let apply_deltas ?pool ?trace ?metrics t ops =
  let rec go t acc k = function
    | [] -> Ok (t, List.rev acc)
    | op :: rest -> (
      match apply_delta ?pool ?trace ?metrics t op with
      | Ok (t', stats) -> go t' (stats :: acc) (k + 1) rest
      | Error msg ->
        Error
          (Printf.sprintf "delta %d (%s): %s" k (Delta.to_string op) msg))
  in
  go t [] 1 ops
