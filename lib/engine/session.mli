(** Query sessions over a compiled schema.

    A session owns the per-query mutable state — solver scratch buffers
    (CSR-backed bitsets, BFS queues) plus default budget and
    observability sinks — and answers any number of terminal-set
    queries against one {!Compiled.t}. Classification, component
    decomposition and elimination orderings are read from the compiled
    plan; a query performs only terminal location, the degradation
    ladder, and the chosen solver. Sessions are not safe for concurrent
    use (the scratch buffers are shared across queries by design). *)

open Graphs
open Bipartite
module Budget = Runtime.Budget
module Degrade = Runtime.Degrade
module Errors = Runtime.Errors
module Tree = Steiner.Tree
module Algorithm1 = Steiner.Algorithm1

(** Which solver produced a result and with what guarantee. *)
type method_used =
  | Used_forest  (** exact and unique: graph is (4,1)-chordal *)
  | Used_algorithm2  (** exact: graph is (6,2)-chordal (Theorem 5) *)
  | Used_exact_dp  (** exact: Dreyfus–Wagner *)
  | Used_elimination  (** heuristic nonredundant cover (no guarantee) *)
  | Used_mst_approx  (** metric-closure MST 2-approximation *)

type solution = {
  tree : Tree.t;
  method_used : method_used;
  optimal : bool;  (** [provenance.guarantee = Exact] *)
  profile : Classify.profile;
  provenance : Degrade.provenance;
      (** which ladder rung ran, why earlier rungs were abandoned, and
          the resulting guarantee *)
}

type t

val create :
  ?budget:Budget.t ->
  ?degrade:bool ->
  ?trace:Observe.Trace.t ->
  ?metrics:Observe.Metrics.t ->
  Compiled.t ->
  t
(** Allocates the session scratch (sharing the compiled CSR arena) and
    fixes the defaults every {!query} inherits: [budget] (default
    unlimited) meters queries — never compilation — [degrade] (default
    [true]) selects ladder fall-through vs fail-fast, and
    [trace]/[metrics] default to the shared inert instances. *)

val compiled : t -> Compiled.t

val with_plan : t -> Compiled.t -> t
(** [with_plan t c] is the session retargeted at plan [c]: fresh
    solver scratch sized to [c]'s arena, same budget, degradation
    policy, trace and metrics. Physical no-op (returns [t] itself)
    when [c == compiled t] — the cheap per-request resync the serving
    layer performs so schema deltas swap in without dropping inflight
    requests (a request keeps the immutable plan it started with). *)

val query :
  ?budget:Budget.t ->
  ?degrade:bool ->
  t ->
  p:Iset.t ->
  (solution, Errors.t) result
(** One minimal-connection query. Validation (empty, out-of-range,
    disconnected terminals) is O(|p|) against the cached component ids;
    the degradation ladder, rung spans, [ladder.*] events and
    [budget.checks]/[rung.abandonments] counters are exactly those of
    the one-shot solver, recorded under a ["query"] span. [?budget] and
    [?degrade] override the session defaults for this query only — a
    fresh fuel budget per query is the typical batch pattern. *)

val solve_many :
  ?pool:Parallel.Pool.t ->
  ?budget:Budget.t ->
  ?make_budget:(int -> Budget.t) ->
  ?degrade:bool ->
  t ->
  Iset.t list ->
  (solution, Errors.t) result list
(** [query] over a batch, in order; one result per terminal set,
    errors kept in position.

    [pool] (default: inline) fans the queries across domains with a
    solver scratch per worker; results, provenance and any injected
    fault behaviour are byte-identical to the sequential path for
    every pool size. Per-query trace spans are recorded into forks
    merged back in batch order.

    [make_budget] (overrides [budget]) builds the budget for query
    [i] — [fun _ -> Budget.make ~fuel:f ()] for a fresh deterministic
    allowance per query, or [fun _ -> Budget.Shared.view handle] to
    drain one batch-wide tank whose exhaustion cancels in-flight
    siblings at their next checkpoint (see {!Budget.Shared}; which
    query hits the empty tank first is scheduling-dependent). On the
    sequential path a plain shared [budget] drains across the batch as
    before; a pooled batch with a limited [budget] and no
    [make_budget] raises [Invalid_argument], since one mutable budget
    cannot be shared across domains. *)

val query_relations :
  t -> p:Iset.t -> (Algorithm1.result, Errors.t) result
(** Algorithm 1 (minimum relation count, Theorem 3/4) against the
    join-tree ordering cached at compile time. [Invalid_instance] when
    the terminal component is not α-acyclic. *)
