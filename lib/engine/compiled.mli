(** A conceptual schema compiled once, queried many times.

    The paper's serving setting (Section 3) fixes the bipartite scheme
    and streams terminal-set queries over it. Everything that depends
    only on the scheme — the flat CSR adjacency arena, the
    chordality/acyclicity {!Bipartite.Classify.profile}, the connected
    components, Algorithm 2's elimination order and Algorithm 1's GYO
    join-tree ordering per component — is computed here exactly once;
    {!Session} then answers each query against the cached plan. *)

open Graphs
open Bipartite

type component = {
  nodes : Iset.t;
  order : int list;
      (** Algorithm 2 elimination order: increasing node ids, matching
          the one-shot default so session answers are identical *)
  cprofile : Classify.profile;
      (** classification of the induced sub-bigraph; the plan's global
          profile is [Classify.combine] over these, which is what lets
          {!apply_delta} re-profile only touched components *)
  alg1_prep : (Steiner.Algorithm1.prep, Steiner.Algorithm1.error) result;
      (** Algorithm 1's Lemma 1 ordering (reverse join-tree preorder),
          or [Error Not_alpha_acyclic] when the component has no join
          tree *)
}

type t = {
  graph : Bigraph.t;
      (** carries both adjacency views: the flat CSR (always present
          after compilation — the solver-scratch arena, via {!csr}) and
          the set view, derived lazily on first set-consuming query
          (via {!ugraph}) *)
  profile : Classify.profile;
  comp_id : int array;  (** component index per node *)
  components : component array;
}
(** The record is exposed read-only by convention: sessions and
    downstream layers read it, nobody mutates it. *)

val compile :
  ?pool:Parallel.Pool.t ->
  ?trace:Observe.Trace.t ->
  ?metrics:Observe.Metrics.t ->
  Bigraph.t ->
  t
(** One-time schema compilation. [pool] (default: inline) fans the
    classifier's independent checks and the per-component
    ordering/join-tree prep out across domains; the compiled plan is
    identical for any pool size. [trace] records a ["compile"] span
    with the classifier's spans, ["compile.components"] and
    ["compile.orderings"] children, and a [components] count attribute;
    [metrics] bumps the [engine.compiles] counter. Compilation performs
    no budgeted work — budgets meter queries only. *)

val graph : t -> Bigraph.t
val ugraph : t -> Ugraph.t
val csr : t -> Csr.t
val profile : t -> Classify.profile
val n_components : t -> int

(** {2 Incremental evolution}

    A schema delta dirties the components whose vertex sets it
    touches and nothing else: an edge insertion merges (at most) the
    two endpoint components into one freshly prepped component, an
    edge deletion re-traverses the one component it hits (which may
    split into several), an appended relation merges the components of
    its attributes with the new node, and removing the {e last}
    relation drops its node from its component. Every untouched
    component's slice — node set, elimination order, profile,
    join-tree prep — is reused verbatim; the global profile is
    re-derived by [Classify.combine]. Removing an {e interior}
    relation shifts every higher underlying index, which invalidates
    the cached per-component structure wholesale; that case falls back
    to a full {!compile} (reported via [fallback]).

    The patched plan is canonically identical to compiling the mutated
    schema from scratch — same profile, same per-component node sets,
    orderings and join-tree preps, same component numbering (ascending
    minimum element, matching [Traverse.component_ids]), and therefore
    the same answer to every query. test/test_evolve.ml pins this
    differentially over random delta sequences. (Marshal bytes may
    differ: equal [Iset]s built by different operation orders need not
    share AVL shape.) *)

type delta_stats = {
  op : Delta.op;
  noop : bool;
      (** the delta left the graph physically unchanged; no component
          was dirtied *)
  fallback : bool;  (** interior relation removal: full recompile *)
  recompiled : int list;
      (** component indices (in the {e new} plan) that were rebuilt *)
  reused : int;  (** components of the old plan reused verbatim *)
}

val apply_delta :
  ?pool:Parallel.Pool.t ->
  ?trace:Observe.Trace.t ->
  ?metrics:Observe.Metrics.t ->
  t ->
  Delta.op ->
  (t * delta_stats, string) result
(** Apply one schema delta to the plan. [Error] only on index
    validation failure (the plan is unchanged). Records an
    ["apply_delta"] span (op, recompiled, reused, fallback attrs) and
    bumps [engine.delta.applied] / [engine.delta.noops] /
    [engine.delta.fallbacks] / [engine.delta.recompiled_components].
    [pool] fans rebuilt-component prep exactly as {!compile} does. *)

val apply_deltas :
  ?pool:Parallel.Pool.t ->
  ?trace:Observe.Trace.t ->
  ?metrics:Observe.Metrics.t ->
  t ->
  Delta.op list ->
  (t * delta_stats list, string) result
(** Left fold of {!apply_delta}; the error names the 1-based position
    of the failing delta. *)

(** {2 Serialization}

    The compiled plan is deliberately first-order data — no closures,
    lazies or custom blocks (the lazy compiled handles of
    [Datamodel.Schema]/[Layered] wrap a plan, they are not inside it,
    and the mutable solver scratch lives in {!Session}, rebuilt from
    the plan by [Session.create]) — so [Marshal] round-trips it
    exactly. {!Cache.Plan_cache} wraps these bytes in an integrity
    envelope (format version, library commit, schema hash, payload
    checksum) for the on-disk store; raw bytes carry no such
    protection and must never be trusted across builds. *)

val schema_hash : Bigraph.t -> string
(** Hex digest of a canonical rendering (sizes + ascending edge list):
    equal graphs hash equally regardless of construction order. The
    plan cache keys entries by this hash. *)

val to_bytes : t -> string
(** Marshal the plan. Total on any plan [compile] can produce. *)

val of_bytes : string -> t option
(** Unmarshal and structurally sanity-check a {!to_bytes} payload
    produced by the {e same} library build. [None] when unmarshaling
    fails or the plan is incoherent (mismatched sizes, out-of-range
    component ids); never raises on such inputs. Feeding it bytes that
    did not come from {!to_bytes} of this build is undefined behaviour
    — the plan cache's checksummed envelope exists to rule that out
    before this function runs. *)
