(** A conceptual schema compiled once, queried many times.

    The paper's serving setting (Section 3) fixes the bipartite scheme
    and streams terminal-set queries over it. Everything that depends
    only on the scheme — the flat CSR adjacency arena, the
    chordality/acyclicity {!Bipartite.Classify.profile}, the connected
    components, Algorithm 2's elimination order and Algorithm 1's GYO
    join-tree ordering per component — is computed here exactly once;
    {!Session} then answers each query against the cached plan. *)

open Graphs
open Bipartite

type component = {
  nodes : Iset.t;
  order : int list;
      (** Algorithm 2 elimination order: increasing node ids, matching
          the one-shot default so session answers are identical *)
  alg1_prep : (Steiner.Algorithm1.prep, Steiner.Algorithm1.error) result;
      (** Algorithm 1's Lemma 1 ordering (reverse join-tree preorder),
          or [Error Not_alpha_acyclic] when the component has no join
          tree *)
}

type t = {
  graph : Bigraph.t;
  u : Ugraph.t;  (** [Bigraph.ugraph graph], fetched once *)
  csr : Csr.t;  (** flat adjacency arena shared by solver scratches *)
  profile : Classify.profile;
  comp_id : int array;  (** component index per node *)
  components : component array;
}
(** The record is exposed read-only by convention: sessions and
    downstream layers read it, nobody mutates it. *)

val compile :
  ?pool:Parallel.Pool.t ->
  ?trace:Observe.Trace.t ->
  ?metrics:Observe.Metrics.t ->
  Bigraph.t ->
  t
(** One-time schema compilation. [pool] (default: inline) fans the
    classifier's independent checks and the per-component
    ordering/join-tree prep out across domains; the compiled plan is
    identical for any pool size. [trace] records a ["compile"] span
    with the classifier's spans, ["compile.components"] and
    ["compile.orderings"] children, and a [components] count attribute;
    [metrics] bumps the [engine.compiles] counter. Compilation performs
    no budgeted work — budgets meter queries only. *)

val graph : t -> Bigraph.t
val ugraph : t -> Ugraph.t
val csr : t -> Csr.t
val profile : t -> Classify.profile
val n_components : t -> int
