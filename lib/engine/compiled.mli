(** A conceptual schema compiled once, queried many times.

    The paper's serving setting (Section 3) fixes the bipartite scheme
    and streams terminal-set queries over it. Everything that depends
    only on the scheme — the flat CSR adjacency arena, the
    chordality/acyclicity {!Bipartite.Classify.profile}, the connected
    components, Algorithm 2's elimination order and Algorithm 1's GYO
    join-tree ordering per component — is computed here exactly once;
    {!Session} then answers each query against the cached plan. *)

open Graphs
open Bipartite

type component = {
  nodes : Iset.t;
  order : int list;
      (** Algorithm 2 elimination order: increasing node ids, matching
          the one-shot default so session answers are identical *)
  alg1_prep : (Steiner.Algorithm1.prep, Steiner.Algorithm1.error) result;
      (** Algorithm 1's Lemma 1 ordering (reverse join-tree preorder),
          or [Error Not_alpha_acyclic] when the component has no join
          tree *)
}

type t = {
  graph : Bigraph.t;
  u : Ugraph.t;  (** [Bigraph.ugraph graph], fetched once *)
  csr : Csr.t;  (** flat adjacency arena shared by solver scratches *)
  profile : Classify.profile;
  comp_id : int array;  (** component index per node *)
  components : component array;
}
(** The record is exposed read-only by convention: sessions and
    downstream layers read it, nobody mutates it. *)

val compile :
  ?pool:Parallel.Pool.t ->
  ?trace:Observe.Trace.t ->
  ?metrics:Observe.Metrics.t ->
  Bigraph.t ->
  t
(** One-time schema compilation. [pool] (default: inline) fans the
    classifier's independent checks and the per-component
    ordering/join-tree prep out across domains; the compiled plan is
    identical for any pool size. [trace] records a ["compile"] span
    with the classifier's spans, ["compile.components"] and
    ["compile.orderings"] children, and a [components] count attribute;
    [metrics] bumps the [engine.compiles] counter. Compilation performs
    no budgeted work — budgets meter queries only. *)

val graph : t -> Bigraph.t
val ugraph : t -> Ugraph.t
val csr : t -> Csr.t
val profile : t -> Classify.profile
val n_components : t -> int

(** {2 Serialization}

    The compiled plan is deliberately first-order data — no closures,
    lazies or custom blocks (the lazy compiled handles of
    [Datamodel.Schema]/[Layered] wrap a plan, they are not inside it,
    and the mutable solver scratch lives in {!Session}, rebuilt from
    the plan by [Session.create]) — so [Marshal] round-trips it
    exactly. {!Cache.Plan_cache} wraps these bytes in an integrity
    envelope (format version, library commit, schema hash, payload
    checksum) for the on-disk store; raw bytes carry no such
    protection and must never be trusted across builds. *)

val schema_hash : Bigraph.t -> string
(** Hex digest of a canonical rendering (sizes + ascending edge list):
    equal graphs hash equally regardless of construction order. The
    plan cache keys entries by this hash. *)

val to_bytes : t -> string
(** Marshal the plan. Total on any plan [compile] can produce. *)

val of_bytes : string -> t option
(** Unmarshal and structurally sanity-check a {!to_bytes} payload
    produced by the {e same} library build. [None] when unmarshaling
    fails or the plan is incoherent (mismatched sizes, out-of-range
    component ids); never raises on such inputs. Feeding it bytes that
    did not come from {!to_bytes} of this build is undefined behaviour
    — the plan cache's checksummed envelope exists to rule that out
    before this function runs. *)
