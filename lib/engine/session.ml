open Graphs
open Bipartite
module Budget = Runtime.Budget
module Degrade = Runtime.Degrade
module Errors = Runtime.Errors
module Fault = Runtime.Fault
module Tree = Steiner.Tree
module Algorithm1 = Steiner.Algorithm1
module Algorithm2 = Steiner.Algorithm2
module Dreyfus_wagner = Steiner.Dreyfus_wagner
module Mst_approx = Steiner.Mst_approx

type method_used =
  | Used_forest
  | Used_algorithm2
  | Used_exact_dp
  | Used_elimination
  | Used_mst_approx

type solution = {
  tree : Tree.t;
  method_used : method_used;
  optimal : bool;
  profile : Classify.profile;
  provenance : Degrade.provenance;
}

type t = {
  compiled : Compiled.t;
  budget : Budget.t;
  degrade : bool;
  trace : Observe.Trace.t;
  metrics : Observe.Metrics.t;
  alg1_scratch : Algorithm1.scratch;
  mst_scratch : Mst_approx.scratch;
}

let create ?(budget = Budget.unlimited) ?(degrade = true)
    ?(trace = Observe.Trace.disabled) ?(metrics = Observe.Metrics.disabled)
    compiled =
  {
    compiled;
    budget;
    degrade;
    trace;
    metrics;
    (* Scratches size off the plan's CSR arena alone: creating a
       session over a stream-built million-node plan never forces the
       set view (that happens lazily on the first query that needs
       it). *)
    alg1_scratch = Algorithm1.make_scratch_csr (Compiled.csr compiled);
    mst_scratch = Mst_approx.make_scratch_csr (Compiled.csr compiled);
  }

let compiled t = t.compiled

(* Plan swap for live schema evolution: scratch buffers are sized to
   the plan's CSR arena, so a session observing a new plan must
   reallocate them — reusing the old scratch against a grown graph
   would read out of bounds. Budget, degradation policy and
   observability sinks carry over; the physical-equality fast path
   makes the per-request resync in lib/serve free when the schema has
   not changed. *)
let with_plan t compiled =
  if compiled == t.compiled then t
  else
    {
      t with
      compiled;
      alg1_scratch = Algorithm1.make_scratch_csr (Compiled.csr compiled);
      mst_scratch = Mst_approx.make_scratch_csr (Compiled.csr compiled);
    }

(* O(|p| + log n) location against the cached component ids — the
   one-shot path pays a BFS here on every call. *)
let locate t ~p =
  let c = t.compiled in
  match (Iset.min_elt_opt p, Iset.max_elt_opt p) with
  | None, _ | _, None ->
    Error (Errors.Invalid_instance "empty terminal set")
  | Some lo, Some hi ->
    if lo < 0 || hi >= Bigraph.n c.Compiled.graph then
      Error (Errors.Invalid_instance "terminal index out of range")
    else begin
      let cid = c.Compiled.comp_id.(lo) in
      if Iset.for_all (fun v -> c.Compiled.comp_id.(v) = cid) p then
        Ok c.Compiled.components.(cid)
      else Error Errors.Disconnected_terminals
    end

(* One rung of the degradation ladder: identity for provenance, the
   method tag and guarantee reported on success, and the solver thunk
   (the only place the internal Budget.Exhausted signal can arise). *)
type rung_spec = {
  rung : Errors.rung;
  meth : method_used;
  guarantee : Degrade.guarantee;
  run : unit -> Tree.t option;
}

(* The full per-query ladder, parameterized over the trace sink and
   the MST scratch so a parallel batch can hand each task its own fork
   and per-worker arena; [query] instantiates it with the session's
   own. *)
let query_in ?budget ?degrade ~trace ~mst_scratch t ~p =
  let budget = match budget with Some b -> b | None -> t.budget in
  let degrade = match degrade with Some d -> d | None -> t.degrade in
  let metrics = t.metrics in
  let c = t.compiled in
  (* Cached after the first query; a stream-built plan derives the set
     view here, on demand, rather than at construction time. *)
  let u = Compiled.ugraph c in
  match locate t ~p with
  | Error e -> Error e
  | Ok comp ->
    Observe.Trace.span trace "query"
      ~attrs:
        [
          ("terminals", Observe.Trace.Int (Iset.cardinal p));
          ("component", Observe.Trace.Int (Iset.cardinal comp.Compiled.nodes));
        ]
    @@ fun () ->
    Observe.Metrics.incr (Observe.Metrics.counter metrics "engine.queries");
    let profile = c.Compiled.profile in
    let mst_rung =
      {
        rung = Errors.Mst;
        meth = Used_mst_approx;
        guarantee = Degrade.Ratio 2.0;
        run =
          (fun () ->
            Mst_approx.solve_connected ~trace ~scratch:mst_scratch u
              ~terminals:p);
      }
    in
    let fixpoint_rung =
      {
        rung = Errors.Fixpoint;
        meth = Used_elimination;
        guarantee = Degrade.Heuristic;
        run =
          (fun () ->
            Algorithm2.solve_in ~budget ~trace ~metrics u
              ~comp:comp.Compiled.nodes ~order:comp.Compiled.order ~p);
      }
    in
    let pre_attempts, ladder =
      if profile.Classify.chordal_41 then
        ( [],
          [
            {
              rung = Errors.Exact_structured;
              meth = Used_forest;
              guarantee = Degrade.Exact;
              run = (fun () -> Steiner.Forest_steiner.solve u ~terminals:p);
            };
            mst_rung;
          ] )
      else if profile.Classify.chordal_62 then
        (* Algorithm 2 is exact here (Theorem 5); its elimination
           fixpoint is what the budget meters, and on exhaustion the
           only rung left is the approximation. *)
        ( [],
          [
            {
              rung = Errors.Exact_structured;
              meth = Used_algorithm2;
              guarantee = Degrade.Exact;
              run =
                (fun () ->
                  Algorithm2.solve_in ~budget ~trace ~metrics u
                    ~comp:comp.Compiled.nodes ~order:comp.Compiled.order ~p);
            };
            mst_rung;
          ] )
      else if Iset.cardinal p <= Dreyfus_wagner.max_terminals then
        ( [],
          [
            {
              rung = Errors.Exact_dp;
              meth = Used_exact_dp;
              guarantee = Degrade.Exact;
              run =
                (fun () ->
                  (* The DP's tables scale with the graph it sees
                     (O(n) BFS rows, a 2^t x n table), not with the
                     component, so hand it the terminals' component as
                     a materialised subgraph: on a many-component
                     schema at n = 10^6 the component is tiny while
                     the graph is not. [Ugraph.induced] renumbers
                     ascending — a monotone relabeling — so the DP
                     takes identical decisions and the mapped-back
                     tree is the one the whole-graph run returns. *)
                  let nodes = comp.Compiled.nodes in
                  if Iset.cardinal nodes = Ugraph.n u then
                    Dreyfus_wagner.solve ~budget ~trace ~metrics u
                      ~terminals:p
                  else begin
                    let sub, ids = Ugraph.induced u nodes in
                    let back = Hashtbl.create (Array.length ids) in
                    Array.iteri (fun i v -> Hashtbl.replace back v i) ids;
                    let p' = Iset.map (Hashtbl.find back) p in
                    match
                      Dreyfus_wagner.solve ~budget ~trace ~metrics sub
                        ~terminals:p'
                    with
                    | None -> None
                    | Some t ->
                      Some
                        {
                          Tree.nodes =
                            Iset.map (fun v -> ids.(v)) t.Tree.nodes;
                          edges =
                            List.map
                              (fun (a, b) -> (ids.(a), ids.(b)))
                              t.Tree.edges;
                        }
                  end);
            };
            fixpoint_rung;
            mst_rung;
          ] )
      else
        (* The exact DP was never attempted: say so in the provenance
           instead of silently reporting [optimal = false]. *)
        ( [
            {
              Degrade.rung = Errors.Exact_dp;
              why = Degrade.Terminals_over_cap;
            };
          ],
          [ fixpoint_rung; mst_rung ] )
    in
    let abandonments = Observe.Metrics.counter metrics "rung.abandonments" in
    let budget_checks = Observe.Metrics.counter metrics "budget.checks" in
    (* One span per attempted rung: outcome, abandonment reason, and the
       number of cooperative budget checks the rung consumed (a delta of
       [Budget.spent], so the hot path gains no new counter). *)
    let run_rung spec =
      Observe.Trace.span trace ("rung:" ^ Errors.rung_name spec.rung)
      @@ fun () ->
      let checks0 = Budget.spent budget in
      let outcome =
        match spec.run () with
        | Some tree -> `Ran tree
        | None -> `Abandoned Degrade.Out_of_class
        | exception Budget.Exhausted stop ->
          `Exhausted (stop, Degrade.reason_of_stop stop)
      in
      Observe.Metrics.incr ~by:(Budget.spent budget - checks0) budget_checks;
      Observe.Trace.add_attr trace "budget_checks"
        (Observe.Trace.Int (Budget.spent budget - checks0));
      (match outcome with
      | `Ran tree ->
        Observe.Trace.add_attr trace "outcome" (Observe.Trace.Str "ran");
        Observe.Trace.add_attr trace "tree_nodes"
          (Observe.Trace.Int (Tree.node_count tree))
      | `Abandoned why | `Exhausted (_, why) ->
        Observe.Metrics.incr abandonments;
        Observe.Trace.add_attr trace "outcome" (Observe.Trace.Str "abandoned");
        Observe.Trace.add_attr trace "reason"
          (Observe.Trace.Str (Degrade.reason_name why)));
      outcome
    in
    let rec descend attempts = function
      | [] ->
        (* Unreachable with a connected [p]: the MST rung is
           un-budgeted and total. Report the last abandoned rung. *)
        Error
          (Errors.Budget_exhausted
             (match attempts with
             | { Degrade.rung; _ } :: _ -> rung
             | [] -> Errors.Mst))
      | spec :: rest -> (
        match run_rung spec with
        | `Ran tree ->
          let provenance =
            {
              Degrade.ran = spec.rung;
              attempts = List.rev attempts;
              guarantee = spec.guarantee;
            }
          in
          Degrade.trace_ran trace provenance;
          if Observe.Trace.active trace then
            Observe.Trace.span trace "verify" (fun () ->
                Observe.Trace.add_attr trace "covers_terminals"
                  (Observe.Trace.Bool (Tree.verify u ~terminals:p tree)));
          Ok
            {
              tree;
              method_used = spec.meth;
              optimal = spec.guarantee = Degrade.Exact;
              profile;
              provenance;
            }
        | `Abandoned why ->
          let attempt = { Degrade.rung = spec.rung; why } in
          Degrade.trace_abandon trace attempt;
          descend (attempt :: attempts) rest
        | `Exhausted (_, why) ->
          let attempt = { Degrade.rung = spec.rung; why } in
          Degrade.trace_abandon trace attempt;
          if degrade then descend (attempt :: attempts) rest
          else Error (Errors.Budget_exhausted spec.rung))
    in
    List.iter (Degrade.trace_abandon trace) pre_attempts;
    descend (List.rev pre_attempts) ladder

let query ?budget ?degrade t ~p =
  query_in ?budget ?degrade ~trace:t.trace ~mst_scratch:t.mst_scratch t ~p

let solve_many ?pool ?budget ?make_budget ?degrade t ps =
  (* Queries must behave identically however they are spread over
     domains, so the batch path — sequential included — snapshots the
     caller's fault plan once and re-derives an independent plan per
     query index. *)
  let fault = Fault.capture () in
  let budget_for i =
    match make_budget with Some f -> Some (f i) | None -> budget
  in
  let run ~trace ~mst_scratch i p =
    Fault.with_derived fault ~index:i (fun () ->
        query_in ?budget:(budget_for i) ?degrade ~trace ~mst_scratch t ~p)
  in
  match pool with
  | Some pool when Parallel.Pool.domains pool > 1 && List.length ps > 1 ->
    let effective =
      match budget with Some b -> b | None -> t.budget
    in
    if make_budget = None && not (Budget.is_unlimited effective) then
      invalid_arg
        "Session.solve_many: a pooled batch needs per-query budgets \
         (?make_budget, e.g. fun _ -> Budget.Shared.view handle); one \
         mutable budget cannot be shared across domains";
    let ps = Array.of_list ps in
    let c = t.compiled in
    (* Force the set view on the coordinator before fan-out so worker
       domains only read the plan's caches, never fill them. *)
    ignore (Compiled.ugraph c);
    (* Scratch is the only mutable solver state a query touches, so a
       per-worker arena (indexed by the pool's stable worker id) makes
       concurrent queries race-free without locking. *)
    let scratches =
      Array.init (Parallel.Pool.domains pool) (fun _ ->
          Mst_approx.make_scratch_csr (Compiled.csr c))
    in
    let forks = Array.map (fun _ -> Observe.Trace.fork t.trace) ps in
    let out =
      Parallel.Pool.mapi_worker pool
        (fun ~worker ~index p ->
          run ~trace:forks.(index) ~mst_scratch:scratches.(worker) index p)
        ps
    in
    Array.iter (Observe.Trace.merge t.trace) forks;
    Array.to_list out
  | _ ->
    List.mapi
      (fun i p -> run ~trace:t.trace ~mst_scratch:t.mst_scratch i p)
      ps

(* Algorithm 1 against the compiled join-tree ordering: the GYO work
   was paid at compile time, each query only replays the elimination
   on the session scratch. *)
let query_relations t ~p =
  match locate t ~p with
  | Error e -> Error e
  | Ok comp -> (
    match comp.Compiled.alg1_prep with
    | Error Algorithm1.Not_alpha_acyclic ->
      Error
        (Errors.Invalid_instance
           "scheme is not alpha-acyclic (V2-chordal V2-conformal)")
    | Error Algorithm1.Disconnected_terminals ->
      (* prepare never returns this; locate already placed [p]. *)
      Error Errors.Disconnected_terminals
    | Ok prep -> (
      match
        Algorithm1.solve_prepared ~trace:t.trace ~scratch:t.alg1_scratch
          t.compiled.Compiled.graph prep ~p
      with
      | Ok r -> Ok r
      | Error Algorithm1.Disconnected_terminals ->
        Error Errors.Disconnected_terminals
      | Error Algorithm1.Not_alpha_acyclic ->
        Error
          (Errors.Invalid_instance
             "scheme is not alpha-acyclic (V2-chordal V2-conformal)")))
