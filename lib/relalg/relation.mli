(** In-memory relations over named attributes, stored columnar.

    This is the relational substrate behind the paper's motivation
    (universal-relation interfaces, semijoin programs on acyclic
    schemas). Values are strings; internally each attribute is a
    dictionary-encoded column (distinct values interned to dense int
    codes, row data in a flat int array) so the operators in {!Ops}
    hash and compare ints and access any cell in O(1).

    A relation carries its {!semantics}: [Set] relations are
    duplicate-free (dedup happens in {!make} and in set-mode
    projection), [Bag] relations preserve tuple multiplicities through
    every operator, per Atserias–Kolaitis (arXiv:2012.12126). *)

type semantics = Set | Bag

type t

val make : ?semantics:semantics -> attrs:string list -> string list list -> t
(** Raises [Invalid_argument] on duplicate attributes or arity
    mismatches. Under [Set] (the default) duplicate tuples collapse and
    rows are stored sorted; under [Bag] every row is kept in order. *)

val semantics : t -> semantics

val attrs : t -> string list
(** In column order. *)

val attr_set : t -> string list
(** Sorted. *)

val tuples : t -> string list list
(** In column order of [attrs]. For relations built by {!make} under
    [Set] this is sorted and duplicate-free; operator results come in
    a deterministic but otherwise unspecified row order. *)

val cardinality : t -> int

val arity : t -> int

val mem_attr : t -> string -> bool

val col_index : t -> string -> int option
(** Position of an attribute's column, if present. *)

val cell : t -> row:int -> col:int -> string
(** O(1) decoded cell access; indices unchecked beyond array bounds. *)

val row : t -> int -> string list

val value : t -> string list -> string -> string
(** [value r tuple attr]: the attr's value in a tuple of [r] (tuple
    given in [r]'s column order). *)

val equal : t -> t -> bool
(** Same attribute set and same tuples up to column and row order —
    with multiplicities, so two bag relations differing only in
    duplicate counts are unequal. *)

val empty_like : t -> t

val pp : Format.formatter -> t -> unit

(**/**)

(** Columnar internals, exposed for {!Ops} (and tests). The arrays are
    shared, never mutated after construction: operators reuse input
    dictionaries and only allocate fresh row data. *)
module Internal : sig
  type col = {
    dict : string array;  (** code -> value *)
    index : (string, int) Hashtbl.t;  (** value -> code *)
    data : int array;  (** row -> code *)
  }

  val names : t -> string array
  val cols : t -> col array
  val code : t -> row:int -> col:int -> int

  val of_cols :
    semantics -> names:string array -> cols:col array -> n_rows:int -> t
  (** Trusted constructor: caller guarantees consistent lengths and,
      under [Set], duplicate-freeness. *)
end
