(* Columnar relations: each attribute is a dictionary-encoded column.
   The dictionary maps distinct string values to dense int codes; row
   data is a flat int array, so operators compare and hash ints and
   access cells in O(1) instead of walking per-tuple lists. *)

type semantics = Set | Bag

type column = {
  dict : string array;  (* code -> value *)
  index : (string, int) Hashtbl.t;  (* value -> code *)
  data : int array;  (* row -> code *)
}

type t = {
  sem : semantics;
  names : string array;
  cols : column array;
  n_rows : int;
}

let semantics r = r.sem

let encode_column rows_a n_rows j =
  let data = Array.make n_rows 0 in
  let index = Hashtbl.create 64 in
  let rev_dict = ref [] in
  let next = ref 0 in
  for i = 0 to n_rows - 1 do
    let v = rows_a.(i).(j) in
    let code =
      match Hashtbl.find_opt index v with
      | Some c -> c
      | None ->
        let c = !next in
        incr next;
        Hashtbl.add index v c;
        rev_dict := v :: !rev_dict;
        c
    in
    data.(i) <- code
  done;
  { dict = Array.of_list (List.rev !rev_dict); index; data }

let make ?(semantics = Set) ~attrs rows =
  let sorted = List.sort_uniq compare attrs in
  if List.length sorted <> List.length attrs then
    invalid_arg "Relation.make: duplicate attribute";
  let arity = List.length attrs in
  List.iter
    (fun row ->
      if List.length row <> arity then
        invalid_arg "Relation.make: arity mismatch")
    rows;
  let rows =
    (* Set semantics dedups eagerly (and fixes a canonical row order);
       bag semantics keeps every multiplicity as given. *)
    match semantics with Set -> List.sort_uniq compare rows | Bag -> rows
  in
  let n_rows = List.length rows in
  let rows_a = Array.of_list (List.map Array.of_list rows) in
  {
    sem = semantics;
    names = Array.of_list attrs;
    cols = Array.init arity (encode_column rows_a n_rows);
    n_rows;
  }

let attrs r = Array.to_list r.names
let attr_set r = List.sort compare (Array.to_list r.names)
let cardinality r = r.n_rows
let arity r = Array.length r.names
let mem_attr r a = Array.exists (String.equal a) r.names

let col_index r a =
  let n = Array.length r.names in
  let rec go j = if j >= n then None else if r.names.(j) = a then Some j else go (j + 1) in
  go 0

let cell r ~row ~col =
  let c = r.cols.(col) in
  c.dict.(c.data.(row))

let row r i = List.init (arity r) (fun j -> cell r ~row:i ~col:j)
let tuples r = List.init r.n_rows (row r)

let value r tuple attr =
  let rec go names vals =
    match (names, vals) with
    | c :: _, v :: _ when c = attr -> v
    | _ :: names, _ :: vals -> go names vals
    | _ -> invalid_arg ("Relation.value: no attribute " ^ attr)
  in
  go (attrs r) tuple

let canonical r =
  (* Rows as sorted (attr, value) association lists, sorted with
     multiplicities kept — set relations are duplicate-free by
     construction, so this refines the old set comparison. *)
  let keyed i =
    List.sort compare
      (List.init (arity r) (fun j -> (r.names.(j), cell r ~row:i ~col:j)))
  in
  List.sort compare (List.init r.n_rows keyed)

let equal a b = attr_set a = attr_set b && canonical a = canonical b

let empty_like r =
  {
    r with
    cols = Array.map (fun c -> { c with data = [||] }) r.cols;
    n_rows = 0;
  }

let pp ppf r =
  Format.fprintf ppf "@[<v>%s@,"
    (String.concat " | " (Array.to_list r.names));
  for i = 0 to r.n_rows - 1 do
    Format.fprintf ppf "%s@," (String.concat " | " (row r i))
  done;
  Format.fprintf ppf "(%d tuples)@]" r.n_rows

module Internal = struct
  type col = column = {
    dict : string array;
    index : (string, int) Hashtbl.t;
    data : int array;
  }

  let names r = r.names
  let cols r = r.cols
  let code r ~row ~col = r.cols.(col).data.(row)

  let of_cols sem ~names ~cols ~n_rows =
    { sem; names; cols; n_rows }
end
