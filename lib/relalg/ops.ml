(* Relational operators over the columnar layout: every key is one or
   more dictionary codes, so hashing and equality work on ints. Before
   a hash build, the probe-side dictionary is remapped into the
   build-side code space once (one array lookup per distinct value);
   rows whose value has no code on the other side can never match and
   are dropped without ever being hashed. Output relations share the
   input dictionaries and only allocate fresh row data. *)

module I = Relation.Internal

(* Growable int vector: preallocated scratch for gathered row ids. *)
module Ivec = struct
  type t = { mutable data : int array; mutable len : int }

  let create cap = { data = Array.make (max 4 cap) 0; len = 0 }

  let push v x =
    if v.len = Array.length v.data then begin
      let bigger = Array.make (2 * v.len) 0 in
      Array.blit v.data 0 bigger 0 v.len;
      v.data <- bigger
    end;
    v.data.(v.len) <- x;
    v.len <- v.len + 1

  let len v = v.len
  let get v i = v.data.(i)
end

(* Fresh data arrays for [cols], keeping only the rows listed in [ids]
   (dictionaries shared with the source columns). *)
let gather_cols ctx ~sem ~names cols ids =
  let n = Ivec.len ids in
  let out =
    Array.map
      (fun (c : I.col) ->
        let data = Array.make n 0 in
        let src = c.I.data in
        for i = 0 to n - 1 do
          data.(i) <- src.(Ivec.get ids i)
        done;
        { c with I.data })
      cols
  in
  Exec.tick ctx n;
  I.of_cols sem ~names ~cols:out ~n_rows:n

(* [remap target source]: source-code -> target-code, -1 when the
   value has no code in [target]. *)
let remap (target : I.col) (source : I.col) =
  Array.map
    (fun v ->
      match Hashtbl.find_opt target.I.index v with Some c -> c | None -> -1)
    source.I.dict

(* Common attributes as (left column, right column) index pairs, in
   the left relation's column order. *)
let common_columns a b =
  let bnames = I.names b in
  let pairs = ref [] in
  Array.iteri
    (fun ja name ->
      match
        let n = Array.length bnames in
        let rec go j =
          if j >= n then None
          else if bnames.(j) = name then Some j
          else go (j + 1)
        in
        go 0
      with
      | Some jb -> pairs := (ja, jb) :: !pairs
      | None -> ())
    (I.names a);
  Array.of_list (List.rev !pairs)

let project ?(ctx = Exec.default) r keep =
  List.iter
    (fun a ->
      if not (Relation.mem_attr r a) then
        invalid_arg ("Ops.project: unknown attribute " ^ a))
    keep;
  if List.length (List.sort_uniq compare keep) <> List.length keep then
    invalid_arg "Ops.project: duplicate attribute";
  Observe.Metrics.incr (Exec.projections ctx);
  let n = Relation.cardinality r in
  let src = I.cols r in
  let idx =
    Array.of_list
      (List.map (fun a -> Option.get (Relation.col_index r a)) keep)
  in
  let names = Array.of_list keep in
  let picked = Array.map (fun j -> src.(j)) idx in
  let k = Array.length idx in
  match Relation.semantics r with
  | Relation.Bag ->
    (* Bag projection keeps every row: pure column selection, no row
       data copied at all. *)
    I.of_cols Relation.Bag ~names ~cols:picked ~n_rows:n
  | Relation.Set ->
    if k = Array.length (I.names r) then
      (* Permutation of all columns: rows are already distinct. *)
      I.of_cols Relation.Set ~names ~cols:picked ~n_rows:n
    else if k = 0 then
      (* The boolean projection: nonempty -> one empty tuple. *)
      I.of_cols Relation.Set ~names:[||] ~cols:[||]
        ~n_rows:(if n = 0 then 0 else 1)
    else begin
      Exec.scanned ctx n;
      let ids = Ivec.create (min (max n 4) 4096) in
      (if k = 1 then begin
         (* Single kept column: the dictionary bounds the code space,
            so a bool array replaces the hash table. *)
         let data = picked.(0).I.data in
         let seen = Array.make (max 1 (Array.length picked.(0).I.dict)) false in
         for i = 0 to n - 1 do
           Exec.tick ctx 1;
           let c = data.(i) in
           if not seen.(c) then begin
             seen.(c) <- true;
             Ivec.push ids i
           end
         done
       end
       else begin
         let seen = Hashtbl.create (2 * n) in
         let key = Array.make k 0 in
         for i = 0 to n - 1 do
           Exec.tick ctx 1;
           for j = 0 to k - 1 do
             key.(j) <- picked.(j).I.data.(i)
           done;
           if not (Hashtbl.mem seen key) then begin
             Hashtbl.add seen (Array.copy key) ();
             Ivec.push ids i
           end
         done
       end);
      Exec.emitted ctx (Ivec.len ids);
      gather_cols ctx ~sem:Relation.Set ~names picked ids
    end

let select_eq ?(ctx = Exec.default) r ~attr ~value =
  match Relation.col_index r attr with
  | None -> invalid_arg ("Relation.value: no attribute " ^ attr)
  | Some j ->
    let c = (I.cols r).(j) in
    let n = Relation.cardinality r in
    Exec.scanned ctx n;
    let ids = Ivec.create 64 in
    (match Hashtbl.find_opt c.I.index value with
    | None -> ()
    | Some code ->
      let data = c.I.data in
      for i = 0 to n - 1 do
        Exec.tick ctx 1;
        if data.(i) = code then Ivec.push ids i
      done);
    Exec.emitted ctx (Ivec.len ids);
    gather_cols ctx
      ~sem:(Relation.semantics r)
      ~names:(I.names r) (I.cols r) ids

let semijoin ?(ctx = Exec.default) r s =
  let rn = Relation.cardinality r and sn = Relation.cardinality s in
  let pairs = common_columns r s in
  let k = Array.length pairs in
  if k = 0 then
    (* Disjoint schemes: r survives unchanged iff s is nonempty. *)
    if sn = 0 then Relation.empty_like r else r
  else begin
    Observe.Metrics.incr (Exec.semijoins ctx);
    Exec.scanned ctx (rn + sn);
    let rcols = I.cols r and scols = I.cols s in
    let remaps =
      Array.map (fun (jr, js) -> remap rcols.(jr) scols.(js)) pairs
    in
    let ids = Ivec.create (min (max rn 4) 4096) in
    (if k = 1 then begin
       let jr, js = pairs.(0) in
       let rm = remaps.(0) in
       let sdata = scols.(js).I.data in
       let keys = Hashtbl.create (2 * sn) in
       for i = 0 to sn - 1 do
         Exec.tick ctx 1;
         let c = rm.(sdata.(i)) in
         if c >= 0 then Hashtbl.replace keys c ()
       done;
       let rdata = rcols.(jr).I.data in
       for i = 0 to rn - 1 do
         Exec.tick ctx 1;
         if Hashtbl.mem keys rdata.(i) then Ivec.push ids i
       done
     end
     else begin
       let keys = Hashtbl.create (2 * sn) in
       let key = Array.make k 0 in
       for i = 0 to sn - 1 do
         Exec.tick ctx 1;
         let ok = ref true in
         for j = 0 to k - 1 do
           let _, js = pairs.(j) in
           let c = remaps.(j).(scols.(js).I.data.(i)) in
           if c < 0 then ok := false else key.(j) <- c
         done;
         if !ok && not (Hashtbl.mem keys key) then
           Hashtbl.add keys (Array.copy key) ()
       done;
       for i = 0 to rn - 1 do
         Exec.tick ctx 1;
         for j = 0 to k - 1 do
           let jr, _ = pairs.(j) in
           key.(j) <- rcols.(jr).I.data.(i)
         done;
         if Hashtbl.mem keys key then Ivec.push ids i
       done
     end);
    Exec.emitted ctx (Ivec.len ids);
    gather_cols ctx ~sem:(Relation.semantics r) ~names:(I.names r) rcols ids
  end

let natural_join ?(ctx = Exec.default) a b =
  Observe.Metrics.incr (Exec.joins ctx);
  let na = Relation.cardinality a and nb = Relation.cardinality b in
  Exec.scanned ctx (na + nb);
  let pairs = common_columns a b in
  let k = Array.length pairs in
  let acols = I.cols a and bcols = I.cols b in
  let anames = I.names a and bnames = I.names b in
  let in_common jb = Array.exists (fun (_, j) -> j = jb) pairs in
  let b_extras =
    Array.of_list
      (List.filter
         (fun jb -> not (in_common jb))
         (List.init (Array.length bnames) Fun.id))
  in
  let sem =
    match (Relation.semantics a, Relation.semantics b) with
    | Relation.Set, Relation.Set -> Relation.Set
    | _ -> Relation.Bag
  in
  let arows = Ivec.create 4096 and brows = Ivec.create 4096 in
  (if k = 0 then
     (* Cartesian product. *)
     for i = 0 to na - 1 do
       for j = 0 to nb - 1 do
         Exec.tick ctx 1;
         Ivec.push arows i;
         Ivec.push brows j
       done
     done
   else begin
     let remaps =
       Array.map (fun (ja, jb) -> remap acols.(ja) bcols.(jb)) pairs
     in
     if k = 1 then begin
       let ja, jb = pairs.(0) in
       let rm = remaps.(0) in
       let bdata = bcols.(jb).I.data in
       let index : (int, Ivec.t) Hashtbl.t = Hashtbl.create (2 * nb) in
       for i = 0 to nb - 1 do
         Exec.tick ctx 1;
         let c = rm.(bdata.(i)) in
         if c >= 0 then (
           match Hashtbl.find_opt index c with
           | Some v -> Ivec.push v i
           | None ->
             let v = Ivec.create 4 in
             Ivec.push v i;
             Hashtbl.add index c v)
       done;
       let adata = acols.(ja).I.data in
       for i = 0 to na - 1 do
         Exec.tick ctx 1;
         match Hashtbl.find_opt index adata.(i) with
         | None -> ()
         | Some v ->
           for t = 0 to Ivec.len v - 1 do
             Exec.tick ctx 1;
             Ivec.push arows i;
             Ivec.push brows (Ivec.get v t)
           done
       done
     end
     else begin
       let index : (int array, Ivec.t) Hashtbl.t = Hashtbl.create (2 * nb) in
       let key = Array.make k 0 in
       for i = 0 to nb - 1 do
         Exec.tick ctx 1;
         let ok = ref true in
         for j = 0 to k - 1 do
           let _, jb = pairs.(j) in
           let c = remaps.(j).(bcols.(jb).I.data.(i)) in
           if c < 0 then ok := false else key.(j) <- c
         done;
         if !ok then (
           match Hashtbl.find_opt index key with
           | Some v -> Ivec.push v i
           | None ->
             let v = Ivec.create 4 in
             Ivec.push v i;
             Hashtbl.add index (Array.copy key) v)
       done;
       for i = 0 to na - 1 do
         Exec.tick ctx 1;
         for j = 0 to k - 1 do
           let ja, _ = pairs.(j) in
           key.(j) <- acols.(ja).I.data.(i)
         done;
         match Hashtbl.find_opt index key with
         | None -> ()
         | Some v ->
           for t = 0 to Ivec.len v - 1 do
             Exec.tick ctx 1;
             Ivec.push arows i;
             Ivec.push brows (Ivec.get v t)
           done
       done
     end
   end);
  let out_n = Ivec.len arows in
  Exec.emitted ctx out_n;
  let out_names =
    Array.append anames (Array.map (fun jb -> bnames.(jb)) b_extras)
  in
  let gathered src ids =
    Array.map
      (fun (c : I.col) ->
        let data = Array.make out_n 0 in
        let cd = c.I.data in
        for i = 0 to out_n - 1 do
          data.(i) <- cd.(Ivec.get ids i)
        done;
        { c with I.data })
      src
  in
  let out_cols =
    Array.append (gathered acols arows)
      (gathered (Array.map (fun jb -> bcols.(jb)) b_extras) brows)
  in
  Exec.tick ctx out_n;
  I.of_cols sem ~names:out_names ~cols:out_cols ~n_rows:out_n

let join_all ?(ctx = Exec.default) = function
  | [] -> None
  | r :: rest ->
    Some (List.fold_left (fun acc s -> natural_join ~ctx acc s) r rest)
