open Graphs
open Hypergraphs

type t = {
  rels : (string * Relation.t) array;
  by_name : (string, int) Hashtbl.t;
  sem : Relation.semantics;
}

let build rels =
  let by_name = Hashtbl.create (max 8 (2 * Array.length rels)) in
  Array.iteri (fun i (n, _) -> Hashtbl.replace by_name n i) rels;
  let sem =
    if Array.exists (fun (_, r) -> Relation.semantics r = Relation.Bag) rels
    then Relation.Bag
    else Relation.Set
  in
  { rels; by_name; sem }

let make rels =
  let names = List.map fst rels in
  if List.length (List.sort_uniq compare names) <> List.length names then
    invalid_arg "Database.make: duplicate relation name";
  (* Mixed semantics would make query results depend on operator
     order (where dedup happens); require one mode per database. *)
  let sems =
    List.sort_uniq compare (List.map (fun (_, r) -> Relation.semantics r) rels)
  in
  if List.length sems > 1 then
    invalid_arg "Database.make: mixed set/bag semantics";
  build (Array.of_list rels)

let semantics t = t.sem

let relation t name =
  match Hashtbl.find_opt t.by_name name with
  | Some i -> snd t.rels.(i)
  | None -> raise Not_found

let names t = List.map fst (Array.to_list t.rels)
let relations t = Array.to_list t.rels
let n_relations t = Array.length t.rels
let relation_at t i = t.rels.(i)
let to_array t = Array.copy t.rels

let of_array rels =
  (* Trusted fast path for the reducer: same names, same semantics,
     only the relations' contents changed. *)
  build rels

let attributes t =
  List.sort_uniq compare
    (List.concat_map
       (fun (_, r) -> Relation.attrs r)
       (Array.to_list t.rels))

let attribute_index t a =
  let rec go i = function
    | [] -> raise Not_found
    | x :: _ when x = a -> i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 (attributes t)

let scheme_hypergraph t =
  let attrs = attributes t in
  let n_nodes = List.length attrs in
  let index a = attribute_index t a in
  let family =
    Array.to_list
      (Array.map
         (fun (_, r) -> Iset.of_list (List.map index (Relation.attrs r)))
         t.rels)
  in
  Hypergraph.create ~n_nodes family

let total_tuples t =
  Array.fold_left (fun acc (_, r) -> acc + Relation.cardinality r) 0 t.rels

let semijoin_reduce ?ctx t ~order =
  (* Index the relations once: a reducer pass touches every tree edge,
     and rebuilding the association list per semi-join made the whole
     pass quadratic in the number of relations. *)
  let rels = Array.copy t.rels in
  let index n =
    match Hashtbl.find_opt t.by_name n with
    | Some i -> i
    | None -> raise Not_found
  in
  List.iter
    (fun (rname, sname) ->
      let ri = index rname and si = index sname in
      let n, r = rels.(ri) in
      let _, s = rels.(si) in
      rels.(ri) <- (n, Ops.semijoin ?ctx r s))
    order;
  build rels

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Array.iter
    (fun (n, r) ->
      Format.fprintf ppf "%s(%s): %d tuples@," n
        (String.concat ", " (Relation.attrs r))
        (Relation.cardinality r))
    t.rels;
  Format.fprintf ppf "@]"
