open Graphs
open Hypergraphs

type t = { rels : (string * Relation.t) list }

let make rels =
  let names = List.map fst rels in
  if List.length (List.sort_uniq compare names) <> List.length names then
    invalid_arg "Database.make: duplicate relation name";
  { rels }

let relation t name = List.assoc name t.rels
let names t = List.map fst t.rels
let relations t = t.rels

let attributes t =
  List.sort_uniq compare
    (List.concat_map (fun (_, r) -> Relation.attrs r) t.rels)

let attribute_index t a =
  let rec go i = function
    | [] -> raise Not_found
    | x :: _ when x = a -> i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 (attributes t)

let scheme_hypergraph t =
  let attrs = attributes t in
  let n_nodes = List.length attrs in
  let index a = attribute_index t a in
  let family =
    List.map
      (fun (_, r) -> Iset.of_list (List.map index (Relation.attrs r)))
      t.rels
  in
  Hypergraph.create ~n_nodes family

let semijoin_reduce t ~order =
  (* Index the relations once: a reducer pass touches every tree edge,
     and rebuilding the association list per semi-join made the whole
     pass quadratic in the number of relations. *)
  let rels = Array.of_list t.rels in
  let by_name = Hashtbl.create (Array.length rels * 2) in
  Array.iteri (fun i (n, _) -> Hashtbl.replace by_name n i) rels;
  let index n =
    match Hashtbl.find_opt by_name n with
    | Some i -> i
    | None -> raise Not_found
  in
  List.iter
    (fun (rname, sname) ->
      let ri = index rname and si = index sname in
      let n, r = rels.(ri) in
      let _, s = rels.(si) in
      rels.(ri) <- (n, Ops.semijoin r s))
    order;
  { rels = Array.to_list rels }

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (n, r) ->
      Format.fprintf ppf "%s(%s): %d tuples@," n
        (String.concat ", " (Relation.attrs r))
        (Relation.cardinality r))
    t.rels;
  Format.fprintf ppf "@]"
