(** A database: named relations plus the scheme-level view as a
    hypergraph over its attributes. Relations are indexed once into an
    array with a name table, so lookup is O(1) and the semi-join
    reducer updates slots in place. *)

open Hypergraphs

type t

val make : (string * Relation.t) list -> t
(** Raises [Invalid_argument] on a duplicate relation name or on mixed
    set/bag semantics — a database is wholly one mode, so query
    results cannot depend on where dedup happens. *)

val semantics : t -> Relation.semantics
(** [Set] for the empty database. *)

val relation : t -> string -> Relation.t
(** O(1); raises [Not_found]. *)

val names : t -> string list

val relations : t -> (string * Relation.t) list

val n_relations : t -> int

val relation_at : t -> int -> string * Relation.t
(** O(1), in {!names} order. *)

val to_array : t -> (string * Relation.t) array
(** A fresh copy; callers may mutate it. *)

val of_array : (string * Relation.t) array -> t
(** Trusted constructor for operator pipelines: skips the duplicate
    and mixed-semantics validation that {!make} performs. *)

val attributes : t -> string list
(** Sorted union of all relations' attributes. *)

val attribute_index : t -> string -> int
(** Position in {!attributes}; raises [Not_found]. *)

val scheme_hypergraph : t -> Hypergraph.t
(** Nodes are attributes (in {!attributes} order), one hyperedge per
    relation (in {!names} order). *)

val total_tuples : t -> int

val semijoin_reduce : ?ctx:Exec.t -> t -> order:(string * string) list -> t
(** Apply a semijoin program: for each pair [(r, s)] in order, replace
    [r] by [r ⋉ s]. *)

val pp : Format.formatter -> t -> unit
