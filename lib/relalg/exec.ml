type t = {
  budget : Runtime.Budget.t;
  trace : Observe.Trace.t;
  metrics : Observe.Metrics.t;
  rows_scanned : Observe.Metrics.counter;
  rows_emitted : Observe.Metrics.counter;
  semijoins : Observe.Metrics.counter;
  joins : Observe.Metrics.counter;
  projections : Observe.Metrics.counter;
  mutable unchecked : int;  (* rows processed since the last checkpoint *)
}

let stride = 256

let make ?(budget = Runtime.Budget.unlimited) ?(trace = Observe.Trace.disabled)
    ?(metrics = Observe.Metrics.disabled) () =
  {
    budget;
    trace;
    metrics;
    rows_scanned = Observe.Metrics.counter metrics "relalg.rows_scanned";
    rows_emitted = Observe.Metrics.counter metrics "relalg.rows_emitted";
    semijoins = Observe.Metrics.counter metrics "relalg.semijoins";
    joins = Observe.Metrics.counter metrics "relalg.joins";
    projections = Observe.Metrics.counter metrics "relalg.projections";
    unchecked = 0;
  }

let default = make ()

let budget t = t.budget
let trace t = t.trace
let metrics t = t.metrics

let tick t n =
  t.unchecked <- t.unchecked + n;
  if t.unchecked >= stride then begin
    t.unchecked <- 0;
    Runtime.Budget.check t.budget
  end

let scanned t n = Observe.Metrics.incr ~by:n t.rows_scanned
let emitted t n = Observe.Metrics.incr ~by:n t.rows_emitted
let rows_scanned t = t.rows_scanned
let rows_emitted t = t.rows_emitted
let semijoins t = t.semijoins
let joins t = t.joins
let projections t = t.projections
