(** Execution context threaded through the relational operators.

    Bundles the runtime budget (cooperative cancellation, checked once
    per {!stride} rows so the hot loops stay branch-cheap), a trace for
    the [relalg.reduce]/[relalg.join] spans, and the metrics registry
    backing the [relalg.*] counter family: [relalg.rows_scanned],
    [relalg.rows_emitted], [relalg.semijoins], [relalg.joins],
    [relalg.projections]. The {!default} context is fully inert —
    unlimited budget, disabled trace and metrics — so operator call
    sites pay nothing when nobody is watching. *)

type t

val make :
  ?budget:Runtime.Budget.t ->
  ?trace:Observe.Trace.t ->
  ?metrics:Observe.Metrics.t ->
  unit ->
  t

val default : t
(** Unlimited budget, disabled trace/metrics. *)

val budget : t -> Runtime.Budget.t
val trace : t -> Observe.Trace.t
val metrics : t -> Observe.Metrics.t

val stride : int
(** Rows between cooperative budget checkpoints. *)

val tick : t -> int -> unit
(** [tick t n]: account [n] processed rows toward the next budget
    checkpoint; raises the internal exhaustion signal (caught by
    [Budget.protect] at the {!Yannakakis} boundary) when the budget is
    gone. *)

val scanned : t -> int -> unit
(** Bump [relalg.rows_scanned]. *)

val emitted : t -> int -> unit
(** Bump [relalg.rows_emitted]. *)

(**/**)

val rows_scanned : t -> Observe.Metrics.counter
val rows_emitted : t -> Observe.Metrics.counter
val semijoins : t -> Observe.Metrics.counter
val joins : t -> Observe.Metrics.counter
val projections : t -> Observe.Metrics.counter
