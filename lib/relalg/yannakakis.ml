open Hypergraphs

type plan = Acyclic of Join_tree.t | Naive_fallback

let plan db =
  match Gyo.join_tree (Database.scheme_hypergraph db) with
  | Some jt -> Acyclic jt
  | None -> Naive_fallback

let full_reducer db jt =
  (* Snapshot names into an array once: [List.nth] per reducer step
     made both passes quadratic in the number of relations. *)
  let names = Array.of_list (Database.names db) in
  let pre = Join_tree.preorder jt in
  let upward =
    (* children before parents: reverse preorder; semijoin parent by
       child. *)
    List.rev pre
    |> List.filter_map (fun i ->
           let p = jt.Join_tree.parent.(i) in
           if p >= 0 then Some (names.(p), names.(i)) else None)
  in
  let downward =
    pre
    |> List.filter_map (fun i ->
           let p = jt.Join_tree.parent.(i) in
           if p >= 0 then Some (names.(i), names.(p)) else None)
  in
  Database.semijoin_reduce db ~order:(upward @ downward)

let check_output db output =
  let known = Database.attributes db in
  List.iter
    (fun a ->
      if not (List.mem a known) then
        invalid_arg ("Yannakakis: unknown output attribute " ^ a))
    output

let evaluate_naive db ~output =
  check_output db output;
  match Ops.join_all (List.map snd (Database.relations db)) with
  | None -> Relation.make ~attrs:output []
  | Some joined -> Ops.project joined output

let evaluate db ~output =
  check_output db output;
  match plan db with
  | Naive_fallback -> evaluate_naive db ~output
  | Acyclic jt ->
    let reduced = full_reducer db jt in
    let rels = Array.of_list (Database.relations reduced) in
    let rel_at i = snd rels.(i) in
    let rec eval_subtree i =
      let rel = rel_at i in
      let joined =
        List.fold_left
          (fun acc child -> Ops.natural_join acc (eval_subtree child))
          rel (Join_tree.children jt i)
      in
      let p = jt.Join_tree.parent.(i) in
      let keep_above = if p < 0 then [] else Relation.attrs (rel_at p) in
      let keep =
        List.filter
          (fun a -> List.mem a output || List.mem a keep_above)
          (Relation.attrs joined)
      in
      Ops.project joined keep
    in
    let root_results = List.map eval_subtree (Join_tree.roots jt) in
    (match Ops.join_all root_results with
    | None -> Relation.make ~attrs:output []
    | Some r -> Ops.project r output)
