open Hypergraphs

type plan = Acyclic of Join_tree.t | Naive_fallback

let plan db =
  match Gyo.join_tree (Database.scheme_hypergraph db) with
  | Some jt -> Acyclic jt
  | None -> Naive_fallback

(* Output attributes must exist in the database and be pairwise
   distinct — both failure modes used to escape as an untyped
   [Invalid_argument] from deep inside [Ops.project]. *)
let check_output db output =
  let known = Database.attributes db in
  let seen = Hashtbl.create 8 in
  let rec go = function
    | [] -> Ok ()
    | a :: rest ->
      if Hashtbl.mem seen a then
        Error
          (Runtime.Errors.Invalid_instance
             ("duplicate output attribute '" ^ a ^ "'"))
      else if not (List.mem a known) then
        Error
          (Runtime.Errors.Invalid_instance
             ("unknown output attribute '" ^ a ^ "'"))
      else begin
        Hashtbl.add seen a ();
        go rest
      end
  in
  go output

let full_reducer ?(ctx = Exec.default) db jt =
  Observe.Trace.span (Exec.trace ctx) "relalg.reduce" @@ fun () ->
  let rels = Database.to_array db in
  let order = Join_tree.order jt in
  let parent = jt.Join_tree.parent in
  let q = Array.length order in
  (* Upward: reverse preorder visits every node before its parent, so
     each subtree is fully folded into its root's parent slot. *)
  for t = q - 1 downto 0 do
    let i = order.(t) in
    let p = parent.(i) in
    if p >= 0 then begin
      let pn, pr = rels.(p) in
      let _, cr = rels.(i) in
      rels.(p) <- (pn, Ops.semijoin ~ctx pr cr)
    end
  done;
  (* Downward: preorder, semijoin each child by its reduced parent. *)
  for t = 0 to q - 1 do
    let i = order.(t) in
    let p = parent.(i) in
    if p >= 0 then begin
      let cn, cr = rels.(i) in
      let _, pr = rels.(p) in
      rels.(i) <- (cn, Ops.semijoin ~ctx cr pr)
    end
  done;
  Database.of_array rels

let empty_result db ~output =
  Relation.make ~semantics:(Database.semantics db) ~attrs:output []

let naive_unchecked ctx db ~output =
  match Ops.join_all ~ctx (List.map snd (Database.relations db)) with
  | None -> empty_result db ~output
  | Some joined -> Ops.project ~ctx joined output

let acyclic_unchecked ctx db jt ~output =
  let reduced = full_reducer ~ctx db jt in
  Observe.Trace.span (Exec.trace ctx) "relalg.join" @@ fun () ->
  let rels = Database.to_array reduced in
  let rel_at i = snd rels.(i) in
  let kids = Join_tree.children_arrays jt in
  let in_output = Hashtbl.create 8 in
  List.iter (fun a -> Hashtbl.replace in_output a ()) output;
  let rec eval_subtree i =
    let joined =
      Array.fold_left
        (fun acc child -> Ops.natural_join ~ctx acc (eval_subtree child))
        (rel_at i) kids.(i)
    in
    let p = jt.Join_tree.parent.(i) in
    let keep_above = if p < 0 then [] else Relation.attrs (rel_at p) in
    (* Projecting early is what keeps intermediates output-bounded;
       keeping the separator with the parent preserves join keys, and
       in bag mode also multiplicities (the kept attributes determine
       each surviving row's contribution). *)
    let keep =
      List.filter
        (fun a -> Hashtbl.mem in_output a || List.mem a keep_above)
        (Relation.attrs joined)
    in
    Ops.project ~ctx joined keep
  in
  let root_results = List.map eval_subtree (Join_tree.roots jt) in
  match Ops.join_all ~ctx root_results with
  | None -> empty_result db ~output
  | Some r -> Ops.project ~ctx r output

let boundary ctx f =
  match Runtime.Budget.protect (Exec.budget ctx) f with
  | Ok r -> Ok r
  | Error _reason ->
    (* Yannakakis is the structured exact plan; exhaustion reports
       under that rung like the solver's structured algorithms do. *)
    Error (Runtime.Errors.Budget_exhausted Runtime.Errors.Exact_structured)

let evaluate_naive ?(ctx = Exec.default) db ~output =
  match check_output db output with
  | Error e -> Error e
  | Ok () -> boundary ctx (fun () -> naive_unchecked ctx db ~output)

let evaluate ?(ctx = Exec.default) db ~output =
  match check_output db output with
  | Error e -> Error e
  | Ok () ->
    boundary ctx (fun () ->
        match plan db with
        | Naive_fallback -> naive_unchecked ctx db ~output
        | Acyclic jt -> acyclic_unchecked ctx db jt ~output)
