(** Yannakakis' algorithm: evaluate a project-join query over an
    α-acyclic database in polynomial time using a full semijoin reducer
    along a join tree — the efficiency payoff of acyclicity that
    motivates the paper's Section 1.

    [evaluate] falls back to the naive join-everything plan when the
    scheme is cyclic. Both evaluators are runtime boundaries in the PR-2
    sense: invalid output lists come back as typed
    [Runtime.Errors.Invalid_instance] values and budget exhaustion as
    [Budget_exhausted Exact_structured], never as escaping
    exceptions. Bag-mode databases evaluate under bag semantics
    throughout: because every intermediate projection keeps the
    separator with the parent, the projection commutes with the joins
    and multiplicities match the naive plan's (Atserias–Kolaitis,
    arXiv:2012.12126). *)

open Hypergraphs

type plan =
  | Acyclic of Join_tree.t  (** join tree over the relations *)
  | Naive_fallback

val plan : Database.t -> plan

val full_reducer : ?ctx:Exec.t -> Database.t -> Join_tree.t -> Database.t
(** Upward then downward semijoin passes (in-place over an indexed
    relation array); the result is globally consistent when the tree
    is a coherent join tree. Recorded under a [relalg.reduce] trace
    span when the context carries an active trace. *)

val evaluate :
  ?ctx:Exec.t ->
  Database.t ->
  output:string list ->
  (Relation.t, Runtime.Errors.t) result
(** Project-join: π_output(⋈ all relations). [Error (Invalid_instance _)]
    when an output attribute is unknown or listed twice;
    [Error (Budget_exhausted _)] when the context's budget runs out. *)

val evaluate_naive :
  ?ctx:Exec.t ->
  Database.t ->
  output:string list ->
  (Relation.t, Runtime.Errors.t) result
(** Ground truth: fold the natural joins in declaration order, then
    project. Exponential intermediate results possible. *)
