(** Relational algebra operators: projection, selection, natural join,
    semijoin — hash-based over the columnar layout, with dictionary
    codes as join keys (single-int fast path for one common attribute,
    int-array keys otherwise).

    Every operator takes an optional {!Exec.t} context that threads
    budget checkpoints, [relalg.*] metrics counters and (via
    {!Yannakakis}) trace spans through the row loops; the default
    context is inert.

    Result semantics: projection, selection and semijoin preserve the
    left input's {!Relation.semantics}; a join of two [Set] relations
    is [Set], anything touching a [Bag] input is [Bag] with
    multiplicities multiplied per matching pair. *)

val project : ?ctx:Exec.t -> Relation.t -> string list -> Relation.t
(** Keep the listed attributes. Raises [Invalid_argument] up front on
    an unknown or duplicate attribute. Under [Set] duplicate result
    rows collapse (projecting to [[]] yields the 0/1-row boolean
    relation); under [Bag] every input row survives — a zero-copy
    column selection. *)

val select_eq : ?ctx:Exec.t -> Relation.t -> attr:string -> value:string -> Relation.t

val natural_join : ?ctx:Exec.t -> Relation.t -> Relation.t -> Relation.t
(** Hash join on the common attributes; a cartesian product when there
    are none. Column order: left's columns then right's extras. *)

val semijoin : ?ctx:Exec.t -> Relation.t -> Relation.t -> Relation.t
(** [semijoin r s] keeps the tuples of [r] that join with some tuple of
    [s]. Never introduces duplicates; preserves [r]'s semantics. *)

val join_all : ?ctx:Exec.t -> Relation.t list -> Relation.t option
(** Left fold of natural joins; [None] on the empty list. *)
