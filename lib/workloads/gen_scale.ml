open Graphs
open Bipartite

(* Million-node instances as disjoint unions of bounded-size blocks.
   Each block is a small hand-designed schema pattern whose chordality
   class is known (and pinned by test/test_scale.ml); the union keeps
   the class, since every chordality/acyclicity property in the
   taxonomy is decided component by component. Bounded blocks also keep
   compilation linear: GYO and the classifier run per component, so
   their superlinear factors apply to a constant, not to n.

   Nothing here holds an edge list. An instance is its family, seed and
   per-block offset tables (O(#blocks) ints); [iter_edges] re-derives
   every block's edges on the fly from a splitmix-style hash of
   (seed, block), which makes the stream replayable — exactly what the
   two-pass [Csr.of_edge_iter] needs — and the whole generator
   deterministic per seed. *)

type family = Forest | Chordal62 | Alpha

let family_name = function
  | Forest -> "forest"
  | Chordal62 -> "chordal62"
  | Alpha -> "alpha"

let family_of_string = function
  | "forest" -> Some Forest
  | "chordal62" -> Some Chordal62
  | "alpha" -> Some Alpha
  | _ -> None

(* splitmix64-style finalizer over OCaml's native ints: cheap, stateless,
   and well-distributed enough to vary block shapes. Overflow wraps. *)
let hash seed b =
  let h =
    ref ((seed * 0x1E3779B97F4A7C15) lxor (b * 0x3F58476D1CE4E5B9) lxor 0x2545F4914F6CDD1D)
  in
  h := (!h lxor (!h lsr 30)) * 0x3F58476D1CE4E5B9;
  h := (!h lxor (!h lsr 27)) * 0x14D049BB133111EB;
  (!h lxor (!h lsr 31)) land max_int

(* Per-block shape parameter: a small deterministic variation so the
   workload is not one block stamped n times. *)
let variation seed b = hash seed b mod 3

(* Block shapes, as (lefts, rights, edges) counts plus a local edge
   emitter calling [f left right] with block-local indices.

   forest    — a chain of binary relations a0-R0-a1-R1-a2-…: the
               incidence graph is a path, so the union is a forest,
               (4,1)-chordal.
   chordal62 — a relation tree with pairwise-disjoint 2-attribute
               separators (γ-acyclic, Theorem 1 ⇒ (6,2)-chordal): root
               R0 = {0,1,2,3}, children R1 = {0,1}+fresh and
               R2 = {2,3}+fresh, then a chain hanging off R1's fresh
               pair. The shared pairs create C4s, so it is not
               (4,1)-chordal.
   alpha     — overlapping separators: R0 = {0,1,2}, R1 = {0,1,3},
               R2 = {1,2,4} admit the join tree R1-R0-R2 (α-acyclic)
               but the 6-cycle 0-R1-1-R2-2-R0-0 has exactly one chord
               (R0-1), so the block is not (6,2)-chordal. A short
               Berge chain off attribute 4 varies the size. *)

let forest_chain v = 3 + v (* relations in the chain: 3..5 *)

let chordal62_chain v = v (* extra chain relations: 0..2 *)

let alpha_chain v = v (* extra chain relations: 0..2 *)

let block_dims family v =
  match family with
  | Forest ->
    let k = forest_chain v in
    (k + 1, k, 2 * k)
  | Chordal62 ->
    let c = chordal62_chain v in
    (8 + (2 * c), 3 + c, 4 * (3 + c))
  | Alpha ->
    let c = alpha_chain v in
    (5 + c, 3 + c, 9 + (2 * c))

let block_iter family v f =
  match family with
  | Forest ->
    let k = forest_chain v in
    for t = 0 to k - 1 do
      f t t;
      f (t + 1) t
    done
  | Chordal62 ->
    let c = chordal62_chain v in
    (* R0 = {0,1,2,3} *)
    for a = 0 to 3 do
      f a 0
    done;
    (* R1 = {0,1,4,5}, R2 = {2,3,6,7} *)
    List.iter (fun a -> f a 1) [ 0; 1; 4; 5 ];
    List.iter (fun a -> f a 2) [ 2; 3; 6; 7 ];
    (* chain: R(3+t) = {4+2t, 5+2t} ∪ fresh {8+2t, 9+2t} *)
    for t = 0 to c - 1 do
      let r = 3 + t and base = 4 + (2 * t) in
      f base r;
      f (base + 1) r;
      f (base + 4) r;
      f (base + 5) r
    done
  | Alpha ->
    let c = alpha_chain v in
    List.iter (fun a -> f a 0) [ 0; 1; 2 ];
    List.iter (fun a -> f a 1) [ 0; 1; 3 ];
    List.iter (fun a -> f a 2) [ 1; 2; 4 ];
    (* Berge chain: R(3+t) = {4+t, 5+t} *)
    for t = 0 to c - 1 do
      f (4 + t) (3 + t);
      f (5 + t) (3 + t)
    done

type t = {
  family : family;
  seed : int;
  n_blocks : int;
  loff : int array;  (* block b's lefts are loff.(b) .. loff.(b+1)-1 *)
  roff : int array;
  m : int;
}

let make family ~target_n ~seed =
  if target_n < 1 then invalid_arg "Gen_scale.make: target_n must be positive";
  (* Count blocks until the node budget is met, then lay out offsets. *)
  let n_blocks = ref 0 and nodes = ref 0 in
  while !nodes < target_n do
    let bl, br, _ = block_dims family (variation seed !n_blocks) in
    nodes := !nodes + bl + br;
    incr n_blocks
  done;
  let n_blocks = !n_blocks in
  let loff = Array.make (n_blocks + 1) 0 in
  let roff = Array.make (n_blocks + 1) 0 in
  let m = ref 0 in
  for b = 0 to n_blocks - 1 do
    let bl, br, bm = block_dims family (variation seed b) in
    loff.(b + 1) <- loff.(b) + bl;
    roff.(b + 1) <- roff.(b) + br;
    m := !m + bm
  done;
  { family; seed; n_blocks; loff; roff; m = !m }

let family t = t.family
let n_blocks t = t.n_blocks
let nl t = t.loff.(t.n_blocks)
let nr t = t.roff.(t.n_blocks)
let n t = nl t + nr t
let m t = t.m

let iter_edges t f =
  for b = 0 to t.n_blocks - 1 do
    let lo = t.loff.(b) and ro = t.roff.(b) in
    block_iter t.family (variation t.seed b) (fun i j -> f (lo + i) (ro + j))
  done

let to_bigraph t = Bigraph.of_edge_iter ~nl:(nl t) ~nr:(nr t) (iter_edges t)

let to_csr t = Bigraph.csr (to_bigraph t)

(* The pre-CSR construction path, kept as the benchmark baseline. The
   seed pipeline was: generator builds an [(int * int) list] of edges,
   [Bigraph.of_edges] turns it into per-node AVL sets (one insertion
   per directed edge), and compile derives the CSR from those sets —
   so the baseline materialises the list too, faithfully. Identical
   graph by construction: test/test_scale.ml pins [Bigraph.equal]
   between the two, and the scale bench reports the throughput
   ratio. *)
let to_bigraph_sets t =
  let edges = ref [] in
  iter_edges t (fun i j -> edges := (i, j) :: !edges);
  Bigraph.of_edges ~nl:(nl t) ~nr:(nr t) (List.rev !edges)

(* Deterministic in-block terminal sets: every block is connected, so
   any subset of one block's nodes is a feasible Steiner instance.
   Picks [k] evenly spaced lefts of block [b] — pure index arithmetic,
   usable at n = 10^6 without touching any adjacency. *)
let block_terminals t ~block ~k =
  if block < 0 || block >= t.n_blocks then
    invalid_arg "Gen_scale.block_terminals: block out of range";
  let lo = t.loff.(block) in
  let bl = t.loff.(block + 1) - lo in
  let k = max 1 (min k bl) in
  let pick i = lo + (if k = 1 then 0 else i * (bl - 1) / (k - 1)) in
  Iset.of_list (List.init k pick)
