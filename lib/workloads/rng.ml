type t = Random.State.t

let make ~seed = Random.State.make [| seed; 0x6d696e63; 0x6f6e6e |]

let for_trial ~section ~trial =
  Random.State.make [| Hashtbl.hash section; trial; 0x6d696e63; 0x6f6e6e |]

let int t bound =
  if bound < 1 then invalid_arg "Rng.int: bound must be positive";
  Random.State.int t bound

let float t bound = Random.State.float t bound

let bool t p = Random.State.float t 1.0 < p

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | l -> List.nth l (int t (List.length l))

let pick_array t a =
  if Array.length a = 0 then invalid_arg "Rng.pick_array: empty array";
  a.(int t (Array.length a))

let shuffle t l =
  let a = Array.of_list l in
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a

let sample t k l =
  let shuffled = shuffle t l in
  List.filteri (fun i _ -> i < k) shuffled

let split t = Random.State.make [| Random.State.bits t; Random.State.bits t |]
