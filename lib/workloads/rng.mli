(** Deterministic pseudo-random source for workload generation.

    A thin wrapper over [Random.State] so that every generator takes an
    explicit seed and experiments are reproducible run to run. *)

type t

val make : seed:int -> t

val for_trial : section:string -> trial:int -> t
(** One deterministic stream per (section, trial) pair — the single
    seeding helper shared by the bench harness and the examples, so a
    given trial of a given experiment sees the same randomness run to
    run regardless of what other sections consumed before it. *)

val int : t -> int -> int
(** [int t bound] in [0, bound); [bound >= 1]. *)

val float : t -> float -> float

val bool : t -> float -> bool
(** [bool t p] is true with probability [p]. *)

val pick : t -> 'a list -> 'a
(** Uniform element of a nonempty list. *)

val pick_array : t -> 'a array -> 'a

val shuffle : t -> 'a list -> 'a list

val sample : t -> int -> 'a list -> 'a list
(** [sample t k l]: [k] distinct elements (all of [l] when [k >=
    length]). *)

val split : t -> t
(** An independent stream (for nested generators). *)
