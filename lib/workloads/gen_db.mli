(** Random populated databases over generated schemes, for the
    relational-engine experiments. All generators accept [?semantics]:
    the default [Set] collapses duplicate tuples at construction (so a
    relation may hold fewer than [rows] tuples when the domain is
    small), [Bag] keeps all [rows] with multiplicities. *)

open Relalg

val over_hypergraph :
  ?semantics:Relation.semantics ->
  Rng.t ->
  Hypergraphs.Hypergraph.t ->
  rows:int ->
  domain:int ->
  Database.t
(** One relation per hyperedge (named [r0], [r1], ...), attributes
    named [a<i>] after the node ids, [rows] random tuples per relation
    with values drawn from a [domain]-sized dictionary. *)

val acyclic :
  ?semantics:Relation.semantics ->
  Rng.t ->
  n_relations:int ->
  rows:int ->
  Database.t
(** Random α-acyclic schema with data. *)

val chain :
  ?semantics:Relation.semantics ->
  ?dangling:float ->
  Rng.t ->
  length:int ->
  rows:int ->
  domain:int ->
  Database.t
(** The classic path schema r_i(a_i, a_(i+1)). With [dangling] > 0,
    that fraction of the last relation's tuples get a left value from
    [domain, 2*domain) — tuples no other relation can join, which a
    semijoin reducer prunes up front but a fold-left naive join drags
    to its final join. [dangling] defaults to [0.]. *)
