open Graphs
open Bipartite

(* Flat-buffer construction: the draws go once into a growable edge
   buffer (the stream must not re-consume the rng), which then feeds
   the two-pass CSR build — no [(int * int) list] and no per-node sets
   even at large nl * nr. Same draw sequence, same graph as the old
   list-based version. *)
let gnp rng ~nl ~nr ~p =
  let b = Csr.Builder.create ~hint:(nl + nr) (nl + nr) in
  for i = 0 to nl - 1 do
    for j = 0 to nr - 1 do
      if Rng.bool rng p then Csr.Builder.add_edge b i (nl + j)
    done
  done;
  Bigraph.of_csr ~nl ~nr (Csr.Builder.build b)

let forest rng ~n =
  let tree = Gen_graph.random_tree rng ~n in
  match Bigraph.of_ugraph tree with
  | Some (g, _) -> g
  | None -> assert false (* trees are bipartite *)

let chordal_62 rng ~n_right ~max_size =
  Correspond.of_hypergraph (Gen_hyper.gamma_acyclic rng ~n_edges:n_right ~max_size)

let alpha_bipartite rng ~n_right ~max_size =
  Correspond.of_hypergraph (Gen_hyper.alpha_acyclic rng ~n_edges:n_right ~max_size)

let chordal_61_flower rng ~petals =
  Correspond.of_hypergraph (Gen_hyper.beta_flower rng ~petals)

let random_terminals rng g ~k =
  let u = Bigraph.ugraph g in
  let components = Traverse.components u in
  let largest =
    List.fold_left
      (fun best c ->
        if Iset.cardinal c > Iset.cardinal best then c else best)
      Iset.empty components
  in
  Iset.of_list (Rng.sample rng k (Iset.elements largest))
