(** Streaming degree-bounded workloads for the million-node scale pass.

    An instance is a disjoint union of bounded-size blocks (each a
    small schema pattern of a known chordality class), described by
    O(#blocks) offset tables and a deterministic per-block hash — never
    by an edge list. {!iter_edges} re-derives the edges on demand and
    replays identically, which is exactly the contract of
    {!Graphs.Csr.of_edge_iter}'s two-pass build; edges stream out block
    by block in near-ascending order, the CSR-friendly layout.

    Class per family (pinned by test/test_scale.ml on small instances):
    [Forest] is (4,1)-chordal, [Chordal62] is (6,2)- but not
    (4,1)-chordal (γ-acyclic relation trees with disjoint separators),
    [Alpha] is α-acyclic but not (6,2)-chordal (overlapping
    separators). *)

open Graphs
open Bipartite

type family = Forest | Chordal62 | Alpha

val family_name : family -> string

val family_of_string : string -> family option

type t
(** An instance description: family, seed, block offsets. O(#blocks)
    memory; the edges exist only as a replayable stream. *)

val make : family -> target_n:int -> seed:int -> t
(** Smallest instance of at least [target_n] total (left + right)
    nodes. Deterministic per ([family], [seed]). *)

val family : t -> family
val n_blocks : t -> int
val nl : t -> int
val nr : t -> int
val n : t -> int
val m : t -> int

val iter_edges : t -> (int -> int -> unit) -> unit
(** [(left, right)] index pairs, block by block; replayable. *)

val to_bigraph : t -> Bigraph.t
(** Direct-to-CSR construction ({!Bipartite.Bigraph.of_edge_iter}): no
    per-node set is ever materialised. *)

val to_bigraph_sets : t -> Bigraph.t
(** Set-based baseline (one AVL insertion per directed edge), equal to
    {!to_bigraph} as a graph. Benchmark/differential-test reference —
    do not use at n = 10^6. *)

val to_csr : t -> Csr.t
(** Underlying flat adjacency of {!to_bigraph} (n = nl + nr, rights
    shifted by nl). *)

val block_terminals : t -> block:int -> k:int -> Iset.t
(** [k] evenly spaced left nodes of one block, as underlying indices —
    a feasible (single-component) terminal set chosen by pure index
    arithmetic, so query workloads at n = 10^6 need no adjacency
    access. Clamped to the block's size. *)
