open Relalg

let over_hypergraph ?semantics rng h ~rows ~domain =
  let attr i = Printf.sprintf "a%d" i in
  let rels =
    Array.to_list (Hypergraphs.Hypergraph.edges h)
    |> List.mapi (fun j e ->
           let attrs = List.map attr (Graphs.Iset.elements e) in
           let row _ =
             List.map (fun _ -> string_of_int (Rng.int rng (max 1 domain))) attrs
           in
           ( Printf.sprintf "r%d" j,
             Relation.make ?semantics ~attrs (List.init rows row) ))
  in
  Database.make rels

let acyclic ?semantics rng ~n_relations ~rows =
  let h = Gen_hyper.alpha_acyclic rng ~n_edges:n_relations ~max_size:4 in
  over_hypergraph ?semantics rng h ~rows ~domain:(max 2 (rows / 3))

let chain ?semantics ?(dangling = 0.0) rng ~length ~rows ~domain =
  let domain = max 1 domain in
  let rels =
    List.init length (fun j ->
        let a = Printf.sprintf "a%d" j and b = Printf.sprintf "a%d" (j + 1) in
        let last = j = length - 1 in
        let row _ =
          let left =
            (* Dangling mass goes on the last relation's shared (left)
               column: values in [domain, 2*domain) never match r_(j-1),
               so the semijoin reducer prunes them immediately while a
               left-fold naive join only discovers them at its final
               join. *)
            if last && length > 1 && Rng.bool rng dangling then
              domain + Rng.int rng domain
            else Rng.int rng domain
          in
          [ string_of_int left; string_of_int (Rng.int rng domain) ]
        in
        ( Printf.sprintf "r%d" j,
          Relation.make ?semantics ~attrs:[ a; b ] (List.init rows row) ))
  in
  Database.make rels
