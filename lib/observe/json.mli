(** Minimal JSON reader shared by the exporters, the bench harness, and
    the smoke validators.  Parsing is for validation and tooling, not a
    general-purpose library; strings with [\u] escapes are accepted but
    the code point is not decoded. *)

type t =
  | Jnull
  | Jbool of bool
  | Jnum of float
  | Jstr of string
  | Jarr of t list
  | Jobj of (string * t) list

exception Bad_json of string

val escape : string -> string
(** Escape a string for embedding between double quotes in JSON
    output. *)

val parse_exn : string -> t
(** @raise Bad_json with an offset-bearing message on malformed input. *)

val parse : string -> (t, string) result

val member : string -> t -> t option
(** [member k j] is the value of field [k] when [j] is an object. *)

val read_file : string -> string
(** Slurp a file as bytes; raises [Sys_error] if unreadable. *)
