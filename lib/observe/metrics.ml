type counter = { cname : string; mutable count : int; live : bool }

type histogram = {
  hname : string;
  bounds : float array;  (* upper bucket bounds, strictly increasing *)
  buckets : int array;  (* length = Array.length bounds + 1 (overflow) *)
  mutable sum : float;
  mutable events : int;
  live : bool;
}

type t = {
  active : bool;
  mutable counters : counter list;  (* reverse creation order *)
  mutable histograms : histogram list;
}

(* A single shared dead counter/histogram backs the disabled registry,
   so the hot-path [incr]/[observe] cost when metrics are off is one
   field load plus a branch. *)
let inert = { cname = ""; count = 0; live = false }

let inert_histogram =
  {
    hname = "";
    bounds = [||];
    buckets = [| 0 |];
    sum = 0.0;
    events = 0;
    live = false;
  }

let disabled = { active = false; counters = []; histograms = [] }
let make () = { active = true; counters = []; histograms = [] }
let active t = t.active

let counter t name =
  if not t.active then inert
  else
    match List.find_opt (fun c -> c.cname = name) t.counters with
    | Some c -> c
    | None ->
      let c = { cname = name; count = 0; live = true } in
      t.counters <- c :: t.counters;
      c

let incr ?(by = 1) (c : counter) = if c.live then c.count <- c.count + by
let count (c : counter) = c.count

let default_bounds = [| 1.; 4.; 16.; 64.; 256.; 1024.; 4096.; 16384. |]

let histogram t ?(bounds = default_bounds) name =
  if not t.active then inert_histogram
  else
    match List.find_opt (fun h -> h.hname = name) t.histograms with
    | Some h -> h
    | None ->
      let bounds = Array.copy bounds in
      Array.sort compare bounds;
      let h =
        {
          hname = name;
          bounds;
          buckets = Array.make (Array.length bounds + 1) 0;
          sum = 0.0;
          events = 0;
          live = true;
        }
      in
      t.histograms <- h :: t.histograms;
      h

let observe h v =
  if h.live then begin
    let k = Array.length h.bounds in
    let i = ref 0 in
    while !i < k && v > h.bounds.(!i) do
      i := !i + 1
    done;
    h.buckets.(!i) <- h.buckets.(!i) + 1;
    h.sum <- h.sum +. v;
    h.events <- h.events + 1
  end

let counters t =
  List.rev_map (fun c -> (c.cname, c.count)) t.counters

let histograms t = List.rev t.histograms

let hist_name h = h.hname
let hist_bounds h = Array.copy h.bounds
let hist_buckets h = Array.copy h.buckets
let hist_sum h = h.sum
let hist_events h = h.events
