type counter = { cname : string; count : int Atomic.t; live : bool }

type histogram = {
  hname : string;
  bounds : float array;  (* upper bucket bounds, strictly increasing *)
  buckets : int array;  (* length = Array.length bounds + 1 (overflow) *)
  mutable sum : float;
  mutable events : int;
  live : bool;
  hlock : Mutex.t;  (* observe mutates three fields; keep them coherent *)
}

type t = {
  active : bool;
  mutable counters : counter list;  (* reverse creation order *)
  mutable histograms : histogram list;
  rlock : Mutex.t;  (* guards find-or-create on the two lists *)
}

(* A single shared dead counter/histogram backs the disabled registry,
   so the hot-path [incr]/[observe] cost when metrics are off is one
   field load plus a branch. *)
let inert = { cname = ""; count = Atomic.make 0; live = false }

let inert_histogram =
  {
    hname = "";
    bounds = [||];
    buckets = [| 0 |];
    sum = 0.0;
    events = 0;
    live = false;
    hlock = Mutex.create ();
  }

let disabled =
  { active = false; counters = []; histograms = []; rlock = Mutex.create () }

let make () =
  { active = true; counters = []; histograms = []; rlock = Mutex.create () }

let active t = t.active

let counter t name =
  if not t.active then inert
  else begin
    Mutex.lock t.rlock;
    let c =
      match List.find_opt (fun c -> c.cname = name) t.counters with
      | Some c -> c
      | None ->
        let c = { cname = name; count = Atomic.make 0; live = true } in
        t.counters <- c :: t.counters;
        c
    in
    Mutex.unlock t.rlock;
    c
  end

let incr ?(by = 1) (c : counter) =
  if c.live then ignore (Atomic.fetch_and_add c.count by)

let count (c : counter) = Atomic.get c.count

let default_bounds = [| 1.; 4.; 16.; 64.; 256.; 1024.; 4096.; 16384. |]

let histogram t ?(bounds = default_bounds) name =
  if not t.active then inert_histogram
  else begin
    Mutex.lock t.rlock;
    let h =
      match List.find_opt (fun h -> h.hname = name) t.histograms with
      | Some h -> h
      | None ->
        let bounds = Array.copy bounds in
        Array.sort compare bounds;
        let h =
          {
            hname = name;
            bounds;
            buckets = Array.make (Array.length bounds + 1) 0;
            sum = 0.0;
            events = 0;
            live = true;
            hlock = Mutex.create ();
          }
        in
        t.histograms <- h :: t.histograms;
        h
    in
    Mutex.unlock t.rlock;
    h
  end

let observe h v =
  if h.live then begin
    let k = Array.length h.bounds in
    let i = ref 0 in
    while !i < k && v > h.bounds.(!i) do
      i := !i + 1
    done;
    Mutex.lock h.hlock;
    h.buckets.(!i) <- h.buckets.(!i) + 1;
    h.sum <- h.sum +. v;
    h.events <- h.events + 1;
    Mutex.unlock h.hlock
  end

let find_counter t name =
  Mutex.lock t.rlock;
  let c = List.find_opt (fun c -> c.cname = name) t.counters in
  Mutex.unlock t.rlock;
  Option.map (fun c -> Atomic.get c.count) c

let counters t =
  List.rev_map (fun c -> (c.cname, Atomic.get c.count)) t.counters

let histograms t = List.rev t.histograms

let hist_name h = h.hname
let hist_bounds h = Array.copy h.bounds
let hist_buckets h = Array.copy h.buckets
let hist_sum h = h.sum
let hist_events h = h.events
