(** Hierarchical tracing spans with monotonic timings.

    A trace records a tree of named spans; each span carries an id, its
    parent's id (0 at the root), a start offset and duration in seconds
    relative to the trace's creation, and a list of key/value
    attributes.  The {!disabled} trace makes every recording entry point
    a single field load plus branch, so instrumented code pays nothing
    when observability is off. *)

type value = Bool of bool | Int of int | Float of float | Str of string

type span = private {
  id : int;
  parent : int;  (** 0 when the span has no parent *)
  name : string;
  start_s : float;  (** seconds since the trace was created *)
  mutable dur_s : float;  (** -1 while the span is still open *)
  mutable attrs : (string * value) list;
}

type t

val disabled : t
(** Shared inert trace: records nothing, [active] is [false]. *)

val make : ?clock:(unit -> float) -> unit -> t
(** Fresh recording trace.  [clock] defaults to [Unix.gettimeofday];
    inject a fake clock for deterministic tests. *)

val active : t -> bool

val span : t -> ?attrs:(string * value) list -> string -> (unit -> 'a) -> 'a
(** [span t name f] runs [f] inside a new span.  The span is closed
    (with its duration) when [f] returns or raises; on raise the
    exception name is recorded as a ["raised"] attribute and the
    exception re-raised. *)

val add_attr : t -> string -> value -> unit
(** Attach an attribute to the innermost open span, if any. *)

val event : t -> ?attrs:(string * value) list -> string -> unit
(** Zero-duration span, for point-in-time facts such as ladder
    decisions. *)

val fork : t -> t
(** [fork t] is a fresh trace sharing [t]'s clock and time origin but
    with a private id space and span buffers, so one worker domain can
    record into it without synchronisation.  Forking {!disabled} gives
    {!disabled}.  Recombine with {!merge}. *)

val merge : t -> t -> unit
(** [merge t child] relocates the [child] fork's completed spans into
    [t]: child ids are renumbered after [t]'s current ids and the
    child's root spans are re-parented under [t]'s innermost open span
    (the fan-out site).  Merging forks in a fixed order yields a
    deterministic id assignment regardless of which domain finished
    first.  No-op if either trace is disabled. *)

val spans : t -> span list
(** Completed spans in creation (id) order. *)

val span_count : t -> int

val attrs : span -> (string * value) list
(** Attributes in insertion order. *)

val find_attr : span -> string -> value option
