(* Serialization of traces and metric registries, plus the shape
   validators used by tests and the trace-smoke rule. *)

let value_json = function
  | Trace.Bool b -> if b then "true" else "false"
  | Trace.Int i -> string_of_int i
  | Trace.Float f -> Printf.sprintf "%g" f
  | Trace.Str s -> Printf.sprintf "\"%s\"" (Json.escape s)

let span_line (s : Trace.span) =
  let b = Buffer.create 128 in
  Printf.bprintf b
    "{\"type\":\"span\",\"id\":%d,\"parent\":%d,\"name\":\"%s\",\"start_us\":%.1f,\"dur_us\":%.1f"
    s.Trace.id s.Trace.parent (Json.escape s.Trace.name)
    (s.Trace.start_s *. 1e6)
    ((if s.Trace.dur_s < 0.0 then 0.0 else s.Trace.dur_s) *. 1e6);
  (match Trace.attrs s with
  | [] -> ()
  | attrs ->
    Buffer.add_string b ",\"attrs\":{";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Printf.bprintf b "\"%s\":%s" (Json.escape k) (value_json v))
      attrs;
    Buffer.add_char b '}');
  Buffer.add_char b '}';
  Buffer.contents b

let trace_ndjson t =
  let b = Buffer.create 1024 in
  List.iter
    (fun s ->
      Buffer.add_string b (span_line s);
      Buffer.add_char b '\n')
    (Trace.spans t);
  Buffer.contents b

let metrics_schema = "minconn-metrics/1"

let metrics_json m =
  let b = Buffer.create 512 in
  Printf.bprintf b "{\n  \"schema\": \"%s\",\n  \"counters\": {" metrics_schema;
  let cs = Metrics.counters m in
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b "\n    \"%s\": %d" (Json.escape name) v)
    cs;
  if cs <> [] then Buffer.add_string b "\n  ";
  Buffer.add_string b "},\n  \"histograms\": {";
  let hs = Metrics.histograms m in
  List.iteri
    (fun i h ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b "\n    \"%s\": { \"bounds\": [%s], \"buckets\": [%s], \"sum\": %.6f, \"events\": %d }"
        (Json.escape (Metrics.hist_name h))
        (String.concat ", "
           (Array.to_list
              (Array.map (Printf.sprintf "%g") (Metrics.hist_bounds h))))
        (String.concat ", "
           (Array.to_list (Array.map string_of_int (Metrics.hist_buckets h))))
        (Metrics.hist_sum h) (Metrics.hist_events h))
    hs;
  if hs <> [] then Buffer.add_string b "\n  ";
  Buffer.add_string b "}\n}\n";
  Buffer.contents b

let write_file ~path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let write_trace ~path t = write_file ~path (trace_ndjson t)
let write_metrics ~path m = write_file ~path (metrics_json m)

(* --- shape validators ------------------------------------------------ *)

let span_obj_ok j =
  match
    ( Json.member "type" j,
      Json.member "id" j,
      Json.member "parent" j,
      Json.member "name" j,
      Json.member "start_us" j,
      Json.member "dur_us" j )
  with
  | ( Some (Json.Jstr "span"),
      Some (Json.Jnum id),
      Some (Json.Jnum parent),
      Some (Json.Jstr _),
      Some (Json.Jnum start),
      Some (Json.Jnum dur) ) ->
    id >= 1.0 && parent >= 0.0 && start >= 0.0 && dur >= 0.0
  | _ -> false

let validate_ndjson_string s =
  let lines =
    String.split_on_char '\n' s |> List.filter (fun l -> String.trim l <> "")
  in
  if lines = [] then Error "empty trace stream"
  else
    let rec go i = function
      | [] -> Ok (List.length lines)
      | l :: rest -> (
        match Json.parse l with
        | Error msg -> Error (Printf.sprintf "line %d: %s" (i + 1) msg)
        | Ok j ->
          if span_obj_ok j then go (i + 1) rest
          else Error (Printf.sprintf "line %d: not a span object" (i + 1)))
    in
    go 0 lines

let validate_metrics_string s =
  match Json.parse s with
  | Error msg -> Error msg
  | Ok j -> (
    match
      (Json.member "schema" j, Json.member "counters" j, Json.member "histograms" j)
    with
    | Some (Json.Jstr sc), Some (Json.Jobj cs), Some (Json.Jobj hs) ->
      if sc <> metrics_schema then Error ("unexpected schema: " ^ sc)
      else if
        List.for_all (function _, Json.Jnum _ -> true | _ -> false) cs
        && List.for_all
             (fun (_, h) ->
               match
                 ( Json.member "bounds" h,
                   Json.member "buckets" h,
                   Json.member "sum" h,
                   Json.member "events" h )
               with
               | Some (Json.Jarr _), Some (Json.Jarr _), Some (Json.Jnum _),
                 Some (Json.Jnum _) ->
                 true
               | _ -> false)
             hs
      then Ok (List.length cs + List.length hs)
      else Error "malformed counters or histograms"
    | _ -> Error "missing schema/counters/histograms")
