(** Counters and fixed-bucket histograms.

    Like {!Trace}, a disabled registry hands out shared inert
    instruments whose [incr]/[observe] cost is a single field load plus
    branch, so instrumentation sites need no conditional of their
    own. *)

type counter
type histogram
type t

val disabled : t
val make : unit -> t
val active : t -> bool

val inert : counter
(** Dead counter that ignores [incr]; useful as an optional-argument
    default at instrumentation sites. *)

val counter : t -> string -> counter
(** Find-or-create by name.  On a disabled registry returns {!inert}. *)

val incr : ?by:int -> counter -> unit
val count : counter -> int

val find_counter : t -> string -> int option
(** Read-only lookup: the counter's current value, or [None] when no
    instrumentation site has created it yet. Unlike {!counter} this
    never allocates a new instrument, so assertions and status
    endpoints can probe without perturbing the registry. The serving
    layer's canonical counter names are [serve.accepted], [serve.shed],
    [serve.reaped], [serve.requests], [serve.degraded], [serve.errors],
    [serve.epipe] and [serve.drain_forced], alongside the solver's
    [engine.*], [budget.*], [rung.*] and [cache.*] families. *)

val default_bounds : float array
(** Powers-of-four upper bounds: 1, 4, 16, ... 16384. *)

val histogram : t -> ?bounds:float array -> string -> histogram
(** Find-or-create by name.  [bounds] are upper bucket bounds (sorted
    internally); one overflow bucket is appended. *)

val observe : histogram -> float -> unit

val counters : t -> (string * int) list
(** Name/value pairs in creation order. *)

val histograms : t -> histogram list

val hist_name : histogram -> string
val hist_bounds : histogram -> float array
val hist_buckets : histogram -> int array
val hist_sum : histogram -> float
val hist_events : histogram -> int
