(** Serialization of traces and metric registries.

    Traces export as NDJSON, one span object per line:
    [{"type":"span","id":N,"parent":N,"name":S,"start_us":F,"dur_us":F,
      "attrs":{...}}].
    Metrics export as a single JSON document with schema
    {!metrics_schema}.  The validators check the shape of these streams
    and are what the tests and the trace-smoke rule call. *)

val span_line : Trace.span -> string
val trace_ndjson : Trace.t -> string

val metrics_schema : string
val metrics_json : Metrics.t -> string

val write_trace : path:string -> Trace.t -> unit
val write_metrics : path:string -> Metrics.t -> unit

val validate_ndjson_string : string -> (int, string) result
(** [Ok n] with the number of span lines; [Error msg] with the first
    offending line. *)

val validate_metrics_string : string -> (int, string) result
(** [Ok n] with the number of counters + histograms. *)
