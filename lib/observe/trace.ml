type value = Bool of bool | Int of int | Float of float | Str of string

type span = {
  id : int;  (* 1-based; 0 means "no parent" *)
  parent : int;
  name : string;
  start_s : float;  (* seconds since the trace was created *)
  mutable dur_s : float;  (* -1 while the span is open *)
  mutable attrs : (string * value) list;  (* reverse insertion order *)
}

type t = {
  active : bool;
  clock : unit -> float;
  t0 : float;
  mutable next_id : int;
  mutable stack : span list;  (* open spans, innermost first *)
  mutable closed : span list;  (* reverse completion order *)
}

(* Shared inert instance: every recording entry point bails on [active]
   first, so the disabled path is a single load + branch. *)
let disabled =
  {
    active = false;
    clock = (fun () -> 0.0);
    t0 = 0.0;
    next_id = 1;
    stack = [];
    closed = [];
  }

let make ?(clock = Unix.gettimeofday) () =
  { active = true; clock; t0 = clock (); next_id = 1; stack = []; closed = [] }

let active t = t.active

(* Durations are clamped at zero so a non-monotonic wall clock (NTP
   step) can never produce a negative span. *)
let now t =
  let dt = t.clock () -. t.t0 in
  if dt < 0.0 then 0.0 else dt

let open_span t name attrs =
  let parent = match t.stack with [] -> 0 | s :: _ -> s.id in
  let s =
    {
      id = t.next_id;
      parent;
      name;
      start_s = now t;
      dur_s = -1.0;
      attrs = List.rev attrs;
    }
  in
  t.next_id <- t.next_id + 1;
  t.stack <- s :: t.stack;
  s

let close_span t s =
  let dur = now t -. s.start_s in
  s.dur_s <- (if dur < 0.0 then 0.0 else dur);
  (match t.stack with top :: rest when top == s -> t.stack <- rest | _ -> ());
  t.closed <- s :: t.closed

let span t ?(attrs = []) name f =
  if not t.active then f ()
  else begin
    let s = open_span t name attrs in
    match f () with
    | v ->
      close_span t s;
      v
    | exception e ->
      s.attrs <- ("raised", Str (Printexc.to_string e)) :: s.attrs;
      close_span t s;
      raise e
  end

let add_attr t key v =
  if t.active then
    match t.stack with [] -> () | s :: _ -> s.attrs <- (key, v) :: s.attrs

let event t ?(attrs = []) name =
  if t.active then begin
    let s = open_span t name attrs in
    close_span t s
  end

(* Forks share the clock and the origin t0 so child start offsets stay
   on the parent's timeline, but get a private id space and span
   buffers: a fork is only ever written by one domain, so recording
   into it needs no synchronisation. *)
let fork t =
  if not t.active then disabled
  else
    { active = true; clock = t.clock; t0 = t.t0; next_id = 1; stack = [];
      closed = [] }

let merge t child =
  if t.active && child.active && child != t then begin
    (* Renumber the child's ids into the parent's space; the child's
       root spans are re-parented under the parent's innermost open
       span (the fan-out site), so the merged trace stays one tree. *)
    let offset = t.next_id - 1 in
    let anchor = match t.stack with [] -> 0 | s :: _ -> s.id in
    let relocate s =
      { s with
        id = s.id + offset;
        parent = (if s.parent = 0 then anchor else s.parent + offset) }
    in
    t.closed <- List.rev_append (List.rev_map relocate child.closed) t.closed;
    t.next_id <- t.next_id + (child.next_id - 1)
  end

(* Completed spans in id (creation) order; still-open spans are not
   reported. *)
let spans t =
  List.sort (fun a b -> compare a.id b.id) t.closed

let span_count t = List.length t.closed

let attrs s = List.rev s.attrs

let find_attr s key = List.assoc_opt key s.attrs
