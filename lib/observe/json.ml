(* Minimal JSON reader and string escaping, shared by the exporters,
   the bench harness, and the smoke validators.  The project
   deliberately carries no JSON dependency. *)

type t =
  | Jnull
  | Jbool of bool
  | Jnum of float
  | Jstr of string
  | Jarr of t list
  | Jobj of (string * t) list

exception Bad_json of string

let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 32 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let parse_exn s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal lit v =
    let k = String.length lit in
    if !pos + k <= n && String.sub s !pos k = lit then begin
      pos := !pos + k;
      v
    end
    else fail "bad literal"
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' ->
        incr pos;
        Buffer.contents b
      | '\\' ->
        incr pos;
        if !pos >= n then fail "bad escape";
        (match s.[!pos] with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'n' -> Buffer.add_char b '\n'
        | 't' -> Buffer.add_char b '\t'
        | 'r' -> Buffer.add_char b '\r'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'u' ->
          if !pos + 4 >= n then fail "bad unicode escape";
          (* Validation only: the code point itself is not decoded. *)
          Buffer.add_char b '?';
          pos := !pos + 4
        | _ -> fail "bad escape");
        incr pos;
        go ()
      | c ->
        Buffer.add_char b c;
        incr pos;
        go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num s.[!pos] do
      incr pos
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      incr pos;
      skip_ws ();
      if peek () = Some '}' then begin
        incr pos;
        Jobj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            members ((k, v) :: acc)
          | Some '}' ->
            incr pos;
            List.rev ((k, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Jobj (members [])
      end
    | Some '[' ->
      incr pos;
      skip_ws ();
      if peek () = Some ']' then begin
        incr pos;
        Jarr []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            items (v :: acc)
          | Some ']' ->
            incr pos;
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        Jarr (items [])
      end
    | Some '"' -> Jstr (parse_string ())
    | Some 't' -> literal "true" (Jbool true)
    | Some 'f' -> literal "false" (Jbool false)
    | Some 'n' -> literal "null" Jnull
    | Some _ -> Jnum (parse_number ())
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let parse s =
  match parse_exn s with v -> Ok v | exception Bad_json msg -> Error msg

let member k = function Jobj fields -> List.assoc_opt k fields | _ -> None

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s
