open Graphs
open Hypergraphs

let hypergraph_of_witness_side g side =
  match side with
  | Bigraph.V2 -> fst (Correspond.h1 g)
  | Bigraph.V1 -> fst (Correspond.h2 g)

let chordal g side =
  Chordal.is_chordal (Hypergraph.two_section (hypergraph_of_witness_side g side))

let conformal g side =
  Conformal.is_conformal (hypergraph_of_witness_side g side)

let alpha_side g side = Gyo.alpha_acyclic (hypergraph_of_witness_side g side)

let chordal_brute g side =
  let u = Bigraph.ugraph g in
  let witnesses = Bigraph.nodes_of_side g side in
  let ok = ref true in
  Cycles.iter_simple_cycles ~min_len:8 u (fun cycle ->
      if !ok then begin
        let arr = Array.of_list cycle in
        let k = Array.length arr in
        let cycle_distance i j =
          let d = abs (i - j) in
          min d (k - d)
        in
        let witnessed w =
          let adj = Ugraph.neighbors u w in
          let hits =
            List.filteri (fun _ v -> Iset.mem v adj) cycle
            |> List.map (fun v ->
                   let rec pos i = if arr.(i) = v then i else pos (i + 1) in
                   pos 0)
          in
          List.exists
            (fun i -> List.exists (fun j -> cycle_distance i j >= 4) hits)
            hits
        in
        if not (Iset.exists witnessed witnesses) then ok := false
      end);
  !ok

let conformal_brute g side =
  let u = Bigraph.ugraph g in
  let opposite =
    match side with Bigraph.V2 -> Bigraph.left_nodes g | Bigraph.V1 -> Bigraph.right_nodes g
  in
  let witnesses = Bigraph.nodes_of_side g side in
  (* Distance-2 graph on the opposite side: two nodes adjacent when they
     share a neighbor in G. *)
  let n = Bigraph.n g in
  let b = Ugraph.Builder.create n in
  Iset.iter
    (fun x ->
      Iset.iter
        (fun y ->
          if x < y
             && not
                  (Iset.is_empty
                     (Iset.inter (Ugraph.neighbors u x) (Ugraph.neighbors u y)))
          then Ugraph.Builder.add_edge b x y)
        opposite)
    opposite;
  let d2 = Ugraph.Builder.build b in
  let common_witness s =
    let candidates =
      Iset.fold
        (fun x acc ->
          match acc with
          | None -> Some (Iset.inter (Ugraph.neighbors u x) witnesses)
          | Some c -> Some (Iset.inter c (Ugraph.neighbors u x)))
        s None
    in
    match candidates with
    | None -> true
    | Some c -> not (Iset.is_empty c)
  in
  (* Checking maximal cliques suffices: a common witness for a clique
     also serves each of its subsets. Isolated opposite-side nodes form
     singleton cliques; skip them as the fast test does. *)
  List.for_all
    (fun clique ->
      Iset.for_all (fun x -> Iset.is_empty (Ugraph.neighbors u x)) clique
      || common_witness clique)
    (Cliques.maximal_cliques ~within:opposite d2)
