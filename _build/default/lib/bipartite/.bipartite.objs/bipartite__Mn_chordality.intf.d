lib/bipartite/mn_chordality.mli: Bigraph
