lib/bipartite/classify.mli: Acyclicity Bigraph Format Hypergraphs
