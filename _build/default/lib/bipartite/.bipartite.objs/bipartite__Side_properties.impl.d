lib/bipartite/side_properties.ml: Array Bigraph Chordal Cliques Conformal Correspond Cycles Graphs Gyo Hypergraph Hypergraphs Iset List Ugraph
