lib/bipartite/classify.ml: Acyclicity Bigraph Format Gyo Hypergraphs Mn_chordality Side_properties
