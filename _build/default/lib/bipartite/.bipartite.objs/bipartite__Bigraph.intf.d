lib/bipartite/bigraph.mli: Format Graphs Iset Ugraph
