lib/bipartite/correspond.ml: Array Bigraph Graphs Hypergraph Hypergraphs Iset List
