lib/bipartite/doubly_lex.ml: Array Bigraph List
