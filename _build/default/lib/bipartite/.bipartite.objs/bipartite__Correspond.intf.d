lib/bipartite/correspond.mli: Bigraph Hypergraph Hypergraphs
