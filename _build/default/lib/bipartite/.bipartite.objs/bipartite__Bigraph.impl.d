lib/bipartite/bigraph.ml: Array Format Graphs Iset List Queue Traverse Ugraph
