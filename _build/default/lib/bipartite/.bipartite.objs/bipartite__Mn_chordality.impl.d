lib/bipartite/mn_chordality.ml: Beta Bigraph Correspond Cycles Gamma Graphs Hypergraphs Iset List Ugraph
