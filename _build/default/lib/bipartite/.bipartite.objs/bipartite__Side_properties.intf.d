lib/bipartite/side_properties.mli: Bigraph Hypergraph Hypergraphs
