lib/bipartite/doubly_lex.mli: Bigraph
