(** Doubly lexical orderings and Γ-free matrices (Lubiw; Paige–Tarjan):
    the fourth, matrix-theoretic recogniser of chordal bipartite
    graphs. A bipartite graph is (6,1)-chordal exactly when its
    bipartite adjacency matrix is {e totally balanced}, equivalently
    when a (any) doubly lexical ordering of it is Γ-free — no 2×2
    submatrix [1 1 / 1 0] with the 0 bottom-right.

    Convention used here: rows and columns each ascend
    lexicographically with the {e last} position most significant
    (1-entries drift toward the bottom-right corner). The ordering is
    computed by alternately sorting rows then columns to a fixpoint;
    an iteration cap guards the loop and the result carries a
    convergence flag (the cap has never been hit across the randomized
    test corpus). *)

type ordering = {
  rows : int list;  (** left-node indices, first row first *)
  cols : int list;  (** right-node indices *)
  converged : bool;
}

val ordering : ?max_rounds:int -> Bigraph.t -> ordering
(** Default cap: [4 * (nl + nr) + 16] rounds. *)

val is_doubly_lexical : Bigraph.t -> rows:int list -> cols:int list -> bool
(** Checks both lexical conditions under the module's convention. *)

val gamma_free : Bigraph.t -> rows:int list -> cols:int list -> bool

val is_61_chordal_doubly_lex : Bigraph.t -> bool
(** [gamma_free] of a computed doubly lexical ordering — agrees with
    the other three (6,1) recognisers on the whole test corpus. *)
