open Graphs
open Hypergraphs

let h1_exn g =
  let family =
    List.init (Bigraph.nr g) (fun j -> Bigraph.left_neighbors g j)
  in
  if List.exists Iset.is_empty family then
    invalid_arg "Correspond.h1_exn: isolated right node gives empty edge";
  Hypergraph.create ~n_nodes:(Bigraph.nl g) family

let h1 g =
  let indexed =
    List.init (Bigraph.nr g) (fun j -> (j, Bigraph.left_neighbors g j))
    |> List.filter (fun (_, e) -> not (Iset.is_empty e))
  in
  ( Hypergraph.create ~n_nodes:(Bigraph.nl g) (List.map snd indexed),
    Array.of_list (List.map fst indexed) )

let h2_exn g = h1_exn (Bigraph.flip g)
let h2 g = h1 (Bigraph.flip g)

let of_hypergraph h =
  let edges = ref [] in
  Array.iteri
    (fun j e -> Iset.iter (fun v -> edges := (v, j) :: !edges) e)
    (Hypergraph.edges h);
  Bigraph.of_edges ~nl:(Hypergraph.n_nodes h) ~nr:(Hypergraph.n_edges h)
    !edges

let round_trip_h1 g = Bigraph.equal (of_hypergraph (h1_exn g)) g
