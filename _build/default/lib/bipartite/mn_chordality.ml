open Graphs
open Hypergraphs

let is_mn_chordal_brute g ~m ~n =
  not
    (Cycles.exists_cycle_with_few_chords (Bigraph.ugraph g) ~min_len:m
       ~max_chords:(n - 1))

let is_41_chordal g = Cycles.is_acyclic (Bigraph.ugraph g)

let h1_dropping_isolated g = fst (Correspond.h1 g)

let is_62_chordal g = Gamma.acyclic (h1_dropping_isolated g)

let is_61_chordal g = Beta.acyclic (h1_dropping_isolated g)

let is_61_chordal_bisimplicial g =
  let u = Bigraph.ugraph g in
  (* Work on a mutable copy of the adjacency via repeated functional
     edge removal; instance sizes keep this comfortably cheap. *)
  let bisimplicial gr x y =
    (* Every neighbor of y (left side) must see every neighbor of x
       (right side); the pairs involving x or y themselves hold by
       membership. *)
    Iset.for_all
      (fun a ->
        Iset.for_all (fun b -> Ugraph.mem_edge gr a b) (Ugraph.neighbors gr x))
      (Ugraph.neighbors gr y)
  in
  let rec eliminate gr =
    if Ugraph.m gr = 0 then true
    else
      let candidate =
        List.find_opt (fun (x, y) -> bisimplicial gr x y) (Ugraph.edges gr)
      in
      match candidate with
      | None -> false
      | Some (x, y) -> eliminate (Ugraph.remove_edge gr x y)
  in
  eliminate u
