(** The asymmetric chordality and conformity notions of Definition 5,
    with both the fast recognisers (through the hypergraph
    correspondence, Theorem 1) and literal brute-force checkers.

    Convention (see DESIGN.md §2): the [side] argument names the side
    providing the witnesses. [chordal g V2] demands that every cycle of
    length ≥ 8 has a {e V₂} node adjacent to two cycle nodes at cycle
    distance ≥ 4, and equals chordality of the 2-section [G(H¹_G)];
    [conformal g V2] demands that every pairwise-distance-2 subset of V₁
    has a common V₂ neighbor, and equals conformality of [H¹_G]. Both
    together equal α-acyclicity of [H¹_G] (Theorem 1 (v)). *)

open Hypergraphs

val hypergraph_of_witness_side : Bigraph.t -> Bigraph.side -> Hypergraph.t
(** [H¹_G] when the witness side is [V2], [H²_G] when it is [V1]
    (isolated witness-side nodes dropped). *)

val chordal : Bigraph.t -> Bigraph.side -> bool

val conformal : Bigraph.t -> Bigraph.side -> bool

val alpha_side : Bigraph.t -> Bigraph.side -> bool
(** [chordal && conformal], tested directly as α-acyclicity of the
    corresponding hypergraph (GYO). *)

val chordal_brute : Bigraph.t -> Bigraph.side -> bool
(** Literal Definition 5 by cycle enumeration; exponential. *)

val conformal_brute : Bigraph.t -> Bigraph.side -> bool
(** Literal Definition 5: every maximal pairwise-distance-2 set on the
    opposite side has a common neighbor on the witness side.
    Exponential. *)
