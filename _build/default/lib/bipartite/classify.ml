open Hypergraphs

type profile = {
  chordal_41 : bool;
  chordal_62 : bool;
  chordal_61 : bool;
  v2_chordal : bool;
  v2_conformal : bool;
  v1_chordal : bool;
  v1_conformal : bool;
  alpha_h1 : bool;
  alpha_h2 : bool;
  degree_h1 : Acyclicity.degree;
  degree_h2 : Acyclicity.degree;
}

type recommendation =
  | Steiner_polynomial
  | Pseudo_steiner_v2
  | Pseudo_steiner_v1
  | Pseudo_steiner_both
  | Exact_search_only

let profile g =
  let h1 = Side_properties.hypergraph_of_witness_side g Bigraph.V2 in
  let h2 = Side_properties.hypergraph_of_witness_side g Bigraph.V1 in
  {
    chordal_41 = Mn_chordality.is_41_chordal g;
    chordal_62 = Mn_chordality.is_62_chordal g;
    chordal_61 = Mn_chordality.is_61_chordal g;
    v2_chordal = Side_properties.chordal g Bigraph.V2;
    v2_conformal = Side_properties.conformal g Bigraph.V2;
    v1_chordal = Side_properties.chordal g Bigraph.V1;
    v1_conformal = Side_properties.conformal g Bigraph.V1;
    alpha_h1 = Gyo.alpha_acyclic h1;
    alpha_h2 = Gyo.alpha_acyclic h2;
    degree_h1 = Acyclicity.degree h1;
    degree_h2 = Acyclicity.degree h2;
  }

let recommend p =
  if p.chordal_62 then Steiner_polynomial
  else
    match (p.alpha_h1, p.alpha_h2) with
    | true, true -> Pseudo_steiner_both
    | true, false -> Pseudo_steiner_v2
    | false, true -> Pseudo_steiner_v1
    | false, false -> Exact_search_only

let recommendation_name = function
  | Steiner_polynomial -> "Steiner solvable in P (Algorithm 2, Theorem 5)"
  | Pseudo_steiner_v2 -> "pseudo-Steiner w.r.t. V2 in P (Algorithm 1, Theorem 4)"
  | Pseudo_steiner_v1 -> "pseudo-Steiner w.r.t. V1 in P (Algorithm 1, flipped)"
  | Pseudo_steiner_both -> "pseudo-Steiner w.r.t. either side in P (Algorithm 1)"
  | Exact_search_only -> "no chordality structure: exact search / approximation"

let theorem1_consistent p =
  (* Theorem 1 (v)/(vi). *)
  p.alpha_h1 = (p.v2_chordal && p.v2_conformal)
  && p.alpha_h2 = (p.v1_chordal && p.v1_conformal)
  (* Hierarchy along (4,1) ⊆ (6,2) ⊆ (6,1). *)
  && ((not p.chordal_41) || p.chordal_62)
  && ((not p.chordal_62) || p.chordal_61)
  (* Corollary 2: (6,1)-chordal implies chordal+conformal on both sides. *)
  && ((not p.chordal_61) || (p.alpha_h1 && p.alpha_h2))

let pp_profile ppf p =
  let b = function true -> "yes" | false -> "no" in
  Format.fprintf ppf
    "@[<v>(4,1)-chordal (forest):      %s@,\
     (6,2)-chordal (gamma):       %s@,\
     (6,1)-chordal (beta):        %s@,\
     V2-chordal / V2-conformal:   %s / %s@,\
     V1-chordal / V1-conformal:   %s / %s@,\
     H1 degree: %s@,\
     H2 degree: %s@]"
    (b p.chordal_41) (b p.chordal_62) (b p.chordal_61) (b p.v2_chordal)
    (b p.v2_conformal) (b p.v1_chordal) (b p.v1_conformal)
    (Acyclicity.degree_name p.degree_h1)
    (Acyclicity.degree_name p.degree_h2)
