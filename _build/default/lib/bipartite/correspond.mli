(** The bipartite-graph / hypergraph correspondence of Definition 2.

    [H¹_G] has one node per left node of [G] and one hyperedge per right
    node (its left neighborhood); [H²_G] is the same construction from
    the other side, and is the dual hypergraph of [H¹_G] (Definition 3).
    Right nodes with no neighbor would give an empty hyperedge, which
    Definition 1 forbids; the lenient constructors drop them and report
    the mapping. *)

open Hypergraphs

val h1_exn : Bigraph.t -> Hypergraph.t
(** Hyperedge [j] is the left neighborhood of right node [j]. Raises
    [Invalid_argument] if some right node is isolated. *)

val h1 : Bigraph.t -> Hypergraph.t * int array
(** Like {!h1_exn} but isolated right nodes are skipped; the array maps
    hyperedge index to right-node index. *)

val h2_exn : Bigraph.t -> Hypergraph.t

val h2 : Bigraph.t -> Hypergraph.t * int array

val of_hypergraph : Hypergraph.t -> Bigraph.t
(** Incidence bipartite graph: left nodes are the hypergraph's nodes,
    right nodes its edges (in index order). *)

val round_trip_h1 : Bigraph.t -> bool
(** [of_hypergraph (h1_exn g)] equals [g]: holds whenever [g] has no
    isolated right node (isolated left nodes survive the round trip
    since the hypergraph keeps its full node universe). *)
