(** Bipartite graphs [G = (V1, V2, A)] (Definition 1).

    Left nodes ([V1], indices [0 .. nl-1]) model the paper's attribute /
    lower conceptual level; right nodes ([V2], indices [0 .. nr-1])
    model relations / higher level. Internally the graph is a plain
    {!Graphs.Ugraph.t} on [nl + nr] nodes with right node [j] stored at
    index [nl + j], so every generic graph algorithm applies directly;
    this module maintains the bipartition invariant and provides typed
    access. *)

open Graphs

type t

type side = V1 | V2

(** A typed node: [L i] is the [i]-th left node, [R j] the [j]-th right
    node. *)
type node = L of int | R of int

val create : nl:int -> nr:int -> t

val of_edges : nl:int -> nr:int -> (int * int) list -> t
(** Edges as (left index, right index) pairs. *)

val add_edge : t -> int -> int -> t
(** [add_edge g i j] connects left [i] and right [j]. *)

val nl : t -> int
val nr : t -> int
val n : t -> int
val m : t -> int

val ugraph : t -> Ugraph.t
(** The underlying graph; left node [i] is index [i], right node [j] is
    index [nl + j]. *)

val index : t -> node -> int
val node_of_index : t -> int -> node
val side_of_index : t -> int -> side

val left_nodes : t -> Iset.t
(** As underlying indices. *)

val right_nodes : t -> Iset.t
(** As underlying indices ([nl .. nl+nr-1]). *)

val nodes_of_side : t -> side -> Iset.t

val mem_edge : t -> int -> int -> bool
(** [mem_edge g i j]: left [i] adjacent to right [j]? *)

val right_neighbors : t -> int -> Iset.t
(** [right_neighbors g i]: right {e indices} (not underlying indices)
    adjacent to left node [i]. *)

val left_neighbors : t -> int -> Iset.t
(** [left_neighbors g j]: left indices adjacent to right node [j]. *)

val edges : t -> (int * int) list
(** As (left index, right index) pairs. *)

val flip : t -> t
(** Swap the two sides. *)

val of_ugraph : Ugraph.t -> (t * node array) option
(** 2-colour a graph: [Some (bg, mapping)] when bipartite, where
    [mapping.(v)] tells where underlying node [v] of the input went.
    Isolated nodes are placed on the left. *)

val is_connected : t -> bool

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

val pp_node : Format.formatter -> node -> unit
