(** (m, n)-chordality of bipartite graphs (Definition 4) and the three
    classes the paper singles out, with the fast recognisers delivered
    by Theorem 1:

    - (4,1)-chordal ⇔ H¹ Berge-acyclic ⇔ the graph is a forest;
    - (6,2)-chordal ⇔ H¹ γ-acyclic;
    - (6,1)-chordal ⇔ H¹ β-acyclic ("chordal bipartite" graphs),
      also recognised independently by bisimplicial edge elimination
      (Golumbic–Goss).

    The brute-force checker enumerates cycles and counts chords; it is
    the definitional oracle for the test suite. *)

val is_mn_chordal_brute : Bigraph.t -> m:int -> n:int -> bool
(** Every cycle of length at least [m] has at least [n] chords.
    Exponential. *)

val is_41_chordal : Bigraph.t -> bool

val is_62_chordal : Bigraph.t -> bool

val is_61_chordal : Bigraph.t -> bool

val is_61_chordal_bisimplicial : Bigraph.t -> bool
(** Independent recogniser: greedily delete bisimplicial edges (edges
    [(u, v)] with [N(u) ∪ N(v)] inducing a complete bipartite subgraph);
    the graph is chordal bipartite iff all edges get deleted. *)
