type ordering = { rows : int list; cols : int list; converged : bool }

let matrix g =
  Array.init (Bigraph.nl g) (fun i ->
      Array.init (Bigraph.nr g) (fun j ->
          if Bigraph.mem_edge g i j then 1 else 0))

(* Vectors are compared with the last position most significant: read
   them reversed and compare ascending. *)
let row_vec m cols i = List.rev_map (fun j -> m.(i).(j)) cols
let col_vec m rows j = List.rev_map (fun i -> m.(i).(j)) rows

let sort_rows m rows cols =
  List.stable_sort (fun a b -> compare (row_vec m cols a) (row_vec m cols b)) rows

let sort_cols m rows cols =
  List.stable_sort (fun a b -> compare (col_vec m rows a) (col_vec m rows b)) cols

let ordering ?max_rounds g =
  let nl = Bigraph.nl g and nr = Bigraph.nr g in
  let cap = match max_rounds with Some c -> c | None -> (4 * (nl + nr)) + 16 in
  let m = matrix g in
  let rows = ref (List.init nl (fun i -> i)) in
  let cols = ref (List.init nr (fun j -> j)) in
  let rounds = ref 0 in
  let changed = ref true in
  while !changed && !rounds < cap do
    incr rounds;
    let r' = sort_rows m !rows !cols in
    let c' = sort_cols m r' !cols in
    changed := r' <> !rows || c' <> !cols;
    rows := r';
    cols := c'
  done;
  { rows = !rows; cols = !cols; converged = not !changed }

let permutation_of base l = List.sort compare l = base

let is_doubly_lexical g ~rows ~cols =
  let m = matrix g in
  permutation_of (List.init (Bigraph.nl g) (fun i -> i)) rows
  && permutation_of (List.init (Bigraph.nr g) (fun j -> j)) cols
  && sort_rows m rows cols = rows
  && sort_cols m rows cols = cols

let gamma_free g ~rows ~cols =
  let m = matrix g in
  let ra = Array.of_list rows and ca = Array.of_list cols in
  let ok = ref true in
  for i = 0 to Array.length ra - 1 do
    for k = i + 1 to Array.length ra - 1 do
      for j = 0 to Array.length ca - 1 do
        for l = j + 1 to Array.length ca - 1 do
          if
            m.(ra.(i)).(ca.(j)) = 1
            && m.(ra.(i)).(ca.(l)) = 1
            && m.(ra.(k)).(ca.(j)) = 1
            && m.(ra.(k)).(ca.(l)) = 0
          then ok := false
        done
      done
    done
  done;
  !ok

let is_61_chordal_doubly_lex g =
  let o = ordering g in
  o.converged && gamma_free g ~rows:o.rows ~cols:o.cols
