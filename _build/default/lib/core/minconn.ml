
module Iset = Graphs.Iset
module Ugraph = Graphs.Ugraph
module Traverse = Graphs.Traverse
module Chordal = Graphs.Chordal
module Strongly_chordal = Graphs.Strongly_chordal
module Hypergraph = Hypergraphs.Hypergraph
module Acyclicity = Hypergraphs.Acyclicity
module Gyo = Hypergraphs.Gyo
module Join_tree = Hypergraphs.Join_tree
module Decomposition = Hypergraphs.Decomposition
module Bigraph = Bipartite.Bigraph
module Correspond = Bipartite.Correspond
module Classify = Bipartite.Classify
module Mn_chordality = Bipartite.Mn_chordality
module Side_properties = Bipartite.Side_properties
module Tree = Steiner.Tree
module Kbest = Steiner.Kbest
module Weighted = Steiner.Weighted
module Local_search = Steiner.Local_search
module Algorithm1 = Steiner.Algorithm1
module Algorithm2 = Steiner.Algorithm2
module Dreyfus_wagner = Steiner.Dreyfus_wagner
module Mst_approx = Steiner.Mst_approx
module Schema = Datamodel.Schema
module Er = Datamodel.Er
module Query = Datamodel.Query
module Interface = Datamodel.Interface
module Dialogue = Datamodel.Dialogue
module Layered = Datamodel.Layered
module Repair = Datamodel.Repair
module Figures = Datamodel.Figures

type method_used =
  | Used_forest
  | Used_algorithm2
  | Used_exact_dp
  | Used_elimination

type solution = {
  tree : Tree.t;
  method_used : method_used;
  optimal : bool;
  profile : Classify.profile;
}

let solve_steiner g ~p =
  let profile = Classify.profile g in
  let u = Bigraph.ugraph g in
  if not (Traverse.connects u p) then None
  else if profile.Classify.chordal_41 then
    match Steiner.Forest_steiner.solve u ~terminals:p with
    | Some tree ->
      Some { tree; method_used = Used_forest; optimal = true; profile }
    | None -> None
  else if profile.Classify.chordal_62 then
    match Algorithm2.solve u ~p with
    | Some tree ->
      Some { tree; method_used = Used_algorithm2; optimal = true; profile }
    | None -> None
  else if Iset.cardinal p <= Dreyfus_wagner.max_terminals then
    match Dreyfus_wagner.solve u ~terminals:p with
    | Some tree ->
      Some { tree; method_used = Used_exact_dp; optimal = true; profile }
    | None -> None
  else
    match Algorithm2.solve u ~p with
    | Some tree ->
      Some { tree; method_used = Used_elimination; optimal = false; profile }
    | None -> None

let solve_min_relations g ~p = Algorithm1.solve g ~p

let report g =
  let profile = Classify.profile g in
  Format.asprintf "%a@.recommendation: %s@." Classify.pp_profile profile
    (Classify.recommendation_name (Classify.recommend profile))

let version = "1.0.0"
