open Graphs

let gilmore_violation h =
  let q = Hypergraph.n_edges h in
  let e = Hypergraph.edge h in
  let contained_in_some s =
    let rec go i = i < q && (Iset.subset s (e i) || go (i + 1)) in
    go 0
  in
  let result = ref None in
  for i = 0 to q - 1 do
    for j = i + 1 to q - 1 do
      for k = j + 1 to q - 1 do
        if !result = None then begin
          let s =
            Iset.union
              (Iset.inter (e i) (e j))
              (Iset.union (Iset.inter (e j) (e k)) (Iset.inter (e i) (e k)))
          in
          if not (contained_in_some s) then result := Some (i, j, k)
        end
      done
    done
  done;
  !result

let is_conformal h = gilmore_violation h = None

let is_conformal_brute h =
  let g = Hypergraph.two_section h in
  let covered = Hypergraph.covered_nodes h in
  let q = Hypergraph.n_edges h in
  let e = Hypergraph.edge h in
  let contained_in_some s =
    let rec go i = i < q && (Iset.subset s (e i) || go (i + 1)) in
    go 0
  in
  List.for_all contained_in_some (Cliques.maximal_cliques ~within:covered g)
