open Graphs

type t = { universe : int; family : Iset.t array }

let create ~n_nodes family =
  if n_nodes < 0 then invalid_arg "Hypergraph.create: negative universe";
  let check e =
    if Iset.is_empty e then invalid_arg "Hypergraph.create: empty edge";
    match Iset.min_elt e, Iset.max_elt e with
    | lo, hi when lo < 0 || hi >= n_nodes ->
      invalid_arg "Hypergraph.create: node out of range"
    | _ -> ()
  in
  List.iter check family;
  { universe = n_nodes; family = Array.of_list family }

let n_nodes h = h.universe
let n_edges h = Array.length h.family

let edge h i =
  if i < 0 || i >= Array.length h.family then
    invalid_arg "Hypergraph.edge: index out of range";
  h.family.(i)

let edges h = Array.copy h.family

let total_size h =
  Array.fold_left (fun acc e -> acc + Iset.cardinal e) 0 h.family

let incident h v =
  let acc = ref Iset.empty in
  Array.iteri (fun i e -> if Iset.mem v e then acc := Iset.add i !acc) h.family;
  !acc

let covered_nodes h =
  Array.fold_left (fun acc e -> Iset.union acc e) Iset.empty h.family

let mem h ~edge ~node = Iset.mem node h.family.(edge)

let dual h =
  let family =
    Iset.fold
      (fun v acc -> incident h v :: acc)
      (covered_nodes h) []
  in
  { universe = Array.length h.family; family = Array.of_list (List.rev family) }

let two_section h =
  let b = Ugraph.Builder.create h.universe in
  Array.iter
    (fun e ->
      Iset.iter
        (fun u -> Iset.iter (fun v -> if u < v then Ugraph.Builder.add_edge b u v) e)
        e)
    h.family;
  Ugraph.Builder.build b

let incidence_graph h =
  let offset = h.universe in
  let b = Ugraph.Builder.create (h.universe + Array.length h.family) in
  Array.iteri
    (fun i e -> Iset.iter (fun v -> Ugraph.Builder.add_edge b v (offset + i)) e)
    h.family;
  (Ugraph.Builder.build b, offset)

let restrict h nodes =
  let family =
    Array.to_list h.family
    |> List.filter_map (fun e ->
           let e' = Iset.inter e nodes in
           if Iset.is_empty e' then None else Some e')
  in
  { universe = h.universe; family = Array.of_list family }

let remove_node h v = restrict h (Iset.remove v (Iset.range h.universe))

let remove_edge_at h i =
  if i < 0 || i >= Array.length h.family then
    invalid_arg "Hypergraph.remove_edge_at: index out of range";
  let family =
    Array.to_list h.family
    |> List.filteri (fun j _ -> j <> i)
    |> Array.of_list
  in
  { h with family }

let reduce h =
  let keep = Array.make (Array.length h.family) true in
  Array.iteri
    (fun i e ->
      if keep.(i) then
        Array.iteri
          (fun j f ->
            if i <> j && keep.(j) && Iset.subset f e
               && (not (Iset.equal f e) || j > i)
            then keep.(j) <- false)
          h.family)
    h.family;
  let family =
    Array.to_list h.family
    |> List.filteri (fun i _ -> keep.(i))
    |> Array.of_list
  in
  { h with family }

let is_connected h =
  if Array.length h.family = 0 then true
  else begin
    let g, _offset = incidence_graph h in
    let covered = covered_nodes h in
    let present =
      Iset.union covered
        (Iset.of_list
           (List.init (Array.length h.family) (fun i -> h.universe + i)))
    in
    Traverse.is_connected ~within:present g
  end

let equal_modulo_order h1 h2 =
  h1.universe = h2.universe
  && Array.length h1.family = Array.length h2.family
  &&
  let sort f = List.sort Iset.compare (Array.to_list f) in
  List.equal Iset.equal (sort h1.family) (sort h2.family)

let pp ppf h =
  Format.fprintf ppf "@[<v>hypergraph: %d nodes, %d edges" h.universe
    (Array.length h.family);
  Array.iteri
    (fun i e -> Format.fprintf ppf "@,  e%d = %a" i Iset.pp e)
    h.family;
  Format.fprintf ppf "@]"
