open Graphs

type trace = {
  survivors : Iset.t array;
  surviving_edges : int list;
  parent : int array;
}

let run h =
  let q = Hypergraph.n_edges h in
  let content = Hypergraph.edges h in
  let alive = Array.make q true in
  let parent = Array.make q (-1) in
  let changed = ref true in
  while !changed do
    changed := false;
    (* (a) Delete nodes occurring in exactly one remaining edge. *)
    let occurrences = Hashtbl.create 16 in
    Array.iteri
      (fun i e ->
        if alive.(i) then
          Iset.iter
            (fun v ->
              let c =
                match Hashtbl.find_opt occurrences v with
                | Some c -> c
                | None -> 0
              in
              Hashtbl.replace occurrences v (c + 1))
            e)
      content;
    Array.iteri
      (fun i e ->
        if alive.(i) then begin
          let e' =
            Iset.filter (fun v -> Hashtbl.find occurrences v > 1) e
          in
          if not (Iset.equal e e') then begin
            content.(i) <- e';
            changed := true
          end
        end)
      content;
    (* (b) Delete edges contained in another remaining edge; an emptied
       edge becomes a root of its own. *)
    for i = 0 to q - 1 do
      if alive.(i) then
        if Iset.is_empty content.(i) then begin
          alive.(i) <- false;
          parent.(i) <- -1;
          changed := true
        end
        else begin
          let absorber = ref (-1) in
          for j = 0 to q - 1 do
            if !absorber < 0 && j <> i && alive.(j)
               && Iset.subset content.(i) content.(j)
            then absorber := j
          done;
          if !absorber >= 0 then begin
            alive.(i) <- false;
            parent.(i) <- !absorber;
            changed := true
          end
        end
    done
  done;
  let surviving_edges =
    List.filter (fun i -> alive.(i)) (List.init q (fun i -> i))
  in
  { survivors = content; surviving_edges; parent }

let alpha_acyclic h = (run h).surviving_edges = []

let join_tree h =
  let t = run h in
  if t.surviving_edges = [] then Some (Join_tree.make h ~parent:t.parent)
  else None
