(** Berge-acyclicity (Definition 6 with [D = Berge]).

    A Berge cycle is a sequence of [q >= 2] distinct edges threaded by
    [q] distinct nodes, consecutive edges sharing the thread node. A
    hypergraph has no Berge cycle exactly when its bipartite incidence
    graph is a forest, which is how the fast test works; the explicit
    cycle search is kept as a brute-force oracle. *)

val acyclic : Hypergraph.t -> bool

val find_berge_cycle : Hypergraph.t -> (int list * int list) option
(** Brute-force witness: [(edge indices, thread nodes)] of some Berge
    cycle. Exponential; test oracle only. *)
