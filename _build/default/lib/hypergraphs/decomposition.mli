(** Tree decompositions of ordinary graphs by min-fill elimination, and
    the induced width measure for hypergraphs.

    This quantifies "how far from acyclic" a schema is — the modern
    refinement of Fagin's acyclicity degrees that the paper's taxonomy
    anticipates: an α-acyclic hypergraph's 2-section decomposes with
    bags that are exactly its hyperedges, so its width is
    [max edge size - 1]; cyclic schemas pay more. *)

open Graphs

type t = {
  bags : Iset.t array;
  parent : int array;  (** [-1] for roots *)
}

val width : t -> int
(** [max bag size - 1]; [-1] for the empty decomposition. *)

val verify : Ugraph.t -> t -> bool
(** The three tree-decomposition axioms: every node in some bag, every
    edge inside some bag, and each node's bags form a connected
    subtree. *)

val min_fill : Ugraph.t -> t
(** Triangulate by repeatedly eliminating a vertex adding the fewest
    fill edges; one bag per elimination step. On chordal graphs the
    fill is zero and the width equals the exact treewidth
    (clique number - 1). *)

val treewidth_upper : Ugraph.t -> int
(** [width (min_fill g)]. *)

val of_hypergraph : Hypergraph.t -> t
(** Min-fill decomposition of the 2-section. For α-acyclic hypergraphs
    its width is [max edge size - 1] (property-tested). *)
