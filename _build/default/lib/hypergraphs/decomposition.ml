open Graphs

type t = { bags : Iset.t array; parent : int array }

let width t =
  Array.fold_left (fun acc b -> max acc (Iset.cardinal b - 1)) (-1) t.bags

let verify g t =
  let n_bags = Array.length t.bags in
  let nodes = Ugraph.nodes g in
  let covered v = Array.exists (fun b -> Iset.mem v b) t.bags in
  let edge_covered u v =
    Array.exists (fun b -> Iset.mem u b && Iset.mem v b) t.bags
  in
  let forest = Ugraph.Builder.create (max n_bags 1) in
  Array.iteri
    (fun i p -> if p >= 0 then Ugraph.Builder.add_edge forest i p)
    t.parent;
  let forest = Ugraph.Builder.build forest in
  let occurrences v =
    let acc = ref Iset.empty in
    Array.iteri (fun i b -> if Iset.mem v b then acc := Iset.add i !acc) t.bags;
    !acc
  in
  Array.length t.parent = n_bags
  && Iset.for_all covered nodes
  && Ugraph.fold_edges (fun u v acc -> acc && edge_covered u v) g true
  && Iset.for_all
       (fun v ->
         Traverse.connects ~within:(Iset.range (max n_bags 1)) forest
           (occurrences v))
       nodes

let min_fill g =
  let n = Ugraph.n g in
  (* Mutable copy of the adjacency as sets. *)
  let adj = Array.init n (fun v -> Ugraph.neighbors g v) in
  let alive = Array.make n true in
  let fill_count v =
    let nb = Iset.filter (fun u -> alive.(u)) adj.(v) in
    let missing = ref 0 in
    Iset.iter
      (fun a ->
        Iset.iter
          (fun b -> if a < b && not (Iset.mem b adj.(a)) then incr missing)
          nb)
      nb;
    !missing
  in
  let bags = ref [] in
  for _step = 0 to n - 1 do
    (* Pick the alive vertex with minimum fill. *)
    let best = ref (-1) and best_fill = ref max_int in
    for v = 0 to n - 1 do
      if alive.(v) then begin
        let f = fill_count v in
        if f < !best_fill then begin
          best := v;
          best_fill := f
        end
      end
    done;
    let v = !best in
    if v >= 0 then begin
      let nb = Iset.filter (fun u -> alive.(u)) adj.(v) in
      (* Add fill edges so the neighborhood becomes a clique. *)
      Iset.iter
        (fun a ->
          Iset.iter
            (fun b ->
              if a < b && not (Iset.mem b adj.(a)) then begin
                adj.(a) <- Iset.add b adj.(a);
                adj.(b) <- Iset.add a adj.(b)
              end)
            nb)
        nb;
      alive.(v) <- false;
      bags := (v, Iset.add v nb) :: !bags
    end
  done;
  let bags = Array.of_list (List.rev !bags) in
  let n_bags = Array.length bags in
  (* Standard attachment: bag i (eliminating v_i with clique C_i) hangs
     under the bag of the earliest-later-eliminated member of C_i. *)
  let elim_pos = Hashtbl.create 16 in
  Array.iteri (fun i (v, _) -> Hashtbl.replace elim_pos v i) bags;
  let parent = Array.make n_bags (-1) in
  Array.iteri
    (fun i (v, bag) ->
      let later =
        Iset.fold
          (fun u acc ->
            if u = v then acc
            else
              let j = Hashtbl.find elim_pos u in
              if j > i then match acc with
                | None -> Some j
                | Some k -> Some (min k j)
              else acc)
          bag None
      in
      match later with Some j -> parent.(i) <- j | None -> ())
    bags;
  { bags = Array.map snd bags; parent }

let treewidth_upper g = width (min_fill g)

let of_hypergraph h = min_fill (Hypergraph.two_section h)
