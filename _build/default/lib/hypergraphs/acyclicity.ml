open Graphs

type degree =
  | Berge_acyclic
  | Gamma_acyclic
  | Beta_acyclic
  | Alpha_acyclic
  | Cyclic

type report = {
  berge : bool;
  gamma : bool;
  beta : bool;
  alpha : bool;
  conformal : bool;
  chordal_2section : bool;
}

let alpha_acyclic = Gyo.alpha_acyclic

let alpha_acyclic_by_definition h =
  Chordal.is_chordal (Hypergraph.two_section h) && Conformal.is_conformal h

let beta_acyclic = Beta.acyclic
let gamma_acyclic = Gamma.acyclic
let berge_acyclic = Berge.acyclic

let report h =
  {
    berge = berge_acyclic h;
    gamma = gamma_acyclic h;
    beta = beta_acyclic h;
    alpha = alpha_acyclic h;
    conformal = Conformal.is_conformal h;
    chordal_2section = Chordal.is_chordal (Hypergraph.two_section h);
  }

let degree h =
  if berge_acyclic h then Berge_acyclic
  else if gamma_acyclic h then Gamma_acyclic
  else if beta_acyclic h then Beta_acyclic
  else if alpha_acyclic h then Alpha_acyclic
  else Cyclic

let degree_name = function
  | Berge_acyclic -> "Berge-acyclic"
  | Gamma_acyclic -> "gamma-acyclic"
  | Beta_acyclic -> "beta-acyclic"
  | Alpha_acyclic -> "alpha-acyclic"
  | Cyclic -> "cyclic"

type witness =
  | Berge_cycle of int list * int list
  | Gamma_3_cycle of int * int * int
  | Beta_cycle of int list
  | Gyo_stuck of int list

let why_not h target =
  let beta_witness () =
    if Beta.acyclic h then None
    else
      match Beta.find_beta_cycle ~max_q:6 h with
      | Some (edges, _) -> Some (Beta_cycle edges)
      | None -> None
  in
  match target with
  | Cyclic -> None
  | Berge_acyclic -> (
    match Berge.find_berge_cycle h with
    | Some (es, ns) -> Some (Berge_cycle (es, ns))
    | None -> None)
  | Gamma_acyclic -> (
    match Gamma.special_3_cycle h with
    | Some (i, j, k) -> Some (Gamma_3_cycle (i, j, k))
    | None -> beta_witness ())
  | Beta_acyclic -> beta_witness ()
  | Alpha_acyclic ->
    let t = Gyo.run h in
    if t.Gyo.surviving_edges = [] then None
    else Some (Gyo_stuck t.Gyo.surviving_edges)

let pp_witness ppf = function
  | Berge_cycle (es, ns) ->
    Format.fprintf ppf "Berge cycle through edges {%s} threaded by nodes {%s}"
      (String.concat ", " (List.map string_of_int es))
      (String.concat ", " (List.map string_of_int ns))
  | Gamma_3_cycle (i, j, k) ->
    Format.fprintf ppf "special 3-cycle on edges (%d, %d, %d)" i j k
  | Beta_cycle es ->
    Format.fprintf ppf "beta-cycle through edges {%s}"
      (String.concat ", " (List.map string_of_int es))
  | Gyo_stuck es ->
    Format.fprintf ppf "GYO reduction stuck with edges {%s}"
      (String.concat ", " (List.map string_of_int es))

let hierarchy_consistent r =
  (not r.berge || r.gamma) && (not r.gamma || r.beta) && (not r.beta || r.alpha)
