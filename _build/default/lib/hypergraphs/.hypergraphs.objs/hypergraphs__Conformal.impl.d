lib/hypergraphs/conformal.ml: Cliques Graphs Hypergraph Iset List
