lib/hypergraphs/mcs.mli: Hypergraph
