lib/hypergraphs/join_tree.mli: Graphs Hypergraph Iset
