lib/hypergraphs/beta.mli: Graphs Hypergraph Iset
