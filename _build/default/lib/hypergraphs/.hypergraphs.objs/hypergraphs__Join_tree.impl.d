lib/hypergraphs/join_tree.ml: Array Graphs Hypergraph Iset List Traverse Ugraph
