lib/hypergraphs/acyclicity.ml: Berge Beta Chordal Conformal Format Gamma Graphs Gyo Hypergraph List String
