lib/hypergraphs/berge.ml: Cycles Graphs Hypergraph List
