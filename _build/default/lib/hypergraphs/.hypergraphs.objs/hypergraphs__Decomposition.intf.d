lib/hypergraphs/decomposition.mli: Graphs Hypergraph Iset Ugraph
