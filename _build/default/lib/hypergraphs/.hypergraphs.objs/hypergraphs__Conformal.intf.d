lib/hypergraphs/conformal.mli: Hypergraph
