lib/hypergraphs/hypergraph.ml: Array Format Graphs Iset List Traverse Ugraph
