lib/hypergraphs/decomposition.ml: Array Graphs Hashtbl Hypergraph Iset List Traverse Ugraph
