lib/hypergraphs/gamma.ml: Beta Graphs Hypergraph Iset
