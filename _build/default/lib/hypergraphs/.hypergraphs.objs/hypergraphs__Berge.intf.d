lib/hypergraphs/berge.mli: Hypergraph
