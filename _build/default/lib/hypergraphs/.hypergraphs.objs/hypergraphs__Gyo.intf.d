lib/hypergraphs/gyo.mli: Graphs Hypergraph Iset Join_tree
