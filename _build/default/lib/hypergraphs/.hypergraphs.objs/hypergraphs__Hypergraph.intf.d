lib/hypergraphs/hypergraph.mli: Format Graphs Iset Ugraph
