lib/hypergraphs/gamma.mli: Hypergraph
