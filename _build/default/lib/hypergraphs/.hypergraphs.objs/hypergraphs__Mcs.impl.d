lib/hypergraphs/mcs.ml: Array Graphs Hypergraph Iset Join_tree List
