lib/hypergraphs/acyclicity.mli: Format Hypergraph
