lib/hypergraphs/gyo.ml: Array Graphs Hashtbl Hypergraph Iset Join_tree List
