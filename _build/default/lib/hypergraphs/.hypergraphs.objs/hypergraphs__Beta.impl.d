lib/hypergraphs/beta.ml: Array Graphs Hypergraph Iset List Mcs
