open Graphs

let is_nest_point h v =
  let incident = Iset.elements (Hypergraph.incident h v) in
  let contents = List.map (Hypergraph.edge h) incident in
  let sorted = List.sort (fun a b -> compare (Iset.cardinal a) (Iset.cardinal b)) contents in
  let rec chain = function
    | [] | [ _ ] -> true
    | a :: (b :: _ as rest) -> Iset.subset a b && chain rest
  in
  chain sorted

let elimination_order h =
  let rec go h eliminated =
    let covered = Hypergraph.covered_nodes h in
    if Iset.is_empty covered then Some (List.rev eliminated)
    else
      match Iset.elements covered |> List.find_opt (is_nest_point h) with
      | None -> None
      | Some v -> go (Hypergraph.remove_node h v) (v :: eliminated)
  in
  go h []

let acyclic h = elimination_order h <> None

let guarded_node_ordering h =
  let covered = Array.of_list (Iset.elements (Hypergraph.covered_nodes h)) in
  match Mcs.rip_ordering (Hypergraph.dual h) with
  | None -> None
  | Some dual_order -> Some (List.map (fun i -> covered.(i)) dual_order)

let is_guarded_node_ordering h order =
  let covered = Hypergraph.covered_nodes h in
  Iset.equal covered (Iset.of_list order)
  && List.length order = Iset.cardinal covered
  &&
  let rec go earlier = function
    | [] -> true
    | ni :: rest ->
      let guarded =
        earlier = []
        ||
        let edges_with_ni_and_earlier =
          Iset.filter
            (fun e ->
              not
                (Iset.is_empty
                   (Iset.inter (Hypergraph.edge h e) (Iset.of_list earlier))))
            (Hypergraph.incident h ni)
        in
        Iset.is_empty edges_with_ni_and_earlier
        || List.exists
             (fun nj ->
               Iset.for_all
                 (fun e -> Iset.mem nj (Hypergraph.edge h e))
                 edges_with_ni_and_earlier)
             earlier
      in
      guarded && go (ni :: earlier) rest
  in
  go [] order

(* Brute-force β-cycle search, directly from Definition 6: a cyclic
   sequence of q >= 3 distinct edges where every consecutive
   intersection contains a node pure to that consecutive pair (in no
   other edge of the cycle). *)
let find_beta_cycle ?max_q h =
  let q_edges = Hypergraph.n_edges h in
  let bound = match max_q with Some b -> min b q_edges | None -> q_edges in
  let result = ref None in
  let check_arrangement arr =
    let q = Array.length arr in
    let others i j =
      (* union of the cycle's edges except positions i and j *)
      let acc = ref Iset.empty in
      Array.iteri
        (fun k e -> if k <> i && k <> j then acc := Iset.union !acc (Hypergraph.edge h e))
        arr;
      !acc
    in
    let pure i =
      let j = (i + 1) mod q in
      Iset.diff
        (Iset.inter (Hypergraph.edge h arr.(i)) (Hypergraph.edge h arr.(j)))
        (others i j)
    in
    let pures = List.init q pure in
    if List.for_all (fun s -> not (Iset.is_empty s)) pures then
      result := Some (Array.to_list arr, pures)
  in
  (* Enumerate arrangements: first element is the smallest chosen index;
     remaining positions are filled by DFS over larger-or-equal ids, and
     mirror-image duplicates are skipped via second < last. *)
  let rec fill first used acc len =
    if !result <> None then ()
    else if len >= 3 then begin
      let arr = Array.of_list (List.rev acc) in
      if arr.(1) < arr.(len - 1) then check_arrangement arr
    end;
    if !result = None && len < bound then
      for e = first + 1 to q_edges - 1 do
        if (not (List.mem e used)) && !result = None then
          fill first (e :: used) (e :: acc) (len + 1)
      done
  in
  for first = 0 to q_edges - 1 do
    if !result = None then fill first [ first ] [ first ] 1
  done;
  !result
