(** Hypergraphs over the node universe [{0, ..., n_nodes - 1}].

    Following the paper's Definition 1, a hypergraph is a finite node
    set together with a {e family} of nonempty hyperedges — duplicate
    edges are allowed (they are what make the bipartite-graph /
    hypergraph correspondence of Definition 2 exact), so edges are
    indexed by position. *)

open Graphs

type t

val create : n_nodes:int -> Iset.t list -> t
(** Raises [Invalid_argument] if any edge is empty or mentions a node
    outside the universe. Duplicates are kept. *)

val n_nodes : t -> int

val n_edges : t -> int

val edge : t -> int -> Iset.t
(** [edge h i] is the [i]-th hyperedge. *)

val edges : t -> Iset.t array
(** Fresh array of all hyperedges, in index order. *)

val total_size : t -> int
(** Sum of edge cardinalities. *)

val incident : t -> int -> Iset.t
(** [incident h v] is the set of edge indices containing node [v]. *)

val covered_nodes : t -> Iset.t
(** Nodes belonging to at least one edge. *)

val mem : t -> edge:int -> node:int -> bool

val dual : t -> t
(** Definition 3: nodes of the dual are this hypergraph's edge indices;
    the dual has one edge per original node [v] that belongs to at least
    one edge, namely [incident h v]. Nodes in no edge contribute no dual
    edge (edges must be nonempty); the correspondence with the paper is
    exact on hypergraphs without isolated nodes. *)

val two_section : t -> Ugraph.t
(** The paper's [G(H)]: same nodes, an arc between every two distinct
    nodes sharing an edge. *)

val incidence_graph : t -> Ugraph.t * int
(** Bipartite incidence graph: nodes [0 .. n_nodes-1] are hypergraph
    nodes, nodes [n_nodes .. n_nodes+n_edges-1] are edges; returns the
    graph and the offset [n_nodes]. *)

val restrict : t -> Iset.t -> t
(** Partial hypergraph induced by a node set: intersect every edge with
    the set, drop emptied edges. Node universe unchanged. *)

val remove_node : t -> int -> t

val remove_edge_at : t -> int -> t

val reduce : t -> t
(** Remove every edge properly contained in another edge, and collapse
    duplicate edges to one occurrence (the classical "reduction"). *)

val is_connected : t -> bool
(** Covered nodes form one component of the incidence graph; vacuously
    true when there are no edges. *)

val equal_modulo_order : t -> t -> bool
(** Same node universe and same multiset of edges. *)

val pp : Format.formatter -> t -> unit
