(** Graham / Yu–Özsoyoğlu (GYO) reduction: the classical test for
    α-acyclicity, which also yields a join tree.

    The reduction repeatedly (a) deletes nodes that belong to exactly
    one remaining edge and (b) deletes edges contained in another
    remaining edge. A hypergraph is α-acyclic iff the reduction deletes
    every edge. *)

open Graphs

type trace = {
  survivors : Iset.t array;  (** shrunken content of surviving edges *)
  surviving_edges : int list;  (** original indices still present *)
  parent : int array;
      (** for each original edge index, the edge it was absorbed into,
          or [-1] if it survived or was emptied last *)
}

val run : Hypergraph.t -> trace

val alpha_acyclic : Hypergraph.t -> bool

val join_tree : Hypergraph.t -> Join_tree.t option
(** [Some] join tree over the original edge indices when the hypergraph
    is α-acyclic (the tree of absorptions recorded by the reduction);
    [None] otherwise. For a disconnected hypergraph this is a join
    forest: one root per component. *)
