(** β-acyclicity (Definition 6 with [D = β]).

    The fast test is nest-point elimination: a node is a {e nest point}
    when the edges containing it form a chain under inclusion, and a
    hypergraph is β-acyclic iff repeatedly deleting nest points deletes
    every node (β-acyclicity is hereditary, so greedy elimination is
    confluent). The explicit β-cycle search of Definition 6 is provided
    as a brute-force oracle. *)

open Graphs

val is_nest_point : Hypergraph.t -> int -> bool

val acyclic : Hypergraph.t -> bool

val elimination_order : Hypergraph.t -> int list option
(** The order in which nodes were eliminated, when elimination
    succeeds. *)

val guarded_node_ordering : Hypergraph.t -> int list option
(** The dual running-intersection property that Corollary 1 grants
    β-acyclic hypergraphs: an ordering [n1; ...; nq] of the covered
    nodes such that for every [ni] there is an earlier [nj] belonging
    to {e every} edge containing both [ni] and any earlier node.
    Computed as a running-intersection ordering of the dual hypergraph
    (β-acyclicity is self-dual and implies α-acyclicity of the dual).
    [None] when no such ordering is found. *)

val is_guarded_node_ordering : Hypergraph.t -> int list -> bool
(** Literal check of the quoted property (must enumerate exactly the
    covered nodes). *)

val find_beta_cycle : ?max_q:int -> Hypergraph.t -> (int list * Iset.t list) option
(** Brute-force search for a β-cycle: returns the edge-index cycle
    together with, for each position, the nonempty set of admissible
    thread nodes. Exponential in the number of edges; test oracle
    only. *)
