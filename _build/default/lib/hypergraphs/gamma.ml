open Graphs

let special_3_cycle h =
  let q = Hypergraph.n_edges h in
  let e = Hypergraph.edge h in
  let result = ref None in
  for i = 0 to q - 1 do
    for j = 0 to q - 1 do
      for k = 0 to q - 1 do
        if !result = None && i <> j && j <> k && i <> k then begin
          let n1_pool = Iset.diff (Iset.inter (e i) (e j)) (e k) in
          let n2_pool = Iset.inter (e j) (e k) in
          let n3_pool = Iset.diff (Iset.inter (e k) (e i)) (e j) in
          if
            (not (Iset.is_empty n1_pool))
            && (not (Iset.is_empty n2_pool))
            && not (Iset.is_empty n3_pool)
          then result := Some (i, j, k)
        end
      done
    done
  done;
  !result

let acyclic h = Beta.acyclic h && special_3_cycle h = None
