(** γ-acyclicity (Definition 6 with [D = γ]).

    A γ-cycle is either a β-cycle or a 3-edge Berge cycle
    [(e1, e2, e3)] whose thread nodes satisfy [n1 ∉ e3] and [n3 ∉ e2].
    Hence γ-acyclic ⇔ β-acyclic and no such special 3-cycle; the
    3-cycle search is a polynomial scan over ordered edge triples. *)

val special_3_cycle : Hypergraph.t -> (int * int * int) option
(** Some ordered triple [(i, j, k)] of edge indices forming the special
    3-cycle, if any: [(ei ∩ ej) \ ek], [ej ∩ ek] and [(ek ∩ ei) \ ej]
    all nonempty. *)

val acyclic : Hypergraph.t -> bool
