(** Umbrella: the four acyclicity degrees of relational database theory
    (Fagin 1983), specialised as in the paper's Definitions 6–7.

    The degrees form a proper hierarchy on acyclic hypergraphs:
    Berge-acyclic ⊂ γ-acyclic ⊂ β-acyclic ⊂ α-acyclic. *)

type degree =
  | Berge_acyclic
  | Gamma_acyclic  (** γ- but not Berge-acyclic *)
  | Beta_acyclic  (** β- but not γ-acyclic *)
  | Alpha_acyclic  (** α- but not β-acyclic *)
  | Cyclic  (** not even α-acyclic *)

type report = {
  berge : bool;
  gamma : bool;
  beta : bool;
  alpha : bool;
  conformal : bool;
  chordal_2section : bool;
}

val alpha_acyclic : Hypergraph.t -> bool
(** Via GYO reduction. Equivalent formulation (Definition 7):
    the 2-section is chordal and the hypergraph is conformal. *)

val alpha_acyclic_by_definition : Hypergraph.t -> bool
(** Literally Definition 7: [G(H)] chordal and [H] conformal. Used to
    cross-check the reduction-based test. *)

val beta_acyclic : Hypergraph.t -> bool

val gamma_acyclic : Hypergraph.t -> bool

val berge_acyclic : Hypergraph.t -> bool

val report : Hypergraph.t -> report

val degree : Hypergraph.t -> degree
(** Most restrictive satisfied degree. *)

val degree_name : degree -> string

(** Why a hypergraph misses a degree: a concrete cycle witness. *)
type witness =
  | Berge_cycle of int list * int list
      (** edge indices and thread nodes of a Berge cycle *)
  | Gamma_3_cycle of int * int * int
      (** ordered edge triple of Definition 6's special 3-cycle *)
  | Beta_cycle of int list  (** edge indices of a β-cycle *)
  | Gyo_stuck of int list
      (** edge indices surviving GYO reduction (α fails) *)

val why_not : Hypergraph.t -> degree -> witness option
(** A witness that the hypergraph does {e not} reach the given degree;
    [None] when it does (or when the exponential β search is cut off).
    [Cyclic] as a target never has a witness. *)

val pp_witness : Format.formatter -> witness -> unit

val hierarchy_consistent : report -> bool
(** [berge ⇒ gamma ⇒ beta ⇒ alpha] — sanity predicate used by tests and
    the benchmark harness. *)
