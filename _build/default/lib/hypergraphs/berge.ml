open Graphs

let acyclic h =
  let g, _ = Hypergraph.incidence_graph h in
  Cycles.is_acyclic g

(* Search a cycle in the incidence graph and convert it to (edges,
   nodes) form: incidence cycles alternate node / edge vertices, and any
   incidence cycle gives a Berge cycle with q >= 2 distinct edges and q
   distinct nodes. *)
let find_berge_cycle h =
  let g, offset = Hypergraph.incidence_graph h in
  match Cycles.find_cycle g with
  | None -> None
  | Some cyc ->
    let rotated =
      (* Start the cycle at a node-vertex so pairs line up. *)
      match List.partition (fun v -> v < offset) cyc with
      | [], _ -> cyc (* cannot happen: incidence graphs are bipartite *)
      | _ ->
        let rec rotate = function
          | v :: _ as l when v < offset -> l
          | v :: rest -> rotate (rest @ [ v ])
          | [] -> []
        in
        rotate cyc
    in
    let nodes = List.filter (fun v -> v < offset) rotated in
    let edges = List.filter_map (fun v -> if v >= offset then Some (v - offset) else None) rotated in
    Some (edges, nodes)
