open Graphs
open Hypergraphs

type named_bigraph = {
  graph : Bipartite.Bigraph.t;
  left_names : string array;
  right_names : string array;
}

type error = { line : int; message : string }

let pp_error ppf e =
  Format.fprintf ppf "line %d: %s" e.line e.message

let tokenize text =
  String.split_on_char '\n' text
  |> List.mapi (fun i line -> (i + 1, line))
  |> List.filter_map (fun (i, line) ->
         let line =
           match String.index_opt line '#' with
           | Some k -> String.sub line 0 k
           | None -> line
         in
         match
           String.split_on_char ' ' line
           |> List.concat_map (String.split_on_char '\t')
           |> List.filter (fun t -> t <> "")
         with
         | [] -> None
         | tokens -> Some (i, tokens))

let err line fmt = Printf.ksprintf (fun message -> Error { line; message }) fmt

let expect_header want = function
  | (_, [ h ]) :: rest when h = want -> Ok rest
  | (i, _) :: _ -> err i "expected a single '%s' header line" want
  | [] -> err 0 "empty input (expected '%s' header)" want

let index_of arr name =
  let rec go i =
    if i >= Array.length arr then None
    else if arr.(i) = name then Some i
    else go (i + 1)
  in
  go 0

let bigraph_of_string text =
  match expect_header "bipartite" (tokenize text) with
  | Error e -> Error e
  | Ok lines ->
    let left = ref [] and right = ref [] and edges = ref [] in
    let rec consume = function
      | [] -> Ok ()
      | (i, "left" :: names) :: rest ->
        left := !left @ names;
        if names = [] then err i "'left' line with no names" else consume rest
      | (i, "right" :: names) :: rest ->
        right := !right @ names;
        if names = [] then err i "'right' line with no names" else consume rest
      | (i, [ "edge"; a; b ]) :: rest ->
        edges := (i, a, b) :: !edges;
        consume rest
      | (i, t :: _) :: _ -> err i "unknown directive '%s'" t
      | (i, []) :: _ -> err i "empty line slipped through"
    in
    (match consume lines with
    | Error e -> Error e
    | Ok () ->
      let dup l = List.length (List.sort_uniq compare l) <> List.length l in
      if dup !left || dup !right || dup (!left @ !right) then
        err 0 "duplicate node name"
      else begin
        let left_names = Array.of_list !left in
        let right_names = Array.of_list !right in
        let rec build g = function
          | [] -> Ok g
          | (i, a, b) :: rest -> (
            match (index_of left_names a, index_of right_names b) with
            | Some la, Some rb ->
              build (Bipartite.Bigraph.add_edge g la rb) rest
            | None, _ -> err i "unknown left node '%s'" a
            | _, None -> err i "unknown right node '%s'" b)
        in
        match
          build
            (Bipartite.Bigraph.create
               ~nl:(Array.length left_names)
               ~nr:(Array.length right_names))
            (List.rev !edges)
        with
        | Error e -> Error e
        | Ok graph -> Ok { graph; left_names; right_names }
      end)

let schema_of_string text =
  match expect_header "schema" (tokenize text) with
  | Error e -> Error e
  | Ok lines ->
    let rec consume acc = function
      | [] -> Ok (List.rev acc)
      | (i, "relation" :: name :: attrs) :: rest ->
        if attrs = [] then err i "relation '%s' has no attributes" name
        else consume ((name, attrs) :: acc) rest
      | (i, t :: _) :: _ -> err i "unknown directive '%s'" t
      | (i, []) :: _ -> err i "empty line slipped through"
    in
    (match consume [] lines with
    | Error e -> Error e
    | Ok rels -> (
      try Ok (Datamodel.Schema.make rels)
      with Invalid_argument m -> err 0 "%s" m))

let hypergraph_of_string text =
  match expect_header "hypergraph" (tokenize text) with
  | Error e -> Error e
  | Ok lines ->
    let nodes = ref [] and edges = ref [] in
    let rec consume = function
      | [] -> Ok ()
      | (i, "nodes" :: names) :: rest ->
        nodes := !nodes @ names;
        if names = [] then err i "'nodes' line with no names" else consume rest
      | (i, "edge" :: name :: members) :: rest ->
        if members = [] then err i "edge '%s' is empty" name
        else begin
          edges := (i, name, members) :: !edges;
          consume rest
        end
      | (i, t :: _) :: _ -> err i "unknown directive '%s'" t
      | (i, []) :: _ -> err i "empty line slipped through"
    in
    (match consume lines with
    | Error e -> Error e
    | Ok () ->
      let node_names = Array.of_list !nodes in
      let rec build acc = function
        | [] -> Ok (List.rev acc)
        | (i, _, members) :: rest ->
          let rec resolve set = function
            | [] -> Ok set
            | m :: ms -> (
              match index_of node_names m with
              | Some v -> resolve (Iset.add v set) ms
              | None -> err i "unknown node '%s'" m)
          in
          (match resolve Iset.empty members with
          | Error e -> Error e
          | Ok set -> build (set :: acc) rest)
      in
      match build [] (List.rev !edges) with
      | Error e -> Error e
      | Ok family ->
        let edge_names =
          Array.of_list (List.rev_map (fun (_, n, _) -> n) !edges)
        in
        Ok
          ( Hypergraph.create ~n_nodes:(Array.length node_names) family,
            node_names,
            edge_names ))

let database_of_string text =
  match expect_header "database" (tokenize text) with
  | Error e -> Error e
  | Ok lines ->
    let schemas = ref [] and rows = ref [] in
    let rec consume = function
      | [] -> Ok ()
      | (i, "relation" :: name :: attrs) :: rest ->
        if attrs = [] then err i "relation '%s' has no attributes" name
        else begin
          schemas := (name, attrs) :: !schemas;
          consume rest
        end
      | (i, "row" :: name :: values) :: rest ->
        rows := (i, name, values) :: !rows;
        consume rest
      | (i, t :: _) :: _ -> err i "unknown directive '%s'" t
      | (i, []) :: _ -> err i "empty line slipped through"
    in
    (match consume lines with
    | Error e -> Error e
    | Ok () ->
      let schemas = List.rev !schemas in
      let rec check_rows = function
        | [] -> Ok ()
        | (i, name, values) :: rest -> (
          match List.assoc_opt name schemas with
          | None -> err i "row for unknown relation '%s'" name
          | Some attrs when List.length attrs <> List.length values ->
            err i "row arity mismatch for '%s'" name
          | Some _ -> check_rows rest)
      in
      (match check_rows (List.rev !rows) with
      | Error e -> Error e
      | Ok () -> (
        let rels =
          List.map
            (fun (name, attrs) ->
              let data =
                List.rev !rows
                |> List.filter_map (fun (_, n, values) ->
                       if n = name then Some values else None)
              in
              (name, Relalg.Relation.make ~attrs data))
            schemas
        in
        try Ok (Relalg.Database.make rels)
        with Invalid_argument m -> err 0 "%s" m)))

let query_of_string text =
  let words =
    String.split_on_char ' ' text
    |> List.concat_map (String.split_on_char ',')
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun t -> t <> "")
  in
  match words with
  | "connect" :: rest ->
    let rec split_objects acc = function
      | [] -> (List.rev acc, [])
      | "where" :: conds -> (List.rev acc, conds)
      | w :: rest -> split_objects (w :: acc) rest
    in
    let objects, conds = split_objects [] rest in
    if objects = [] then err 1 "no objects to connect"
    else
      let rec parse_conds acc = function
        | [] -> Ok (List.rev acc)
        | attr :: "=" :: value :: rest -> (
          match rest with
          | "and" :: more -> parse_conds ((attr, value) :: acc) more
          | [] -> Ok (List.rev ((attr, value) :: acc))
          | w :: _ -> err 1 "expected 'and', found '%s'" w)
        | w :: _ -> err 1 "malformed condition near '%s'" w
      in
      (match parse_conds [] conds with
      | Error e -> Error e
      | Ok where -> Ok (objects, where))
  | _ -> err 1 "queries start with 'connect'"

let name_set nb names =
  let module B = Bipartite.Bigraph in
  let rec go acc = function
    | [] -> Ok acc
    | n :: rest -> (
      match index_of nb.left_names n with
      | Some i -> go (Iset.add (B.index nb.graph (B.L i)) acc) rest
      | None -> (
        match index_of nb.right_names n with
        | Some j -> go (Iset.add (B.index nb.graph (B.R j)) acc) rest
        | None -> Error n))
  in
  go Iset.empty names

let bigraph_to_string nb =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "bipartite\n";
  Buffer.add_string buf
    ("left " ^ String.concat " " (Array.to_list nb.left_names) ^ "\n");
  Buffer.add_string buf
    ("right " ^ String.concat " " (Array.to_list nb.right_names) ^ "\n");
  List.iter
    (fun (i, j) ->
      Buffer.add_string buf
        (Printf.sprintf "edge %s %s\n" nb.left_names.(i) nb.right_names.(j)))
    (Bipartite.Bigraph.edges nb.graph);
  Buffer.contents buf

let schema_to_string schema =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "schema\n";
  List.iter
    (fun name ->
      Buffer.add_string buf
        (Printf.sprintf "relation %s %s\n" name
           (String.concat " " (Datamodel.Schema.relation_attrs schema name))))
    (Datamodel.Schema.relation_names schema);
  Buffer.contents buf

let hypergraph_to_string h ~node_names ~edge_names =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "hypergraph\n";
  Buffer.add_string buf
    ("nodes " ^ String.concat " " (Array.to_list node_names) ^ "\n");
  Array.iteri
    (fun i e ->
      Buffer.add_string buf
        (Printf.sprintf "edge %s %s\n" edge_names.(i)
           (String.concat " "
              (List.map (fun v -> node_names.(v)) (Iset.elements e)))))
    (Hypergraph.edges h);
  Buffer.contents buf

let database_to_string db =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "database\n";
  List.iter
    (fun (name, r) ->
      Buffer.add_string buf
        (Printf.sprintf "relation %s %s\n" name
           (String.concat " " (Relalg.Relation.attrs r))))
    (Relalg.Database.relations db);
  List.iter
    (fun (name, r) ->
      List.iter
        (fun row ->
          Buffer.add_string buf
            (Printf.sprintf "row %s %s\n" name (String.concat " " row)))
        (Relalg.Relation.tuples r))
    (Relalg.Database.relations db);
  Buffer.contents buf
