lib/mc_io/parse.ml: Array Bipartite Buffer Datamodel Format Graphs Hypergraph Hypergraphs Iset List Printf Relalg String
