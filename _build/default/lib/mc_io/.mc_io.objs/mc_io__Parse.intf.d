lib/mc_io/parse.mli: Bipartite Datamodel Format Graphs Hypergraph Hypergraphs Iset Relalg
