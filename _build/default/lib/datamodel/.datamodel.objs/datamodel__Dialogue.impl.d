lib/datamodel/dialogue.ml: List Query
