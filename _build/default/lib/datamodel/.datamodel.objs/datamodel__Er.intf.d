lib/datamodel/er.mli: Graphs Schema Ugraph
