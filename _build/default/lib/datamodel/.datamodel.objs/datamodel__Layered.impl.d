lib/datamodel/layered.ml: Array Bigraph Bipartite Classify Dreyfus_wagner Graphs Hashtbl Iset Kbest List Printf Steiner Tree
