lib/datamodel/repair.ml: Acyclicity Array Berge Beta Buffer Gamma Gyo Hypergraphs List Printf Schema String
