lib/datamodel/interface.mli: Query Relalg
