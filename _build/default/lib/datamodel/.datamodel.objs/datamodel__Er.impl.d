lib/datamodel/er.ml: Array Bipartite Dreyfus_wagner Graphs Iset Kbest List Printf Schema Steiner Tree Ugraph
