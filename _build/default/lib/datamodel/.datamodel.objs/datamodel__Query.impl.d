lib/datamodel/query.ml: Algorithm1 Algorithm2 Bigraph Bipartite Dreyfus_wagner Format Graphs Iset Kbest List Mn_chordality Schema Steiner String Tree Weighted
