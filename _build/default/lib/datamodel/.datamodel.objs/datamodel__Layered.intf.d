lib/datamodel/layered.mli: Bigraph Bipartite Classify
