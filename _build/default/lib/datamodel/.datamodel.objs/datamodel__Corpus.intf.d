lib/datamodel/corpus.mli: Schema
