lib/datamodel/schema.ml: Acyclicity Bigraph Bipartite Classify Format Graphs Hypergraph Hypergraphs Iset List Relalg String
