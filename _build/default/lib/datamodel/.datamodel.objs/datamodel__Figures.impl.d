lib/datamodel/figures.ml: Array Bigraph Bipartite Dreyfus_wagner Er Graphs Iset List Steiner Ugraph X3c
