lib/datamodel/corpus.ml: Schema
