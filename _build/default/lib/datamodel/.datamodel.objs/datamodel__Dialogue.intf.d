lib/datamodel/dialogue.mli: Query Schema
