lib/datamodel/schema.mli: Acyclicity Bigraph Bipartite Classify Format Hypergraph Hypergraphs Relalg
