lib/datamodel/interface.ml: List Query Relalg Schema
