lib/datamodel/query.mli: Format Graphs Iset Schema Steiner
