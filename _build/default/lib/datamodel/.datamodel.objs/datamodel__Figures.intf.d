lib/datamodel/figures.mli: Bigraph Bipartite Er Graphs Iset Steiner Ugraph X3c
