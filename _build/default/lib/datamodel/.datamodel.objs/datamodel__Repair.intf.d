lib/datamodel/repair.mli: Schema
