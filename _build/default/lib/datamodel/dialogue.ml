type reaction = Accept | Reject

type outcome =
  | Proposing of Query.connection
  | Settled of Query.connection
  | Exhausted
  | Failed of Query.error

type t = {
  pending : Query.connection list;
  state : outcome;
  history : (Query.connection * reaction) list;  (* newest first *)
}

let start ?(max_alternatives = 8) schema ~objects =
  match Query.terminals_of_objects schema objects with
  | Error e -> { pending = []; state = Failed e; history = [] }
  | Ok _ -> (
    match Query.interpretations ~k:max_alternatives schema ~objects with
    | [] -> (
      (* Distinguish a disconnected query from an unknown-object one. *)
      match Query.minimal_connection schema ~objects with
      | Error e -> { pending = []; state = Failed e; history = [] }
      | Ok c -> { pending = []; state = Proposing c; history = [] })
    | first :: rest ->
      { pending = rest; state = Proposing first; history = [] })

let current t = t.state

let step t reaction =
  match (t.state, reaction) with
  | Proposing c, Accept ->
    { t with state = Settled c; history = (c, Accept) :: t.history }
  | Proposing c, Reject -> (
    let history = (c, Reject) :: t.history in
    match t.pending with
    | [] -> { pending = []; state = Exhausted; history }
    | next :: rest -> { pending = rest; state = Proposing next; history })
  | (Settled _ | Exhausted | Failed _), _ -> t

let disclosed t =
  let of_conn c = c.Query.auxiliary in
  let shown =
    List.concat_map (fun (c, _) -> of_conn c) t.history
    @ (match t.state with
      | Proposing c | Settled c -> of_conn c
      | Exhausted | Failed _ -> [])
  in
  List.sort_uniq compare shown

let transcript t = List.rev t.history
