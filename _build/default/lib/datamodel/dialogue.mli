(** The interactive disambiguation procedure of the paper's
    introduction, as a pure state machine: propose the minimal
    interpretation first ("the most immediate interpretation of the
    query"), and on each rejection disclose the next-smallest
    alternative — so a casual user confirms a reading while being shown
    as few auxiliary concepts as possible.

    The machine is driven by {!step}; embedders render
    {!val:proposal} and feed back {!type:reaction}s. *)

type t

type reaction = Accept | Reject

type outcome =
  | Proposing of Query.connection  (** awaiting the user's reaction *)
  | Settled of Query.connection  (** the user accepted this reading *)
  | Exhausted  (** no interpretation left to offer *)
  | Failed of Query.error

val start : ?max_alternatives:int -> Schema.t -> objects:string list -> t
(** Prepare a dialogue for the query (default: up to 8 alternatives). *)

val current : t -> outcome

val step : t -> reaction -> t
(** [step t Accept] settles on the current proposal; [step t Reject]
    advances to the next one. No-op once settled/exhausted/failed. *)

val disclosed : t -> string list
(** All auxiliary objects shown to the user so far — the quantity the
    paper's procedure tries to keep small. *)

val transcript : t -> (Query.connection * reaction) list
(** Proposals already reacted to, oldest first. *)
