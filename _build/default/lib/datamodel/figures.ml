open Graphs
open Bipartite
open Steiner

type labeled = {
  graph : Bigraph.t;
  left_names : string array;
  right_names : string array;
  title : string;
}

let name_of_index l v =
  match Bigraph.node_of_index l.graph v with
  | Bigraph.L i -> l.left_names.(i)
  | Bigraph.R j -> l.right_names.(j)

let index_of_name l name =
  let find arr =
    let rec go i =
      if i >= Array.length arr then None
      else if arr.(i) = name then Some i
      else go (i + 1)
    in
    go 0
  in
  match find l.left_names with
  | Some i -> Some (Bigraph.index l.graph (Bigraph.L i))
  | None -> (
    match find l.right_names with
    | Some j -> Some (Bigraph.index l.graph (Bigraph.R j))
    | None -> None)

let set_of_names l names =
  List.fold_left
    (fun acc n ->
      match index_of_name l n with
      | Some v -> Iset.add v acc
      | None -> invalid_arg ("Figures.set_of_names: unknown name " ^ n))
    Iset.empty names

let mk ~title ~left ~right edges =
  let left_names = Array.of_list left in
  let right_names = Array.of_list right in
  let pos arr x =
    let rec go i =
      if i >= Array.length arr then invalid_arg ("Figures: unknown " ^ x)
      else if arr.(i) = x then i
      else go (i + 1)
    in
    go 0
  in
  let graph =
    Bigraph.of_edges ~nl:(Array.length left_names)
      ~nr:(Array.length right_names)
      (List.map (fun (a, b) -> (pos left_names a, pos right_names b)) edges)
  in
  { graph; left_names; right_names; title }

(* Fig. 1: employees, departments; query {EMPLOYEE, DATE} has the
   birthdate interpretation (no auxiliary object) and the hiring-date
   interpretation through WORKS. *)
let fig1_er =
  Er.make
    ~entities:
      [
        ("EMPLOYEE", [ "NAME"; "CODE"; "DATE" ]);
        ("DEPARTMENT", [ "DNAME"; "FLOOR" ]);
      ]
    ~relationships:[ ("WORKS", [ "EMPLOYEE"; "DEPARTMENT" ], [ "DATE" ]) ]

let fig1_query = [ "EMPLOYEE"; "DATE" ]

(* Fig. 2: H1 = {AB, BC, AC, ABC} is the classic alpha-acyclic
   hypergraph whose dual is alpha-cyclic. *)
let fig2 =
  mk ~title:"Fig. 2: alpha-acyclic H1, alpha-cyclic dual"
    ~left:[ "A"; "B"; "C" ]
    ~right:[ "1"; "2"; "3"; "4" ]
    [
      ("A", "1"); ("B", "1");
      ("B", "2"); ("C", "2");
      ("A", "3"); ("C", "3");
      ("A", "4"); ("B", "4"); ("C", "4");
    ]

let fig3a =
  mk ~title:"Fig. 3a: (4,1)-chordal (forest) / Berge-acyclic H1"
    ~left:[ "A"; "B"; "C"; "D" ]
    ~right:[ "1"; "2"; "3" ]
    [ ("A", "1"); ("B", "1"); ("B", "2"); ("C", "2"); ("C", "3"); ("D", "3") ]

(* 6-cycle A-1-B-2-C-3 with the two chords A-2 and B-3. *)
let fig3b =
  mk ~title:"Fig. 3b: (6,2)-chordal / gamma-acyclic H1"
    ~left:[ "A"; "B"; "C" ]
    ~right:[ "1"; "2"; "3" ]
    [
      ("A", "1"); ("B", "1");
      ("B", "2"); ("C", "2"); ("A", "2");
      ("C", "3"); ("A", "3"); ("B", "3");
    ]

(* 6-cycle B-1-C-3-E-2 with single chord C-2, plus pendants A (on 1)
   and D (on 3). Carries Section 3's pseudo-vs-full Steiner remark. *)
let fig3c =
  mk ~title:"Fig. 3c: (6,1)- but not (6,2)-chordal / beta-acyclic H1"
    ~left:[ "A"; "B"; "C"; "D"; "E" ]
    ~right:[ "1"; "2"; "3" ]
    [
      ("A", "1"); ("B", "1"); ("C", "1");
      ("B", "2"); ("E", "2"); ("C", "2");
      ("C", "3"); ("E", "3"); ("D", "3");
    ]

let fig3c_p = set_of_names fig3c [ "A"; "B"; "E" ]
let fig3c_pseudo_nodes = set_of_names fig3c [ "A"; "B"; "C"; "E"; "1"; "3" ]

(* H1 = {ABX, BCX, ACX, ABCX}: alpha-acyclic with alpha-acyclic dual,
   but the triangle {AB.., BC.., AC..} is a beta-cycle. *)
let fig5 =
  mk ~title:"Fig. 5: chordal+conformal on both sides, not (6,1)-chordal"
    ~left:[ "A"; "B"; "C"; "X" ]
    ~right:[ "1"; "2"; "3"; "4" ]
    [
      ("A", "1"); ("B", "1"); ("X", "1");
      ("B", "2"); ("C", "2"); ("X", "2");
      ("A", "3"); ("C", "3"); ("X", "3");
      ("A", "4"); ("B", "4"); ("C", "4"); ("X", "4");
    ]

let fig6_x3c =
  X3c.make ~q:2 [ (0, 1, 2); (2, 3, 4); (3, 4, 5) ]

let fig8 =
  mk ~title:"Fig. 8: cover taxonomy over P = {A, C, D}"
    ~left:[ "A"; "B"; "C"; "D"; "E" ]
    ~right:[ "1"; "2"; "3"; "4"; "5" ]
    [
      ("A", "1"); ("B", "1");
      ("B", "3"); ("C", "3"); ("D", "3");
      ("A", "2"); ("C", "2");
      ("D", "5"); ("E", "5");
      ("E", "4"); ("A", "4");
    ]

let fig8_p = set_of_names fig8 [ "A"; "C"; "D" ]
let fig8_nonredundant = set_of_names fig8 [ "A"; "B"; "C"; "D"; "1"; "3" ]
let fig8_minimum = set_of_names fig8 [ "A"; "C"; "D"; "2"; "3" ]
let fig8_v1_nonredundant = set_of_names fig8 [ "A"; "C"; "D"; "E"; "2"; "4"; "5" ]
let fig8_v1_minimum = set_of_names fig8 [ "A"; "C"; "D"; "2"; "3" ]

(* A small chordal graph: two triangles sharing an edge, plus a
   pendant. *)
let fig9_chordal_input =
  Ugraph.of_edges ~n:5
    [ (0, 1); (1, 2); (0, 2); (1, 3); (2, 3); (3, 4) ]

(* 6-cycle A-1-B-2-C-3 with single chord A-2. *)
let fig10 =
  mk ~title:"Fig. 10: nonredundant path that is not minimum"
    ~left:[ "A"; "B"; "C" ]
    ~right:[ "1"; "2"; "3" ]
    [
      ("A", "1"); ("B", "1");
      ("B", "2"); ("C", "2"); ("A", "2");
      ("C", "3"); ("A", "3");
    ]

(* Theorem 6's graph: hubs 1, 2 joined to A and B; A carries satellites
   3 (with leaf C) and 4 (leaf D); B carries 5 (leaf E) and 6 (leaf F);
   the leaves also reach back to the hubs (C, E to 1; D, F to 2), which
   creates the longer detours each proof case relies on. *)
let fig11 =
  mk ~title:"Fig. 11: (6,1)-chordal graph with no good ordering"
    ~left:[ "A"; "B"; "C"; "D"; "E"; "F" ]
    ~right:[ "1"; "2"; "3"; "4"; "5"; "6" ]
    [
      ("A", "1"); ("A", "2"); ("A", "3"); ("A", "4");
      ("B", "1"); ("B", "2"); ("B", "5"); ("B", "6");
      ("C", "1"); ("C", "3");
      ("D", "2"); ("D", "4");
      ("E", "1"); ("E", "5");
      ("F", "2"); ("F", "6");
    ]

let fig11_bad_terminals ~first =
  let s names = Some (set_of_names fig11 names) in
  match first with
  | "A" -> s [ "3"; "C"; "4"; "D" ]
  | "B" -> s [ "5"; "E"; "6"; "F" ]
  | "1" -> s [ "3"; "C"; "5"; "E" ]
  | "2" -> s [ "4"; "D"; "6"; "F" ]
  | _ -> None

let fig11_optimum p =
  match
    Dreyfus_wagner.optimum_nodes (Bigraph.ugraph fig11.graph) ~terminals:p
  with
  | Some n -> n
  | None -> invalid_arg "Figures.fig11_optimum: disconnected terminals"

let all_labeled =
  [
    ("F2", fig2);
    ("F3a", fig3a);
    ("F3b", fig3b);
    ("F3c", fig3c);
    ("F5", fig5);
    ("F8", fig8);
    ("F10", fig10);
    ("F11", fig11);
  ]
