open Graphs
open Bipartite
open Steiner

type connection = {
  objects : string list;
  auxiliary : string list;
  relations_used : string list;
  attributes_used : string list;
  tree_edges : (string * string) list;
  optimal : bool;
}

type error =
  | Unknown_object of string
  | Disconnected
  | Not_applicable of string

type strategy = Auto | Exact | Algorithm2_only | Elimination_heuristic

let terminals_of_objects schema objects =
  let rec go acc = function
    | [] -> Ok acc
    | name :: rest -> (
      match Schema.object_index schema name with
      | Some v -> go (Iset.add v acc) rest
      | None -> Error (Unknown_object name))
  in
  go Iset.empty objects

let connection_of_tree schema ~query tree ~optimal =
  let g = Schema.to_bigraph schema in
  let name v = Schema.object_name schema v in
  let nodes = tree.Tree.nodes in
  let objects = List.map name (Iset.elements nodes) in
  let auxiliary =
    List.map name (Iset.elements (Iset.diff nodes query))
  in
  let relations_used =
    List.map name (Iset.elements (Iset.inter nodes (Bigraph.right_nodes g)))
  in
  let attributes_used =
    List.map name (Iset.elements (Iset.inter nodes (Bigraph.left_nodes g)))
  in
  let tree_edges = List.map (fun (u, v) -> (name u, name v)) tree.Tree.edges in
  { objects; auxiliary; relations_used; attributes_used; tree_edges; optimal }

let solve_exact g ~p =
  let u = Bigraph.ugraph g in
  if Iset.cardinal p <= Dreyfus_wagner.max_terminals then
    Dreyfus_wagner.solve u ~terminals:p
  else None

let minimal_connection ?(strategy = Auto) schema ~objects =
  match terminals_of_objects schema objects with
  | Error e -> Error e
  | Ok p -> (
    let g = Schema.to_bigraph schema in
    let u = Bigraph.ugraph g in
    if not (Graphs.Traverse.connects u p) then Error Disconnected
    else
      let via_alg2 () =
        if Mn_chordality.is_62_chordal g then
          match Algorithm2.solve u ~p with
          | Some tree -> Some (connection_of_tree schema ~query:p tree ~optimal:true)
          | None -> None
        else None
      in
      let via_exact () =
        match solve_exact g ~p with
        | Some tree -> Some (connection_of_tree schema ~query:p tree ~optimal:true)
        | None -> None
      in
      let via_elimination () =
        match Algorithm2.solve u ~p with
        | Some tree ->
          Some (connection_of_tree schema ~query:p tree ~optimal:false)
        | None -> None
      in
      let attempt = function
        | Some c -> Ok c
        | None -> Error Disconnected
      in
      match strategy with
      | Algorithm2_only ->
        if Mn_chordality.is_62_chordal g then attempt (via_alg2 ())
        else Error (Not_applicable "scheme is not (6,2)-chordal")
      | Exact -> (
        match via_exact () with
        | Some c -> Ok c
        | None -> Error (Not_applicable "too many query objects for exact search"))
      | Elimination_heuristic -> attempt (via_elimination ())
      | Auto -> (
        match via_alg2 () with
        | Some c -> Ok c
        | None -> (
          match via_exact () with
          | Some c -> Ok c
          | None -> attempt (via_elimination ()))))

let min_relations schema ~objects =
  match terminals_of_objects schema objects with
  | Error e -> Error e
  | Ok p -> (
    let g = Schema.to_bigraph schema in
    match Algorithm1.solve g ~p with
    | Ok r ->
      Ok (connection_of_tree schema ~query:p r.Algorithm1.tree ~optimal:true,
          r.Algorithm1.v2_count)
    | Error Algorithm1.Disconnected_terminals -> Error Disconnected
    | Error Algorithm1.Not_alpha_acyclic ->
      Error (Not_applicable "scheme hypergraph is not alpha-acyclic"))

let weighted_connection schema ~objects ~cost =
  match terminals_of_objects schema objects with
  | Error e -> Error e
  | Ok p ->
    let g = Schema.to_bigraph schema in
    let u = Bigraph.ugraph g in
    if Iset.cardinal p > Dreyfus_wagner.max_terminals then
      Error (Not_applicable "too many query objects for exact search")
    else (
      match
        Weighted.solve u
          ~weight:(fun v -> cost (Schema.object_name schema v))
          ~terminals:p
      with
      | None -> Error Disconnected
      | Some (tree, total) ->
        Ok (connection_of_tree schema ~query:p tree ~optimal:true, total))

let is_unambiguous schema ~objects =
  match terminals_of_objects schema objects with
  | Error e -> Error e
  | Ok p ->
    let g = Schema.to_bigraph schema in
    let u = Bigraph.ugraph g in
    if not (Graphs.Traverse.connects u p) then Error Disconnected
    else if Iset.cardinal p > Dreyfus_wagner.max_terminals then
      Error (Not_applicable "too many query objects for exact search")
    else begin
      let trees = Kbest.enumerate ~max_trees:8 ~max_extra:0 u ~terminals:p in
      let node_sets =
        List.fold_left
          (fun acc t ->
            if List.exists (fun s -> Iset.equal s t.Tree.nodes) acc then acc
            else t.Tree.nodes :: acc)
          [] trees
      in
      Ok (List.length node_sets <= 1)
    end

(* Alternative interpretations: force one extra object into the
   connection and re-solve exactly; keep only trees whose every leaf is
   a query object (a forced object left dangling as a leaf is not a
   different navigation, just a decorated copy of another answer). *)
let interpretations ?(k = 3) schema ~objects =
  match terminals_of_objects schema objects with
  | Error _ -> []
  | Ok p ->
    if Iset.cardinal p + 1 > Dreyfus_wagner.max_terminals then
      match minimal_connection schema ~objects with
      | Ok c -> [ c ]
      | Error _ -> []
    else begin
      let g = Schema.to_bigraph schema in
      let u = Bigraph.ugraph g in
      let dedupe_by_nodes trees =
        List.fold_left
          (fun acc tr ->
            if List.exists (fun t' -> Iset.equal t'.Tree.nodes tr.Tree.nodes) acc
            then acc
            else tr :: acc)
          [] trees
        |> List.rev
      in
      let candidates =
        Kbest.enumerate ~max_trees:(4 * k) u ~terminals:p |> dedupe_by_nodes
      in
      List.filteri (fun i _ -> i < k) candidates
      |> List.mapi (fun i tree ->
             connection_of_tree schema ~query:p tree ~optimal:(i = 0))
    end

let pp_connection ppf c =
  Format.fprintf ppf "@[<v>connection over {%s}@,auxiliary: {%s}@,edges:"
    (String.concat ", " c.objects)
    (String.concat ", " c.auxiliary);
  List.iter (fun (a, b) -> Format.fprintf ppf "@,  %s -- %s" a b) c.tree_edges;
  Format.fprintf ppf "@,%s@]"
    (if c.optimal then "(provably minimal)" else "(heuristic)")
