(** The universal-relation interface end to end: a query is a set of
    attribute names; the system finds the minimal conceptual connection
    on the scheme, picks the corresponding relations, and evaluates the
    project-join over them (Yannakakis when acyclic) — no relation name
    ever appears in the query. This is the logical-independence scenario
    from the paper's introduction realised on actual data. *)

type answer = {
  connection : Query.connection;
  result : Relalg.Relation.t;
}

val answer :
  ?strategy:Query.strategy ->
  ?where:(string * string) list ->
  Relalg.Database.t ->
  query:string list ->
  (answer, Query.error) result
(** The query lists attribute (or relation) names; output columns are
    the attribute names among them. [where] adds equality selections
    [(attribute, value)]: the selected attributes join the connection
    (they must be reachable) and the selections are pushed down into
    the chosen relations before evaluation. *)

val interpretations :
  ?k:int -> Relalg.Database.t -> query:string list -> answer list
(** One evaluated answer per candidate interpretation, minimal
    first. *)
