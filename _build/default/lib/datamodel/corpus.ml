(* Attribute naming: shared key attributes carry the same name across
   relations (the universal-relation convention), everything else is
   relation-local. *)

let tpch =
  Schema.make
    [
      ("region", [ "regionkey"; "r_name" ]);
      ("nation", [ "nationkey"; "regionkey"; "n_name" ]);
      ("supplier", [ "suppkey"; "nationkey"; "s_name"; "s_acctbal" ]);
      ("customer", [ "custkey"; "nationkey"; "c_name"; "c_mktsegment" ]);
      ("part", [ "partkey"; "p_name"; "p_brand"; "p_retailprice" ]);
      ("partsupp", [ "partkey"; "suppkey"; "ps_supplycost" ]);
      ("orders", [ "orderkey"; "custkey"; "o_orderdate"; "o_totalprice" ]);
      ( "lineitem",
        [ "orderkey"; "partkey"; "suppkey"; "l_quantity"; "l_shipdate" ] );
    ]

let university =
  Schema.make
    [
      ("department", [ "deptname"; "building" ]);
      ("instructor", [ "instrid"; "deptname"; "iname"; "salary" ]);
      ("student", [ "studid"; "deptname"; "sname" ]);
      ("course", [ "courseid"; "deptname"; "title" ]);
      ("section", [ "courseid"; "sectionid"; "semester"; "room" ]);
      ("teaches", [ "instrid"; "courseid"; "sectionid" ]);
      ("takes", [ "studid"; "courseid"; "sectionid"; "grade" ]);
    ]

let airline =
  Schema.make
    [
      ("airports", [ "airport"; "city" ]);
      ("aircraft", [ "tailno"; "model"; "seats" ]);
      ( "flight",
        [ "flightno"; "airport"; "dest"; "tailno"; "departure" ] );
      ("passenger", [ "paxid"; "pname" ]);
      ("booking", [ "paxid"; "flightno"; "fare" ]);
    ]

let snowflake =
  Schema.make
    [
      ("fact_sales", [ "dateid"; "storeid"; "productid"; "amount" ]);
      ("dim_date", [ "dateid"; "month"; "year" ]);
      ("dim_store", [ "storeid"; "cityid"; "store_name" ]);
      ("dim_city", [ "cityid"; "country" ]);
      ("dim_product", [ "productid"; "categoryid"; "product_name" ]);
      ("dim_category", [ "categoryid"; "category_name" ]);
    ]

let all =
  [
    ("tpch", tpch);
    ("university", university);
    ("airline", airline);
    ("snowflake", snowflake);
  ]
