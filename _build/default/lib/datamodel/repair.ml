open Hypergraphs

type degree_goal = To_alpha | To_beta | To_gamma | To_berge

let goal_test = function
  | To_alpha -> Gyo.alpha_acyclic
  | To_beta -> Beta.acyclic
  | To_gamma -> Gamma.acyclic
  | To_berge -> Berge.acyclic

let goal_name = function
  | To_alpha -> "alpha-acyclic"
  | To_beta -> "beta-acyclic"
  | To_gamma -> "gamma-acyclic"
  | To_berge -> "Berge-acyclic"

let schema_relations schema =
  List.map
    (fun n -> (n, Schema.relation_attrs schema n))
    (Schema.relation_names schema)

let schema_of_relations rels = Schema.make rels

let satisfies schema goal = goal_test goal (Schema.to_hypergraph schema)

let rec subsets_of_size k = function
  | _ when k = 0 -> [ [] ]
  | [] -> []
  | x :: rest ->
    List.map (fun s -> x :: s) (subsets_of_size (k - 1) rest)
    @ subsets_of_size k rest

let min_deletions ?max_k schema goal =
  let rels = schema_relations schema in
  let names = List.map fst rels in
  let bound =
    match max_k with Some k -> min k (List.length names - 1) | None -> List.length names - 1
  in
  if List.length names > 20 then
    invalid_arg "Repair.min_deletions: schema too large for brute force";
  let feasible deleted =
    let kept = List.filter (fun (n, _) -> not (List.mem n deleted)) rels in
    kept <> [] && satisfies (schema_of_relations kept) goal
  in
  let rec try_size k =
    if k > bound then None
    else
      match List.find_opt feasible (subsets_of_size k names) with
      | Some witness -> Some witness
      | None -> try_size (k + 1)
  in
  try_size 0

let merge_suggestions schema goal =
  let rels = schema_relations schema in
  let pairs =
    List.concat_map
      (fun (a, attrs_a) ->
        List.filter_map
          (fun (b, attrs_b) ->
            if a < b then Some ((a, attrs_a), (b, attrs_b)) else None)
          rels)
      rels
  in
  List.filter_map
    (fun ((a, attrs_a), (b, attrs_b)) ->
      let merged_name = a ^ "+" ^ b in
      let merged = List.sort_uniq compare (attrs_a @ attrs_b) in
      let rels' =
        (merged_name, merged)
        :: List.filter (fun (n, _) -> n <> a && n <> b) rels
      in
      if satisfies (schema_of_relations rels') goal then Some (a, b) else None)
    pairs

let report schema =
  let buf = Buffer.create 256 in
  let current = Schema.acyclicity schema in
  Buffer.add_string buf
    (Printf.sprintf "current degree: %s\n" (Acyclicity.degree_name current));
  (* Name the offending relations for the first missed degree. *)
  let h = Schema.to_hypergraph schema in
  let names = Array.of_list (Schema.relation_names schema) in
  let name_edges es =
    String.concat ", " (List.map (fun e -> names.(e)) es)
  in
  (match Acyclicity.why_not h Acyclicity.Gamma_acyclic with
  | Some (Acyclicity.Gamma_3_cycle (i, j, k)) ->
    Buffer.add_string buf
      (Printf.sprintf "offending pattern: special 3-cycle on %s\n"
         (name_edges [ i; j; k ]))
  | Some (Acyclicity.Beta_cycle es) ->
    Buffer.add_string buf
      (Printf.sprintf "offending pattern: beta-cycle through %s\n"
         (name_edges es))
  | Some (Acyclicity.Berge_cycle (es, _)) ->
    Buffer.add_string buf
      (Printf.sprintf "offending pattern: Berge cycle through %s\n"
         (name_edges es))
  | Some (Acyclicity.Gyo_stuck es) ->
    Buffer.add_string buf
      (Printf.sprintf "offending pattern: GYO stuck on %s\n" (name_edges es))
  | None -> ());
  let interesting =
    match current with
    | Acyclicity.Cyclic -> [ To_alpha; To_beta; To_gamma ]
    | Acyclicity.Alpha_acyclic -> [ To_beta; To_gamma ]
    | Acyclicity.Beta_acyclic -> [ To_gamma ]
    | Acyclicity.Gamma_acyclic | Acyclicity.Berge_acyclic -> []
  in
  if interesting = [] then
    Buffer.add_string buf
      "already gamma-acyclic or better: Steiner connections are polynomial \
       (Theorem 5)\n"
  else
    List.iter
      (fun goal ->
        (match min_deletions ~max_k:3 schema goal with
        | Some [] ->
          Buffer.add_string buf
            (Printf.sprintf "%s: already satisfied\n" (goal_name goal))
        | Some deleted ->
          Buffer.add_string buf
            (Printf.sprintf "%s: drop {%s}\n" (goal_name goal)
               (String.concat ", " deleted))
        | None ->
          Buffer.add_string buf
            (Printf.sprintf "%s: no <=3-deletion repair\n" (goal_name goal)));
        match merge_suggestions schema goal with
        | [] -> ()
        | (a, b) :: _ ->
          Buffer.add_string buf
            (Printf.sprintf "%s: or merge %s with %s\n" (goal_name goal) a b))
      interesting;
  Buffer.contents buf
