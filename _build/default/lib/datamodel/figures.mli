(** Every figure of the paper as an executable instance.

    The source scan does not preserve the exact drawings, so each
    instance is {e reconstructed} to satisfy precisely the properties
    the text asserts about it (the test suite checks each assertion
    with the definitional oracles, and [bench/main.exe figures] prints
    the full validation table). Where the running text pins down the
    structure (Figs. 6, 11) the reconstruction follows it exactly. *)

open Graphs
open Bipartite
open Steiner

type labeled = {
  graph : Bigraph.t;
  left_names : string array;
  right_names : string array;
  title : string;
}

val name_of_index : labeled -> int -> string

val index_of_name : labeled -> string -> int option

val set_of_names : labeled -> string list -> Iset.t
(** Raises [Invalid_argument] on unknown names. *)

val fig1_er : Er.t
(** The employees/departments ER scheme whose query {EMPLOYEE, DATE}
    has two interpretations: the direct birthdate edge (minimal) and
    the hiring date through WORKS. *)

val fig1_query : string list

val fig2 : labeled
(** Bipartite graph whose H¹ is α-acyclic while its dual H² is not:
    Corollary 1's duality failure for α. *)

val fig3a : labeled
(** (4,1)-chordal (a forest); H¹ Berge-acyclic (Fig. 4a). *)

val fig3b : labeled
(** (6,2)- but not (4,1)-chordal; H¹ γ- but not Berge-acyclic
    (Fig. 4b). *)

val fig3c : labeled
(** (6,1)- but not (6,2)-chordal; H¹ β- but not γ-acyclic (Fig. 4c).
    Also Section 3's counterexample: over P = {A, B, E} the node set
    {A, B, C, E, 1, 3} is a pseudo-Steiner tree w.r.t. V₂ that is not a
    Steiner tree. *)

val fig3c_p : Iset.t
(** The terminal set {A, B, E} of that remark. *)

val fig3c_pseudo_nodes : Iset.t
(** {A, B, C, E, 1, 3}. *)

val fig5 : labeled
(** Chordal + conformal on both sides (both H¹ and H² α-acyclic) yet
    not (6,1)-chordal: the strictness in Corollary 2. *)

val fig6_x3c : X3c.instance
(** X = {x1..x6}, C = {{x1,x2,x3}, {x3,x4,x5}, {x4,x5,x6}} — solvable
    by {c1, c3}. *)

val fig8 : labeled

val fig8_p : Iset.t
(** P = {A, C, D}. *)

val fig8_nonredundant : Iset.t
(** A nonredundant, non-minimum cover of P. *)

val fig8_minimum : Iset.t
(** A minimum cover of P. *)

val fig8_v1_nonredundant : Iset.t
(** A V₁-nonredundant cover that is not V₁-minimum. *)

val fig8_v1_minimum : Iset.t
(** A V₁-minimum cover. *)

val fig9_chordal_input : Ugraph.t
(** Small chordal graph fed to the Fig. 9 reduction in the demo. *)

val fig10 : labeled
(** (6,1)-chordal graph (6-cycle + one chord) exhibiting a nonredundant
    path that is not minimum — Lemma 4's boundary. *)

val fig11 : labeled
(** Theorem 6's graph: (6,1)-chordal with {e no} good ordering. *)

val fig11_bad_terminals : first:string -> Iset.t option
(** The proof's case split: given which of A, B, 1, 2 comes first in an
    ordering, the terminal set on which that ordering fails.
    [None] for other names. *)

val fig11_optimum : Iset.t -> int
(** Exact Steiner optimum (node count) on fig11 for a terminal set. *)

val all_labeled : (string * labeled) list
(** [(figure id, instance)] for iteration by tests and benches. *)
