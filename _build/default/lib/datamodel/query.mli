(** Minimal conceptual connections for queries stated as object names
    (Section 3's logical-independence interface over relational
    schemes).

    A query is a set of attribute and/or relation names; a connection
    is a tree of the scheme's bipartite graph over those objects. The
    solver dispatch follows the paper's complexity map:

    - (6,2)-chordal scheme → Algorithm 2, exact minimum (Theorem 5);
    - otherwise, few terminals → exact Dreyfus–Wagner;
    - otherwise → nonredundant-cover elimination (heuristic upper
      bound, flagged as such).

    Independently, [min_relations] runs Algorithm 1 on α-acyclic
    schemes: minimum number of {e relations} (Theorem 4). *)

open Graphs

type connection = {
  objects : string list;  (** all tree nodes, query + auxiliary *)
  auxiliary : string list;  (** tree nodes not in the query *)
  relations_used : string list;
  attributes_used : string list;
  tree_edges : (string * string) list;
  optimal : bool;
      (** true when produced by an exactness-guaranteed solver *)
}

type error =
  | Unknown_object of string
  | Disconnected
  | Not_applicable of string
      (** the requested strategy's precondition fails *)

type strategy =
  | Auto
  | Exact
  | Algorithm2_only
  | Elimination_heuristic

val minimal_connection :
  ?strategy:strategy -> Schema.t -> objects:string list ->
  (connection, error) result

val min_relations :
  Schema.t -> objects:string list -> (connection * int, error) result
(** Algorithm 1: pseudo-Steiner w.r.t. relations; the integer is the
    relation count. [Error (Not_applicable _)] when the scheme's H¹ is
    not α-acyclic. *)

val weighted_connection :
  Schema.t -> objects:string list -> cost:(string -> int) ->
  (connection * int, error) result
(** Minimal {e total-cost} connection, where [cost] prices each object
    by its disclosure burden (exact node-weighted Steiner). The integer
    is the achieved total cost. *)

val interpretations :
  ?k:int -> Schema.t -> objects:string list -> connection list
(** The minimal connection followed by up-to-[k - 1] alternative
    interpretations in nondecreasing size, enumerated exactly by
    {!Steiner.Kbest} and deduplicated by object set — the interactive
    disambiguation loop sketched in the paper's introduction. *)

val is_unambiguous :
  Schema.t -> objects:string list -> (bool, error) result
(** A query is {e unambiguous} (the notion of the authors' companion
    paper, reference [5]) when the minimum-size connection is unique as
    an object set: no other connection of the same size exists. Decided
    exactly with the ranked enumerator. *)

val terminals_of_objects :
  Schema.t -> string list -> (Iset.t, error) result

val connection_of_tree : Schema.t -> query:Iset.t -> Steiner.Tree.t -> optimal:bool -> connection

val pp_connection : Format.formatter -> connection -> unit
