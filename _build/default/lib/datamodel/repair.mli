(** Design-time repair suggestions: how far is a schema from the
    acyclicity degree that would buy the query-complexity guarantees of
    Section 3? (In the spirit of the design methodology of the paper's
    reference [4], D'Atri–Moscarini.)

    All searches are brute force over relation subsets in ascending
    cardinality — design-time tooling over human-sized schemas. *)

type degree_goal = To_alpha | To_beta | To_gamma | To_berge

val satisfies : Schema.t -> degree_goal -> bool

val min_deletions : ?max_k:int -> Schema.t -> degree_goal -> string list option
(** Fewest relations to drop so that the remaining schema reaches the
    goal; [None] if no subset of at most [max_k] (default: all)
    deletions suffices or the schema would become empty. The returned
    list is one optimal witness. *)

val merge_suggestions : Schema.t -> degree_goal -> (string * string) list
(** Pairs of relations whose (single) merge — replacing both by one
    relation over the union of their attributes — already reaches the
    goal. Empty when no single merge suffices. *)

val report : Schema.t -> string
(** Human-readable summary: current degree, and the cheapest route to
    each strictly better degree. *)
