(** A small corpus of realistic database schemas (classic benchmark and
    textbook shapes), used to ground the paper's premise that practical
    schemas are sparse enough to land in its tractable classes. Each
    entry is a plain {!Schema.t}; the test suite and the benchmark
    harness classify all of them. *)

val tpch : Schema.t
(** The TPC-H decision-support schema (8 relations), keys-as-attributes
    abstraction. *)

val university : Schema.t
(** The classic registrar schema: students, courses, sections,
    instructors, departments. *)

val airline : Schema.t
(** Flights, airports, aircraft, bookings, passengers. *)

val snowflake : Schema.t
(** A two-level dimensional model: fact table, dimensions, and
    sub-dimensions. *)

val all : (string * Schema.t) list
