(** Random hypergraph workloads, including constructive generators for
    each acyclicity degree (used both by property tests — "generated
    γ-acyclic instances really are γ-acyclic per the definitional
    oracles" — and by the scaling benchmarks). *)

open Hypergraphs

val random : Rng.t -> n_nodes:int -> n_edges:int -> max_size:int -> Hypergraph.t
(** Arbitrary random family (any degree, usually cyclic). Every edge is
    nonempty; nodes may be uncovered. *)

val alpha_acyclic : Rng.t -> n_edges:int -> max_size:int -> Hypergraph.t
(** Built along a join tree: each new edge takes a random nonempty
    subset of a random earlier edge plus fresh private nodes, so the
    construction order satisfies the running intersection property. *)

val gamma_acyclic : Rng.t -> n_edges:int -> max_size:int -> Hypergraph.t
(** Join-tree construction with pairwise-disjoint separators drawn from
    the parents' private pools: non-adjacent edges are disjoint, hence
    no Berge cycle on 3+ edges and no special 3-cycle — γ-acyclic, but
    (for separators of size ≥ 2) not Berge-acyclic. *)

val berge_acyclic : Rng.t -> n_edges:int -> max_size:int -> Hypergraph.t
(** γ-construction restricted to singleton separators: the incidence
    graph is a tree. *)

val beta_flower : Rng.t -> petals:int -> Hypergraph.t
(** A β-acyclic but γ-cyclic family generalising the paper's Fig. 4(c):
    petal edges [{hub, xi}] plus covering edges [{hub, xi, xi+1}]. *)
