open Relalg

let over_hypergraph rng h ~rows ~domain =
  let attr i = Printf.sprintf "a%d" i in
  let rels =
    Array.to_list (Hypergraphs.Hypergraph.edges h)
    |> List.mapi (fun j e ->
           let attrs = List.map attr (Graphs.Iset.elements e) in
           let row _ =
             List.map (fun _ -> string_of_int (Rng.int rng (max 1 domain))) attrs
           in
           (Printf.sprintf "r%d" j, Relation.make ~attrs (List.init rows row)))
  in
  Database.make rels

let acyclic rng ~n_relations ~rows =
  let h = Gen_hyper.alpha_acyclic rng ~n_edges:n_relations ~max_size:4 in
  over_hypergraph rng h ~rows ~domain:(max 2 (rows / 3))

let chain rng ~length ~rows ~domain =
  let rels =
    List.init length (fun j ->
        let a = Printf.sprintf "a%d" j and b = Printf.sprintf "a%d" (j + 1) in
        let row _ =
          [
            string_of_int (Rng.int rng (max 1 domain));
            string_of_int (Rng.int rng (max 1 domain));
          ]
        in
        (Printf.sprintf "r%d" j, Relation.make ~attrs:[ a; b ] (List.init rows row)))
  in
  Database.make rels
