open Steiner

let random_triple rng n =
  let rec distinct () =
    let a = Rng.int rng n and b = Rng.int rng n and c = Rng.int rng n in
    if a <> b && b <> c && a <> c then (a, b, c) else distinct ()
  in
  distinct ()

let planted rng ~q ~distractors =
  if q < 1 then invalid_arg "Gen_x3c.planted: need q >= 1";
  let n = 3 * q in
  let perm = Rng.shuffle rng (List.init n (fun i -> i)) in
  let rec chunk = function
    | a :: b :: c :: rest -> (a, b, c) :: chunk rest
    | [] -> []
    | _ -> assert false
  in
  let hidden = chunk perm in
  let extra = List.init distractors (fun _ -> random_triple rng n) in
  X3c.make ~q (Rng.shuffle rng (hidden @ extra))

let unsolvable_pair rng ~q ~distractors =
  if q < 1 then invalid_arg "Gen_x3c.unsolvable_pair: need q >= 1";
  let n = 3 * q in
  let missing = Rng.int rng n in
  let rec triple_avoiding () =
    let t = random_triple rng n in
    let a, b, c = t in
    if a = missing || b = missing || c = missing then triple_avoiding ()
    else t
  in
  let triples = List.init (max 1 (q + distractors)) (fun _ -> triple_avoiding ()) in
  X3c.make ~q triples
